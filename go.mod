module finitelb

go 1.22
