package finitelb

import (
	"math"
	"testing"
)

// TestExactDistributionMM1 checks the public sojourn-law API against the
// d=1 closed form: sojourn ~ Exp(1−ρ).
func TestExactDistributionMM1(t *testing.T) {
	const rho = 0.5
	s, err := NewSystem(1, 1, rho)
	if err != nil {
		t.Fatal(err)
	}
	res, dist, err := s.ExactDistribution(150)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 / (1 - rho); math.Abs(res.MeanDelay-want) > 1e-6 {
		t.Errorf("mean = %v, want %v", res.MeanDelay, want)
	}
	for _, x := range []float64{1, 2, 5} {
		want := math.Exp(-(1 - rho) * x)
		if got := dist.Tail(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("Tail(%v) = %v, want %v", x, got, want)
		}
	}
	if got, want := dist.Quantile(0.99), -math.Log(0.01)/(1-rho); math.Abs(got-want) > 1e-4 {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if got := dist.ServerTail(3); math.Abs(got-math.Pow(rho, 3)) > 1e-6 {
		t.Errorf("ServerTail(3) = %v, want ρ³", got)
	}
	if got := dist.ServerTail(-1); got != 0 {
		t.Errorf("ServerTail(-1) = %v, want 0", got)
	}
}

// TestSimQuantilesMatchExactDistribution: simulator histogram quantiles
// against the exact Erlang-mixture law for SQ(2), N=3.
func TestSimQuantilesMatchExactDistribution(t *testing.T) {
	s, err := NewSystem(3, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	_, dist, err := s.ExactDistribution(30)
	if err != nil {
		t.Fatal(err)
	}
	simr, err := s.Simulate(SimOptions{Jobs: 500_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		got  float64
		q    float64
	}{
		{"p50", simr.P50, 0.50},
		{"p95", simr.P95, 0.95},
		{"p99", simr.P99, 0.99},
	} {
		want := dist.Quantile(c.q)
		if math.Abs(c.got-want) > 0.05*want+0.05 {
			t.Errorf("%s: sim %v vs exact %v", c.name, c.got, want)
		}
	}
}

// TestAsymptoticTailsUnderestimateFiniteN: the distributional version of
// the paper's message — at N=3, ρ=0.9, the asymptotic queue tail sits
// below the finite-N tail.
func TestAsymptoticTailsUnderestimateFiniteN(t *testing.T) {
	s, err := NewSystem(3, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	_, dist, err := s.ExactDistribution(35)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		asy := AsymptoticQueueTail(2, 0.9, k)
		fin := dist.ServerTail(k)
		if asy >= fin {
			t.Errorf("k=%d: asymptotic tail %v not below finite tail %v", k, asy, fin)
		}
	}
}

// TestDelayBracketMM1: with N=1 both bound chains are plain M/M/1, so the
// bracket collapses onto the closed form p-quantile −ln(1−p)/(1−ρ).
func TestDelayBracketMM1(t *testing.T) {
	const rho = 0.8
	s, err := NewSystem(1, 1, rho)
	if err != nil {
		t.Fatal(err)
	}
	br, err := s.DelayDistributionBracket(3)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.01) / (1 - rho)
	lo, hi := br.Quantile(0.99)
	if math.Abs(lo-want) > 1e-3*want || math.Abs(hi-want) > 1e-3*want {
		t.Errorf("p99 bracket [%v, %v], want both ≈ %v", lo, hi, want)
	}
	mlo, mhi := br.Mean()
	if wantMean := 1 / (1 - rho); math.Abs(mlo-wantMean) > 1e-6 || math.Abs(mhi-wantMean) > 1e-6 {
		t.Errorf("mean bracket [%v, %v], want both %v", mlo, mhi, wantMean)
	}
}

// TestDelayBracketEnclosesExact is the acceptance property of the
// predicted-vs-measured gauges: on a small calibration grid the exact
// chain's tail quantiles fall inside the bound chains' bracket, and the
// bracket is ordered. (Empirical — the theorem covers the mean; see the
// DelayBracket doc comment.)
func TestDelayBracketEnclosesExact(t *testing.T) {
	for _, tc := range []struct {
		n, d, bt int
		rho      float64
	}{
		{2, 2, 4, 0.7},
		{3, 2, 4, 0.8},
		{4, 2, 5, 0.9},
	} {
		s, err := NewSystem(tc.n, tc.d, tc.rho)
		if err != nil {
			t.Fatal(err)
		}
		br, err := s.DelayDistributionBracket(tc.bt)
		if err != nil {
			t.Fatalf("N=%d ρ=%v T=%d: %v", tc.n, tc.rho, tc.bt, err)
		}
		_, dist, err := s.ExactDistribution(0)
		if err != nil {
			t.Fatal(err)
		}
		// The lower side can cross the exact law by a hair at small T
		// (the transfer is heuristic; see the DelayBracket doc), so the
		// enclosure carries a 0.1% relative slack — far below the
		// measurement noise the bracket is plotted against.
		const slack = 1e-3
		for _, q := range []float64{0.5, 0.95, 0.99} {
			lo, hi := br.Quantile(q)
			exact := dist.Quantile(q)
			if !(lo <= hi+1e-9) {
				t.Errorf("N=%d ρ=%v q=%v: bracket inverted [%v, %v]", tc.n, tc.rho, q, lo, hi)
			}
			if exact < lo-slack*lo || exact > hi+slack*hi {
				t.Errorf("N=%d ρ=%v q=%v: exact quantile %v outside bracket [%v, %v]",
					tc.n, tc.rho, q, exact, lo, hi)
			}
		}
		// Tail probabilities bracket the exact tail at a few abscissae.
		for _, x := range []float64{1, 2, 4} {
			plo, phi := br.Tail(x)
			pex := dist.Tail(x)
			if pex < plo-slack || pex > phi+slack {
				t.Errorf("N=%d ρ=%v t=%v: exact tail %v outside bracket [%v, %v]",
					tc.n, tc.rho, x, pex, plo, phi)
			}
		}
	}
}

func TestAsymptoticDelayTailSane(t *testing.T) {
	if got := AsymptoticDelayTail(2, 0.9, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("P(T>0) = %v", got)
	}
	// Mean from the tail integral must match AsymptoticDelay (coarse check).
	var mean float64
	const dt = 0.01
	for x := 0.0; x < 100; x += dt {
		mean += AsymptoticDelayTail(2, 0.9, x+dt/2) * dt
	}
	if want := AsymptoticDelay(2, 0.9); math.Abs(mean-want) > 0.01*want {
		t.Errorf("∫tail = %v, mean = %v", mean, want)
	}
}
