package finitelb

import (
	"errors"
	"math"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(6, 2, 0.9); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	for _, bad := range []struct {
		n, d int
		rho  float64
	}{{0, 1, 0.5}, {3, 0, 0.5}, {3, 4, 0.5}, {3, 2, 0}, {3, 2, 1}, {3, 2, -1}} {
		if _, err := NewSystem(bad.n, bad.d, bad.rho); err == nil {
			t.Errorf("NewSystem(%d, %d, %v) accepted", bad.n, bad.d, bad.rho)
		}
	}
}

// TestSimulateWorkloadSpecs drives the workload knobs through the public
// string-spec surface: defaults must match the explicit default specs bit
// for bit, non-default specs must run (and differ), and malformed specs
// must error out before simulating.
func TestSimulateWorkloadSpecs(t *testing.T) {
	s, err := NewSystem(4, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	base := SimOptions{Jobs: 20_000, Seed: 13}
	def, err := s.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	spelled := base
	spelled.Arrival, spelled.Service, spelled.Policy = "poisson", "exponential", "sqd"
	if got, err := s.Simulate(spelled); err != nil {
		t.Fatal(err)
	} else if got != def {
		t.Errorf("explicit default specs diverge from zero-value specs:\n%+v\n%+v", got, def)
	}
	bursty := base
	bursty.Arrival, bursty.Service, bursty.Policy, bursty.Speeds = "hyperexp:cv2=4", "pareto:alpha=2.5,h=100", "jiq", "1x2,2x2"
	alt, err := s.Simulate(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if alt == def {
		t.Error("bursty heterogeneous workload produced the default trajectory")
	}
	for _, bad := range []SimOptions{
		{Jobs: 10, Arrival: "nope"},
		{Jobs: 10, Service: "erlang:0"},
		{Jobs: 10, Policy: "sqd:d=99"},
		{Jobs: 10, Speeds: "1,1"},
	} {
		if _, err := s.Simulate(bad); err == nil {
			t.Errorf("Simulate accepted bad spec %+v", bad)
		}
	}
}

func TestAccessors(t *testing.T) {
	s, err := NewSystem(6, 2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 6 || s.D() != 2 || s.Rho() != 0.75 {
		t.Errorf("accessors: N=%d D=%d ρ=%v", s.N(), s.D(), s.Rho())
	}
}

// TestBoundsSandwichSimulation is the paper's Figure 10 in miniature: for
// SQ(2) with N=3 the bounds must bracket both the exact solve and the
// simulation, the lower bound tightly.
func TestBoundsSandwichSimulation(t *testing.T) {
	s, err := NewSystem(3, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.DelayBounds(3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.ExactDelay(30)
	if err != nil {
		t.Fatal(err)
	}
	simr, err := s.Simulate(SimOptions{Jobs: 400_000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Lower.MeanDelay <= exact.MeanDelay+1e-9 && exact.MeanDelay <= b.Upper.MeanDelay+1e-9) {
		t.Errorf("bounds [%v, %v] do not bracket exact %v", b.Lower.MeanDelay, b.Upper.MeanDelay, exact.MeanDelay)
	}
	slack := 4*simr.HalfWidth + 0.02*exact.MeanDelay
	if !(b.Lower.MeanDelay <= simr.MeanDelay+slack && simr.MeanDelay <= b.Upper.MeanDelay+slack) {
		t.Errorf("bounds [%v, %v] do not bracket simulation %v ± %v",
			b.Lower.MeanDelay, b.Upper.MeanDelay, simr.MeanDelay, simr.HalfWidth)
	}
	if rel := (exact.MeanDelay - b.Lower.MeanDelay) / exact.MeanDelay; rel > 0.05 {
		t.Errorf("lower bound off by %.1f%% at T=3, expected remarkably tight", rel*100)
	}
}

// TestAsymptoticUnderestimatesSmallN reproduces the paper's headline
// observation: at N=3 and high utilization, Eq. (16) sits clearly below
// even the *lower* bound.
func TestAsymptoticUnderestimatesSmallN(t *testing.T) {
	s, err := NewSystem(3, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := s.LowerBound(3)
	if err != nil {
		t.Fatal(err)
	}
	if asy := s.AsymptoticDelay(); asy >= lb.MeanDelay {
		t.Errorf("asymptotic %v not below lower bound %v at N=3 ρ=0.95", asy, lb.MeanDelay)
	}
}

func TestLowerBoundPathsAgree(t *testing.T) {
	s, err := NewSystem(6, 2, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := s.LowerBound(2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.LowerBoundMatrixGeometric(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp.MeanDelay-full.MeanDelay) > 1e-7*full.MeanDelay {
		t.Errorf("Theorem 3 path %v ≠ Theorem 1 path %v", imp.MeanDelay, full.MeanDelay)
	}
	if imp.LRIterations != 0 {
		t.Errorf("improved path reports %d LR iterations, want 0", imp.LRIterations)
	}
	if full.LRIterations < 1 {
		t.Error("matrix-geometric path reports no LR iterations")
	}
}

func TestUpperBoundUnstableSurfaces(t *testing.T) {
	s, err := NewSystem(3, 2, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.UpperBound(2)
	if !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	// DelayBounds propagates the failure.
	if _, err := s.DelayBounds(2); !errors.Is(err, ErrUnstable) {
		t.Errorf("DelayBounds err = %v, want ErrUnstable", err)
	}
}

func TestAsymptoticDelayPackageLevel(t *testing.T) {
	if got, want := AsymptoticDelay(1, 0.5), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("AsymptoticDelay(1, 0.5) = %v, want %v", got, want)
	}
	// d=2 at ρ=0.5: 1 + 0.5² + 0.5⁶ + 0.5¹⁴ + … ≈ 1.26568.
	if got := AsymptoticDelay(2, 0.5); math.Abs(got-1.2656860) > 1e-6 {
		t.Errorf("AsymptoticDelay(2, 0.5) = %v", got)
	}
}

func TestSigmaRootPoissonIsRho(t *testing.T) {
	sigma, err := SigmaRoot(BetasPoisson(0.8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-0.8) > 1e-9 {
		t.Errorf("σ = %v, want 0.8", sigma)
	}
}

func TestSigmaRootOtherLaws(t *testing.T) {
	for name, betas := range map[string]func(int) float64{
		"erlang":        BetasErlang(3, 0.8, 1),
		"deterministic": BetasDeterministic(0.8, 1),
		"hyperexp":      BetasHyperExp(0.4, 0.6, 1.6, 1),
	} {
		sigma, err := SigmaRoot(betas)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !(0 < sigma && sigma < 1) {
			t.Errorf("%s: σ = %v outside (0,1)", name, sigma)
		}
	}
}

func TestExactDelayTruncationReporting(t *testing.T) {
	s, err := NewSystem(2, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExactDelay(25)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncationMass > 1e-10 {
		t.Errorf("truncation mass %v unexpectedly large", res.TruncationMass)
	}
	if res.MeanDelay <= 1 {
		t.Errorf("delay %v must exceed the unit service time", res.MeanDelay)
	}
}
