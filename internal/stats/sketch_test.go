package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// boundedPareto draws from a bounded Pareto on [1, h] with shape a via
// inverse-CDF — inlined so the stats tests stay dependency-free.
func boundedPareto(rng *rand.Rand, a, h float64) float64 {
	u := rng.Float64()
	c := 1 - math.Pow(1/h, a)
	return 1 / math.Pow(1-u*c, 1/a)
}

// TestSketchAccuracyOracle is the tentpole's accuracy criterion: on
// exponential, Erlang, and bounded-Pareto streams every reported quantile
// must be within the configured α relative error of the exact quantile of
// the same sample (computed from the fully sorted sample). The bound is
// exact, not statistical: the sketch lands in the bucket containing the
// target rank, and the bucket's relative width is α.
func TestSketchAccuracyOracle(t *testing.T) {
	const n = 200_000
	dists := map[string]func(*rand.Rand) float64{
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() },
		"erlang4": func(r *rand.Rand) float64 {
			return (r.ExpFloat64() + r.ExpFloat64() + r.ExpFloat64() + r.ExpFloat64()) / 4
		},
		"bounded-pareto": func(r *rand.Rand) float64 { return boundedPareto(r, 1.5, 1000) },
	}
	for name, draw := range dists {
		for _, alpha := range []float64{DefaultAlpha, 0.05} {
			sk := NewSketch(alpha, DefaultSketchBudget)
			rng := rand.New(rand.NewPCG(11, 7))
			sample := make([]float64, n)
			for i := range sample {
				x := draw(rng)
				sample[i] = x
				sk.Add(x)
			}
			sort.Float64s(sample)
			for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
				target := q * float64(n)
				exact := sample[int(math.Ceil(target))-1]
				got := sk.Quantile(q)
				if relErr := math.Abs(got-exact) / exact; relErr > alpha*(1+1e-9) {
					t.Errorf("%s α=%v: q%v = %v, exact %v (rel err %.4f > α)", name, alpha, q, got, exact, relErr)
				}
			}
			if sk.N() != n {
				t.Errorf("%s: N = %d, want %d", name, sk.N(), n)
			}
			if sk.Clamped() {
				t.Errorf("%s: budget collapse triggered on a realistic stream", name)
			}
		}
	}
}

// sketchStatesEqual compares the full logical state of two sketches —
// window bounds, every bucket count, counters, max, clamped — which is
// the "merge equals whole-stream, exactly" criterion.
func sketchStatesEqual(t *testing.T, label string, got, want *Sketch) {
	t.Helper()
	if got.n != want.n || got.zero != want.zero || got.posN != want.posN {
		t.Errorf("%s: counters (n,zero,posN) = (%d,%d,%d), want (%d,%d,%d)",
			label, got.n, got.zero, got.posN, want.n, want.zero, want.posN)
	}
	if got.max != want.max {
		t.Errorf("%s: max %v, want %v", label, got.max, want.max)
	}
	if got.clamped != want.clamped {
		t.Errorf("%s: clamped %v, want %v", label, got.clamped, want.clamped)
	}
	if want.posN == 0 {
		return
	}
	if got.lo != want.lo || got.hi != want.hi {
		t.Fatalf("%s: window [%d,%d], want [%d,%d]", label, got.lo, got.hi, want.lo, want.hi)
	}
	for i := want.lo; i <= want.hi; i++ {
		if g, w := got.counts[i&got.mask], want.counts[i&want.mask]; g != w {
			t.Errorf("%s: bucket %d count %d, want %d", label, i, g, w)
		}
	}
}

// TestSketchMergeEqualsWhole: sharded accumulation merged in any order
// must equal the whole-stream sketch bit for bit — including when the
// bucket budget forces collapsing at different times in different shards.
// The stream spans ~24 decades against a 64-bucket budget, so every shard
// collapses heavily and at different cutoffs.
func TestSketchMergeEqualsWhole(t *testing.T) {
	const budget = 64
	whole := NewSketch(DefaultAlpha, budget)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSketch(DefaultAlpha, budget)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 50_000; i++ {
		x := rng.ExpFloat64() * math.Pow(10, float64(i%8)*3)
		whole.Add(x)
		shards[i%3].Add(x) // shard 3 stays empty
	}
	if !whole.Clamped() {
		t.Fatal("test stream did not trigger collapse; widen the range")
	}

	// Forward merge order and reverse merge order must agree with the
	// whole stream and with each other.
	fwd := NewSketch(DefaultAlpha, budget)
	for _, sh := range shards {
		fwd.Merge(sh)
	}
	rev := NewSketch(DefaultAlpha, budget)
	for i := len(shards) - 1; i >= 0; i-- {
		rev.Merge(shards[i])
	}
	sketchStatesEqual(t, "forward-merge vs whole", fwd, whole)
	sketchStatesEqual(t, "reverse-merge vs whole", rev, whole)
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a, b := fwd.Quantile(q), whole.Quantile(q); a != b {
			t.Errorf("merged q%v = %v, whole %v", q, a, b)
		}
	}
	if a, b := fwd.Tail(100), whole.Tail(100); a != b {
		t.Errorf("merged Tail(100) = %v, whole %v", a, b)
	}
}

// TestSketchMergeNoCollapse covers the common case: disjoint-range shards
// whose union stays within budget must merge into exactly the whole-stream
// state with Clamped() still false.
func TestSketchMergeNoCollapse(t *testing.T) {
	whole := NewSketch(DefaultAlpha, DefaultSketchBudget)
	a := NewSketch(DefaultAlpha, DefaultSketchBudget)
	b := NewSketch(DefaultAlpha, DefaultSketchBudget)
	rng := rand.New(rand.NewPCG(8, 1))
	for i := 0; i < 30_000; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	sketchStatesEqual(t, "merge vs whole", a, whole)
	if a.Clamped() {
		t.Error("no-collapse merge reported Clamped")
	}
}

// TestSketchExtremeValues: the sketch has no range ceiling — enormous
// observations that overflow the fixed histogram's int conversion must
// be recorded accurately, and sub-resolution values land in the zero
// bucket.
func TestSketchExtremeValues(t *testing.T) {
	sk := NewSketch(DefaultAlpha, DefaultSketchBudget)
	for _, x := range []float64{0, 1e-300, 1, 2, 4.6e18, 1e300} {
		sk.Add(x) // none may panic
	}
	if sk.N() != 6 {
		t.Errorf("N = %d, want 6", sk.N())
	}
	if sk.Max() != 1e300 {
		t.Errorf("Max = %v", sk.Max())
	}
	if got := sk.Tail(0); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Tail(0) = %v, want 4/6 (zeros excluded)", got)
	}
	// The top observation is resolvable within α even at 1e300.
	if got, want := sk.Quantile(0.999), 1e300; math.Abs(got-want)/want > DefaultAlpha {
		t.Errorf("q0.999 = %v, want within α of %v", got, want)
	}
	// The huge spread forced a collapse of the low buckets (budget 1024
	// covers ~8 decades, the stream spans 300) — reported via Clamped, not
	// silent, and collapsed-region quantiles are upper bounds bracketed by
	// the observations around the cutoff.
	if !sk.Clamped() {
		t.Error("300-decade stream did not report Clamped")
	}
	if got := sk.Quantile(0.70); got < 4.6e18 || got > 1e300 {
		t.Errorf("collapsed-region q0.70 = %v, want an upper bound in [4.6e18, max]", got)
	}

	// Without the pathological spread, int-overflow territory keeps full
	// accuracy: the sketch has no 500-service-time ceiling.
	sk2 := NewSketch(DefaultAlpha, DefaultSketchBudget)
	sk2.Add(1e10)
	sk2.Add(4.6e18)
	if got, want := sk2.Quantile(0.9), 4.6e18; math.Abs(got-want)/want > DefaultAlpha {
		t.Errorf("q0.9 = %v, want within α of %v", got, want)
	}
	if sk2.Clamped() {
		t.Error("8-decade stream reported Clamped")
	}
}

// TestSketchZeroHeavy: a stream of only zeros/sub-resolution values.
func TestSketchZeroHeavy(t *testing.T) {
	sk := NewSketch(DefaultAlpha, 64)
	for i := 0; i < 100; i++ {
		sk.Add(0)
	}
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("all-zero q0.5 = %v, want 0", got)
	}
	if got := sk.Tail(5); got != 0 {
		t.Errorf("all-zero Tail(5) = %v, want 0", got)
	}
	sk.Add(10)
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("zero-heavy q0.5 = %v, want 0", got)
	}
	if got, want := sk.Quantile(0.999), 10.0; math.Abs(got-want)/want > DefaultAlpha {
		t.Errorf("zero-heavy q0.999 = %v, want ≈10", got)
	}
}

// snapshot deep-copies a sketch the way lb.Recorder.TailSketch does:
// fresh sketch + Merge, which is bit-exact by the mergeability law.
func snapshot(s *Sketch) *Sketch {
	c := NewSketch(s.alpha, len(s.counts))
	c.Merge(s)
	return c
}

// TestSketchDiffQuantileOracle: the quantile of the window between two
// snapshots must match the exact quantile of just the window's
// observations within α — the correctness criterion for cmd/lbd's
// windowed p99 shedding signal, which differences successive TailSketch
// snapshots instead of resetting the lifetime accumulator.
func TestSketchDiffQuantileOracle(t *testing.T) {
	sk := NewSketch(DefaultAlpha, DefaultSketchBudget)
	rng := rand.New(rand.NewPCG(17, 4))
	// Phase 1: a light-load regime.
	for i := 0; i < 50_000; i++ {
		sk.Add(rng.ExpFloat64())
	}
	prev := snapshot(sk)
	// Phase 2: a degraded regime with a 10× heavier tail — the window
	// the shedding signal must see, undiluted by phase 1.
	window := make([]float64, 30_000)
	for i := range window {
		x := 10 * rng.ExpFloat64()
		window[i] = x
		sk.Add(x)
	}
	sort.Float64s(window)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := window[int(math.Ceil(q*float64(len(window))))-1]
		got, ok := sk.DiffQuantile(prev, q)
		if !ok {
			t.Fatalf("q%v: ok = false on a 30k-observation window", q)
		}
		if relErr := math.Abs(got-exact) / exact; relErr > DefaultAlpha*(1+1e-9) {
			t.Errorf("window q%v = %v, exact %v (rel err %.4f > α)", q, got, exact, relErr)
		}
		// The lifetime quantile is diluted by phase 1 and must sit well
		// below the window quantile — differencing is load-bearing.
		if life := sk.Quantile(q); life >= got {
			t.Errorf("q%v: lifetime %v ≥ window %v; expected dilution", q, life, got)
		}
	}
}

// TestSketchDiffQuantileEdges pins the boundary behavior: empty window,
// nil snapshot, zero-only window, and a collapse landing between the
// snapshots.
func TestSketchDiffQuantileEdges(t *testing.T) {
	sk := NewSketch(DefaultAlpha, 64)
	rng := rand.New(rand.NewPCG(5, 12))
	for i := 0; i < 1000; i++ {
		sk.Add(rng.ExpFloat64())
	}

	if _, ok := sk.DiffQuantile(snapshot(sk), 0.99); ok {
		t.Error("empty window reported ok = true")
	}
	if got, ok := sk.DiffQuantile(nil, 0.5); !ok || got != sk.Quantile(0.5) {
		t.Errorf("nil snapshot: (%v, %v), want the lifetime quantile %v", got, ok, sk.Quantile(0.5))
	}

	prev := snapshot(sk)
	sk.Add(0)
	sk.Add(0)
	if got, ok := sk.DiffQuantile(prev, 0.5); !ok || got != 0 {
		t.Errorf("zero-only window q0.5 = (%v, %v), want (0, true)", got, ok)
	}

	// Force a collapse after the snapshot: with budget 64 (~half a decade
	// at α=1%), 1e9-scale observations fold the phase-1 buckets into the
	// cutoff. The window's upper tail must stay α-accurate regardless.
	prev = snapshot(sk)
	window := make([]float64, 5000)
	for i := range window {
		x := 1e9 * rng.ExpFloat64()
		window[i] = x
		sk.Add(x)
	}
	if !sk.Clamped() {
		t.Fatal("collapse did not trigger; widen the scale gap")
	}
	sort.Float64s(window)
	exact := window[int(math.Ceil(0.99*float64(len(window))))-1]
	got, ok := sk.DiffQuantile(prev, 0.99)
	if !ok {
		t.Fatal("post-collapse window reported ok = false")
	}
	if relErr := math.Abs(got-exact) / exact; relErr > DefaultAlpha*(1+1e-9) {
		t.Errorf("post-collapse window q0.99 = %v, exact %v (rel err %.4f > α)", got, exact, relErr)
	}

	// Mismatched configuration panics like Merge.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched DiffQuantile did not panic")
			}
		}()
		sk.DiffQuantile(NewSketch(0.02, 64), 0.5)
	}()
}

// TestSketchPanics pins the validation surface.
func TestSketchPanics(t *testing.T) {
	sk := NewSketch(0.01, 64)
	other := NewSketch(0.02, 64)
	for _, fn := range []func(){
		func() { NewSketch(0, 64) },
		func() { NewSketch(1, 64) },
		func() { NewSketch(0.01, 1) },
		func() { sk.Add(-1) },
		func() { sk.Add(math.NaN()) },
		func() { sk.Quantile(0) },
		func() { sk.Quantile(1) },
		func() { sk.Merge(other) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestSketchAddAllocFree: Add and Merge must not allocate — the property
// the simulator's 0 allocs/event floor and the live recorder's hot path
// inherit (machine-checked structurally by the finitelint hotpath
// analyzer, measured here).
func TestSketchAddAllocFree(t *testing.T) {
	sk := NewSketch(DefaultAlpha, 64)
	other := NewSketch(DefaultAlpha, 64)
	rng := rand.New(rand.NewPCG(2, 9))
	xs := make([]float64, 4096)
	for i := range xs {
		// Wide range so collapses happen inside the measured region too.
		xs[i] = rng.ExpFloat64() * math.Pow(10, float64(i%10)*4)
		other.Add(xs[i])
	}
	i := 0
	if avg := testing.AllocsPerRun(10, func() {
		for j := 0; j < 256; j++ {
			sk.Add(xs[i&4095])
			i++
		}
	}); avg != 0 {
		t.Errorf("Add: %v allocs per 256-observation chunk, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { sk.Merge(other) }); avg != 0 {
		t.Errorf("Merge: %v allocs, want 0", avg)
	}
}

// TestSketchCumulativeBuckets checks the Prometheus exposition view:
// boundaries strictly increase, counts are nondecreasing and exact (the
// final bucket accounts for every observation), and coarsening respects
// the requested cap.
func TestSketchCumulativeBuckets(t *testing.T) {
	sk := NewSketch(DefaultAlpha, DefaultSketchBudget)
	rng := rand.New(rand.NewPCG(6, 6))
	sk.Add(0) // exercise the zero bucket's inclusion in cumulative counts
	for i := 0; i < 10_000; i++ {
		sk.Add(rng.ExpFloat64())
	}
	for _, maxB := range []int{8, 32, 1 << 20} {
		bs := sk.CumulativeBuckets(maxB)
		if len(bs) == 0 || len(bs) > maxB {
			t.Fatalf("max=%d: got %d buckets", maxB, len(bs))
		}
		for i := range bs {
			if i > 0 && (bs[i].LE <= bs[i-1].LE || bs[i].Count < bs[i-1].Count) {
				t.Fatalf("max=%d: bucket %d not monotone: %+v after %+v", maxB, i, bs[i], bs[i-1])
			}
		}
		if last := bs[len(bs)-1]; last.Count != sk.N() {
			t.Errorf("max=%d: final cumulative count %d, want N=%d", maxB, last.Count, sk.N())
		}
		// Cross-check one boundary against Tail: count ≤ LE must equal
		// N − (count > LE).
		mid := bs[len(bs)/2]
		if got := sk.N() - int64(math.Round(sk.Tail(mid.LE)*float64(sk.N()))); got != mid.Count {
			t.Errorf("max=%d: bucket at le=%v count %d, Tail cross-check %d", maxB, mid.LE, mid.Count, got)
		}
	}
	if NewSketch(0.01, 64).CumulativeBuckets(8) != nil {
		t.Error("empty sketch should expose no buckets")
	}
}
