package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramQuantileUniform(t *testing.T) {
	h := NewHistogram(0.01, 200) // covers [0, 2)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 200_000; i++ {
		h.Add(rng.Float64()) // U(0,1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got := h.Quantile(q); math.Abs(got-q) > 0.01 {
			t.Errorf("quantile(%v) = %v", q, got)
		}
	}
	if h.N() != 200_000 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramQuantileExponential(t *testing.T) {
	h := NewHistogram(0.02, 2000)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 400_000; i++ {
		h.Add(rng.ExpFloat64())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := -math.Log(1 - q)
		if got := h.Quantile(q); math.Abs(got-want) > 0.05*want+0.02 {
			t.Errorf("quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramTail(t *testing.T) {
	h := NewHistogram(0.1, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) * 0.1) // one observation per bin start
	}
	// P(X > 5.0): 49 observations strictly above (5.1 … 9.9), plus the
	// linear share of the containing bin.
	got := h.Tail(5.0)
	if math.Abs(got-0.50) > 0.02 {
		t.Errorf("Tail(5.0) = %v, want ≈ 0.50", got)
	}
	if got := h.Tail(1000); got != 0 {
		t.Errorf("Tail beyond range = %v, want 0 (no overflow)", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(1, 10)
	for i := 0; i < 90; i++ {
		h.Add(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Add(1e6) // overflow
	}
	if got := h.Tail(50); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("overflow tail = %v, want 0.1", got)
	}
	// The 0.95 quantile falls in overflow: clamp to the upper edge.
	if got := h.Quantile(0.95); got != 10 {
		t.Errorf("overflow quantile = %v, want upper edge 10", got)
	}
	if h.Max() != 1e6 {
		t.Errorf("Max = %v", h.Max())
	}
}

// TestHistogramExtremeValues is the regression test for the int-overflow
// bugs: int(x / h.width) wraps negative for x ≳ 1.8e17·width, so Add
// panicked (bins[-…]) instead of counting overflow and Tail indexed out
// of range instead of returning the overflow fraction. Both must treat
// any beyond-range value — however large — as overflow.
func TestHistogramExtremeValues(t *testing.T) {
	const width, bins = 0.02, 25_000 // the simulator's shape, limit 500
	cases := []struct {
		name     string
		x        float64
		overflow bool
	}{
		{"last-bin", 499.99, false},
		{"edge", 500, true},
		{"beyond-range", 1e6, true},
		{"int-overflow-threshold", 1.9e17 * width, true},
		{"huge", 1e300, true},
		{"max-float", math.MaxFloat64, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(width, bins)
			h.Add(1) // one in-range observation
			h.Add(tc.x)
			wantOv := int64(0)
			if tc.overflow {
				wantOv = 1
			}
			if got := h.Overflow(); got != wantOv {
				t.Errorf("Add(%v): Overflow() = %d, want %d", tc.x, got, wantOv)
			}
			if h.N() != 2 {
				t.Errorf("N = %d, want 2", h.N())
			}
			// Tail at the same extreme x must not panic either, and beyond
			// the range it reports exactly the overflow fraction.
			if tc.overflow {
				if got := h.Tail(tc.x); got != float64(wantOv)/2 {
					t.Errorf("Tail(%v) = %v, want %v", tc.x, got, float64(wantOv)/2)
				}
			}
			// The sketch-free stream path shares the fused arithmetic.
			s := NewStream(1000, width, bins)
			s.AddBatch([]float64{1, tc.x})
			if got := s.Overflow(); got != wantOv {
				t.Errorf("AddBatch(%v): Overflow() = %d, want %d", tc.x, got, wantOv)
			}
		})
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, fn := range []func(){
		func() { NewHistogram(0, 10) },
		func() { NewHistogram(1, 0) },
		func() { h.Add(-1) },
		func() { h.Add(math.NaN()) },
		func() { h.Quantile(0) },
		func() { h.Quantile(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10)
	if h.Quantile(0.5) != 0 || h.Tail(1) != 0 {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(0.1, 50)
	a, b := NewHistogram(0.1, 50), NewHistogram(0.1, 50)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 20_000; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if a.Max() != whole.Max() {
		t.Errorf("merged max %v, want %v", a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("merged quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got, want := a.Tail(2), whole.Tail(2); got != want {
		t.Errorf("merged tail(2) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched widths did not panic")
		}
	}()
	a.Merge(NewHistogram(0.2, 50))
}
