package stats

import (
	"fmt"
	"math"
)

// Histogram accumulates nonnegative observations into fixed-width bins for
// quantile estimation on large simulation streams, where storing samples is
// not an option. Resolution is the bin width; values beyond the last bin
// land in an overflow bucket whose contribution is reported exactly at the
// boundary (quantiles inside the overflow region are lower bounds).
type Histogram struct {
	width    float64
	limit    float64 // width·bins: observations ≥ limit are overflow
	bins     []int64
	overflow int64
	n        int64
	max      float64
}

// NewHistogram creates a histogram covering [0, width·bins) at the given
// resolution.
func NewHistogram(width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram %v × %d", width, bins))
	}
	return &Histogram{width: width, limit: width * float64(bins), bins: make([]int64, bins)}
}

// Add records one observation; negative values panic (sojourns can't be).
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: invalid histogram observation %v", x))
	}
	h.n++
	if x > h.max {
		h.max = x
	}
	// The float comparison must come before the int conversion: for
	// x ≳ 1.8e17·width the quotient exceeds MaxInt64 and int(x/h.width)
	// is implementation-defined (negative on amd64/arm64), which used to
	// index bins[-…] and panic instead of counting overflow.
	if x >= h.limit {
		h.overflow++
		return
	}
	i := int(x / h.width)
	if i >= len(h.bins) { // belt for x/width rounding up to the edge
		h.overflow++
		return
	}
	h.bins[i]++
}

// Merge folds another histogram into h. Both must have identical width and
// bin count (as histograms built from the same configuration do).
func (h *Histogram) Merge(o *Histogram) {
	if o.width != h.width || len(o.bins) != len(h.bins) {
		panic(fmt.Sprintf("stats: merging mismatched histograms %v×%d and %v×%d",
			h.width, len(h.bins), o.width, len(o.bins)))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.overflow += o.overflow
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Overflow returns the number of observations at or beyond the covered
// range [0, width·bins). Quantiles that fall into this region are
// reported at the upper edge — a silent lower bound unless the caller
// checks this count and flags the clip.
func (h *Histogram) Overflow() int64 { return h.overflow }

// StateBytes returns the approximate in-memory footprint of the
// histogram — the bin array plus the fixed header.
func (h *Histogram) StateBytes() int { return 8*len(h.bins) + 64 }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile by linear interpolation
// within the containing bin. For quantiles falling into the overflow
// bucket it returns the histogram's upper edge (a lower bound on the true
// quantile).
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: quantile level %v outside (0,1)", q))
	}
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return (float64(i) + frac) * h.width
		}
		cum = next
	}
	return float64(len(h.bins)) * h.width
}

// Tail returns the empirical P(X > x); for x beyond the covered range it
// returns the overflow fraction.
func (h *Histogram) Tail(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	if x < 0 {
		return 1
	}
	// Same overflow hazard as Add: compare in float space before
	// converting, or Tail(1e300) indexes bins[negative].
	if x >= h.limit {
		return float64(h.overflow) / float64(h.n)
	}
	i := int(x / h.width)
	if i >= len(h.bins) {
		return float64(h.overflow) / float64(h.n)
	}
	var above int64 = h.overflow
	for j := i + 1; j < len(h.bins); j++ {
		above += h.bins[j]
	}
	// Within bin i, apportion linearly.
	frac := x/h.width - float64(i)
	above += int64(float64(h.bins[i]) * (1 - frac))
	return float64(above) / float64(h.n)
}
