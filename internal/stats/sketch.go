package stats

import (
	"fmt"
	"math"
)

// Sketch is a DDSketch-style quantile sketch with a relative-error
// guarantee: every quantile estimate q̂ satisfies |q̂ − q| ≤ α·q for the
// configured accuracy α. Observations land in log-spaced buckets — bucket
// i covers (γ^(i−1), γ^i] with γ = (1+α)/(1−α) — so the state needed for
// accurate p99/p999 is a few KB regardless of the observation range or
// stream length, where the fixed-width Histogram needs 200 KB to cover
// 500 mean service times and silently clips beyond that.
//
// The sketch is exactly mergeable: Merge folds another sketch bucket by
// bucket, and because collapsing is canonical (see below) the merged
// state is bit-for-bit the state a single sketch would have reached
// observing the union of both streams, in any order. That is the property
// the simulator's replication pooling (internal/engine) and the live
// recorder's shard pooling (internal/lb) lean on: shard-merged and
// whole-stream tails are the same numbers, not approximately so.
//
// Bounded memory under collapsing. Buckets live in a power-of-two ring
// (budget slots, slot = index & mask) holding the contiguous index window
// [lo, hi]. When an observation would widen the window past the budget,
// every bucket below the cutoff c = hi − budget + 1 is folded into bucket
// c: the lowest buckets lose resolution (their values are reported as
// ≈γ^c, an over-estimate of the smallest sojourns) while the upper tail —
// the part the repo reports — keeps its full α guarantee. The cutoff
// depends only on the largest index ever seen, so the final state is a
// pure function of the observed multiset: the reason merge stays exact
// even when shards collapsed at different times. Clamped reports whether
// any fold happened. With the default α = 1% and budget = 1024 the window
// spans a ratio of γ^1024 ≈ 8·10⁸ between smallest and largest resolvable
// sojourn — collapsing never triggers in realistic runs; it is the
// worst-case memory bound, not an expected mode.
//
// Values below sketchMinValue (and exact zeros) are counted in a separate
// zero bucket. Negative and NaN observations panic as in Histogram.
// A Sketch is not safe for concurrent use; accumulate per goroutine and
// Merge, exactly like Stream.
type Sketch struct {
	alpha   float64
	gamma   float64
	invLogG float64 // 1 / ln γ, for the index map
	valCoef float64 // 2γ⁰/(γ+1): bucket i estimates valCoef·γ^i

	counts []int64 // ring over bucket indexes; len is a power of two
	mask   int     // len(counts) − 1
	lo, hi int     // inclusive index window; valid iff posN > 0

	posN    int64 // observations in counts (excludes the zero bucket)
	zero    int64 // observations below sketchMinValue
	n       int64 // total observations
	max     float64
	clamped bool // some bucket was ever folded into the cutoff
}

// sketchMinValue is the smallest distinguishable observation; anything
// smaller counts as zero. 1e-12 mean service times is far below any
// measurable sojourn.
const sketchMinValue = 1e-12

// Default sketch configuration shared by the simulator and the live
// recorder: 1% relative error, 1024 buckets ≈ 8 KB of counters.
const (
	DefaultAlpha        = 0.01
	DefaultSketchBudget = 1024
)

// NewSketch creates a sketch with relative accuracy alpha and at most
// budget buckets (rounded up to a power of two for the ring store).
func NewSketch(alpha float64, budget int) *Sketch {
	if !(alpha > 0 && alpha < 1) || budget < 2 {
		panic(fmt.Sprintf("stats: invalid sketch α=%v budget=%d", alpha, budget))
	}
	b := 1
	for b < budget {
		b <<= 1
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		valCoef: 2 / (gamma + 1),
		counts:  make([]int64, b),
		mask:    b - 1,
	}
}

// Add records one observation; negative values and NaN panic (sojourns
// can't be). This is the per-departure accumulator of the event loops.
//
//finitelb:hotpath
func (s *Sketch) Add(x float64) {
	if !(x >= 0) {
		s.badObservation(x)
	}
	s.n++
	if x > s.max {
		s.max = x
	}
	if x < sketchMinValue {
		s.zero++
		return
	}
	s.addCount(int(math.Ceil(math.Log(x)*s.invLogG)), 1)
}

// badObservation is the cold panic exit, kept out of Add so the hot path
// stays fmt-free (finitelint hotpath).
func (s *Sketch) badObservation(x float64) {
	panic(fmt.Sprintf("stats: invalid sketch observation %v", x))
}

// addCount books cnt observations into bucket idx, maintaining the window
// invariants: counts holds exactly [lo, hi], every slot outside is zero,
// counts[lo] > 0 and counts[hi] > 0, and hi − lo < len(counts). Shared by
// Add and Merge so both apply the identical canonical collapse rule.
//
//finitelb:hotpath
func (s *Sketch) addCount(idx int, cnt int64) {
	switch {
	case s.posN == 0:
		s.lo, s.hi = idx, idx
	case idx > s.hi:
		if idx-s.lo+1 > len(s.counts) {
			s.collapse(idx - len(s.counts) + 1)
		}
		s.hi = idx
	case idx < s.lo:
		if c := s.hi - len(s.counts) + 1; idx < c {
			// Below the canonical cutoff for the current hi: the value is
			// recorded at the cutoff bucket, same as if it had been
			// collapsed there.
			idx = c
			s.clamped = true
		}
		if idx < s.lo {
			s.lo = idx
		}
	}
	s.counts[idx&s.mask] += cnt
	s.posN += cnt
}

// collapse folds every bucket below newLo into bucket newLo. Slots vacated
// here are exactly the slots the subsequent window extension aliases, so
// the "outside the window is zero" invariant survives without a full ring
// sweep.
//
//finitelb:hotpath
func (s *Sketch) collapse(newLo int) {
	var sum int64
	for j := s.lo; j < newLo && j <= s.hi; j++ {
		sum += s.counts[j&s.mask]
		s.counts[j&s.mask] = 0
	}
	if newLo > s.hi {
		s.hi = newLo
	}
	s.counts[newLo&s.mask] += sum
	s.lo = newLo
	s.clamped = true
}

// Merge folds another sketch into s. Both must share one configuration
// (accuracy and budget). Because the collapse rule is canonical, the
// result is bit-identical to a single sketch that observed both streams —
// in any merge order, even when the shards collapsed independently.
//
//finitelb:hotpath
func (s *Sketch) Merge(o *Sketch) {
	if o.gamma != s.gamma || len(o.counts) != len(s.counts) {
		s.mismatch(o)
	}
	s.n += o.n
	s.zero += o.zero
	if o.max > s.max {
		s.max = o.max
	}
	if o.clamped {
		s.clamped = true
	}
	if o.posN == 0 {
		return
	}
	for j := o.lo; j <= o.hi; j++ {
		if c := o.counts[j&o.mask]; c != 0 {
			s.addCount(j, c)
		}
	}
}

// mismatch is Merge's cold panic exit (finitelint hotpath).
func (s *Sketch) mismatch(o *Sketch) {
	panic(fmt.Sprintf("stats: merging mismatched sketches α=%v×%d and α=%v×%d",
		s.alpha, len(s.counts), o.alpha, len(o.counts)))
}

// N returns the number of observations.
func (s *Sketch) N() int64 { return s.n }

// Max returns the largest observation.
func (s *Sketch) Max() float64 { return s.max }

// Alpha returns the configured relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Clamped reports whether the bucket budget ever forced low buckets to
// collapse: quantiles that fall in the collapsed region are reported at
// the cutoff (an upper bound); the upper tail keeps the α guarantee.
func (s *Sketch) Clamped() bool { return s.clamped }

// StateBytes returns the approximate in-memory footprint of the sketch —
// the counter ring plus the fixed header.
func (s *Sketch) StateBytes() int { return 8*len(s.counts) + 96 }

// Quantile returns the q-quantile with relative error at most α: the
// estimate is the log-midpoint 2γ^i/(γ+1) of the containing bucket,
// clamped to the observed maximum.
func (s *Sketch) Quantile(q float64) float64 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: quantile level %v outside (0,1)", q))
	}
	if s.n == 0 {
		return 0
	}
	target := q * float64(s.n)
	cum := float64(s.zero)
	if s.zero > 0 && cum >= target {
		return 0
	}
	for i := s.lo; i <= s.hi; i++ {
		c := s.counts[i&s.mask]
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			if v := s.valCoef * math.Pow(s.gamma, float64(i)); v < s.max {
				return v
			}
			return s.max
		}
	}
	return s.max
}

// DiffQuantile returns the q-quantile of the observations recorded
// between the snapshot prev and the current state — the windowed tail
// behind cmd/lbd's SLO-guarded load shedding, where successive
// Recorder.TailSketch snapshots difference into a per-window p99
// without resetting the lifetime accumulator. Differencing is exact
// because the sketch is a pure function of the observed multiset:
// subtracting prev's counts bucket-wise leaves precisely the window's
// counts, with prev's buckets below the current collapse cutoff folded
// into the cutoff bucket (where canonical collapsing moved them). prev
// must be an earlier snapshot of this same stream with the same
// configuration; nil prev means "since the beginning". The bool is
// false when the window holds no observations.
func (s *Sketch) DiffQuantile(prev *Sketch, q float64) (float64, bool) {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: quantile level %v outside (0,1)", q))
	}
	if prev == nil {
		return s.Quantile(q), s.n > 0
	}
	if prev.gamma != s.gamma || len(prev.counts) != len(s.counts) {
		s.mismatch(prev)
	}
	dn := s.n - prev.n
	if dn <= 0 {
		return 0, false
	}
	target := q * float64(dn)
	cum := float64(s.zero - prev.zero)
	if cum >= target && s.zero > prev.zero {
		return 0, true
	}
	// Counts prev recorded below the current window were folded into
	// s.lo by a collapse after the snapshot; subtract them there.
	var prevBelow int64
	if prev.posN > 0 {
		for j := prev.lo; j < s.lo && j <= prev.hi; j++ {
			prevBelow += prev.counts[j&prev.mask]
		}
	}
	for i := s.lo; i <= s.hi && s.posN > 0; i++ {
		c := s.counts[i&s.mask]
		if prev.posN > 0 && i >= prev.lo && i <= prev.hi {
			c -= prev.counts[i&prev.mask]
		}
		if i == s.lo {
			c -= prevBelow
		}
		if c <= 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			// s.max is the lifetime maximum — an upper clamp for the
			// window too, so the estimate stays conservative.
			if v := s.valCoef * math.Pow(s.gamma, float64(i)); v < s.max {
				return v, true
			}
			return s.max, true
		}
	}
	return s.max, true
}

// Tail returns the empirical P(X > x), over-counting by at most the
// partial bucket containing x (a relative slack of α in x).
func (s *Sketch) Tail(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	if x < sketchMinValue {
		return float64(s.posN) / float64(s.n)
	}
	if s.posN == 0 {
		return 0
	}
	// Buckets strictly above k hold only values > γ^k ≥ values > x.
	k := int(math.Floor(math.Log(x) * s.invLogG))
	start := k + 1
	if start < s.lo {
		start = s.lo
	}
	var above int64
	for j := start; j <= s.hi; j++ {
		above += s.counts[j&s.mask]
	}
	return float64(above) / float64(s.n)
}

// TailBucket is one cumulative bucket of a Prometheus-style exposition:
// Count observations were ≤ LE.
type TailBucket struct {
	LE    float64
	Count int64
}

// CumulativeBuckets coarsens the sketch into at most max cumulative
// buckets at exact γ-power boundaries — counts are exact (every value in
// the folded buckets is ≤ the boundary), only the boundary spacing is
// coarsened. Suitable directly as a native Prometheus histogram; the
// caller appends the +Inf bucket with the total count. Returns nil when
// no positive observations were recorded.
func (s *Sketch) CumulativeBuckets(max int) []TailBucket {
	if s.posN == 0 || max < 1 {
		return nil
	}
	span := s.hi - s.lo + 1
	stride := (span + max - 1) / max
	out := make([]TailBucket, 0, (span+stride-1)/stride)
	cum := s.zero
	for j := s.lo; j <= s.hi; j += stride {
		top := j + stride - 1
		if top > s.hi {
			top = s.hi
		}
		for i := j; i <= top; i++ {
			cum += s.counts[i&s.mask]
		}
		out = append(out, TailBucket{LE: math.Pow(s.gamma, float64(top)), Count: cum})
	}
	return out
}
