package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWelfordSmall(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if want := 32.0 / 7; math.Abs(w.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), want)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single observation: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestWelfordMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		n := 2 + rng.IntN(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-direct) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 10000; i++ {
		b.Add(rng.Float64()) // iid uniform, mean 0.5
	}
	if b.Batches() != 1000 {
		t.Fatalf("Batches = %d, want 1000", b.Batches())
	}
	lo, hi := b.Interval()
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("95%% CI (%v, %v) misses the true mean 0.5", lo, hi)
	}
	if b.HalfWidth() > 0.01 {
		t.Errorf("half-width %v too wide for 10k uniform samples", b.HalfWidth())
	}
}

func TestBatchMeansFewBatches(t *testing.T) {
	b := NewBatchMeans(100)
	for i := 0; i < 150; i++ {
		b.Add(1)
	}
	if b.Batches() != 1 {
		t.Fatalf("Batches = %d, want 1", b.Batches())
	}
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Error("half-width with one batch should be infinite")
	}
}

func TestBatchMeansInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBatchMeans(0) did not panic")
		}
	}()
	NewBatchMeans(0)
}

// TestWelfordMergeMatchesSingleStream: merging split accumulators must
// reproduce the moments of one accumulator that saw every observation.
func TestWelfordMergeMatchesSingleStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := make([]float64, 10_001)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 137, 5000, len(xs)} {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N = %d, want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("cut %d: mean %v vs %v", cut, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-10 {
			t.Errorf("cut %d: variance %v vs %v", cut, a.Variance(), whole.Variance())
		}
	}
}

func TestBatchMeansMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	a, b := NewBatchMeans(100), NewBatchMeans(100)
	for i := 0; i < 5_000; i++ {
		a.Add(rng.Float64())
		b.Add(rng.Float64())
	}
	na, nb := a.Batches(), b.Batches()
	a.Merge(b)
	if a.Batches() != na+nb {
		t.Errorf("merged batches = %d, want %d", a.Batches(), na+nb)
	}
	if h := a.HalfWidth(); !(h > 0) || math.IsInf(h, 1) {
		t.Errorf("merged half-width %v", h)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched batch sizes did not panic")
		}
	}()
	a.Merge(NewBatchMeans(50))
}
