// Package stats provides the streaming statistics used by the simulators:
// Welford mean/variance accumulation and batch-means confidence intervals,
// the standard technique for correlated steady-state queueing output.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a running mean and variance in one pass. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w, as if w had also seen every
// observation recorded by o (Chan et al.'s parallel update). Used to pool
// moments across concurrently executed simulation replications.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// BatchMeans builds a confidence interval for the steady-state mean of a
// correlated series by averaging contiguous batches: batch averages become
// approximately independent once batches are much longer than the
// correlation time.
type BatchMeans struct {
	batchSize int64
	cur       Welford // within the current batch
	batches   Welford // across completed batch means
}

// NewBatchMeans creates an accumulator with the given batch size.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize < 1 {
		panic(fmt.Sprintf("stats: invalid batch size %d", batchSize))
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.N() == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur = Welford{}
	}
}

// Merge folds the completed batches of another accumulator into b. Batch
// means from independently seeded replications are independent draws of
// the same batch-mean distribution, so pooling them tightens the interval
// exactly as more batches from a single stream would. Each accumulator's
// partial trailing batch is discarded, as it is in a single-stream run.
// Batch sizes must match for the pooled batches to be identically
// distributed.
func (b *BatchMeans) Merge(o *BatchMeans) {
	if o.batchSize != b.batchSize {
		panic(fmt.Sprintf("stats: merging batch sizes %d and %d", b.batchSize, o.batchSize))
	}
	b.batches.Merge(o.batches)
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the half-width of an approximate 95% confidence
// interval for the mean (normal critical value; batch counts are large
// enough here that Student-t refinement is immaterial).
func (b *BatchMeans) HalfWidth() float64 {
	n := b.batches.N()
	if n < 2 {
		return math.Inf(1)
	}
	return 1.96 * b.batches.StdDev() / math.Sqrt(float64(n))
}

// Interval returns the 95% confidence interval (lo, hi).
func (b *BatchMeans) Interval() (lo, hi float64) {
	h := b.HalfWidth()
	return b.Mean() - h, b.Mean() + h
}
