package stats

// Stream bundles the accumulators of one sojourn-time measurement stream:
// running moments (Welford), a batch-means confidence interval, a quantile
// histogram, and the largest queue length observed. It is the shared
// measurement currency of the repository — the discrete-event simulator
// (internal/sim) fills one per replication and the live dispatcher runtime
// (internal/lb) fills one per server shard — so simulated and live
// estimates are produced by byte-for-byte the same arithmetic and are
// directly comparable. Streams are not safe for concurrent use; accumulate
// per goroutine and Merge.
type Stream struct {
	Sojourns Welford
	Batch    *BatchMeans
	Hist     *Histogram
	MaxQueue int
}

// NewStream creates a stream with the given batch size for the confidence
// interval and a quantile histogram of bins fixed-width buckets of the
// given width.
func NewStream(batchSize int64, binWidth float64, bins int) *Stream {
	return &Stream{
		Batch: NewBatchMeans(batchSize),
		Hist:  NewHistogram(binWidth, bins),
	}
}

// Add records one sojourn observation into every accumulator.
func (s *Stream) Add(sojourn float64) {
	s.Batch.Add(sojourn)
	s.Sojourns.Add(sojourn)
	s.Hist.Add(sojourn)
}

// ObserveQueue records a queue length; only the running maximum is kept.
func (s *Stream) ObserveQueue(l int) {
	if l > s.MaxQueue {
		s.MaxQueue = l
	}
}

// N returns the number of sojourns recorded.
func (s *Stream) N() int64 { return s.Sojourns.N() }

// Merge folds another stream into s, pooling moments, batch means, and
// histogram counts exactly as if s had also seen o's observations (up to
// o's partial trailing batch, which is discarded as in a single-stream
// run). Batch sizes and histogram shapes must match.
func (s *Stream) Merge(o *Stream) {
	s.Sojourns.Merge(o.Sojourns)
	s.Batch.Merge(o.Batch)
	s.Hist.Merge(o.Hist)
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
}
