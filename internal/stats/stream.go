package stats

import (
	"fmt"
	"math"
)

// Stream bundles the accumulators of one sojourn-time measurement stream:
// running moments (Welford), a batch-means confidence interval, a tail
// estimator, and the largest queue length observed. It is the shared
// measurement currency of the repository — the discrete-event simulator
// (internal/sim) fills one per replication and the live dispatcher runtime
// (internal/lb) fills one per server shard — so simulated and live
// estimates are produced by byte-for-byte the same arithmetic and are
// directly comparable. Streams are not safe for concurrent use; accumulate
// per goroutine and Merge.
//
// The tail estimator is exactly one of Hist (fixed-width Histogram, the
// legacy shape the bit-identity goldens were captured with) or Sketch (the
// mergeable relative-error quantile sketch, the default everywhere new).
// Which one is active never changes the moment/batch arithmetic — only how
// Quantile answers.
type Stream struct {
	Sojourns Welford
	Batch    *BatchMeans
	Hist     *Histogram
	Sketch   *Sketch
	MaxQueue int
}

// NewStream creates a stream with the given batch size for the confidence
// interval and a fixed-width quantile histogram of bins buckets of the
// given width. This is the legacy constructor kept for the golden tests;
// new call sites want NewSketchStream.
func NewStream(batchSize int64, binWidth float64, bins int) *Stream {
	return &Stream{
		Batch: NewBatchMeans(batchSize),
		Hist:  NewHistogram(binWidth, bins),
	}
}

// NewSketchStream creates a stream whose tail estimator is a mergeable
// quantile sketch with relative accuracy alpha and at most budget
// buckets — O(KB) of state with no upper range limit, against the
// histogram's 200 KB and hard 500-service-time ceiling.
func NewSketchStream(batchSize int64, alpha float64, budget int) *Stream {
	return &Stream{
		Batch:  NewBatchMeans(batchSize),
		Sketch: NewSketch(alpha, budget),
	}
}

// Add records one sojourn observation into every accumulator.
func (s *Stream) Add(sojourn float64) {
	s.Batch.Add(sojourn)
	s.Sojourns.Add(sojourn)
	if s.Sketch != nil {
		s.Sketch.Add(sojourn)
	} else {
		s.Hist.Add(sojourn)
	}
}

// AddBatch records a block of observations, equivalent to calling Add on
// each in order (identical accumulator arithmetic, identical final state)
// but amortizing the per-observation call chain: the simulator's event
// loop buffers measured sojourns on its stack and flushes them in blocks,
// which keeps the accumulator objects out of the per-event working set.
// The loop body is Add's, hand-fused for the histogram arm (same package,
// same fields, same operation order — bit-identical accumulator states);
// the sketch's Add is already a leaf call.
//
//finitelb:hotpath
func (s *Stream) AddBatch(xs []float64) {
	b := s.Batch
	if sk := s.Sketch; sk != nil {
		for _, x := range xs {
			b.cur.Add(x)
			if b.cur.n == b.batchSize {
				b.batches.Add(b.cur.Mean())
				b.cur = Welford{}
			}
			s.Sojourns.Add(x)
			sk.Add(x)
		}
		return
	}
	h := s.Hist
	for _, x := range xs {
		b.cur.Add(x)
		if b.cur.n == b.batchSize {
			b.batches.Add(b.cur.Mean())
			b.cur = Welford{}
		}
		s.Sojourns.Add(x)
		if x < 0 || math.IsNaN(x) {
			s.badObservation(x)
		}
		h.n++
		if x > h.max {
			h.max = x
		}
		if x >= h.limit {
			h.overflow++
			continue
		}
		if i := int(x / h.width); i < len(h.bins) {
			h.bins[i]++
		} else {
			h.overflow++
		}
	}
}

// badObservation is AddBatch's cold panic exit (finitelint hotpath).
func (s *Stream) badObservation(x float64) {
	panic(fmt.Sprintf("stats: invalid histogram observation %v", x))
}

// ObserveQueue records a queue length; only the running maximum is kept.
func (s *Stream) ObserveQueue(l int) {
	if l > s.MaxQueue {
		s.MaxQueue = l
	}
}

// N returns the number of sojourns recorded.
func (s *Stream) N() int64 { return s.Sojourns.N() }

// Quantile estimates the q-quantile of the sojourn stream through
// whichever tail estimator the stream carries.
func (s *Stream) Quantile(q float64) float64 {
	if s.Sketch != nil {
		return s.Sketch.Quantile(q)
	}
	return s.Hist.Quantile(q)
}

// Overflow returns the number of observations the tail estimator could
// not resolve: the histogram's beyond-range count, which silently clips
// high quantiles to the upper edge. Sketch streams have no range ceiling
// and always return 0.
func (s *Stream) Overflow() int64 {
	if s.Hist != nil {
		return s.Hist.Overflow()
	}
	return 0
}

// StateBytes returns the approximate in-memory footprint of the stream's
// accumulators — in practice the tail estimator, which dominates.
func (s *Stream) StateBytes() int {
	b := 128 // Welford + BatchMeans + header
	if s.Hist != nil {
		b += s.Hist.StateBytes()
	}
	if s.Sketch != nil {
		b += s.Sketch.StateBytes()
	}
	return b
}

// Merge folds another stream into s, pooling moments, batch means, and
// tail-estimator state exactly as if s had also seen o's observations (up
// to o's partial trailing batch, which is discarded as in a single-stream
// run). Batch sizes and tail-estimator configurations must match.
func (s *Stream) Merge(o *Stream) {
	s.Sojourns.Merge(o.Sojourns)
	s.Batch.Merge(o.Batch)
	if s.Sketch != nil && o.Sketch != nil {
		s.Sketch.Merge(o.Sketch)
	} else if s.Hist != nil && o.Hist != nil {
		s.Hist.Merge(o.Hist)
	} else {
		panic("stats: merging streams with different tail estimators")
	}
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
}
