package stats

import (
	"fmt"
	"math"
)

// Stream bundles the accumulators of one sojourn-time measurement stream:
// running moments (Welford), a batch-means confidence interval, a quantile
// histogram, and the largest queue length observed. It is the shared
// measurement currency of the repository — the discrete-event simulator
// (internal/sim) fills one per replication and the live dispatcher runtime
// (internal/lb) fills one per server shard — so simulated and live
// estimates are produced by byte-for-byte the same arithmetic and are
// directly comparable. Streams are not safe for concurrent use; accumulate
// per goroutine and Merge.
type Stream struct {
	Sojourns Welford
	Batch    *BatchMeans
	Hist     *Histogram
	MaxQueue int
}

// NewStream creates a stream with the given batch size for the confidence
// interval and a quantile histogram of bins fixed-width buckets of the
// given width.
func NewStream(batchSize int64, binWidth float64, bins int) *Stream {
	return &Stream{
		Batch: NewBatchMeans(batchSize),
		Hist:  NewHistogram(binWidth, bins),
	}
}

// Add records one sojourn observation into every accumulator.
func (s *Stream) Add(sojourn float64) {
	s.Batch.Add(sojourn)
	s.Sojourns.Add(sojourn)
	s.Hist.Add(sojourn)
}

// AddBatch records a block of observations, equivalent to calling Add on
// each in order (identical accumulator arithmetic, identical final state)
// but amortizing the per-observation call chain: the simulator's event
// loop buffers measured sojourns on its stack and flushes them in blocks,
// which keeps the three accumulator objects out of the per-event working
// set.
// The loop body is Add's, hand-fused (same package, same fields, same
// operation order — bit-identical accumulator states) so the whole block
// runs without a call per observation.
func (s *Stream) AddBatch(xs []float64) {
	b := s.Batch
	h := s.Hist
	for _, x := range xs {
		b.cur.Add(x)
		if b.cur.n == b.batchSize {
			b.batches.Add(b.cur.Mean())
			b.cur = Welford{}
		}
		s.Sojourns.Add(x)
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("stats: invalid histogram observation %v", x))
		}
		h.n++
		if x > h.max {
			h.max = x
		}
		if i := int(x / h.width); i < len(h.bins) {
			h.bins[i]++
		} else {
			h.overflow++
		}
	}
}

// ObserveQueue records a queue length; only the running maximum is kept.
func (s *Stream) ObserveQueue(l int) {
	if l > s.MaxQueue {
		s.MaxQueue = l
	}
}

// N returns the number of sojourns recorded.
func (s *Stream) N() int64 { return s.Sojourns.N() }

// Merge folds another stream into s, pooling moments, batch means, and
// histogram counts exactly as if s had also seen o's observations (up to
// o's partial trailing batch, which is discarded as in a single-stream
// run). Batch sizes and histogram shapes must match.
func (s *Stream) Merge(o *Stream) {
	s.Sojourns.Merge(o.Sojourns)
	s.Batch.Merge(o.Batch)
	s.Hist.Merge(o.Hist)
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
}
