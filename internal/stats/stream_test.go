package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestStreamMergeMatchesSingleStream: merging shard streams must pool
// moments and histogram counts exactly as one stream seeing all
// observations (batch means agree when shards complete whole batches).
func TestStreamMergeMatchesSingleStream(t *testing.T) {
	const batch = 50
	whole := NewStream(batch, 0.1, 1000)
	a := NewStream(batch, 0.1, 1000)
	b := NewStream(batch, 0.1, 1000)
	rng := rand.New(rand.NewPCG(5, 9))
	for i := 0; i < 40*batch; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		// Alternate whole batches between the shards so both slicings
		// complete the same batch set.
		if (i/batch)%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.ObserveQueue(3)
	b.ObserveQueue(7)
	a.Merge(b)

	if a.N() != whole.N() {
		t.Fatalf("merged N %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Sojourns.Mean()-whole.Sojourns.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", a.Sojourns.Mean(), whole.Sojourns.Mean())
	}
	if math.Abs(a.Sojourns.Variance()-whole.Sojourns.Variance()) > 1e-9 {
		t.Errorf("merged variance %v, want %v", a.Sojourns.Variance(), whole.Sojourns.Variance())
	}
	if a.Batch.Batches() != whole.Batch.Batches() {
		t.Errorf("merged %d batches, want %d", a.Batch.Batches(), whole.Batch.Batches())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.Hist.Quantile(q), whole.Hist.Quantile(q); got != want {
			t.Errorf("merged q%.2f = %v, want %v", q, got, want)
		}
	}
	if a.MaxQueue != 7 {
		t.Errorf("merged max queue %d, want 7", a.MaxQueue)
	}
}
