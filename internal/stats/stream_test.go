package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestStreamMergeMatchesSingleStream: merging shard streams must pool
// moments and histogram counts exactly as one stream seeing all
// observations (batch means agree when shards complete whole batches).
func TestStreamMergeMatchesSingleStream(t *testing.T) {
	const batch = 50
	whole := NewStream(batch, 0.1, 1000)
	a := NewStream(batch, 0.1, 1000)
	b := NewStream(batch, 0.1, 1000)
	rng := rand.New(rand.NewPCG(5, 9))
	for i := 0; i < 40*batch; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		// Alternate whole batches between the shards so both slicings
		// complete the same batch set.
		if (i/batch)%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.ObserveQueue(3)
	b.ObserveQueue(7)
	a.Merge(b)

	if a.N() != whole.N() {
		t.Fatalf("merged N %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Sojourns.Mean()-whole.Sojourns.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", a.Sojourns.Mean(), whole.Sojourns.Mean())
	}
	if math.Abs(a.Sojourns.Variance()-whole.Sojourns.Variance()) > 1e-9 {
		t.Errorf("merged variance %v, want %v", a.Sojourns.Variance(), whole.Sojourns.Variance())
	}
	if a.Batch.Batches() != whole.Batch.Batches() {
		t.Errorf("merged %d batches, want %d", a.Batch.Batches(), whole.Batch.Batches())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := a.Hist.Quantile(q), whole.Hist.Quantile(q); got != want {
			t.Errorf("merged q%.2f = %v, want %v", q, got, want)
		}
	}
	if a.MaxQueue != 7 {
		t.Errorf("merged max queue %d, want 7", a.MaxQueue)
	}
}

// TestSketchStreamMergeMatchesSingleStream is the sketch-mode twin of the
// test above, with a stronger tail claim: sketch quantiles of the merged
// shards equal the whole-stream quantiles exactly, not just bucket-wise.
func TestSketchStreamMergeMatchesSingleStream(t *testing.T) {
	const batch = 50
	whole := NewSketchStream(batch, DefaultAlpha, DefaultSketchBudget)
	a := NewSketchStream(batch, DefaultAlpha, DefaultSketchBudget)
	b := NewSketchStream(batch, DefaultAlpha, DefaultSketchBudget)
	rng := rand.New(rand.NewPCG(5, 9))
	for i := 0; i < 40*batch; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		if (i/batch)%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Sojourns.Mean()-whole.Sojourns.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, want %v", a.Sojourns.Mean(), whole.Sojourns.Mean())
	}
	if a.Batch.Batches() != whole.Batch.Batches() {
		t.Errorf("merged %d batches, want %d", a.Batch.Batches(), whole.Batch.Batches())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("merged q%.3f = %v, want %v", q, got, want)
		}
	}
	if a.Overflow() != 0 {
		t.Errorf("sketch stream reported overflow %d", a.Overflow())
	}
}

// TestStreamAddBatchSketch: the sketch arm of AddBatch must leave every
// accumulator in the identical state as per-observation Add calls.
func TestStreamAddBatchSketch(t *testing.T) {
	batched := NewSketchStream(25, DefaultAlpha, DefaultSketchBudget)
	looped := NewSketchStream(25, DefaultAlpha, DefaultSketchBudget)
	rng := rand.New(rand.NewPCG(4, 2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		looped.Add(xs[i])
	}
	batched.AddBatch(xs)
	if batched.Sojourns != looped.Sojourns {
		t.Errorf("moments diverged: %+v vs %+v", batched.Sojourns, looped.Sojourns)
	}
	if batched.Batch.Batches() != looped.Batch.Batches() {
		t.Errorf("batches %d vs %d", batched.Batch.Batches(), looped.Batch.Batches())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a, b := batched.Quantile(q), looped.Quantile(q); a != b {
			t.Errorf("q%v: %v vs %v", q, a, b)
		}
	}
}

// TestStreamStateBytes pins the memory story the recorder migration is
// about: a sketch stream is two orders of magnitude smaller than the
// 25k-bin histogram stream.
func TestStreamStateBytes(t *testing.T) {
	hist := NewStream(100, 0.02, 25_000)
	sk := NewSketchStream(100, DefaultAlpha, DefaultSketchBudget)
	if hb := hist.StateBytes(); hb < 8*25_000 {
		t.Errorf("histogram stream %d B, want ≥ 200 KB", hb)
	}
	if sb := sk.StateBytes(); sb > 16*1024 {
		t.Errorf("sketch stream %d B, want O(KB)", sb)
	}
}
