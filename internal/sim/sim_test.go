package sim

import (
	"math"
	"testing"

	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

func TestRunMM1(t *testing.T) {
	// d=1, N=1: M/M/1 with known mean sojourn 1/(1−ρ).
	for _, rho := range []float64{0.5, 0.8} {
		res, err := Run(sqd.Params{N: 1, D: 1, Rho: rho}, Options{Jobs: 400_000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - rho)
		if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.02*want {
			t.Errorf("ρ=%v: delay %v, want %v (CI ±%v)", rho, res.MeanDelay, want, res.HalfWidth)
		}
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(sqd.Params{N: 2, D: 3, Rho: 0.5}, Options{Jobs: 10}); err == nil {
		t.Error("Run accepted d > N")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	a, err := Run(p, Options{Jobs: 50_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{Jobs: 50_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay != b.MeanDelay {
		t.Errorf("same seed, different results: %v vs %v", a.MeanDelay, b.MeanDelay)
	}
	c, err := Run(p, Options{Jobs: 50_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay == c.MeanDelay {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestRunSmallVsHeapTrackerAgree(t *testing.T) {
	// The two trackers must produce statistically identical systems; run
	// the same physical config on both sides of the N≤16 crossover by
	// comparing against the d=1 analytic value where N plays no role.
	const rho = 0.6
	small, err := Run(sqd.Params{N: 8, D: 1, Rho: rho}, Options{Jobs: 300_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(sqd.Params{N: 32, D: 1, Rho: rho}, Options{Jobs: 300_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - rho)
	for name, r := range map[string]Result{"linear": small, "heap": big} {
		if math.Abs(r.MeanDelay-want) > 5*r.HalfWidth+0.02*want {
			t.Errorf("%s tracker: delay %v, want %v", name, r.MeanDelay, want)
		}
	}
}

// TestRunMatchesExactSolve: the discrete-event simulator and the CTMC
// stationary solve describe the same system.
func TestRunMatchesExactSolve(t *testing.T) {
	p := sqd.Params{N: 3, D: 2, Rho: 0.75}
	simRes, err := Run(p, Options{Jobs: 600_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reference value from markov.SolveExact computed in its own tests;
	// recompute here cheaply via the asymptotic-free exact chain is
	// overkill, so assert against a pre-validated constant instead:
	// the exact N=3 SQ(2) ρ=0.75 sojourn is ≈ 2.139 (see markov tests).
	const want = 2.139
	if math.Abs(simRes.MeanDelay-want) > 5*simRes.HalfWidth+0.03*want {
		t.Errorf("sim delay %v, want ≈ %v (CI ±%v)", simRes.MeanDelay, want, simRes.HalfWidth)
	}
}

func TestRunCTMCExactModel(t *testing.T) {
	// Trajectory average of the exact model must match the M/M/1 value for
	// d=1, N=1.
	p := sqd.Params{N: 1, D: 1, Rho: 0.7}
	res := RunCTMC(&sqd.Exact{P: p}, statespace.MustState(0), CTMCOptions{Events: 2_000_000, Seed: 11})
	want := 1 / (1 - 0.7)
	if math.Abs(res.MeanDelay-want) > 0.05*want {
		t.Errorf("CTMC delay %v, want %v", res.MeanDelay, want)
	}
}

// TestRunCTMCBoundModelsBracket: simulating the bound models' trajectories
// brackets the exact simulation — the redirects act in the intended
// directions dynamically, not just in expectation.
func TestRunCTMCBoundModelsBracket(t *testing.T) {
	bp := sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: 2}
	start := statespace.MustState(0, 0, 0)
	opts := CTMCOptions{Events: 2_000_000, Seed: 13}
	lb := RunCTMC(&sqd.LowerBound{P: bp}, start, opts)
	ex := RunCTMC(&sqd.Exact{P: bp.Params}, start, opts)
	ub := RunCTMC(&sqd.UpperBound{P: bp}, start, opts)
	slack := 0.03 * ex.MeanDelay
	if !(lb.MeanDelay <= ex.MeanDelay+slack) {
		t.Errorf("simulated LB %v above exact %v", lb.MeanDelay, ex.MeanDelay)
	}
	if !(ub.MeanDelay >= ex.MeanDelay-slack) {
		t.Errorf("simulated UB %v below exact %v", ub.MeanDelay, ex.MeanDelay)
	}
}
