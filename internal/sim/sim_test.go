package sim

import (
	"math"
	"testing"

	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

func TestRunMM1(t *testing.T) {
	// d=1, N=1: M/M/1 with known mean sojourn 1/(1−ρ).
	for _, rho := range []float64{0.5, 0.8} {
		res, err := Run(sqd.Params{N: 1, D: 1, Rho: rho}, Options{Jobs: 400_000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - rho)
		if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.02*want {
			t.Errorf("ρ=%v: delay %v, want %v (CI ±%v)", rho, res.MeanDelay, want, res.HalfWidth)
		}
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(sqd.Params{N: 2, D: 3, Rho: 0.5}, Options{Jobs: 10}); err == nil {
		t.Error("Run accepted d > N")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	a, err := Run(p, Options{Jobs: 50_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{Jobs: 50_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay != b.MeanDelay {
		t.Errorf("same seed, different results: %v vs %v", a.MeanDelay, b.MeanDelay)
	}
	c, err := Run(p, Options{Jobs: 50_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay == c.MeanDelay {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestRunSmallVsHeapTrackerAgree(t *testing.T) {
	// The two trackers must produce statistically identical systems; run
	// the same physical config on both sides of the N≤16 crossover by
	// comparing against the d=1 analytic value where N plays no role.
	const rho = 0.6
	small, err := Run(sqd.Params{N: 8, D: 1, Rho: rho}, Options{Jobs: 300_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(sqd.Params{N: 32, D: 1, Rho: rho}, Options{Jobs: 300_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - rho)
	for name, r := range map[string]Result{"linear": small, "heap": big} {
		if math.Abs(r.MeanDelay-want) > 5*r.HalfWidth+0.02*want {
			t.Errorf("%s tracker: delay %v, want %v", name, r.MeanDelay, want)
		}
	}
}

// TestRunMatchesExactSolve: the discrete-event simulator and the CTMC
// stationary solve describe the same system.
func TestRunMatchesExactSolve(t *testing.T) {
	p := sqd.Params{N: 3, D: 2, Rho: 0.75}
	simRes, err := Run(p, Options{Jobs: 600_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reference value from markov.SolveExact computed in its own tests;
	// recompute here cheaply via the asymptotic-free exact chain is
	// overkill, so assert against a pre-validated constant instead:
	// the exact N=3 SQ(2) ρ=0.75 sojourn is ≈ 2.139 (see markov tests).
	const want = 2.139
	if math.Abs(simRes.MeanDelay-want) > 5*simRes.HalfWidth+0.03*want {
		t.Errorf("sim delay %v, want ≈ %v (CI ±%v)", simRes.MeanDelay, want, simRes.HalfWidth)
	}
}

func TestRunCTMCExactModel(t *testing.T) {
	// Trajectory average of the exact model must match the M/M/1 value for
	// d=1, N=1.
	p := sqd.Params{N: 1, D: 1, Rho: 0.7}
	res := RunCTMC(&sqd.Exact{P: p}, statespace.MustState(0), CTMCOptions{Events: 2_000_000, Seed: 11})
	want := 1 / (1 - 0.7)
	if math.Abs(res.MeanDelay-want) > 0.05*want {
		t.Errorf("CTMC delay %v, want %v", res.MeanDelay, want)
	}
}

// TestRunCTMCBoundModelsBracket: simulating the bound models' trajectories
// brackets the exact simulation — the redirects act in the intended
// directions dynamically, not just in expectation.
func TestRunCTMCBoundModelsBracket(t *testing.T) {
	bp := sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: 2}
	start := statespace.MustState(0, 0, 0)
	opts := CTMCOptions{Events: 2_000_000, Seed: 13}
	if testing.Short() {
		opts.Events = 500_000 // the 3% slack absorbs the extra noise at N=3
	}
	lb := RunCTMC(&sqd.LowerBound{P: bp}, start, opts)
	ex := RunCTMC(&sqd.Exact{P: bp.Params}, start, opts)
	ub := RunCTMC(&sqd.UpperBound{P: bp}, start, opts)
	slack := 0.03 * ex.MeanDelay
	if !(lb.MeanDelay <= ex.MeanDelay+slack) {
		t.Errorf("simulated LB %v above exact %v", lb.MeanDelay, ex.MeanDelay)
	}
	if !(ub.MeanDelay >= ex.MeanDelay-slack) {
		t.Errorf("simulated UB %v below exact %v", ub.MeanDelay, ex.MeanDelay)
	}
}

// TestRunReplicationsDefaultIsSingleStream: R=1 (or unset) must be
// bit-identical to the legacy serial simulator.
func TestRunReplicationsDefaultIsSingleStream(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	legacy, err := Run(p, Options{Jobs: 50_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(p, Options{Jobs: 50_000, Seed: 9, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != one {
		t.Errorf("Replications=1 diverges from default:\n%+v\n%+v", one, legacy)
	}
}

// TestRunReplicationsDeterministic: for fixed R the merged result must not
// depend on the worker count or on scheduling.
func TestRunReplicationsDeterministic(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	opts := Options{Jobs: 80_000, Seed: 9, Replications: 4}
	a, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 0} {
		o := opts
		o.Workers = w
		b, err := Run(p, o)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("workers=%d: merged result differs:\n%+v\n%+v", w, a, b)
		}
	}
}

// TestRunReplicationsMatchSingleRunMoments: splitting the budget across
// replications is statistically equivalent to one long stream — the pooled
// mean must agree with the single-stream mean within the joint confidence
// intervals, on a system with a known mean (M/M/1).
func TestRunReplicationsMatchSingleRunMoments(t *testing.T) {
	p := sqd.Params{N: 1, D: 1, Rho: 0.7}
	single, err := Run(p, Options{Jobs: 400_000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(p, Options{Jobs: 400_000, Seed: 21, Replications: 4})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Jobs != single.Jobs {
		t.Fatalf("merged jobs %d, want %d", merged.Jobs, single.Jobs)
	}
	want := 1 / (1 - p.Rho)
	for name, r := range map[string]Result{"single": single, "merged": merged} {
		if math.Abs(r.MeanDelay-want) > 5*r.HalfWidth+0.02*want {
			t.Errorf("%s: delay %v, want %v (CI ±%v)", name, r.MeanDelay, want, r.HalfWidth)
		}
		if !(r.HalfWidth > 0) {
			t.Errorf("%s: degenerate half-width %v", name, r.HalfWidth)
		}
	}
	if math.Abs(merged.MeanDelay-single.MeanDelay) > 5*(merged.HalfWidth+single.HalfWidth) {
		t.Errorf("merged delay %v too far from single-stream %v", merged.MeanDelay, single.MeanDelay)
	}
	// Quantiles pool through the merged histogram; P50 of M/M/1 sojourn is
	// ln(2)/(1−ρ) ≈ 2.31.
	if wantP50 := math.Ln2 / (1 - p.Rho); math.Abs(merged.P50-wantP50) > 0.05*wantP50 {
		t.Errorf("merged P50 %v, want ≈ %v", merged.P50, wantP50)
	}
}

// TestRunReplicationsUnevenBudget: the job budget must divide across R
// with the remainder spread one job at a time.
func TestRunReplicationsUnevenBudget(t *testing.T) {
	p := sqd.Params{N: 2, D: 1, Rho: 0.5}
	res, err := Run(p, Options{Jobs: 10_003, Seed: 2, Replications: 4, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 10_003 {
		t.Errorf("measured %d jobs, want 10003", res.Jobs)
	}
}
