package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"finitelb/internal/minindex"
	"finitelb/internal/sqd"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// Event-core benchmarks, the feed for BENCH_sim.json (see
// scripts/bench_sim.sh). Each op is one measured job — one arrival event
// plus one departure event — so events/sec is 2e9/ns_per_op. The four
// configurations cover the loops the ROADMAP's open sweeps actually pay
// for:
//
//   - fast: the default wiring (Poisson/exponential/SQ(2)), which
//     resolves onto the hand-specialized loop — sketch tail estimator,
//     the default;
//   - fast-hist: the same wiring on the legacy fixed-width histogram
//     estimator, the sketch-vs-histogram cost axis (math.Log per
//     departure vs one FDIV, 8 KB vs 200 KB of accumulator state);
//   - pluggable-default: the same physical system configured through the
//     pluggable machinery with an explicit unit-speed vector — the axis
//     that historically forced the interface loop, kept so the
//     before/after trajectory in BENCH_sim.json lines up;
//   - jsq-indexed: JSQ through the minindex tree at N ≥ 64 (scan below),
//     the large-N full-information policy;
//   - lwl-work-aware: LWL with per-job work tracking and heavy-tailed
//     service, the most bookkeeping-intensive path.
var benchConfigs = []struct {
	name           string
	explicitSpeeds bool
	opts           func() Options
}{
	{"fast", false, func() Options { return Options{} }},
	{"fast-hist", false, func() Options { return Options{Tail: TailHistogram} }},
	{"pluggable-default", true, func() Options {
		return Options{Arrival: workload.Poisson{}, Service: workload.Exponential{}}
	}},
	{"jsq-indexed", false, func() Options { return Options{Policy: workload.JSQ{}} }},
	{"lwl-work-aware", false, func() Options {
		pareto, err := workload.NewBoundedPareto(1.5, 1000)
		if err != nil {
			panic(err)
		}
		return Options{Service: pareto, Policy: workload.LWL{}}
	}},
}

var benchSizes = []int{10, 250, 1000, 10000}

func BenchmarkSimJobs(b *testing.B) {
	for _, bc := range benchConfigs {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", bc.name, n), func(b *testing.B) {
				p := sqd.Params{N: n, D: 2, Rho: 0.9}
				opts := bc.opts()
				opts.Jobs = int64(b.N)
				opts.Warmup = 1 // skip the warmup default of Jobs/10
				opts.Seed = 1
				opts.setDefaults()
				if bc.explicitSpeeds {
					// Historically this forced the wiring off the concrete
					// fast path onto the interface loop; both now resolve to
					// the same typed loop, and the axis is kept so the
					// before/after trajectory in BENCH_sim.json lines up.
					opts.Speeds = make([]float64, n)
					for i := range opts.Speeds {
						opts.Speeds[i] = 1
					}
				}
				w, err := resolve(p, opts)
				if err != nil {
					b.Fatal(err)
				}
				// Construct the runner — server rings, dispatch trees, and
				// the measurement stream — outside the timed region, so B/op
				// measures the event path itself. The old shape timed
				// runStream whole; at N=10⁴ the ~1 MB of setup divided by
				// ~2M iterations surfaced as a phantom 1–2 B/op that looked
				// exactly like the PR-5 accumulator-heap incident.
				res := newSimStream(opts.BatchSize, opts.Tail)
				tr := newTypedRunner(p, w, opts.Warmup, res, opts.Seed)
				if tr == nil {
					b.Fatal("wiring did not resolve onto the typed loop")
				}
				b.ReportAllocs()
				b.ResetTimer()
				tr.run(opts.Jobs)
				b.ReportMetric(float64(res.StateBytes()), "state_bytes")
			})
		}
	}
}

// BenchmarkSimJobsTraced prices the flight recorder on the default
// wiring at N=250: trace-off is BenchmarkSimJobs/fast/N=250 (the
// recorder branch is a nil check there, so those two must sit within
// noise of each other), sample=1024 is the production setting, and
// sample=1 the worst case — every job pays the span writes and the
// three stage-sketch observations. Allocs stay 0 at any rate (ring,
// pending table, and sketches are preallocated); CI runs this at
// -benchtime 1x as the trace-overhead sanity.
func BenchmarkSimJobsTraced(b *testing.B) {
	for _, every := range []int{1024, 1} {
		b.Run(fmt.Sprintf("sample=%d/N=250", every), func(b *testing.B) {
			p := sqd.Params{N: 250, D: 2, Rho: 0.9}
			opts := Options{Jobs: int64(b.N), Warmup: 1, Seed: 1}
			opts.setDefaults()
			w, err := resolve(p, opts)
			if err != nil {
				b.Fatal(err)
			}
			rec := trace.New(trace.Config{Sample: every, Cap: 4096, Seed: 1, Scale: 1})
			res := newSimStream(opts.BatchSize, opts.Tail)
			tr := newTypedRunner(p, w, opts.Warmup, res, opts.Seed)
			if tr == nil {
				b.Fatal("wiring did not resolve onto the typed loop")
			}
			tr.st.tr = newSimTracer(rec, p.N)
			b.ReportAllocs()
			b.ResetTimer()
			tr.run(opts.Jobs)
		})
	}
}

// trackerLike generalizes the three completion-tracker contenders for the
// crossover benchmark: the shipped concrete tracker (linear or 4-ary by
// size), a forced variant of each mode, the retired container/heap binary
// heap (kept in tracker_test.go as the reference oracle), and a
// minindex.Seq adapter, which must pay a full argmin descent per min to
// *name* the completing server — the structural reason it loses to the
// heap as an event tracker despite winning as a dispatch index.
type trackerLike interface {
	update(id int, t float64)
	min() (float64, int)
}

type seqTrackerBench struct {
	tree *minindex.Seq
	rng  *rand.Rand
}

func (s *seqTrackerBench) update(id int, t float64) { s.tree.Update(id, t) }
func (s *seqTrackerBench) min() (float64, int)      { return s.tree.Min(), s.tree.Argmin(s.rng) }

// BenchmarkTracker isolates the completion tracker: per-op one update of a
// random server's completion time plus one min query, the exact per-event
// footprint of the event loop. It is the crossover gauge for linearCutoff
// and the record of why the 4-ary heap replaced both the container/heap
// binary heap and a Seq-tree alternative.
func BenchmarkTracker(b *testing.B) {
	impls := []struct {
		name string
		mk   func(n int) trackerLike
	}{
		{"linear", func(n int) trackerLike {
			t := &tracker{nodes: make([]tnode, n), n: n}
			for i := range t.nodes {
				t.nodes[i] = tnode{tb: infBits, id: int32(i)}
			}
			return t
		}},
		{"calendar", func(n int) trackerLike {
			t := &tracker{n: n}
			t.cal.init(n)
			return t
		}},
		{"tour", func(n int) trackerLike { return newTourTracker(n) }},
		{"heap4", func(n int) trackerLike { return newHeapTracker4(n) }},
		{"heap2-container", func(n int) trackerLike { return newRefHeapTracker(n) }},
		{"seq-tree", func(n int) trackerLike {
			return &seqTrackerBench{tree: minindex.NewSeq(n), rng: rand.New(rand.NewPCG(9, 9))}
		}},
	}
	for _, n := range []int{4, 8, 16, 32, 64, 250, 1000, 10000} {
		for _, im := range impls {
			b.Run(fmt.Sprintf("%s/N=%d", im.name, n), func(b *testing.B) {
				trk := im.mk(n)
				rng := rand.New(rand.NewPCG(1, 2))
				for i := 0; i < n; i++ {
					trk.update(i, rng.Float64())
				}
				// Event-loop-shaped op: re-key the current min to a fresh
				// completion a service time ahead of a slowly advancing
				// clock — the exact departure pattern of the simulator.
				clock := 0.0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, id := trk.min()
					if id < 0 {
						id = rng.IntN(n)
					}
					clock += 1.0 / float64(n)
					trk.update(id, clock+rng.ExpFloat64())
				}
			})
		}
	}
}
