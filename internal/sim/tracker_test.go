package sim

import (
	"container/heap"
	"math"
	"math/rand/v2"
	"testing"
)

// The retired trackers live on here as reference oracles: the 4-ary heap
// must agree with both on every (min, update) sequence. refHeapTracker is
// the pre-overhaul container/heap binary heap verbatim; refLinearTracker
// is the pre-overhaul scan.

type refHeapTracker struct {
	times []float64
	ids   []int
	pos   []int
}

func newRefHeapTracker(n int) *refHeapTracker {
	h := &refHeapTracker{
		times: make([]float64, n),
		ids:   make([]int, n),
		pos:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.times[i] = math.Inf(1)
		h.ids[i] = i
		h.pos[i] = i
	}
	return h
}

func (h *refHeapTracker) Len() int           { return len(h.times) }
func (h *refHeapTracker) Less(i, j int) bool { return h.times[i] < h.times[j] }
func (h *refHeapTracker) Swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]], h.pos[h.ids[j]] = i, j
}
func (h *refHeapTracker) Push(any) { panic("sim: fixed-size heap") }
func (h *refHeapTracker) Pop() any { panic("sim: fixed-size heap") }

func (h *refHeapTracker) update(id int, t float64) {
	i := h.pos[id]
	h.times[i] = t
	heap.Fix(h, i)
}

func (h *refHeapTracker) min() (float64, int) { return h.times[0], h.ids[0] }

type refLinearTracker struct{ completion []float64 }

func (l *refLinearTracker) update(id int, t float64) { l.completion[id] = t }

func (l *refLinearTracker) min() (float64, int) {
	best, id := math.Inf(1), -1
	for i := range l.completion {
		if l.completion[i] < best {
			best, id = l.completion[i], i
		}
	}
	return best, id
}

// TestTrackerMatchesReferences drives the shipped tracker, the old binary
// heap, and the old linear scan through the same randomized (min, update)
// sequences — a mix of fresh finite times, re-keys of the current min
// (the departure pattern), and +Inf idles (the drain pattern) — and
// requires identical min answers throughout. Times are continuous draws,
// so ties (where the implementations may legitimately order differently)
// have probability zero; sizes straddle every structural boundary:
// singleton, the linearCutoff crossover (8/9 by the new constant, 16/17
// by the old one), the first multi-level 4-ary heaps, and a large farm.
func TestTrackerMatchesReferences(t *testing.T) {
	for _, n := range []int{1, 2, 8, 9, 16, 17, 64, 1000} {
		rng := rand.New(rand.NewPCG(uint64(n), 0xabcdef))
		subject := newTracker(n)
		tour := newTourTracker(n)    // exercise tree mode below the cutoff too
		forced := newHeapTracker4(n) // the heap contender at every size
		refH := newRefHeapTracker(n)
		refL := &refLinearTracker{completion: make([]float64, n)}
		for i := range refL.completion {
			refL.completion[i] = math.Inf(1)
		}
		clock := 0.0
		busy := 0
		for step := 0; step < 20_000; step++ {
			var id int
			var tm float64
			switch {
			case busy == 0 || (busy < n && rng.Float64() < 0.5):
				// "Arrival": give a random idle server a finite completion.
				id = rng.IntN(n)
				if !math.IsInf(refL.completion[id], 1) {
					continue
				}
				clock += rng.Float64()
				tm = clock + rng.ExpFloat64()
				busy++
			default:
				// "Departure": re-key the current min — onward or to idle.
				_, id = subject.min()
				if rng.Float64() < 0.3 {
					tm = math.Inf(1)
					busy--
				} else {
					clock += rng.Float64()
					tm = clock + rng.ExpFloat64()
				}
			}
			subject.update(id, tm)
			tour.update(id, tm)
			forced.update(id, tm)
			refH.update(id, tm)
			refL.update(id, tm)

			st, si := subject.min()
			tt, ti := tour.min()
			ft, fi := forced.min()
			ht, hi := refH.min()
			lt, li := refL.min()
			if busy == 0 {
				// All idle: times agree at +Inf, ids are unspecified.
				if !math.IsInf(st, 1) || !math.IsInf(ht, 1) || !math.IsInf(lt, 1) || !math.IsInf(ft, 1) || !math.IsInf(tt, 1) {
					t.Fatalf("N=%d step %d: idle farm with finite min", n, step)
				}
				continue
			}
			if st != ht || st != lt || st != ft || st != tt || si != hi || si != li || si != fi || si != ti {
				t.Fatalf("N=%d step %d: trackers disagree: subject (%v,%d) tour (%v,%d) heap4 (%v,%d) heap2 (%v,%d) linear (%v,%d)",
					n, step, st, si, tt, ti, ft, fi, ht, hi, lt, li)
			}
		}
	}
}

// TestTrackerAllIdleReportsInf pins the contract the event loop relies on
// at stream start: an all-idle farm must report +Inf so the first arrival
// always wins the time race.
func TestTrackerAllIdleReportsInf(t *testing.T) {
	for _, n := range []int{1, linearCutoff, linearCutoff + 1, 100} {
		tm, _ := newTracker(n).min()
		if !math.IsInf(tm, 1) {
			t.Errorf("N=%d: fresh tracker min = %v, want +Inf", n, tm)
		}
	}
}
