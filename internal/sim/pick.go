package sim

import "math"

// The typed loop's pickers are concrete re-derivations of the
// internal/workload pickers, specialized to the simulator's own farm
// state: queue lengths and backlogs are read straight off the server
// slice (inlined), rng draws come from the concrete frand generator, and
// the indexed variants go straight to the min-trees without the
// ArgminQueues type-assertion detour. Each picker must reproduce its
// workload counterpart's rng consumption exactly — same draws, same
// order — which TestPickersMatchWorkload pins picker by picker and the
// loop equivalence tests pin end to end.
//
// pick is one indirect call per arrival (the pickers are held as this
// interface); everything inside is concrete.
type picker interface {
	pick(st *loopState) int
}

// tieReporter is implemented by pickers that can report how many
// candidates were tied at the minimum on their last pick; the trace
// hooks surface that in Span.Ties. Pickers without per-pick state (the
// stateless scan/tree/random variants) simply don't implement it.
type tieReporter interface{ lastTies() int }

// lastTies extracts the last pick's tie count, −1 when the picker
// doesn't report.
//
//finitelb:hotpath
func lastTies(pk picker) int {
	if t, ok := pk.(tieReporter); ok {
		return t.lastTies()
	}
	return -1
}

// sqdPick mirrors workload.SQD's picker: partial Fisher–Yates over a
// persistent permutation, reservoir tie-breaking.
type sqdPick struct {
	d    int
	perm []int
	ties int32 // candidates tied at the minimum on the last pick
}

func (pk *sqdPick) lastTies() int { return int(pk.ties) }

//finitelb:hotpath
func (pk *sqdPick) pick(st *loopState) int {
	fr := st.fr
	qlen := st.qlen
	n := len(pk.perm)
	best, bestLen, ties := -1, int32(math.MaxInt32), int32(0)
	for k := 0; k < pk.d; k++ {
		j := k + fr.IntN(n-k)
		pk.perm[k], pk.perm[j] = pk.perm[j], pk.perm[k]
		s := pk.perm[k]
		switch l := qlen[s]; {
		case l < bestLen:
			best, bestLen, ties = s, l, 1
		case l == bestLen:
			ties++
			if fr.IntN(int(ties)) == 0 {
				best = s
			}
		}
	}
	pk.ties = ties
	return best
}

// jsqScanPick mirrors workload.JSQ's reference scan: rotated origin,
// reservoir tie-breaking.
type jsqScanPick struct{}

//finitelb:hotpath
func (jsqScanPick) pick(st *loopState) int {
	fr := st.fr
	qlen := st.qlen
	n := len(qlen)
	start := fr.IntN(n)
	best, bestLen, ties := start, qlen[start], 1
	for k := 1; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		switch l := qlen[i]; {
		case l < bestLen:
			best, bestLen, ties = i, l, 1
		case l == bestLen:
			ties++
			if fr.IntN(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// jsqTreePick mirrors workload.JSQ through a maintained length index: the
// tree descent consumes the same tie-break draws the interface path does,
// through the std wrapper over the same generator.
type jsqTreePick struct{}

//finitelb:hotpath
func (jsqTreePick) pick(st *loopState) int { return st.lenTree.Argmin(st.std) }

// lwlScanPick mirrors workload.LWL's reference scan over time-to-drain.
type lwlScanPick struct{}

//finitelb:hotpath
func (lwlScanPick) pick(st *loopState) int {
	fr := st.fr
	n := len(st.qlen)
	start := fr.IntN(n)
	best, bestWork, ties := start, st.workAt(start), 1
	for k := 1; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		switch w := st.workAt(i); {
		case w < bestWork:
			best, bestWork, ties = i, w, 1
		case w == bestWork:
			ties++
			if fr.IntN(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// lwlTreePick mirrors workload.LWL through the maintained work index.
type lwlTreePick struct{}

//finitelb:hotpath
func (lwlTreePick) pick(st *loopState) int { return st.workTree.Argmin(st.std) }

// jiqPick mirrors workload.JIQ: reservoir over idle servers, uniform
// fallback.
type jiqPick struct{}

//finitelb:hotpath
func (jiqPick) pick(st *loopState) int {
	fr := st.fr
	qlen := st.qlen
	n := len(qlen)
	idle, count := -1, 0
	for i := 0; i < n; i++ {
		if qlen[i] == 0 {
			count++
			if fr.IntN(count) == 0 {
				idle = i
			}
		}
	}
	if count > 0 {
		return idle
	}
	return fr.IntN(n)
}

// rrPick mirrors workload.RoundRobin: a cursor, no draws.
type rrPick struct{ n, next int }

//finitelb:hotpath
func (pk *rrPick) pick(*loopState) int {
	i := pk.next
	pk.next++
	if pk.next == pk.n {
		pk.next = 0
	}
	return i
}

// randPick mirrors workload.Random: one uniform draw.
type randPick struct{ n int }

//finitelb:hotpath
func (pk randPick) pick(st *loopState) int { return st.fr.IntN(pk.n) }
