// Package sim provides the simulation side of the paper's evaluation: a
// discrete-event simulator of a dispatched server farm measuring per-job
// sojourn times (the baseline of Figures 9 and 10), and a CTMC trajectory
// simulator for arbitrary sqd models used to cross-validate the
// matrix-geometric solutions of the bound models.
//
// The event loop is workload-agnostic: arrival processes, service-time
// laws, per-server speeds, and dispatch policies plug in through the
// interfaces of internal/workload. The default configuration — Poisson
// arrivals, exponential unit-rate homogeneous servers, SQ(d) — is the
// paper's system and stays bit-identical to the pre-workload simulator;
// every other configuration is validated against classical queueing
// oracles where one exists (see workload_test.go).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"finitelb/internal/engine"
	"finitelb/internal/minindex"
	"finitelb/internal/sqd"
	"finitelb/internal/stats"
	"finitelb/internal/workload"
)

// Options configures a discrete-event run.
type Options struct {
	Jobs   int64  // measured jobs (default 1e6)
	Warmup int64  // discarded leading departures (default Jobs/10)
	Seed   uint64 // RNG seed (default 1)
	// BatchSize for batch-means confidence intervals; default Jobs/200.
	BatchSize int64
	// Replications splits the measured-job budget across R independently
	// seeded replications executed concurrently and merged into one Result
	// with pooled moments. Each replication pays the full Warmup, so the
	// total simulated work is Jobs + R·Warmup. The default 1 runs the
	// legacy single stream and is bit-identical to it; larger values are
	// statistically equivalent, not bit-identical.
	Replications int
	// Workers bounds the replication concurrency; default GOMAXPROCS.
	Workers int

	// Arrival is the interarrival process at aggregate rate ρ·Σspeeds
	// (ρ·N for a homogeneous fleet). Default workload.Poisson{}, the only
	// process the analytic bounds cover.
	Arrival workload.Arrival
	// Service is the unit-mean service-requirement law; the time server i
	// spends on a job is Sample/Speeds[i]. Default workload.Exponential{}.
	Service workload.Service
	// Policy routes each arrival; default workload.SQD{D: Params.D}.
	// Params.D is ignored by other policies (and by SQD specs with an
	// explicit positive D).
	Policy workload.Policy
	// Speeds are per-server speed factors for heterogeneous fleets; nil
	// means a homogeneous unit-speed fleet. Length must equal Params.N and
	// every entry must be positive. The aggregate arrival rate scales with
	// Σspeeds so ρ stays the system utilization.
	Speeds []float64
}

func (o *Options) setDefaults() {
	if o.Jobs <= 0 {
		o.Jobs = 1_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Jobs / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = o.Jobs / 200
		if o.BatchSize < 1 {
			o.BatchSize = 1
		}
	}
	if o.Replications <= 0 {
		o.Replications = 1
	}
	if o.Arrival == nil {
		o.Arrival = workload.Poisson{}
	}
	if o.Service == nil {
		o.Service = workload.Exponential{}
	}
}

// wiring is the per-run workload configuration shared (read-only) by all
// replication streams.
type wiring struct {
	arrival workload.Arrival
	service workload.Service
	policy  workload.Policy
	speeds  []float64 // always length N
	rate    float64   // aggregate arrival rate ρ·Σspeeds
	// fastPath marks the paper's default wiring (Poisson, exponential,
	// SQ(Params.D), homogeneous unit speeds), which runs the concrete
	// pre-workload loop instead of paying interface dispatch per event.
	// Both loops are pinned to the same bit-identity goldens.
	fastPath bool
	// workAware marks policies that dispatch on outstanding work (LWL):
	// the event loop then draws each job's requirement at arrival and
	// exposes per-server work through the workload.WorkQueues view.
	workAware bool
}

// resolve validates the workload options against p and freezes them into a
// wiring. It is the single place all configuration errors surface;
// runStream assumes a valid wiring.
func resolve(p sqd.Params, o Options) (wiring, error) {
	w := wiring{arrival: o.Arrival, service: o.Service, policy: o.Policy}
	if w.policy == nil {
		w.policy = workload.SQD{D: p.D}
	} else if s, ok := w.policy.(workload.SQD); ok && s.D == 0 {
		w.policy = workload.SQD{D: p.D} // parsed "sqd" with no explicit d
	}
	if err := w.service.Validate(); err != nil {
		return wiring{}, err
	}
	sum := 0.0
	switch {
	case o.Speeds == nil:
		w.speeds = make([]float64, p.N)
		for i := range w.speeds {
			w.speeds[i] = 1
		}
		sum = float64(p.N)
	case len(o.Speeds) != p.N:
		return wiring{}, fmt.Errorf("sim: %d speed factors for N = %d servers", len(o.Speeds), p.N)
	default:
		w.speeds = o.Speeds
		for i, s := range o.Speeds {
			if !(s > 0) || math.IsInf(s, 1) {
				return wiring{}, fmt.Errorf("sim: speed[%d] = %v outside (0, ∞)", i, s)
			}
			sum += s
		}
	}
	w.rate = p.Rho * sum
	if _, err := w.arrival.NewSource(w.rate); err != nil {
		return wiring{}, err
	}
	if _, err := w.policy.NewPicker(p.N); err != nil {
		return wiring{}, err
	}
	_, w.workAware = w.policy.(workload.WorkAware)
	w.fastPath = o.Speeds == nil &&
		w.arrival == workload.Arrival(workload.Poisson{}) &&
		w.service == workload.Service(workload.Exponential{}) &&
		w.policy == workload.Policy(workload.SQD{D: p.D})
	return w, nil
}

// Result summarizes a simulation run.
type Result struct {
	MeanDelay float64 // mean sojourn time across measured jobs
	MeanWait  float64 // mean waiting time (sojourn − 1, the unit mean service)
	HalfWidth float64 // 95% CI half-width on MeanDelay (batch means)
	Jobs      int64   // measured jobs
	MaxQueue  int     // largest queue length observed

	// Sojourn quantiles (histogram-estimated at 0.02 resolution).
	P50, P95, P99 float64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("delay %.4f ± %.4f (%d jobs, max queue %d)", r.MeanDelay, r.HalfWidth, r.Jobs, r.MaxQueue)
}

// server is one FIFO queue: arrival stamps of queued jobs plus the
// absolute completion time of the in-service job. Under a work-aware
// policy (LWL) it additionally carries each queued job's service
// requirement, drawn at arrival, and the total not-yet-started work.
type server struct {
	arrivals   []float64 // arrival times; arrivals[head] is in service
	work       []float64 // per-job requirements, aligned with arrivals (work-aware runs only)
	head       int
	completion float64 // +Inf when idle
	pending    float64 // Σ requirements of queued jobs not yet in service
}

func (s *server) length() int { return len(s.arrivals) - s.head }

func (s *server) push(t float64) { s.arrivals = append(s.arrivals, t) }

func (s *server) pop() float64 {
	v := s.arrivals[s.head]
	s.head++
	// Compact occasionally so memory stays bounded on long runs.
	if s.head > 64 && s.head*2 >= len(s.arrivals) {
		s.arrivals = append(s.arrivals[:0], s.arrivals[s.head:]...)
		if s.work != nil {
			s.work = append(s.work[:0], s.work[s.head:]...)
		}
		s.head = 0
	}
	return v
}

// tracker finds the earliest pending service completion.
type tracker interface {
	update(id int, t float64)
	min() (float64, int)
}

// linearTracker scans all servers; optimal for the small N of Figure 10.
type linearTracker struct{ servers []server }

func (l *linearTracker) update(int, float64) {}

func (l *linearTracker) min() (float64, int) {
	best, id := math.Inf(1), -1
	for i := range l.servers {
		if l.servers[i].completion < best {
			best, id = l.servers[i].completion, i
		}
	}
	return best, id
}

// heapTracker is an indexed min-heap; preferable for the N = 250 sweeps of
// Figure 9.
type heapTracker struct {
	times []float64
	ids   []int
	pos   []int // server id → heap slot
}

func newHeapTracker(n int) *heapTracker {
	h := &heapTracker{
		times: make([]float64, n),
		ids:   make([]int, n),
		pos:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.times[i] = math.Inf(1)
		h.ids[i] = i
		h.pos[i] = i
	}
	return h
}

func (h *heapTracker) Len() int           { return len(h.times) }
func (h *heapTracker) Less(i, j int) bool { return h.times[i] < h.times[j] }
func (h *heapTracker) Swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]], h.pos[h.ids[j]] = i, j
}
func (h *heapTracker) Push(any) { panic("sim: fixed-size heap") }
func (h *heapTracker) Pop() any { panic("sim: fixed-size heap") }

func (h *heapTracker) update(id int, t float64) {
	i := h.pos[id]
	h.times[i] = t
	heap.Fix(h, i)
}

func (h *heapTracker) min() (float64, int) { return h.times[0], h.ids[0] }

// result converts a merged measurement stream into the public Result.
func result(s *stats.Stream) Result {
	return Result{
		MeanDelay: s.Sojourns.Mean(),
		MeanWait:  s.Sojourns.Mean() - 1,
		HalfWidth: s.Batch.HalfWidth(),
		Jobs:      s.Sojourns.N(),
		MaxQueue:  s.MaxQueue,
		P50:       s.Hist.Quantile(0.50),
		P95:       s.Hist.Quantile(0.95),
		P99:       s.Hist.Quantile(0.99),
	}
}

// Run simulates a dispatched server farm: arrivals from opts.Arrival (at
// aggregate rate ρ·Σspeeds) hit a central dispatcher that routes each job
// via opts.Policy; servers serve FIFO, drawing unit-mean requirements from
// opts.Service scaled by their speed factor. The zero-value options
// reproduce the paper's system — Poisson arrivals of rate ρN, SQ(d)
// sampling d distinct servers uniformly and joining the shortest (ties
// uniform), exponential unit-rate homogeneous servers — draw for draw.
// The first Warmup departures are discarded, then the sojourn times of
// Jobs departures are averaged.
//
// With opts.Replications = R > 1 the measured-job budget is split across R
// independently seeded streams (seeds derived from opts.Seed via its own
// PCG stream) executed concurrently through the engine pool; their moments
// are pooled into one Result.
func Run(p sqd.Params, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults()
	w, err := resolve(p, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.Replications == 1 {
		return result(runStream(p, w, opts.Jobs, opts.Warmup, opts.BatchSize, opts.Seed)), nil
	}

	r := int64(opts.Replications)
	// Derive one independent seed per replication from the master seed.
	seedRNG := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	seeds := make([]uint64, r)
	for i := range seeds {
		seeds[i] = seedRNG.Uint64()
	}
	streams, err := engine.Collect(engine.New(opts.Workers), int(r), func(i int) (*stats.Stream, error) {
		jobs := opts.Jobs / r
		if int64(i) < opts.Jobs%r {
			jobs++
		}
		return runStream(p, w, jobs, opts.Warmup, opts.BatchSize, seeds[i]), nil
	})
	if err != nil {
		return Result{}, err
	}
	merged := streams[0]
	for _, s := range streams[1:] {
		merged.Merge(s)
	}
	return result(merged), nil
}

// farm adapts the server slice to the dispatcher's workload.Queues view.
// It also implements workload.WorkQueues for work-aware policies (LWL):
// the event loop sets now to each arrival instant before the Pick, and
// Work reports the server's time-to-drain at that instant — the
// in-service remainder (completion − now, already in time units) plus the
// queued not-yet-started requirements divided by the server's speed.
type farm struct {
	servers []server
	speeds  []float64
	now     float64

	// Hierarchical min-indexes (nil below minindex.Threshold, or when the
	// policy doesn't dispatch on a global argmin): lenTree tracks queue
	// lengths for JSQ, workTree tracks backlog for LWL. The event loop
	// calls note(i) after every state change of server i, so a pick is
	// O(log N) instead of the O(N) scan that dominates large-N sweeps.
	lenTree  *minindex.Seq
	workTree *minindex.Seq
}

func (f *farm) N() int        { return len(f.servers) }
func (f *farm) Len(i int) int { return f.servers[i].length() }

// note re-keys server i in whichever index is active. The workTree key is
// pending/speed + completion — the absolute-time form of Work(i): among
// busy servers "− now" is a common shift that argmin ignores, and an idle
// server keys at 0, below every busy server's completion ≥ now ≥ 0.
func (f *farm) note(i int) {
	s := &f.servers[i]
	if f.lenTree != nil {
		f.lenTree.Update(i, float64(s.length()))
	}
	if f.workTree != nil {
		if s.length() == 0 {
			f.workTree.Update(i, 0)
		} else {
			f.workTree.Update(i, s.pending/f.speeds[i]+s.completion)
		}
	}
}

// ArgminLen implements workload.ArgminQueues when the length index is on.
func (f *farm) ArgminLen(rng *rand.Rand) (int, bool) {
	if f.lenTree == nil {
		return 0, false
	}
	return f.lenTree.Argmin(rng), true
}

// ArgminWork implements workload.ArgminWorkQueues when the work index is on.
func (f *farm) ArgminWork(rng *rand.Rand) (int, bool) {
	if f.workTree == nil {
		return 0, false
	}
	return f.workTree.Argmin(rng), true
}

func (f *farm) Work(i int) float64 {
	s := &f.servers[i]
	if s.length() == 0 {
		return 0
	}
	rem := s.completion - f.now
	if rem < 0 {
		rem = 0
	}
	return s.pending/f.speeds[i] + rem
}

// runStream runs one discrete-event stream. The wiring must have passed
// resolve, so instantiating its pieces cannot fail. The default wiring
// takes the concrete fast path; every other configuration runs the
// pluggable loop. Both produce the same draw sequence for the default
// pieces, which is what keeps the bit-identity regression tests green
// (they pin each path against the same pre-workload goldens).
func runStream(p sqd.Params, w wiring, jobs, warmup, batchSize int64, seed uint64) *stats.Stream {
	rng := rand.New(rand.NewPCG(seed, 0x5bd1e995))

	servers := make([]server, p.N)
	for i := range servers {
		servers[i].completion = math.Inf(1)
	}
	var trk tracker
	if p.N <= 16 {
		trk = &linearTracker{servers: servers}
	} else {
		trk = newHeapTracker(p.N)
	}
	// The histogram covers sojourns up to 500 service times.
	res := stats.NewStream(batchSize, 0.02, 25_000)
	if w.fastPath {
		runFastLoop(p, w.rate, servers, trk, rng, res, jobs, warmup)
	} else {
		runPluggableLoop(p, w, servers, trk, rng, res, jobs, warmup)
	}
	return res
}

// runFastLoop is the pre-workload event loop, verbatim: Poisson arrivals,
// SQ(d) by partial Fisher–Yates, exponential unit-rate service, all with
// concrete types so the per-event cost carries no interface dispatch. It
// must never change behaviour without runPluggableLoop changing in
// lockstep — TestDefaultWorkloadBitIdentical holds both to the same bits.
func runFastLoop(p sqd.Params, lamN float64, servers []server, trk tracker, rng *rand.Rand, res *stats.Stream, jobs, warmup int64) {
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = i
	}
	nextArrival := rng.ExpFloat64() / lamN
	var departed int64

	for res.N() < jobs {
		minC, minI := trk.min()
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + rng.ExpFloat64()/lamN
			// Sample d distinct servers by partial Fisher–Yates, keeping
			// the least-loaded with uniform tie breaking.
			best, bestLen, ties := -1, math.MaxInt, 0
			for k := 0; k < p.D; k++ {
				j := k + rng.IntN(p.N-k)
				perm[k], perm[j] = perm[j], perm[k]
				s := perm[k]
				switch l := servers[s].length(); {
				case l < bestLen:
					best, bestLen, ties = s, l, 1
				case l == bestLen:
					ties++
					if rng.IntN(ties) == 0 {
						best = s
					}
				}
			}
			sv := &servers[best]
			sv.push(now)
			if sv.length() == 1 {
				sv.completion = now + rng.ExpFloat64()
				trk.update(best, sv.completion)
			}
			res.ObserveQueue(sv.length())
			continue
		}
		sv := &servers[minI]
		now := sv.completion
		arrivedAt := sv.pop()
		if sv.length() > 0 {
			sv.completion = now + rng.ExpFloat64()
		} else {
			sv.completion = math.Inf(1)
		}
		trk.update(minI, sv.completion)
		departed++
		if departed > warmup {
			res.Add(now - arrivedAt)
		}
	}
}

// runPluggableLoop is the workload-agnostic event loop: identical
// structure to runFastLoop with the arrival source, dispatch picker,
// service law, and speed factors drawn through the workload interfaces.
//
// Under a work-aware policy (wiring.workAware) each job's service
// requirement is drawn at *arrival* instead of at service start — the
// dispatcher must know the work it is about to place — and the farm view
// additionally satisfies workload.WorkQueues, exposing each server's
// outstanding work (queued requirements plus the in-service remainder) at
// the current arrival instant. The draw *sequence* therefore differs from
// the non-work-aware loop, but each job's requirement is the same i.i.d.
// law, so all configurations remain distributionally identical.
func runPluggableLoop(p sqd.Params, w wiring, servers []server, trk tracker, rng *rand.Rand, res *stats.Stream, jobs, warmup int64) {
	src, err := w.arrival.NewSource(w.rate)
	if err != nil {
		panic("sim: unresolved wiring: " + err.Error())
	}
	picker, err := w.policy.NewPicker(p.N)
	if err != nil {
		panic("sim: unresolved wiring: " + err.Error())
	}
	// Box the farm view once; passing the struct would re-box (and heap
	// allocate) on every Pick.
	wf := &farm{servers: servers, speeds: w.speeds}
	if p.N >= minindex.Threshold {
		// Sub-linear dispatch: global-argmin policies get a maintained
		// min-index; below the threshold (and for O(d) policies) the
		// reference scan wins. Selection changes the rng draw sequence,
		// not the policy's law — results stay seed-deterministic.
		switch w.policy.(type) {
		case workload.JSQ:
			wf.lenTree = minindex.NewSeq(p.N)
		case workload.LWL:
			wf.workTree = minindex.NewSeq(p.N)
		}
	}
	indexed := wf.lenTree != nil || wf.workTree != nil
	var queues workload.Queues = wf
	svc, speeds := w.service, w.speeds
	if w.workAware {
		for i := range servers {
			servers[i].work = make([]float64, 0, 16)
		}
	}

	nextArrival := src.Next(rng)
	var departed int64

	for res.N() < jobs {
		minC, minI := trk.min()
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + src.Next(rng)
			var best int
			if w.workAware {
				wf.now = now
				req := svc.Sample(rng)
				best = picker.Pick(rng, queues)
				sv := &servers[best]
				sv.push(now)
				sv.work = append(sv.work, req)
				if sv.length() == 1 {
					sv.completion = now + req/speeds[best]
					trk.update(best, sv.completion)
				} else {
					sv.pending += req
				}
			} else {
				best = picker.Pick(rng, queues)
				sv := &servers[best]
				sv.push(now)
				if sv.length() == 1 {
					sv.completion = now + svc.Sample(rng)/speeds[best]
					trk.update(best, sv.completion)
				}
			}
			if indexed {
				wf.note(best)
			}
			res.ObserveQueue(servers[best].length())
			continue
		}
		sv := &servers[minI]
		now := sv.completion
		arrivedAt := sv.pop()
		if sv.length() > 0 {
			var req float64
			if w.workAware {
				req = sv.work[sv.head]
				sv.pending -= req
			} else {
				req = svc.Sample(rng)
			}
			sv.completion = now + req/speeds[minI]
		} else {
			sv.completion = math.Inf(1)
		}
		trk.update(minI, sv.completion)
		if indexed {
			wf.note(minI)
		}
		departed++
		if departed > warmup {
			res.Add(now - arrivedAt)
		}
	}
}
