// Package sim provides the simulation side of the paper's evaluation: a
// discrete-event simulator of the SQ(d) dispatcher measuring per-job
// sojourn times (the baseline of Figures 9 and 10), and a CTMC trajectory
// simulator for arbitrary sqd models used to cross-validate the
// matrix-geometric solutions of the bound models.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"finitelb/internal/engine"
	"finitelb/internal/sqd"
	"finitelb/internal/stats"
)

// Options configures a discrete-event run.
type Options struct {
	Jobs   int64  // measured jobs (default 1e6)
	Warmup int64  // discarded leading departures (default Jobs/10)
	Seed   uint64 // RNG seed (default 1)
	// BatchSize for batch-means confidence intervals; default Jobs/200.
	BatchSize int64
	// Replications splits the measured-job budget across R independently
	// seeded replications executed concurrently and merged into one Result
	// with pooled moments. Each replication pays the full Warmup, so the
	// total simulated work is Jobs + R·Warmup. The default 1 runs the
	// legacy single stream and is bit-identical to it; larger values are
	// statistically equivalent, not bit-identical.
	Replications int
	// Workers bounds the replication concurrency; default GOMAXPROCS.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Jobs <= 0 {
		o.Jobs = 1_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Jobs / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = o.Jobs / 200
		if o.BatchSize < 1 {
			o.BatchSize = 1
		}
	}
	if o.Replications <= 0 {
		o.Replications = 1
	}
}

// Result summarizes a simulation run.
type Result struct {
	MeanDelay float64 // mean sojourn time across measured jobs
	MeanWait  float64 // mean waiting time (sojourn − 1, the unit mean service)
	HalfWidth float64 // 95% CI half-width on MeanDelay (batch means)
	Jobs      int64   // measured jobs
	MaxQueue  int     // largest queue length observed

	// Sojourn quantiles (histogram-estimated at 0.02 resolution).
	P50, P95, P99 float64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("delay %.4f ± %.4f (%d jobs, max queue %d)", r.MeanDelay, r.HalfWidth, r.Jobs, r.MaxQueue)
}

// server is one FIFO queue: arrival stamps of queued jobs plus the
// absolute completion time of the in-service job.
type server struct {
	arrivals   []float64 // arrival times; arrivals[head] is in service
	head       int
	completion float64 // +Inf when idle
}

func (s *server) length() int { return len(s.arrivals) - s.head }

func (s *server) push(t float64) { s.arrivals = append(s.arrivals, t) }

func (s *server) pop() float64 {
	v := s.arrivals[s.head]
	s.head++
	// Compact occasionally so memory stays bounded on long runs.
	if s.head > 64 && s.head*2 >= len(s.arrivals) {
		s.arrivals = append(s.arrivals[:0], s.arrivals[s.head:]...)
		s.head = 0
	}
	return v
}

// tracker finds the earliest pending service completion.
type tracker interface {
	update(id int, t float64)
	min() (float64, int)
}

// linearTracker scans all servers; optimal for the small N of Figure 10.
type linearTracker struct{ servers []server }

func (l *linearTracker) update(int, float64) {}

func (l *linearTracker) min() (float64, int) {
	best, id := math.Inf(1), -1
	for i := range l.servers {
		if l.servers[i].completion < best {
			best, id = l.servers[i].completion, i
		}
	}
	return best, id
}

// heapTracker is an indexed min-heap; preferable for the N = 250 sweeps of
// Figure 9.
type heapTracker struct {
	times []float64
	ids   []int
	pos   []int // server id → heap slot
}

func newHeapTracker(n int) *heapTracker {
	h := &heapTracker{
		times: make([]float64, n),
		ids:   make([]int, n),
		pos:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.times[i] = math.Inf(1)
		h.ids[i] = i
		h.pos[i] = i
	}
	return h
}

func (h *heapTracker) Len() int           { return len(h.times) }
func (h *heapTracker) Less(i, j int) bool { return h.times[i] < h.times[j] }
func (h *heapTracker) Swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]], h.pos[h.ids[j]] = i, j
}
func (h *heapTracker) Push(any) { panic("sim: fixed-size heap") }
func (h *heapTracker) Pop() any { panic("sim: fixed-size heap") }

func (h *heapTracker) update(id int, t float64) {
	i := h.pos[id]
	h.times[i] = t
	heap.Fix(h, i)
}

func (h *heapTracker) min() (float64, int) { return h.times[0], h.ids[0] }

// stream holds the raw accumulators of one simulated sojourn stream,
// mergeable across replications.
type stream struct {
	sojourns stats.Welford
	batch    *stats.BatchMeans
	hist     *stats.Histogram
	maxQueue int
}

// result converts merged accumulators into the public Result.
func (s *stream) result() Result {
	return Result{
		MeanDelay: s.sojourns.Mean(),
		MeanWait:  s.sojourns.Mean() - 1,
		HalfWidth: s.batch.HalfWidth(),
		Jobs:      s.sojourns.N(),
		MaxQueue:  s.maxQueue,
		P50:       s.hist.Quantile(0.50),
		P95:       s.hist.Quantile(0.95),
		P99:       s.hist.Quantile(0.99),
	}
}

// merge folds another replication's accumulators into s.
func (s *stream) merge(o *stream) {
	s.sojourns.Merge(o.sojourns)
	s.batch.Merge(o.batch)
	s.hist.Merge(o.hist)
	if o.maxQueue > s.maxQueue {
		s.maxQueue = o.maxQueue
	}
}

// Run simulates the SQ(d) dispatcher: Poisson arrivals of rate ρN hit a
// central dispatcher that samples d distinct servers uniformly (without
// replacement) and queues the job at the sampled server with the fewest
// jobs, ties broken uniformly; servers serve FIFO with exponential
// unit-mean times. The first Warmup departures are discarded, then the
// sojourn times of Jobs departures are averaged.
//
// With opts.Replications = R > 1 the measured-job budget is split across R
// independently seeded streams (seeds derived from opts.Seed via its own
// PCG stream) executed concurrently through the engine pool; their moments
// are pooled into one Result.
func Run(p sqd.Params, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults()
	if opts.Replications == 1 {
		s := runStream(p, opts.Jobs, opts.Warmup, opts.BatchSize, opts.Seed)
		return s.result(), nil
	}

	r := int64(opts.Replications)
	// Derive one independent seed per replication from the master seed.
	seedRNG := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	seeds := make([]uint64, r)
	for i := range seeds {
		seeds[i] = seedRNG.Uint64()
	}
	streams, err := engine.Collect(engine.New(opts.Workers), int(r), func(i int) (*stream, error) {
		jobs := opts.Jobs / r
		if int64(i) < opts.Jobs%r {
			jobs++
		}
		return runStream(p, jobs, opts.Warmup, opts.BatchSize, seeds[i]), nil
	})
	if err != nil {
		return Result{}, err
	}
	merged := streams[0]
	for _, s := range streams[1:] {
		merged.merge(s)
	}
	return merged.result(), nil
}

// runStream runs one discrete-event stream: the original serial simulator.
func runStream(p sqd.Params, jobs, warmup, batchSize int64, seed uint64) *stream {
	rng := rand.New(rand.NewPCG(seed, 0x5bd1e995))

	servers := make([]server, p.N)
	for i := range servers {
		servers[i].completion = math.Inf(1)
	}
	var trk tracker
	if p.N <= 16 {
		trk = &linearTracker{servers: servers}
	} else {
		trk = newHeapTracker(p.N)
	}
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = i
	}

	lamN := p.TotalArrivalRate()
	nextArrival := rng.ExpFloat64() / lamN
	res := &stream{
		batch: stats.NewBatchMeans(batchSize),
		hist:  stats.NewHistogram(0.02, 25_000), // covers sojourns up to 500 service times
	}
	var departed int64

	for res.sojourns.N() < jobs {
		minC, minI := trk.min()
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + rng.ExpFloat64()/lamN
			// Sample d distinct servers by partial Fisher–Yates, keeping
			// the least-loaded with uniform tie breaking.
			best, bestLen, ties := -1, math.MaxInt, 0
			for k := 0; k < p.D; k++ {
				j := k + rng.IntN(p.N-k)
				perm[k], perm[j] = perm[j], perm[k]
				s := perm[k]
				switch l := servers[s].length(); {
				case l < bestLen:
					best, bestLen, ties = s, l, 1
				case l == bestLen:
					ties++
					if rng.IntN(ties) == 0 {
						best = s
					}
				}
			}
			sv := &servers[best]
			sv.push(now)
			if sv.length() == 1 {
				sv.completion = now + rng.ExpFloat64()
				trk.update(best, sv.completion)
			}
			if sv.length() > res.maxQueue {
				res.maxQueue = sv.length()
			}
			continue
		}
		sv := &servers[minI]
		now := sv.completion
		arrivedAt := sv.pop()
		if sv.length() > 0 {
			sv.completion = now + rng.ExpFloat64()
		} else {
			sv.completion = math.Inf(1)
		}
		trk.update(minI, sv.completion)
		departed++
		if departed > warmup {
			sojourn := now - arrivedAt
			res.batch.Add(sojourn)
			res.sojourns.Add(sojourn)
			res.hist.Add(sojourn)
		}
	}
	return res
}
