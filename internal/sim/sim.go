// Package sim provides the simulation side of the paper's evaluation: a
// discrete-event simulator of a dispatched server farm measuring per-job
// sojourn times (the baseline of Figures 9 and 10), and a CTMC trajectory
// simulator for arbitrary sqd models used to cross-validate the
// matrix-geometric solutions of the bound models.
//
// The event loop is workload-agnostic: arrival processes, service-time
// laws, per-server speeds, and dispatch policies plug in through the
// interfaces of internal/workload. The default configuration — Poisson
// arrivals, exponential unit-rate homogeneous servers, SQ(d) — is the
// paper's system and stays bit-identical to the pre-workload simulator;
// every other configuration is validated against classical queueing
// oracles where one exists (see workload_test.go).
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"finitelb/internal/engine"
	"finitelb/internal/frand"
	"finitelb/internal/minindex"
	"finitelb/internal/sqd"
	"finitelb/internal/stats"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// Options configures a discrete-event run.
type Options struct {
	Jobs   int64  // measured jobs (default 1e6)
	Warmup int64  // discarded leading departures (default Jobs/10)
	Seed   uint64 // RNG seed (default 1)
	// BatchSize for batch-means confidence intervals; default Jobs/200.
	BatchSize int64
	// Replications splits the measured-job budget across R independently
	// seeded replications executed concurrently and merged into one Result
	// with pooled moments. Each replication pays the full Warmup, so the
	// total simulated work is Jobs + R·Warmup. The default 1 runs the
	// legacy single stream and is bit-identical to it; larger values are
	// statistically equivalent, not bit-identical.
	Replications int
	// Workers bounds the replication concurrency; default GOMAXPROCS.
	Workers int

	// Arrival is the interarrival process at aggregate rate ρ·Σspeeds
	// (ρ·N for a homogeneous fleet). Default workload.Poisson{}, the only
	// process the analytic bounds cover.
	Arrival workload.Arrival
	// Service is the unit-mean service-requirement law; the time server i
	// spends on a job is Sample/Speeds[i]. Default workload.Exponential{}.
	Service workload.Service
	// Policy routes each arrival; default workload.SQD{D: Params.D}.
	// Params.D is ignored by other policies (and by SQD specs with an
	// explicit positive D).
	Policy workload.Policy
	// Speeds are per-server speed factors for heterogeneous fleets; nil
	// means a homogeneous unit-speed fleet. Length must equal Params.N and
	// every entry must be positive. The aggregate arrival rate scales with
	// Σspeeds so ρ stays the system utilization.
	Speeds []float64

	// Tail selects the quantile estimator (TailSketch default). The choice
	// never affects the rng draw sequence or the moment arithmetic — only
	// how Result's quantiles are computed — so every run stays
	// seed-deterministic under either estimator.
	Tail TailEstimator

	// Trace, when non-nil, wires the flight recorder into the event
	// loop: sampled jobs get lifecycle spans (arrival/pick/enqueue/
	// start/done with server, queue length seen, and tie count) in the
	// recorder's ring plus per-stage delay sketches. Tracing never
	// consumes a draw from the simulation rng — runs are bit-identical
	// with tracing on, off, or at any sampling rate — and adds zero
	// allocations per event. With Replications > 1 all replication
	// streams share the recorder; span Seq is then the per-stream
	// arrival rank, not a global order.
	Trace *trace.Recorder

	// Churn, when non-nil, replays a membership/fault schedule on model
	// time — the simulator twin of the live farm's failure domain, so
	// every chaos scenario is seed-reproducible. Events must carry
	// explicit servers (resolve a parsed spec with internal/chaos.Resolve
	// first) and be sorted by time; stall/pause/resume are live-only
	// (wall-clock semantics) and are rejected here. Semantics per event:
	// crash loses the in-service job's progress and redistributes the
	// whole queue through the dispatch policy at the event instant
	// (arrival stamps preserved, so lost time shows up in the sojourns;
	// a re-executed job draws a fresh requirement); leave lets the
	// in-service job complete and redistributes only the waiting jobs;
	// slow multiplies service durations starting after the event. While
	// servers are down, SQ(d) samples among the survivors — the same
	// degraded-mode law as internal/lb — so a crash of k of N at fixed
	// offered load reproduces the (N−k, ρ·N/(N−k)) system. A churn run
	// always executes on the interface loop; churn-free runs are
	// untouched, bit-identical to their goldens. Churn cannot be
	// combined with Trace.
	Churn *workload.Churn
}

// TailEstimator selects how a run estimates sojourn quantiles.
type TailEstimator int

const (
	// TailSketch (the default) uses the mergeable relative-error quantile
	// sketch: α=1% accuracy at any sojourn magnitude in O(KB) of state,
	// with exact shard/replication merging.
	TailSketch TailEstimator = iota
	// TailHistogram uses the legacy fixed-width histogram (0.02 resolution
	// up to 500 mean service times, values beyond counted in
	// Result.Overflow). Kept for the bit-identity goldens captured before
	// the sketch existed.
	TailHistogram
)

// newSimStream builds the measurement stream for one replication with the
// selected tail estimator; shapes here are the simulator's standard ones.
func newSimStream(batchSize int64, tail TailEstimator) *stats.Stream {
	if tail == TailHistogram {
		// 0.02 service-time resolution up to 500 service times.
		return stats.NewStream(batchSize, 0.02, 25_000)
	}
	return stats.NewSketchStream(batchSize, stats.DefaultAlpha, stats.DefaultSketchBudget)
}

func (o *Options) setDefaults() {
	if o.Jobs <= 0 {
		o.Jobs = 1_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Jobs / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = o.Jobs / 200
		if o.BatchSize < 1 {
			o.BatchSize = 1
		}
	}
	if o.Replications <= 0 {
		o.Replications = 1
	}
	if o.Arrival == nil {
		o.Arrival = workload.Poisson{}
	}
	if o.Service == nil {
		o.Service = workload.Exponential{}
	}
}

// wiring is the per-run workload configuration shared (read-only) by all
// replication streams.
type wiring struct {
	arrival workload.Arrival
	service workload.Service
	policy  workload.Policy
	speeds  []float64 // always length N
	rate    float64   // aggregate arrival rate ρ·Σspeeds
	// workAware marks policies that dispatch on outstanding work (LWL):
	// the event loop then draws each job's requirement at arrival and
	// exposes per-server work through the workload.WorkQueues view.
	workAware bool
	// churn is the validated schedule (nil for churn-free runs, which
	// keeps every existing path bit-identical); sqdD caches the SQ(d)
	// policy's d for the degraded-mode live-set sampling (0 otherwise).
	churn []workload.ChurnEvent
	sqdD  int
}

// resolve validates the workload options against p and freezes them into a
// wiring. It is the single place all configuration errors surface;
// runStream assumes a valid wiring.
func resolve(p sqd.Params, o Options) (wiring, error) {
	w := wiring{arrival: o.Arrival, service: o.Service, policy: o.Policy}
	if w.policy == nil {
		w.policy = workload.SQD{D: p.D}
	} else if s, ok := w.policy.(workload.SQD); ok && s.D == 0 {
		w.policy = workload.SQD{D: p.D} // parsed "sqd" with no explicit d
	}
	if err := w.service.Validate(); err != nil {
		return wiring{}, err
	}
	sum := 0.0
	switch {
	case o.Speeds == nil:
		w.speeds = make([]float64, p.N)
		for i := range w.speeds {
			w.speeds[i] = 1
		}
		sum = float64(p.N)
	case len(o.Speeds) != p.N:
		return wiring{}, fmt.Errorf("sim: %d speed factors for N = %d servers", len(o.Speeds), p.N)
	default:
		w.speeds = o.Speeds
		for i, s := range o.Speeds {
			if !(s > 0) || math.IsInf(s, 1) {
				return wiring{}, fmt.Errorf("sim: speed[%d] = %v outside (0, ∞)", i, s)
			}
			sum += s
		}
	}
	w.rate = p.Rho * sum
	if _, err := w.arrival.NewSource(w.rate); err != nil {
		return wiring{}, err
	}
	if _, err := w.policy.NewPicker(p.N); err != nil {
		return wiring{}, err
	}
	_, w.workAware = w.policy.(workload.WorkAware)
	if s, ok := w.policy.(workload.SQD); ok {
		w.sqdD = s.D
	}
	evs, err := validateChurn(o.Churn, p.N)
	if err != nil {
		return wiring{}, err
	}
	w.churn = evs
	if len(evs) > 0 && o.Trace != nil {
		return wiring{}, fmt.Errorf("sim: churn and tracing cannot be combined (queue redistribution breaks the tracer's per-server span bookkeeping)")
	}
	return w, nil
}

// Result summarizes a simulation run.
type Result struct {
	MeanDelay float64 // mean sojourn time across measured jobs
	MeanWait  float64 // mean waiting time (sojourn − 1, the unit mean service)
	HalfWidth float64 // 95% CI half-width on MeanDelay (batch means)
	Jobs      int64   // measured jobs
	MaxQueue  int     // largest queue length observed

	// Sojourn quantiles: sketch-estimated within 1% relative error by
	// default; histogram-estimated at 0.02 resolution under TailHistogram.
	P50, P95, P99 float64

	// Overflow counts observations the tail estimator could not resolve:
	// nonzero only under TailHistogram, where quantiles beyond 500 mean
	// service times are silently clipped to the upper edge. The sketch has
	// no ceiling and always reports 0.
	Overflow int64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("delay %.4f ± %.4f (%d jobs, max queue %d)", r.MeanDelay, r.HalfWidth, r.Jobs, r.MaxQueue)
}

// server is one FIFO queue: arrival stamps of queued jobs plus the
// absolute completion time of the in-service job. Under a work-aware
// policy (LWL) it additionally carries each queued job's service
// requirement, drawn at arrival, and the total not-yet-started work.
//
// The queue is a power-of-two ring buffer indexed by free-running
// head/tail counters: push and pop are a masked store/load each, with no
// append machinery and no compaction copies on the hot path (the old
// slice queue's occasional memmove plus its per-pop compaction check were
// ~5% of event time). Memory stays bounded at the high-water queue length
// rounded up to a power of two; grow doubles both rings together so the
// work alignment is preserved.
type server struct {
	arrivals   []float64 // ring, len a power of two; head slot is in service
	work       []float64 // ring aligned with arrivals (work-aware runs only)
	head, tail uint32    // free-running; index = counter & (len−1)
	completion float64   // +Inf when idle
	pending    float64   // Σ requirements of queued jobs not yet in service
}

// serverRingInit is the initial ring capacity (must be a power of two);
// queues deeper than this double in place.
const serverRingInit = 16

func (s *server) init(workAware bool) {
	s.completion = math.Inf(1)
	s.arrivals = make([]float64, serverRingInit)
	if workAware {
		s.work = make([]float64, serverRingInit)
	}
}

func (s *server) length() int { return int(s.tail - s.head) }

func (s *server) push(t float64) {
	if int(s.tail-s.head) == len(s.arrivals) {
		s.grow()
	}
	s.arrivals[s.tail&uint32(len(s.arrivals)-1)] = t
	s.tail++
}

// pushWork appends an arrival stamp together with the job's requirement.
func (s *server) pushWork(t, req float64) {
	if int(s.tail-s.head) == len(s.arrivals) {
		s.grow()
	}
	i := s.tail & uint32(len(s.arrivals)-1)
	s.arrivals[i] = t
	s.work[i] = req
	s.tail++
}

func (s *server) pop() float64 {
	v := s.arrivals[s.head&uint32(len(s.arrivals)-1)]
	s.head++
	return v
}

// workFront returns the requirement of the job at the head of the queue —
// after a pop, the job now entering service.
func (s *server) workFront() float64 {
	return s.work[s.head&uint32(len(s.work)-1)]
}

func (s *server) grow() {
	oldMask := uint32(len(s.arrivals) - 1)
	na := make([]float64, 2*len(s.arrivals))
	newMask := uint32(len(na) - 1)
	for j := s.head; j != s.tail; j++ {
		na[j&newMask] = s.arrivals[j&oldMask]
	}
	s.arrivals = na
	if s.work != nil {
		nw := make([]float64, len(na))
		for j := s.head; j != s.tail; j++ {
			nw[j&newMask] = s.work[j&oldMask]
		}
		s.work = nw
	}
}

// result converts a merged measurement stream into the public Result.
func result(s *stats.Stream) Result {
	return Result{
		MeanDelay: s.Sojourns.Mean(),
		MeanWait:  s.Sojourns.Mean() - 1,
		HalfWidth: s.Batch.HalfWidth(),
		Jobs:      s.Sojourns.N(),
		MaxQueue:  s.MaxQueue,
		P50:       s.Quantile(0.50),
		P95:       s.Quantile(0.95),
		P99:       s.Quantile(0.99),
		Overflow:  s.Overflow(),
	}
}

// Run simulates a dispatched server farm: arrivals from opts.Arrival (at
// aggregate rate ρ·Σspeeds) hit a central dispatcher that routes each job
// via opts.Policy; servers serve FIFO, drawing unit-mean requirements from
// opts.Service scaled by their speed factor. The zero-value options
// reproduce the paper's system — Poisson arrivals of rate ρN, SQ(d)
// sampling d distinct servers uniformly and joining the shortest (ties
// uniform), exponential unit-rate homogeneous servers — draw for draw.
// The first Warmup departures are discarded, then the sojourn times of
// Jobs departures are averaged.
//
// With opts.Replications = R > 1 the measured-job budget is split across R
// independently seeded streams (seeds derived from opts.Seed via its own
// PCG stream) executed concurrently through the engine pool; their moments
// are pooled into one Result.
func Run(p sqd.Params, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults()
	w, err := resolve(p, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.Replications == 1 {
		return result(runStream(p, w, opts.Jobs, opts.Warmup, opts.BatchSize, opts.Seed, opts.Tail, opts.Trace)), nil
	}

	r := int64(opts.Replications)
	// Derive one independent seed per replication from the master seed.
	seedRNG := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	seeds := make([]uint64, r)
	for i := range seeds {
		seeds[i] = seedRNG.Uint64()
	}
	streams, err := engine.Collect(engine.New(opts.Workers), int(r), func(i int) (*stats.Stream, error) {
		jobs := opts.Jobs / r
		if int64(i) < opts.Jobs%r {
			jobs++
		}
		return runStream(p, w, jobs, opts.Warmup, opts.BatchSize, seeds[i], opts.Tail, opts.Trace), nil
	})
	if err != nil {
		return Result{}, err
	}
	merged := streams[0]
	for _, s := range streams[1:] {
		merged.Merge(s)
	}
	return result(merged), nil
}

// farm adapts the server slice to the dispatcher's workload.Queues view.
// It also implements workload.WorkQueues for work-aware policies (LWL):
// the event loop sets now to each arrival instant before the Pick, and
// Work reports the server's time-to-drain at that instant — the
// in-service remainder (completion − now, already in time units) plus the
// queued not-yet-started requirements divided by the server's speed.
type farm struct {
	servers []server
	speeds  []float64
	now     float64

	// Hierarchical min-indexes (nil below minindex.Threshold, or when the
	// policy doesn't dispatch on a global argmin): lenTree tracks queue
	// lengths for JSQ, workTree tracks backlog for LWL. The event loop
	// calls note(i) after every state change of server i, so a pick is
	// O(log N) instead of the O(N) scan that dominates large-N sweeps.
	lenTree  *minindex.Seq
	workTree *minindex.Seq

	// Failure-domain state, allocated only for churn runs (nil slices on
	// every churn-free path — zero cost beyond a nil check in Len/Work).
	// down marks departed/crashed servers, downCnt counts them, live is
	// the compact live-server list the degraded-mode SQ(d) samples from,
	// and slow holds per-server service-duration multipliers (1 = none).
	down    []bool
	downCnt int
	live    []int
	slow    []float64
}

func (f *farm) N() int { return len(f.servers) }

// Len reports a down server as worst-possible, so length-scanning
// pickers route around it; the loop's next-alive probe is then only a
// race-free backstop for policies that don't read lengths at all.
func (f *farm) Len(i int) int {
	if f.down != nil && f.down[i] {
		return math.MaxInt32
	}
	return f.servers[i].length()
}

// note re-keys server i in whichever index is active. The workTree key is
// pending/speed + completion — the absolute-time form of Work(i): among
// busy servers "− now" is a common shift that argmin ignores, and an idle
// server keys at 0, below every busy server's completion ≥ now ≥ 0.
func (f *farm) note(i int) {
	if f.down != nil && f.down[i] {
		// Masked out of both indexes while down; restore re-keys.
		if f.lenTree != nil {
			f.lenTree.Update(i, math.Inf(1))
		}
		if f.workTree != nil {
			f.workTree.Update(i, math.Inf(1))
		}
		return
	}
	s := &f.servers[i]
	if f.lenTree != nil {
		f.lenTree.Update(i, float64(s.length()))
	}
	if f.workTree != nil {
		if s.length() == 0 {
			f.workTree.Update(i, 0)
		} else {
			f.workTree.Update(i, s.pending/f.speeds[i]+s.completion)
		}
	}
}

// ArgminLen implements workload.ArgminQueues when the length index is on.
func (f *farm) ArgminLen(rng *rand.Rand) (int, bool) {
	if f.lenTree == nil {
		return 0, false
	}
	return f.lenTree.Argmin(rng), true
}

// ArgminWork implements workload.ArgminWorkQueues when the work index is on.
func (f *farm) ArgminWork(rng *rand.Rand) (int, bool) {
	if f.workTree == nil {
		return 0, false
	}
	return f.workTree.Argmin(rng), true
}

func (f *farm) Work(i int) float64 {
	if f.down != nil && f.down[i] {
		return math.Inf(1)
	}
	s := &f.servers[i]
	if s.length() == 0 {
		return 0
	}
	rem := s.completion - f.now
	if rem < 0 {
		rem = 0
	}
	return s.pending/f.speeds[i] + rem
}

// runStream runs one discrete-event stream. The wiring must have passed
// resolve, so instantiating its pieces cannot fail. Every built-in
// workload resolves onto the devirtualized typed loop (see loop.go);
// exotic wirings — user implementations of the workload interfaces — run
// the interface loop below. Both loops produce the same draw sequence for
// the same wiring, which is what keeps the bit-identity regression tests
// green (they pin each path against the same pre-workload goldens).
func runStream(p sqd.Params, w wiring, jobs, warmup, batchSize int64, seed uint64, tail TailEstimator, rec *trace.Recorder) *stats.Stream {
	res := newSimStream(batchSize, tail)
	// Churn runs always take the interface loop: membership changes are
	// control-plane-rare, and keeping them out of the typed loops keeps
	// those loops — and their bit-identity goldens — untouched.
	if len(w.churn) == 0 {
		if tr := newTypedRunner(p, w, warmup, res, seed); tr != nil {
			if rec != nil {
				tr.st.tr = newSimTracer(rec, p.N)
			}
			tr.run(jobs)
			return res
		}
	}

	// frand is bit-identical to rand.NewPCG, so the fallback stream stays
	// on the seed trajectory the goldens were captured from.
	rng := rand.New(frand.New(seed, 0x5bd1e995))
	servers := make([]server, p.N)
	for i := range servers {
		servers[i].init(w.workAware)
	}
	var str *simTracer
	if rec != nil {
		str = newSimTracer(rec, p.N)
	}
	_, heavy := w.service.(workload.BoundedPareto)
	runInterfaceLoop(p, w, servers, newTrackerFor(p.N, heavy), rng, res, jobs, warmup, str)
	return res
}

// runInterfaceLoop is the workload-agnostic event loop: identical
// structure to the typed loop with the arrival source, dispatch picker,
// service law, and speed factors drawn through the workload interfaces.
//
// Under a work-aware policy (wiring.workAware) each job's service
// requirement is drawn at *arrival* instead of at service start — the
// dispatcher must know the work it is about to place — and the farm view
// additionally satisfies workload.WorkQueues, exposing each server's
// outstanding work (queued requirements plus the in-service remainder) at
// the current arrival instant. The draw *sequence* therefore differs from
// the non-work-aware loop, but each job's requirement is the same i.i.d.
// law, so all configurations remain distributionally identical.
func runInterfaceLoop(p sqd.Params, w wiring, servers []server, trk *tracker, rng *rand.Rand, res *stats.Stream, jobs, warmup int64, tr *simTracer) {
	src, err := w.arrival.NewSource(w.rate)
	if err != nil {
		panic("sim: unresolved wiring: " + err.Error())
	}
	picker, err := w.policy.NewPicker(p.N)
	if err != nil {
		panic("sim: unresolved wiring: " + err.Error())
	}
	// Box the farm view once; passing the struct would re-box (and heap
	// allocate) on every Pick.
	wf := &farm{servers: servers, speeds: w.speeds}
	if len(w.churn) > 0 {
		wf.down = make([]bool, p.N)
		wf.slow = make([]float64, p.N)
		for i := range wf.slow {
			wf.slow[i] = 1
		}
		wf.rebuildLive()
	}
	if p.N >= minindex.Threshold {
		// Sub-linear dispatch: global-argmin policies get a maintained
		// min-index; below the threshold (and for O(d) policies) the
		// reference scan wins. Selection changes the rng draw sequence,
		// not the policy's law — results stay seed-deterministic.
		switch w.policy.(type) {
		case workload.JSQ:
			wf.lenTree = minindex.NewSeq(p.N)
		case workload.LWL:
			wf.workTree = minindex.NewSeq(p.N)
		}
	}
	indexed := wf.lenTree != nil || wf.workTree != nil
	var queues workload.Queues = wf
	svc, speeds := w.service, w.speeds

	nextArrival := src.Next(rng)
	var departed int64
	churn := w.churn
	ci := 0

	for res.N() < jobs {
		minC, minI := trk.min()
		if ci < len(churn) && churn[ci].T <= minC && churn[ci].T <= nextArrival {
			// Churn is the third event source, firing ahead of any
			// arrival or completion at the same instant.
			applyChurnSim(churn[ci], wf, trk, rng, svc, &w, picker, queues, res)
			ci++
			continue
		}
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + src.Next(rng)
			var best int
			if w.workAware {
				wf.now = now
				req := svc.Sample(rng)
				best = pickLive(rng, picker, queues, wf, w.sqdD)
				sv := &servers[best]
				sv.pushWork(now, req)
				if sv.length() == 1 {
					x := req / speeds[best]
					if wf.slow != nil && wf.slow[best] != 1 {
						x *= wf.slow[best]
					}
					sv.completion = now + x
					trk.update(best, sv.completion)
				} else {
					sv.pending += req
				}
			} else {
				best = pickLive(rng, picker, queues, wf, w.sqdD)
				sv := &servers[best]
				sv.push(now)
				if sv.length() == 1 {
					x := svc.Sample(rng) / speeds[best]
					if wf.slow != nil && wf.slow[best] != 1 {
						x *= wf.slow[best]
					}
					sv.completion = now + x
					trk.update(best, sv.completion)
				}
			}
			if indexed {
				wf.note(best)
			}
			res.ObserveQueue(servers[best].length())
			if tr != nil {
				// Interface pickers don't report tie counts.
				tr.onArrival(now, best, servers[best].length()-1, -1)
			}
			continue
		}
		sv := &servers[minI]
		now := sv.completion
		arrivedAt := sv.pop()
		if sv.length() > 0 {
			var req float64
			if w.workAware {
				req = sv.workFront()
				sv.pending -= req
			} else {
				req = svc.Sample(rng)
			}
			x := req / speeds[minI]
			if wf.slow != nil && wf.slow[minI] != 1 {
				x *= wf.slow[minI]
			}
			sv.completion = now + x
		} else {
			sv.completion = math.Inf(1)
		}
		trk.update(minI, sv.completion)
		if indexed {
			wf.note(minI)
		}
		if tr != nil {
			tr.onDeparture(now, minI)
		}
		departed++
		if departed > warmup {
			res.Add(now - arrivedAt)
		}
	}
}
