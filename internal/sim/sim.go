// Package sim provides the simulation side of the paper's evaluation: a
// discrete-event simulator of the SQ(d) dispatcher measuring per-job
// sojourn times (the baseline of Figures 9 and 10), and a CTMC trajectory
// simulator for arbitrary sqd models used to cross-validate the
// matrix-geometric solutions of the bound models.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"

	"finitelb/internal/sqd"
	"finitelb/internal/stats"
)

// Options configures a discrete-event run.
type Options struct {
	Jobs   int64  // measured jobs (default 1e6)
	Warmup int64  // discarded leading departures (default Jobs/10)
	Seed   uint64 // RNG seed (default 1)
	// BatchSize for batch-means confidence intervals; default Jobs/200.
	BatchSize int64
}

func (o *Options) setDefaults() {
	if o.Jobs <= 0 {
		o.Jobs = 1_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Jobs / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = o.Jobs / 200
		if o.BatchSize < 1 {
			o.BatchSize = 1
		}
	}
}

// Result summarizes a simulation run.
type Result struct {
	MeanDelay float64 // mean sojourn time across measured jobs
	MeanWait  float64 // mean waiting time (sojourn − 1, the unit mean service)
	HalfWidth float64 // 95% CI half-width on MeanDelay (batch means)
	Jobs      int64   // measured jobs
	MaxQueue  int     // largest queue length observed

	// Sojourn quantiles (histogram-estimated at 0.02 resolution).
	P50, P95, P99 float64
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("delay %.4f ± %.4f (%d jobs, max queue %d)", r.MeanDelay, r.HalfWidth, r.Jobs, r.MaxQueue)
}

// server is one FIFO queue: arrival stamps of queued jobs plus the
// absolute completion time of the in-service job.
type server struct {
	arrivals   []float64 // arrival times; arrivals[head] is in service
	head       int
	completion float64 // +Inf when idle
}

func (s *server) length() int { return len(s.arrivals) - s.head }

func (s *server) push(t float64) { s.arrivals = append(s.arrivals, t) }

func (s *server) pop() float64 {
	v := s.arrivals[s.head]
	s.head++
	// Compact occasionally so memory stays bounded on long runs.
	if s.head > 64 && s.head*2 >= len(s.arrivals) {
		s.arrivals = append(s.arrivals[:0], s.arrivals[s.head:]...)
		s.head = 0
	}
	return v
}

// tracker finds the earliest pending service completion.
type tracker interface {
	update(id int, t float64)
	min() (float64, int)
}

// linearTracker scans all servers; optimal for the small N of Figure 10.
type linearTracker struct{ servers []server }

func (l *linearTracker) update(int, float64) {}

func (l *linearTracker) min() (float64, int) {
	best, id := math.Inf(1), -1
	for i := range l.servers {
		if l.servers[i].completion < best {
			best, id = l.servers[i].completion, i
		}
	}
	return best, id
}

// heapTracker is an indexed min-heap; preferable for the N = 250 sweeps of
// Figure 9.
type heapTracker struct {
	times []float64
	ids   []int
	pos   []int // server id → heap slot
}

func newHeapTracker(n int) *heapTracker {
	h := &heapTracker{
		times: make([]float64, n),
		ids:   make([]int, n),
		pos:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.times[i] = math.Inf(1)
		h.ids[i] = i
		h.pos[i] = i
	}
	return h
}

func (h *heapTracker) Len() int           { return len(h.times) }
func (h *heapTracker) Less(i, j int) bool { return h.times[i] < h.times[j] }
func (h *heapTracker) Swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]], h.pos[h.ids[j]] = i, j
}
func (h *heapTracker) Push(any) { panic("sim: fixed-size heap") }
func (h *heapTracker) Pop() any { panic("sim: fixed-size heap") }

func (h *heapTracker) update(id int, t float64) {
	i := h.pos[id]
	h.times[i] = t
	heap.Fix(h, i)
}

func (h *heapTracker) min() (float64, int) { return h.times[0], h.ids[0] }

// Run simulates the SQ(d) dispatcher: Poisson arrivals of rate ρN hit a
// central dispatcher that samples d distinct servers uniformly (without
// replacement) and queues the job at the sampled server with the fewest
// jobs, ties broken uniformly; servers serve FIFO with exponential
// unit-mean times. The first Warmup departures are discarded, then the
// sojourn times of Jobs departures are averaged.
func Run(p sqd.Params, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x5bd1e995))

	servers := make([]server, p.N)
	for i := range servers {
		servers[i].completion = math.Inf(1)
	}
	var trk tracker
	if p.N <= 16 {
		trk = &linearTracker{servers: servers}
	} else {
		trk = newHeapTracker(p.N)
	}
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = i
	}

	lamN := p.TotalArrivalRate()
	nextArrival := rng.ExpFloat64() / lamN
	batch := stats.NewBatchMeans(opts.BatchSize)
	hist := stats.NewHistogram(0.02, 25_000) // covers sojourns up to 500 service times
	var sojourns stats.Welford
	var res Result
	var departed int64

	for sojourns.N() < opts.Jobs {
		minC, minI := trk.min()
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + rng.ExpFloat64()/lamN
			// Sample d distinct servers by partial Fisher–Yates, keeping
			// the least-loaded with uniform tie breaking.
			best, bestLen, ties := -1, math.MaxInt, 0
			for k := 0; k < p.D; k++ {
				j := k + rng.IntN(p.N-k)
				perm[k], perm[j] = perm[j], perm[k]
				s := perm[k]
				switch l := servers[s].length(); {
				case l < bestLen:
					best, bestLen, ties = s, l, 1
				case l == bestLen:
					ties++
					if rng.IntN(ties) == 0 {
						best = s
					}
				}
			}
			sv := &servers[best]
			sv.push(now)
			if sv.length() == 1 {
				sv.completion = now + rng.ExpFloat64()
				trk.update(best, sv.completion)
			}
			if sv.length() > res.MaxQueue {
				res.MaxQueue = sv.length()
			}
			continue
		}
		sv := &servers[minI]
		now := sv.completion
		arrivedAt := sv.pop()
		if sv.length() > 0 {
			sv.completion = now + rng.ExpFloat64()
		} else {
			sv.completion = math.Inf(1)
		}
		trk.update(minI, sv.completion)
		departed++
		if departed > opts.Warmup {
			sojourn := now - arrivedAt
			batch.Add(sojourn)
			sojourns.Add(sojourn)
			hist.Add(sojourn)
		}
	}

	res.MeanDelay = sojourns.Mean()
	res.MeanWait = sojourns.Mean() - 1
	res.HalfWidth = batch.HalfWidth()
	res.Jobs = sojourns.N()
	res.P50 = hist.Quantile(0.50)
	res.P95 = hist.Quantile(0.95)
	res.P99 = hist.Quantile(0.99)
	return res, nil
}
