package sim

import (
	"finitelb/internal/frand"
	"finitelb/internal/workload"
)

// The typed event loop devirtualizes the per-event draw pair — interarrival
// and service requirement — by re-deriving, for each built-in workload law,
// a concrete sampler over the concrete frand generator. Each sampler must
// consume exactly the draws its internal/workload counterpart consumes, in
// the same order, with the same arithmetic: TestSamplersMatchWorkload pins
// every law's sequence against the interface implementation, and the loop
// equivalence tests pin whole runs. The samplers are value structs so the
// generic loop stencils a dedicated instantiation per (arrival, service)
// pair, turning every draw into a direct — mostly inlined — call.

// arrSampler is the generic constraint for interarrival samplers.
type arrSampler interface {
	next(fr *frand.RNG) float64
}

// svcSampler is the generic constraint for service-requirement samplers.
type svcSampler interface {
	sample(fr *frand.RNG) float64
}

// poissonArr mirrors workload.Poisson's source: one Exp draw per arrival.
type poissonArr struct{ rate float64 }

func (a poissonArr) next(fr *frand.RNG) float64 { return fr.ExpFloat64() / a.rate }

// constArr mirrors workload.DeterministicArrivals: fixed gap, no draws.
type constArr struct{ gap float64 }

func (a constArr) next(*frand.RNG) float64 { return a.gap }

// erlangArr mirrors workload.ErlangArrivals: K Exp draws per arrival.
type erlangArr struct {
	k         int
	phaseRate float64
}

func (a erlangArr) next(fr *frand.RNG) float64 {
	sum := 0.0
	for i := 0; i < a.k; i++ {
		sum += fr.ExpFloat64()
	}
	return sum / a.phaseRate
}

// hyperArr mirrors workload.HyperExp: one uniform branch draw, one Exp.
type hyperArr struct{ p, l1, l2 float64 }

func (a hyperArr) next(fr *frand.RNG) float64 {
	if fr.Float64() < a.p {
		return fr.ExpFloat64() / a.l1
	}
	return fr.ExpFloat64() / a.l2
}

// expSvc mirrors workload.Exponential: one Exp draw.
type expSvc struct{}

func (expSvc) sample(fr *frand.RNG) float64 { return fr.ExpFloat64() }

// detSvc mirrors workload.DeterministicService: no draws.
type detSvc struct{}

func (detSvc) sample(*frand.RNG) float64 { return 1 }

// erlangSvc mirrors workload.ErlangService: K Exp draws.
type erlangSvc struct {
	k  int
	kf float64
}

func (s erlangSvc) sample(fr *frand.RNG) float64 {
	sum := 0.0
	for i := 0; i < s.k; i++ {
		sum += fr.ExpFloat64()
	}
	return sum / s.kf
}

// paretoSvc mirrors workload.BoundedPareto: one uniform draw through the
// law's own inverse CDF, so the two cannot drift apart numerically.
type paretoSvc struct{ p workload.BoundedPareto }

func (s paretoSvc) sample(fr *frand.RNG) float64 { return s.p.Quantile(fr.Float64()) }
