package sim

import (
	"math/rand/v2"
	"testing"

	"finitelb/internal/frand"
	"finitelb/internal/sqd"
	"finitelb/internal/stats"
	"finitelb/internal/workload"
)

// The typed loop re-derives every built-in law and policy as concrete
// code; these tests pin each re-derivation — and the whole loop — to the
// interface implementations, draw for draw.

// testWiring pairs Options with a heterogeneous-speed marker.
type testWiring struct {
	opts Options
	het  bool
}

// testWirings is the built-in matrix the equivalence tests sweep:
// every arrival law × a service spread × every policy appears at least
// once, including the work-aware path and heterogeneous speeds.
func testWirings(t *testing.T) map[string]testWiring {
	t.Helper()
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]testWiring{
		"default":        {},
		"det-erlang-jsq": {opts: Options{Arrival: workload.DeterministicArrivals{}, Service: workload.ErlangService{K: 3}, Policy: workload.JSQ{}}},
		"erlang-det-jiq": {opts: Options{Arrival: workload.ErlangArrivals{K: 2}, Service: workload.DeterministicService{}, Policy: workload.JIQ{}}},
		"hyper-pareto":   {opts: Options{Arrival: workload.HyperExp{CV2: 6}, Service: pareto, Policy: workload.Random{}}},
		"rr":             {opts: Options{Arrival: workload.Poisson{}, Policy: workload.RoundRobin{}}},
		"lwl-pareto":     {opts: Options{Service: pareto, Policy: workload.LWL{}}},
		"lwl-exp-het":    {opts: Options{Policy: workload.LWL{}}, het: true},
		"sqd-het":        {het: true},
	}
}

// runInterfaceStream mirrors runStream's fallback arm unconditionally:
// the interface loop over the same frand-backed stream. Sketch tail, like
// runStream's default — so typed-vs-interface equality also pins that the
// batched sketch arm (AddBatch) and the per-observation one (Add) land in
// identical sketch states.
func runInterfaceStream(p sqd.Params, w wiring, jobs, warmup, batchSize int64, seed uint64) *stats.Stream {
	res := newSimStream(batchSize, TailSketch)
	rng := rand.New(frand.New(seed, 0x5bd1e995))
	servers := make([]server, p.N)
	for i := range servers {
		servers[i].init(w.workAware)
	}
	_, heavy := w.service.(workload.BoundedPareto)
	runInterfaceLoop(p, w, servers, newTrackerFor(p.N, heavy), rng, res, jobs, warmup, nil)
	return res
}

// TestTypedLoopMatchesInterfaceLoop is the overhaul's master regression:
// for every built-in wiring, at sizes below and above the minindex
// threshold (so scan and tree pickers are both exercised), the typed
// loop and the interface loop must produce bit-identical Results — same
// draws, same arithmetic, different dispatch cost only.
func TestTypedLoopMatchesInterfaceLoop(t *testing.T) {
	for name, tw := range testWirings(t) {
		// 6: linear tracker + scan pickers; 100: tournament tracker +
		// indexed pickers; 600 (≥ calCutoff): the calendar-queue tracker
		// runs inside both loops, not just in benchmarks.
		for _, n := range []int{6, 100, 600} {
			p := sqd.Params{N: n, D: 2, Rho: 0.85}
			o := tw.opts
			o.Jobs, o.Seed = 4000, 77
			if tw.het {
				o.Speeds = make([]float64, n)
				for i := range o.Speeds {
					o.Speeds[i] = 1 + float64(i%3)
				}
			}
			o.setDefaults()
			w, err := resolve(p, o)
			if err != nil {
				t.Fatalf("%s/N=%d: %v", name, n, err)
			}
			tr := newTypedRunner(p, w, o.Warmup, newSimStream(o.BatchSize, TailSketch), o.Seed)
			if tr == nil {
				t.Fatalf("%s/N=%d: built-in wiring did not resolve onto the typed loop", name, n)
			}
			tr.run(o.Jobs)
			typed := result(tr.st.res)
			iface := result(runInterfaceStream(p, w, o.Jobs, o.Warmup, o.BatchSize, o.Seed))
			if typed != iface {
				t.Errorf("%s/N=%d: typed loop diverged from interface loop:\ntyped %+v\niface %+v", name, n, typed, iface)
			}
		}
	}
}

// TestSamplersMatchWorkload pins each concrete sampler to its workload
// source/service over a long shared-seed draw sequence — any divergence
// in draw count, order, or arithmetic shows immediately.
func TestSamplersMatchWorkload(t *testing.T) {
	// rate must be a variable: a constant 1/rate would fold at compile
	// time under exact arithmetic, while the resolver divides at run time.
	rate := 3.7
	pareto, err := workload.NewBoundedPareto(2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	he := workload.HyperExp{CV2: 4}
	p1, l1, l2 := he.Phases(rate)

	arrivals := []struct {
		law     workload.Arrival
		sampler func(fr *frand.RNG) float64
	}{
		{workload.Poisson{}, poissonArr{rate: rate}.next},
		{workload.DeterministicArrivals{}, constArr{gap: 1 / rate}.next},
		{workload.ErlangArrivals{K: 4}, erlangArr{k: 4, phaseRate: 4 * rate}.next},
		{he, hyperArr{p: p1, l1: l1, l2: l2}.next},
	}
	for _, tc := range arrivals {
		src, err := tc.law.NewSource(rate)
		if err != nil {
			t.Fatal(err)
		}
		std := rand.New(rand.NewPCG(5, 7))
		fr := frand.New(5, 7)
		for i := 0; i < 50_000; i++ {
			if a, b := src.Next(std), tc.sampler(fr); a != b {
				t.Fatalf("%v draw %d: source %v != sampler %v", tc.law, i, a, b)
			}
		}
	}

	services := []struct {
		law     workload.Service
		sampler func(fr *frand.RNG) float64
	}{
		{workload.Exponential{}, expSvc{}.sample},
		{workload.DeterministicService{}, detSvc{}.sample},
		{workload.ErlangService{K: 5}, erlangSvc{k: 5, kf: 5}.sample},
		{pareto, paretoSvc{p: pareto}.sample},
	}
	for _, tc := range services {
		std := rand.New(rand.NewPCG(11, 13))
		fr := frand.New(11, 13)
		for i := 0; i < 50_000; i++ {
			if a, b := tc.law.Sample(std), tc.sampler(fr); a != b {
				t.Fatalf("%v draw %d: Sample %v != sampler %v", tc.law, i, a, b)
			}
		}
	}
}

// queuesOverState adapts a loopState to workload.Queues/WorkQueues so
// the interface pickers can be driven against the same farm the sim
// pickers read.
type queuesOverState struct{ st *loopState }

func (q queuesOverState) N() int        { return len(q.st.qlen) }
func (q queuesOverState) Len(i int) int { return int(q.st.qlen[i]) }
func (q queuesOverState) Work(i int) float64 {
	return q.st.workAt(i)
}

// TestPickersMatchWorkload drives each scan picker pair — concrete sim
// picker vs interface workload picker — through randomized farm states
// with shared-seed generators, comparing every routing decision. Tree
// pickers are covered end to end by TestTypedLoopMatchesInterfaceLoop.
func TestPickersMatchWorkload(t *testing.T) {
	const n = 23
	mk := func() (*loopState, *rand.Rand, *rand.Rand) {
		st := &loopState{
			qlen:    make([]int32, n),
			servers: make([]server, n),
			speeds:  make([]float64, n),
			fr:      frand.New(3, 9),
		}
		for i := range st.speeds {
			st.speeds[i] = 1 + float64(i%2)
		}
		// Shared state generator (same seed both sides) plus the
		// interface picker's own draw stream, bit-shared with st.fr.
		return st, rand.New(rand.NewPCG(21, 4)), rand.New(rand.NewPCG(3, 9))
	}
	cases := []struct {
		name string
		pol  workload.Policy
		mkPk func(st *loopState) picker
	}{
		{"sqd", workload.SQD{D: 3}, func(st *loopState) picker {
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			return &sqdPick{d: 3, perm: perm}
		}},
		{"jsq-scan", workload.JSQ{}, func(*loopState) picker { return jsqScanPick{} }},
		{"lwl-scan", workload.LWL{}, func(*loopState) picker { return lwlScanPick{} }},
		{"jiq", workload.JIQ{}, func(*loopState) picker { return jiqPick{} }},
		{"rr", workload.RoundRobin{}, func(*loopState) picker { return &rrPick{n: n} }},
		{"random", workload.Random{}, func(*loopState) picker { return randPick{n: n} }},
	}
	for _, tc := range cases {
		st, stateRng, stdPick := mk()
		wp, err := tc.pol.NewPicker(n)
		if err != nil {
			t.Fatal(err)
		}
		sp := tc.mkPk(st)
		q := queuesOverState{st: st}
		for step := 0; step < 20_000; step++ {
			// Randomize the farm: lengths, and for LWL the work state.
			for i := 0; i < n; i++ {
				l := int32(stateRng.IntN(4))
				st.qlen[i] = l
				sv := &st.servers[i]
				sv.head, sv.tail = 0, uint32(l)
				if l == 0 {
					sv.completion, sv.pending = 0, 0
				} else {
					sv.completion = st.now + stateRng.Float64()*2
					sv.pending = stateRng.Float64() * float64(l)
				}
			}
			st.now = float64(step) * 0.01
			a := wp.Pick(stdPick, q)
			b := sp.pick(st)
			if a != b {
				t.Fatalf("%s step %d: interface picker chose %d, sim picker chose %d", tc.name, step, a, b)
			}
		}
	}
}

// TestExoticWiringFallsBack: user-supplied implementations of the
// workload interfaces must decline the typed loop and still produce
// bit-identical results through the interface loop when they delegate to
// a built-in law.
func TestExoticWiringFallsBack(t *testing.T) {
	p := sqd.Params{N: 12, D: 2, Rho: 0.8}
	builtin, err := Run(p, Options{Jobs: 5000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	exotic, err := Run(p, Options{Jobs: 5000, Seed: 31, Arrival: wrappedPoisson{}})
	if err != nil {
		t.Fatal(err)
	}
	if builtin != exotic {
		t.Errorf("exotic delegating wiring drifted from built-in:\nexotic  %+v\nbuiltin %+v", exotic, builtin)
	}
	o := Options{Jobs: 5000, Seed: 31, Arrival: wrappedPoisson{}}
	o.setDefaults()
	w, err := resolve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr := newTypedRunner(p, w, o.Warmup, newSimStream(o.BatchSize, TailSketch), o.Seed); tr != nil {
		t.Error("exotic arrival resolved onto the typed loop")
	}
}

// wrappedPoisson is an "exotic" arrival process that happens to delegate
// to Poisson — unknown type to the typed resolver, identical draws.
type wrappedPoisson struct{}

func (wrappedPoisson) NewSource(rate float64) (workload.Source, error) {
	return workload.Poisson{}.NewSource(rate)
}
func (wrappedPoisson) String() string { return "wrapped-poisson" }

// TestTrackerModeInvariance pins tracker.go's contract at loop level:
// the tracker mode changes only the cost of finding the next completion,
// never the draws — a full run on the production mode (calendar at this
// size) must be bit-identical to the same run forced onto the tournament
// tree and the 4-ary heap contender is covered by the property test.
func TestTrackerModeInvariance(t *testing.T) {
	p := sqd.Params{N: 600, D: 2, Rho: 0.9}
	for name, opts := range map[string]Options{
		"default": {Jobs: 8000, Seed: 13},
		"jsq":     {Jobs: 8000, Seed: 13, Policy: workload.JSQ{}},
	} {
		opts.setDefaults()
		w, err := resolve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		prod := newTypedRunner(p, w, opts.Warmup, newSimStream(opts.BatchSize, TailSketch), opts.Seed)
		if prod.st.trk.cal.keys == nil {
			t.Fatalf("%s: N=%d did not select the calendar tracker", name, p.N)
		}
		prod.run(opts.Jobs)
		forced := newTypedRunner(p, w, opts.Warmup, newSimStream(opts.BatchSize, TailSketch), opts.Seed)
		forced.st.trk = &tracker{tour: newTourTracker(p.N), n: p.N}
		forced.run(opts.Jobs)
		if a, b := result(prod.st.res), result(forced.st.res); a != b {
			t.Errorf("%s: tracker mode changed the run:\ncalendar   %+v\ntournament %+v", name, a, b)
		}
	}
}

// TestTypedChunkedRuns: driving a typed runner in many small chunks must
// be bit-identical to one uninterrupted run — the property the
// allocation-regression guard leans on.
func TestTypedChunkedRuns(t *testing.T) {
	p := sqd.Params{N: 40, D: 2, Rho: 0.85}
	for name, opts := range map[string]Options{
		"default": {Jobs: 6000, Seed: 5},
		"lwl":     {Jobs: 6000, Seed: 5, Policy: workload.LWL{}},
	} {
		opts.setDefaults()
		w, err := resolve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		one := newTypedRunner(p, w, opts.Warmup, newSimStream(opts.BatchSize, TailSketch), opts.Seed)
		one.run(opts.Jobs)
		chunked := newTypedRunner(p, w, opts.Warmup, newSimStream(opts.BatchSize, TailSketch), opts.Seed)
		for j := int64(500); j <= opts.Jobs; j += 500 {
			chunked.run(j)
		}
		if a, b := result(one.st.res), result(chunked.st.res); a != b {
			t.Errorf("%s: chunked stream drifted from one-shot:\nchunked %+v\noneshot %+v", name, b, a)
		}
	}
}

// TestAllocFreeEventPath is the allocation-regression guard of the
// tentpole: after warmup (rings grown, buffers sized), the default and
// the work-aware typed event paths must run allocation-free. BatchSize
// exceeds the measured jobs so no batch-means append lands mid-chunk,
// and the histogram/ring growth all happens in the warm phase.
func TestAllocFreeEventPath(t *testing.T) {
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Sketch tail (the default) everywhere, one histogram arm to keep the
	// legacy estimator's path guarded too; the N=10⁴ cases pin the floor
	// at the size where BENCH_sim.json historically showed 1–2 B/op of
	// setup amortization (see BenchmarkSimJobs).
	for name, tc := range map[string]struct {
		opts Options
		n    int
	}{
		"default":            {Options{Seed: 3}, 100},
		"default-hist":       {Options{Seed: 3, Tail: TailHistogram}, 100},
		"jsq-indexed":        {Options{Seed: 3, Policy: workload.JSQ{}}, 100},
		"lwl-work-aware":     {Options{Seed: 3, Service: pareto, Policy: workload.LWL{}}, 100},
		"jsq-indexed-10k":    {Options{Seed: 3, Policy: workload.JSQ{}}, 10_000},
		"lwl-work-aware-10k": {Options{Seed: 3, Service: pareto, Policy: workload.LWL{}}, 10_000},
	} {
		p := sqd.Params{N: tc.n, D: 2, Rho: 0.9}
		opts := tc.opts
		opts.Jobs = 1 << 30 // never reached; chunks drive the stream
		opts.BatchSize = 1 << 40
		opts.setDefaults()
		w, err := resolve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr := newTypedRunner(p, w, 0, newSimStream(opts.BatchSize, opts.Tail), opts.Seed)
		if tr == nil {
			t.Fatalf("%s: wiring did not resolve onto the typed loop", name)
		}
		jobs := int64(50_000) // warm: grow rings, touch tail-estimator state
		tr.run(jobs)
		const chunk = 10_000
		avg := testing.AllocsPerRun(5, func() {
			jobs += chunk
			tr.run(jobs)
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per %d-job chunk, want 0", name, avg, chunk)
		}
	}
}
