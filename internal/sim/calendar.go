package sim

import (
	"math"
	"math/bits"
)

// calTracker is the calendar-queue completion tracker — the contender
// that won the production slot at large N (see BenchmarkTracker and
// doc.go "Simulator performance").
//
// It exploits an invariant both event loops honour: the tracker is only
// ever asked to (a) re-key the *current minimum* — a departure moves the
// completing server to a later completion or to idle — or (b) give an
// idle server its first completion. No decrease-key of interior
// elements, no deletion of non-minimal elements. That makes the tracker
// a monotone priority queue, the regime where Brown's calendar queue
// does O(1) amortized work per event against the Θ(log N) sift every
// tree pays: completions hash into time buckets of width ~1/N, inserts
// are a list prepend, and the exact minimum is a cached (key, id) pair —
// updated in O(1) on inserts and recomputed after a min removal by
// sweeping forward from the old minimum's bucket. The sweep itself rides
// an occupancy bitmap (one bit per bucket), so runs of empty buckets
// cost a TrailingZeros, not a load per bucket.
//
// Exactness (this tracker is bit-exact, not approximate): the cached min
// is maintained on every mutation; the recompute sweep accepts a
// bucket's smallest key only if its un-wrapped bucket ordinal is the one
// the sweep step covers — computed with the same truncation bucket()
// uses, so no later bucket, and no later "year" sharing the same bucket
// index, can hold anything smaller. Events beyond the calendar's window
// (heavy-tailed service) simply fail the ordinal check until the sweep's
// year catches up; a full fallback scan guarantees termination when
// every pending completion is far away. All arithmetic is deterministic;
// keys are compared as the raw bits of the nonnegative completion times,
// exactly like the tree trackers.
type calTracker struct {
	keys  []uint64 // id → key bits; infBits when idle (absent)
	next  []int32  // id → successor in its bucket chain; −1 ends
	head  []int32  // bucket → first id; −1 empty
	occ   []uint64 // occupancy bitmap over buckets
	mask  uint64
	width float64
	invW  float64
	minK  uint64 // cached min key bits; infBits when empty
	minI  int32  // cached argmin id; −1 when empty
	live  int    // servers currently in the calendar
}

// init sizes the calendar for n servers: bucket width 1/n (about one
// pending completion per bucket at full utilization) and a power-of-two
// bucket count covering a ≥ 4-service-time window, beyond which only the
// tail of any unit-mean law lands.
func (t *calTracker) init(n int) {
	m := 64
	for m < 4*n {
		m <<= 1
	}
	*t = calTracker{
		keys:  make([]uint64, n),
		next:  make([]int32, n),
		head:  make([]int32, m),
		occ:   make([]uint64, m/64),
		mask:  uint64(m - 1),
		width: 1 / float64(n),
		invW:  float64(n),
		minK:  infBits,
		minI:  -1,
	}
	for i := range t.keys {
		t.keys[i] = infBits
		t.next[i] = -1
	}
	for b := range t.head {
		t.head[b] = -1
	}
}

//finitelb:hotpath
func (t *calTracker) bucket(tb uint64) uint64 {
	return uint64(int64(math.Float64frombits(tb)*t.invW)) & t.mask
}

//finitelb:hotpath
func (t *calTracker) min() (float64, int) {
	return math.Float64frombits(t.minK), int(t.minI)
}

//finitelb:hotpath
func (t *calTracker) update(id int, tm float64) {
	tb := math.Float64bits(tm)
	old := t.keys[id]
	if old != infBits {
		// Unlink from its bucket chain (usually length 1).
		b := t.bucket(old)
		if j := t.head[b]; j == int32(id) {
			if t.head[b] = t.next[id]; t.head[b] < 0 {
				t.occ[b>>6] &^= 1 << (b & 63)
			}
		} else {
			for t.next[j] != int32(id) {
				j = t.next[j]
			}
			t.next[j] = t.next[id]
		}
		t.live--
	}
	t.keys[id] = tb
	if tb != infBits {
		b := t.bucket(tb)
		if t.next[id] = t.head[b]; t.next[id] < 0 {
			t.occ[b>>6] |= 1 << (b & 63)
		}
		t.head[b] = int32(id)
		t.live++
		if tb <= t.minK {
			// ≤, not <: re-inserting the removed minimum's id with its
			// old key (a zero-length service) must restore the cache.
			t.minK, t.minI = tb, int32(id)
			return
		}
	}
	if int32(id) == t.minI {
		t.recompute(old)
	}
}

// recompute re-establishes the cached minimum after the old one (key
// bits oldK) left the calendar, sweeping occupied buckets forward from
// the old minimum's position. Every remaining key is ≥ the old minimum
// (it was the minimum), so the first in-window bucket minimum is the
// global one.
//finitelb:hotpath
func (t *calTracker) recompute(oldK uint64) {
	if t.live == 0 {
		t.minK, t.minI = infBits, -1
		return
	}
	base := int64(math.Float64frombits(oldK) * t.invW)
	m := int64(t.mask) + 1
	words := len(t.occ)
	for swept := int64(0); swept < m; {
		b := uint64(base+swept) & t.mask
		// Jump to the next occupied bucket at or after b.
		w := int(b >> 6)
		word := t.occ[w] >> (b & 63)
		if word == 0 {
			// Skip the rest of this word, then whole empty words.
			swept += 64 - int64(b&63)
			for swept < m {
				w++
				if w == words {
					w = 0
				}
				if t.occ[w] != 0 {
					break
				}
				swept += 64
			}
			continue
		}
		skip := int64(bits.TrailingZeros64(word))
		swept += skip
		if swept >= m {
			break
		}
		b = uint64(base+swept) & t.mask
		bestK, bestI := uint64(infBits), int32(-1)
		for j := t.head[b]; j >= 0; j = t.next[j] {
			if kk := t.keys[j]; kk < bestK {
				bestK, bestI = kk, j
			}
		}
		// Exact year check: accept only a candidate whose un-wrapped
		// bucket ordinal is the one this sweep step covers (the same
		// truncation bucket() uses, so rounding cannot disagree).
		if int64(math.Float64frombits(bestK)*t.invW) == base+swept {
			t.minK, t.minI = bestK, bestI
			return
		}
		swept++
	}
	// Every pending completion lies beyond a full calendar window (deep
	// heavy-tail territory): take the global minimum directly.
	bestK, bestI := uint64(infBits), int32(-1)
	for id, kk := range t.keys {
		if kk < bestK {
			bestK, bestI = kk, int32(id)
		}
	}
	t.minK, t.minI = bestK, bestI
}
