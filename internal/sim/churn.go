package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"finitelb/internal/stats"
	"finitelb/internal/workload"
)

// This file is the simulator's side of the failure domain: churn
// schedule validation and the event-loop hooks that apply membership
// changes on model time. The semantics deliberately mirror
// internal/lb's flag-based membership — crash loses in-service
// progress and redistributes the queue, leave drains gracefully, SQ(d)
// samples among survivors while servers are down — so a live chaos
// scenario replays here seed-deterministically (see Options.Churn).

// validateChurn checks a schedule against the farm size and returns a
// defensive copy, nil for no churn. Every event needs an explicit
// server (internal/chaos.Resolve assigns them deterministically);
// stall/pause/resume have wall-clock semantics with no model-time
// analogue and are rejected. Membership is tracked through the
// schedule so a run can never go all-down or double-fault.
func validateChurn(c *workload.Churn, n int) ([]workload.ChurnEvent, error) {
	if c == nil || len(c.Events) == 0 {
		return nil, nil
	}
	evs := make([]workload.ChurnEvent, len(c.Events))
	copy(evs, c.Events)
	down := make([]bool, n)
	alive := n
	last := math.Inf(-1)
	for k, ev := range evs {
		if ev.T < last {
			return nil, fmt.Errorf("sim: churn event #%d (%v) is out of time order", k, ev)
		}
		last = ev.T
		switch ev.Kind {
		case workload.ChurnStall, workload.ChurnPause, workload.ChurnResume:
			return nil, fmt.Errorf("sim: churn event %v is live-only (wall-clock semantics); the simulator rejects it", ev)
		}
		if ev.Server < 0 {
			return nil, fmt.Errorf("sim: churn event %v has no server; resolve the schedule with internal/chaos.Resolve first", ev)
		}
		if ev.Server >= n {
			return nil, fmt.Errorf("sim: churn event %v targets server %d, farm has %d", ev, ev.Server, n)
		}
		switch ev.Kind {
		case workload.ChurnCrash, workload.ChurnLeave:
			if down[ev.Server] {
				return nil, fmt.Errorf("sim: churn event %v targets a server that is already down", ev)
			}
			if alive == 1 {
				return nil, fmt.Errorf("sim: churn event %v would take down the last live server", ev)
			}
			down[ev.Server] = true
			alive--
		case workload.ChurnRestore:
			if !down[ev.Server] {
				return nil, fmt.Errorf("sim: churn event %v restores a server that is already up", ev)
			}
			down[ev.Server] = false
			alive++
		}
	}
	return evs, nil
}

// rebuildLive regenerates the compact live-server list after a
// membership change.
func (f *farm) rebuildLive() {
	f.live = f.live[:0]
	for i := range f.servers {
		if !f.down[i] {
			f.live = append(f.live, i)
		}
	}
}

// nextAlive probes deterministically for the first live server after
// from — the backstop for policies whose pick doesn't read queue
// lengths (round-robin, random) and so can land on a down server
// despite the masked view.
func (f *farm) nextAlive(from int) int {
	n := len(f.servers)
	for k := 1; k <= n; k++ {
		if i := (from + k) % n; !f.down[i] {
			return i
		}
	}
	return from // unreachable: validation keeps ≥ 1 server live
}

// pickSQDLive is the degraded-mode SQ(d) pick, mirroring
// internal/lb.(*LB).pickSQDLive: d distinct samples by partial
// Fisher–Yates over the live-server list, least queue wins with
// uniform tie-breaking. Sampling from the survivors (rather than all N
// with dead entries masked) is what keeps SQ(d)'s law — and the QBD
// bracket solved at (alive, ρ·N/alive) — intact through churn.
func (f *farm) pickSQDLive(rng *rand.Rand, d int) int {
	live := f.live
	m := len(live)
	if d > m {
		d = m
	}
	best, bestLen, ties := -1, math.MaxInt, 0
	for k := 0; k < d; k++ {
		j := k + rng.IntN(m-k)
		live[k], live[j] = live[j], live[k]
		s := live[k]
		switch l := f.servers[s].length(); {
		case l < bestLen:
			best, bestLen, ties = s, l, 1
		case l == bestLen:
			ties++
			if rng.IntN(ties) == 0 {
				best = s
			}
		}
	}
	return best
}

// pickLive routes one job on a possibly-degraded farm. Churn-free runs
// (downCnt always 0) go straight to the policy picker with the exact
// historical draw sequence.
func pickLive(rng *rand.Rand, picker workload.Picker, queues workload.Queues, wf *farm, sqdD int) int {
	if wf.downCnt > 0 && sqdD > 0 {
		return wf.pickSQDLive(rng, sqdD)
	}
	best := picker.Pick(rng, queues)
	if wf.downCnt > 0 && wf.down[best] {
		best = wf.nextAlive(best)
	}
	return best
}

// applyChurnSim applies one schedule event to the farm at model time
// ev.T. Allocation here is fine — churn events are control-plane-rare
// next to the event loop's per-arrival work.
func applyChurnSim(ev workload.ChurnEvent, wf *farm, trk *tracker, rng *rand.Rand, svc workload.Service, w *wiring, picker workload.Picker, queues workload.Queues, res *stats.Stream) {
	i := ev.Server
	switch ev.Kind {
	case workload.ChurnSlow:
		wf.slow[i] = ev.Factor
		return
	case workload.ChurnRestore:
		wf.down[i] = false
		wf.downCnt--
		wf.rebuildLive()
		wf.note(i)
		return
	}

	// Crash or leave. Drain the queue into scratch first: the ring only
	// pops from the head, and a graceful leave keeps the in-service job
	// (scratch[0]) on the server.
	sv := &wf.servers[i]
	type orphan struct{ arrived, req float64 }
	scratch := make([]orphan, 0, sv.length())
	for sv.length() > 0 {
		idx := sv.head & uint32(len(sv.arrivals)-1)
		o := orphan{arrived: sv.arrivals[idx]}
		if sv.work != nil {
			o.req = sv.work[idx]
		}
		sv.head++
		scratch = append(scratch, o)
	}
	sv.pending = 0
	orphans := scratch
	if ev.Kind == workload.ChurnLeave && len(scratch) > 0 {
		// The in-service job completes in place; its tracker entry and
		// completion time are already correct.
		if sv.work != nil {
			sv.pushWork(scratch[0].arrived, scratch[0].req)
		} else {
			sv.push(scratch[0].arrived)
		}
		orphans = scratch[1:]
	} else {
		// Crash: in-service progress is lost; a re-executed job draws a
		// fresh requirement at its new service start (under a work-aware
		// policy the original requirement travels with the job).
		sv.completion = math.Inf(1)
		trk.update(i, math.Inf(1))
	}
	wf.down[i] = true
	wf.downCnt++
	wf.rebuildLive()
	wf.note(i) // masks the server out of the min-indexes

	// Redistribute the orphans through the dispatch policy at the event
	// instant, arrival stamps preserved — the lost time surfaces in the
	// measured sojourns, exactly as live redelivery does.
	wf.now = ev.T
	for _, o := range orphans {
		best := pickLive(rng, picker, queues, wf, w.sqdD)
		tsv := &wf.servers[best]
		if w.workAware {
			tsv.pushWork(o.arrived, o.req)
			if tsv.length() == 1 {
				x := o.req / w.speeds[best]
				if wf.slow[best] != 1 {
					x *= wf.slow[best]
				}
				tsv.completion = ev.T + x
				trk.update(best, tsv.completion)
			} else {
				tsv.pending += o.req
			}
		} else {
			tsv.push(o.arrived)
			if tsv.length() == 1 {
				x := svc.Sample(rng) / w.speeds[best]
				if wf.slow[best] != 1 {
					x *= wf.slow[best]
				}
				tsv.completion = ev.T + x
				trk.update(best, tsv.completion)
			}
		}
		wf.note(best)
		res.ObserveQueue(tsv.length())
	}
}
