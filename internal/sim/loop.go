package sim

import (
	"math"
	"math/rand/v2"

	"finitelb/internal/frand"
	"finitelb/internal/minindex"
	"finitelb/internal/sqd"
	"finitelb/internal/stats"
	"finitelb/internal/workload"
)

// loopState is the mutable per-stream state shared by every typed-loop
// instantiation. It persists across run calls, so a stream can be driven
// in chunks (the allocation-regression tests lean on that) with results
// bit-identical to one uninterrupted run.
type loopState struct {
	servers []server
	// qlen mirrors each server's queue length in a dense array: pickers
	// and the loop's own length checks read 4-byte entries off a few cache
	// lines instead of chasing into the 80-byte server structs, which at
	// N ≥ 1000 turned every SQ(d) probe into an L2 miss. The loop updates
	// it next to every push/pop; servers stay authoritative for contents.
	qlen   []int32
	speeds []float64
	fr     *frand.RNG
	// std wraps the same generator for code that only speaks *rand.Rand
	// (the minindex tie-break descents); draws interleave on one stream.
	std *rand.Rand
	trk *tracker
	res *stats.Stream
	// tr is the optional flight-recorder adapter (nil = tracing off).
	// Every hook below sits behind a nil check and consumes no rng
	// draws, so trace-off runs are bit-identical to pre-trace goldens
	// and trace-on runs stay seed-deterministic.
	tr *simTracer

	// Hierarchical min-indexes, mirroring the interface loop's farm trees:
	// lenTree for indexed JSQ, workTree for indexed LWL, nil otherwise.
	lenTree  *minindex.Seq
	workTree *minindex.Seq

	nextArrival float64
	departed    int64
	warmup      int64
	measured    int64
	now         float64 // current arrival instant, read by work-aware picks
	maxQueue    int
	workAware   bool
	// unit marks a homogeneous unit-speed fleet: x/1.0 ≡ x in IEEE
	// arithmetic, so the loops skip the requirement/speed division — a
	// dependent FDIV feeding the tracker key — without changing a bit.
	unit    bool
	started bool

	// buf holds measured sojourns until they are flushed to res in one
	// AddBatch call — same accumulator arithmetic in the same order, minus
	// the per-event call chain into three heap objects.
	buf  [256]float64
	bufn int
}

// flush drains the sojourn buffer into the stream.
//finitelb:hotpath
func (st *loopState) flush() {
	if st.bufn > 0 {
		st.res.AddBatch(st.buf[:st.bufn])
		st.bufn = 0
	}
}

// workAt is farm.Work for the typed loop: server i's time-to-drain at the
// current arrival instant.
//finitelb:hotpath
func (st *loopState) workAt(i int) float64 {
	if st.qlen[i] == 0 {
		return 0
	}
	s := &st.servers[i]
	rem := s.completion - st.now
	if rem < 0 {
		rem = 0
	}
	return s.pending/st.speeds[i] + rem
}

// noteWork re-keys server i in the work index; same key as farm.note.
//finitelb:hotpath
func (st *loopState) noteWork(i int) {
	if st.qlen[i] == 0 {
		st.workTree.Update(i, 0)
		return
	}
	s := &st.servers[i]
	st.workTree.Update(i, s.pending/st.speeds[i]+s.completion)
}

// typedRunner binds one stenciled loop instantiation to its state.
type typedRunner struct {
	st  *loopState
	run func(jobs int64) // continues the stream until `jobs` measured
}

// newTypedRunner resolves a wiring onto the devirtualized event loop:
// concrete samplers for the built-in arrival and service laws (stenciled
// pairwise by the generic loop) and concrete pickers for the built-in
// policies. It returns nil when any piece is exotic — a user-supplied
// implementation of the workload interfaces — in which case runStream
// falls back to the interface loop, which handles every wiring at one
// virtual hop per draw.
func newTypedRunner(p sqd.Params, w wiring, warmup int64, res *stats.Stream, seed uint64) *typedRunner {
	st := &loopState{
		speeds: w.speeds,
		fr:     frand.New(seed, 0x5bd1e995),
		res:    res,
		warmup: warmup,
	}
	st.std = rand.New(st.fr)
	pk := st.newPicker(p, w)
	if pk == nil {
		return nil
	}
	run := bindArr(st, w, pk)
	if run == nil {
		return nil
	}
	st.servers = make([]server, p.N)
	for i := range st.servers {
		st.servers[i].init(st.workAware)
	}
	st.qlen = make([]int32, p.N)
	_, heavy := w.service.(workload.BoundedPareto)
	st.trk = newTrackerFor(p.N, heavy)
	st.unit = true
	for _, sp := range w.speeds {
		if sp != 1 {
			st.unit = false
			break
		}
	}
	return &typedRunner{st: st, run: run}
}

// newPicker resolves the policy to a concrete picker, creating the
// min-index the indexed variants read. The selection mirrors
// runInterfaceLoop's farm setup exactly: trees only at
// N ≥ minindex.Threshold, scan pickers below.
func (st *loopState) newPicker(p sqd.Params, w wiring) picker {
	st.workAware = w.workAware
	switch pol := w.policy.(type) {
	case workload.SQD:
		perm := make([]int, p.N)
		for i := range perm {
			perm[i] = i
		}
		return &sqdPick{d: pol.D, perm: perm}
	case workload.JSQ:
		if p.N >= minindex.Threshold {
			st.lenTree = minindex.NewSeq(p.N)
			return jsqTreePick{}
		}
		return jsqScanPick{}
	case workload.LWL:
		if p.N >= minindex.Threshold {
			st.workTree = minindex.NewSeq(p.N)
			return lwlTreePick{}
		}
		return lwlScanPick{}
	case workload.JIQ:
		return jiqPick{}
	case workload.RoundRobin:
		return &rrPick{n: p.N}
	case workload.Random:
		return randPick{n: p.N}
	}
	return nil
}

// bindArr resolves the arrival law and forwards to the service-law
// resolution; together they pick the stenciled loop instantiation. The
// paper's own wiring — Poisson arrivals, exponential service, SQ(d) — is
// peeled off first onto runDefault, where the three per-event draws are
// hand-inlined rather than stenciled: generic instantiations still route
// method calls through their shape dictionaries, and on a loop this tight
// the call frames alone are measurable.
func bindArr(st *loopState, w wiring, pk picker) func(int64) {
	switch a := w.arrival.(type) {
	case workload.Poisson:
		if _, ok := w.service.(workload.Exponential); ok {
			if sp, ok := pk.(*sqdPick); ok {
				return func(jobs int64) { runDefault(st, w.rate, sp, jobs) }
			}
		}
		return bindSvc(st, poissonArr{rate: w.rate}, w, pk)
	case workload.DeterministicArrivals:
		return bindSvc(st, constArr{gap: 1 / w.rate}, w, pk)
	case workload.ErlangArrivals:
		return bindSvc(st, erlangArr{k: a.K, phaseRate: float64(a.K) * w.rate}, w, pk)
	case workload.HyperExp:
		p1, l1, l2 := a.Phases(w.rate)
		return bindSvc(st, hyperArr{p: p1, l1: l1, l2: l2}, w, pk)
	}
	return nil
}

func bindSvc[A arrSampler](st *loopState, arr A, w wiring, pk picker) func(int64) {
	switch s := w.service.(type) {
	case workload.Exponential:
		return bindLoop(st, arr, expSvc{}, pk)
	case workload.DeterministicService:
		return bindLoop(st, arr, detSvc{}, pk)
	case workload.ErlangService:
		return bindLoop(st, arr, erlangSvc{k: s.K, kf: float64(s.K)}, pk)
	case workload.BoundedPareto:
		return bindLoop(st, arr, paretoSvc{p: s}, pk)
	}
	return nil
}

func bindLoop[A arrSampler, S svcSampler](st *loopState, arr A, svc S, pk picker) func(int64) {
	return func(jobs int64) { runTyped(st, arr, svc, pk, jobs) }
}

// runTyped is the devirtualized event loop: structurally the interface
// loop (runInterfaceLoop) with every hot call concrete — arrival and
// service draws are stenciled per law pair, the tracker is the inline
// 4-ary heap, pickers read the server slice directly, and the per-event
// max-queue bookkeeping folds into the stream once per run call instead
// of per arrival. Bit-identity with the interface loop across the whole
// built-in workload matrix is pinned by TestTypedLoopMatchesInterfaceLoop;
// the same property for the default wiring is pinned against the captured
// pre-workload goldens by TestDefaultWorkloadBitIdentical.
//finitelb:hotpath
func runTyped[A arrSampler, S svcSampler](st *loopState, arr A, svc S, pk picker, jobs int64) {
	servers := st.servers
	qlen := st.qlen
	speeds := st.speeds
	fr := st.fr
	trk := st.trk
	res := st.res
	workAware := st.workAware
	unit := st.unit
	lenTree, workTree := st.lenTree, st.workTree
	tr := st.tr
	if !st.started {
		st.nextArrival = arr.next(fr)
		st.started = true
	}
	nextArrival := st.nextArrival
	departed := st.departed
	measured := st.measured
	maxQ := st.maxQueue

	// The (min, argmin) pair is live across iterations and re-read only
	// after a tracker update: arrivals to busy servers — the bulk of all
	// events — leave the tracker untouched.
	minC, minI := trk.min()
	for measured < jobs {
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + arr.next(fr)
			var best int
			if workAware {
				// Work-aware dispatch: the requirement is drawn at arrival
				// so the picker can see the work it is placing.
				st.now = now
				req := svc.sample(fr)
				best = pk.pick(st)
				sv := &servers[best]
				sv.pushWork(now, req)
				l := qlen[best] + 1
				qlen[best] = l
				if l == 1 {
					x := req
					if !unit {
						x /= speeds[best]
					}
					sv.completion = now + x
					trk.update(best, sv.completion)
					minC, minI = trk.min()
				} else {
					sv.pending += req
				}
				if workTree != nil {
					st.noteWork(best)
				}
				if int(l) > maxQ {
					maxQ = int(l)
				}
				if tr != nil {
					tr.onArrival(now, best, int(l-1), lastTies(pk))
				}
			} else {
				// The tracker is authoritative for completion times on this
				// path (server.completion is neither read nor written): the
				// departure below reuses the root's key as `now`, so the
				// server line is only touched for the ring push/pop.
				best = pk.pick(st)
				servers[best].push(now)
				l := qlen[best] + 1
				qlen[best] = l
				if l == 1 {
					x := svc.sample(fr)
					if !unit {
						x /= speeds[best]
					}
					trk.update(best, now+x)
					minC, minI = trk.min()
				}
				if lenTree != nil {
					lenTree.Update(best, float64(l))
				}
				if int(l) > maxQ {
					maxQ = int(l)
				}
				if tr != nil {
					tr.onArrival(now, best, int(l-1), lastTies(pk))
				}
			}
			continue
		}
		sv := &servers[minI]
		now := minC
		arrivedAt := sv.pop()
		l := qlen[minI] - 1
		qlen[minI] = l
		if workAware {
			if l > 0 {
				req := sv.workFront()
				sv.pending -= req
				x := req
				if !unit {
					x /= speeds[minI]
				}
				sv.completion = now + x
			} else {
				sv.completion = math.Inf(1)
			}
			trk.update(minI, sv.completion)
			if workTree != nil {
				st.noteWork(minI)
			}
		} else {
			if l > 0 {
				x := svc.sample(fr)
				if !unit {
					x /= speeds[minI]
				}
				trk.update(minI, now+x)
			} else {
				trk.update(minI, math.Inf(1))
			}
			if lenTree != nil {
				lenTree.Update(minI, float64(l))
			}
		}
		if tr != nil {
			tr.onDeparture(now, minI)
		}
		minC, minI = trk.min()
		departed++
		if departed > st.warmup {
			st.buf[st.bufn] = now - arrivedAt
			st.bufn++
			if st.bufn == len(st.buf) {
				res.AddBatch(st.buf[:])
				st.bufn = 0
			}
			measured++
		}
	}

	st.nextArrival = nextArrival
	st.departed = departed
	st.measured = measured
	st.maxQueue = maxQ
	st.flush()
	res.ObserveQueue(maxQ)
}

// runDefault is the typed loop hand-specialized to the paper's wiring —
// Poisson arrivals, exponential service, SQ(d) dispatch, any speeds. It
// is runTyped's non-work-aware body with the three per-event draws and
// the partial Fisher–Yates pick written inline (no sampler or picker
// call at all), because this one wiring carries the bulk of every sweep
// the repository runs. It must stay draw-for-draw identical to the
// generic loop; TestTypedLoopMatchesInterfaceLoop's "default" and
// "sqd-het" wirings pin it against the interface loop, and
// TestDefaultWorkloadBitIdentical pins it against the pre-workload
// goldens.
//finitelb:hotpath
func runDefault(st *loopState, lamN float64, pk *sqdPick, jobs int64) {
	servers := st.servers
	qlen := st.qlen
	speeds := st.speeds
	fr := st.fr
	trk := st.trk
	res := st.res
	unit := st.unit
	tr := st.tr
	perm := pk.perm
	d := pk.d
	n := len(perm)
	if !st.started {
		st.nextArrival = fr.ExpFloat64() / lamN
		st.started = true
	}
	nextArrival := st.nextArrival
	departed := st.departed
	measured := st.measured
	maxQ := st.maxQueue

	// See runTyped: (min, argmin) stays in registers between tracker
	// updates.
	minC, minI := trk.min()
	for measured < jobs {
		if nextArrival <= minC {
			now := nextArrival
			nextArrival = now + fr.ExpFloat64()/lamN
			// SQ(d): partial Fisher–Yates over d distinct servers, keeping
			// the least loaded with uniform reservoir tie-breaking. The
			// paper's d = 2 is unrolled; draws match the general loop
			// exactly (no tie draw on the first candidate, one IntN(2) on
			// an exact tie).
			var best int
			tiesSeen := 1
			if d == 2 {
				j := fr.IntN(n)
				perm[0], perm[j] = perm[j], perm[0]
				s0 := perm[0]
				j = 1 + fr.IntN(n-1)
				perm[1], perm[j] = perm[j], perm[1]
				s1 := perm[1]
				best = s0
				l0, l1 := qlen[s0], qlen[s1]
				if l1 < l0 || (l1 == l0 && fr.IntN(2) == 0) {
					best = s1
				}
				if l0 == l1 {
					tiesSeen = 2
				}
			} else {
				bestLen, ties := int32(math.MaxInt32), 0
				best = -1
				for k := 0; k < d; k++ {
					j := k + fr.IntN(n-k)
					perm[k], perm[j] = perm[j], perm[k]
					s := perm[k]
					switch l := qlen[s]; {
					case l < bestLen:
						best, bestLen, ties = s, l, 1
					case l == bestLen:
						ties++
						if fr.IntN(ties) == 0 {
							best = s
						}
					}
				}
				tiesSeen = ties
			}
			servers[best].push(now)
			l := qlen[best] + 1
			qlen[best] = l
			if l == 1 {
				x := fr.ExpFloat64()
				if !unit {
					x /= speeds[best]
				}
				trk.update(best, now+x)
				minC, minI = trk.min()
			}
			if int(l) > maxQ {
				maxQ = int(l)
			}
			if tr != nil {
				tr.onArrival(now, best, int(l-1), tiesSeen)
			}
			continue
		}
		sv := &servers[minI]
		now := minC
		arrivedAt := sv.pop()
		l := qlen[minI] - 1
		qlen[minI] = l
		if l > 0 {
			x := fr.ExpFloat64()
			if !unit {
				x /= speeds[minI]
			}
			trk.update(minI, now+x)
		} else {
			trk.update(minI, math.Inf(1))
		}
		if tr != nil {
			tr.onDeparture(now, minI)
		}
		minC, minI = trk.min()
		departed++
		if departed > st.warmup {
			st.buf[st.bufn] = now - arrivedAt
			st.bufn++
			if st.bufn == len(st.buf) {
				res.AddBatch(st.buf[:])
				st.bufn = 0
			}
			measured++
		}
	}

	st.nextArrival = nextArrival
	st.departed = departed
	st.measured = measured
	st.maxQueue = maxQ
	st.flush()
	res.ObserveQueue(maxQ)
}
