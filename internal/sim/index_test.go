package sim

import (
	"testing"

	"finitelb/internal/minindex"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

// The indexed-dispatch tests pin the contract of the minindex wiring: at
// N ≥ minindex.Threshold the JSQ/LWL pickers route through the farm's
// min-trees, which must (a) leave results seed-deterministic and (b) not
// change the policy's law — JSQ-by-index must agree statistically with
// JSQ-by-scan, which SQ(N) provides draw-for-draw at any N.

// TestIndexedSeedDeterminism: replacing the scan picker with the indexed
// one must keep same-seed runs bit-identical — the index consumes rng only
// through the picker's own stream.
func TestIndexedSeedDeterminism(t *testing.T) {
	n := 2 * minindex.Threshold
	p := sqd.Params{N: n, D: 2, Rho: 0.85}
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"jsq-indexed": {Jobs: 30_000, Seed: 11, Policy: workload.JSQ{}},
		"lwl-indexed": {Jobs: 30_000, Seed: 11, Service: pareto, Policy: workload.LWL{}},
	} {
		a, err := Run(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: same seed, different Results:\n%+v\n%+v", name, a, b)
		}
	}
}

// TestIndexedJSQAgreesWithScan: SQ(N) scans a full Fisher–Yates sample and
// is JSQ in law, but it never takes the indexed path (only workload.JSQ
// does). At N above the threshold the two must land on statistically
// indistinguishable mean delays — the index changes the cost of the
// argmin, not its distribution.
func TestIndexedJSQAgreesWithScan(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical agreement needs a long run")
	}
	n := 100
	if n < minindex.Threshold {
		t.Fatalf("test needs N ≥ threshold %d", minindex.Threshold)
	}
	p := sqd.Params{N: n, D: 2, Rho: 0.9}
	indexed, err := Run(p, Options{Jobs: 400_000, Seed: 3, Policy: workload.JSQ{}})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := Run(p, Options{Jobs: 400_000, Seed: 17, Policy: workload.SQD{D: n}})
	if err != nil {
		t.Fatal(err)
	}
	tol := 3 * (indexed.HalfWidth + scan.HalfWidth)
	if diff := indexed.MeanDelay - scan.MeanDelay; diff > tol || -diff > tol {
		t.Errorf("indexed JSQ %v ± %v vs SQ(N) scan %v ± %v: gap beyond tolerance %v",
			indexed.MeanDelay, indexed.HalfWidth, scan.MeanDelay, scan.HalfWidth, tol)
	}
}

// TestIndexedLWLOrdering: the indexed LWL must keep its defining property
// at large N — under heavy-tailed service it sees through the queue-length
// proxy and beats indexed JSQ.
func TestIndexedLWLOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical ordering needs a long run")
	}
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p := sqd.Params{N: 100, D: 2, Rho: 0.85}
	lwl, err := Run(p, Options{Jobs: 400_000, Seed: 23, Service: pareto, Policy: workload.LWL{}})
	if err != nil {
		t.Fatal(err)
	}
	jsq, err := Run(p, Options{Jobs: 400_000, Seed: 23, Service: pareto, Policy: workload.JSQ{}})
	if err != nil {
		t.Fatal(err)
	}
	if !(lwl.MeanDelay < jsq.MeanDelay) {
		t.Errorf("indexed LWL %v not below indexed JSQ %v under heavy-tailed service",
			lwl.MeanDelay, jsq.MeanDelay)
	}
}
