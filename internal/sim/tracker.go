package sim

import "math"

// This file is the completion tracker — the structure the event loop
// consults on every event for "which server finishes next, and when". It
// replaces the former container/heap-based indexed binary heap, which
// paid three interface dispatches (Less, Swap, and the heap.Fix driver)
// per sift level and profiled at ~half of all event time at N ≥ 250.
//
// Four concrete contenders were built and measured (BenchmarkTracker;
// numbers in doc.go "Simulator performance"):
//
//   - linear: a flat id-indexed key array, min by strict scan. Wins only
//     while all completions fit in a couple of cache lines (N ≤ 8).
//   - heapTracker4: a concrete 4-ary indexed min-heap — no interfaces,
//     sift loops inlined, branch-free four-child min, aligned child
//     groups. ~4× the old container/heap cost... but a departure re-keys
//     the *root*, and the sift-down that follows is a chain of loads
//     each dependent on the previous level's comparison — serial memory
//     latency the CPU cannot overlap.
//   - tourTracker: a 4-ary tournament min-tree over fixed-position
//     leaves, internal nodes caching their subtree's (key, id) winner —
//     minindex.Seq's shape, carrying winner ids instead of tie counts
//     (the tracker needs the argmin's identity, not tie uniformity:
//     completion ties have probability zero under continuous service
//     draws, and the first-child rule is deterministic). Keys never
//     move, so an update repairs the fixed leaf→root path whose
//     addresses are pure arithmetic in the leaf index — the loads
//     overlap instead of chaining, and min+argmin is one root read.
//     Beats the heap at every size above the linear cutoff.
//   - calTracker (calendar.go): Brown's calendar queue, exact-min; wins
//     the production slot by exploiting the loops' monotone re-key
//     pattern for amortized O(1) updates. See its own comment.
//
// Shared tricks: keys are the raw IEEE-754 bits of the (nonnegative)
// completion times, so every comparison is an integer op and the
// four-way min is computed branch-free with sign-mask selects — on
// queueing workloads those comparisons are coin flips, and their
// mispredictions were as expensive as the old interface dispatch. The
// root lives at slot 3 so four-node child groups start on 64-byte
// boundaries: one cache line per level.

// tnode packs a completion time (as raw nonnegative-float bits) with its
// server id; the pad keeps the stride a power of two so slot addressing
// stays shift-based.
type tnode struct {
	tb uint64
	id int32
	_  int32
}

// infBits is the key of an idle server and of the padding entries.
const infBits = 0x7FF0000000000000 // math.Float64bits(+Inf)

// rootSlot aligns child groups: children of slot i sit at 4i−8 … 4i−5,
// which for i ≥ 3 is a group starting at a multiple of 4 — one cache
// line at 16 bytes per node. parent(i) = ((i−4) >> 2) + 3.
const rootSlot = 3

// linearCutoff is the farm size at or below which the flat scan beats
// both trees (measured with BenchmarkTracker; see doc.go).
const linearCutoff = 8

// calCutoff is the farm size from which the calendar queue overtakes the
// tournament tree on light-tailed completions (measured with
// BenchmarkTracker and the full-loop BenchmarkSimJobs; see doc.go).
const calCutoff = 512

// tracker is the production completion tracker, mode-selected by
// newTrackerFor: a flat scanned array at N ≤ linearCutoff (preserving
// the old linearTracker's lowest-index tie rule), the tournament tree in
// the mid range and whenever the service law is heavy-tailed (deep keys
// defeat the calendar's window sweep), the calendar queue at large N.
// The mode never changes the simulation's draws — only its cost — so
// the selection heuristic is free to evolve with the benchmarks.
type tracker struct {
	cal   calTracker   // calendar mode when cal.keys != nil
	tour  *tourTracker // tournament mode when non-nil
	nodes []tnode      // linear mode otherwise, id-indexed
	n     int          // real entries
}

// newTracker picks the mode for a light-tailed (or unknown) law.
func newTracker(n int) *tracker { return newTrackerFor(n, false) }

// newTrackerFor picks the tracker mode for a farm of n servers whose
// completion keys are heavy-tailed or not.
func newTrackerFor(n int, heavyTail bool) *tracker {
	trk := &tracker{n: n}
	switch {
	case n <= linearCutoff:
		trk.nodes = make([]tnode, n)
		for i := range trk.nodes {
			trk.nodes[i] = tnode{tb: infBits, id: int32(i)}
		}
	case heavyTail || n < calCutoff:
		trk.tour = newTourTracker(n)
	default:
		trk.cal.init(n)
	}
	return trk
}

// min returns the earliest completion and its server. With every server
// idle (all +Inf) the id is −1 (linear, calendar) or an arbitrary idle
// leaf (tree modes); the event loop never reads the id in that case
// because the next arrival always precedes +Inf.
//finitelb:hotpath
func (k *tracker) min() (float64, int) {
	if k.tour != nil {
		return k.tour.min()
	}
	if k.nodes == nil {
		return math.Float64frombits(k.cal.minK), int(k.cal.minI)
	}
	best, id := uint64(infBits), -1
	for i := 0; i < k.n; i++ {
		if k.nodes[i].tb < best {
			best, id = k.nodes[i].tb, i
		}
	}
	return math.Float64frombits(best), id
}

// update sets server id's pending completion time. t must be nonnegative
// (it is an absolute event time) or +Inf; the bit-pattern key order
// depends on it.
//finitelb:hotpath
func (k *tracker) update(id int, t float64) {
	if k.tour != nil {
		k.tour.update(id, t)
		return
	}
	if k.nodes == nil {
		k.cal.update(id, t)
		return
	}
	k.nodes[id].tb = math.Float64bits(t)
}

// tourTracker is the 4-ary tournament min-tree contender: minindex.Seq's
// shape carrying winner ids instead of tie counts (the tracker needs the
// argmin's identity, not tie uniformity). Keys never move, so an update
// repairs the fixed leaf→root path whose addresses are pure arithmetic
// in the leaf index, and min+argmin is one root read. It beat the heap
// at every size but lost the production slot to the calendar queue,
// whose amortized O(1) needs only the monotone re-key pattern the event
// loops guarantee; the tree remains the strongest general-purpose
// (arbitrary decrease-key) option, and BenchmarkTracker tracks all of
// them.
type tourTracker struct {
	// nodes: the implicit 4-ary tree — internal winners in
	// [rootSlot, leafBase), leaves (padded to a power of four with +Inf)
	// from leafBase, server i's key at leafBase+i.
	nodes    []tnode
	leafBase int
	n        int // real entries
}

// newTourTracker builds the tournament tree.
func newTourTracker(n int) *tourTracker {
	leaves := 1
	for leaves < n {
		leaves *= 4
	}
	internal := (leaves - 1) / 3
	t := &tourTracker{nodes: make([]tnode, rootSlot+internal+leaves), leafBase: rootSlot + internal, n: n}
	for i := range t.nodes {
		// Leaf ids are their server index; padding leaves and internal
		// seeds get ids that are never read (an +Inf winner is never
		// acted on — the next arrival always precedes it).
		t.nodes[i] = tnode{tb: infBits, id: int32(i - t.leafBase)}
	}
	for j := t.leafBase - 1; j >= rootSlot; j-- {
		t.nodes[j] = min4(t.nodes, 4*j-8)
	}
	return t
}

// min4 returns the (key, id) winner of the aligned child group starting
// at slot c, first child winning ties (branches are fine here: it is
// only used during construction; the hot path inlines the branch-free
// version).
//finitelb:hotpath
func min4(nodes []tnode, c int) tnode {
	w := nodes[c]
	for _, ch := range nodes[c+1 : c+4] {
		if ch.tb < w.tb {
			w = ch
		}
	}
	return w
}

//finitelb:hotpath
func (k *tourTracker) min() (float64, int) {
	return math.Float64frombits(k.nodes[rootSlot].tb), int(k.nodes[rootSlot].id)
}

// update sets server id's key and repairs the fixed leaf→root path,
// stopping as soon as an ancestor's (key, id) winner is unchanged.
//finitelb:hotpath
func (k *tourTracker) update(id int, t float64) {
	tb := math.Float64bits(t)
	nodes := k.nodes
	j := k.leafBase + id
	nodes[j].tb = tb
	for j > rootSlot {
		p := ((j - 4) >> 2) + rootSlot
		c := 4*p - 8
		ch := nodes[c : c+4 : c+4]
		t0, t1, t2, t3 := ch[0].tb, ch[1].tb, ch[2].tb, ch[3].tb
		i0, i1, i2, i3 := ch[0].id, ch[1].id, ch[2].id, ch[3].id
		// Pairwise branchless mins: d = all-ones iff right < left (keys
		// fit in 63 bits, so the signed difference's sign is the unsigned
		// comparison); ids ride along under the same masks.
		d := uint64((int64(t1) - int64(t0)) >> 63)
		v01 := t0 ^ ((t0 ^ t1) & d)
		m01 := i0 ^ ((i0 ^ i1) & int32(d))
		d = uint64((int64(t3) - int64(t2)) >> 63)
		v23 := t2 ^ ((t2 ^ t3) & d)
		m23 := i2 ^ ((i2 ^ i3) & int32(d))
		d = uint64((int64(v23) - int64(v01)) >> 63)
		wt := v01 ^ ((v01 ^ v23) & d)
		wi := m01 ^ ((m01 ^ m23) & int32(d))
		if nodes[p].tb == wt && nodes[p].id == wi {
			return
		}
		nodes[p].tb = wt
		nodes[p].id = wi
		j = p
	}
}

// heapTracker4 is the 4-ary indexed min-heap contender, kept concrete
// and fully tested: BenchmarkTracker records why the tournament tree won
// (the heap's sift-down is a serially dependent load chain; the tree's
// repair path is address-computable up front), and the equivalence tests
// hold both to the retired container/heap implementation.
type heapTracker4 struct {
	nodes []tnode // heap slots [rootSlot, rootSlot+n) plus 4 sentinels
	pos   []int32 // server id → heap slot
	n     int
}

func newHeapTracker4(n int) *heapTracker4 {
	trk := &heapTracker4{nodes: make([]tnode, rootSlot+n+4), n: n, pos: make([]int32, n)}
	for i := range trk.nodes {
		trk.nodes[i] = tnode{tb: infBits, id: int32(i - rootSlot)}
	}
	for i := range trk.pos {
		trk.pos[i] = int32(rootSlot + i)
	}
	return trk
}

//finitelb:hotpath
func (k *heapTracker4) min() (float64, int) {
	return math.Float64frombits(k.nodes[rootSlot].tb), int(k.nodes[rootSlot].id)
}

//finitelb:hotpath
func (k *heapTracker4) update(id int, t float64) {
	tb := math.Float64bits(t)
	i := int(k.pos[id])
	k.nodes[i].tb = tb
	if !k.up(i) {
		k.down(i)
	}
}

// up sifts slot i toward the root, moving displaced nodes down in its
// wake (hole insertion, one write per level instead of a swap). It
// reports whether the node moved.
//finitelb:hotpath
func (k *heapTracker4) up(i int) bool {
	nodes := k.nodes
	node := nodes[i]
	start := i
	for i > rootSlot {
		p := ((i - 4) >> 2) + rootSlot
		if nodes[p].tb <= node.tb {
			break
		}
		nodes[i] = nodes[p]
		k.pos[nodes[i].id] = int32(i)
		i = p
	}
	if i == start {
		return false
	}
	nodes[i] = node
	k.pos[node.id] = int32(i)
	return true
}

// down sifts slot i toward the leaves: per level one aligned line of
// four children (the array carries four +Inf sentinels so the scan is
// always full width), a branch-free min, a single continue/stop branch.
//finitelb:hotpath
func (k *heapTracker4) down(i int) {
	nodes := k.nodes
	end := rootSlot + k.n
	node := nodes[i]
	for {
		c := 4*i - 8
		if c >= end {
			break
		}
		ch := nodes[c : c+4 : c+4]
		t0, t1, t2, t3 := ch[0].tb, ch[1].tb, ch[2].tb, ch[3].tb
		d := uint64((int64(t1) - int64(t0)) >> 63)
		v01 := t0 ^ ((t0 ^ t1) & d)
		m01 := c + int(d&1)
		d = uint64((int64(t3) - int64(t2)) >> 63)
		v23 := t2 ^ ((t2 ^ t3) & d)
		m23 := c + 2 + int(d&1)
		d = uint64((int64(v23) - int64(v01)) >> 63)
		mt := v01 ^ ((v01 ^ v23) & d)
		m := m01 ^ ((m01 ^ m23) & int(d))
		if node.tb <= mt {
			break
		}
		nodes[i] = nodes[m]
		k.pos[nodes[i].id] = int32(i)
		i = m
	}
	nodes[i] = node
	k.pos[node.id] = int32(i)
}
