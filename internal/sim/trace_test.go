package sim

import (
	"math"
	"sort"
	"testing"

	"finitelb/internal/sqd"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// TestTraceOffBitIdentical pins the tentpole guarantee: attaching a
// flight recorder never touches the rng draw sequence, so a traced run
// produces exactly the Result of an untraced one — per wiring, on the
// typed loop, the hand-inlined default loop, and the interface
// fallback.
func TestTraceOffBitIdentical(t *testing.T) {
	p := sqd.Params{N: 12, D: 2, Rho: 0.85}
	for name, opts := range map[string]Options{
		"default":   {Jobs: 6000, Seed: 11},
		"jsq":       {Jobs: 6000, Seed: 11, Policy: workload.JSQ{}},
		"lwl":       {Jobs: 6000, Seed: 11, Policy: workload.LWL{}},
		"interface": {Jobs: 6000, Seed: 11, Arrival: wrappedPoisson{}},
	} {
		plain, err := Run(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		traced := opts
		traced.Trace = trace.New(trace.Config{Sample: 16, Seed: opts.Seed})
		got, err := Run(p, traced)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain {
			t.Errorf("%s: tracing changed the run:\ntraced  %+v\nuntraced %+v", name, got, plain)
		}
		if traced.Trace.Seen() == 0 || traced.Trace.Published() == 0 {
			t.Errorf("%s: recorder saw %d jobs, published %d spans", name, traced.Trace.Seen(), traced.Trace.Published())
		}
	}
}

// TestTraceSpansFIFOOracle checks the start/complete rank machinery
// against the one case with a closed-form lifecycle: a single FIFO
// server, where job k starts service at max(arrival_k, done_{k−1}) —
// exactly, in the simulator's own floats.
func TestTraceSpansFIFOOracle(t *testing.T) {
	rec := trace.New(trace.Config{Sample: 1, Cap: 4096, Pending: 4096})
	_, err := Run(sqd.Params{N: 1, D: 1, Rho: 0.8},
		Options{Jobs: 1000, Warmup: 1, Seed: 7, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans(-1)
	if len(spans) < 1000 {
		t.Fatalf("recorded %d spans, want ≥ 1000", len(spans))
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	prevDone := math.Inf(-1)
	for i, sp := range spans {
		if sp.Seq != uint64(i) {
			t.Fatalf("span %d has seq %d: sampled set not contiguous at Sample=1", i, sp.Seq)
		}
		want := sp.Arrival
		if prevDone > want {
			want = prevDone
		}
		if sp.Start != want {
			t.Fatalf("job %d: start %v, want max(arrival %v, prev done %v)", i, sp.Start, sp.Arrival, prevDone)
		}
		if !(sp.Done > sp.Start) {
			t.Fatalf("job %d: done %v ≤ start %v", i, sp.Done, sp.Start)
		}
		prevDone = sp.Done
	}
}

// TestTraceSpansReconcile runs the paper's wiring with every job traced
// and checks span well-formedness plus the acceptance property: stage
// durations telescope to the recorded sojourn, and the aggregated stage
// sums decompose the total delay.
func TestTraceSpansReconcile(t *testing.T) {
	const n = 10
	rec := trace.New(trace.Config{Sample: 1, Cap: 8192, Pending: 4096})
	_, err := Run(sqd.Params{N: n, D: 2, Rho: 0.9},
		Options{Jobs: 4000, Warmup: 100, Seed: 3, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans(-1)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var sojournSum float64
	for _, sp := range spans {
		if sp.Arrival != sp.Picked || sp.Picked != sp.Enqueued {
			t.Fatalf("sim dispatch is instantaneous in model time, got %+v", sp)
		}
		if sp.Server < 0 || sp.Server >= n {
			t.Fatalf("span server %d outside [0,%d)", sp.Server, n)
		}
		if sp.QLen < 0 {
			t.Fatalf("span qlen %d < 0", sp.QLen)
		}
		if sp.Ties < 1 || sp.Ties > 2 {
			t.Fatalf("SQ(2) tie count %d outside {1,2}", sp.Ties)
		}
		if sp.QLen == 0 && sp.Start != sp.Arrival {
			t.Fatalf("empty-queue job doesn't start at arrival: %+v", sp)
		}
		if sp.QLen > 0 && !(sp.Start > sp.Arrival) {
			t.Fatalf("queued job starts at arrival: %+v", sp)
		}
		wait, svc, sojourn := sp.Start-sp.Enqueued, sp.Done-sp.Start, sp.Done-sp.Arrival
		if d := math.Abs((wait + svc) - sojourn); d > 1e-9*(1+sojourn) {
			t.Fatalf("stages don't reconcile: wait %v + svc %v ≠ sojourn %v", wait, svc, sojourn)
		}
		sojournSum += sojourn
	}
	st := rec.Stages()
	if st.PickSum != 0 {
		t.Errorf("sim pick latency should be 0, got sum %v", st.PickSum)
	}
	// Stage sums cover all completed sampled jobs (a superset of the
	// ring's last-K view when more than Cap completed) — compare per-job
	// means instead of totals.
	ringMean := sojournSum / float64(len(spans))
	stageMean := (st.PickSum + st.WaitSum + st.ServiceSum) / float64(st.N)
	if math.Abs(ringMean-stageMean) > 0.25*ringMean {
		t.Errorf("stage-sum mean %v far from ring span mean %v", stageMean, ringMean)
	}
	if st.Pick.N() != st.N || st.Wait.N() != st.N || st.Service.N() != st.N {
		t.Errorf("stage sketch Ns diverge: %d/%d/%d vs %d", st.Pick.N(), st.Wait.N(), st.Service.N(), st.N)
	}
}

// TestTraceSeedDeterminism: same seed, same sampling rate ⇒ identical
// spans, draw for draw and stamp for stamp.
func TestTraceSeedDeterminism(t *testing.T) {
	run := func() []trace.Span {
		rec := trace.New(trace.Config{Sample: 64, Cap: 4096, Seed: 9})
		_, err := Run(sqd.Params{N: 20, D: 2, Rho: 0.9},
			Options{Jobs: 8000, Seed: 9, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		return rec.Spans(-1)
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("span counts differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestAllocFreeEventPathTraced extends the allocation-regression guard
// to trace-on runs: with a recorder attached and sampling 1-in-16, the
// typed event paths must still run allocation-free — the recorder's
// ring, pending pool, and sketches are all preallocated.
func TestAllocFreeEventPathTraced(t *testing.T) {
	for name, opts := range map[string]Options{
		"default":     {Seed: 3},
		"jsq-indexed": {Seed: 3, Policy: workload.JSQ{}},
	} {
		p := sqd.Params{N: 100, D: 2, Rho: 0.9}
		opts.Jobs = 1 << 30 // never reached; chunks drive the stream
		opts.BatchSize = 1 << 40
		opts.setDefaults()
		w, err := resolve(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr := newTypedRunner(p, w, 0, newSimStream(opts.BatchSize, opts.Tail), opts.Seed)
		if tr == nil {
			t.Fatalf("%s: wiring did not resolve onto the typed loop", name)
		}
		rec := trace.New(trace.Config{Sample: 16, Seed: opts.Seed})
		tr.st.tr = newSimTracer(rec, p.N)
		jobs := int64(50_000)
		tr.run(jobs)
		const chunk = 10_000
		avg := testing.AllocsPerRun(5, func() {
			jobs += chunk
			tr.run(jobs)
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per %d-job chunk with tracing on, want 0", name, avg, chunk)
		}
		if rec.Published() == 0 {
			t.Errorf("%s: tracer published no spans", name)
		}
	}
}
