package sim

import (
	"math"
	"testing"

	"finitelb/internal/asym"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

// TestDefaultWorkloadBitIdentical pins the refactor's anchor: the default
// workload (Poisson arrivals, exponential service, SQ(d), unit speeds,
// R = 1) must reproduce the pre-workload simulator bit for bit. The
// expected Results were captured from the serial simulator at commit
// 0e55776, immediately before the event loop was rewired through
// internal/workload.
func TestDefaultWorkloadBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		p    sqd.Params
		jobs int64
		seed uint64
		want Result
	}{
		{sqd.Params{N: 4, D: 2, Rho: 0.7}, 30000, 9, Result{MeanDelay: 1.850486885419509, MeanWait: 0.8504868854195089, HalfWidth: 0.07657645044379735, Jobs: 30000, MaxQueue: 9, P50: 1.355672514619883, P95: 5.2984, P99: 7.866666666666666}},
		{sqd.Params{N: 1, D: 1, Rho: 0.8}, 30000, 3, Result{MeanDelay: 4.827190951294011, MeanWait: 3.8271909512940114, HalfWidth: 0.39756853579283563, Jobs: 30000, MaxQueue: 34, P50: 3.406265060240964, P95: 14.604000000000001, P99: 21.78}},
		{sqd.Params{N: 32, D: 3, Rho: 0.9}, 30000, 5, Result{MeanDelay: 2.1811708885589995, MeanWait: 1.1811708885589995, HalfWidth: 0.06962070271109749, Jobs: 30000, MaxQueue: 7, P50: 1.770748299319728, P95: 5.586666666666666, P99: 7.937142857142857}},
	} {
		// Three routes to the same bits: everything defaulted, the default
		// pieces spelled out explicitly, and an explicit all-ones speed
		// vector. All three now resolve onto the specialized default loop
		// (the speed vector historically forced the interface loop, which
		// is pinned to the same draws by TestTypedLoopMatchesInterfaceLoop
		// and TestExoticWiringFallsBack); the third route keeps the
		// division-by-speed arm on the golden trajectory. TailHistogram
		// pins the quantile estimator the goldens were captured with (the
		// sketch default changes only the P* fields, never the draws — the
		// sketch-route check below proves that).
		explicit := Options{
			Jobs: tc.jobs, Seed: tc.seed, Tail: TailHistogram,
			Arrival: workload.Poisson{},
			Service: workload.Exponential{},
			Policy:  workload.SQD{D: tc.p.D},
			Speeds:  nil,
		}
		unitSpeeds := Options{Jobs: tc.jobs, Seed: tc.seed, Tail: TailHistogram, Speeds: make([]float64, tc.p.N)}
		for i := range unitSpeeds.Speeds {
			unitSpeeds.Speeds[i] = 1
		}
		for name, opts := range map[string]Options{
			"defaulted":       {Jobs: tc.jobs, Seed: tc.seed, Tail: TailHistogram},
			"explicit":        explicit,
			"explicit-speeds": unitSpeeds,
		} {
			got, err := Run(tc.p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("N=%d d=%d seed=%d (%s): result drifted from pre-workload simulator:\ngot  %+v\nwant %+v",
					tc.p.N, tc.p.D, tc.seed, name, got, tc.want)
			}
		}

		// The default (sketch) estimator must ride the exact same draw
		// trajectory: every non-quantile field bit-equal to the golden, and
		// the sketch quantiles within α of the histogram's 0.02-resolution
		// estimates.
		sk, err := Run(tc.p, Options{Jobs: tc.jobs, Seed: tc.seed})
		if err != nil {
			t.Fatal(err)
		}
		gotDraws, wantDraws := sk, tc.want
		gotDraws.P50, gotDraws.P95, gotDraws.P99 = 0, 0, 0
		wantDraws.P50, wantDraws.P95, wantDraws.P99 = 0, 0, 0
		if gotDraws != wantDraws {
			t.Errorf("N=%d d=%d seed=%d (sketch): draws drifted from golden:\ngot  %+v\nwant %+v",
				tc.p.N, tc.p.D, tc.seed, gotDraws, wantDraws)
		}
		for _, pair := range [][2]float64{{sk.P50, tc.want.P50}, {sk.P95, tc.want.P95}, {sk.P99, tc.want.P99}} {
			if math.Abs(pair[0]-pair[1]) > 0.011*pair[1]+0.021 { // α rel + histogram bin width
				t.Errorf("N=%d d=%d seed=%d: sketch quantile %v too far from histogram golden %v",
					tc.p.N, tc.p.D, tc.seed, pair[0], pair[1])
			}
		}
	}
}

// TestMG1PollaczekKhinchine checks every service law against the M/G/1
// oracle at N = 1, d = 1: mean sojourn = 1 + ρ·E[S²]/(2(1−ρ)).
func TestMG1PollaczekKhinchine(t *testing.T) {
	const rho = 0.7
	pareto, err := workload.NewBoundedPareto(2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range []workload.Service{
		workload.DeterministicService{},
		workload.ErlangService{K: 4},
		workload.Exponential{},
		pareto,
	} {
		res, err := Run(sqd.Params{N: 1, D: 1, Rho: rho},
			Options{Jobs: 400_000, Seed: 11, Service: svc})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + rho*svc.Moment2()/(2*(1-rho))
		if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.02*want {
			t.Errorf("M/G/1 %s: delay %v, want %v (CI ±%v)", svc, res.MeanDelay, want, res.HalfWidth)
		}
	}
}

// TestGIM1SigmaOracle checks every arrival process against the GI/M/1
// oracle at N = 1, d = 1: mean sojourn = 1/(1−σ) with σ the root of
// Theorem 2's embedded-chain equation — the same machinery the paper's
// improved lower bound rests on (internal/asym).
func TestGIM1SigmaOracle(t *testing.T) {
	const rho = 0.75
	he := workload.HyperExp{CV2: 4}
	w, l1, l2 := he.Phases(rho)
	for _, tc := range []struct {
		arrival workload.Arrival
		betas   asym.BetaFunc
	}{
		{workload.DeterministicArrivals{}, asym.DeterministicBetas(rho, 1)},
		{workload.ErlangArrivals{K: 3}, asym.ErlangBetas(3, rho, 1)},
		{workload.Poisson{}, asym.PoissonBetas(rho, 1)},
		{he, asym.HyperExpBetas(w, l1, l2, 1)},
	} {
		sigma, err := asym.SolveSigma(tc.betas, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sqd.Params{N: 1, D: 1, Rho: rho},
			Options{Jobs: 400_000, Seed: 19, Arrival: tc.arrival})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - sigma)
		if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.03*want {
			t.Errorf("GI/M/1 %s: delay %v, want %v (σ=%v, CI ±%v)",
				tc.arrival, res.MeanDelay, want, sigma, res.HalfWidth)
		}
	}
}

// TestPolicyOrdering asserts the classical dominance chain at equal load —
// JSQ (full information) beats SQ(2) (two samples) beats uniform random
// (no information) — as a property, not a golden number. This is the
// correctness oracle for policies with no closed form.
func TestPolicyOrdering(t *testing.T) {
	p := sqd.Params{N: 8, D: 2, Rho: 0.85}
	opts := Options{Jobs: 300_000, Seed: 29}
	run := func(pol workload.Policy) Result {
		t.Helper()
		o := opts
		o.Policy = pol
		res, err := Run(p, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	jsq := run(workload.JSQ{})
	sq2 := run(workload.SQD{D: 2})
	jiq := run(workload.JIQ{})
	rnd := run(workload.Random{})

	if !(jsq.MeanDelay+jsq.HalfWidth < sq2.MeanDelay-sq2.HalfWidth) {
		t.Errorf("JSQ %v not below SQ(2) %v", jsq.MeanDelay, sq2.MeanDelay)
	}
	if !(sq2.MeanDelay+sq2.HalfWidth < rnd.MeanDelay-rnd.HalfWidth) {
		t.Errorf("SQ(2) %v not below random %v", sq2.MeanDelay, rnd.MeanDelay)
	}
	if !(jiq.MeanDelay+jiq.HalfWidth < rnd.MeanDelay-rnd.HalfWidth) {
		t.Errorf("JIQ %v not below random %v", jiq.MeanDelay, rnd.MeanDelay)
	}
	// Random at N servers is N independent M/M/1 queues: one more oracle.
	want := 1 / (1 - p.Rho)
	if math.Abs(rnd.MeanDelay-want) > 5*rnd.HalfWidth+0.02*want {
		t.Errorf("random: delay %v, want M/M/1 %v", rnd.MeanDelay, want)
	}
}

// TestLWLSingleServerMG1: at N = 1 every non-idling policy is the same
// M/G/1 queue, so LWL — which exercises the work-tracking event loop, with
// requirements drawn at arrival instead of service start — must still
// reproduce Pollaczek–Khinchine for each service law. This pins the
// work-aware bookkeeping (pending sums, in-service remainders) to an
// analytic oracle.
func TestLWLSingleServerMG1(t *testing.T) {
	const rho = 0.7
	pareto, err := workload.NewBoundedPareto(2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range []workload.Service{
		workload.DeterministicService{},
		workload.Exponential{},
		pareto,
	} {
		res, err := Run(sqd.Params{N: 1, D: 1, Rho: rho},
			Options{Jobs: 400_000, Seed: 13, Service: svc, Policy: workload.LWL{}})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + rho*svc.Moment2()/(2*(1-rho))
		if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.02*want {
			t.Errorf("LWL M/G/1 %s: delay %v, want %v (CI ±%v)", svc, res.MeanDelay, want, res.HalfWidth)
		}
	}
}

// TestLWLOrdering: least-work-left sees actual job sizes where JSQ sees
// only queue lengths, so under high-variance service — where a short queue
// can hide a huge job and the length proxy is blind — LWL must beat JSQ,
// which must beat SQ(2). Under exponential service the proxy is good and
// LWL may only tie JSQ, so the strict separation is asserted on the
// heavy-tailed workload.
func TestLWLOrdering(t *testing.T) {
	p := sqd.Params{N: 8, D: 2, Rho: 0.8}
	pareto, err := workload.NewBoundedPareto(1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol workload.Policy) Result {
		t.Helper()
		res, err := Run(p, Options{Jobs: 1_200_000, Seed: 43, Service: pareto, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lwl := run(workload.LWL{})
	jsq := run(workload.JSQ{})
	sq2 := run(workload.SQD{D: 2})

	if !(lwl.MeanDelay+lwl.HalfWidth < jsq.MeanDelay-jsq.HalfWidth) {
		t.Errorf("LWL %v ± %v not below JSQ %v ± %v under heavy-tailed service",
			lwl.MeanDelay, lwl.HalfWidth, jsq.MeanDelay, jsq.HalfWidth)
	}
	if !(jsq.MeanDelay+jsq.HalfWidth < sq2.MeanDelay-sq2.HalfWidth) {
		t.Errorf("JSQ %v not below SQ(2) %v under heavy-tailed service", jsq.MeanDelay, sq2.MeanDelay)
	}
}

// TestLWLHeterogeneousSpeeds: Work is time-to-drain, not raw work, so on
// a fleet with very unequal speeds LWL must exploit the fast server where
// queue-length-based JSQ treats both as equal. A 4×-vs-1× pair at
// moderate load separates the two cleanly; this pins the speed scaling in
// the WorkQueues view (a raw-work comparison routes jobs to the *slower*
// exit and lands on the wrong side).
func TestLWLHeterogeneousSpeeds(t *testing.T) {
	p := sqd.Params{N: 2, D: 2, Rho: 0.7}
	run := func(pol workload.Policy) Result {
		t.Helper()
		res, err := Run(p, Options{Jobs: 400_000, Seed: 47, Speeds: []float64{4, 1}, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lwl := run(workload.LWL{})
	jsq := run(workload.JSQ{})
	if !(lwl.MeanDelay+lwl.HalfWidth < jsq.MeanDelay-jsq.HalfWidth) {
		t.Errorf("heterogeneous LWL %v ± %v not below JSQ %v ± %v",
			lwl.MeanDelay, lwl.HalfWidth, jsq.MeanDelay, jsq.HalfWidth)
	}
}

// TestHeterogeneousSpeeds: a single server at speed s is an M/M/1 queue
// with rates (λ, μ) scaled by s, so its sojourn is 1/(s(1−ρ)); and a
// homogeneous fleet declared at speed 2 must behave like the unit fleet on
// a clock running twice as fast.
func TestHeterogeneousSpeeds(t *testing.T) {
	const rho = 0.8
	fast, err := Run(sqd.Params{N: 1, D: 1, Rho: rho},
		Options{Jobs: 300_000, Seed: 31, Speeds: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (2 * (1 - rho))
	if math.Abs(fast.MeanDelay-want) > 5*fast.HalfWidth+0.02*want {
		t.Errorf("speed-2 M/M/1: delay %v, want %v", fast.MeanDelay, want)
	}

	// A mixed fleet must not break conservation: with speeds (2, 2) and
	// SQ(2) = JSQ at N = 2 the system is an M/M/2-like farm twice as fast
	// as the unit one; its delay must be half the unit fleet's within CI.
	unit, err := Run(sqd.Params{N: 2, D: 2, Rho: rho}, Options{Jobs: 300_000, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Run(sqd.Params{N: 2, D: 2, Rho: rho},
		Options{Jobs: 300_000, Seed: 37, Speeds: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(2*twice.MeanDelay-unit.MeanDelay) > 5*(2*twice.HalfWidth+unit.HalfWidth) {
		t.Errorf("speed-2 fleet delay %v, want half of unit fleet %v", twice.MeanDelay, unit.MeanDelay)
	}
}

// TestRoundRobinDeterministicArrivals: round-robin splits a deterministic
// stream over N servers into N deterministic streams, so each server is a
// D/M/1 queue whose sojourn 1/(1−σ) comes from the σ-root with
// interarrival N/λ_total — i.e. per-server rate ρ.
func TestRoundRobinDeterministicArrivals(t *testing.T) {
	const rho = 0.8
	sigma, err := asym.SolveSigma(asym.DeterministicBetas(rho, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sqd.Params{N: 4, D: 1, Rho: rho}, Options{
		Jobs: 300_000, Seed: 41,
		Arrival: workload.DeterministicArrivals{},
		Policy:  workload.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - sigma)
	if math.Abs(res.MeanDelay-want) > 5*res.HalfWidth+0.03*want {
		t.Errorf("RR + deterministic arrivals: delay %v, want D/M/1 %v (σ=%v)",
			res.MeanDelay, want, sigma)
	}
}

// TestSeedDeterminismAllWorkloads runs every workload axis twice with the
// same seed and diffs the full Result structs — the seed-determinism
// guarantee must survive the pluggable event loop, including stateful
// pickers and multi-replication merges.
func TestSeedDeterminismAllWorkloads(t *testing.T) {
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p := sqd.Params{N: 6, D: 2, Rho: 0.8}
	for name, opts := range map[string]Options{
		"default":      {Jobs: 20_000, Seed: 7},
		"bursty-jiq":   {Jobs: 20_000, Seed: 7, Arrival: workload.HyperExp{CV2: 9}, Policy: workload.JIQ{}},
		"det-rr":       {Jobs: 20_000, Seed: 7, Arrival: workload.DeterministicArrivals{}, Policy: workload.RoundRobin{}},
		"erlang-jsq":   {Jobs: 20_000, Seed: 7, Arrival: workload.ErlangArrivals{K: 2}, Service: workload.ErlangService{K: 3}, Policy: workload.JSQ{}},
		"pareto-het":   {Jobs: 20_000, Seed: 7, Service: pareto, Speeds: []float64{1, 1, 2, 2, 4, 4}},
		"pareto-lwl":   {Jobs: 20_000, Seed: 7, Service: pareto, Policy: workload.LWL{}},
		"replications": {Jobs: 20_000, Seed: 7, Replications: 3, Policy: workload.Random{}},
	} {
		a, err := Run(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: same seed, different Results:\n%+v\n%+v", name, a, b)
		}
	}
}

// TestWorkloadValidation: configuration errors must surface from Run, not
// the hot path.
func TestWorkloadValidation(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	for name, opts := range map[string]Options{
		"sqd d>n":        {Policy: workload.SQD{D: 9}},
		"erlang k=0":     {Service: workload.ErlangService{}},
		"bare pareto":    {Service: workload.BoundedPareto{Alpha: 2, H: 10}},
		"short speeds":   {Speeds: []float64{1, 1}},
		"negative speed": {Speeds: []float64{1, -1, 1, 1}},
		"bad hyperexp":   {Arrival: workload.HyperExp{CV2: 0.5}},
	} {
		o := opts
		o.Jobs = 10
		if _, err := Run(p, o); err == nil {
			t.Errorf("%s: Run accepted invalid workload", name)
		}
	}
}
