package sim

import "finitelb/internal/trace"

// simTracer adapts the event loops to the flight recorder
// (internal/trace). In model time the dispatch pipeline is
// instantaneous — a job arrives, is picked, and lands in its queue at
// the same instant — so Arrival = Picked = Enqueued = the arrival
// stamp, and the interesting decomposition is queue wait (service
// start − arrival) vs service. Service starts are not events of their
// own in the simulator: job k at server s enters service exactly at
// the departure that makes it the head of s's queue, so the adapter
// counts pushes and pops per server and matches sampled jobs to the
// departure ranks that start and complete them.
//
// The adapter calls Recorder.Start for every arrival (sampled or not),
// so Span.Seq is the job's global arrival rank; everything else runs
// only for sampled jobs. Nothing here consumes a draw from the
// simulation rng — the trace-off and trace-on runs are draw-for-draw
// identical, which TestTraceOffBitIdentical pins.
type simTracer struct {
	rec    *trace.Recorder
	pushed []uint64 // jobs ever enqueued at server i (1-based ranks)
	popped []uint64 // departures at server i
	ents   []traceEnt
	n      int
}

// traceEnt is one sampled in-flight job: its handle, its server, and
// its enqueue rank there (the k-th job ever pushed at that server
// completes at the server's k-th departure, and enters service at the
// (k−1)-th).
type traceEnt struct {
	h      trace.Handle
	server int32
	k      uint64
}

func newSimTracer(rec *trace.Recorder, n int) *simTracer {
	return &simTracer{
		rec:    rec,
		pushed: make([]uint64, n),
		popped: make([]uint64, n),
		ents:   make([]traceEnt, rec.PendingCap()),
	}
}

// onArrival books one arrival routed to server with qlenBefore jobs
// already there (ties as reported by the picker, −1 if it doesn't).
//
//finitelb:hotpath
func (t *simTracer) onArrival(now float64, server, qlenBefore, ties int) {
	k := t.pushed[server] + 1
	t.pushed[server] = k
	h := t.rec.Start(now)
	if h < 0 {
		return
	}
	t.rec.Picked(h, now, server, qlenBefore, ties)
	t.rec.Enqueued(h, now)
	if qlenBefore == 0 {
		// Empty queue: service begins at the arrival instant.
		t.rec.Started(h, now)
	}
	if t.n == len(t.ents) {
		t.rec.Abort(h)
		return
	}
	t.ents[t.n] = traceEnt{h: h, server: int32(server), k: k}
	t.n++
}

// onDeparture books server's next departure at time now: the sampled
// job (if any) at that departure rank completes, and the sampled job
// (if any) at the following rank enters service.
//
//finitelb:hotpath
func (t *simTracer) onDeparture(now float64, server int) {
	c := t.popped[server] + 1
	t.popped[server] = c
	s32 := int32(server)
	for i := 0; i < t.n; i++ {
		e := t.ents[i]
		if e.server != s32 {
			continue
		}
		if e.k == c {
			t.rec.Done(e.h, now)
			t.n--
			t.ents[i] = t.ents[t.n]
			i--
		} else if e.k == c+1 {
			t.rec.Started(e.h, now)
		}
	}
}
