package sim

import (
	"math/rand/v2"

	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// CTMCOptions configures a trajectory simulation of an sqd model.
type CTMCOptions struct {
	Events int64  // simulated jumps (default 1e6)
	Warmup int64  // discarded leading jumps (default Events/10)
	Seed   uint64 // RNG seed (default 1)
}

func (o *CTMCOptions) setDefaults() {
	if o.Events <= 0 {
		o.Events = 1_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Events / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// CTMCResult holds time-average metrics of a model trajectory.
type CTMCResult struct {
	MeanJobs    float64 // time-average of #m
	MeanWaiting float64 // time-average of Σ max(m_i−1, 0)
	MeanDelay   float64 // MeanWaiting/(λN) + 1, comparable to qbd.Solution
}

// RunCTMC simulates the jump chain of any sqd model (including the bound
// models, whose redirected transitions it follows faithfully) and returns
// time-averaged state functionals. This provides an independent check of
// the matrix-geometric stationary solutions: simulating the *lower-bound
// model* must reproduce the analytic lower bound, not the exact SQ(d)
// value.
func RunCTMC(model sqd.Model, start statespace.State, opts CTMCOptions) CTMCResult {
	opts.setDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0xda3e39cb))

	state := start.Clone()
	var totalTime, jobsArea, waitArea float64
	for step := int64(0); step < opts.Events+opts.Warmup; step++ {
		trs := sqd.Merged(model.Transitions(state))
		var rate float64
		for _, tr := range trs {
			rate += tr.Rate
		}
		dwell := rng.ExpFloat64() / rate
		if step >= opts.Warmup {
			totalTime += dwell
			jobsArea += dwell * float64(state.Total())
			waitArea += dwell * float64(state.WaitingJobs())
		}
		// Pick the next state proportionally to rate.
		u := rng.Float64() * rate
		next := trs[len(trs)-1].To
		for _, tr := range trs {
			if u < tr.Rate {
				next = tr.To
				break
			}
			u -= tr.Rate
		}
		state = next
	}
	p := model.Params()
	res := CTMCResult{
		MeanJobs:    jobsArea / totalTime,
		MeanWaiting: waitArea / totalTime,
	}
	res.MeanDelay = res.MeanWaiting/p.TotalArrivalRate() + 1
	return res
}
