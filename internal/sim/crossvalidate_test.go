package sim

import (
	"math"
	"testing"

	"finitelb/internal/qbd"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// TestCTMCTrajectoryMatchesQBD checks the pipeline end to end: running
// the *bound models themselves* as jump chains must reproduce the
// matrix-geometric stationary delays — an end-to-end check that the QBD
// assembly, the logarithmic reduction, and the boundary solve describe the
// same processes the transition functions define.
func TestCTMCTrajectoryMatchesQBD(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory cross-validation needs long runs")
	}
	for _, tc := range []struct {
		name  string
		model interface {
			sqd.Model
			Bound() sqd.BoundParams
		}
	}{
		{"lower N=3 T=2", &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: 2}}},
		{"upper N=3 T=2", &sqd.UpperBound{P: sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.6}, T: 2}}},
		{"lower N=4 JSQ", &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 4, D: 4, Rho: 0.75}, T: 2}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := qbd.Solve(tc.model, qbd.Options{})
			if err != nil {
				t.Fatal(err)
			}
			start := make(statespace.State, tc.model.Params().N)
			traj := RunCTMC(tc.model, start, CTMCOptions{Events: 4_000_000, Seed: 17})
			if rel := math.Abs(traj.MeanDelay-sol.MeanDelay) / sol.MeanDelay; rel > 0.03 {
				t.Errorf("trajectory delay %v vs matrix-geometric %v (%.1f%% off)",
					traj.MeanDelay, sol.MeanDelay, rel*100)
			}
			if rel := math.Abs(traj.MeanJobs-sol.MeanJobs) / sol.MeanJobs; rel > 0.03 {
				t.Errorf("trajectory jobs %v vs matrix-geometric %v", traj.MeanJobs, sol.MeanJobs)
			}
		})
	}
}
