package sim

import (
	"math"
	"testing"

	"finitelb/internal/qbd"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// TestSimWithinQBDBounds cross-validates the discrete-event simulator with
// its default workload (Poisson/exponential/SQ(d) — the paper's system)
// against the analytic QBD delay bounds over a small (N, d, ρ, T) grid:
// the simulated mean must land inside [lower, upper] up to simulation
// noise. This is the anchor that keeps the pluggable workload refactor
// honest — any drift in the default event loop lands outside the bracket.
func TestSimWithinQBDBounds(t *testing.T) {
	grid := []struct {
		n, d, tt int
		rho      float64
	}{
		{3, 2, 3, 0.70},
		{3, 2, 4, 0.85},
		{4, 2, 3, 0.75},
		{4, 4, 3, 0.80}, // JSQ corner: d = N
		{5, 3, 3, 0.80},
	}
	jobs := int64(400_000)
	if testing.Short() {
		grid = grid[:2]
		jobs = 150_000
	}
	for _, c := range grid {
		bp := sqd.BoundParams{Params: sqd.Params{N: c.n, D: c.d, Rho: c.rho}, T: c.tt}
		lo, err := qbd.Solve(&sqd.LowerBound{P: bp}, qbd.Options{ImprovedLB: true})
		if err != nil {
			t.Fatalf("N=%d d=%d ρ=%g T=%d: lower bound: %v", c.n, c.d, c.rho, c.tt, err)
		}
		hi, err := qbd.Solve(&sqd.UpperBound{P: bp}, qbd.Options{})
		if err != nil {
			t.Fatalf("N=%d d=%d ρ=%g T=%d: upper bound: %v", c.n, c.d, c.rho, c.tt, err)
		}
		res, err := Run(bp.Params, Options{Jobs: jobs, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		slack := 5 * res.HalfWidth
		if res.MeanDelay < lo.MeanDelay-slack || res.MeanDelay > hi.MeanDelay+slack {
			t.Errorf("N=%d d=%d ρ=%g T=%d: simulated delay %v outside QBD bounds [%v, %v] (CI ±%v)",
				c.n, c.d, c.rho, c.tt, res.MeanDelay, lo.MeanDelay, hi.MeanDelay, res.HalfWidth)
		}
	}
}

// TestCTMCTrajectoryMatchesQBD checks the pipeline end to end: running
// the *bound models themselves* as jump chains must reproduce the
// matrix-geometric stationary delays — an end-to-end check that the QBD
// assembly, the logarithmic reduction, and the boundary solve describe the
// same processes the transition functions define.
func TestCTMCTrajectoryMatchesQBD(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory cross-validation needs long runs")
	}
	for _, tc := range []struct {
		name  string
		model interface {
			sqd.Model
			Bound() sqd.BoundParams
		}
	}{
		{"lower N=3 T=2", &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: 2}}},
		{"upper N=3 T=2", &sqd.UpperBound{P: sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.6}, T: 2}}},
		{"lower N=4 JSQ", &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 4, D: 4, Rho: 0.75}, T: 2}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := qbd.Solve(tc.model, qbd.Options{})
			if err != nil {
				t.Fatal(err)
			}
			start := make(statespace.State, tc.model.Params().N)
			traj := RunCTMC(tc.model, start, CTMCOptions{Events: 4_000_000, Seed: 17})
			if rel := math.Abs(traj.MeanDelay-sol.MeanDelay) / sol.MeanDelay; rel > 0.03 {
				t.Errorf("trajectory delay %v vs matrix-geometric %v (%.1f%% off)",
					traj.MeanDelay, sol.MeanDelay, rel*100)
			}
			if rel := math.Abs(traj.MeanJobs-sol.MeanJobs) / sol.MeanJobs; rel > 0.03 {
				t.Errorf("trajectory jobs %v vs matrix-geometric %v", traj.MeanJobs, sol.MeanJobs)
			}
		})
	}
}
