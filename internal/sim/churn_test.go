package sim

import (
	"strings"
	"testing"

	"finitelb/internal/sqd"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

func churnOf(events ...workload.ChurnEvent) *workload.Churn {
	return &workload.Churn{Events: events}
}

func TestChurnValidation(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.5}
	for _, c := range []struct {
		name string
		ch   *workload.Churn
		want string
	}{
		{"unresolved server", churnOf(workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1, Server: -1}), "no server"},
		{"out of range", churnOf(workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1, Server: 4}), "targets server"},
		{"stall is live-only", churnOf(workload.ChurnEvent{Kind: workload.ChurnStall, T: 1, Server: 0, Dur: 5}), "live-only"},
		{"pause is live-only", churnOf(workload.ChurnEvent{Kind: workload.ChurnPause, T: 1, Server: -1}), "live-only"},
		{"double down", churnOf(
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1, Server: 0},
			workload.ChurnEvent{Kind: workload.ChurnLeave, T: 2, Server: 0}), "already down"},
		{"restore while up", churnOf(workload.ChurnEvent{Kind: workload.ChurnRestore, T: 1, Server: 2}), "already up"},
		{"all down", churnOf(
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1, Server: 0},
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 2, Server: 1},
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 3, Server: 2},
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 4, Server: 3}), "last live server"},
		{"out of order", churnOf(
			workload.ChurnEvent{Kind: workload.ChurnCrash, T: 5, Server: 0},
			workload.ChurnEvent{Kind: workload.ChurnRestore, T: 2, Server: 0}), "time order"},
	} {
		_, err := Run(p, Options{Jobs: 10, Churn: c.ch})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
	// Churn and tracing are mutually exclusive.
	_, err := Run(p, Options{Jobs: 10,
		Churn: churnOf(workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1, Server: 0}),
		Trace: trace.New(trace.Config{Sample: 1, Cap: 64})})
	if err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Errorf("churn+trace: err = %v, want tracing rejection", err)
	}
}

func TestChurnDeterminism(t *testing.T) {
	p := sqd.Params{N: 4, D: 2, Rho: 0.7}
	opts := Options{Jobs: 30_000, Seed: 42, Churn: churnOf(
		workload.ChurnEvent{Kind: workload.ChurnCrash, T: 500, Server: 1},
		workload.ChurnEvent{Kind: workload.ChurnSlow, T: 800, Server: 2, Factor: 3},
		workload.ChurnEvent{Kind: workload.ChurnRestore, T: 2000, Server: 1},
		workload.ChurnEvent{Kind: workload.ChurnSlow, T: 2500, Server: 2, Factor: 1},
		workload.ChurnEvent{Kind: workload.ChurnLeave, T: 4000, Server: 0},
	)}
	a, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, same schedule, different results:\n%+v\n%+v", a, b)
	}
	c, err := Run(p, Options{Jobs: opts.Jobs, Seed: 43, Churn: opts.Churn})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

// TestChurnNeverFiringBitIdentical pins that configuring churn costs
// nothing but the loop selection: an event beyond the measured horizon
// forces the interface loop yet never fires, and the result must be
// bit-equal to the default typed-loop run (the two loops are pinned
// draw-identical by TestTypedLoopMatchesInterfaceLoop).
func TestChurnNeverFiringBitIdentical(t *testing.T) {
	p := sqd.Params{N: 6, D: 2, Rho: 0.8}
	base, err := Run(p, Options{Jobs: 20_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	churned, err := Run(p, Options{Jobs: 20_000, Seed: 9, Churn: churnOf(
		workload.ChurnEvent{Kind: workload.ChurnCrash, T: 1e18, Server: 0})})
	if err != nil {
		t.Fatal(err)
	}
	if base != churned {
		t.Errorf("never-firing churn changed the run:\nbase    %+v\nchurned %+v", base, churned)
	}
}

// TestChurnCrashMatchesDegradedFarm is the simulator twin of the live
// chaos calibration: crash k of N at t=0 with the offered rate fixed at
// ρ·N, and the run must reproduce the (N−k, ρ·N/(N−k)) system — same
// aggregate rate, SQ(d) over the survivors — within statistical error.
func TestChurnCrashMatchesDegradedFarm(t *testing.T) {
	const jobs = 200_000
	got, err := Run(sqd.Params{N: 4, D: 2, Rho: 0.45}, Options{Jobs: jobs, Seed: 7, Churn: churnOf(
		workload.ChurnEvent{Kind: workload.ChurnCrash, T: 0, Server: 1},
		workload.ChurnEvent{Kind: workload.ChurnCrash, T: 0, Server: 3},
	)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(sqd.Params{N: 2, D: 2, Rho: 0.9}, Options{Jobs: jobs, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tol := 6*(got.HalfWidth+want.HalfWidth) + 0.1
	t.Logf("crashed N=4→2: %.4f ± %.4f; direct N=2 ρ=0.9: %.4f ± %.4f (tol %.3f)",
		got.MeanDelay, got.HalfWidth, want.MeanDelay, want.HalfWidth, tol)
	if d := got.MeanDelay - want.MeanDelay; d < -tol || d > tol {
		t.Errorf("crashed-farm mean %.4f vs degraded-farm mean %.4f: outside tolerance %.3f",
			got.MeanDelay, want.MeanDelay, tol)
	}
}

// TestChurnSlowRaisesDelay sanity-checks the slow injector: degrading
// one of two servers 4× must visibly raise the mean sojourn.
func TestChurnSlowRaisesDelay(t *testing.T) {
	p := sqd.Params{N: 2, D: 2, Rho: 0.5}
	base, err := Run(p, Options{Jobs: 60_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := Run(p, Options{Jobs: 60_000, Seed: 3, Churn: churnOf(
		workload.ChurnEvent{Kind: workload.ChurnSlow, T: 0, Server: 0, Factor: 4})})
	if err != nil {
		t.Fatal(err)
	}
	if !(slowed.MeanDelay > base.MeanDelay+3*base.HalfWidth) {
		t.Errorf("4× slow on one of two servers did not raise mean delay: %.4f vs %.4f",
			slowed.MeanDelay, base.MeanDelay)
	}
}
