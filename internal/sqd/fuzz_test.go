package sqd

import (
	"math"
	"testing"
)

// FuzzParamsValidate drives Params.Validate with arbitrary triples: it must
// never panic, and whenever it accepts a triple the accepted system must
// actually be well-posed — in particular the aggregate arrival rate must be
// a positive finite number (the fuzzer is what caught Validate accepting
// ρ = NaN). Seed corpus lives in testdata/fuzz/FuzzParamsValidate.
func FuzzParamsValidate(f *testing.F) {
	f.Add(3, 2, 0.8)
	f.Add(1, 1, 0.5)
	f.Add(250, 50, 0.95)
	f.Add(0, 0, 0.0)
	f.Add(-1, 2, 1.5)
	f.Add(2, 3, 0.5)
	f.Add(3, 2, math.NaN())
	f.Add(3, 2, math.Inf(1))
	f.Fuzz(func(t *testing.T, n, d int, rho float64) {
		p := Params{N: n, D: d, Rho: rho}
		if err := p.Validate(); err != nil {
			return
		}
		if p.N < 1 || p.D < 1 || p.D > p.N {
			t.Fatalf("Validate accepted ill-posed choices: %+v", p)
		}
		if !(p.Rho > 0 && p.Rho < 1) {
			t.Fatalf("Validate accepted utilization outside (0,1): %+v", p)
		}
		rate := p.TotalArrivalRate()
		if !(rate > 0) || math.IsNaN(rate) || math.IsInf(rate, 0) {
			t.Fatalf("valid params %+v yield arrival rate %v", p, rate)
		}
	})
}
