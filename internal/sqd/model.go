// Package sqd implements the three continuous-time Markov models of
// Godtschalk & Ciucu (ICDCS 2016): the exact SQ(d) policy of Section II,
// and the lower- and upper-bound models obtained by redirecting the
// transitions that would leave the difference-truncated space
// S = {m : m1 − mN ≤ T}.
//
// All models share the sorted-state representation of package statespace
// and expose their dynamics as rate-labelled transitions, which the markov
// and qbd packages assemble into generator matrices.
package sqd

import (
	"fmt"

	"finitelb/internal/statespace"
)

// Params identifies an SQ(d) system: N parallel unit-rate servers, d
// uniformly sampled choices per arrival, and Poisson arrivals of total rate
// Rho·N, so that Rho is both the per-server utilization and the paper's λ.
type Params struct {
	N   int     // number of servers
	D   int     // choices sampled per arrival (1 ≤ D ≤ N)
	Rho float64 // per-server utilization λ ∈ (0, 1)
}

// Validate reports whether the parameters describe a well-posed system.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("sqd: N = %d, need at least one server", p.N)
	}
	if p.D < 1 || p.D > p.N {
		return fmt.Errorf("sqd: d = %d outside [1, N=%d]", p.D, p.N)
	}
	if !(p.Rho > 0 && p.Rho < 1) { // the negated form also rejects NaN
		return fmt.Errorf("sqd: utilization ρ = %v outside (0, 1)", p.Rho)
	}
	return nil
}

// TotalArrivalRate returns λN, the aggregate Poisson arrival rate.
func (p Params) TotalArrivalRate() float64 { return p.Rho * float64(p.N) }

// Transition is one outgoing CTMC transition.
type Transition struct {
	To   statespace.State
	Rate float64
}

// Model is a CTMC over sorted queue-length states.
type Model interface {
	// Params returns the underlying system parameters.
	Params() Params
	// Transitions returns the outgoing transitions of m. Targets may
	// repeat; callers must sum rates per target (see Merged).
	Transitions(m statespace.State) []Transition
}

// Merged sums rates of transitions sharing a target state.
func Merged(ts []Transition) []Transition {
	if len(ts) < 2 {
		return ts
	}
	idx := make(map[string]int, len(ts))
	out := ts[:0]
	for _, tr := range ts {
		k := tr.To.Key()
		if i, ok := idx[k]; ok {
			out[i].Rate += tr.Rate
			continue
		}
		idx[k] = len(out)
		out = append(out, tr)
	}
	return out
}

// ArrivalRate returns the rate at which an arriving job joins the tie group
// g of state m under SQ(d) (Section II-A): all d sampled servers must lie
// among the first g.End+1 queues, at least one of them inside the group.
// With the paper's 1-based group span i..i+j this is
// λN·(C(i+j, d) − C(i−1, d))/C(N, d). Exported because the distribution
// extractions (markov.ExactDistribution, qbd.JoinDistribution) reweight
// states by per-group arrival rates outside the transition lists.
func ArrivalRate(p Params, g statespace.Group) float64 {
	num := statespace.Binomial(g.End+1, p.D) - statespace.Binomial(g.Start, p.D)
	if num <= 0 {
		return 0
	}
	return p.TotalArrivalRate() * num / statespace.Binomial(p.N, p.D)
}

// Exact is the unmodified SQ(d) Markov process on the full (untruncated)
// sorted state space. Its stationary distribution is computed numerically
// on a queue-capped subspace (see internal/markov) and serves as ground
// truth between the two bounds.
type Exact struct {
	P Params
}

// Params implements Model.
func (e *Exact) Params() Params { return e.P }

// Transitions implements Model.
func (e *Exact) Transitions(m statespace.State) []Transition {
	groups := m.Groups()
	ts := make([]Transition, 0, 2*len(groups))
	for _, g := range groups {
		if r := ArrivalRate(e.P, g); r > 0 {
			ts = append(ts, Transition{To: m.AfterArrival(g), Rate: r})
		}
		if g.Level > 0 {
			// Each of the group's busy servers completes at rate μ = 1; by
			// the paper's convention all completions collapse onto the
			// group's last index.
			ts = append(ts, Transition{To: m.AfterDeparture(g), Rate: float64(g.Size())})
		}
	}
	return ts
}

var _ Model = (*Exact)(nil)
