package sqd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"finitelb/internal/statespace"
)

func TestBoundParamsValidate(t *testing.T) {
	ok := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 0}
	if err := bad.Validate(); err == nil {
		t.Error("T = 0 accepted")
	}
}

// boundModels returns an LB/UB pair over a random configuration.
func boundModels(rng *rand.Rand) (*LowerBound, *UpperBound, BoundParams) {
	n := 2 + rng.IntN(5)
	p := BoundParams{
		Params: Params{N: n, D: 1 + rng.IntN(n), Rho: 0.05 + 0.9*rng.Float64()},
		T:      1 + rng.IntN(3),
	}
	return &LowerBound{P: p}, &UpperBound{P: p}, p
}

// TestBoundTargetsStayInS: both modified chains are closed on S.
func TestBoundTargetsStayInS(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		lb, ub, p := boundModels(rng)
		m := randomTruncState(rng, p.N, p.T)
		for _, tr := range lb.Transitions(m) {
			if !p.InSpace(tr.To) {
				return false
			}
		}
		for _, tr := range ub.Transitions(m) {
			if !p.InSpace(tr.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLowerBoundRedirectsArePreferable: every LB transition target is ⪯ the
// exact model's target it replaces, transition by transition (Section III).
func TestLowerBoundRedirectsArePreferable(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		lb, _, p := boundModels(rng)
		exact := &Exact{P: p.Params}
		m := randomTruncState(rng, p.N, p.T)
		// Pair unmerged transitions positionally: both models iterate the
		// same groups in the same order.
		et := exact.Transitions(m)
		lt := unmergedLB(lb, m)
		if len(et) != len(lt) {
			return false
		}
		for i := range et {
			if math.Abs(et[i].Rate-lt[i].Rate) > 1e-12 {
				return false
			}
			if !statespace.Leq(lt[i].To, et[i].To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// unmergedLB regenerates the lower-bound transitions without merging so
// they can be compared positionally to the exact model's.
func unmergedLB(l *LowerBound, m statespace.State) []Transition {
	groups := m.Groups()
	minG := groups[len(groups)-1]
	topG := groups[0]
	var ts []Transition
	for _, g := range groups {
		if r := ArrivalRate(l.P.Params, g); r > 0 {
			to := m.AfterArrival(g)
			if !l.P.InSpace(to) {
				to = m.AfterArrival(minG)
			}
			ts = append(ts, Transition{To: to, Rate: r})
		}
		if g.Level > 0 {
			to := m.AfterDeparture(g)
			if !l.P.InSpace(to) {
				to = m.AfterDeparture(topG)
			}
			ts = append(ts, Transition{To: to, Rate: float64(g.Size())})
		}
	}
	return ts
}

// TestUpperBoundRedirectsAreLessPreferable: every UB target is ⪰ the exact
// target it replaces; cancelled departures compare m ⪰ m − e.
func TestUpperBoundRedirectsAreLessPreferable(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		_, ub, p := boundModels(rng)
		m := randomTruncState(rng, p.N, p.T)
		groups := m.Groups()
		minG := groups[len(groups)-1]
		for _, g := range groups {
			if ArrivalRate(p.Params, g) > 0 {
				exactTo := m.AfterArrival(g)
				ubTo := exactTo
				if !p.InSpace(exactTo) {
					ubTo = ub.arrivalWithPhantoms(m, g, minG)
				}
				if !statespace.Leq(exactTo, ubTo) {
					return false
				}
			}
			if g.Level > 0 {
				exactTo := m.AfterDeparture(g)
				if !p.InSpace(exactTo) {
					// Cancelled: effective target is m itself.
					if !statespace.Leq(exactTo, m) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNoDominatingSingleArrivalState backs the DESIGN.md reconstruction
// argument: when an arrival into the capped top group leaves S, no state of
// S with #m + 1 jobs dominates the true target, so the upper bound must
// inject phantom work.
func TestNoDominatingSingleArrivalState(t *testing.T) {
	const n, tt = 3, 2
	m := statespace.MustState(2, 2, 0)
	target := m.AfterArrival(m.GroupOf(0)) // (3,2,0), diff 3 ∉ S
	if target.Diff() <= tt {
		t.Fatal("test setup: target unexpectedly in S")
	}
	for _, cand := range statespace.StatesWithTotal(n, tt, target.Total()) {
		if statespace.Leq(target, cand) {
			t.Errorf("state %v ∈ S dominates %v; reconstruction argument is wrong", cand, target)
		}
	}
}

func TestLowerBoundJockeyExample(t *testing.T) {
	// SQ(2), N=3, T=2, state (2,2,0), as in the paper's Fig. 7 regime.
	p := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 2}
	lb := &LowerBound{P: p}
	m := statespace.MustState(2, 2, 0)
	rates := map[string]float64{}
	for _, tr := range lb.Transitions(m) {
		rates[tr.To.String()] += tr.Rate
	}
	// Arrival sampling both long servers (rate λN·C(2,2)/C(3,2) = 0.5)
	// would give (3,2,0) ∉ S: jockeyed to (2,2,1). Arrival involving the
	// short server (rate 1.0) also lands at (2,2,1): total 1.5 = λN.
	if math.Abs(rates["(2,2,1)"]-1.5) > 1e-12 {
		t.Errorf("arrival rate to (2,2,1) = %v, want 1.5", rates["(2,2,1)"])
	}
	// Departures from the two long servers: (2,1,0) at rate 2. The short
	// server is idle. No departure may leave S.
	if math.Abs(rates["(2,1,0)"]-2) > 1e-12 {
		t.Errorf("departure rate to (2,1,0) = %v, want 2", rates["(2,1,0)"])
	}
	if len(rates) != 2 {
		t.Errorf("unexpected transition set %v", rates)
	}
}

func TestLowerBoundJockeyDeparture(t *testing.T) {
	// (3,2,1) with T=2: departure from the shortest (rate 1) would reach
	// (3,2,0) with diff 3: jockeyed to a departure from the longest, (2,2,1).
	p := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 2}
	lb := &LowerBound{P: p}
	m := statespace.MustState(3, 2, 1)
	rates := map[string]float64{}
	for _, tr := range lb.Transitions(m) {
		rates[tr.To.String()] += tr.Rate
	}
	// Departures: longest (rate 1 → (2,2,1)) + shortest redirected (rate 1
	// → (2,2,1)) sum to 2; middle (rate 1 → (3,1,1)).
	if math.Abs(rates["(2,2,1)"]-2) > 1e-12 {
		t.Errorf("rate to (2,2,1) = %v, want 2 (direct + jockeyed)", rates["(2,2,1)"])
	}
	if math.Abs(rates["(3,1,1)"]-1) > 1e-12 {
		t.Errorf("rate to (3,1,1) = %v, want 1", rates["(3,1,1)"])
	}
}

func TestUpperBoundCancelsDeparture(t *testing.T) {
	// (3,2,1) with T=2: the shortest queue's departure is wasted.
	p := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 2}
	ub := &UpperBound{P: p}
	m := statespace.MustState(3, 2, 1)
	var totalDeparture float64
	for _, tr := range ub.Transitions(m) {
		if tr.To.Total() == m.Total()-1 {
			totalDeparture += tr.Rate
		}
	}
	// Three busy servers, one service wasted: only rate 2 departs.
	if math.Abs(totalDeparture-2) > 1e-12 {
		t.Errorf("departure rate = %v, want 2 (one cancelled)", totalDeparture)
	}
}

func TestUpperBoundPhantomArrival(t *testing.T) {
	// (2,2,0) with T=2, SQ(2): sampling both long servers forces the job
	// into the capped group plus one phantom at the idle queue: (3,2,1).
	p := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 2}
	ub := &UpperBound{P: p}
	m := statespace.MustState(2, 2, 0)
	rates := map[string]float64{}
	for _, tr := range ub.Transitions(m) {
		rates[tr.To.String()] += tr.Rate
	}
	if math.Abs(rates["(3,2,1)"]-0.5) > 1e-12 {
		t.Errorf("phantom arrival rate to (3,2,1) = %v, want 0.5", rates["(3,2,1)"])
	}
	if math.Abs(rates["(2,2,1)"]-1.0) > 1e-12 {
		t.Errorf("regular arrival rate to (2,2,1) = %v, want 1.0", rates["(2,2,1)"])
	}
}

func TestBoundModelsPanicOutsideS(t *testing.T) {
	p := BoundParams{Params: Params{N: 3, D: 2, Rho: 0.5}, T: 1}
	m := statespace.MustState(5, 0, 0)
	for _, model := range []Model{&LowerBound{P: p}, &UpperBound{P: p}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T accepted a state outside S", model)
				}
			}()
			model.Transitions(m)
		}()
	}
}
