package sqd

import (
	"fmt"

	"finitelb/internal/statespace"
)

// BoundParams extends Params with the truncation threshold T ≥ 1 of the
// space S = {m : m1 − mN ≤ T} on which both bound models live.
type BoundParams struct {
	Params
	T int
}

// Validate reports whether the bound-model parameters are well posed.
func (p BoundParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.T < 1 {
		return fmt.Errorf("sqd: threshold T = %d, need T ≥ 1", p.T)
	}
	return nil
}

// InSpace reports whether m belongs to the truncated space S.
func (p BoundParams) InSpace(m statespace.State) bool { return m.Diff() <= p.T }

// LowerBound is the paper's lower-bound model: the generalization of
// threshold jockeying to SQ(d). Transitions of the exact model that would
// leave S are redirected to *more preferable* states (smaller in the
// precedence order of Eq. (5)):
//
//   - an arrival that would push the top group past level mN+T instead
//     joins a shortest queue (target m + e_N ⪯ m + e_i), exactly as if the
//     job had joined the long queue and one job had immediately jockeyed
//     from it to a shortest queue;
//   - a departure from the min group when m1 − mN = T is redirected to the
//     longest group (target m − e_1 ⪯ m − e_N): the real departure happens
//     at the short queue and a job jockeys down from the longest queue.
//
// The redirected process is stochastically better than SQ(d), so its mean
// delay lower-bounds the true one, and its transition diagram is regular.
type LowerBound struct {
	P BoundParams
}

// Params implements Model.
func (l *LowerBound) Params() Params { return l.P.Params }

// Bound returns the full bound parameters including T.
func (l *LowerBound) Bound() BoundParams { return l.P }

// Transitions implements Model. m must lie in S; every returned target lies
// in S as well.
func (l *LowerBound) Transitions(m statespace.State) []Transition {
	if !l.P.InSpace(m) {
		panic(fmt.Sprintf("sqd: lower-bound model queried outside S: %v with T=%d", m, l.P.T))
	}
	groups := m.Groups()
	minG := groups[len(groups)-1]
	topG := groups[0]
	ts := make([]Transition, 0, 2*len(groups))
	for _, g := range groups {
		if r := ArrivalRate(l.P.Params, g); r > 0 {
			to := m.AfterArrival(g)
			if !l.P.InSpace(to) {
				to = m.AfterArrival(minG) // jockey down to a shortest queue
			}
			ts = append(ts, Transition{To: to, Rate: r})
		}
		if g.Level > 0 {
			to := m.AfterDeparture(g)
			if !l.P.InSpace(to) {
				to = m.AfterDeparture(topG) // jockey from the longest queue
			}
			ts = append(ts, Transition{To: to, Rate: float64(g.Size())})
		}
	}
	return Merged(ts)
}

var _ Model = (*LowerBound)(nil)

// UpperBound is the paper's upper-bound model: transitions leaving S are
// redirected to *less preferable* states (larger in the precedence order):
//
//   - a departure from the min group when m1 − mN = T is cancelled — the
//     service is wasted and the state does not change (m ⪰ m − e_N). This
//     is the rule that reduces effective capacity, so the plain stability
//     condition ρ < 1 no longer suffices and the QBD drift condition
//     πA0e < πA2e must be checked (Section IV-A);
//   - an arrival into the top group at the cap level mN+T proceeds anyway
//     and one phantom job is added to every queue of the min group,
//     restoring m1 − mN ≤ T from above. The target m + e_i + Σ_min e_k
//     dominates m + e_i componentwise in partial sums, hence is ⪰. No
//     state of S with #m+1 jobs dominates m + e_i (its first partial sum
//     already exceeds what any state of S can afford at that level), so a
//     valid redirect necessarily injects extra work; this is the minimal
//     such injection. See DESIGN.md ("Reconstruction note").
type UpperBound struct {
	P BoundParams
}

// Params implements Model.
func (u *UpperBound) Params() Params { return u.P.Params }

// Bound returns the full bound parameters including T.
func (u *UpperBound) Bound() BoundParams { return u.P }

// Transitions implements Model. m must lie in S; every returned target lies
// in S. Cancelled departures are simply omitted (a CTMC self-loop is a
// no-op), which is how the wasted service manifests in the generator.
func (u *UpperBound) Transitions(m statespace.State) []Transition {
	if !u.P.InSpace(m) {
		panic(fmt.Sprintf("sqd: upper-bound model queried outside S: %v with T=%d", m, u.P.T))
	}
	groups := m.Groups()
	minG := groups[len(groups)-1]
	ts := make([]Transition, 0, 2*len(groups))
	for _, g := range groups {
		if r := ArrivalRate(u.P.Params, g); r > 0 {
			to := m.AfterArrival(g)
			if !u.P.InSpace(to) {
				to = u.arrivalWithPhantoms(m, g, minG)
			}
			ts = append(ts, Transition{To: to, Rate: r})
		}
		if g.Level > 0 {
			to := m.AfterDeparture(g)
			if !u.P.InSpace(to) {
				continue // wasted service: the job is put back, state unchanged
			}
			ts = append(ts, Transition{To: to, Rate: float64(g.Size())})
		}
	}
	return Merged(ts)
}

// arrivalWithPhantoms builds the upper-bound redirect target for an arrival
// into the capped top group g: the job joins g.Start and every queue of the
// min group receives one phantom job.
func (u *UpperBound) arrivalWithPhantoms(m statespace.State, g, minG statespace.Group) statespace.State {
	to := m.Clone()
	to[g.Start]++
	for k := minG.Start; k <= minG.End; k++ {
		to[k]++
	}
	if !u.P.InSpace(to) {
		panic(fmt.Sprintf("sqd: phantom redirect of %v left S: %v", m, to))
	}
	return to
}

var _ Model = (*UpperBound)(nil)
