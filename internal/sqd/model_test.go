package sqd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"finitelb/internal/statespace"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{name: "valid", p: Params{N: 6, D: 2, Rho: 0.9}},
		{name: "d equals N", p: Params{N: 3, D: 3, Rho: 0.5}},
		{name: "d one", p: Params{N: 3, D: 1, Rho: 0.5}},
		{name: "no servers", p: Params{N: 0, D: 1, Rho: 0.5}, wantErr: true},
		{name: "d too large", p: Params{N: 3, D: 4, Rho: 0.5}, wantErr: true},
		{name: "d zero", p: Params{N: 3, D: 0, Rho: 0.5}, wantErr: true},
		{name: "rho zero", p: Params{N: 3, D: 2, Rho: 0}, wantErr: true},
		{name: "rho one", p: Params{N: 3, D: 2, Rho: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate(%+v) = %v, wantErr %v", tt.p, err, tt.wantErr)
			}
		})
	}
}

// TestArrivalRateDistinct checks the Section II-A rate for states with all
// distinct queue lengths: λN·C(i−1, d−1)/C(N, d) for 1-based server i.
func TestArrivalRateDistinct(t *testing.T) {
	p := Params{N: 6, D: 2, Rho: 0.75}
	m := statespace.MustState(10, 8, 6, 4, 2, 1)
	lamN := p.TotalArrivalRate()
	cn := statespace.Binomial(6, 2)
	for _, g := range m.Groups() {
		i := g.Start + 1 // paper's 1-based index
		want := lamN * statespace.Binomial(i-1, p.D-1) / cn
		if got := ArrivalRate(p, g); math.Abs(got-want) > 1e-12 {
			t.Errorf("arrival rate at server %d = %v, want %v", i, got, want)
		}
	}
}

// TestArrivalRateTieGroup checks the tie-group rate λN·(C(i+j,d)−C(i−1,d))/C(N,d).
func TestArrivalRateTieGroup(t *testing.T) {
	p := Params{N: 5, D: 3, Rho: 0.6}
	m := statespace.MustState(7, 4, 4, 4, 1)
	g := m.GroupOf(1) // group spans 1-based servers 2..4
	cn := statespace.Binomial(5, 3)
	want := p.TotalArrivalRate() * (statespace.Binomial(4, 3) - statespace.Binomial(1, 3)) / cn
	if got := ArrivalRate(p, g); math.Abs(got-want) > 1e-12 {
		t.Errorf("tie-group arrival rate = %v, want %v", got, want)
	}
}

// TestArrivalRatesSumToLambdaN: every arriving job lands somewhere, so the
// arrival rates across groups always total λN (the paper's telescoping
// identity Σ C(i−1,d−1) = C(N,d)).
func TestArrivalRatesSumToLambdaN(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 2 + rng.IntN(6)
		p := Params{N: n, D: 1 + rng.IntN(n), Rho: 0.05 + 0.9*rng.Float64()}
		m := randomState(rng, n, 6)
		var sum float64
		for _, g := range m.Groups() {
			sum += ArrivalRate(p, g)
		}
		return math.Abs(sum-p.TotalArrivalRate()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactTransitionsSmall(t *testing.T) {
	// SQ(2), N=3, state (2,1,0): three singleton groups.
	p := Params{N: 3, D: 2, Rho: 0.5}
	e := &Exact{P: p}
	m := statespace.MustState(2, 1, 0)
	got := map[string]float64{}
	for _, tr := range Merged(e.Transitions(m)) {
		got[tr.To.String()] = tr.Rate
	}
	lamN := 1.5
	c32 := 3.0 // C(3,2)
	want := map[string]float64{
		"(2,2,0)": lamN * 1 / c32, // join server 2: C(1,1)=1
		"(2,1,1)": lamN * 2 / c32, // join server 3: C(2,1)=2
		"(1,1,0)": 1,              // departure from server 1
		"(2,0,0)": 1,              // departure from server 2
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-12 {
			t.Errorf("rate to %s = %v, want %v", k, got[k], v)
		}
	}
	// Server 1 (the longest) can never be selected under d=2 with distinct
	// lengths: it would need one *longer* sampled companion.
	if _, bad := got["(3,1,0)"]; bad {
		t.Error("arrival joined the strictly longest queue under SQ(2)")
	}
}

func TestExactTransitionsTieConventions(t *testing.T) {
	p := Params{N: 3, D: 2, Rho: 0.5}
	e := &Exact{P: p}
	m := statespace.MustState(1, 1, 1)
	got := map[string]float64{}
	for _, tr := range Merged(e.Transitions(m)) {
		got[tr.To.String()] = tr.Rate
	}
	// All three servers tie: any sample selects the group; arrival rate λN.
	if math.Abs(got["(2,1,1)"]-1.5) > 1e-12 {
		t.Errorf("arrival rate = %v, want 1.5", got["(2,1,1)"])
	}
	// Three busy servers depart at total rate 3 onto one representative.
	if math.Abs(got["(1,1,0)"]-3) > 1e-12 {
		t.Errorf("departure rate = %v, want 3", got["(1,1,0)"])
	}
}

func TestJSQOnlyFeedsShortest(t *testing.T) {
	p := Params{N: 4, D: 4, Rho: 0.8}
	e := &Exact{P: p}
	m := statespace.MustState(5, 3, 2, 1)
	for _, tr := range e.Transitions(m) {
		if tr.To.Total() == m.Total()+1 && !tr.To.Equal(statespace.MustState(5, 3, 2, 2)) {
			t.Errorf("JSQ arrival reached %v", tr.To)
		}
	}
}

func TestD1UniformSplit(t *testing.T) {
	p := Params{N: 3, D: 1, Rho: 0.9}
	e := &Exact{P: p}
	m := statespace.MustState(4, 2, 0)
	for _, tr := range e.Transitions(m) {
		if tr.To.Total() == m.Total()+1 && math.Abs(tr.Rate-0.9) > 1e-12 {
			t.Errorf("SQ(1) arrival rate to %v = %v, want λ = 0.9 per server", tr.To, tr.Rate)
		}
	}
}

func TestMerged(t *testing.T) {
	a := statespace.MustState(1, 0)
	b := statespace.MustState(2, 0)
	ts := Merged([]Transition{{To: a, Rate: 1}, {To: b, Rate: 2}, {To: a, Rate: 3}})
	if len(ts) != 2 {
		t.Fatalf("Merged kept %d entries, want 2", len(ts))
	}
	for _, tr := range ts {
		if tr.To.Equal(a) && tr.Rate != 4 {
			t.Errorf("merged rate to %v = %v, want 4", a, tr.Rate)
		}
	}
}

func randomState(rng *rand.Rand, n, maxLevel int) statespace.State {
	m := make([]int, n)
	for i := range m {
		m[i] = rng.IntN(maxLevel + 1)
	}
	return statespace.SortDesc(m)
}

// randomTruncState returns a random state inside S (diff ≤ t).
func randomTruncState(rng *rand.Rand, n, t int) statespace.State {
	base := rng.IntN(4)
	m := make([]int, n)
	for i := range m {
		m[i] = base + rng.IntN(t+1)
	}
	return statespace.SortDesc(m)
}
