package asym

import (
	"math"
	"testing"
)

func TestQueueTailBasics(t *testing.T) {
	if got := QueueTail(2, 0.9, 0); got != 1 {
		t.Errorf("s_0 = %v, want 1", got)
	}
	if got := QueueTail(2, 0.9, 1); math.Abs(got-0.9) > 1e-15 {
		t.Errorf("s_1 = %v, want ρ", got)
	}
	// d=2, i=3: exponent (2³−1)/(2−1) = 7.
	if got, want := QueueTail(2, 0.9, 3), math.Pow(0.9, 7); math.Abs(got-want) > 1e-15 {
		t.Errorf("s_3 = %v, want %v", got, want)
	}
	// d=1: geometric M/M/1 tail.
	if got, want := QueueTail(1, 0.7, 4), math.Pow(0.7, 4); math.Abs(got-want) > 1e-15 {
		t.Errorf("d=1 s_4 = %v, want %v", got, want)
	}
	// Deep levels vanish instead of overflowing.
	if got := QueueTail(2, 0.99, 300); got != 0 {
		t.Errorf("deep tail = %v, want 0", got)
	}
}

// TestQueueTailLittleConsistency: Σ_{i≥1} s_i = ρ·E[Delay] (Little's law at
// one server) — the fixed point and Eq. (16) describe the same system.
func TestQueueTailLittleConsistency(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		for _, rho := range []float64{0.5, 0.9, 0.99} {
			var jobs float64
			for i := 1; i <= 4000; i++ {
				s := QueueTail(d, rho, i)
				jobs += s
				if s < 1e-18 {
					break
				}
			}
			want := rho * Delay(d, rho)
			if math.Abs(jobs-want) > 1e-9*want {
				t.Errorf("d=%d ρ=%v: Σs_i = %v, ρ·E[T] = %v", d, rho, jobs, want)
			}
		}
	}
}

func TestErlangTail(t *testing.T) {
	// Erlang(1) = exponential.
	if got, want := ErlangTail(1, 2), math.Exp(-2); math.Abs(got-want) > 1e-15 {
		t.Errorf("ErlangTail(1, 2) = %v, want %v", got, want)
	}
	// Erlang(2): e^{−t}(1+t).
	if got, want := ErlangTail(2, 1.5), math.Exp(-1.5)*2.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("ErlangTail(2, 1.5) = %v, want %v", got, want)
	}
	if got := ErlangTail(3, 0); got != 1 {
		t.Errorf("ErlangTail at 0 = %v, want 1", got)
	}
	if got := ErlangTail(0, 1); got != 0 {
		t.Errorf("ErlangTail(0, ·) = %v, want 0", got)
	}
	// Monotone decreasing in t, increasing in n.
	if !(ErlangTail(2, 1) > ErlangTail(2, 2)) {
		t.Error("ErlangTail not decreasing in t")
	}
	if !(ErlangTail(3, 1) > ErlangTail(2, 1)) {
		t.Error("ErlangTail not increasing in n")
	}
}

// TestDelayTailMeanMatchesEq16: integrating the asymptotic sojourn tail
// recovers the Eq. (16) mean — the distribution and the mean formula agree.
func TestDelayTailMeanMatchesEq16(t *testing.T) {
	for _, d := range []int{2, 3} {
		for _, rho := range []float64{0.5, 0.9} {
			// E[T] = ∫₀^∞ P(T > t) dt by trapezoid on a fine grid.
			mean, dt := 0.0, 0.005
			for x := 0.0; x < 200; x += dt {
				a, b := DelayTail(d, rho, x), DelayTail(d, rho, x+dt)
				mean += (a + b) / 2 * dt
				if b < 1e-12 {
					break
				}
			}
			want := Delay(d, rho)
			if math.Abs(mean-want) > 1e-3*want {
				t.Errorf("d=%d ρ=%v: ∫tail = %v, Eq16 = %v", d, rho, mean, want)
			}
		}
	}
}

func TestDelayTailBounds(t *testing.T) {
	if got := DelayTail(2, 0.9, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(T > 0) = %v, want 1", got)
	}
	prev := 1.0
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16} {
		cur := DelayTail(2, 0.9, x)
		if cur > prev+1e-12 {
			t.Errorf("DelayTail not monotone at %v: %v > %v", x, cur, prev)
		}
		prev = cur
	}
	if prev > 1e-3 {
		t.Errorf("P(T > 16) = %v, expected tiny for SQ(2)", prev)
	}
}
