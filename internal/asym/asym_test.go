package asym

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDelayD1IsMM1(t *testing.T) {
	for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := 1 / (1 - rho)
		if got := Delay(1, rho); math.Abs(got-want) > 1e-12*want {
			t.Errorf("Delay(1, %v) = %v, want %v", rho, got, want)
		}
	}
}

func TestDelayD2Series(t *testing.T) {
	// d=2: E[Delay] = Σ ρ^{2ⁱ−2} = 1 + ρ² + ρ⁶ + ρ¹⁴ + …
	rho := 0.9
	want := 0.0
	for i := 1; i <= 30; i++ {
		want += math.Pow(rho, math.Pow(2, float64(i))-2)
	}
	if got := Delay(2, rho); math.Abs(got-want) > 1e-12 {
		t.Errorf("Delay(2, 0.9) = %v, want %v", got, want)
	}
}

func TestDelayLimits(t *testing.T) {
	// Low utilization: delay → 1 (pure service time).
	if got := Delay(2, 0.01); math.Abs(got-1) > 1e-3 {
		t.Errorf("Delay(2, 0.01) = %v, want ≈ 1", got)
	}
	// Exponential improvement: at ρ=0.99, SQ(2) delay is dramatically
	// smaller than M/M/1's 100.
	if d1, d2 := Delay(1, 0.99), Delay(2, 0.99); d1/d2 < 10 {
		t.Errorf("power-of-two collapse missing: d1=%v, d2=%v", d1, d2)
	}
}

func TestDelayMonotoneInD(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		rho := 0.05 + 0.9*rng.Float64()
		prev := Delay(1, rho)
		for d := 2; d <= 6; d++ {
			cur := Delay(d, rho)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Delay(0, 0.5) },
		func() { Delay(2, 0) },
		func() { Delay(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Delay accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestPoissonBetasSumToOne(t *testing.T) {
	b := PoissonBetas(0.7, 1)
	sum := 0.0
	for k := 0; k < 2000; k++ {
		sum += b(k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σβ_k = %v, want 1", sum)
	}
}

func TestPoissonBetasClosedForm(t *testing.T) {
	// β_0 = λ/(λ+μ), as derived in the Theorem 3 proof.
	lambda, mu := 0.8, 1.0
	b := PoissonBetas(lambda, mu)
	if got, want := b(0), lambda/(lambda+mu); math.Abs(got-want) > 1e-15 {
		t.Errorf("β_0 = %v, want %v", got, want)
	}
	// Recursion β_{k+1} = β_k·μ/(λ+μ), from Eq. (21).
	for k := 0; k < 10; k++ {
		if got, want := b(k+1), b(k)*mu/(lambda+mu); math.Abs(got-want) > 1e-15 {
			t.Errorf("β_%d = %v, want %v", k+1, got, want)
		}
	}
}

// TestSigmaPoissonIsRho is Theorem 3: for Poisson arrivals the root of the
// σ-equation is exactly the traffic intensity ρ.
func TestSigmaPoissonIsRho(t *testing.T) {
	for _, rho := range []float64{0.2, 0.5, 0.75, 0.9, 0.99} {
		sigma, err := SolveSigma(PoissonBetas(rho, 1), 1e-13)
		if err != nil {
			t.Fatalf("ρ=%v: %v", rho, err)
		}
		if math.Abs(sigma-rho) > 1e-10 {
			t.Errorf("σ(ρ=%v) = %v, want ρ", rho, sigma)
		}
	}
}

func TestBetasSumToOneAcrossLaws(t *testing.T) {
	laws := map[string]BetaFunc{
		"erlang2":       ErlangBetas(2, 0.7, 1),
		"erlang5":       ErlangBetas(5, 0.4, 1),
		"deterministic": DeterministicBetas(0.6, 1),
		"hyperexp":      HyperExpBetas(0.3, 0.5, 2.0, 1),
	}
	for name, b := range laws {
		sum := 0.0
		for k := 0; k < 3000; k++ {
			sum += b(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: Σβ_k = %v, want 1", name, sum)
		}
	}
}

// TestSigmaOrderingByVariability: smoother arrival processes (lower
// interarrival variability) drain queues better, so σ_deterministic <
// σ_erlang < σ_poisson at equal utilization — the classic GI/M/1 ordering.
func TestSigmaOrderingByVariability(t *testing.T) {
	const rho = 0.8
	sigP, err := SolveSigma(PoissonBetas(rho, 1), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	sigE, err := SolveSigma(ErlangBetas(4, rho, 1), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	sigD, err := SolveSigma(DeterministicBetas(rho, 1), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !(sigD < sigE && sigE < sigP) {
		t.Errorf("σ ordering violated: D=%v, E4=%v, M=%v", sigD, sigE, sigP)
	}
	// And a bursty hyperexponential must be worse than Poisson.
	sigH, err := SolveSigma(HyperExpBetas(0.1, rho/5.5, rho*1.8, 1), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if sigH <= sigP {
		t.Errorf("hyperexponential σ=%v not above Poisson σ=%v", sigH, sigP)
	}
}

func TestSigmaUnstableHasNoRoot(t *testing.T) {
	// ρ ≥ 1: the embedded queue is unstable and the root leaves (0,1).
	if _, err := SolveSigma(PoissonBetas(1.2, 1), 1e-12); err == nil {
		t.Error("SolveSigma found a root for an unstable system")
	}
}

// TestSigmaGIM1WaitKnownValue: for M/M/1 (Poisson), the GI/M/1 delay
// formula 1/(μ(1−σ)) must reproduce 1/(1−ρ).
func TestSigmaGIM1WaitKnownValue(t *testing.T) {
	const rho = 0.75
	sigma, err := SolveSigma(PoissonBetas(rho, 1), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := 1/(1-sigma), 1/(1-rho); math.Abs(got-want) > 1e-8 {
		t.Errorf("GI/M/1 delay = %v, want %v", got, want)
	}
}
