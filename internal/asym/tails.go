package asym

import (
	"fmt"
	"math"
)

// QueueTail returns the asymptotic (N → ∞) fraction of servers holding at
// least i jobs under SQ(d):
//
//	s_i = ρ^{(dⁱ − 1)/(d − 1)},
//
// Mitzenmacher's fixed point — the doubly-exponential tail collapse behind
// the power-of-two result (for d = 1 it degenerates to the M/M/1 geometric
// tail ρⁱ). It ties to Eq. (16) through Little's law: the mean jobs per
// server Σ_{i≥1} s_i equals ρ·E[Delay] because each Eq. (16) term is
// s_i/ρ; TestQueueTailLittleConsistency checks both identities.
func QueueTail(d int, rho float64, i int) float64 {
	if d < 1 {
		panic(fmt.Sprintf("asym: invalid d = %d", d))
	}
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("asym: utilization %v outside (0,1)", rho))
	}
	if i < 0 {
		panic(fmt.Sprintf("asym: negative queue level %d", i))
	}
	if i == 0 {
		return 1
	}
	if d == 1 {
		return math.Pow(rho, float64(i))
	}
	// (dⁱ − 1)/(d − 1) = 1 + d + … + d^{i−1}, grown incrementally to avoid
	// overflow; once the exponent is huge the tail is numerically zero.
	exponent := 0.0
	power := 1.0
	for k := 0; k < i; k++ {
		exponent += power
		power *= float64(d)
		if exponent > 1e6 {
			return 0
		}
	}
	return math.Pow(rho, exponent)
}

// ErlangTail returns P(Erlang(n, 1) > t) = e^{−t}·Σ_{j<n} tʲ/j!, the
// waiting-tail building block for FIFO exponential servers: a job queued
// behind k jobs (including the one in service) sojourns Erlang(k+1, 1) by
// memorylessness.
func ErlangTail(n int, t float64) float64 {
	if n <= 0 {
		return 0
	}
	if t <= 0 {
		return 1
	}
	// Accumulate in log space only when needed; n here is a queue length,
	// so direct summation is safe.
	term := math.Exp(-t)
	sum := term
	for j := 1; j < n; j++ {
		term *= t / float64(j)
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// DelayTail returns the asymptotic P(sojourn > t) under SQ(d): by the
// fixed-point independence, an arriving job finds the selected queue at
// level k with probability s_k^d − s_{k+1}^d (all d samples ≥ k, not all
// ≥ k+1), and then sojourns Erlang(k+1, 1).
func DelayTail(d int, rho float64, t float64) float64 {
	sum := 0.0
	for k := 0; ; k++ {
		pk := math.Pow(QueueTail(d, rho, k), float64(d)) - math.Pow(QueueTail(d, rho, k+1), float64(d))
		if pk <= 0 && k > 0 {
			break
		}
		sum += pk * ErlangTail(k+1, t)
		if QueueTail(d, rho, k+1) < 1e-16 {
			break
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}
