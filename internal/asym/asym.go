// Package asym implements the asymptotic (N → ∞) delay theory the paper
// evaluates against — Mitzenmacher's fixed-point formula, Eq. (16) — and
// the embedded-chain σ-equation of Theorem 2, whose Poisson special case
// σ = ρ (Theorem 3) underlies the improved lower bound. The σ-equation is
// also solved numerically for non-Poisson interarrival laws (Erlang,
// deterministic, hyperexponential), the paper's MAP/PH future-work
// direction.
package asym

import (
	"errors"
	"fmt"
	"math"
)

// Delay returns the asymptotic mean sojourn time of SQ(d) at per-server
// utilization ρ (Eq. (16)):
//
//	E[Delay] = Σ_{i≥1} ρ^{(dⁱ − d)/(d − 1)},
//
// which is independent of N. For d = 1 the exponent degenerates to i − 1
// and the series sums to the M/M/1 delay 1/(1 − ρ).
func Delay(d int, rho float64) float64 {
	if d < 1 {
		panic(fmt.Sprintf("asym: invalid d = %d", d))
	}
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("asym: utilization %v outside (0,1)", rho))
	}
	if d == 1 {
		return 1 / (1 - rho)
	}
	sum := 0.0
	// Term i has exponent (dⁱ − d)/(d−1) = d + d² + … + d^{i−1}; grow it
	// incrementally to avoid overflow, stopping once terms vanish.
	exponent := 0.0
	power := float64(d)
	for i := 1; i <= 64; i++ {
		term := math.Pow(rho, exponent)
		sum += term
		if term < 1e-16 {
			break
		}
		exponent += power
		power *= float64(d)
	}
	return sum
}

// ErrNoRoot is returned when the σ-equation has no root inside (0, 1),
// which happens exactly when the embedded system is not stable.
var ErrNoRoot = errors.New("asym: σ-equation has no root in (0, 1)")

// BetaFunc returns β_k = ∫ (μt)^k/k!·e^{−μt} dA(t) for k ≥ 0: the
// probability that exactly k services complete at a busy exponential(μ)
// server during one interarrival time drawn from A.
type BetaFunc func(k int) float64

// PoissonBetas returns the β_k sequence for Poisson arrivals of rate λ and
// service rate μ: β_k = (λ/μ)·(μ/(λ+μ))^{k+1}, the closed form derived in
// the proof of Theorem 3.
func PoissonBetas(lambda, mu float64) BetaFunc {
	return func(k int) float64 {
		return lambda / mu * math.Pow(mu/(lambda+mu), float64(k+1))
	}
}

// ErlangBetas returns β_k for Erlang-r interarrival times with rate r·λ per
// stage (mean 1/λ) and service rate μ. The completion count per
// interarrival is negative-binomial — k service wins interleaved among r
// stage wins of independent exponential races — giving
// β_k = C(k+r−1, k)·(rλ/(rλ+μ))ʳ·(μ/(rλ+μ))ᵏ.
func ErlangBetas(r int, lambda, mu float64) BetaFunc {
	if r < 1 {
		panic("asym: Erlang stages must be ≥ 1")
	}
	p := float64(r) * lambda / (float64(r)*lambda + mu) // per-race arrival-stage win
	q := mu / (float64(r)*lambda + mu)                  // per-race service win
	return func(k int) float64 {
		// Negative binomial: k service wins before the r-th stage win.
		c := 1.0
		for i := 1; i <= k; i++ {
			c = c * float64(r+i-1) / float64(i)
		}
		return c * math.Pow(p, float64(r)) * math.Pow(q, float64(k))
	}
}

// DeterministicBetas returns β_k for deterministic interarrival times 1/λ:
// the completion count is Poisson(μ/λ), so β_k = e^{−μ/λ}(μ/λ)ᵏ/k!.
func DeterministicBetas(lambda, mu float64) BetaFunc {
	a := mu / lambda
	return func(k int) float64 {
		logTerm := -a + float64(k)*math.Log(a) - lgammaInt(k)
		return math.Exp(logTerm)
	}
}

// HyperExpBetas returns β_k for a two-phase hyperexponential interarrival
// law: with probability w the rate is l1, otherwise l2 (mean w/l1+(1−w)/l2).
func HyperExpBetas(w, l1, l2, mu float64) BetaFunc {
	b1 := PoissonBetas(l1, mu)
	b2 := PoissonBetas(l2, mu)
	return func(k int) float64 {
		return w*b1(k) + (1-w)*b2(k)
	}
}

// SolveSigma finds the unique root σ ∈ (0, 1) of Theorem 2's equation
//
//	x = Σ_{k≥0} xᵏ·β_k
//
// by bisection on f(x) = Σ xᵏβ_k − x, which is positive at 0⁺ (β_0 > 0)
// and negative at 1⁻ exactly when the mean number of completions per
// interarrival exceeds 1 (stability). The series is truncated once terms
// fall below machine precision.
func SolveSigma(betas BetaFunc, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-13
	}
	f := func(x float64) float64 {
		sum := 0.0
		xk := 1.0
		for k := 0; k < 100000; k++ {
			term := xk * betas(k)
			sum += term
			if k > 4 && term < 1e-18 {
				break
			}
			xk *= x
		}
		return sum - x
	}
	lo, hi := 1e-12, 1-1e-9
	flo, fhi := f(lo), f(hi)
	if flo <= 0 || fhi >= 0 {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoRoot, lo, flo, hi, fhi)
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// lgammaInt returns ln(n!) for n ≥ 0 via math.Lgamma.
func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}
