// Package chaos turns churn schedules (internal/workload's churn: spec)
// into fully-resolved, deterministic fault-injection plans. It is the
// seeded half of the failure domain: a spec may leave event targets
// unassigned ("crash@t=500" — crash *someone*), and Resolve picks the
// victims through internal/frand so the same (spec, seed, N) always
// yields the same plan, bit for bit, on every host. The package is in
// the finitelint deterministic set — no wall clock, no global rand — so
// a chaos run is reproducible evidence: the simulator replays the exact
// schedule the live farm suffered, and a failing chaos test names a
// seed that fails everywhere.
//
// The package only plans; execution belongs to the engines. internal/sim
// applies events on model time inside the event loop, internal/lb's
// RunChurn applies them on the wall clock scaled by the farm's mean
// service time.
package chaos

import (
	"fmt"

	"finitelb/internal/frand"
	"finitelb/internal/workload"
)

// chaosStream salts the frand seed so victim picks are independent of
// any simulation stream derived from the same seed.
const chaosStream = 0x6368616f73 // "chaos"

// Resolve assigns a target server to every unassigned event of c,
// deterministically in (c, seed, n), and validates the schedule against
// a farm of n servers. Victims are drawn uniformly from the eligible
// set at the event's position in the schedule: crash/leave pick among
// servers currently up, restore picks among servers currently down,
// slow/stall pick among servers currently up. Resolve rejects schedules
// that reference servers outside [0, n), down a server twice without a
// restore, restore a server that is up, or leave the farm with no
// server up — the engines assume at least one live server at all times.
//
// The returned slice is a fresh copy sorted by time; c is not modified.
func Resolve(c *workload.Churn, seed uint64, n int) ([]workload.ChurnEvent, error) {
	if c == nil || len(c.Events) == 0 {
		return nil, nil
	}
	if n < 1 {
		return nil, fmt.Errorf("chaos: need n ≥ 1 servers, got %d", n)
	}
	rng := frand.New(seed, chaosStream)
	down := make([]bool, n)
	alive := n
	out := make([]workload.ChurnEvent, len(c.Events))
	copy(out, c.Events)
	for i := range out {
		ev := &out[i]
		if ev.Server >= n {
			return nil, fmt.Errorf("chaos: event %v targets server %d of a %d-server farm", ev, ev.Server, n)
		}
		switch ev.Kind {
		case workload.ChurnCrash, workload.ChurnLeave:
			if ev.Server < 0 {
				ev.Server = pick(rng, down, false)
			}
			if ev.Server < 0 || down[ev.Server] {
				return nil, fmt.Errorf("chaos: event %v has no up server to take down", ev)
			}
			if alive == 1 {
				return nil, fmt.Errorf("chaos: event %v would down the last live server", ev)
			}
			down[ev.Server] = true
			alive--
		case workload.ChurnRestore:
			if ev.Server < 0 {
				ev.Server = pick(rng, down, true)
			}
			if ev.Server < 0 || !down[ev.Server] {
				return nil, fmt.Errorf("chaos: event %v has no down server to restore", ev)
			}
			down[ev.Server] = false
			alive++
		case workload.ChurnSlow, workload.ChurnStall:
			if ev.Server < 0 {
				ev.Server = pick(rng, down, false)
			}
			if ev.Server < 0 || down[ev.Server] {
				return nil, fmt.Errorf("chaos: event %v targets no up server", ev)
			}
		case workload.ChurnPause, workload.ChurnResume:
			// Dispatcher-wide; nothing to resolve.
		default:
			return nil, fmt.Errorf("chaos: event %v has unknown kind", ev)
		}
	}
	return out, nil
}

// pick draws uniformly among the servers whose down state equals want,
// or −1 when none qualifies. One rng draw per call (none when the set
// is empty), so resolution stays reproducible event for event.
func pick(rng *frand.RNG, down []bool, want bool) int {
	eligible := 0
	for _, d := range down {
		if d == want {
			eligible++
		}
	}
	if eligible == 0 {
		return -1
	}
	k := rng.IntN(eligible)
	for i, d := range down {
		if d == want {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// Storm generates a random crash/restore schedule: events alternating
// failures and recoveries at uniformly-drawn times over [0, horizon),
// never downing more than maxDown servers at once (clamped to n−1).
// The schedule is a pure function of (seed, n, events, horizon,
// maxDown) and always passes Resolve with the same seed. It is the
// stock generator behind chaos soak tests: one uint64 names an entire
// failure scenario.
func Storm(seed uint64, n, events int, horizon float64, maxDown int) *workload.Churn {
	if n < 2 || events < 1 || !(horizon > 0) {
		return nil
	}
	if maxDown >= n {
		maxDown = n - 1
	}
	if maxDown < 1 {
		maxDown = 1
	}
	rng := frand.New(seed, chaosStream+1)
	c := &workload.Churn{}
	downCnt := 0
	for i := 0; i < events; i++ {
		t := rng.Float64() * horizon
		kind := workload.ChurnCrash
		// Crash while capacity to fail remains; otherwise restore. A fair
		// coin interleaves the two in the middle of the range.
		switch {
		case downCnt == 0:
			kind = workload.ChurnCrash
		case downCnt >= maxDown:
			kind = workload.ChurnRestore
		case rng.IntN(2) == 0:
			kind = workload.ChurnRestore
		}
		if kind == workload.ChurnCrash {
			downCnt++
		} else {
			downCnt--
		}
		c.Events = append(c.Events, workload.ChurnEvent{Kind: kind, T: t, Server: -1})
	}
	// Sorting by time can reorder crash/restore pairs; rebalance so a
	// restore never precedes its crash: walk the sorted order and flip
	// events that would underflow or overflow the down set.
	sortByTime(c.Events)
	downCnt = 0
	for i := range c.Events {
		switch {
		case c.Events[i].Kind == workload.ChurnRestore && downCnt == 0:
			c.Events[i].Kind = workload.ChurnCrash
			downCnt++
		case c.Events[i].Kind == workload.ChurnCrash && downCnt >= maxDown:
			c.Events[i].Kind = workload.ChurnRestore
			downCnt--
		case c.Events[i].Kind == workload.ChurnCrash:
			downCnt++
		default:
			downCnt--
		}
	}
	return c
}

// sortByTime is an insertion sort (schedules are tiny; avoids pulling
// package sort into the deterministic set for a dozen elements).
func sortByTime(evs []workload.ChurnEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].T < evs[j-1].T; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
