package chaos

import (
	"testing"

	"finitelb/internal/workload"
)

// TestResolveDeterminism is the CI chaos-determinism gate (-short safe):
// the same (spec, seed, n) must resolve to an identical injection
// schedule, and a different seed must pick different victims.
func TestResolveDeterminism(t *testing.T) {
	c, err := workload.ParseChurn("churn:crash@t=100,crash@t=200,restore@t=500,slow@t=600@f=4,restore@t=900")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Resolve(c, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(c, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := range a {
		if a[i].Server < 0 || a[i].Server >= 8 {
			t.Errorf("event %d left unresolved: %v", i, a[i])
		}
	}
	// Different seeds must (for this schedule over 8 servers) disagree on
	// at least one victim.
	diverged := false
	for seed := uint64(1); seed <= 16 && !diverged; seed++ {
		d, err := Resolve(c, seed, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if d[i].Server != a[i].Server {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("16 different seeds all picked the same victims")
	}
	// Explicit assignments survive resolution untouched.
	c2, err := workload.ParseChurn("crash@t=1@s=5,restore@t=2@s=5")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(c2, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Server != 5 || r[1].Server != 5 {
		t.Errorf("explicit servers rewritten: %v", r)
	}
}

func TestResolveTracksMembership(t *testing.T) {
	// With n=2 the resolver must restore the crashed server (only down
	// candidate) and refuse to crash the last one standing.
	c, _ := workload.ParseChurn("crash@t=1,restore@t=2,crash@t=3")
	r, err := Resolve(c, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r[1].Server != r[0].Server {
		t.Errorf("restore picked %d, want the crashed server %d", r[1].Server, r[0].Server)
	}

	for _, spec := range []string{
		"crash@t=1,crash@t=2",            // would down both of n=2
		"crash@t=1@s=0,crash@t=2@s=0",    // double-crash same server
		"restore@t=1",                    // nothing down to restore
		"crash@t=1@s=9",                  // out of range for n=2
		"slow@t=1@s=0@f=2,crash@t=0@s=0", // (sorted) crash then slow on the downed server...
	} {
		c, err := workload.ParseChurn(spec)
		if err != nil {
			t.Fatalf("spec %q failed to parse: %v", spec, err)
		}
		if _, err := Resolve(c, 1, 2); err == nil {
			t.Errorf("Resolve accepted invalid schedule %q", spec)
		}
	}
}

func TestResolveNoChurn(t *testing.T) {
	if evs, err := Resolve(nil, 1, 4); evs != nil || err != nil {
		t.Errorf("Resolve(nil) = %v, %v", evs, err)
	}
	if evs, err := Resolve(&workload.Churn{}, 1, 4); evs != nil || err != nil {
		t.Errorf("Resolve(empty) = %v, %v", evs, err)
	}
}

func TestStorm(t *testing.T) {
	const seed, n, events, horizon = 11, 6, 20, 1000.0
	a := Storm(seed, n, events, horizon, 2)
	b := Storm(seed, n, events, horizon, 2)
	if a.String() != b.String() {
		t.Fatalf("same seed, different storms:\n%s\n%s", a, b)
	}
	if len(a.Events) != events {
		t.Fatalf("storm has %d events, want %d", len(a.Events), events)
	}
	// A storm must resolve cleanly with its own seed: in particular the
	// running down-count never exceeds maxDown or goes negative, and
	// times are sorted within the horizon.
	r, err := Resolve(a, seed, n)
	if err != nil {
		t.Fatalf("storm does not resolve: %v", err)
	}
	for i, ev := range r {
		if ev.T < 0 || ev.T >= horizon {
			t.Errorf("event %d out of horizon: %v", i, ev)
		}
		if i > 0 && ev.T < r[i-1].T {
			t.Errorf("events unsorted at %d: %v after %v", i, ev, r[i-1])
		}
	}
	if c := Storm(seed+1, n, events, horizon, 2); c.String() == a.String() {
		t.Error("different seeds generated identical storms")
	}
	if Storm(seed, 1, events, horizon, 2) != nil {
		t.Error("storm over a 1-server farm should be nil")
	}
}
