package statespace

import (
	"fmt"
	"sort"
)

// Patterns enumerates all δ-patterns of the truncated space S for N servers
// and threshold T: vectors δ1 ≥ δ2 ≥ … ≥ δN = 0 with δ1 ≤ T. Their count is
// C(N+T−1, T), the per-block state count of the paper's QBD partition.
// Patterns are produced in a fixed deterministic order shared by every
// caller, which is what the block alignment of the QBD construction needs.
func Patterns(n, t int) []State {
	if n < 1 || t < 0 {
		panic(fmt.Sprintf("statespace: invalid Patterns(%d, %d)", n, t))
	}
	var out []State
	cur := make(State, n)
	var rec func(pos, cap int)
	rec = func(pos, cap int) {
		if pos < 0 {
			out = append(out, cur.Clone())
			return
		}
		// Build from the tail: position N−1 is fixed at 0; each earlier
		// position ranges from its successor's value up to T.
		lo := 0
		if pos < n-1 {
			lo = cur[pos+1]
		}
		for v := lo; v <= cap; v++ {
			cur[pos] = v
			rec(pos-1, cap)
		}
	}
	cur[n-1] = 0
	if n == 1 {
		return []State{cur.Clone()}
	}
	rec(n-2, t)
	return out
}

// StatesWithTotal enumerates the states of S (diff ≤ t) holding exactly
// total jobs, in lexicographic order of the sorted vector.
func StatesWithTotal(n, t, total int) []State {
	var out []State
	for _, p := range Patterns(n, t) {
		rem := total - p.Total()
		if rem < 0 || rem%n != 0 {
			continue
		}
		out = append(out, p.ShiftUp(rem/n))
	}
	sortStates(out)
	return out
}

// EnumTruncated enumerates all states of S (diff ≤ t) with at most maxTotal
// jobs, ordered first by total, then lexicographically — the block-friendly
// ordering of Section IV.
func EnumTruncated(n, t, maxTotal int) []State {
	var out []State
	for total := 0; total <= maxTotal; total++ {
		out = append(out, StatesWithTotal(n, t, total)...)
	}
	return out
}

// EnumCapped enumerates all sorted states with per-queue cap K (m1 ≤ K),
// i.e. the full untruncated SQ(d) space clipped for numerical solution of
// the exact model. States are ordered by total, then lexicographically.
func EnumCapped(n, k int) []State {
	var out []State
	cur := make(State, n)
	var rec func(pos, capv int)
	rec = func(pos, capv int) {
		if pos == n {
			out = append(out, cur.Clone())
			return
		}
		for v := 0; v <= capv; v++ {
			cur[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, k)
	byTotal := func(a, b State) bool {
		ta, tb := a.Total(), b.Total()
		if ta != tb {
			return ta < tb
		}
		return lexLess(a, b)
	}
	sortStatesBy(out, byTotal)
	return out
}

// BlockStates returns the states of block B_q of the paper's partition:
// those with (N−1)T + qN < #m ≤ (N−1)T + (q+1)N. Exactly one state per
// δ-pattern, in pattern order, so that the i-th state of every block has
// the i-th pattern — the alignment the QBD construction relies on.
func BlockStates(n, t, q int) []State {
	if q < 0 {
		panic("statespace: negative block index")
	}
	lo := (n-1)*t + q*n // exclusive
	out := make([]State, 0, len(Patterns(n, t)))
	for _, p := range Patterns(n, t) {
		// Unique shift c with lo < p.Total() + c·n ≤ lo + n.
		pt := p.Total()
		c := (lo + n - pt) / n
		if pt+c*n <= lo {
			c++
		}
		if c < 0 {
			panic(fmt.Sprintf("statespace: block %d shift negative for pattern %v", q, p))
		}
		out = append(out, p.ShiftUp(c))
	}
	return out
}

// BoundaryStates returns the boundary block B_{≤(N−1)T} of Eq. (8): all
// states of S with #m ≤ (N−1)T, ordered by total then lexicographically.
func BoundaryStates(n, t int) []State {
	return EnumTruncated(n, t, (n-1)*t)
}

// BlockOf returns the block index q ≥ 0 of a non-boundary total, or −1 for
// boundary totals (#m ≤ (N−1)T).
func BlockOf(n, t, total int) int {
	b := (n - 1) * t
	if total <= b {
		return -1
	}
	return (total - b - 1) / n
}

// Index maps state keys to dense indices for matrix assembly.
type Index struct {
	states []State
	pos    map[string]int
}

// NewIndex builds an index over the given states. Duplicate states panic:
// they always indicate an enumeration bug.
func NewIndex(states []State) *Index {
	ix := &Index{states: states, pos: make(map[string]int, len(states))}
	for i, s := range states {
		k := s.Key()
		if _, dup := ix.pos[k]; dup {
			panic(fmt.Sprintf("statespace: duplicate state %v in index", s))
		}
		ix.pos[k] = i
	}
	return ix
}

// Len returns the number of indexed states.
func (ix *Index) Len() int { return len(ix.states) }

// States returns the indexed states in order. The slice is shared; callers
// must not modify it.
func (ix *Index) States() []State { return ix.states }

// At returns the i-th state.
func (ix *Index) At(i int) State { return ix.states[i] }

// Of returns the index of s and whether it is present.
func (ix *Index) Of(s State) (int, bool) {
	i, ok := ix.pos[s.Key()]
	return i, ok
}

// Binomial returns C(n, k) as a float64, 0 when k < 0 or k > n. Exact for
// the modest arguments used by SQ(d) rates (n ≤ a few hundred).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// BinomialInt returns C(n, k) as an int64 for small arguments, useful for
// exact block-size assertions.
func BinomialInt(n, k int) int64 {
	return int64(Binomial(n, k) + 0.5)
}

func lexLess(a, b State) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sortStates(s []State) { sortStatesBy(s, lexLess) }

func sortStatesBy(s []State, less func(a, b State) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}
