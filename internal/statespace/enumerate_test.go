package statespace

import (
	"testing"
)

func TestPatternsCountMatchesBinomial(t *testing.T) {
	// The paper: each QBD block has C(N+T−1, T) states, one per pattern.
	tests := []struct{ n, t int }{
		{2, 1}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {6, 3}, {12, 3}, {1, 5},
	}
	for _, tt := range tests {
		got := len(Patterns(tt.n, tt.t))
		want := int(BinomialInt(tt.n+tt.t-1, tt.t))
		if got != want {
			t.Errorf("Patterns(%d,%d) count = %d, want C(%d,%d) = %d",
				tt.n, tt.t, got, tt.n+tt.t-1, tt.t, want)
		}
	}
}

func TestPatternsShape(t *testing.T) {
	for _, p := range Patterns(4, 2) {
		if p[len(p)-1] != 0 {
			t.Errorf("pattern %v does not end at 0", p)
		}
		if p[0] > 2 {
			t.Errorf("pattern %v exceeds T=2", p)
		}
		if _, err := NewState(p); err != nil {
			t.Errorf("pattern %v not a valid state: %v", p, err)
		}
	}
}

func TestPatternsN3T2Explicit(t *testing.T) {
	want := map[string]bool{
		"(0,0,0)": true, "(1,0,0)": true, "(1,1,0)": true,
		"(2,0,0)": true, "(2,1,0)": true, "(2,2,0)": true,
	}
	got := Patterns(3, 2)
	if len(got) != len(want) {
		t.Fatalf("Patterns(3,2) = %v, want 6 patterns", got)
	}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected pattern %v", p)
		}
	}
}

func TestStatesWithTotal(t *testing.T) {
	// N=3, T=2, total=5: shifted patterns with matching residue.
	got := StatesWithTotal(3, 2, 5)
	want := map[string]bool{"(2,2,1)": true, "(3,1,1)": true}
	if len(got) != len(want) {
		t.Fatalf("StatesWithTotal(3,2,5) = %v", got)
	}
	for _, s := range got {
		if !want[s.String()] {
			t.Errorf("unexpected state %v", s)
		}
		if s.Total() != 5 || s.Diff() > 2 {
			t.Errorf("state %v violates total/diff", s)
		}
	}
}

func TestBlockStatesPartition(t *testing.T) {
	const n, tt = 3, 2
	patterns := Patterns(n, tt)
	for q := 0; q < 4; q++ {
		blk := BlockStates(n, tt, q)
		if len(blk) != len(patterns) {
			t.Fatalf("block %d has %d states, want %d", q, len(blk), len(patterns))
		}
		lo, hi := (n-1)*tt+q*n, (n-1)*tt+(q+1)*n
		for i, s := range blk {
			if tot := s.Total(); tot <= lo || tot > hi {
				t.Errorf("block %d state %v total %d outside (%d, %d]", q, s, tot, lo, hi)
			}
			if !s.Pattern().Equal(patterns[i]) {
				t.Errorf("block %d position %d has pattern %v, want %v", q, i, s.Pattern(), patterns[i])
			}
			if s.Diff() > tt {
				t.Errorf("block state %v exceeds T", s)
			}
		}
	}
}

// TestBlockShiftBijection verifies the paper's Eq. (9) premise: adding one
// job to every queue maps block q exactly onto block q+1, position-wise.
func TestBlockShiftBijection(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{3, 2}, {3, 3}, {4, 2}, {6, 3}} {
		b1 := BlockStates(cfg.n, cfg.t, 1)
		b2 := BlockStates(cfg.n, cfg.t, 2)
		for i := range b1 {
			if !b1[i].ShiftUp(1).Equal(b2[i]) {
				t.Errorf("N=%d T=%d: block1[%d]+1 = %v, block2[%d] = %v",
					cfg.n, cfg.t, i, b1[i].ShiftUp(1), i, b2[i])
			}
		}
	}
}

// TestNonBoundaryAllBusy verifies the structural fact the QBD regularity
// rests on: every state beyond the boundary block has no idle server.
func TestNonBoundaryAllBusy(t *testing.T) {
	for _, cfg := range []struct{ n, t int }{{3, 2}, {4, 3}, {6, 2}} {
		for q := 0; q < 3; q++ {
			for _, s := range BlockStates(cfg.n, cfg.t, q) {
				if s.Busy() != cfg.n {
					t.Errorf("N=%d T=%d block %d: state %v has an idle server", cfg.n, cfg.t, q, s)
				}
			}
		}
	}
}

func TestBoundaryStates(t *testing.T) {
	const n, tt = 3, 2
	bnd := BoundaryStates(n, tt)
	maxTotal := (n - 1) * tt
	seen := map[string]bool{}
	for _, s := range bnd {
		if s.Total() > maxTotal {
			t.Errorf("boundary state %v exceeds total %d", s, maxTotal)
		}
		if s.Diff() > tt {
			t.Errorf("boundary state %v exceeds diff %d", s, tt)
		}
		seen[s.Key()] = true
	}
	// The paper: the largest boundary state with mN = 0 is (T,...,T,0).
	top := MustState(2, 2, 0)
	if !seen[top.Key()] {
		t.Errorf("boundary does not contain %v", top)
	}
	// Every state of S with mN = 0 is in the boundary.
	for total := 0; total <= maxTotal; total++ {
		for _, s := range StatesWithTotal(n, tt, total) {
			if s[n-1] == 0 && !seen[s.Key()] {
				t.Errorf("state %v with empty queue missing from boundary", s)
			}
		}
	}
}

func TestBlockOf(t *testing.T) {
	const n, tt = 3, 2 // boundary ≤ 4
	tests := []struct{ total, want int }{
		{0, -1}, {4, -1}, {5, 0}, {7, 0}, {8, 1}, {10, 1}, {11, 2},
	}
	for _, c := range tests {
		if got := BlockOf(n, tt, c.total); got != c.want {
			t.Errorf("BlockOf(total=%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

func TestEnumCapped(t *testing.T) {
	got := EnumCapped(2, 2)
	// All sorted pairs with entries ≤ 2: (0,0),(1,0),(1,1),(2,0),(2,1),(2,2).
	if len(got) != 6 {
		t.Fatalf("EnumCapped(2,2) = %v, want 6 states", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Total() > got[i].Total() {
			t.Errorf("EnumCapped not ordered by total: %v before %v", got[i-1], got[i])
		}
	}
	// Count identity: number of sorted states with cap K equals C(K+N, N).
	if n := len(EnumCapped(3, 4)); n != int(BinomialInt(7, 3)) {
		t.Errorf("EnumCapped(3,4) count = %d, want %d", n, BinomialInt(7, 3))
	}
}

func TestIndexRoundTrip(t *testing.T) {
	states := EnumTruncated(3, 2, 10)
	ix := NewIndex(states)
	if ix.Len() != len(states) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(states))
	}
	for i, s := range states {
		j, ok := ix.Of(s)
		if !ok || j != i {
			t.Fatalf("Of(%v) = %d,%v, want %d,true", s, j, ok, i)
		}
		if !ix.At(i).Equal(s) {
			t.Fatalf("At(%d) = %v, want %v", i, ix.At(i), s)
		}
	}
	if _, ok := ix.Of(MustState(9, 9, 9)); ok {
		t.Error("Of reported a state that was never indexed")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
		{50, 25, 126410606437752}, {250, 2, 31125},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	// Paper identity: Σ_{i=d}^{N} C(i−1, d−1) = C(N, d).
	for _, c := range []struct{ n, d int }{{6, 2}, {10, 3}, {12, 5}} {
		var sum float64
		for i := c.d; i <= c.n; i++ {
			sum += Binomial(i-1, c.d-1)
		}
		if want := Binomial(c.n, c.d); sum != want {
			t.Errorf("Σ C(i−1,%d−1) for N=%d = %v, want %v", c.d, c.n, sum, want)
		}
	}
}
