package statespace

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewStateValidation(t *testing.T) {
	tests := []struct {
		name    string
		in      []int
		wantErr bool
	}{
		{name: "valid sorted", in: []int{3, 2, 2, 0}},
		{name: "single", in: []int{5}},
		{name: "all zero", in: []int{0, 0, 0}},
		{name: "empty", in: nil, wantErr: true},
		{name: "unsorted", in: []int{1, 2}, wantErr: true},
		{name: "negative", in: []int{2, -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewState(tt.in)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewState(%v) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
		})
	}
}

func TestStateAccessors(t *testing.T) {
	s := MustState(4, 2, 2, 0)
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if s.Total() != 8 {
		t.Errorf("Total = %d, want 8", s.Total())
	}
	if s.Diff() != 4 {
		t.Errorf("Diff = %d, want 4", s.Diff())
	}
	if s.Busy() != 3 {
		t.Errorf("Busy = %d, want 3", s.Busy())
	}
	if s.WaitingJobs() != 5 { // (4−1) + (2−1) + (2−1) + 0
		t.Errorf("WaitingJobs = %d, want 5", s.WaitingJobs())
	}
	if got := s.String(); got != "(4,2,2,0)" {
		t.Errorf("String = %q", got)
	}
}

func TestGroups(t *testing.T) {
	s := MustState(4, 2, 2, 0)
	gs := s.Groups()
	want := []Group{{Level: 4, Start: 0, End: 0}, {Level: 2, Start: 1, End: 2}, {Level: 0, Start: 3, End: 3}}
	if len(gs) != len(want) {
		t.Fatalf("Groups = %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, gs[i], want[i])
		}
	}
	if g := s.GroupOf(2); g != (Group{Level: 2, Start: 1, End: 2}) {
		t.Errorf("GroupOf(2) = %v", g)
	}
	if g := MustState(3, 3, 3).GroupOf(1); g.Size() != 3 {
		t.Errorf("GroupOf on full tie = %v, want size 3", g)
	}
}

func TestArrivalDepartureConventions(t *testing.T) {
	s := MustState(3, 2, 2, 1)
	mid := s.GroupOf(1)
	// Arrival increments the group's first index (paper convention 1).
	if got := s.AfterArrival(mid); !got.Equal(MustState(3, 3, 2, 1)) {
		t.Errorf("AfterArrival = %v, want (3,3,2,1)", got)
	}
	// Departure decrements the group's last index (paper convention 2).
	if got := s.AfterDeparture(mid); !got.Equal(MustState(3, 2, 1, 1)) {
		t.Errorf("AfterDeparture = %v, want (3,2,1,1)", got)
	}
}

func TestArrivalDepartureKeepSortedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		s := randomState(rng, 2+rng.IntN(6), 5)
		for _, g := range s.Groups() {
			if _, err := NewState(s.AfterArrival(g)); err != nil {
				return false
			}
			if g.Level > 0 {
				if _, err := NewState(s.AfterDeparture(g)); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDepartureFromIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AfterDeparture from idle group did not panic")
		}
	}()
	s := MustState(1, 0)
	s.AfterDeparture(s.GroupOf(1))
}

func TestPatternShift(t *testing.T) {
	s := MustState(5, 3, 3, 2)
	p := s.Pattern()
	if !p.Equal(MustState(3, 1, 1, 0)) {
		t.Errorf("Pattern = %v, want (3,1,1,0)", p)
	}
	if !p.ShiftUp(2).Equal(MustState(5, 3, 3, 2)) {
		t.Errorf("ShiftUp(2) = %v", p.ShiftUp(2))
	}
}

func TestLeq(t *testing.T) {
	tests := []struct {
		a, b State
		want bool
	}{
		{MustState(1, 1, 1), MustState(3, 0, 0), true},  // balanced ⪯ unbalanced
		{MustState(3, 0, 0), MustState(1, 1, 1), false}, // same totals, reverse
		{MustState(1, 0, 0), MustState(1, 1, 0), true},  // fewer jobs ⪯ more
		{MustState(2, 2, 2), MustState(2, 2, 2), true},  // reflexive
		{MustState(2, 1, 0), MustState(3, 1, 1), true},  // domination everywhere
		{MustState(0, 0, 0), MustState(5, 5, 5), true},  // empty ⪯ anything
		{MustState(2, 2, 0), MustState(3, 0, 0), false}, // partial sums cross
	}
	for _, tt := range tests {
		if got := Leq(tt.a, tt.b); got != tt.want {
			t.Errorf("Leq(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestLeqGeneratorPairs verifies Eq. (6)'s generating moves: for any state,
// m ⪯ m + e_N and m ⪯ m + e_i − e_{i+1} whenever the latter is a valid
// state, mirroring the definition of the set P_m.
func TestLeqGeneratorPairs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 22))
		s := randomState(rng, 2+rng.IntN(5), 4)
		n := s.N()
		// m + e_N as a sorted multiset: add one job to a shortest queue.
		up := s.Clone()
		up[n-1]++
		SortDesc(up)
		if !Leq(s, up) {
			return false
		}
		for i := 0; i+1 < n; i++ {
			if s[i+1] == 0 {
				continue
			}
			shifted := s.Clone()
			shifted[i]++
			shifted[i+1]--
			SortDesc(shifted)
			if !Leq(s, shifted) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]State{}
	for _, s := range EnumTruncated(4, 3, 20) {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %v and %v", prev, s)
		}
		seen[k] = s
	}
}

func TestSortDesc(t *testing.T) {
	got := SortDesc([]int{1, 3, 2, 0})
	if !got.Equal(MustState(3, 2, 1, 0)) {
		t.Errorf("SortDesc = %v", got)
	}
}

func randomState(rng *rand.Rand, n, maxLevel int) State {
	m := make([]int, n)
	for i := range m {
		m[i] = rng.IntN(maxLevel + 1)
	}
	return SortDesc(m)
}
