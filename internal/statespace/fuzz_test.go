package statespace

import (
	"testing"
)

// FuzzNewState: NewState must accept exactly the sorted nonnegative
// vectors and never panic on arbitrary input.
func FuzzNewState(f *testing.F) {
	f.Add([]byte{3, 2, 1})
	f.Add([]byte{0})
	f.Add([]byte{5, 5, 5, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 16 {
			t.Skip()
		}
		m := make([]int, len(raw))
		sorted := true
		for i, b := range raw {
			m[i] = int(b % 32)
			if i > 0 && m[i-1] < m[i] {
				sorted = false
			}
		}
		s, err := NewState(m)
		if sorted && err != nil {
			t.Fatalf("NewState(%v) rejected a sorted vector: %v", m, err)
		}
		if !sorted && err == nil {
			t.Fatalf("NewState(%v) accepted an unsorted vector", m)
		}
		if err == nil && s.Total() < 0 {
			t.Fatalf("negative total for %v", s)
		}
	})
}

// FuzzLeqPartialOrder: Leq must be a partial order on equal-length states
// — reflexive, antisymmetric, and consistent with SortDesc canonization.
func FuzzLeqPartialOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0, 0}, []byte{9, 9})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		n := len(rawA)
		if n == 0 || n > 10 || len(rawB) != n {
			t.Skip()
		}
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = int(rawA[i] % 16)
			b[i] = int(rawB[i] % 16)
		}
		sa, sb := SortDesc(a), SortDesc(b)
		if !Leq(sa, sa) || !Leq(sb, sb) {
			t.Fatal("Leq not reflexive")
		}
		if Leq(sa, sb) && Leq(sb, sa) {
			// Antisymmetry: mutual domination forces equal partial sums,
			// hence equal sorted vectors.
			if !sa.Equal(sb) {
				t.Fatalf("antisymmetry violated: %v vs %v", sa, sb)
			}
		}
	})
}

// FuzzGroupsRoundTrip: group decomposition must tile the state exactly and
// the arrival/departure conventions must keep vectors sorted.
func FuzzGroupsRoundTrip(f *testing.F) {
	f.Add([]byte{4, 4, 2, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 12 {
			t.Skip()
		}
		m := make([]int, len(raw))
		for i, b := range raw {
			m[i] = int(b % 8)
		}
		s := SortDesc(m)
		covered := 0
		for _, g := range s.Groups() {
			for i := g.Start; i <= g.End; i++ {
				if s[i] != g.Level {
					t.Fatalf("group %v does not match state %v", g, s)
				}
				covered++
			}
			if _, err := NewState(s.AfterArrival(g)); err != nil {
				t.Fatalf("AfterArrival broke sorting: %v", err)
			}
			if g.Level > 0 {
				if _, err := NewState(s.AfterDeparture(g)); err != nil {
					t.Fatalf("AfterDeparture broke sorting: %v", err)
				}
			}
		}
		if covered != len(s) {
			t.Fatalf("groups cover %d of %d positions in %v", covered, len(s), s)
		}
	})
}
