// Package statespace implements the ordered queue-length state space of the
// SQ(d) models from Godtschalk & Ciucu (ICDCS 2016): states are
// queue-length vectors sorted in non-increasing order, the truncated space
// S caps the longest/shortest difference at T, δ-patterns identify states
// up to a uniform level shift, and the precedence relation of Eq. (5)
// orders states by partial sums.
package statespace

import (
	"fmt"
	"sort"
	"strings"
)

// State is a queue-length vector sorted in non-increasing order:
// s[0] is the longest queue, s[len(s)-1] the shortest (paper Eq. (1)).
type State []int

// NewState validates and copies m into a State. It returns an error if m is
// empty, contains a negative entry, or is not sorted non-increasingly.
func NewState(m []int) (State, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("statespace: empty state")
	}
	for i, v := range m {
		if v < 0 {
			return nil, fmt.Errorf("statespace: negative queue length %d at position %d", v, i)
		}
		if i > 0 && m[i-1] < v {
			return nil, fmt.Errorf("statespace: state %v not sorted non-increasingly at position %d", m, i)
		}
	}
	return State(append([]int(nil), m...)), nil
}

// MustState is NewState that panics on error, for tests and literals.
func MustState(m ...int) State {
	s, err := NewState(m)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of servers.
func (s State) N() int { return len(s) }

// Total returns #m, the total number of jobs in the system.
func (s State) Total() int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// Diff returns m1 − mN, the spread between longest and shortest queue.
func (s State) Diff() int { return s[0] - s[len(s)-1] }

// Busy returns the number of non-empty queues.
func (s State) Busy() int {
	n := 0
	for _, v := range s {
		if v > 0 {
			n++
		}
	}
	return n
}

// WaitingJobs returns Σ_i max(m_i − 1, 0), the number of jobs not in
// service, which drives the paper's delay metric.
func (s State) WaitingJobs() int {
	w := 0
	for _, v := range s {
		if v > 1 {
			w += v - 1
		}
	}
	return w
}

// Clone returns a copy of s.
func (s State) Clone() State { return append(State(nil), s...) }

// Key returns a compact map key unique among states of the same length.
func (s State) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 2)
	for _, v := range s {
		// Queue lengths in this package stay far below 1<<15; encode as two
		// bytes so keys remain unique even for deep boundary exploration.
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v))
	}
	return b.String()
}

// String renders the state as (m1,m2,...,mN).
func (s State) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Equal reports whether s and t are identical vectors.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range s {
		if v != t[i] {
			return false
		}
	}
	return true
}

// Group is a maximal run of equal queue lengths: queues Start..End
// (inclusive, 0-based) all hold Level jobs.
type Group struct {
	Level      int
	Start, End int
}

// Size returns the number of queues in the group.
func (g Group) Size() int { return g.End - g.Start + 1 }

// Groups decomposes s into its tie groups, longest level first.
func (s State) Groups() []Group {
	var gs []Group
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[i] {
			j++
		}
		gs = append(gs, Group{Level: s[i], Start: i, End: j})
		i = j + 1
	}
	return gs
}

// GroupOf returns the tie group containing queue index i.
func (s State) GroupOf(i int) Group {
	start, end := i, i
	for start > 0 && s[start-1] == s[i] {
		start--
	}
	for end+1 < len(s) && s[end+1] == s[i] {
		end++
	}
	return Group{Level: s[i], Start: start, End: end}
}

// AfterArrival returns the state reached when a job joins the tie group g:
// by the paper's first convention the first queue of the group (index
// g.Start) is incremented, which keeps the vector sorted.
func (s State) AfterArrival(g Group) State {
	t := s.Clone()
	t[g.Start]++
	return t
}

// AfterDeparture returns the state reached when a job departs from tie
// group g: by the paper's second convention the last queue of the group
// (index g.End) is decremented, which keeps the vector sorted. It panics if
// the group is idle (level 0).
func (s State) AfterDeparture(g Group) State {
	if g.Level == 0 {
		panic("statespace: departure from an idle group")
	}
	t := s.Clone()
	t[g.End]--
	return t
}

// Pattern returns δ = m − mN·1, the state's shape up to a uniform level
// shift. δ is sorted non-increasingly with δ[N−1] = 0.
func (s State) Pattern() State {
	min := s[len(s)-1]
	p := make(State, len(s))
	for i, v := range s {
		p[i] = v - min
	}
	return p
}

// ShiftUp returns s + k·1 (every queue k levels higher); k may be negative
// as long as the result stays non-negative.
func (s State) ShiftUp(k int) State {
	t := make(State, len(s))
	for i, v := range s {
		if v+k < 0 {
			panic(fmt.Sprintf("statespace: ShiftUp(%d) of %v goes negative", k, s))
		}
		t[i] = v + k
	}
	return t
}

// Leq reports whether (s, t) is a precedence pair in the sense of Eq. (5):
// Σ_{i≤j} s_i ≤ Σ_{i≤j} t_i for every j. Intuitively s is "more
// preferable": fewer jobs in the longest j queues for every j.
func Leq(s, t State) bool {
	if len(s) != len(t) {
		panic("statespace: Leq on states of different sizes")
	}
	ps, pt := 0, 0
	for i := range s {
		ps += s[i]
		pt += t[i]
		if ps > pt {
			return false
		}
	}
	return true
}

// SortDesc sorts a raw vector in place in non-increasing order and returns
// it as a State. Used by simulators that track unsorted per-server queues.
func SortDesc(m []int) State {
	sort.Sort(sort.Reverse(sort.IntSlice(m)))
	return State(m)
}
