package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConverge is returned when an iterative method fails to converge
// within its iteration budget.
var ErrNoConverge = errors.New("mat: iteration did not converge")

// SpectralRadius estimates the spectral radius of a nonnegative square
// matrix by power iteration on a strictly positive start vector. It is used
// to verify that rate matrices R satisfy sp(R) < 1 before forming geometric
// sums. For matrices with sp(R)=0 (nilpotent) the iteration converges to 0.
func SpectralRadius(a *Dense, tol float64, maxIter int) (float64, error) {
	if a.rows != a.cols {
		panic("mat: SpectralRadius requires a square matrix")
	}
	n := a.rows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	prev := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		y := a.MulVec(x)
		var norm float64
		for _, v := range y {
			if av := math.Abs(v); av > norm {
				norm = av
			}
		}
		if norm == 0 {
			return 0, nil
		}
		for i := range y {
			y[i] /= norm
		}
		x = y
		if math.Abs(norm-prev) <= tol*(1+norm) {
			return norm, nil
		}
		prev = norm
	}
	return prev, fmt.Errorf("spectral radius estimate %.6g after %d iterations: %w", prev, maxIter, ErrNoConverge)
}

// GeometricInv returns (I−R)⁻¹ for a matrix with sp(R) < 1.
func GeometricInv(r *Dense) (*Dense, error) {
	if r.rows != r.cols {
		panic("mat: GeometricInv requires a square matrix")
	}
	return Inverse(Identity(r.rows).Sub(r))
}

// GeometricVecSum returns x·(I−R)⁻¹, the sum of the row-vector series
// Σ_{k≥0} x·Rᵏ, by a left solve rather than an explicit inverse.
func GeometricVecSum(x []float64, r *Dense) ([]float64, error) {
	return SolveLeft(Identity(r.rows).Sub(r), x)
}

// GeometricWeightedVecSum returns x·Σ_{k≥0} k·Rᵏ = x·R·(I−R)⁻², used for
// level-weighted moments of matrix-geometric stationary distributions.
func GeometricWeightedVecSum(x []float64, r *Dense) ([]float64, error) {
	xr := r.VecMul(x) // x·R as a row vector
	once, err := GeometricVecSum(xr, r)
	if err != nil {
		return nil, err
	}
	return GeometricVecSum(once, r)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: dimension mismatch in Dot")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// VecSum returns the sum of the entries of x.
func VecSum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// VecScale multiplies x by s in place and returns x.
func VecScale(x []float64, s float64) []float64 {
	for i := range x {
		x[i] *= s
	}
	return x
}
