package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewCSRAssembly(t *testing.T) {
	ts := []Triplet{
		{Row: 1, Col: 0, Val: 3},
		{Row: 0, Col: 1, Val: 2},
		{Row: 0, Col: 1, Val: 5}, // duplicate: summed
		{Row: 2, Col: 2, Val: 1},
	}
	m := NewCSR(3, 3, ts)
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed)", m.NNZ())
	}
	got := map[[2]int]float64{}
	for i := 0; i < 3; i++ {
		m.RowNZ(i, func(j int, v float64) { got[[2]int{i, j}] = v })
	}
	want := map[[2]int]float64{{0, 1}: 7, {1, 0}: 3, {2, 2}: 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("entry %v = %v, want %v", k, got[k], v)
		}
	}
}

func TestCSREmptyRows(t *testing.T) {
	// Rows 0 and 2 empty; row assembly must still set rowPtr correctly.
	m := NewCSR(4, 4, []Triplet{{Row: 1, Col: 3, Val: 2}, {Row: 3, Col: 0, Val: 4}})
	x := []float64{1, 1, 1, 1}
	y := m.MulVec(x)
	want := []float64{0, 2, 0, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestCSRMatchesDenseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 2 + rng.IntN(10)
		d := randomMatrix(rng, n, n, 2)
		var ts []Triplet
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					d.Set(i, j, 0)
					continue
				}
				ts = append(ts, Triplet{Row: i, Col: j, Val: d.At(i, j)})
			}
		}
		s := NewCSR(n, n, ts)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		ys, yd := s.MulVec(x), d.MulVec(x)
		for i := range ys {
			if math.Abs(ys[i]-yd[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mm1Generator builds the truncated M/M/1 generator with arrival rate lam,
// service rate 1, and queue capacity cap, returned transposed (CSC of Q).
func mm1Generator(lam float64, cap int) *CSR {
	var ts []Triplet
	n := cap + 1
	for i := 0; i < n; i++ {
		var out float64
		if i < cap {
			ts = append(ts, Triplet{Row: i + 1, Col: i, Val: lam}) // transposed
			out += lam
		}
		if i > 0 {
			ts = append(ts, Triplet{Row: i - 1, Col: i, Val: 1})
			out++
		}
		ts = append(ts, Triplet{Row: i, Col: i, Val: -out})
	}
	return NewCSR(n, n, ts)
}

func TestStationaryGSMM1(t *testing.T) {
	const lam = 0.6
	const cap = 60
	qt := mm1Generator(lam, cap)
	pi, err := StationaryGS(qt, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated M/M/1: π_i ∝ lamⁱ.
	norm := (1 - math.Pow(lam, cap+1)) / (1 - lam)
	for i := 0; i <= cap; i++ {
		want := math.Pow(lam, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-9 {
			t.Fatalf("π[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestStationaryGSTwoState(t *testing.T) {
	// Two-state chain: rates a=2 (0→1), b=3 (1→0); π = (b, a)/(a+b).
	qt := NewCSR(2, 2, []Triplet{
		{Row: 0, Col: 0, Val: -2}, {Row: 1, Col: 0, Val: 2},
		{Row: 0, Col: 1, Val: 3}, {Row: 1, Col: 1, Val: -3},
	})
	pi, err := StationaryGS(qt, 1e-14, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.6) > 1e-10 || math.Abs(pi[1]-0.4) > 1e-10 {
		t.Errorf("π = %v, want [0.6 0.4]", pi)
	}
}

func TestStationaryGSRejectsMalformed(t *testing.T) {
	// State 1 has a zero diagonal (absorbing): must error, not hang.
	qt := NewCSR(2, 2, []Triplet{
		{Row: 0, Col: 0, Val: -1}, {Row: 1, Col: 0, Val: 1},
	})
	if _, err := StationaryGS(qt, 1e-10, 100); err == nil {
		t.Error("StationaryGS accepted a generator with an absorbing state")
	}
}
