package mat

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is a single (row, col, value) entry used to assemble sparse
// matrices. Duplicate (row, col) pairs are summed during assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR assembles a CSR matrix from triplets, summing duplicates.
func NewCSR(rows, cols int, ts []Triplet) *CSR {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", rows, cols))
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	m := &CSR{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, 0, len(ts)),
		vals:   make([]float64, 0, len(ts)),
	}
	curRow, lastCol := -1, -1
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("mat: triplet (%d,%d) out of range for %d×%d", t.Row, t.Col, rows, cols))
		}
		if t.Row == curRow && t.Col == lastCol {
			m.vals[len(m.vals)-1] += t.Val
			continue
		}
		for r := curRow + 1; r <= t.Row; r++ {
			m.rowPtr[r] = len(m.colIdx)
		}
		curRow, lastCol = t.Row, t.Col
		m.colIdx = append(m.colIdx, t.Col)
		m.vals = append(m.vals, t.Val)
	}
	for r := curRow + 1; r <= rows; r++ {
		m.rowPtr[r] = len(m.colIdx)
	}
	return m
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// RowNZ calls fn for every stored entry (col, val) of row i.
func (m *CSR) RowNZ(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// MulVec returns m·x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("mat: dimension mismatch in CSR.MulVec")
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// StationaryGS solves π·Q = 0, π·e = 1 for an irreducible CTMC generator
// supplied as qt = Qᵀ in CSR form (rows of qt are columns of Q, so each row
// of qt lists the incoming rates of one state plus its diagonal).
//
// It runs Gauss–Seidel sweeps on the fixed point
//
//	π_j = Σ_{i≠j} π_i·q_{ij} / (−q_{jj}),
//
// renormalizing every sweep, until the maximum relative change drops below
// tol. The spectral properties of irreducible generator matrices make this
// iteration convergent for the uniformizable chains used here.
func StationaryGS(qt *CSR, tol float64, maxSweeps int) ([]float64, error) {
	n := qt.rows
	if qt.cols != n {
		panic("mat: StationaryGS requires a square matrix")
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		found := false
		qt.RowNZ(j, func(i int, v float64) {
			if i == j {
				diag[j] = v
				found = true
			}
		})
		if !found || diag[j] >= 0 {
			return nil, fmt.Errorf("mat: state %d has no negative diagonal rate (absorbing or malformed generator)", j)
		}
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var maxRel float64
		for j := 0; j < n; j++ {
			var s float64
			qt.RowNZ(j, func(i int, v float64) {
				if i != j {
					s += pi[i] * v
				}
			})
			next := s / -diag[j]
			old := pi[j]
			pi[j] = next
			denom := math.Max(math.Abs(next), 1e-300)
			if rel := math.Abs(next-old) / denom; rel > maxRel {
				maxRel = rel
			}
		}
		total := VecSum(pi)
		if total <= 0 || math.IsNaN(total) {
			return nil, fmt.Errorf("mat: Gauss-Seidel produced invalid mass %v", total)
		}
		VecScale(pi, 1/total)
		if maxRel < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("stationary Gauss-Seidel after %d sweeps: %w", maxSweeps, ErrNoConverge)
}
