package mat

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("got %d×%d, want 2×2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(4).At(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !c.AlmostEqual(want, 0) {
		t.Errorf("Mul:\n%vwant:\n%v", c, want)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(8)
		a := randomMatrix(rng, n, n, 1)
		return a.Mul(Identity(n)).AlmostEqual(a, 1e-12) &&
			Identity(n).Mul(a).AlmostEqual(a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(6)
		a := randomMatrix(rng, n, n, 1)
		b := randomMatrix(rng, n, n, 1)
		c := randomMatrix(rng, n, n, 1)
		return a.Mul(b).Mul(c).AlmostEqual(a.Mul(b.Mul(c)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !got.AlmostEqual(NewDenseFrom([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Errorf("Add wrong:\n%v", got)
	}
	if got := a.Sub(a); got.MaxAbs() != 0 {
		t.Errorf("Sub(self) nonzero:\n%v", got)
	}
	if got := a.Scale(2); !got.AlmostEqual(NewDenseFrom([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale wrong:\n%v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %d×%d, want 3×2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("T()(2,1) = %v, want 6", at.At(2, 1))
	}
	if !at.T().AlmostEqual(a, 0) {
		t.Error("double transpose is not identity")
	}
}

func TestVecMulMulVec(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	x := []float64{1, 1}
	got := a.MulVec(x)
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	got = a.VecMul(x)
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", got)
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, -2}, {-3, 4}})
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v, want 4", a.MaxAbs())
	}
	if a.NormInf() != 7 {
		t.Errorf("NormInf = %v, want 7", a.NormInf())
	}
	rs := a.RowSums()
	if rs[0] != -1 || rs[1] != 1 {
		t.Errorf("RowSums = %v, want [-1 1]", rs)
	}
}

func TestLUSolve(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}})
	b := []float64{5, -2, 9}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	back := a.MulVec(x)
	for i := range b {
		if math.Abs(back[i]-b[i]) > 1e-10 {
			t.Fatalf("residual %v at %d: Ax = %v, b = %v", back[i]-b[i], i, back, b)
		}
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 1 + rng.IntN(12)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err == nil {
		t.Error("Factorize of singular matrix succeeded, want error")
	}
}

func TestInverse(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).AlmostEqual(Identity(2), 1e-12) {
		t.Errorf("A·A⁻¹ ≠ I:\n%v", a.Mul(inv))
	}
}

func TestInverseRandomProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		n := 1 + rng.IntN(10)
		a := randomDiagDominant(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).AlmostEqual(Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDet(t *testing.T) {
	a := NewDenseFrom([][]float64{{3, 8}, {4, 6}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Errorf("Det = %v, want -14", d)
	}
}

func TestSolveLeft(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 1}, {1, 3}})
	b := []float64{4, 7}
	x, err := SolveLeft(a, b)
	if err != nil {
		t.Fatal(err)
	}
	back := a.VecMul(x)
	for i := range b {
		if math.Abs(back[i]-b[i]) > 1e-12 {
			t.Fatalf("x·A = %v, want %v", back, b)
		}
	}
}

func TestSolveMatLeft(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 0}, {1, 3}})
	b := NewDenseFrom([][]float64{{4, 6}, {2, 9}})
	x, err := SolveMatLeft(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Mul(a).AlmostEqual(b, 1e-12) {
		t.Errorf("X·A ≠ B:\n%v", x.Mul(a))
	}
}

func TestSpectralRadius(t *testing.T) {
	// Stochastic matrix: spectral radius exactly 1.
	p := NewDenseFrom([][]float64{{0.5, 0.5}, {0.2, 0.8}})
	sp, err := SpectralRadius(p, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-1) > 1e-9 {
		t.Errorf("SpectralRadius(stochastic) = %v, want 1", sp)
	}
	// Strictly substochastic: radius < 1.
	q := p.Scale(0.7)
	sp, err = SpectralRadius(q, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-0.7) > 1e-9 {
		t.Errorf("SpectralRadius(0.7·stochastic) = %v, want 0.7", sp)
	}
}

func TestGeometricInv(t *testing.T) {
	r := NewDenseFrom([][]float64{{0.2, 0.1}, {0.05, 0.3}})
	inv, err := GeometricInv(r)
	if err != nil {
		t.Fatal(err)
	}
	// Compare to the truncated Neumann series Σ Rᵏ.
	sum := Identity(2)
	pow := Identity(2)
	for k := 0; k < 200; k++ {
		pow = pow.Mul(r)
		sum = sum.Add(pow)
	}
	if !inv.AlmostEqual(sum, 1e-10) {
		t.Errorf("(I−R)⁻¹ ≠ Σ Rᵏ:\n%v\nvs\n%v", inv, sum)
	}
}

func TestGeometricVecSums(t *testing.T) {
	r := NewDenseFrom([][]float64{{0.3, 0.2}, {0.1, 0.25}})
	x := []float64{1, 2}
	got, err := GeometricVecSum(x, r)
	if err != nil {
		t.Fatal(err)
	}
	// Direct series Σ x·Rᵏ.
	want := make([]float64, 2)
	cur := append([]float64(nil), x...)
	for k := 0; k < 300; k++ {
		for i := range want {
			want[i] += cur[i]
		}
		cur = r.VecMul(cur)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("GeometricVecSum = %v, want %v", got, want)
		}
	}

	gotW, err := GeometricWeightedVecSum(x, r)
	if err != nil {
		t.Fatal(err)
	}
	wantW := make([]float64, 2)
	cur = append([]float64(nil), x...)
	for k := 0; k < 300; k++ {
		for i := range wantW {
			wantW[i] += float64(k) * cur[i]
		}
		cur = r.VecMul(cur)
	}
	for i := range wantW {
		if math.Abs(gotW[i]-wantW[i]) > 1e-9 {
			t.Fatalf("GeometricWeightedVecSum = %v, want %v", gotW, wantW)
		}
	}
}

func TestDotVecHelpers(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	if s := VecSum([]float64{1, 2, 3}); s != 6 {
		t.Errorf("VecSum = %v, want 6", s)
	}
	x := VecScale([]float64{2, 4}, 0.5)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("VecScale = %v, want [1 2]", x)
	}
}

// randomMatrix returns an r×c matrix with entries uniform in [−scale, scale].
func randomMatrix(rng *rand.Rand, r, c int, scale float64) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, (rng.Float64()*2-1)*scale)
		}
	}
	return m
}

// randomDiagDominant returns a well-conditioned random square matrix.
func randomDiagDominant(rng *rand.Rand, n int) *Dense {
	m := randomMatrix(rng, n, n, 1)
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(n)+1)
	}
	return m
}

// mulNaive is the straightforward triple loop, the reference the blocked
// MulTo must agree with exactly on zero-free inputs (identical operation
// order per output element is not guaranteed, hence the tolerance below).
func mulNaive(a, b *Dense) *Dense {
	c := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// TestMulToBlockedMatchesNaive checks the cache-blocked product against the
// naive reference on random matrices spanning the tile boundaries (sizes
// below, at, and above the 64/512 block edges).
func TestMulToBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 31},
		{63, 64, 65}, {64, 64, 64}, {65, 130, 64},
		{70, 600, 9}, {5, 64, 520},
	} {
		a := randomDense(rng, dims[0], dims[1])
		b := randomDense(rng, dims[1], dims[2])
		want := mulNaive(a, b)
		got := NewDense(dims[0], dims[2])
		// Pre-dirty the destination: MulTo must overwrite, not accumulate.
		for i := range got.data {
			got.data[i] = 99
		}
		a.MulTo(got, b)
		tol := 1e-12 * float64(dims[1]) * (1 + want.MaxAbs())
		if !got.AlmostEqual(want, tol) {
			t.Errorf("%v: blocked MulTo disagrees with naive product", dims)
		}
		if alloc := a.Mul(b); !alloc.AlmostEqual(want, tol) {
			t.Errorf("%v: Mul disagrees with naive product", dims)
		}
	}
}

func TestMulToPanicsOnAliasAndShape(t *testing.T) {
	a := Identity(3)
	b := Identity(3)
	for name, fn := range map[string]func(){
		"dst aliases left":  func() { a.MulTo(a, b) },
		"dst aliases right": func() { a.MulTo(b, b) },
		"wrong dst shape":   func() { a.MulTo(NewDense(2, 3), b) },
		"inner mismatch":    func() { a.MulTo(NewDense(3, 2), NewDense(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInPlaceHelpers(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{10, 20}, {30, 40}})
	m.AddScaled(b, 0.5)
	if !m.AlmostEqual(NewDenseFrom([][]float64{{6, 12}, {18, 24}}), 0) {
		t.Errorf("AddScaled: got %v", m)
	}
	m.CopyFrom(b)
	if !m.AlmostEqual(b, 0) {
		t.Errorf("CopyFrom: got %v", m)
	}
	m.SetIdentity()
	if !m.AlmostEqual(Identity(2), 0) {
		t.Errorf("SetIdentity: got %v", m)
	}
}

// BenchmarkMulTo tracks the blocked product at the QBD block sizes that
// dominate the figure solves (56 = Fig 10c, 364 = Fig 10d).
func BenchmarkMulTo(b *testing.B) {
	for _, n := range []int{56, 364} {
		rng := rand.New(rand.NewPCG(1, 1))
		a := randomDense(rng, n, n)
		c := randomDense(rng, n, n)
		dst := NewDense(n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulTo(dst, c)
			}
		})
	}
}
