// Package mat provides the dense and sparse linear algebra needed by the
// matrix-geometric machinery: LU factorization with partial pivoting,
// linear solves on both sides, inverses, norms, power iteration, and
// stationary-distribution solvers for large sparse generators.
//
// It is deliberately small and allocation-conscious rather than general:
// everything operates on float64, matrices are dense row-major or CSR, and
// dimensions are validated eagerly with panics (programmer errors) while
// numerical failures (singularity, non-convergence) are reported as errors.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds a matrix from a slice of rows, copying the data.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic("mat: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Inc adds v to the element at row i, column j.
func (m *Dense) Inc(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of b (shapes must match).
func (m *Dense) CopyFrom(b *Dense) {
	m.sameShape(b)
	copy(m.data, b.data)
}

// SetIdentity overwrites a square m with the identity matrix.
func (m *Dense) SetIdentity() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: SetIdentity on %d×%d", m.rows, m.cols))
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// AddScaled updates m in place to m + s·b.
func (m *Dense) AddScaled(b *Dense, s float64) {
	m.sameShape(b)
	for i, v := range b.data {
		m.data[i] += s * v
	}
}

// Add returns m + b as a new matrix.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameShape(b)
	c := m.Clone()
	for i, v := range b.data {
		c.data[i] += v
	}
	return c
}

// Sub returns m − b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	m.sameShape(b)
	c := m.Clone()
	for i, v := range b.data {
		c.data[i] -= v
	}
	return c
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	c := m.Clone()
	for i := range c.data {
		c.data[i] *= s
	}
	return c
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	c := NewDense(m.rows, b.cols)
	m.MulTo(c, b)
	return c
}

// Matmul tile sizes: a kBlock×jBlock tile of b (64×512 float64s = 256 KiB)
// stays resident in L2 while every row of m streams against it.
const (
	mulKBlock = 64
	mulJBlock = 512
)

// MulTo computes the matrix product m·b into dst, which must be a
// preallocated m.Rows()×b.Cols() matrix distinct from m and b; dst's prior
// contents are overwritten. Hot solvers (the QBD logarithmic reduction)
// call this with reused workspaces to avoid per-iteration allocation.
//
// The inner loops are cache-blocked: the k (depth) and j (column)
// dimensions are tiled so each tile of b is loaded into cache once and
// reused across all rows of m, instead of being streamed from memory for
// every row as the naive ikj order does on large operands.
func (m *Dense) MulTo(dst, b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	if dst == m || dst == b {
		panic("mat: MulTo destination aliases an operand")
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTo destination %d×%d, want %d×%d", dst.rows, dst.cols, m.rows, b.cols))
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for kk := 0; kk < m.cols; kk += mulKBlock {
		kend := min(kk+mulKBlock, m.cols)
		for jj := 0; jj < b.cols; jj += mulJBlock {
			jend := min(jj+mulJBlock, b.cols)
			for i := 0; i < m.rows; i++ {
				ci := dst.data[i*dst.cols+jj : i*dst.cols+jend]
				mi := m.data[i*m.cols : (i+1)*m.cols]
				for k := kk; k < kend; k++ {
					a := mi[k]
					if a == 0 {
						continue
					}
					bk := b.data[k*b.cols+jj : k*b.cols+jend]
					for j, bv := range bk {
						ci[j] += a * bv
					}
				}
			}
		}
	}
	return dst
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic("mat: dimension mismatch in MulVec")
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// VecMul returns the vector-matrix product x·m (x as a row vector).
func (m *Dense) VecMul(x []float64) []float64 {
	if m.rows != len(x) {
		panic("mat: dimension mismatch in VecMul")
	}
	y := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// MaxAbs returns the largest absolute entry of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NormInf returns the maximum absolute row sum of m.
func (m *Dense) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// RowSums returns the vector of row sums.
func (m *Dense) RowSums() []float64 {
	s := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			s[i] += v
		}
	}
	return s
}

// AlmostEqual reports whether every entry of m and b differs by at most tol.
func (m *Dense) AlmostEqual(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

func (m *Dense) sameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf("%10.5f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
