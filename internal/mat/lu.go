package mat

import "math"

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu with the permutation in piv.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// Factorize computes the LU factorization of a. It returns ErrSingular if a
// pivot is exactly zero or smaller in magnitude than a conservative
// threshold scaled by the matrix norm.
func Factorize(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic("mat: Factorize requires a square matrix")
	}
	n := a.rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	tiny := 1e-300 // absolute floor; relative conditioning is the caller's concern
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest |entry| in column k at or below row k.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax < tiny {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b for x, overwriting nothing; b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic("mat: dimension mismatch in LU.Solve")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// SolveMat solves A·X = B column by column and returns X.
func (f *LU) SolveMat(b *Dense) *Dense {
	n := f.lu.rows
	if b.rows != n {
		panic("mat: dimension mismatch in LU.SolveMat")
	}
	x := NewDense(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.Solve(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Identity(a.rows)), nil
}

// Solve solves A·x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveLeft solves x·A = b for the row vector x (equivalently Aᵀ·xᵀ = bᵀ).
func SolveLeft(a *Dense, b []float64) ([]float64, error) {
	return Solve(a.T(), b)
}

// SolveMatLeft solves X·A = B for X.
func SolveMatLeft(a, b *Dense) (*Dense, error) {
	f, err := Factorize(a.T())
	if err != nil {
		return nil, err
	}
	return f.SolveMat(b.T()).T(), nil
}
