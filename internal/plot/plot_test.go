package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "test chart",
		XLabel: "utilization",
		YLabel: "delay",
		Series: []Series{
			{Name: "lower", X: []float64{0.1, 0.5, 0.9}, Y: []float64{1.0, 1.5, 3.0}},
			{Name: "upper", X: []float64{0.1, 0.5, 0.9}, Y: []float64{1.2, 2.0, 4.5}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "legend:", "* lower", "o upper", "x: utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart body has no data markers")
	}
}

func TestRenderClipsAtYMax(t *testing.T) {
	c := sampleChart()
	c.YMax = 2
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// The top axis label must be the clip value, not the data max 4.5.
	if !strings.Contains(buf.String(), "2.00 |") {
		t.Errorf("clip at YMax=2 not applied:\n%s", buf.String())
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	c := &Chart{
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 2},
			Y:    []float64{1, math.Inf(1), 2},
		}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderDegenerate(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("degenerate single-point chart rendered without error")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,lower,upper" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "0.1,1,1.2") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteCSVMissingPoints(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{2}, Y: []float64{99}},
	}}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "1,10," {
		t.Errorf("row with missing cell = %q, want \"1,10,\"", lines[1])
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"col", "value"}, [][]string{{"a", "1"}, {"long-name", "2.5"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "col") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "long-name  2.5") {
		t.Errorf("row = %q", lines[2])
	}
}
