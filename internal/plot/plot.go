// Package plot renders the reproduction figures as ASCII line charts and
// CSV tables — the stdlib-only stand-in for the paper's MATLAB plots. The
// charts are coarse but preserve exactly what the evaluation argues about:
// curve ordering, crossovers, and blow-up points.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a collection of curves over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int     // plot columns (default 72)
	Height int     // plot rows (default 20)
	YMax   float64 // optional clip, mirroring the paper's axis limits
	Series []Series
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMax > 0 && ymax > c.YMax {
		ymax = c.YMax
	}
	if !(xmax > xmin) || !(ymax > ymin) {
		return fmt.Errorf("plot: degenerate axes ([%g,%g]×[%g,%g])", xmin, xmax, ymin, ymax)
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if y > ymax {
				y = ymax // clip like the paper's fixed axes
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mk
			}
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		yv := ymax - float64(i)/float64(height-1)*(ymax-ymin)
		if _, err := fmt.Fprintf(w, "%8.2f |%s|\n", yv, row); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", width)
	if _, err := fmt.Fprintf(w, "         +%s+\n", axis); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "          %-*.3g%*.3g\n", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "          x: %s    y: %s\n", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "          legend: %s\n", strings.Join(legend, "   "))
	return err
}

// WriteCSV emits the chart's data as CSV: one x column, one column per
// series, rows joined on exact x values (missing points left empty).
func (c *Chart) WriteCSV(w io.Writer) error {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := make([]string, 0, len(c.Series)+1)
	header = append(header, "x")
	for _, s := range c.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range c.Series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = fmt.Sprintf("%.6g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table renders aligned columns with a header, for the experiment logs.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}
