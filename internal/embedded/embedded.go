// Package embedded implements the embedded-chain view of Theorem 2: the
// lower-bound (jockeying) model observed just before arrival instants, for
// *renewal* arrival processes with phase-type interarrival laws (mixtures
// of Erlangs: exponential, Erlang-r, hyperexponential, and combinations).
//
// For Poisson arrivals this reproduces the CTMC lower bound exactly (a
// tested identity); beyond Poisson it realizes the paper's Theorem 2
// setting computationally: the embedded stationary distribution exhibits
// the modified vector-geometric tail π_{q+1} = σᴺ·π_q with σ the root of
// x = Σ xᵏβ_k — the quantity package asym solves for — which the tests
// verify block by block.
//
// Construction: with Q_s the service-only generator of the lower-bound
// model on a deep truncation of S (departures and jockeying only), one
// exponential stage of rate ν propagates a distribution by the resolvent
// S_ν = ν(νI − Q_s)⁻¹; an Erlang-r branch applies S_ν r times; mixtures
// are weighted sums. The embedded kernel is M = A·P with A the arrival
// operator (SQ(d) polling plus jockey redirect) and P the interarrival
// propagator. Time averages follow from the Markov-renewal reward theorem
// with per-stage rewards (νI − Q_s)⁻¹·w.
package embedded

import (
	"fmt"

	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// Branch is one Erlang branch of an interarrival law: Stages exponential
// stages of the given Rate, selected with probability Weight.
type Branch struct {
	Weight float64
	Stages int
	Rate   float64
}

// Law is a mixture-of-Erlangs interarrival distribution, dense in the
// space of positive laws and closed under everything this package needs.
type Law struct {
	Branches []Branch
}

// Exponential returns the Poisson special case: one stage at rate.
func Exponential(rate float64) Law {
	return Law{Branches: []Branch{{Weight: 1, Stages: 1, Rate: rate}}}
}

// Erlang returns an Erlang-r law with the given per-stage rate (mean
// r/rate, squared coefficient of variation 1/r).
func Erlang(r int, rate float64) Law {
	return Law{Branches: []Branch{{Weight: 1, Stages: r, Rate: rate}}}
}

// HyperExp returns the two-phase hyperexponential law: rate1 with
// probability w, rate2 otherwise (SCV > 1 when the rates differ).
func HyperExp(w, rate1, rate2 float64) Law {
	return Law{Branches: []Branch{
		{Weight: w, Stages: 1, Rate: rate1},
		{Weight: 1 - w, Stages: 1, Rate: rate2},
	}}
}

// Validate reports whether the law is well formed (weights a probability
// distribution, positive rates and stage counts).
func (l Law) Validate() error {
	if len(l.Branches) == 0 {
		return fmt.Errorf("embedded: empty law")
	}
	total := 0.0
	for _, b := range l.Branches {
		if b.Weight < 0 || b.Stages < 1 || b.Rate <= 0 {
			return fmt.Errorf("embedded: invalid branch %+v", b)
		}
		total += b.Weight
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		return fmt.Errorf("embedded: branch weights sum to %v", total)
	}
	return nil
}

// Mean returns the law's mean interarrival time.
func (l Law) Mean() float64 {
	m := 0.0
	for _, b := range l.Branches {
		m += b.Weight * float64(b.Stages) / b.Rate
	}
	return m
}

// Chain is the assembled embedded chain of the GI lower-bound model.
type Chain struct {
	P   sqd.BoundParams
	Law Law

	ix      *statespace.Index
	kernel  *mat.Dense // M = A·P, row-stochastic
	arrival *mat.Dense // A: state just before arrival → state just after
	reward  []float64  // E[∫ waiting(X_t) dt over one interarrival | post-arrival state]
}

// Result holds the embedded-chain solution.
type Result struct {
	Pi          []float64 // embedded stationary distribution (pre-arrival states)
	MeanWaiting float64   // time-average number of waiting jobs
	MeanWait    float64   // mean waiting time per job (Little)
	MeanDelay   float64   // mean sojourn time per job
}

// New assembles the embedded chain on S ∩ {#m ≤ maxTotal}. The arrival
// rate implied by the law must match ρ·N: law.Mean() = 1/(ρN); this is
// enforced to one part in 1e-6 to catch unit mistakes early.
func New(p sqd.BoundParams, law Law, maxTotal int) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := law.Validate(); err != nil {
		return nil, err
	}
	lamN := p.TotalArrivalRate()
	if m := law.Mean(); m < (1/lamN)*(1-1e-6) || m > (1/lamN)*(1+1e-6) {
		return nil, fmt.Errorf("embedded: law mean %v does not match 1/(ρN) = %v", m, 1/lamN)
	}
	if maxTotal < (p.N-1)*p.T+3*p.N {
		return nil, fmt.Errorf("embedded: truncation %d too shallow for N=%d T=%d", maxTotal, p.N, p.T)
	}

	c := &Chain{P: p, Law: law}
	states := statespace.EnumTruncated(p.N, p.T, maxTotal)
	c.ix = statespace.NewIndex(states)
	n := c.ix.Len()
	// Everything downstream is dense (resolvents, kernel): refuse sizes
	// that would silently eat gigabytes. The GI construction targets the
	// paper's small-N regime.
	const maxStates = 4000
	if n > maxStates {
		return nil, fmt.Errorf("embedded: %d states exceeds the dense-solver budget %d; lower maxTotal, T or N", n, maxStates)
	}
	lb := &sqd.LowerBound{P: p}

	// Arrival operator: the SQ(d) polling probabilities with the jockey
	// redirect, normalized by λN. Arrivals at the truncation frontier are
	// clipped to stay inside the enumeration (the frontier mass must be
	// negligible; callers confirm via the tail of Pi).
	c.arrival = mat.NewDense(n, n)
	// Service-only generator Q_s: departures and their jockey redirects.
	qs := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		m := c.ix.At(i)
		for _, tr := range sqd.Merged(lb.Transitions(m)) {
			j, ok := c.ix.Of(tr.To)
			switch {
			case tr.To.Total() == m.Total()+1:
				if !ok {
					j = i // clip at the frontier
				}
				c.arrival.Inc(i, j, tr.Rate/lamN)
			case tr.To.Total() == m.Total()-1:
				if !ok {
					return nil, fmt.Errorf("embedded: departure %v → %v escaped the enumeration", m, tr.To)
				}
				if j != i {
					qs.Inc(i, j, tr.Rate)
					qs.Inc(i, i, -tr.Rate)
				}
			default:
				return nil, fmt.Errorf("embedded: transition %v → %v changes total by more than one", m, tr.To)
			}
		}
	}

	// Interarrival propagator P and the Markov-renewal reward vector, per
	// branch: stage resolvents S_ν = ν(νI − Q_s)⁻¹ and R_ν = (νI − Q_s)⁻¹.
	wait := make([]float64, n)
	for i := 0; i < n; i++ {
		wait[i] = float64(c.ix.At(i).WaitingJobs())
	}
	prop := mat.NewDense(n, n)
	c.reward = make([]float64, n)
	for _, b := range c.Law.Branches {
		shifted := mat.Identity(n).Scale(b.Rate).Sub(qs)
		f, err := mat.Factorize(shifted)
		if err != nil {
			return nil, fmt.Errorf("embedded: resolvent at rate %v: %w", b.Rate, err)
		}
		rw := f.Solve(wait) // R_ν·w
		stage := f.SolveMat(mat.Identity(n).Scale(b.Rate))
		// Accumulate Σ_{j<r} S_ν^j·(R_ν·w) and S_ν^r.
		cur := mat.Identity(n)
		for j := 0; j < b.Stages; j++ {
			contrib := cur.MulVec(rw)
			for i := range c.reward {
				c.reward[i] += b.Weight * contrib[i]
			}
			cur = cur.Mul(stage)
		}
		prop = prop.Add(cur.Scale(b.Weight))
	}
	c.kernel = c.arrival.Mul(prop)
	return c, nil
}

// Solve computes the embedded stationary distribution and the
// time-average delay metrics.
func (c *Chain) Solve() (*Result, error) {
	n := c.ix.Len()
	// π(M − I) = 0 with one equation replaced by normalization.
	sys := c.kernel.Sub(mat.Identity(n))
	for i := 0; i < n; i++ {
		sys.Set(i, 0, 1)
	}
	rhs := make([]float64, n)
	rhs[0] = 1
	pi, err := mat.SolveLeft(sys, rhs)
	if err != nil {
		return nil, fmt.Errorf("embedded: stationary solve: %w", err)
	}
	for _, v := range pi {
		if v < -1e-8 {
			return nil, fmt.Errorf("embedded: negative stationary mass %v (truncation too shallow?)", v)
		}
	}
	res := &Result{Pi: pi}
	// Markov-renewal reward: cycle reward / cycle length.
	postArrival := c.arrival.VecMul(pi)
	res.MeanWaiting = mat.Dot(postArrival, c.reward) / c.Law.Mean()
	lamN := c.P.TotalArrivalRate()
	res.MeanWait = res.MeanWaiting / lamN
	res.MeanDelay = res.MeanWait + 1
	return res, nil
}

// BlockMass returns the embedded stationary mass of block q ≥ 0 of the
// paper's partition, for verifying Theorem 2's σᴺ tail.
func (c *Chain) BlockMass(pi []float64, q int) float64 {
	mass := 0.0
	for i, p := range pi {
		if statespace.BlockOf(c.P.N, c.P.T, c.ix.At(i).Total()) == q {
			mass += p
		}
	}
	return mass
}

// FrontierMass returns the stationary mass within one block of the
// truncation frontier — the caller's check that maxTotal was deep enough.
func (c *Chain) FrontierMass(pi []float64) float64 {
	maxTotal := 0
	for i := 0; i < c.ix.Len(); i++ {
		if t := c.ix.At(i).Total(); t > maxTotal {
			maxTotal = t
		}
	}
	mass := 0.0
	for i, p := range pi {
		if c.ix.At(i).Total() > maxTotal-c.P.N {
			mass += p
		}
	}
	return mass
}
