package embedded

import (
	"math"
	"testing"

	"finitelb/internal/asym"
	"finitelb/internal/qbd"
	"finitelb/internal/sqd"
)

func bp(n, d int, rho float64, t int) sqd.BoundParams {
	return sqd.BoundParams{Params: sqd.Params{N: n, D: d, Rho: rho}, T: t}
}

func TestLawConstructors(t *testing.T) {
	if m := Exponential(2).Mean(); math.Abs(m-0.5) > 1e-15 {
		t.Errorf("Exponential mean = %v", m)
	}
	if m := Erlang(4, 8).Mean(); math.Abs(m-0.5) > 1e-15 {
		t.Errorf("Erlang mean = %v", m)
	}
	if m := HyperExp(0.5, 1, 2).Mean(); math.Abs(m-0.75) > 1e-15 {
		t.Errorf("HyperExp mean = %v", m)
	}
	for _, bad := range []Law{
		{},
		{Branches: []Branch{{Weight: 0.5, Stages: 1, Rate: 1}}},
		{Branches: []Branch{{Weight: 1, Stages: 0, Rate: 1}}},
		{Branches: []Branch{{Weight: 1, Stages: 1, Rate: -1}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("law %+v accepted", bad)
		}
	}
}

func TestNewRejectsMismatchedMean(t *testing.T) {
	p := bp(3, 2, 0.8, 2)
	if _, err := New(p, Exponential(1.0), 60); err == nil {
		t.Error("law with wrong mean accepted")
	}
	if _, err := New(p, Exponential(2.4), 10); err == nil {
		t.Error("too-shallow truncation accepted")
	}
}

// TestPoissonMatchesCTMC: with exponential interarrivals the embedded
// construction must reproduce the continuous-time lower bound exactly —
// same model, different clockwork.
func TestPoissonMatchesCTMC(t *testing.T) {
	for _, cfg := range []struct {
		n, d int
		rho  float64
		tt   int
		max  int
	}{{3, 2, 0.8, 2, 120}, {3, 3, 0.6, 2, 90}, {2, 2, 0.9, 3, 180}} {
		p := bp(cfg.n, cfg.d, cfg.rho, cfg.tt)
		lamN := p.TotalArrivalRate()
		ch, err := New(p, Exponential(lamN), cfg.max)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ch.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if fm := ch.FrontierMass(res.Pi); fm > 1e-8 {
			t.Fatalf("%+v: frontier mass %v too large", cfg, fm)
		}
		ctmc, err := qbd.Solve(&sqd.LowerBound{P: p}, qbd.Options{ImprovedLB: true})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.MeanDelay-ctmc.MeanDelay) / ctmc.MeanDelay; rel > 1e-6 {
			t.Errorf("%+v: embedded %v vs CTMC %v (%.2g rel)", cfg, res.MeanDelay, ctmc.MeanDelay, rel)
		}
	}
}

// TestTheorem2SigmaTail: the embedded stationary distribution's block tail
// ratio must equal σᴺ with σ the root of x = Σ xᵏβ_k — Theorem 2, for
// non-Poisson renewal arrivals. The β_k here use the aggregate service
// rate N (all servers busy beyond the boundary).
func TestTheorem2SigmaTail(t *testing.T) {
	const n, d, rho, tt = 3, 2, 0.8, 2
	p := bp(n, d, rho, tt)
	lamN := p.TotalArrivalRate()

	// Hyperexponential with mean 1/λN: 0.2/(0.5λN) + 0.8/((4/3)λN) = 1/λN.
	h1, h2 := lamN*0.5, lamN*4.0/3.0
	cases := []struct {
		name  string
		law   Law
		betas asym.BetaFunc
	}{
		{"erlang2", Erlang(2, 2*lamN), asym.ErlangBetas(2, lamN, float64(n))},
		{"hyperexp", HyperExp(0.2, h1, h2), func(k int) float64 {
			return 0.2*asym.PoissonBetas(h1, float64(n))(k) +
				0.8*asym.PoissonBetas(h2, float64(n))(k)
		}},
		{"poisson", Exponential(lamN), asym.PoissonBetas(lamN, float64(n))},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.law.Validate(); err != nil {
				t.Fatal(err)
			}
			if m := tc.law.Mean(); math.Abs(m-1/lamN) > 1e-9 {
				t.Fatalf("test setup: law mean %v ≠ %v", m, 1/lamN)
			}
			ch, err := New(p, tc.law, 120)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ch.Solve()
			if err != nil {
				t.Fatal(err)
			}
			sigma, err := asym.SolveSigma(tc.betas, 1e-13)
			if err != nil {
				t.Fatal(err)
			}
			want := math.Pow(sigma, float64(n))
			// Interior blocks: away from boundary and truncation.
			for q := 3; q <= 6; q++ {
				got := ch.BlockMass(res.Pi, q+1) / ch.BlockMass(res.Pi, q)
				if math.Abs(got-want) > 1e-6 {
					t.Errorf("block ratio π_%d/π_%d = %.9f, want σᴺ = %.9f", q+1, q, got, want)
				}
			}
		})
	}
}

// TestVariabilityOrdering: at equal utilization, smoother arrivals yield
// smaller lower-bound delay; burstier arrivals larger — the GI extension's
// headline consequence.
func TestVariabilityOrdering(t *testing.T) {
	p := bp(3, 2, 0.8, 2)
	lamN := p.TotalArrivalRate()
	delay := func(law Law) float64 {
		ch, err := New(p, law, 100)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ch.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanDelay
	}
	erl := delay(Erlang(4, 4*lamN))
	poi := delay(Exponential(lamN))
	hyp := delay(HyperExp(0.2, lamN*0.5, lamN*4.0/3.0))
	if !(erl < poi && poi < hyp) {
		t.Errorf("ordering violated: Erlang4 %v, Poisson %v, HyperExp %v", erl, poi, hyp)
	}
}
