package lint_test

import (
	"testing"

	"finitelb/internal/lint"
	"finitelb/internal/lint/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.DetRandAnalyzer,
		"finitelb/internal/sim", "finitelb/internal/lb")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.WallTimeAnalyzer,
		"finitelb/internal/engine", "finitelb/internal/lb")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.HotPathAnalyzer, "hot")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.AtomicFieldAnalyzer, "atom")
}

func TestErrRet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ErrRetAnalyzer,
		"cmd/app", "lib")
}

// TestWallTimeAppliesToTestFiles pins the choice that the determinism
// invariants bind _test.go files of deterministic packages too: the
// bit-identity goldens are themselves tests, and a clock read inside one
// is exactly as damaging as one in the library.
func TestWallTimeAppliesToTestFiles(t *testing.T) {
	dir := analysistest.WriteFiles(t, map[string]string{
		"finitelb/internal/qbd/qbd.go": `package qbd

func Solve() int { return 1 }
`,
		"finitelb/internal/qbd/qbd_timing.go": `package qbd

import "time"

func timedSolve() (int, time.Duration) {
	start := time.Now() // want "time.Now in deterministic package"
	v := Solve()
	return v, time.Since(start) // want "time.Since in deterministic package"
}
`,
	})
	analysistest.Run(t, dir, lint.WallTimeAnalyzer, "finitelb/internal/qbd")
}
