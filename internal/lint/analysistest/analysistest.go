// Package analysistest is a standard-library-only re-derivation of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// fixture packages under testdata/src and checks the reported
// diagnostics against `// want` comments in the fixtures.
//
// Expectation grammar (a subset of the x/tools one): a comment
//
//	// want "rx" "rx2"
//
// on any line declares that the analyzer must report, on that line,
// one diagnostic matching each quoted regular expression. Diagnostics
// with no matching want, and wants with no matching diagnostic, fail
// the test. Suppression directives (//lint:allow) are applied before
// matching, so fixtures can exercise the allow machinery itself.
//
// Fixture packages are type-checked with the "source" importer, so they
// may import anything in the standard library but not other modules.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"finitelb/internal/lint"
	"finitelb/internal/lint/analysis"
)

// TestData returns the caller's testdata directory as an absolute path.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads each fixture package dir/src/<path>, runs the analyzer, and
// matches diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, path)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, path string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s", pkgDir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	diags, err := lint.RunAnalyzer(a, fset, files, path, pkg, info)
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	match(t, fset, files, diags)
}

// want is one expectation: a compiled regexp at a file line.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	met  bool
}

// wantRE accepts both comment forms: `// want "rx"` and, for lines whose
// line comment is a lint directive under test, `/* want "rx" */` placed
// before it.
var wantRE = regexp.MustCompile(`^(?://|/\*)\s*want\s+(.*)$`)

// parseWants extracts the expectations from every comment in the files.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(strings.TrimSpace(strings.TrimSuffix(c.Text, "*/")))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					quote := rest[0]
					if quote != '"' && quote != '`' {
						t.Fatalf("%s: malformed want clause %q", pos, rest)
					}
					end := 1
					for end < len(rest) && (rest[end] != quote || (quote == '"' && rest[end-1] == '\\')) {
						end++
					}
					if end == len(rest) {
						t.Fatalf("%s: unterminated want pattern %q", pos, rest)
					}
					lit := rest[:end+1]
					rest = strings.TrimSpace(rest[end+1:])
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: pat})
				}
			}
		}
	}
	return wants
}

// match pairs diagnostics with wants line by line.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// WriteFiles materializes a file map into a temporary testdata-shaped
// tree and returns its root — for fixtures better expressed inline (the
// x/tools facility of the same name).
func WriteFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		full := filepath.Join(dir, "src", filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
