package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// TestHotPathCoversAllocFreeEventPath pins the contract between the
// hotpath analyzer and the measured guarantee: every function on the
// event path that TestAllocFreeEventPath (internal/sim/loop_test.go)
// proves allocation-free must carry the //finitelb:hotpath directive, so
// a regression is reported at the offending line by the linter before
// the benchmark harness ever notices the extra allocation.
//
// The table names functions per file; the test parses the real sources
// and fails if any listed function has lost its annotation.
func TestHotPathCoversAllocFreeEventPath(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	internalDir := filepath.Dir(filepath.Dir(self)) // .../internal

	required := map[string][]string{
		// The measured event loops themselves.
		"sim/loop.go": {"runTyped", "runDefault", "flush", "workAt", "noteWork"},
		// The per-departure accumulators the loops flush into: the batched
		// stream entry point and the quantile sketch behind it (Add per
		// observation, addCount/collapse its internals, Merge on the
		// replication/shard pooling path).
		"stats/stream.go": {"AddBatch"},
		"stats/sketch.go": {"Add", "addCount", "collapse", "Merge"},
		// Every picker the alloc test's policies route through, plus the
		// rest of the pick set (one stray fmt call in any of them would
		// put allocations on some policy's event path).
		"sim/pick.go": {"pick"},
		// Completion trackers: the mode-selected implementations.
		"sim/tracker.go":  {"min", "update", "up", "down", "min4"},
		"sim/calendar.go": {"min", "update", "bucket", "recompute"},
		// The min-index trees behind jsq-indexed and lwl-work-aware.
		"minindex/minindex.go": {"Update", "Argmin", "combine"},
		"minindex/conc.go":     {"Update", "Argmin"},
		// The live dispatch path carries the same guarantee per event.
		"lb/lb.go":        {"submit", "submitAt", "admit", "submitBurst", "Len", "Work", "ArgminLen", "ArgminWork"},
		"lb/idlestack.go": {"push", "tryPop"},
		// The flight recorder rides the same event paths when tracing is
		// on (TestAllocFreeEventPathTraced pins the trace-on floor).
		"trace/trace.go": {"hit", "Start", "Picked", "Enqueued", "Started", "Done", "Abort", "publish", "observe"},
		"sim/trace.go":   {"onArrival", "onDeparture"},
	}

	for rel, funcs := range required {
		path := filepath.Join(internalDir, filepath.FromSlash(rel))
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", rel, err)
		}
		lines := hotpathLines(fset, f)
		hot := make(map[string]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if isHotFunc(fset, lines, fd) {
				hot[fd.Name.Name] = true
			}
		}
		for _, name := range funcs {
			if !hot[name] {
				t.Errorf("%s: %s is on the alloc-free event path but lacks //finitelb:hotpath", rel, name)
			}
		}
	}
}

// TestHotPathCoversEveryPicker closes the gap the name-based table above
// leaves for methods: all eight pick methods share the name "pick", so
// this test counts the annotated ones in sim/pick.go and requires every
// pick method in the file to be annotated.
func TestHotPathCoversEveryPicker(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	path := filepath.Join(filepath.Dir(filepath.Dir(self)), "sim", "pick.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	lines := hotpathLines(fset, f)
	var total, annotated int
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "pick" || fd.Recv == nil {
			continue
		}
		total++
		if isHotFunc(fset, lines, fd) {
			annotated++
		}
	}
	if total == 0 {
		t.Fatal("sim/pick.go: no pick methods found; the file moved?")
	}
	if annotated != total {
		t.Errorf("sim/pick.go: %d of %d pick methods annotated //finitelb:hotpath; all must be", annotated, total)
	}
}
