package lint

import (
	"go/ast"
	"go/types"

	"finitelb/internal/lint/analysis"
)

// DetRandAnalyzer (detrand) forbids the global math/rand and
// math/rand/v2 state in deterministic packages. The simulator's
// bit-identity goldens, the engine's worker-invariant merges, and every
// oracle test assume all randomness flows from internal/frand or from an
// explicitly seeded source threaded as a parameter; one rand.Float64()
// breaks reproducibility silently — results stay plausible, just no
// longer pinned.
//
// Constructors taking an explicit seed or source (New, NewSource,
// NewPCG, NewChaCha8, NewZipf) are allowed: they don't touch global
// state, and the seed's provenance is then visible at the call site.
var DetRandAnalyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand state in deterministic packages",
	Run:  runDetRand,
}

// randConstructors are the package-level names of math/rand{,/v2} that
// only build seeded values and never read global generator state.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true,
	"NewChaCha8": true,
	"NewZipf":   true,
}

func runDetRand(pass *analysis.Pass) error {
	if !isDeterministic(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			path := pkgPathOf(obj)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Only package-level functions and variables carry global
			// state; methods on *rand.Rand ride an explicit value and
			// types are inert.
			switch obj.(type) {
			case *types.Func:
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // method on an explicit value
				}
			case *types.Var:
				// e.g. a package-level Source variable, if one ever appears
			default:
				return true
			}
			if randConstructors[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global %s.%s in deterministic package %s; draw from internal/frand or a seeded source passed in",
				path, obj.Name(), normalizePath(pass.Path))
			return true
		})
	}
	return nil
}
