package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finitelb/internal/lint/analysis"
)

// AtomicFieldAnalyzer (atomicfield) enforces atomic discipline on plain
// variables driven through the sync/atomic functions: a struct field or
// variable that is the target of atomic.Load/Store/Add/Swap/
// CompareAndSwap anywhere in the package must be accessed through
// sync/atomic everywhere in the package. One plain read of the slot
// table, the idle-stack head, or a version tag is a data race the memory
// model gives no meaning to — and the kind that survives every test until
// a weakly-ordered machine runs it.
//
// Sanctioned accesses are exactly the &x operands of sync/atomic calls.
// Composite-literal keys (pre-publication initialization) are exempt.
// Fields of the typed atomic.Int64-style wrappers are outside this
// analyzer's scope: the type system already makes their plain use
// impossible, and go vet's copylocks catches moves.
var AtomicFieldAnalyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "variables accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicField,
}

// atomicOpPrefixes match the sync/atomic package-level functions that
// take an address: LoadInt64, StoreUint32, AddInt32, SwapPointer,
// CompareAndSwapUint64, ...
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(obj types.Object) bool {
	if pkgPathOf(obj) != "sync/atomic" {
		return false
	}
	if _, ok := obj.(*types.Func); !ok {
		return false
	}
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(obj.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *analysis.Pass) error {
	// Pass 1: collect the atomically-driven variables, the identifier
	// occurrences sanctioned by being the &x of an atomic call, and the
	// composite-literal keys (initialization, not access).
	atomicAt := make(map[*types.Var]token.Pos) // var -> first atomic use
	sanctioned := make(map[*ast.Ident]bool)
	litKeys := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							litKeys[id] = true
						}
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !isAtomicOp(pass.TypesInfo.Uses[sel.Sel]) {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				id, v := targetVar(pass, addr.X)
				if v == nil {
					return true
				}
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = sel.Pos()
				}
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] || litKeys[id] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			first, isAtomic := atomicAt[v]
			if !isAtomic {
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed with sync/atomic (first at %s); mixed access races",
				v.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}

// targetVar resolves the operand of an atomic &x to its variable: a
// struct field selector or a plain identifier (package-level or local).
// Index expressions (&arr[i]) resolve to the array variable only when it
// is a plain identifier — per-element tracking is out of scope.
func targetVar(pass *analysis.Pass, x ast.Expr) (*ast.Ident, *types.Var) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return x.Sel, v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return x, v
		}
	}
	return nil, nil
}
