// Fixture: errret — a cmd/ package discarding errors from the io, flag,
// bufio, os, and encoding families.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"os"
	"strings"
)

func run(fs *flag.FlagSet, args []string, w io.Writer) {
	fs.Parse(args)                  // want "error from flag.Parse silently discarded"
	json.NewEncoder(w).Encode(args) // want "error from encoding/json.Encode silently discarded"
	io.Copy(io.Discard, strings.NewReader("x")) // want "error from io.Copy silently discarded"
	bw := bufio.NewWriter(w)
	bw.Flush()           // want "error from bufio.Flush silently discarded"
	w.Write([]byte("x")) // want "error from io.Write silently discarded"

	f, err := os.Create(os.DevNull)
	if err != nil {
		return
	}
	defer f.Close() // defer is conventional teardown: no finding

	_ = bw.Flush() // explicit discard: visible intent, no finding
	if err := fs.Parse(args); err != nil { // checked: no finding
		return
	}
	strings.NewReader("y").Len() // non-error return: no finding
}

func main() {
	run(flag.NewFlagSet("app", flag.ContinueOnError), nil, io.Discard)
}
