// Fixture: internal/lb is a live package — ambient randomness and the
// wall clock are its job, so neither detrand nor walltime fires here.
package lb

import (
	"math/rand/v2"
	"time"
)

func liveOK() (float64, time.Time) {
	time.Sleep(time.Millisecond)
	return rand.Float64(), time.Now()
}
