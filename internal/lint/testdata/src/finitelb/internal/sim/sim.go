// Fixture: a deterministic package (the path matches the real
// internal/sim) exercising the detrand rules.
package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// globalDraws hit the shared generator state: every one is a finding.
func globalDraws() float64 {
	n := rand.Intn(10)                 // want "global math/rand.Intn in deterministic package"
	x := rand.Float64()                // want "global math/rand.Float64 in deterministic package"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand.Shuffle in deterministic package"
	y := randv2.ExpFloat64()           // want "global math/rand/v2.ExpFloat64 in deterministic package"
	z := randv2.N(int64(4))            // want "global math/rand/v2.N in deterministic package"
	return x + y + float64(z)
}

// seeded sources threaded as values are the sanctioned pattern.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	r2 := randv2.New(randv2.NewPCG(uint64(seed), 7))
	return r.Float64() + r2.Float64()
}

// allowed documents a justified exception and is suppressed.
func allowed() int {
	return rand.Int() //lint:allow detrand fixture demonstrating a documented suppression
}

// bareAllow: an allow without a reason suppresses nothing — the original
// finding stands and the directive itself is reported.
func bareAllow() int {
	/* want "lint:allow detrand needs a non-empty reason" */ //lint:allow detrand
	return rand.Int() // want "global math/rand.Int in deterministic package"
}

// staleAllow: an allow that no longer matches anything is a lie about
// the code and is reported.
func staleAllow() {
	_ = seeded(1) /* want "lint:allow detrand matches no diagnostic" */ //lint:allow detrand left over after a refactor
}
