// Fixture: a deterministic package exercising the walltime rules.
package engine

import "time"

// clockReads couple results to the host scheduler: findings.
func clockReads() time.Duration {
	start := time.Now() // want "time.Now in deterministic package"
	time.Sleep(time.Microsecond) // want "time.Sleep in deterministic package"
	ch := time.After(time.Second) // want "time.After in deterministic package"
	<-ch
	return time.Since(start) // want "time.Since in deterministic package"
}

// durationMath is inert: no clock is read.
func durationMath(d time.Duration) float64 {
	return (d + time.Millisecond).Seconds()
}

// explicitInstants built from supplied values are fine too.
func explicitInstants(sec int64) time.Time {
	return time.Unix(sec, 0).Add(time.Minute)
}

// allowedTimer documents its exception.
func allowedTimer() *time.Timer {
	return time.NewTimer(0) //lint:allow walltime fixture demonstrating a documented suppression
}
