// Fixture: errret is scoped to cmd/ — the same discarded errors in a
// library package are not findings (they are the caller's to handle and
// the oracle tests would catch them).
package lib

import (
	"io"
	"strings"
)

func drain(w io.Writer) {
	io.Copy(w, strings.NewReader("x"))
}
