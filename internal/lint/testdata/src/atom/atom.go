// Fixture: atomicfield — variables driven through sync/atomic must be
// accessed atomically everywhere in the package.
package atom

import "sync/atomic"

type counters struct {
	hits int64 // atomic everywhere
	cold int64 // never atomic: plain access is fine
}

var global uint32

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreUint32(&global, 7)
}

func swap(c *counters) int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

func read(c *counters) int64 {
	if atomic.LoadInt64(&c.hits) > 10 {
		return 0
	}
	return c.hits // want "plain access to hits"
}

func mixed(c *counters) {
	c.hits = 0 // want "plain access to hits"
	c.cold++
	g := global // want "plain access to global"
	_ = g
	p := &c.hits // want "plain access to hits"
	_ = p
}

// fresh initializes through a composite literal before the value is
// shared: initialization keys are exempt.
func fresh() *counters {
	return &counters{hits: 0, cold: 1}
}

// quiescent documents the one sanctioned plain read: after the workers
// have joined, no concurrent writer exists.
func quiescent(c *counters) int64 {
	return c.hits //lint:allow atomicfield read at quiescence after workers joined
}
