// Fixture: the hotpath analyzer's alloc-causing constructs, positive and
// negative, plus the directive edge cases (methods, generics, closures,
// literals).
package hot

import (
	"errors"
	"fmt"
	"reflect"
)

//finitelb:hotpath
func hotFunc(xs []float64, name string) float64 {
	s := fmt.Sprintf("x%s", name) // want "call to fmt.Sprintf on hot path allocates"
	_ = s
	err := errors.New("boom") // want "call to errors.New on hot path allocates"
	_ = err
	_ = reflect.TypeOf(name) // want "call to reflect.TypeOf on hot path allocates"
	xs = append(xs, 1)       // want "append on hot path may grow the backing array"
	msg := name + "!"        // want "string concatenation on hot path allocates"
	msg += "?"               // want "string concatenation on hot path allocates"
	_ = msg
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

//finitelb:hotpath
func hotClosures(n int) func() int {
	k := 0
	inc := func() int { k++; return k }      // want `closure on hot path captures "k"`
	flat := func(a int) int { return a + 1 } // capture-free: compiles to a static func, no finding
	_ = flat(inc())
	// Nested closures inherit the hot scope: the inner fmt call is still
	// a finding, and the capture of n is too.
	outer := func() { // want `closure on hot path captures "n"`
		_ = fmt.Sprint(n) // want "call to fmt.Sprint on hot path allocates"
	}
	outer()
	return inc
}

type boxer interface{ Box() }

type small struct{ v int }

func (small) Box() {}

func sink(x any)      {}
func sinkV(xs ...any) {}

//finitelb:hotpath
func hotIface(s small, p *small, vals []any) {
	var b boxer = s // want "conversion on hot path boxes the value"
	_ = b
	var bp boxer = p // pointer-shaped: fits the interface word, no finding
	_ = bp
	vals[0] = s.v // want "conversion on hot path boxes the value"
	sink(s)       // want "conversion on hot path boxes the value"
	sink(p)       // pointer: no finding
	sinkV(1, 2)   // want "conversion on hot path boxes the value" "conversion on hot path boxes the value"
	sinkV(vals...) // spread of existing interfaces: no finding
}

//finitelb:hotpath
func hotReturn(v int) any {
	return v // want "conversion on hot path boxes the value"
}

type payload struct{ x any }

//finitelb:hotpath
func hotComposite(v int, ch chan any) {
	p := payload{x: v} // want "conversion on hot path boxes the value"
	_ = p
	ch <- v       // want "conversion on hot path boxes the value"
	q := []any{v} // want "conversion on hot path boxes the value"
	_ = q
}

type counter struct{ n int }

// bump shows the directive inside a doc comment on a method.
//
//finitelb:hotpath
func (c *counter) bump() {
	_ = fmt.Sprint(c.n) // want "call to fmt.Sprint on hot path allocates"
}

// hotGeneric shows the directive on a generic (stenciled) function.
//
//finitelb:hotpath
func hotGeneric[T any](items []T) int {
	s := fmt.Sprintln(len(items)) // want "call to fmt.Sprintln on hot path allocates"
	return len(s)
}

// coldOuter is not hot itself; the directive binds to the literal on the
// next line only.
func coldOuter() func() {
	//finitelb:hotpath
	return func() {
		_ = fmt.Sprint(1) // want "call to fmt.Sprint on hot path allocates"
	}
}

// coldPlain is unannotated: nothing fires.
func coldPlain() {
	_ = fmt.Sprint(2)
	s := "a" + "b" // constant-folded anyway
	_ = s
}

// hotAllowed documents a cold error exit inside a hot function.
//
//finitelb:hotpath
func hotAllowed(err error) error {
	if err != nil {
		return fmt.Errorf("wrap: %w", err) //lint:allow hotpath cold error exit, not taken per event
	}
	return nil
}
