package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"finitelb/internal/lint/analysis"
)

// HotPathAnalyzer (hotpath) checks functions annotated //finitelb:hotpath
// for alloc-causing constructs. The annotated set — the typed event
// loops, the completion trackers, the min-index pick paths, and the live
// dispatch path — carries the repository's 0 allocs/event guarantee;
// TestAllocFreeEventPath measures it end to end, this analyzer points at
// the exact line that would break it, before a benchmark ever runs.
//
// Flagged inside a hot function (and its nested closures, which inherit
// the annotation):
//
//   - calls into fmt, reflect, or errors (formatting and boxing);
//   - closures that capture variables (the closure object escapes);
//   - append (amortized growth is still an allocation on the path);
//   - string concatenation;
//   - concrete-to-interface conversions of non-pointer-shaped values
//     (boxing) — at explicit conversions, call arguments, assignments,
//     returns, channel sends, and composite-literal fields.
//
// Pointer-shaped values (pointers, channels, maps, funcs) convert to
// interfaces without boxing and are not flagged. Cold error paths inside
// an annotated function are suppressed case by case with //lint:allow
// hotpath <reason>.
var HotPathAnalyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag alloc-causing constructs in //finitelb:hotpath functions",
	Run:  runHotPath,
}

// allocPkgs are the call targets banned outright on a hot path.
var allocPkgs = map[string]bool{"fmt": true, "reflect": true, "errors": true}

func runHotPath(pass *analysis.Pass) error {
	c := &hotChecker{pass: pass}
	for _, f := range pass.Files {
		lines := hotpathLines(pass.Fset, f)
		if len(lines) == 0 {
			continue
		}
		// Hot roots: annotated declarations, plus annotated literals that
		// are not already inside one (those are walked by their root).
		var roots []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && isHotFunc(pass.Fset, lines, n) {
					roots = append(roots, n)
					return false
				}
			case *ast.FuncLit:
				if isHotLit(pass.Fset, lines, n) {
					roots = append(roots, n)
					return false
				}
			}
			return true
		})
		for _, root := range roots {
			switch n := root.(type) {
			case *ast.FuncDecl:
				c.walkBody(n.Body, declSignature(pass, n))
			case *ast.FuncLit:
				c.walkBody(n.Body, litSignature(pass, n))
			}
		}
	}
	return nil
}

type hotChecker struct {
	pass *analysis.Pass
}

// declSignature resolves a declared function to its checked signature.
// The FuncType node of a declaration is not in the Types map — only the
// defining identifier carries the signature, via Defs.
func declSignature(pass *analysis.Pass, d *ast.FuncDecl) *types.Signature {
	if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// litSignature resolves a function literal (an expression, so it is in
// the Types map) to its signature.
func litSignature(pass *analysis.Pass, lit *ast.FuncLit) *types.Signature {
	if sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature); ok {
		return sig
	}
	return nil
}

// walkBody checks one function body; sig is that function's signature
// (for return-statement conversion checks). Nested closures are flagged
// if they capture, then walked with their own signature — hot scope is
// inherited all the way down.
func (c *hotChecker) walkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkClosure(n)
			c.walkBody(n.Body, litSignature(c.pass, n))
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n, sig)
		case *ast.SendStmt:
			if t := c.pass.TypesInfo.TypeOf(n.Chan); t != nil {
				if ch, ok := t.Underlying().(*types.Chan); ok {
					c.checkConv(n.Value, ch.Elem())
				}
			}
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		}
		return true
	})
}

// checkClosure flags a nested closure that captures variables: the
// closure object (and its captured frame) escapes to the heap the moment
// it is passed or stored. Capture-free literals compile to static
// functions and pass.
func (c *hotChecker) checkClosure(lit *ast.FuncLit) {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		if c.pass.Pkg != nil && v.Parent() == c.pass.Pkg.Scope() {
			return true // package-level state is not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return true
	})
	if captured != nil {
		c.pass.Reportf(lit.Pos(), "closure on hot path captures %q and escapes; hoist the state or pass it as a parameter", captured.Name())
	}
}

// checkCall handles conversions written as calls, banned-package calls,
// append, and concrete-to-interface argument passing.
func (c *hotChecker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	tv, ok := c.pass.TypesInfo.Types[fun]
	if ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			c.checkConv(call.Args[0], tv.Type)
		}
		return
	}
	if ok && tv.IsBuiltin() {
		if name, _ := builtinName(fun); name == "append" {
			c.pass.Reportf(call.Pos(), "append on hot path may grow the backing array; preallocate capacity outside the loop")
		}
		return
	}
	// Banned package call?
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fn.Sel]
	}
	if path := pkgPathOf(obj); allocPkgs[path] {
		c.pass.Reportf(call.Pos(), "call to %s.%s on hot path allocates", path, obj.Name())
		return
	}
	// Concrete-to-interface boxing at the call boundary.
	sig, ok := c.pass.TypesInfo.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var want types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // spread: no per-element conversion
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				want = s.Elem()
			}
		case i < params.Len():
			want = params.At(i).Type()
		}
		c.checkConv(arg, want)
	}
}

func builtinName(fun ast.Expr) (string, bool) {
	if id, ok := fun.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

func (c *hotChecker) checkAssign(a *ast.AssignStmt) {
	if a.Tok == token.ADD_ASSIGN {
		if t := c.pass.TypesInfo.TypeOf(a.Lhs[0]); t != nil && isString(t) {
			c.pass.Reportf(a.Pos(), "string concatenation on hot path allocates")
		}
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, rhs := range a.Rhs {
		c.checkConv(rhs, c.pass.TypesInfo.TypeOf(a.Lhs[i]))
	}
}

func (c *hotChecker) checkValueSpec(s *ast.ValueSpec) {
	if s.Type == nil {
		return
	}
	want := c.pass.TypesInfo.TypeOf(s.Type)
	for _, v := range s.Values {
		c.checkConv(v, want)
	}
}

func (c *hotChecker) checkReturn(r *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || sig.Results().Len() != len(r.Results) {
		return
	}
	for i, res := range r.Results {
		c.checkConv(res, sig.Results().At(i).Type())
	}
}

func (c *hotChecker) checkComposite(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if f, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
						c.checkConv(kv.Value, f.Type())
					}
				}
				continue
			}
			if i < u.NumFields() {
				c.checkConv(elt, u.Field(i).Type())
			}
		}
	case *types.Slice:
		for _, elt := range lit.Elts {
			c.checkConv(valueOf(elt), u.Elem())
		}
	case *types.Array:
		for _, elt := range lit.Elts {
			c.checkConv(valueOf(elt), u.Elem())
		}
	}
}

// valueOf unwraps an indexed composite element ([3]T{1: x}).
func valueOf(elt ast.Expr) ast.Expr {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return elt
}

func (c *hotChecker) checkConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if tv.Type != nil && isString(tv.Type) {
		c.pass.Reportf(b.OpPos, "string concatenation on hot path allocates")
	}
}

// checkConv reports expr if assigning it to type want boxes a value: the
// destination is an interface, the source is a concrete non-pointer-
// shaped type. Pointer-shaped values (pointers, channels, maps, funcs)
// fit the interface data word directly.
func (c *hotChecker) checkConv(expr ast.Expr, want types.Type) {
	if expr == nil || want == nil {
		return
	}
	if _, isParam := want.(*types.TypeParam); isParam {
		return
	}
	if !types.IsInterface(want) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if _, isParam := from.(*types.TypeParam); isParam {
		return
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(from) || pointerShaped(from) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s-to-%s conversion on hot path boxes the value", from, want)
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
