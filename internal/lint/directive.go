package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"finitelb/internal/lint/analysis"
)

// This file implements the two comment directives the suite understands:
//
//	//finitelb:hotpath
//	    On the doc comment of a function or method (or the line directly
//	    above a function literal): the function body is a hot path and the
//	    hotpath analyzer flags alloc-causing constructs inside it,
//	    including nested closures.
//
//	//lint:allow <analyzer> <reason>
//	    On the flagged line (or the line directly above it): suppresses
//	    that analyzer's diagnostics on the line. The reason is mandatory —
//	    an allow without one does not suppress and is itself reported, so
//	    every suppression in the tree documents why it is sound.
//
// Both follow the Go directive convention: no space after //, recognized
// anywhere a comment is syntactically attached near the construct.

const (
	hotpathDirective = "//finitelb:hotpath"
	allowDirective   = "//lint:allow"
)

// allow is one parsed //lint:allow directive.
type allow struct {
	file     string // filename
	line     int    // line the directive sits on
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// parseAllow splits an allow directive comment into analyzer and reason.
// ok is false when the comment is not an allow directive at all.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return "", "", false
	}
	rest := text[len(allowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false // e.g. //lint:allowances — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true // malformed: no analyzer, no reason
	}
	return fields[0], strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])), true
}

// collectAllows scans every comment in the files for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allow {
	var out []*allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				an, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &allow{file: p.Filename, line: p.Line, analyzer: an, reason: reason, pos: c.Pos()})
			}
		}
	}
	return out
}

// suppress filters diags through the files' //lint:allow directives for
// the named analyzer. A directive suppresses diagnostics on its own line
// and on the line directly below (the "directive above the statement"
// form). Directives with an empty reason suppress nothing and are
// reported; so are allow directives for this analyzer that match no
// diagnostic (a stale suppression is a lie about the code).
func suppress(fset *token.FileSet, files []*ast.File, analyzerName string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	allows := collectAllows(fset, files)
	var out []analysis.Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		kept := true
		for _, a := range allows {
			if a.analyzer != analyzerName || a.file != p.Filename {
				continue
			}
			if a.line != p.Line && a.line != p.Line-1 {
				continue
			}
			a.used = true
			if a.reason == "" {
				continue // reported below; the finding stands
			}
			kept = false
		}
		if kept {
			out = append(out, d)
		}
	}
	for _, a := range allows {
		if a.analyzer != analyzerName {
			continue
		}
		if a.reason == "" {
			out = append(out, analysis.Diagnostic{Pos: a.pos,
				Message: "lint:allow " + analyzerName + " needs a non-empty reason"})
		} else if !a.used {
			out = append(out, analysis.Diagnostic{Pos: a.pos,
				Message: "lint:allow " + analyzerName + " matches no diagnostic; remove it"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// hotpathLines returns the set of lines (per file of the pass) holding a
// //finitelb:hotpath directive.
func hotpathLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotFunc reports whether a FuncDecl carries the hotpath directive:
// inside its doc comment group, or on the line directly above the func
// keyword (a detached directive still binds to the declaration).
func isHotFunc(fset *token.FileSet, lines map[int]bool, d *ast.FuncDecl) bool {
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
				return true
			}
		}
	}
	return lines[fset.Position(d.Pos()).Line-1]
}

// isHotLit reports whether a function literal carries the directive on
// the line directly above it (closures have no doc comment to hang it
// on) or earlier on its own line.
func isHotLit(fset *token.FileSet, lines map[int]bool, lit *ast.FuncLit) bool {
	line := fset.Position(lit.Pos()).Line
	return lines[line-1] || lines[line]
}
