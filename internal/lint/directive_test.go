package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"finitelb/internal/lint/analysis"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text         string
		wantAnalyzer string
		wantReason   string
		wantOK       bool
	}{
		{"//lint:allow hotpath cold error exit", "hotpath", "cold error exit", true},
		{"//lint:allow detrand", "detrand", "", true},
		{"//lint:allow", "", "", true},
		{"//lint:allow   walltime   spaced   reason  ", "walltime", "spaced   reason", true},
		{"//lint:allowances are different", "", "", false},
		{"// lint:allow hotpath x", "", "", false}, // directives take no space after //
		{"//finitelb:hotpath", "", "", false},
	}
	for _, c := range cases {
		an, reason, ok := parseAllow(c.text)
		if an != c.wantAnalyzer || reason != c.wantReason || ok != c.wantOK {
			t.Errorf("parseAllow(%q) = %q, %q, %v; want %q, %q, %v",
				c.text, an, reason, ok, c.wantAnalyzer, c.wantReason, c.wantOK)
		}
	}
}

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// posOnLine fabricates a Pos on the given 1-based line of the file.
func posOnLine(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppressSameAndPreviousLine(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //lint:allow hotpath same-line reason
	//lint:allow hotpath next-line reason
	_ = 2
	_ = 3
}
`
	fset, files := parseOne(t, src)
	diags := []analysis.Diagnostic{
		{Pos: posOnLine(fset, 4), Message: "on the allow line"},
		{Pos: posOnLine(fset, 6), Message: "below the allow line"},
		{Pos: posOnLine(fset, 7), Message: "unprotected"},
	}
	got := suppress(fset, files, "hotpath", diags)
	if len(got) != 1 || got[0].Message != "unprotected" {
		t.Fatalf("suppress kept %v, want only the unprotected diagnostic", got)
	}
}

func TestSuppressWrongAnalyzerDoesNothing(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //lint:allow detrand reason for another analyzer
}
`
	fset, files := parseOne(t, src)
	diags := []analysis.Diagnostic{{Pos: posOnLine(fset, 4), Message: "hot finding"}}
	got := suppress(fset, files, "hotpath", diags)
	if len(got) != 1 || got[0].Message != "hot finding" {
		t.Fatalf("an allow for another analyzer must not suppress; got %v", got)
	}
}

func TestSuppressEmptyReasonReportsAndKeeps(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //lint:allow hotpath
}
`
	fset, files := parseOne(t, src)
	diags := []analysis.Diagnostic{{Pos: posOnLine(fset, 4), Message: "hot finding"}}
	got := suppress(fset, files, "hotpath", diags)
	if len(got) != 2 {
		t.Fatalf("want original finding plus empty-reason report, got %v", got)
	}
}

func TestSuppressStaleAllowReported(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //lint:allow hotpath stale since the refactor
}
`
	fset, files := parseOne(t, src)
	got := suppress(fset, files, "hotpath", nil)
	if len(got) != 1 {
		t.Fatalf("want one stale-allow report, got %v", got)
	}
}

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"finitelb/internal/sim":                               "finitelb/internal/sim",
		"finitelb/internal/sim [finitelb/internal/sim.test]":  "finitelb/internal/sim",
		"finitelb/internal/sim_test [finitelb/internal/sim.test]": "finitelb/internal/sim",
		"finitelb/internal/sim.test":                          "finitelb/internal/sim",
	}
	for in, want := range cases {
		if got := normalizePath(in); got != want {
			t.Errorf("normalizePath(%q) = %q, want %q", in, got, want)
		}
	}
	if !isDeterministic("finitelb/internal/sim [finitelb/internal/sim.test]") {
		t.Error("test variant of a deterministic package must stay deterministic")
	}
	if isDeterministic("finitelb/internal/lb") {
		t.Error("internal/lb is live, not deterministic")
	}
	if !isCmd("finitelb/cmd/sweep") || isCmd("finitelb/internal/sim") {
		t.Error("isCmd misclassifies")
	}
}
