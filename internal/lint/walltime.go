package lint

import (
	"go/ast"
	"go/types"

	"finitelb/internal/lint/analysis"
)

// WallTimeAnalyzer (walltime) forbids wall-clock reads and timers in
// deterministic packages. Simulated time is the only clock the model and
// simulator code may consult: a time.Now() or timer in internal/sim (or
// any package it leans on) couples results to the host scheduler and
// breaks the bit-identity goldens in ways no fixed seed can pin.
// internal/lb and the cmd/ binaries are live systems and are exempt —
// their whole point is wall-clock fidelity.
var WallTimeAnalyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads and timers in deterministic packages",
	Run:  runWallTime,
}

// wallFuncs are the package time functions that read the host clock or
// arm host timers. Pure duration/format arithmetic (ParseDuration,
// Duration.Seconds, Unix construction from explicit values) stays legal.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallTime(pass *analysis.Pass) error {
	if !isDeterministic(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || pkgPathOf(obj) != "time" {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || !wallFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic package %s; model code runs on simulated time only",
				fn.Name(), normalizePath(pass.Path))
			return true
		})
	}
	return nil
}
