package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"finitelb/internal/lint/analysis"
)

// ErrRetAnalyzer (errret) is the cmd/-scoped errcheck: a call whose last
// result is an error, targeting the io/flag/encoding families, used as a
// bare statement silently swallows the error. The binaries are the
// repository's user surface — a sqdelay or sweep run whose CSV write
// failed half-way must exit non-zero, not truncate quietly. Scoped to
// cmd/ because library packages already return errors upward and the
// oracle tests would catch a swallowed one.
//
// An explicit `_ = f()` is visible intent and passes; `defer f.Close()`
// on a read path is conventional and passes (defers are not bare
// statements in this analyzer's sense).
var ErrRetAnalyzer = &analysis.Analyzer{
	Name: "errret",
	Doc:  "cmd/ packages must not discard errors from io/flag/encoding calls",
	Run:  runErrRet,
}

// errRetPkgs are the packages whose error returns must be consumed. The
// encoding/* family is matched by prefix.
var errRetPkgs = map[string]bool{
	"io":    true,
	"bufio": true,
	"flag":  true,
	"os":    true,
}

func errRetPkg(path string) bool {
	return errRetPkgs[path] || strings.HasPrefix(path, "encoding/")
}

func runErrRet(pass *analysis.Pass) error {
	if !isCmd(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := ast.Unparen(call.Fun)
			var obj types.Object
			switch fn := fun.(type) {
			case *ast.Ident:
				obj = pass.TypesInfo.Uses[fn]
			case *ast.SelectorExpr:
				obj = pass.TypesInfo.Uses[fn.Sel]
			}
			if obj == nil || !errRetPkg(pkgPathOf(obj)) {
				return true
			}
			sig, ok := pass.TypesInfo.TypeOf(fun).(*types.Signature)
			if !ok {
				return true
			}
			res := sig.Results()
			if res.Len() == 0 {
				return true
			}
			last := res.At(res.Len() - 1).Type()
			if !isErrorType(last) {
				return true
			}
			pass.Reportf(call.Pos(), "error from %s.%s silently discarded; check it (or assign to _ to show intent)",
				pkgPathOf(obj), obj.Name())
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
