// Package lint is finitelint: a suite of static analyzers encoding the
// repository's load-bearing invariants — the ones the headline results
// rest on but ordinary tests only spot-check:
//
//   - detrand: deterministic packages draw randomness from
//     internal/frand or an explicitly seeded source threaded as a
//     parameter, never from the global math/rand state.
//   - walltime: deterministic packages never read the wall clock; the
//     simulator's bit-identity goldens assume simulated time only.
//   - hotpath: functions annotated //finitelb:hotpath stay free of
//     alloc-causing constructs — the 0 allocs/event guarantee of the
//     typed event loops and the live dispatch path, checked at the
//     source level instead of only by TestAllocFreeEventPath.
//   - atomicfield: a variable accessed through sync/atomic anywhere is
//     accessed through sync/atomic everywhere — no mixed atomic/plain
//     reads of the slot table, idle stack, or version tags.
//   - errret: cmd/ packages do not silently discard error returns from
//     io, flag, bufio, or encoding calls.
//
// Suppressions are explicit and documented: //lint:allow <analyzer>
// <reason>, where the non-empty reason is machine-enforced. See doc.go
// "Machine-checked invariants" at the repository root for the directive
// grammar and how to run the suite.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finitelb/internal/lint/analysis"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRandAnalyzer,
		WallTimeAnalyzer,
		HotPathAnalyzer,
		AtomicFieldAnalyzer,
		ErrRetAnalyzer,
	}
}

// deterministicPkgs are the packages whose results must be a pure
// function of their seeds: the analytic models, the simulator and its
// support packages. internal/lb and the cmd/ binaries are live — they
// are *supposed* to read clocks and may use ambient randomness.
var deterministicPkgs = map[string]bool{
	"finitelb":                     true,
	"finitelb/internal/asym":       true,
	"finitelb/internal/chaos":      true,
	"finitelb/internal/embedded":   true,
	"finitelb/internal/engine":     true,
	"finitelb/internal/figures":    true,
	"finitelb/internal/frand":      true,
	"finitelb/internal/markov":     true,
	"finitelb/internal/mat":        true,
	"finitelb/internal/minindex":   true,
	"finitelb/internal/qbd":        true,
	"finitelb/internal/sim":        true,
	"finitelb/internal/sqd":        true,
	"finitelb/internal/statespace": true,
	"finitelb/internal/stats":      true,
	"finitelb/internal/trace":      true,
	"finitelb/internal/workload":   true,
}

// normalizePath strips driver decoration from an import path: go vet
// names test variants "pkg [pkg.test]" and external test packages
// "pkg_test [pkg.test]"; analysistest fixtures reuse real package paths
// under testdata. The determinism invariants bind test files too — a
// wall-clock read in a golden test breaks reproducibility just as surely.
func normalizePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// isDeterministic reports whether the pass's package carries the
// determinism invariants.
func isDeterministic(path string) bool {
	return deterministicPkgs[normalizePath(path)]
}

// isCmd reports whether the pass's package is one of the repository's
// binaries (or a fixture standing in for one).
func isCmd(path string) bool {
	path = normalizePath(path)
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// RunAnalyzer runs one analyzer over a type-checked package and returns
// its diagnostics with //lint:allow suppression applied.
func RunAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Path:      path,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return suppress(fset, files, a.Name, diags), nil
}

// Finding is one rendered diagnostic from a full-suite run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run runs the whole suite over one package.
func Run(fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var out []Finding
	for _, a := range Analyzers() {
		diags, err := RunAnalyzer(a, fset, files, path, pkg, info)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
	}
	return out, nil
}

// pkgPathOf returns the import path of the package a selector or
// identifier's object comes from, or "" for local/universe objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
