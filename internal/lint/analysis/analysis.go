// Package analysis is a self-contained, standard-library-only subset of
// golang.org/x/tools/go/analysis — just enough framework for the
// repository's own invariant checkers (package finitelb/internal/lint).
//
// The repository builds offline against a bare module cache, so the real
// x/tools module cannot be a dependency; this shim mirrors its core API
// (Analyzer, Pass, Diagnostic, Pass.Reportf) so the analyzers read like —
// and could be mechanically ported to — ordinary x/tools passes the day
// the dependency becomes available. Facts, require-graphs, and result
// propagation are deliberately absent: every finitelint analyzer is
// single-package by design.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name (the suppression
// directives key on it), a doc string, and the per-package Run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the import path the driver wants predicates to match
	// against. It is Pkg.Path() with driver-specific decoration removed
	// (go vet names test variants "pkg [pkg.test]"; analysistest names
	// fixtures by their testdata-relative directory).
	Path string

	// Report receives every diagnostic. Drivers install it; analyzers
	// call Reportf.
	Report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver layer
// attaches the analyzer name when rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
