package frand

import (
	"math/rand/v2"
	"testing"
)

// TestBitIdenticalToRandV2 is the package's entire reason to exist: every
// derivation must reproduce math/rand/v2 over the same PCG seed bit for
// bit, across an interleaved mix of calls (interleaving catches any
// divergence in how many Uint64s each derivation consumes).
func TestBitIdenticalToRandV2(t *testing.T) {
	for _, seed := range []struct{ s1, s2 uint64 }{
		{1, 0x5bd1e995}, {42, 0x5bd1e995}, {0, 0}, {1 << 63, 12345},
	} {
		std := rand.New(rand.NewPCG(seed.s1, seed.s2))
		fr := New(seed.s1, seed.s2)
		for i := 0; i < 200_000; i++ {
			switch i % 5 {
			case 0:
				if a, b := std.Uint64(), fr.Uint64(); a != b {
					t.Fatalf("seed %v draw %d: Uint64 %x != %x", seed, i, a, b)
				}
			case 1:
				if a, b := std.Float64(), fr.Float64(); a != b {
					t.Fatalf("seed %v draw %d: Float64 %v != %v", seed, i, a, b)
				}
			case 2:
				if a, b := std.ExpFloat64(), fr.ExpFloat64(); a != b {
					t.Fatalf("seed %v draw %d: ExpFloat64 %v != %v", seed, i, a, b)
				}
			case 3:
				n := 1 + i%1000
				if a, b := std.IntN(n), fr.IntN(n); a != b {
					t.Fatalf("seed %v draw %d: IntN(%d) %v != %v", seed, i, n, a, b)
				}
			case 4:
				n := 1 << (i % 16) // power-of-two mask path
				if a, b := std.IntN(n), fr.IntN(n); a != b {
					t.Fatalf("seed %v draw %d: IntN(%d) %v != %v", seed, i, n, a, b)
				}
			}
		}
	}
}

// TestSharedStreamWithRandWrapper: wrapping an *RNG in rand.New and
// alternating wrapper draws with direct draws must stay on one coherent
// stream — the property the simulator leans on when it hands the same
// generator to minindex descents (via *rand.Rand) and to the typed event
// loop (direct calls).
func TestSharedStreamWithRandWrapper(t *testing.T) {
	ref := rand.New(rand.NewPCG(7, 9))
	fr := New(7, 9)
	wrapped := rand.New(fr)
	for i := 0; i < 50_000; i++ {
		var a, b float64
		if i%2 == 0 {
			a, b = ref.ExpFloat64(), fr.ExpFloat64()
		} else {
			a, b = ref.ExpFloat64(), wrapped.ExpFloat64()
		}
		if a != b {
			t.Fatalf("draw %d: %v != %v", i, a, b)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	New(1, 2).IntN(0)
}

func BenchmarkExpFloat64(b *testing.B) {
	b.Run("frand", func(b *testing.B) {
		fr := New(1, 2)
		for i := 0; i < b.N; i++ {
			_ = fr.ExpFloat64()
		}
	})
	b.Run("rand-v2", func(b *testing.B) {
		std := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < b.N; i++ {
			_ = std.ExpFloat64()
		}
	})
}

func BenchmarkIntN(b *testing.B) {
	b.Run("frand", func(b *testing.B) {
		fr := New(1, 2)
		for i := 0; i < b.N; i++ {
			_ = fr.IntN(1000)
		}
	})
	b.Run("rand-v2", func(b *testing.B) {
		std := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < b.N; i++ {
			_ = std.IntN(1000)
		}
	})
}
