// Package frand is a concrete, devirtualized re-implementation of the
// exact pseudo-random streams the simulator has always drawn: a PCG-DXSM
// generator plus the math/rand/v2 derivations of Float64, ExpFloat64
// (Marsaglia–Tsang ziggurat) and IntN (Lemire reduction). Every method is
// bit-identical to calling the corresponding *rand.Rand method over a
// rand.PCG seeded the same way — pinned by the equivalence tests in this
// package — but the calls are direct (and the cheap ones inlinable)
// instead of dispatching each Uint64 through the rand.Source interface.
// That matters because the discrete-event hot loop in internal/sim draws
// 4–6 variates per job; routed through *rand.Rand they cost an interface
// hop each, which profiles at ~15% of event time.
//
// An *RNG also implements rand.Source, so cold paths can wrap the same
// generator in rand.New and interleave *rand.Rand draws with direct ones
// on a single stream without breaking seed determinism — the simulator
// uses this for the minindex tie-break descents and for exotic workload
// plugins that only speak *rand.Rand.
//
// The derivation algorithms and ziggurat tables follow Go's
// math/rand/v2 (BSD license); they are reproduced rather than imported
// because the standard library does not export them in a form that can be
// devirtualized, and because bit-identity with the existing goldens
// requires these exact algorithms, not merely distributionally equivalent
// ones.
package frand

import (
	"math"
	"math/bits"
)

// RNG is a PCG-DXSM generator with 128 bits of state, identical in
// sequence to math/rand/v2's rand.PCG. Not safe for concurrent use.
type RNG struct {
	hi, lo uint64
}

// New returns an RNG seeded exactly as rand.NewPCG(seed1, seed2).
func New(seed1, seed2 uint64) *RNG { return &RNG{hi: seed1, lo: seed2} }

// next advances the 128-bit LCG state (constants from the official PCG
// implementation, as used by math/rand/v2).
func (r *RNG) next() (hi, lo uint64) {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	hi, lo = bits.Mul64(r.lo, mulLo)
	hi += r.hi*mulLo + r.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	r.lo = lo
	r.hi = hi
	return hi, lo
}

// Uint64 returns the next output of the generator (DXSM output function).
// It also satisfies rand.Source, so rand.New(r) shares this stream.
func (r *RNG) Uint64() uint64 {
	hi, lo := r.next()
	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= (lo | 1)
	return hi
}

// Float64 returns a uniform float64 in [0, 1), bit-identical to
// (*rand.Rand).Float64.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()<<11>>11) / (1 << 53)
}

// IntN returns a uniform int in [0, n), bit-identical to
// (*rand.Rand).IntN (Lemire's multiply-shift reduction with rejection).
// It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("frand: invalid argument to IntN")
	}
	return int(r.uint64n(uint64(n)))
}

func (r *RNG) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two: mask
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// ExpFloat64 returns an Exp(1) variate via the Marsaglia–Tsang ziggurat,
// bit-identical to (*rand.Rand).ExpFloat64. The fast path reads its two
// table entries from one interleaved array (kw) rather than two parallel
// ones, so the common case touches a single cache line; the rejection
// tables fe are only read on the slow path.
func (r *RNG) ExpFloat64() float64 {
	const re = 7.69711747013104972
	for {
		u := r.Uint64()
		j := uint32(u)
		i := uint8(u >> 32)
		e := kw[i]
		x := float64(j) * float64(e.we)
		if j < e.ke {
			return x
		}
		if i == 0 {
			return re - math.Log(r.Float64())
		}
		if fe[i]+float32(r.Float64())*(fe[i-1]-fe[i]) < float32(math.Exp(-x)) {
			return x
		}
	}
}

// kw interleaves the ziggurat ke/we tables (same values, one line per
// lookup).
var kw = func() (t [256]struct {
	ke uint32
	we float32
}) {
	for i := range t {
		t[i].ke, t[i].we = ke[i], we[i]
	}
	return
}()
