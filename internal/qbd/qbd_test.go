package qbd

import (
	"errors"
	"math"
	"testing"

	"finitelb/internal/markov"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

func lbModel(n, d int, rho float64, t int) *sqd.LowerBound {
	return &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: n, D: d, Rho: rho}, T: t}}
}

func ubModel(n, d int, rho float64, t int) *sqd.UpperBound {
	return &sqd.UpperBound{P: sqd.BoundParams{Params: sqd.Params{N: n, D: d, Rho: rho}, T: t}}
}

func TestBlocksShape(t *testing.T) {
	for _, cfg := range []struct{ n, d, t int }{{3, 2, 2}, {3, 2, 3}, {6, 2, 3}, {4, 3, 2}} {
		b, err := NewBlocks(lbModel(cfg.n, cfg.d, 0.7, cfg.t))
		if err != nil {
			t.Fatalf("N=%d T=%d: %v", cfg.n, cfg.t, err)
		}
		want := int(statespace.BinomialInt(cfg.n+cfg.t-1, cfg.t))
		if b.BlockSize() != want {
			t.Errorf("N=%d T=%d block size = %d, want C(%d,%d) = %d",
				cfg.n, cfg.t, b.BlockSize(), cfg.n+cfg.t-1, cfg.t, want)
		}
	}
}

// TestBlocksConservation: the generator rows must sum to zero across
// (R00|R01) for boundary rows and (A2|A1|A0) for repeating rows — except
// for the upper bound, whose cancelled departures leak outflow on purpose.
func TestBlocksConservation(t *testing.T) {
	b, err := NewBlocks(lbModel(3, 2, 0.8, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Boundary.Len(); i++ {
		sum := 0.0
		for j := 0; j < b.Boundary.Len(); j++ {
			sum += b.R00.At(i, j)
		}
		for j := 0; j < b.BlockSize(); j++ {
			sum += b.R01.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("boundary row %v sums to %v", b.Boundary.At(i), sum)
		}
	}
	rows := b.A0.Add(b.A1).Add(b.A2).RowSums()
	for i, s := range rows {
		if math.Abs(s) > 1e-12 {
			t.Errorf("repeating row %v sums to %v", b.B1[i], s)
		}
	}
}

// TestMM1Reduction: with N=1 the truncated space is the whole M/M/1 chain
// and no redirection ever fires, so LB, improved LB and UB must all give
// exactly the M/M/1 sojourn time 1/(1−ρ).
func TestMM1Reduction(t *testing.T) {
	for _, rho := range []float64{0.2, 0.5, 0.9, 0.99} {
		want := 1 / (1 - rho)
		for _, tc := range []struct {
			name  string
			model BoundModel
			opts  Options
		}{
			{"lower", lbModel(1, 1, rho, 2), Options{}},
			{"improved", lbModel(1, 1, rho, 2), Options{ImprovedLB: true}},
			{"upper", ubModel(1, 1, rho, 2), Options{}},
		} {
			sol, err := Solve(tc.model, tc.opts)
			if err != nil {
				t.Fatalf("%s ρ=%v: %v", tc.name, rho, err)
			}
			if math.Abs(sol.MeanDelay-want) > 1e-8*want {
				t.Errorf("%s ρ=%v: delay = %v, want %v", tc.name, rho, sol.MeanDelay, want)
			}
		}
	}
}

func TestTotalMassIsOne(t *testing.T) {
	for _, tc := range []struct {
		model BoundModel
		opts  Options
	}{
		{lbModel(3, 2, 0.75, 2), Options{}},
		{lbModel(3, 2, 0.75, 2), Options{ImprovedLB: true}},
		{ubModel(3, 2, 0.6, 2), Options{}},
		{lbModel(6, 2, 0.9, 3), Options{}},
		{lbModel(4, 4, 0.85, 2), Options{}},
	} {
		sol, err := Solve(tc.model, tc.opts)
		if err != nil {
			t.Fatalf("%T %+v: %v", tc.model, tc.opts, err)
		}
		mass, err := sol.TotalMass(nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("%T: total mass = %v, want 1", tc.model, mass)
		}
	}
}

// TestTheorem3GeometricDecay: the lower-bound stationary distribution obeys
// π_{q+1} = ρᴺ·π_q exactly — the paper's Theorem 3 — even when solved with
// the full rate matrix R.
func TestTheorem3GeometricDecay(t *testing.T) {
	for _, cfg := range []struct {
		n, d int
		rho  float64
		tt   int
	}{{3, 2, 0.8, 2}, {3, 3, 0.6, 2}, {4, 2, 0.9, 3}, {2, 2, 0.5, 4}} {
		sol, err := Solve(lbModel(cfg.n, cfg.d, cfg.rho, cfg.tt), Options{})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		ratio := math.Pow(cfg.rho, float64(cfg.n))
		for q := 1; q <= 4; q++ {
			got := sol.LevelMass(q+1) / sol.LevelMass(q)
			if math.Abs(got-ratio) > 1e-8 {
				t.Errorf("%+v: π_%d/π_%d mass ratio = %v, want ρᴺ = %v", cfg, q+1, q, got, ratio)
			}
		}
	}
}

// TestImprovedLBMatchesFull: Theorem 3's scalar shortcut must agree with
// the full matrix-geometric lower bound to solver precision.
func TestImprovedLBMatchesFull(t *testing.T) {
	for _, cfg := range []struct {
		n, d int
		rho  float64
		tt   int
	}{{3, 2, 0.75, 2}, {3, 2, 0.95, 3}, {6, 2, 0.85, 2}, {4, 3, 0.7, 2}} {
		full, err := Solve(lbModel(cfg.n, cfg.d, cfg.rho, cfg.tt), Options{})
		if err != nil {
			t.Fatalf("full %+v: %v", cfg, err)
		}
		imp, err := Solve(lbModel(cfg.n, cfg.d, cfg.rho, cfg.tt), Options{ImprovedLB: true})
		if err != nil {
			t.Fatalf("improved %+v: %v", cfg, err)
		}
		if math.Abs(full.MeanDelay-imp.MeanDelay) > 1e-7*full.MeanDelay {
			t.Errorf("%+v: full LB delay %v ≠ improved LB delay %v", cfg, full.MeanDelay, imp.MeanDelay)
		}
	}
}

func TestImprovedLBRejectsUpperBound(t *testing.T) {
	if _, err := Solve(ubModel(3, 2, 0.5, 2), Options{ImprovedLB: true}); err == nil {
		t.Error("ImprovedLB accepted an upper-bound model")
	}
}

// TestLRIterationCount reproduces the paper's Section IV-A remark that the
// logarithmic reduction needs only a handful of iterations (k ≤ 6 for
// their configurations; we allow a little slack for the very high-ρ runs).
func TestLRIterationCount(t *testing.T) {
	for _, cfg := range []struct {
		n, d int
		rho  float64
		tt   int
	}{{3, 2, 0.75, 2}, {3, 2, 0.95, 3}, {6, 2, 0.9, 3}, {12, 2, 0.75, 3}} {
		sol, err := Solve(lbModel(cfg.n, cfg.d, cfg.rho, cfg.tt), Options{})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if sol.LRIterations > 8 {
			t.Errorf("%+v: logarithmic reduction took %d iterations, expected ≤ 8", cfg, sol.LRIterations)
		}
	}
}

// TestAgainstBruteForce: the matrix-geometric solution must match a direct
// Gauss–Seidel solve of the same model on a deep finite truncation.
func TestAgainstBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model BoundModel
	}{
		{"lower N=3 T=2", lbModel(3, 2, 0.8, 2)},
		{"lower N=3 T=3", lbModel(3, 2, 0.7, 3)},
		{"upper N=3 T=2", ubModel(3, 2, 0.6, 2)},
		{"lower JSQ N=3", lbModel(3, 3, 0.75, 2)},
		{"upper N=4 T=2", ubModel(4, 2, 0.5, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.model, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p := tc.model.Bound()
			states := statespace.EnumTruncated(p.N, p.T, 220)
			brute, err := markov.SolveTruncated(tc.model, states, 1e-13, 400000)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sol.MeanDelay-brute.MeanDelay) > 1e-6*brute.MeanDelay {
				t.Errorf("matrix-geometric delay %v vs brute force %v", sol.MeanDelay, brute.MeanDelay)
			}
		})
	}
}

// TestUpperBoundStability: the wasted service and phantom arrivals shrink
// the stability region; at utilizations near 1 the T=2 upper bound must
// report ErrUnstable, and the drift fields must explain why.
func TestUpperBoundStability(t *testing.T) {
	if _, err := Solve(ubModel(3, 2, 0.97, 2), Options{}); !errors.Is(err, ErrUnstable) {
		t.Errorf("ρ=0.97 T=2: err = %v, want ErrUnstable", err)
	}
	sol, err := Solve(ubModel(3, 2, 0.5, 2), Options{})
	if err != nil {
		t.Fatalf("ρ=0.5 T=2 should be stable: %v", err)
	}
	if !(sol.DriftUp < sol.DriftDown) {
		t.Errorf("stable solution has drift up %v ≥ down %v", sol.DriftUp, sol.DriftDown)
	}
}

// TestLowerBoundStableEverywhere: the jockeying model keeps full service
// capacity, so it must be stable for every ρ < 1.
func TestLowerBoundStableEverywhere(t *testing.T) {
	for _, rho := range []float64{0.5, 0.9, 0.99} {
		if _, err := Solve(lbModel(3, 2, rho, 2), Options{}); err != nil {
			t.Errorf("ρ=%v: %v", rho, err)
		}
	}
}

// TestBoundsSandwichExact: LB ≤ exact ≤ UB on configurations small enough
// for an exact solve, and the UB tightens with T (the paper's
// accuracy-vs-complexity trade-off).
func TestBoundsSandwichExact(t *testing.T) {
	const n, d, rho = 3, 2, 0.8
	exact, err := markov.SolveExact(sqd.Params{N: n, D: d, Rho: rho}, markov.ExactOptions{QueueCap: 30})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Solve(lbModel(n, d, rho, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ub2, err := Solve(ubModel(n, d, rho, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ub3, err := Solve(ubModel(n, d, rho, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(lb.MeanDelay <= exact.MeanDelay+1e-9) {
		t.Errorf("LB %v > exact %v", lb.MeanDelay, exact.MeanDelay)
	}
	if !(ub2.MeanDelay >= exact.MeanDelay-1e-9) {
		t.Errorf("UB(T=2) %v < exact %v", ub2.MeanDelay, exact.MeanDelay)
	}
	if !(ub3.MeanDelay >= exact.MeanDelay-1e-9) {
		t.Errorf("UB(T=3) %v < exact %v", ub3.MeanDelay, exact.MeanDelay)
	}
	if !(ub3.MeanDelay <= ub2.MeanDelay+1e-9) {
		t.Errorf("UB not tighter at T=3: %v vs T=2 %v", ub3.MeanDelay, ub2.MeanDelay)
	}
}
