package qbd

import (
	"fmt"
	"math"

	"finitelb/internal/mat"
	"finitelb/internal/sqd"
)

// Solution is the stationary solution of a bound model.
type Solution struct {
	Blocks *Blocks
	model  BoundModel // the solved model; drives JoinDistribution's redirects

	PiBoundary []float64 // stationary mass of the boundary states
	Pi0, Pi1   []float64 // stationary mass of blocks B0 and B1
	R          *mat.Dense
	// ScalarRatio is ρᴺ when the improved lower-bound path of Theorem 3
	// replaced the rate matrix by a scalar multiple of the identity, and 0
	// otherwise.
	ScalarRatio float64

	LRIterations int     // logarithmic-reduction iterations used (0 for Theorem 3)
	DriftUp      float64 // πA0e
	DriftDown    float64 // πA2e

	MeanJobs    float64 // E[#m], including any phantom upper-bound work
	MeanWaiting float64 // E[Σ max(m_i−1, 0)]
	MeanWait    float64 // E[waiting time] = MeanWaiting/(λN)
	MeanDelay   float64 // E[sojourn time] = MeanWait + 1
}

// Options tunes the matrix-geometric solve.
type Options struct {
	// Tol is the logarithmic-reduction convergence tolerance on the
	// row-stochasticity of G. Default 1e-12.
	Tol float64
	// ImprovedLB replaces the rate matrix by ρᴺ·I (Theorem 3). Only valid
	// for the lower-bound model; Solve rejects it otherwise.
	ImprovedLB bool
}

// Solve computes the stationary distribution and delay metrics of a bound
// model via Theorem 1 (or Theorem 3 when opts.ImprovedLB is set).
func Solve(model BoundModel, opts Options) (*Solution, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	if opts.ImprovedLB {
		if _, ok := model.(*sqd.LowerBound); !ok {
			return nil, fmt.Errorf("qbd: ImprovedLB (Theorem 3) applies only to the lower-bound model, got %T", model)
		}
	}
	b, err := NewBlocks(model)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Blocks: b, model: model}

	sol.DriftUp, sol.DriftDown, err = Drift(b.A0, b.A1, b.A2)
	if err != nil {
		return nil, err
	}
	if sol.DriftUp >= sol.DriftDown {
		return nil, fmt.Errorf("%w: πA0e = %.6g ≥ πA2e = %.6g (N=%d d=%d ρ=%v T=%d)",
			ErrUnstable, sol.DriftUp, sol.DriftDown, b.P.N, b.P.D, b.P.Rho, b.P.T)
	}

	m := b.BlockSize()
	var rEff *mat.Dense // the matrix standing in for R in Eq. (13)/(14)
	if opts.ImprovedLB {
		sol.ScalarRatio = math.Pow(b.P.Rho, float64(b.P.N))
		rEff = mat.Identity(m).Scale(sol.ScalarRatio)
	} else {
		g, iters, err := LogReduction(b.A0, b.A1, b.A2, opts.Tol)
		if err != nil {
			return nil, err
		}
		sol.LRIterations = iters
		sol.R, err = RateMatrix(b.A0, b.A1, b.A2, g)
		if err != nil {
			return nil, err
		}
		rEff = sol.R
	}

	if err := sol.solveBoundary(rEff); err != nil {
		return nil, err
	}
	if err := sol.metrics(rEff); err != nil {
		return nil, err
	}
	return sol, nil
}

// solveBoundary assembles and solves the finite system of Eq. (13): the
// unknown row vector x = (π_bnd, π0, π1) against the block matrix
//
//	⎡ R00  R01   0        ⎤
//	⎢ R10  A1    A0       ⎥
//	⎣ 0    A2    A1+R·A2  ⎦
//
// whose balance equations have rank deficiency 1; one equation is replaced
// by the matrix-geometric normalization
// π_bnd·e + π0·e + π1·(I−R)⁻¹·e = 1.
func (s *Solution) solveBoundary(r *mat.Dense) error {
	b := s.Blocks
	nb := b.Boundary.Len()
	m := b.BlockSize()
	size := nb + 2*m

	sys := mat.NewDense(size, size)
	copyBlock := func(dst *mat.Dense, src *mat.Dense, ro, co int) {
		for i := 0; i < src.Rows(); i++ {
			for j := 0; j < src.Cols(); j++ {
				dst.Set(ro+i, co+j, src.At(i, j))
			}
		}
	}
	copyBlock(sys, b.R00, 0, 0)
	copyBlock(sys, b.R01, 0, nb)
	copyBlock(sys, b.R10, nb, 0)
	copyBlock(sys, b.A1, nb, nb)
	copyBlock(sys, b.A0, nb, nb+m)
	copyBlock(sys, b.A2, nb+m, nb)
	copyBlock(sys, b.A1.Add(r.Mul(b.A2)), nb+m, nb+m)

	// Normalization weights: 1 for boundary and B0 states, (I−R)⁻¹e for B1.
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	tailWeights, err := mat.GeometricInv(r)
	if err != nil {
		return fmt.Errorf("qbd: (I−R) singular — spectral radius ≥ 1: %w", err)
	}
	w := make([]float64, size)
	for i := 0; i < nb+m; i++ {
		w[i] = 1
	}
	tw := tailWeights.MulVec(ones)
	copy(w[nb+m:], tw)

	// Replace the first balance equation (column 0) by the normalization.
	for i := 0; i < size; i++ {
		sys.Set(i, 0, w[i])
	}
	rhs := make([]float64, size)
	rhs[0] = 1
	x, err := mat.SolveLeft(sys, rhs)
	if err != nil {
		return fmt.Errorf("qbd: boundary system solve: %w", err)
	}
	for _, v := range x {
		if v < -1e-9 {
			return fmt.Errorf("qbd: boundary solve produced negative probability %.3g", v)
		}
	}
	s.PiBoundary = x[:nb]
	s.Pi0 = x[nb : nb+m]
	s.Pi1 = x[nb+m:]
	return nil
}

// metrics computes the delay metrics from the stationary solution using
// geometric level sums: in non-boundary blocks every server is busy, so a
// state of block q ≥ 1 holds exactly (q−1)·N more jobs (and waiting jobs)
// than its pattern-aligned representative in B1.
func (s *Solution) metrics(r *mat.Dense) error {
	b := s.Blocks
	n := float64(b.P.N)

	for i, p := range s.PiBoundary {
		st := b.Boundary.At(i)
		s.MeanJobs += p * float64(st.Total())
		s.MeanWaiting += p * float64(st.WaitingJobs())
	}
	for i, p := range s.Pi0 {
		st := b.B0[i]
		s.MeanJobs += p * float64(st.Total())
		s.MeanWaiting += p * float64(st.WaitingJobs())
	}

	jobs1 := make([]float64, len(s.Pi1))
	wait1 := make([]float64, len(s.Pi1))
	for i, st := range b.B1 {
		jobs1[i] = float64(st.Total())
		wait1[i] = float64(st.WaitingJobs())
	}
	// Σ_{q≥1} π1·R^{q−1}·v  and  Σ_{q≥1} (q−1)·π1·R^{q−1}·(N·e).
	sum1, err := mat.GeometricVecSum(s.Pi1, r)
	if err != nil {
		return err
	}
	weighted, err := mat.GeometricWeightedVecSum(s.Pi1, r)
	if err != nil {
		return err
	}
	s.MeanJobs += mat.Dot(sum1, jobs1) + n*mat.VecSum(weighted)
	s.MeanWaiting += mat.Dot(sum1, wait1) + n*mat.VecSum(weighted)

	lamN := b.P.TotalArrivalRate()
	s.MeanWait = s.MeanWaiting / lamN
	s.MeanDelay = s.MeanWait + 1
	return nil
}

// TotalMass returns the total stationary probability implied by the
// solution (should be 1); exposed for validation.
func (s *Solution) TotalMass(r *mat.Dense) (float64, error) {
	if r == nil {
		if s.R != nil {
			r = s.R
		} else {
			r = mat.Identity(len(s.Pi1)).Scale(s.ScalarRatio)
		}
	}
	tail, err := mat.GeometricVecSum(s.Pi1, r)
	if err != nil {
		return 0, err
	}
	return mat.VecSum(s.PiBoundary) + mat.VecSum(s.Pi0) + mat.VecSum(tail), nil
}

// LevelMass returns π_q·e for q ≥ 1 using the geometric recursion; exposed
// for the Theorem 3 ρᴺ-decay validation.
func (s *Solution) LevelMass(q int) float64 {
	if q < 1 {
		panic("qbd: LevelMass requires q ≥ 1")
	}
	v := append([]float64(nil), s.Pi1...)
	for i := 1; i < q; i++ {
		if s.R != nil {
			v = s.R.VecMul(v)
		} else {
			mat.VecScale(v, s.ScalarRatio)
		}
	}
	return mat.VecSum(v)
}
