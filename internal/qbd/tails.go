package qbd

import (
	"fmt"

	"finitelb/internal/mat"
	"finitelb/internal/statespace"
)

// ServerTail returns the stationary probability that a uniformly chosen
// server of the bound model holds at least k jobs — the finite-regime
// counterpart of Mitzenmacher's asymptotic fixed point s_k, here for the
// modified (bound) chains.
//
// Blocks are resolved exactly: a state of block q ≥ 1 is its B1
// representative shifted up by q−1 levels, so its per-server occupancy
// fraction at threshold k equals the representative's at threshold
// k−(q−1); once q ≥ k every server in the block sits at or above k (all
// non-boundary servers are busy), so the remaining geometric mass
// contributes wholesale.
func (s *Solution) ServerTail(k int) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("qbd: negative occupancy threshold %d", k)
	}
	if k == 0 {
		return 1, nil
	}
	b := s.Blocks
	tail := 0.0
	for i, p := range s.PiBoundary {
		tail += p * fracAtLeast(b.Boundary.At(i), k)
	}
	for i, p := range s.Pi0 {
		tail += p * fracAtLeast(b.B0[i], k)
	}

	// Blocks q = 1 .. k−1 explicitly (π_q = π_1·R^{q−1}); from q = k on,
	// every server counts, so the residual mass contributes in full.
	piQ := append([]float64(nil), s.Pi1...)
	for q := 1; q < k; q++ {
		for i, p := range piQ {
			tail += p * fracAtLeast(b.B1[i], k-(q-1))
		}
		if s.R != nil {
			piQ = s.R.VecMul(piQ)
		} else {
			piQ = mat.VecScale(piQ, s.ScalarRatio)
		}
	}
	var rest float64
	if s.R != nil {
		sum, err := mat.GeometricVecSum(piQ, s.R)
		if err != nil {
			return 0, err
		}
		rest = mat.VecSum(sum)
	} else {
		rest = mat.VecSum(piQ) / (1 - s.ScalarRatio)
	}
	tail += rest
	if tail > 1 {
		tail = 1
	}
	return tail, nil
}

// fracAtLeast returns the fraction of servers in st holding at least k jobs.
func fracAtLeast(st statespace.State, k int) float64 {
	c := 0
	for _, v := range st {
		if v >= k {
			c++
		}
	}
	return float64(c) / float64(len(st))
}
