package qbd

import (
	"fmt"

	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// joinTerm is one arrival outcome of a state: with probability W (the tie
// group's share of λN) the arriving job joins a queue holding Level jobs.
type joinTerm struct {
	Level int
	W     float64
}

// JoinDistribution returns w, where w[k] is the stationary probability that
// a job arriving to the bound model joins a queue currently holding k jobs
// (PASTA: arrivals see the stationary state; tie groups are weighted by
// their polling rates, exactly as in the exact-chain extraction of
// markov.ExactDistribution).
//
// The redirect semantics of the bound models decide the joined level when
// the nominal target m + e_i would leave S:
//
//   - lower bound: the job effectively joins a shortest queue (the jockeying
//     reading of the redirect), so it finds the min group's level ahead;
//   - upper bound: the job joins the capped top group anyway (the phantoms
//     pad the short queues, not the arrival's own queue), so it finds the
//     top group's level ahead.
//
// Blocks are resolved exactly as in ServerTail: a state of block q ≥ 1 is
// its B1 representative shifted up by q−1 levels, and both the tie-group
// spans and the in-space test of every redirect are shift-invariant, so the
// representative's join terms apply at Level + (q−1). The block walk runs
// until the remaining geometric mass is below 1e-13; that residual is folded
// in at the last explicit shift (an error of at most its own mass on any
// tail probability).
//
// The resulting Erlang-mixture sojourn law Σ_k w[k]·Erlang(k+1, 1) is a
// heuristic transfer of the paper's mean-delay bracket to the full
// distribution: Theorem 1's precedence argument orders the *means*, not the
// quantiles, so the bracket property of the mixture quantiles is validated
// empirically against the exact chain (see delaydist_test.go and the
// calibration tests in internal/lb).
func (s *Solution) JoinDistribution() ([]float64, error) {
	b := s.Blocks
	var lower bool
	switch s.model.(type) {
	case *sqd.LowerBound:
		lower = true
	case *sqd.UpperBound:
		lower = false
	default:
		return nil, fmt.Errorf("qbd: join distribution needs a solution of a paper bound model, got %T", s.model)
	}

	var w []float64
	add := func(level int, mass float64) {
		for len(w) <= level {
			w = append(w, 0)
		}
		w[level] += mass
	}

	// Boundary and B0 states contribute at their concrete levels.
	for i, p := range s.PiBoundary {
		if p == 0 {
			continue
		}
		for _, jt := range joinTerms(b.P, lower, b.Boundary.At(i)) {
			add(jt.Level, p*jt.W)
		}
	}
	terms0 := make([][]joinTerm, len(b.B0))
	for i, st := range b.B0 {
		terms0[i] = joinTerms(b.P, lower, st)
	}
	for i, p := range s.Pi0 {
		for _, jt := range terms0[i] {
			add(jt.Level, p*jt.W)
		}
	}

	// Repeating blocks: precompute the B1 representatives' join terms once,
	// then walk π_q = π_1·R^{q−1}, shifting levels by q−1.
	terms1 := make([][]joinTerm, len(b.B1))
	for i, st := range b.B1 {
		terms1[i] = joinTerms(b.P, lower, st)
	}
	piQ := append([]float64(nil), s.Pi1...)
	q := 1
	const residualTol = 1e-13
	for mat.VecSum(piQ) > residualTol {
		for i, p := range piQ {
			if p == 0 {
				continue
			}
			for _, jt := range terms1[i] {
				add(jt.Level+q-1, p*jt.W)
			}
		}
		if s.R != nil {
			piQ = s.R.VecMul(piQ)
		} else {
			piQ = mat.VecScale(piQ, s.ScalarRatio)
		}
		if q++; q > 1<<20 {
			return nil, fmt.Errorf("qbd: join-distribution block walk did not converge (residual %.3g after %d blocks)", mat.VecSum(piQ), q)
		}
	}
	// Exact geometric residual Σ_{j≥q} π_1·R^{j−1}, folded at shift q−1 so
	// the distribution stays normalized.
	var rest []float64
	if s.R != nil {
		sum, err := mat.GeometricVecSum(piQ, s.R)
		if err != nil {
			return nil, err
		}
		rest = sum
	} else {
		rest = mat.VecScale(piQ, 1/(1-s.ScalarRatio))
	}
	for i, p := range rest {
		for _, jt := range terms1[i] {
			add(jt.Level+q-1, p*jt.W)
		}
	}

	// The weights of each state sum to 1 (the tie groups partition the
	// sampling space) and the stationary masses sum to 1, so Σw = 1 up to
	// solver precision; renormalize to keep quantile bisection exact.
	total := mat.VecSum(w)
	if total <= 0 {
		return nil, fmt.Errorf("qbd: join distribution collapsed (total mass %v)", total)
	}
	return mat.VecScale(w, 1/total), nil
}

// joinTerms lists the arrival outcomes of state m under the bound model's
// redirect semantics: for each tie group g with positive polling rate, the
// probability r_g/λN of joining and the queue length the job finds ahead.
func joinTerms(p sqd.BoundParams, lower bool, m statespace.State) []joinTerm {
	groups := m.Groups()
	minG := groups[len(groups)-1]
	lamN := p.TotalArrivalRate()
	ts := make([]joinTerm, 0, len(groups))
	for _, g := range groups {
		r := sqd.ArrivalRate(p.Params, g)
		if r <= 0 {
			continue
		}
		level := g.Level
		if lower && !p.InSpace(m.AfterArrival(g)) {
			level = minG.Level // jockeyed down to a shortest queue
		}
		ts = append(ts, joinTerm{Level: level, W: r / lamN})
	}
	return ts
}
