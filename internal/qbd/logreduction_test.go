package qbd

import (
	"math"
	"testing"

	"finitelb/internal/mat"
)

// TestGRowStochastic: for a recurrent QBD, G's rows are probability
// distributions (first-passage probabilities into the lower block).
func TestGRowStochastic(t *testing.T) {
	for _, cfg := range []struct {
		model BoundModel
	}{
		{lbModel(3, 2, 0.8, 2)},
		{lbModel(4, 2, 0.9, 2)},
		{ubModel(3, 2, 0.5, 2)},
		{lbModel(2, 2, 0.6, 3)},
	} {
		b, err := NewBlocks(cfg.model)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := LogReduction(b.A0, b.A1, b.A2, 1e-13)
		if err != nil {
			t.Fatalf("%T: %v", cfg.model, err)
		}
		for i, s := range g.RowSums() {
			if math.Abs(s-1) > 1e-10 {
				t.Errorf("%T: G row %d sums to %v", cfg.model, i, s)
			}
		}
		for i := 0; i < g.Rows(); i++ {
			for j := 0; j < g.Cols(); j++ {
				if g.At(i, j) < -1e-12 {
					t.Errorf("%T: G[%d][%d] = %v negative", cfg.model, i, j, g.At(i, j))
				}
			}
		}
	}
}

// TestRSpectralRadius: the rate matrix of a positive-recurrent QBD must
// have spectral radius < 1 (it equals ρᴺ for the lower-bound model).
func TestRSpectralRadius(t *testing.T) {
	for _, cfg := range []struct {
		n, d  int
		rho   float64
		tt    int
		exact float64 // expected sp(R), 0 = only check < 1
	}{
		{3, 2, 0.8, 2, math.Pow(0.8, 3)},
		{4, 2, 0.9, 2, math.Pow(0.9, 4)},
		{2, 2, 0.5, 3, 0.25},
	} {
		sol, err := Solve(lbModel(cfg.n, cfg.d, cfg.rho, cfg.tt), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := mat.SpectralRadius(sol.R, 1e-12, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if sp >= 1 {
			t.Errorf("%+v: sp(R) = %v ≥ 1", cfg, sp)
		}
		if cfg.exact > 0 && math.Abs(sp-cfg.exact) > 1e-8 {
			t.Errorf("%+v: sp(R) = %v, want ρᴺ = %v", cfg, sp, cfg.exact)
		}
	}
}

// TestRateMatrixQuadratic: R satisfies its defining equation
// 0 = A0 + R·A1 + R²·A2 (checked internally; re-verified here explicitly).
func TestRateMatrixQuadratic(t *testing.T) {
	b, err := NewBlocks(ubModel(3, 2, 0.55, 2))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := LogReduction(b.A0, b.A1, b.A2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RateMatrix(b.A0, b.A1, b.A2, g)
	if err != nil {
		t.Fatal(err)
	}
	res := b.A0.Add(r.Mul(b.A1)).Add(r.Mul(r).Mul(b.A2))
	if res.MaxAbs() > 1e-9 {
		t.Errorf("quadratic residual %v", res.MaxAbs())
	}
}

// TestGQuadratic: G satisfies 0 = A2 + A1·G + A0·G².
func TestGQuadratic(t *testing.T) {
	b, err := NewBlocks(lbModel(3, 2, 0.85, 2))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := LogReduction(b.A0, b.A1, b.A2, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	res := b.A2.Add(b.A1.Mul(g)).Add(b.A0.Mul(g).Mul(g))
	if res.MaxAbs() > 1e-9 {
		t.Errorf("G quadratic residual %v", res.MaxAbs())
	}
}

// TestDriftMatchesLoadLB: drifts are measured in block crossings (one
// block = N jobs). The lower-bound model preserves all capacity and its
// level process is pattern-independent, so the stationary phase over the N
// totals of a block is uniform: up-drift = λN/N = ρ and down-drift =
// N/N = 1, exactly.
func TestDriftMatchesLoadLB(t *testing.T) {
	const n, d, rho = 4, 2, 0.8
	b, err := NewBlocks(lbModel(n, d, rho, 2))
	if err != nil {
		t.Fatal(err)
	}
	up, down, err := Drift(b.A0, b.A1, b.A2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-rho) > 1e-9 {
		t.Errorf("up-drift = %v, want ρ = %v", up, rho)
	}
	if math.Abs(down-1) > 1e-9 {
		t.Errorf("down-drift = %v, want 1", down)
	}
}

// TestDriftUpperBoundLosesCapacity: the upper bound's wasted services and
// phantom arrivals must show up as up-drift above λN and/or down-drift
// below N.
func TestDriftUpperBoundLosesCapacity(t *testing.T) {
	const n, d, rho = 3, 2, 0.8
	b, err := NewBlocks(ubModel(n, d, rho, 2))
	if err != nil {
		t.Fatal(err)
	}
	up, down, err := Drift(b.A0, b.A1, b.A2)
	if err != nil {
		t.Fatal(err)
	}
	realSlack := 1 - rho // block-crossing units: the lower bound's margin
	if down-up >= realSlack {
		t.Errorf("upper bound drift margin %v not smaller than real slack %v", down-up, realSlack)
	}
}
