// Package qbd implements the matrix-geometric solution of Section IV: it
// assembles the block-structured generator of a bound model (boundary block
// plus level-independent blocks A0, A1, A2), computes the matrix G by
// Latouche–Ramaswami logarithmic reduction and the rate matrix
// R = −A0(A1 + A0·G)⁻¹, checks the drift stability condition
// πA0e < πA2e, solves the boundary balance equations (13)/(14) with the
// matrix-geometric normalization, and extracts the paper's delay metrics.
package qbd

import (
	"errors"
	"fmt"

	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// ErrUnstable is returned when the QBD drift condition fails: the modified
// (upper-bound) system has insufficient effective capacity at this ρ and T.
var ErrUnstable = errors.New("qbd: drift condition πA0e < πA2e violated")

// BoundModel is an sqd model restricted to the truncated space S, i.e. the
// lower- or upper-bound model.
type BoundModel interface {
	sqd.Model
	Bound() sqd.BoundParams
}

// Blocks is the block decomposition of a bound model's generator, in the
// notation of Section IV-A.
type Blocks struct {
	P        sqd.BoundParams
	Boundary *statespace.Index // states with #m ≤ (N−1)T
	B0, B1   []statespace.State

	R00 *mat.Dense // boundary → boundary (with boundary diagonals)
	R01 *mat.Dense // boundary → B0
	R10 *mat.Dense // B0 → boundary
	A0  *mat.Dense // Bq → Bq+1 (up)
	A1  *mat.Dense // Bq → Bq (local, with non-boundary diagonals)
	A2  *mat.Dense // Bq → Bq−1 (down)
}

// BlockSize returns the per-block state count C(N+T−1, T).
func (b *Blocks) BlockSize() int { return len(b.B0) }

// NewBlocks assembles the block matrices for model by instantiating
// concrete states and binning their transitions, rather than deriving the
// repeating structure symbolically. The A-matrices are built from block B1
// and cross-checked against block B2 (Lemma 1's shift invariance); any
// discrepancy is reported as an error since it would indicate a model that
// is not level-independent.
func NewBlocks(model BoundModel) (*Blocks, error) {
	p := model.Bound()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, t := p.N, p.T
	b := &Blocks{
		P:        p,
		Boundary: statespace.NewIndex(statespace.BoundaryStates(n, t)),
		B0:       statespace.BlockStates(n, t, 0),
		B1:       statespace.BlockStates(n, t, 1),
	}
	m := len(b.B0)
	nb := b.Boundary.Len()
	b.R00 = mat.NewDense(nb, nb)
	b.R01 = mat.NewDense(nb, m)
	b.R10 = mat.NewDense(m, nb)

	ix0 := statespace.NewIndex(b.B0)
	ix1 := statespace.NewIndex(b.B1)
	ix2 := statespace.NewIndex(statespace.BlockStates(n, t, 2))
	ix3 := statespace.NewIndex(statespace.BlockStates(n, t, 3))

	// Boundary rows: targets stay in the boundary or enter B0.
	for i := 0; i < nb; i++ {
		s := b.Boundary.At(i)
		for _, tr := range sqd.Merged(model.Transitions(s)) {
			switch {
			case tr.To.Equal(s):
				continue
			default:
				if j, ok := b.Boundary.Of(tr.To); ok {
					b.R00.Inc(i, j, tr.Rate)
				} else if j, ok := ix0.Of(tr.To); ok {
					b.R01.Inc(i, j, tr.Rate)
				} else {
					return nil, fmt.Errorf("qbd: boundary transition %v → %v escapes boundary∪B0", s, tr.To)
				}
				b.R00.Inc(i, i, -tr.Rate)
			}
		}
	}

	// B0 rows give R10 (down into the boundary); their local/up parts must
	// coincide with A1/A0 by shift invariance, which the B2 cross-check
	// below certifies, so only the boundary-bound rates are recorded here.
	for i, s := range b.B0 {
		for _, tr := range sqd.Merged(model.Transitions(s)) {
			if j, ok := b.Boundary.Of(tr.To); ok {
				b.R10.Inc(i, j, tr.Rate)
			}
		}
	}

	var err error
	b.A0, b.A1, b.A2, err = buildA(model, b.B1, ix0, ix1, ix2)
	if err != nil {
		return nil, err
	}
	// Shift-invariance cross-check: rebuild from B2.
	a0b, a1b, a2b, err := buildA(model, ix2.States(), ix1, ix2, ix3)
	if err != nil {
		return nil, err
	}
	const tol = 1e-12
	if !b.A0.AlmostEqual(a0b, tol) || !b.A1.AlmostEqual(a1b, tol) || !b.A2.AlmostEqual(a2b, tol) {
		return nil, fmt.Errorf("qbd: A-blocks differ between levels 1 and 2; model is not level-independent")
	}
	return b, nil
}

// buildA bins the transitions of the states `from` (block q) into down
// (block q−1), local, and up (block q+1) matrices, accumulating the full
// outflow on the local diagonal.
func buildA(model BoundModel, from []statespace.State, down, local, up *statespace.Index) (a0, a1, a2 *mat.Dense, err error) {
	m := len(from)
	a0 = mat.NewDense(m, m)
	a1 = mat.NewDense(m, m)
	a2 = mat.NewDense(m, m)
	for i, s := range from {
		for _, tr := range sqd.Merged(model.Transitions(s)) {
			if tr.To.Equal(s) {
				continue
			}
			if j, ok := local.Of(tr.To); ok {
				a1.Inc(i, j, tr.Rate)
			} else if j, ok := up.Of(tr.To); ok {
				a0.Inc(i, j, tr.Rate)
			} else if j, ok := down.Of(tr.To); ok {
				a2.Inc(i, j, tr.Rate)
			} else {
				return nil, nil, nil, fmt.Errorf("qbd: transition %v → %v escapes the three-block window", s, tr.To)
			}
			a1.Inc(i, i, -tr.Rate)
		}
	}
	return a0, a1, a2, nil
}
