package qbd

import (
	"math"
	"testing"

	"finitelb/internal/markov"
	"finitelb/internal/statespace"
)

// TestServerTailMM1: with N=1 the lower-bound model is M/M/1, whose
// occupancy tail is exactly ρᵏ.
func TestServerTailMM1(t *testing.T) {
	const rho = 0.7
	sol, err := Solve(lbModel(1, 1, rho, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 12; k++ {
		got, err := sol.ServerTail(k)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(rho, float64(k))
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("P(≥%d) = %v, want ρᵏ = %v", k, got, want)
		}
	}
}

// TestServerTailMatchesBruteForce: the geometric-tail accounting in
// ServerTail must agree with a direct stationary solve of the same model.
func TestServerTailMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model BoundModel
		opts  Options
	}{
		{"lower", lbModel(3, 2, 0.8, 2), Options{}},
		{"lower improved", lbModel(3, 2, 0.8, 2), Options{ImprovedLB: true}},
		{"upper", ubModel(3, 2, 0.6, 2), Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.model, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			p := tc.model.Bound()
			states := statespace.EnumTruncated(p.N, p.T, 200)
			ix := statespace.NewIndex(states)
			brute, err := markov.SolveTruncated(tc.model, states, 1e-13, 400000)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= 8; k++ {
				var want float64
				for i, prob := range brute.Pi {
					st := ix.At(i)
					c := 0
					for _, v := range st {
						if v >= k {
							c++
						}
					}
					want += prob * float64(c) / float64(p.N)
				}
				got, err := sol.ServerTail(k)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-7 {
					t.Errorf("k=%d: ServerTail = %v, brute force = %v", k, got, want)
				}
			}
		})
	}
}

// TestServerTailLittleConsistency: Σ_{k≥1} ServerTail(k) must equal the
// solution's mean jobs per server.
func TestServerTailLittleConsistency(t *testing.T) {
	sol, err := Solve(lbModel(4, 2, 0.85, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var jobs float64
	for k := 1; k <= 400; k++ {
		tail, err := sol.ServerTail(k)
		if err != nil {
			t.Fatal(err)
		}
		jobs += tail
		if tail < 1e-14 {
			break
		}
	}
	want := sol.MeanJobs / 4
	if math.Abs(jobs-want) > 1e-8*want {
		t.Errorf("Σ tails = %v, MeanJobs/N = %v", jobs, want)
	}
}

// TestServerTailOrdering: pointwise LB ≤ exact ≤ UB does not follow from
// the paper's precedence argument for every functional, but the *monotone
// partial-sum* functionals it does cover make the aggregate occupancy a
// sanity metric: the UB chain must be stochastically no lighter than the
// LB chain level by level.
func TestServerTailOrdering(t *testing.T) {
	lb, err := Solve(lbModel(3, 2, 0.7, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := Solve(ubModel(3, 2, 0.7, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		lo, err := lb.ServerTail(k)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := ub.ServerTail(k)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi+1e-9 {
			t.Errorf("k=%d: LB tail %v above UB tail %v", k, lo, hi)
		}
	}
}

func TestServerTailEdges(t *testing.T) {
	sol, err := Solve(lbModel(2, 2, 0.5, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sol.ServerTail(0); err != nil || got != 1 {
		t.Errorf("ServerTail(0) = %v, %v; want 1, nil", got, err)
	}
	if _, err := sol.ServerTail(-1); err == nil {
		t.Error("ServerTail(-1) accepted")
	}
}
