package qbd

import (
	"fmt"
	"math"

	"finitelb/internal/mat"
)

// LogReduction computes the matrix G of a positive-recurrent CTMC QBD with
// blocks A0 (up), A1 (local, including diagonals), A2 (down) using the
// logarithmic reduction algorithm of Latouche & Ramaswami [10], in the form
// quoted in Section IV-A:
//
//	B1,1 = (−A1)⁻¹A0,   B2,1 = (−A1)⁻¹A2,
//	B1,i = (I − B1,p·B2,p − B2,p·B1,p)⁻¹·B1,p²   (p = i−1),
//	B2,i = (I − B1,p·B2,p − B2,p·B1,p)⁻¹·B2,p²,
//	G    = Σ_{k≥1} (Π_{i<k} B1,i)·B2,k.
//
// G's entry (i, j) is the probability that, starting from state i of block
// B_{q+1}, the chain first enters block B_q through state j; for a
// recurrent QBD G is row-stochastic, which is the convergence criterion.
// It returns G and the number of iterations performed (the paper reports
// k ≤ 6 for its configurations; quadratic convergence makes large counts
// pathological, so the budget is a fixed small constant).
func LogReduction(a0, a1, a2 *mat.Dense, tol float64) (*mat.Dense, int, error) {
	m := a0.Rows()
	negA1inv, err := mat.Inverse(a1.Scale(-1))
	if err != nil {
		return nil, 0, fmt.Errorf("qbd: A1 is singular: %w", err)
	}
	b1 := negA1inv.Mul(a0)
	b2 := negA1inv.Mul(a2)

	g := b2.Clone()      // Σ so far
	prefix := b1.Clone() // Π_{i<k} B1,i
	// Dense m×m products dominate the solve; reuse two product workspaces
	// and the denominator across iterations instead of allocating six
	// matrices per step (Factorize clones its input, so den is reusable).
	wsA := mat.NewDense(m, m)
	wsB := mat.NewDense(m, m)
	den := mat.NewDense(m, m)
	newPrefix := mat.NewDense(m, m)
	const maxIter = 64 // quadratic convergence: 64 doublings is beyond any sane model
	for k := 1; k <= maxIter; k++ {
		// Convergence: G row sums reach 1.
		worst := 0.0
		for _, s := range g.RowSums() {
			if d := math.Abs(1 - s); d > worst {
				worst = d
			}
		}
		if worst < tol {
			return g, k, nil
		}
		// den = I − B1·B2 − B2·B1
		b1.MulTo(wsA, b2)
		b2.MulTo(wsB, b1)
		den.SetIdentity()
		den.AddScaled(wsA, -1)
		den.AddScaled(wsB, -1)
		f, err := mat.Factorize(den)
		if err != nil {
			return nil, k, fmt.Errorf("qbd: logarithmic reduction step %d singular: %w", k, err)
		}
		b1n := f.SolveMat(b1.MulTo(wsA, b1))
		b2n := f.SolveMat(b2.MulTo(wsB, b2))
		prefix.MulTo(wsA, b2n)
		g.AddScaled(wsA, 1)
		prefix.MulTo(newPrefix, b1n)
		prefix, newPrefix = newPrefix, prefix
		b1, b2 = b1n, b2n
	}
	return nil, maxIter, fmt.Errorf("qbd: logarithmic reduction: %w", mat.ErrNoConverge)
}

// RateMatrix computes R = −A0(A1 + A0·G)⁻¹ (Latouche & Ramaswami [9]),
// the expected-visits matrix of Theorem 1, and verifies the defining
// quadratic residual A0 + R·A1 + R²·A2 = 0.
func RateMatrix(a0, a1, a2, g *mat.Dense) (*mat.Dense, error) {
	inner, err := mat.Inverse(a1.Add(a0.Mul(g)))
	if err != nil {
		return nil, fmt.Errorf("qbd: A1 + A0·G is singular: %w", err)
	}
	r := a0.Mul(inner).Scale(-1)
	res := a0.Add(r.Mul(a1)).Add(r.Mul(r).Mul(a2))
	if worst := res.MaxAbs(); worst > 1e-8*(1+a0.MaxAbs()+a1.MaxAbs()+a2.MaxAbs()) {
		return nil, fmt.Errorf("qbd: rate matrix residual %.3g too large", worst)
	}
	return r, nil
}

// Drift evaluates the stability condition of Theorem 1.7.1 of Neuts: with
// π the stationary vector of the aggregate generator A = A0 + A1 + A2, the
// QBD is positive recurrent iff up-drift πA0e < down-drift πA2e. It
// returns both drifts.
func Drift(a0, a1, a2 *mat.Dense) (up, down float64, err error) {
	m := a0.Rows()
	a := a0.Add(a1).Add(a2)
	// Solve πA = 0, πe = 1 by replacing the last balance equation with the
	// normalization (the balance equations have rank m−1).
	sys := a.Clone()
	for i := 0; i < m; i++ {
		sys.Set(i, m-1, 1)
	}
	rhs := make([]float64, m)
	rhs[m-1] = 1
	pi, err := mat.SolveLeft(sys, rhs)
	if err != nil {
		return 0, 0, fmt.Errorf("qbd: aggregate generator solve: %w", err)
	}
	up = mat.VecSum(a0.VecMul(pi))
	down = mat.VecSum(a2.VecMul(pi))
	return up, down, nil
}
