package qbd

import (
	"math"
	"testing"

	"finitelb/internal/markov"
	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// TestJoinDistributionMM1: with N=1 both bound models are plain M/M/1
// (the truncated space is the whole space), so the arrival-join
// distribution is the geometric queue-length law (1−ρ)ρᵏ by PASTA.
func TestJoinDistributionMM1(t *testing.T) {
	const rho = 0.8
	for _, tc := range []struct {
		name  string
		model BoundModel
		opts  Options
	}{
		{"lower", lbModel(1, 1, rho, 2), Options{}},
		{"lower improved", lbModel(1, 1, rho, 2), Options{ImprovedLB: true}},
		{"upper", ubModel(1, 1, rho, 2), Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.model, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			w, err := sol.JoinDistribution()
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= 12 && k < len(w); k++ {
				want := (1 - rho) * math.Pow(rho, float64(k))
				if math.Abs(w[k]-want) > 1e-8 {
					t.Errorf("w[%d] = %v, want (1−ρ)ρᵏ = %v", k, w[k], want)
				}
			}
		})
	}
}

// TestJoinDistributionMatchesBruteForce: the block walk (boundary + B0
// explicit, geometric B1 levels) must agree with accumulating join terms
// over a direct stationary solve of the same truncated chain.
func TestJoinDistributionMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name  string
		lower bool
		model BoundModel
		opts  Options
	}{
		{"lower", true, lbModel(3, 2, 0.8, 2), Options{}},
		{"upper", false, ubModel(3, 2, 0.6, 2), Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.model, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sol.JoinDistribution()
			if err != nil {
				t.Fatal(err)
			}
			p := tc.model.Bound()
			states := statespace.EnumTruncated(p.N, p.T, 200)
			brute, err := markov.SolveTruncated(tc.model, states, 1e-13, 400000)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(got))
			for i, prob := range brute.Pi {
				for _, jt := range joinTerms(p, tc.lower, states[i]) {
					if jt.Level < len(want) {
						want[jt.Level] += prob * jt.W
					}
				}
			}
			for k := range want {
				if math.Abs(got[k]-want[k]) > 1e-7 {
					t.Errorf("w[%d] = %v, brute force = %v", k, got[k], want[k])
				}
			}
		})
	}
}

// TestJoinDistributionNormalized: the weights must form a probability
// distribution, and its mean (joined level + own service) must be within
// numerical reach of the solve's mean-jobs scale.
func TestJoinDistributionNormalized(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model BoundModel
		opts  Options
	}{
		{"lower", lbModel(4, 2, 0.9, 3), Options{}},
		{"lower improved", lbModel(4, 2, 0.9, 3), Options{ImprovedLB: true}},
		{"upper", ubModel(4, 2, 0.9, 5), Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := Solve(tc.model, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			w, err := sol.JoinDistribution()
			if err != nil {
				t.Fatal(err)
			}
			if s := mat.VecSum(w); math.Abs(s-1) > 1e-12 {
				t.Errorf("Σw = %v, want 1", s)
			}
			for k, v := range w {
				if v < 0 {
					t.Errorf("w[%d] = %v < 0", k, v)
				}
			}
		})
	}
}

// TestJoinDistributionRequiresModel: a Solution not produced by Solve (no
// recorded model) must fail loudly, not silently pick a redirect rule.
func TestJoinDistributionRequiresModel(t *testing.T) {
	var bare Solution
	if _, err := bare.JoinDistribution(); err == nil {
		t.Error("join distribution on a model-less solution accepted")
	}
}

var _ = sqd.Params{} // joinTerms' signature keeps the import live
