package trace

import (
	"math"
	"sync"
	"testing"
)

// full drives one job through the whole lifecycle with synthetic
// timestamps derived from base.
func full(r *Recorder, base float64, server, qlen, ties int) Handle {
	h := r.Start(base)
	r.Picked(h, base+1, server, qlen, ties)
	r.Enqueued(h, base+2)
	r.Started(h, base+5)
	r.Done(h, base+9)
	return h
}

func TestLifecycleSpan(t *testing.T) {
	r := New(Config{Sample: 1, Cap: 64})
	for i := 0; i < 10; i++ {
		if h := full(r, float64(100*i), i%3, i, 1+i%2); h == None {
			t.Fatalf("job %d not sampled at Sample=1", i)
		}
	}
	spans := r.Spans(-1)
	if len(spans) != 10 {
		t.Fatalf("Spans returned %d, want 10", len(spans))
	}
	// Most recent first.
	for i, sp := range spans {
		wantSeq := uint64(9 - i)
		if sp.Seq != wantSeq {
			t.Fatalf("span %d: seq %d, want %d", i, sp.Seq, wantSeq)
		}
		base := float64(100 * wantSeq)
		if sp.Arrival != base || sp.Picked != base+1 || sp.Enqueued != base+2 ||
			sp.Start != base+5 || sp.Done != base+9 {
			t.Fatalf("span %d: timestamps %+v off base %v", i, sp, base)
		}
		// Stage durations telescope to the sojourn.
		sum := (sp.Picked - sp.Arrival) + (sp.Enqueued - sp.Picked) +
			(sp.Start - sp.Enqueued) + (sp.Done - sp.Start)
		if sum != sp.Done-sp.Arrival {
			t.Fatalf("span %d: stages sum %v ≠ sojourn %v", i, sum, sp.Done-sp.Arrival)
		}
		if sp.Server != int32(wantSeq%3) || sp.QLen != int32(wantSeq) || sp.Ties != int32(1+wantSeq%2) {
			t.Fatalf("span %d: decision fields %+v", i, sp)
		}
	}
	st := r.Stages()
	if st.N != 10 || st.Pick.N() != 10 || st.Wait.N() != 10 || st.Service.N() != 10 {
		t.Fatalf("stage N = %d/%d/%d/%d, want 10", st.N, st.Pick.N(), st.Wait.N(), st.Service.N())
	}
	// pick=1, wait=3, service=4 per job.
	if st.PickSum != 10 || st.WaitSum != 30 || st.ServiceSum != 40 {
		t.Fatalf("stage sums %v/%v/%v, want 10/30/40", st.PickSum, st.WaitSum, st.ServiceSum)
	}
}

func TestSamplingDeterministicAndRateful(t *testing.T) {
	const jobs = 1 << 18
	mark := func(seed uint64) []bool {
		r := New(Config{Seed: seed, Sample: 1024})
		hits := make([]bool, jobs)
		for i := range hits {
			hits[i] = r.hit(uint64(i))
		}
		return hits
	}
	a, b, c := mark(7), mark(7), mark(8)
	same, diff, hitsA := true, false, 0
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
		if a[i] {
			hitsA++
		}
	}
	if !same {
		t.Fatal("same seed produced different sampled sets")
	}
	if !diff {
		t.Fatal("different seeds produced identical sampled sets")
	}
	want := float64(jobs) / 1024
	if f := float64(hitsA); f < 0.6*want || f > 1.4*want {
		t.Fatalf("sampled %d of %d jobs, want ≈%v", hitsA, jobs, want)
	}
}

func TestRingWrap(t *testing.T) {
	r := New(Config{Sample: 1, Cap: 8})
	for i := 0; i < 20; i++ {
		full(r, float64(i), 0, 0, -1)
	}
	spans := r.Spans(-1)
	if len(spans) != 8 {
		t.Fatalf("Spans returned %d, want 8 (= cap)", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(19 - i); sp.Seq != want {
			t.Fatalf("span %d: seq %d, want %d", i, sp.Seq, want)
		}
	}
	if got := r.Spans(3); len(got) != 3 || got[0].Seq != 19 {
		t.Fatalf("Spans(3) = %d spans starting at %d", len(got), got[0].Seq)
	}
}

func TestAbortAndPendingExhaustion(t *testing.T) {
	r := New(Config{Sample: 1, Pending: 2})
	h1 := r.Start(0)
	h2 := r.Start(1)
	if h1 == None || h2 == None {
		t.Fatal("claims failed with free pool")
	}
	if h3 := r.Start(2); h3 != None {
		t.Fatalf("claim succeeded on exhausted pool: %d", h3)
	}
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	r.Abort(h1)
	if r.Aborted() != 1 {
		t.Fatalf("Aborted = %d, want 1", r.Aborted())
	}
	if h4 := r.Start(3); h4 == None {
		t.Fatal("claim failed after Abort freed a slot")
	}
	if got := len(r.Spans(-1)); got != 0 {
		t.Fatalf("aborted spans were published: %d", got)
	}
}

func TestNegativeWaitClampedInSketchOnly(t *testing.T) {
	r := New(Config{Sample: 1})
	h := r.Start(0)
	r.Picked(h, 1, 0, 0, -1)
	r.Enqueued(h, 2)
	r.Started(h, 1.5) // service begins before the enqueue observation
	r.Done(h, 3)
	sp := r.Spans(1)[0]
	if sp.Start != 1.5 || sp.Enqueued != 2 {
		t.Fatalf("raw timestamps altered: %+v", sp)
	}
	st := r.Stages()
	if m := st.Wait.Max(); m != 0 {
		t.Fatalf("negative wait not clamped in sketch: max %v", m)
	}
	if st.WaitSum != 0 {
		t.Fatalf("WaitSum = %v, want 0", st.WaitSum)
	}
}

func TestScaleAppliesToStages(t *testing.T) {
	r := New(Config{Sample: 1, Scale: 4})
	full(r, 0, 0, 0, -1) // service duration 4 → 1 in scaled units
	st := r.Stages()
	if math.Abs(st.ServiceSum-1) > 1e-12 {
		t.Fatalf("ServiceSum = %v, want 1 at Scale=4", st.ServiceSum)
	}
}

func TestAllocFreeRecording(t *testing.T) {
	r := New(Config{Sample: 1, Cap: 256})
	var i int
	allocs := testing.AllocsPerRun(2000, func() {
		full(r, float64(i), i%4, i, 1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %.2f/op, want 0", allocs)
	}
}

// TestConcurrentWritersAndReaders hammers the recorder from many
// goroutines while readers snapshot spans and stages — run under -race
// this proves the seqlock ring and pending pool are data-race-free, and
// the span consistency check proves reads are never torn.
func TestConcurrentWritersAndReaders(t *testing.T) {
	r := New(Config{Sample: 1, Cap: 64, Pending: 1024})
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Spans(-1) {
					// Every published span was driven by full(): its
					// timestamps are rigid offsets of Arrival. A torn
					// read mixes two spans and breaks the pattern.
					if sp.Picked != sp.Arrival+1 || sp.Done != sp.Arrival+9 {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
				_ = r.Stages()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				full(r, float64(w*perWriter+i), w, i, -1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if pub := r.Published(); pub+r.Dropped() < writers*perWriter {
		t.Fatalf("published %d + dropped %d < %d jobs", pub, r.Dropped(), writers*perWriter)
	}
	st := r.Stages()
	if st.N == 0 || st.Pick.N() != st.N || st.Service.N() != st.N {
		t.Fatalf("stage sketches inconsistent: %d/%d/%d", st.N, st.Pick.N(), st.Service.N())
	}
}

func TestRetryAndOutcomeRoundTrip(t *testing.T) {
	r := New(Config{Sample: 1, Cap: 64})

	// A retried job: two redeliveries, then completion.
	h := r.Start(0)
	r.Picked(h, 1, 2, 0, 1)
	r.Enqueued(h, 2)
	r.Retried(h)
	r.Retried(h)
	r.Started(h, 5)
	r.Done(h, 9)

	// A dropped job: deadline expired after one redelivery.
	h = r.Start(10)
	r.Picked(h, 11, 0, 3, -1)
	r.Enqueued(h, 12)
	r.Retried(h)
	r.Drop(h, 20)

	spans := r.Spans(-1)
	if len(spans) != 2 {
		t.Fatalf("Spans returned %d, want 2", len(spans))
	}
	drop, done := spans[0], spans[1] // most recent first
	if done.Retries != 2 || done.Outcome != OutcomeCompleted {
		t.Errorf("completed span retries=%d outcome=%d, want 2/%d", done.Retries, done.Outcome, OutcomeCompleted)
	}
	if done.Ties != 1 || done.Server != 2 {
		t.Errorf("completed span lost decision fields: %+v", done)
	}
	if drop.Retries != 1 || drop.Outcome != OutcomeDropped {
		t.Errorf("dropped span retries=%d outcome=%d, want 1/%d", drop.Retries, drop.Outcome, OutcomeDropped)
	}
	if drop.Ties != -1 {
		t.Errorf("dropped span ties=%d, want -1 (packing must not bleed into ties)", drop.Ties)
	}
	if drop.Done != 20 {
		t.Errorf("dropped span done=%v, want the drop time 20", drop.Done)
	}

	// Drops do not feed the stage sketches.
	if st := r.Stages(); st.N != 1 {
		t.Errorf("stage N=%d after 1 completion + 1 drop, want 1", st.N)
	}
	// Drop is a completion for accounting purposes: published, not aborted.
	if r.Published() != 2 || r.Aborted() != 0 {
		t.Errorf("published=%d aborted=%d, want 2/0", r.Published(), r.Aborted())
	}
}
