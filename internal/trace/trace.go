// Package trace is a flight recorder for individual job lifecycles.
//
// Both runtimes in this repo — the discrete-event simulator
// (internal/sim) and the live goroutine farm (internal/lb) — aggregate
// delay into streams and sketches, which answers "how much" but never
// "where": is a slow job paying for the pick decision, for queueing
// behind its neighbours, or for service itself? The Recorder answers
// that with per-job Spans carrying the five lifecycle timestamps
// (arrival → pick decision → enqueue → service start → completion)
// plus the chosen server, the queue length the job saw, and the
// policy's tie-break count.
//
// Three properties make it safe to leave wired into the hot paths:
//
//   - Flight-recorder storage. Completed spans land in a fixed-capacity
//     lock-free ring (a per-slot seqlock over atomic words): the last K
//     spans are always available, memory never grows, and a reader
//     (Spans) never blocks a writer. A writer that laps a concurrent
//     writer on the same slot drops its span rather than spin.
//
//   - Deterministic sampling. Whether job number s is traced is a pure
//     function of s and the seed (an avalanching hash keyed by an
//     internal/frand draw at construction), so traced runs are
//     seed-reproducible and — crucially — the recorder never consumes a
//     draw from the caller's rng stream: tracing on or off, sampled or
//     not, the simulator's random sequence is bit-identical.
//
//   - Zero allocation. Every per-job method is allocation-free and
//     carries a //finitelb:hotpath annotation, so the analyzers in
//     internal/lint hold the recorder to the same floor as the event
//     loops it instruments.
//
// Timestamps are float64 in whatever unit the producer uses (model time
// for the simulator, nanoseconds since an epoch for the live runtime);
// Config.Scale converts stage durations into mean-service-time units
// before they feed the per-stage delay-decomposition sketches.
package trace

import (
	"math"
	"sync"
	"sync/atomic"

	"finitelb/internal/frand"
	"finitelb/internal/stats"
)

// Span is one job's recorded lifecycle. Timestamps are in the
// producer's time unit; stage durations are differences of adjacent
// stamps and telescope exactly to Done−Arrival.
type Span struct {
	Seq    uint64 // job's position in the arrival order (0-based)
	Server int32  // chosen server id, −1 before the pick
	QLen   int32  // queue length seen at the pick, before this job joined
	Ties   int32  // candidates tied at the minimum (≥1), −1 if the policy doesn't report
	// Failure-domain fields: how many times the job was redelivered
	// before this span closed, and how it left the system.
	Retries int32
	Outcome uint8
	// Lifecycle timestamps, in producer units.
	Arrival  float64 // job observed by the dispatcher
	Picked   float64 // destination decided
	Enqueued float64 // job appended to the destination queue
	Start    float64 // service began
	Done     float64 // service completed
}

// Handle identifies a claimed in-flight span; None means "this job is
// not traced" and makes every per-job method a no-op.
type Handle int32

// None is the handle of an untraced job.
const None Handle = -1

// Span outcomes. Zero means "unset" (spans published before the
// failure-domain fields existed decode as unset).
const (
	OutcomeCompleted uint8 = 1 // served to completion
	OutcomeDropped   uint8 = 2 // left unserved: deadline expired or retry budget exhausted
)

// Config sizes a Recorder. Zero values select the defaults; Cap,
// Sample and Pending are rounded up to powers of two.
type Config struct {
	Cap     int     // ring capacity in spans (default DefaultCap)
	Sample  int     // trace 1 in Sample jobs (default DefaultSample; 1 = every job)
	Pending int     // max concurrently in-flight traced jobs (default DefaultPending)
	Seed    uint64  // sampling key seed; same seed ⇒ same sampled set
	Scale   float64 // divide stage durations by this before sketching (default 1)
}

// Default Config values.
const (
	DefaultCap     = 1024
	DefaultSample  = 1024
	DefaultPending = 256
)

// traceStream salts the frand seed so the sampling key is independent
// of any simulation stream derived from the same seed.
const traceStream = 0x7472616365 // "trace"

// slotWords is the span encoding width: seq, five timestamps,
// server|qlen, ties|retries|outcome.
const slotWords = 8

// slot is one ring entry: a seqlock version (even = stable, odd =
// write in progress) over an atomically-accessed span encoding, so
// readers never tear a span and the race detector sees only atomics.
type slot struct {
	ver  atomic.Uint64
	data [slotWords]atomic.Uint64
}

// pending is an in-flight traced job. Between the CAS claim (Start)
// and the release (Done/Abort) the span is owned by exactly one job's
// call chain; the state atomic publishes the hand-off.
type pending struct {
	state atomic.Uint32
	span  Span
}

// Recorder samples job lifecycles into a bounded ring and per-stage
// delay sketches. All per-job methods are safe for concurrent use.
type Recorder struct {
	mask       uint64 // ring index mask (len(slots)−1)
	pmask      uint64 // pending index mask
	sampleMask uint64 // sample−1; hash&mask==0 ⇒ traced
	sample     int
	key        uint64  // frand-derived hash key
	invScale   float64 // 1/Config.Scale

	seq     atomic.Uint64 // jobs observed (sampled or not)
	sampled atomic.Uint64 // jobs that hit the sampler
	widx    atomic.Uint64 // publish tickets issued
	dropped atomic.Uint64 // sampled jobs lost: pending pool full or ring lap
	aborted atomic.Uint64 // sampled jobs that left before completion (e.g. rejected)
	phint   atomic.Uint64 // rotating scan start for the pending pool

	slots []slot
	pend  []pending

	mu                    sync.Mutex
	alpha                 float64
	budget                int
	pick, wait, service   *stats.Sketch
	pickN                 int64 // observations per stage (equal across stages)
	pickSum, waitSum, svcSum float64
}

// New builds a Recorder from cfg (zero fields take defaults).
func New(cfg Config) *Recorder {
	capacity := ceilPow2(cfg.Cap, DefaultCap)
	sample := ceilPow2(cfg.Sample, DefaultSample)
	pend := ceilPow2(cfg.Pending, DefaultPending)
	scale := cfg.Scale
	if !(scale > 0) {
		scale = 1
	}
	r := &Recorder{
		mask:       uint64(capacity - 1),
		pmask:      uint64(pend - 1),
		sampleMask: uint64(sample - 1),
		sample:     sample,
		key:        frand.New(cfg.Seed, traceStream).Uint64(),
		invScale:   1 / scale,
		slots:      make([]slot, capacity),
		pend:       make([]pending, pend),
		alpha:      stats.DefaultAlpha,
		budget:     stats.DefaultSketchBudget,
	}
	r.pick = stats.NewSketch(r.alpha, r.budget)
	r.wait = stats.NewSketch(r.alpha, r.budget)
	r.service = stats.NewSketch(r.alpha, r.budget)
	return r
}

func ceilPow2(v, def int) int {
	if v <= 0 {
		v = def
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// hit reports whether job seq is in the sampled set: an avalanching
// finalizer (splitmix64's) over seq+key, masked to 1-in-sample. Pure in
// (seq, key) — no rng stream is consumed.
//
//finitelb:hotpath
func (r *Recorder) hit(seq uint64) bool {
	x := seq + r.key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x&r.sampleMask == 0
}

// Start books one job arrival at time now and, if the job is sampled,
// claims a pending slot and returns its handle; otherwise None. Called
// once per job, traced or not, so Seq numbers every arrival.
//
//finitelb:hotpath
func (r *Recorder) Start(now float64) Handle {
	seq := r.seq.Add(1) - 1
	if !r.hit(seq) {
		return None
	}
	r.sampled.Add(1)
	h0 := r.phint.Add(1)
	for i := uint64(0); i <= r.pmask; i++ {
		p := &r.pend[(h0+i)&r.pmask]
		if p.state.Load() == 0 && p.state.CompareAndSwap(0, 1) {
			p.span = Span{Seq: seq, Server: -1, QLen: -1, Ties: -1, Arrival: now}
			return Handle((h0 + i) & r.pmask)
		}
	}
	r.dropped.Add(1)
	return None
}

// Picked records the destination decision: the chosen server, the
// queue length the policy saw there (before this job joined), and how
// many candidates were tied at the minimum (−1 when the policy doesn't
// report ties).
//
//finitelb:hotpath
func (r *Recorder) Picked(h Handle, now float64, server, qlen, ties int) {
	if h < 0 {
		return
	}
	sp := &r.pend[h].span
	sp.Picked = now
	sp.Server = int32(server)
	sp.QLen = int32(qlen)
	sp.Ties = int32(ties)
}

// Enqueued records the job landing in the destination queue.
//
//finitelb:hotpath
func (r *Recorder) Enqueued(h Handle, now float64) {
	if h < 0 {
		return
	}
	r.pend[h].span.Enqueued = now
}

// Started records service beginning.
//
//finitelb:hotpath
func (r *Recorder) Started(h Handle, now float64) {
	if h < 0 {
		return
	}
	r.pend[h].span.Start = now
}

// Retried notes one redelivery of the traced job: its copy was
// requeued (crash, graceful leave, or a hedge) and will run again. The
// count survives into the published span.
//
//finitelb:hotpath
func (r *Recorder) Retried(h Handle) {
	if h < 0 {
		return
	}
	r.pend[h].span.Retries++
}

// Done completes the span: publishes it to the ring with
// OutcomeCompleted, feeds the stage sketches, and releases the pending
// slot.
//
//finitelb:hotpath
func (r *Recorder) Done(h Handle, now float64) {
	if h < 0 {
		return
	}
	p := &r.pend[h]
	p.span.Done = now
	p.span.Outcome = OutcomeCompleted
	sp := p.span
	p.state.Store(0)
	r.publish(&sp)
	r.observe(&sp)
}

// Drop completes the span for a job that left the system unserved
// after admission (deadline expired, retry budget exhausted): the span
// is published with OutcomeDropped so the flight recorder shows *why*
// the job vanished, but it does not feed the stage sketches — a
// dropped job has no service decomposition.
//
//finitelb:hotpath
func (r *Recorder) Drop(h Handle, now float64) {
	if h < 0 {
		return
	}
	p := &r.pend[h]
	p.span.Done = now
	p.span.Outcome = OutcomeDropped
	sp := p.span
	p.state.Store(0)
	r.publish(&sp)
}

// Abort releases a claimed span without publishing (the job left the
// system unserved, e.g. rejected on a full queue).
//
//finitelb:hotpath
func (r *Recorder) Abort(h Handle) {
	if h < 0 {
		return
	}
	r.pend[h].state.Store(0)
	r.aborted.Add(1)
}

// publish writes sp into its ring slot under the slot seqlock. If
// another writer is mid-flight on the same slot (the ring has lapped
// within one publish — requires ≥cap concurrent completions), the span
// is dropped rather than torn.
//
//finitelb:hotpath
func (r *Recorder) publish(sp *Span) {
	w := r.widx.Add(1) - 1
	sl := &r.slots[w&r.mask]
	v := sl.ver.Load()
	if v&1 != 0 || !sl.ver.CompareAndSwap(v, v+1) {
		r.dropped.Add(1)
		return
	}
	sl.data[0].Store(sp.Seq)
	sl.data[1].Store(math.Float64bits(sp.Arrival))
	sl.data[2].Store(math.Float64bits(sp.Picked))
	sl.data[3].Store(math.Float64bits(sp.Enqueued))
	sl.data[4].Store(math.Float64bits(sp.Start))
	sl.data[5].Store(math.Float64bits(sp.Done))
	sl.data[6].Store(uint64(uint32(sp.Server))<<32 | uint64(uint32(sp.QLen)))
	sl.data[7].Store(uint64(uint32(sp.Ties)) |
		uint64(uint16(sp.Retries))<<32 |
		uint64(sp.Outcome)<<48)
	sl.ver.Add(1)
}

// observe feeds the stage sketches. Durations are scaled to
// mean-service units and clamped at zero: on the live runtime service
// can begin before the enqueue *observation* lands (the server's work
// clock runs ahead of the dispatcher's bookkeeping), so queue wait may
// be measured slightly negative; the raw timestamps in the ring keep
// the exact values.
//
//finitelb:hotpath
func (r *Recorder) observe(sp *Span) {
	pick := (sp.Picked - sp.Arrival) * r.invScale
	wait := (sp.Start - sp.Enqueued) * r.invScale
	svc := (sp.Done - sp.Start) * r.invScale
	if !(pick > 0) {
		pick = 0
	}
	if !(wait > 0) {
		wait = 0
	}
	if !(svc > 0) {
		svc = 0
	}
	r.mu.Lock()
	r.pick.Add(pick)
	r.wait.Add(wait)
	r.service.Add(svc)
	r.pickN++
	r.pickSum += pick
	r.waitSum += wait
	r.svcSum += svc
	r.mu.Unlock()
}

// Spans returns up to max completed spans, most recent first (max < 0
// means "all available"). It is safe against concurrent writers: a
// slot caught mid-write is retried a few times and then skipped, never
// returned torn.
func (r *Recorder) Spans(max int) []Span {
	w := r.widx.Load()
	n := uint64(len(r.slots))
	if w < n {
		n = w
	}
	if max >= 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		sl := &r.slots[(w-1-i)&r.mask]
		for try := 0; try < 4; try++ {
			v1 := sl.ver.Load()
			if v1 == 0 || v1&1 != 0 {
				continue
			}
			var d [slotWords]uint64
			for k := range d {
				d[k] = sl.data[k].Load()
			}
			if sl.ver.Load() != v1 {
				continue
			}
			out = append(out, decodeSpan(&d))
			break
		}
	}
	return out
}

func decodeSpan(d *[slotWords]uint64) Span {
	return Span{
		Seq:      d[0],
		Arrival:  math.Float64frombits(d[1]),
		Picked:   math.Float64frombits(d[2]),
		Enqueued: math.Float64frombits(d[3]),
		Start:    math.Float64frombits(d[4]),
		Done:     math.Float64frombits(d[5]),
		Server:   int32(uint32(d[6] >> 32)),
		QLen:     int32(uint32(d[6])),
		Ties:     int32(uint32(d[7])),
		Retries:  int32(uint16(d[7] >> 32)),
		Outcome:  uint8(d[7] >> 48),
	}
}

// Stages is a point-in-time copy of the per-stage delay decomposition,
// in mean-service-time units. The three sketches have equal N (one
// observation per completed span) and their sums decompose the total:
// PickSum+WaitSum+ServiceSum ≈ sum of recorded sojourns (exactly, up
// to the zero-clamp documented on observe).
type Stages struct {
	N                            int64
	Pick, Wait, Service          *stats.Sketch
	PickSum, WaitSum, ServiceSum float64
}

// Stages snapshots the stage sketches (deep copies; safe to read while
// recording continues).
func (r *Recorder) Stages() Stages {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stages{
		N:          r.pickN,
		Pick:       r.cloneSketch(r.pick),
		Wait:       r.cloneSketch(r.wait),
		Service:    r.cloneSketch(r.service),
		PickSum:    r.pickSum,
		WaitSum:    r.waitSum,
		ServiceSum: r.svcSum,
	}
}

func (r *Recorder) cloneSketch(s *stats.Sketch) *stats.Sketch {
	c := stats.NewSketch(r.alpha, r.budget)
	c.Merge(s)
	return c
}

// Seen returns the number of jobs observed by Start (traced or not).
func (r *Recorder) Seen() uint64 { return r.seq.Load() }

// Sampled returns how many jobs hit the sampler.
func (r *Recorder) Sampled() uint64 { return r.sampled.Load() }

// Published returns how many completed spans were offered to the ring.
func (r *Recorder) Published() uint64 { return r.widx.Load() }

// Dropped returns sampled jobs lost to capacity: pending-pool
// exhaustion or a ring-lap collision.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Aborted returns sampled jobs that left the system unserved.
func (r *Recorder) Aborted() uint64 { return r.aborted.Load() }

// SampleEvery returns the effective sampling period (1 = every job).
func (r *Recorder) SampleEvery() int { return r.sample }

// Cap returns the ring capacity in spans.
func (r *Recorder) Cap() int { return len(r.slots) }

// PendingCap returns the size of the in-flight span pool.
func (r *Recorder) PendingCap() int { return len(r.pend) }
