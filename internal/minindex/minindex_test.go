package minindex

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// naiveMin scans a key slice the way the reference pickers scan the farm.
func naiveMin(keys []uint32) (uint32, int) {
	best, cnt := keys[0], 1
	for _, k := range keys[1:] {
		switch {
		case k < best:
			best, cnt = k, 1
		case k == best:
			cnt++
		}
	}
	return best, cnt
}

// TestSeqMatchesScan drives random updates through a Seq tree and checks
// after every single one that (min, tie count) and the argmin's key match
// a naive scan.
func TestSeqMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100, 1000} {
		tr := NewSeq(n)
		keys := make([]float64, n)
		for step := 0; step < 4000; step++ {
			i := rng.IntN(n)
			keys[i] = float64(rng.IntN(8)) // small range forces ties
			tr.Update(i, keys[i])

			best, cnt := keys[0], int32(1)
			for _, k := range keys[1:] {
				switch {
				case k < best:
					best, cnt = k, 1
				case k == best:
					cnt++
				}
			}
			if tr.Min() != best {
				t.Fatalf("n=%d step %d: Min = %v, scan %v", n, step, tr.Min(), best)
			}
			if tr.cnt[1] != cnt {
				t.Fatalf("n=%d step %d: tie count = %d, scan %d", n, step, tr.cnt[1], cnt)
			}
			if am := tr.Argmin(rng); keys[am] != best {
				t.Fatalf("n=%d step %d: Argmin %d holds %v, min is %v", n, step, am, keys[am], best)
			}
		}
	}
}

// TestSeqArgminUniformAcrossTies: with a fixed tied state, Argmin must
// choose every tied leaf equally often — the same unbiasedness contract
// the scan pickers are tested for in internal/workload.
func TestSeqArgminUniformAcrossTies(t *testing.T) {
	const n, picks = 48, 60000
	tr := NewSeq(n)
	tied := []int{3, 17, 18, 40} // everyone else strictly longer
	for i := 0; i < n; i++ {
		tr.Update(i, 5)
	}
	for _, i := range tied {
		tr.Update(i, 2)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	counts := make(map[int]int)
	for k := 0; k < picks; k++ {
		counts[tr.Argmin(rng)]++
	}
	want := picks / len(tied)
	for _, i := range tied {
		if c := counts[i]; c < want-want/10 || c > want+want/10 {
			t.Errorf("tied leaf %d picked %d times, want %d ± 10%%", i, c, want)
		}
	}
	if len(counts) != len(tied) {
		t.Errorf("picked %d distinct leaves, want exactly the %d tied ones: %v", len(counts), len(tied), counts)
	}
}

// TestConcMatchesScanSequential is the single-goroutine exactness check
// for the concurrent tree: after every update, (min, count, argmin) agree
// with a naive scan of the authoritative key table.
func TestConcMatchesScanSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 2, 5, 64, 100, 777} {
		keys := make([]atomic.Uint32, n)
		tr := NewConc(n, func(i int) uint32 { return keys[i].Load() })
		snap := make([]uint32, n)
		for step := 0; step < 3000; step++ {
			i := rng.IntN(n)
			keys[i].Store(uint32(rng.IntN(6)))
			tr.Update(i)

			for k := range snap {
				snap[k] = keys[k].Load()
			}
			best, cnt := naiveMin(snap)
			if tr.Min() != best {
				t.Fatalf("n=%d step %d: Min = %d, scan %d", n, step, tr.Min(), best)
			}
			if _, c := unpack(tr.node[1].Load()); int(c) != cnt {
				t.Fatalf("n=%d step %d: tie count = %d, scan %d", n, step, c, cnt)
			}
			if am := tr.Argmin(rng); snap[am] != best {
				t.Fatalf("n=%d step %d: Argmin %d holds %d, min is %d", n, step, am, snap[am], best)
			}
		}
	}
}

// TestConcConcurrentConvergence is the satellite property test: workers
// hammer random leaf updates concurrently (enqueue/complete shaped: ±1
// around a moving level), then at each quiescent point the tree's argmin
// must match a naive scan of the atomic table exactly. Run under
// `go test -race ./internal/minindex` (CI's race job covers it).
func TestConcConcurrentConvergence(t *testing.T) {
	const (
		n       = 300
		workers = 8
		rounds  = 40
		opsEach = 400
	)
	var keys [n]atomic.Uint32
	tr := NewConc(n, func(i int) uint32 { return keys[i].Load() })
	rng := rand.New(rand.NewPCG(11, 13))

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, uint64(round)))
				for op := 0; op < opsEach; op++ {
					i := r.IntN(n)
					if r.IntN(2) == 0 {
						keys[i].Add(1)
					} else {
						// Decrement, floored at 0 like a queue length.
						for {
							v := keys[i].Load()
							if v == 0 || keys[i].CompareAndSwap(v, v-1) {
								break
							}
						}
					}
					tr.Update(i)
					if op%16 == 0 {
						_ = tr.Argmin(r) // exercise descent under churn
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()

		snap := make([]uint32, n)
		for i := range snap {
			snap[i] = keys[i].Load()
		}
		best, cnt := naiveMin(snap)
		if tr.Min() != best {
			t.Fatalf("round %d: quiescent Min = %d, scan %d", round, tr.Min(), best)
		}
		if _, c := unpack(tr.node[1].Load()); int(c) != cnt {
			t.Fatalf("round %d: quiescent tie count = %d, scan %d", round, c, cnt)
		}
		for k := 0; k < 20; k++ {
			if am := tr.Argmin(rng); snap[am] != best {
				t.Fatalf("round %d: quiescent Argmin %d holds %d, min is %d", round, am, snap[am], best)
			}
		}
	}
}

// TestConcChurnQuiescence models the failure domain's use of the index:
// while workers mutate queue-length keys, other workers take servers in
// and out of membership by masking their keys at the sentinel (how
// internal/lb's view reports down servers, so scanning pickers route
// around them) and restoring a real key on rejoin. At each quiescent
// point the tree's min, tie count, and argmin must match a naive scan
// of the final table — membership flaps leave no residue. Run under
// `go test -race -count=3` (CI's race job).
func TestConcChurnQuiescence(t *testing.T) {
	const (
		n       = 128
		workers = 8
		rounds  = 30
		opsEach = 300
		masked  = padKey // clamped to padKey-1 inside Update, like a down server's view
	)
	var keys [n]atomic.Uint32
	tr := NewConc(n, func(i int) uint32 { return keys[i].Load() })
	rng := rand.New(rand.NewPCG(21, 34))

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, uint64(round)))
				churner := seed%2 == 0
				for op := 0; op < opsEach; op++ {
					i := r.IntN(n)
					switch {
					case churner && r.IntN(4) == 0:
						// Leave: mask the server out of every scan.
						keys[i].Store(masked)
					case churner:
						// Join (or rejoin): back with a real queue length.
						keys[i].Store(uint32(r.IntN(5)))
					default:
						// Regular enqueue/complete traffic on whatever
						// membership state the server is in.
						keys[i].Store(uint32(r.IntN(8)))
					}
					tr.Update(i)
					if op%16 == 0 {
						_ = tr.Argmin(r)
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()

		snap := make([]uint32, n)
		for i := range snap {
			v := keys[i].Load()
			if v >= padKey {
				v = padKey - 1 // Update's clamp; the scan must compare what the tree stored
			}
			snap[i] = v
		}
		best, cnt := naiveMin(snap)
		if tr.Min() != best {
			t.Fatalf("round %d: quiescent Min = %d, scan %d", round, tr.Min(), best)
		}
		if _, c := unpack(tr.node[1].Load()); int(c) != cnt {
			t.Fatalf("round %d: quiescent tie count = %d, scan %d", round, c, cnt)
		}
		for k := 0; k < 20; k++ {
			if am := tr.Argmin(rng); snap[am] != best {
				t.Fatalf("round %d: quiescent Argmin %d holds %d, min is %d", round, am, snap[am], best)
			}
		}
	}
}

// TestConcPaddingNeverWins: keys saturated at the padding sentinel still
// return a real leaf.
func TestConcPaddingNeverWins(t *testing.T) {
	var keys [5]atomic.Uint32
	for i := range keys {
		keys[i].Store(padKey) // clamped to padKey-1 inside Update
	}
	tr := NewConc(5, func(i int) uint32 { return keys[i].Load() })
	rng := rand.New(rand.NewPCG(1, 1))
	for k := 0; k < 100; k++ {
		if am := tr.Argmin(rng); am < 0 || am >= 5 {
			t.Fatalf("Argmin returned padding leaf %d", am)
		}
	}
	if tr.Min() != padKey-1 {
		t.Fatalf("Min = %d, want clamped %d", tr.Min(), padKey-1)
	}
}

func BenchmarkConcUpdate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(sizeName(n), func(b *testing.B) {
			keys := make([]atomic.Uint32, n)
			tr := NewConc(n, func(i int) uint32 { return keys[i].Load() })
			rng := rand.New(rand.NewPCG(1, 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := rng.IntN(n)
				keys[j].Store(uint32(i) & 7)
				tr.Update(j)
			}
		})
	}
}

func BenchmarkConcArgmin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(sizeName(n), func(b *testing.B) {
			keys := make([]atomic.Uint32, n)
			tr := NewConc(n, func(i int) uint32 { return keys[i].Load() })
			rng := rand.New(rand.NewPCG(1, 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tr.Argmin(rng)
			}
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("N=%d", n) }
