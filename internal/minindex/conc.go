package minindex

import (
	"math/rand/v2"
	"sync/atomic"
)

// Conc is the lock-free variant of the tournament min-tree, the live
// runtime's index over its padded atomic slot table. Keys are uint32
// (queue lengths, or outstanding work quantized to microseconds); the
// tree does not store authoritative state — it reads leaf keys through
// the key callback, which loads them from the table, so the table remains
// the single source of truth and the tree is a repairable cache of its
// argmin.
//
// Every node packs (version, value, tie count) into one uint64 updated by
// compare-and-swap. The version tag is what makes concurrent repair
// converge: an updater loads the node word first, then reads its inputs
// (the leaf key, or the two children), and only then CASes in the
// recomputed word with the version bumped. A racer that read stale inputs
// either loses the CAS (the version moved) and retries with fresh reads,
// or wins it before the fresher update lands — in which case the fresher
// update's CAS, serialized after, re-reads the inputs and overwrites.
// Inductively the last successful CAS at each node saw the final state of
// its inputs, so after updates quiesce every node holds the exact
// (min, count) of its subtree — the invariant the randomized property
// test in this package hammers under -race.
//
// During churn a reader can observe a momentarily stale argmin; that is
// inherent to any index a dispatcher consults while servers complete jobs
// concurrently, and harmless here — the pick is a routing hint, and the
// bounded-queue reservation in internal/lb revalidates capacity.
type Conc struct {
	n    int
	base int
	key  func(i int) uint32 // authoritative leaf key, read from the host's table
	node []atomic.Uint64    // 1-based heap layout; packed ver|val|cnt
}

const (
	// padKey is the padding leaves' value; Update clamps real keys one
	// below it so padding never wins or ties a descent.
	padKey  = 1<<32 - 1
	maxCnt  = 1<<16 - 1 // tie counts saturate (argmin stays valid, tie weights coarsen)
	cntBits = 16
	valBits = 32
)

// pack: [ver:16][val:32][cnt:16]. The 16-bit version only needs to make
// an in-flight racer's CAS fail; 2^16 intervening updates inside one
// load-to-CAS window is beyond any realistic stall.
func pack(ver uint64, val uint32, cnt uint32) uint64 {
	return ver<<(valBits+cntBits) | uint64(val)<<cntBits | uint64(cnt)
}

func unpack(w uint64) (val, cnt uint32) {
	return uint32(w >> cntBits), uint32(w & maxCnt)
}

// NewConc builds a tree over n leaves whose keys are read via key. The
// callback must be safe for concurrent use (atomic loads from the host's
// table) and is only invoked with 0 ≤ i < n. Initial keys are read
// immediately.
func NewConc(n int, key func(i int) uint32) *Conc {
	if n < 1 {
		panic("minindex: need n ≥ 1")
	}
	base := 1
	for base < n {
		base <<= 1
	}
	t := &Conc{n: n, base: base, key: key, node: make([]atomic.Uint64, 2*base)}
	// Seed every node at the padding sentinel: internal nodes covering only
	// padding leaves are never repaired by an Update and must not read as
	// (0, 0), which would win every comparison.
	for j := 1; j < 2*base; j++ {
		t.node[j].Store(pack(0, padKey, 0))
	}
	for i := 0; i < n; i++ {
		t.Update(i)
	}
	return t
}

// Update re-reads leaf i's key from the table and repairs the path to the
// root. Call it after every change to the key's source (the table write
// must happen before the call). Safe for any number of concurrent
// callers; cost is O(log n) CASes, contended only near the root.
//finitelb:hotpath
func (t *Conc) Update(i int) {
	j := t.base + i
	for {
		old := t.node[j].Load()
		k := t.key(i)
		if k >= padKey {
			k = padKey - 1
		}
		if t.node[j].CompareAndSwap(old, pack(old>>(valBits+cntBits)+1, k, 1)) {
			break
		}
	}
	for j >>= 1; j >= 1; j >>= 1 {
		for {
			old := t.node[j].Load()
			lv, lc := unpack(t.node[2*j].Load())
			rv, rc := unpack(t.node[2*j+1].Load())
			var v, c uint32
			switch {
			case lv < rv:
				v, c = lv, lc
			case lv > rv:
				v, c = rv, rc
			default:
				v, c = lv, lc+rc
				if c > maxCnt {
					c = maxCnt
				}
			}
			if t.node[j].CompareAndSwap(old, pack(old>>(valBits+cntBits)+1, v, c)) {
				break
			}
		}
	}
}

// Min returns the current minimum key.
func (t *Conc) Min() uint32 {
	v, _ := unpack(t.node[1].Load())
	return v
}

// Argmin returns a leaf holding the minimum key, chosen uniformly among
// ties by the nodes' tie counts. Under concurrent updates the descent can
// meet a node whose children no longer witness its stored minimum; it then
// follows the smaller child — a best-effort hint, which is all a
// dispatcher racing live completions can ever have. Quiescent, the result
// is an exact uniformly-tie-broken argmin.
//finitelb:hotpath
func (t *Conc) Argmin(rng *rand.Rand) int {
	j := 1
	v, _ := unpack(t.node[1].Load())
	for j < t.base {
		lv, lc := unpack(t.node[2*j].Load())
		rv, rc := unpack(t.node[2*j+1].Load())
		switch {
		case lv == v && rv == v && lc+rc > 0:
			if uint32(rng.IntN(int(lc+rc))) < lc {
				j = 2 * j
			} else {
				j = 2*j + 1
			}
		case lv == v:
			j = 2 * j
		case rv == v:
			j = 2*j + 1
		case lv <= rv: // stale path: chase the smaller side
			j, v = 2*j, lv
		default:
			j, v = 2*j+1, rv
		}
	}
	i := j - t.base
	if i >= t.n { // stale descent strayed into padding; any real leaf will do
		i = t.n - 1
	}
	return i
}
