// Package minindex provides hierarchical min-indexes — tournament trees
// that maintain argmin over a fixed set of per-server keys incrementally —
// so that global-information dispatch policies (JSQ over queue lengths,
// LWL over outstanding work) cost O(log N) per state change and O(log N)
// per pick instead of the O(N) scan that caps dispatch throughput at large
// N. The repository keeps the scan pickers as the reference implementation
// and switches to an index only at N ≥ Threshold; both sides of the house
// use this package: the discrete-event simulator holds a Seq tree inside
// its farm view, and the live runtime (internal/lb) holds a Conc tree over
// its padded atomic slot table.
//
// Both trees are complete binary tournament trees over n leaves (padded to
// a power of two). Every node carries the minimum key of its subtree plus
// the count of leaves achieving it, which is what makes argmin sampling
// exactly uniform across ties: a pick descends from the root, choosing
// among the children that match the running minimum with probability
// proportional to their tie counts. A deterministic tournament tree would
// always surface the same tied leaf — the low-index bias the scan pickers
// are also guarded against — so the counts are load-bearing, not
// decorative.
package minindex

import "math/rand/v2"

// Threshold is the farm size at which the hosts switch JSQ/LWL from the
// reference O(N) scan to a maintained index. Below it the scan's tight
// loop over a few cache lines beats the tree's pointer-free but
// multi-level walk; above it the scan's linear cost dominates everything
// else on the dispatch path (9–12µs at N=1000 against a sub-µs budget).
const Threshold = 64

// Seq is a single-goroutine tournament min-tree over float64 keys, the
// simulator's index. Keys start at 0 (an empty farm: every queue length
// and backlog is zero, all n leaves tied).
type Seq struct {
	n    int
	base int       // leaf count, power of two ≥ n
	val  []float64 // 1-based heap layout; val[base+i] is leaf i's key
	cnt  []int32   // leaves of the subtree achieving val
}

// NewSeq builds a tree of n keys, all zero.
func NewSeq(n int) *Seq {
	if n < 1 {
		panic("minindex: need n ≥ 1")
	}
	base := 1
	for base < n {
		base <<= 1
	}
	t := &Seq{n: n, base: base, val: make([]float64, 2*base), cnt: make([]int32, 2*base)}
	for i := 0; i < n; i++ {
		t.cnt[base+i] = 1
	}
	for i := n; i < base; i++ {
		t.val[base+i] = padKeySeq // padding never wins or ties
	}
	for j := base - 1; j >= 1; j-- {
		t.combine(j)
	}
	return t
}

// padKeySeq is the padding leaves' key; real keys must stay below it.
// math.Inf would also work, but a finite sentinel keeps comparisons exact.
const padKeySeq = 1e308

//finitelb:hotpath
func (t *Seq) combine(j int) {
	l, r := 2*j, 2*j+1
	switch {
	case t.val[l] < t.val[r]:
		t.val[j], t.cnt[j] = t.val[l], t.cnt[l]
	case t.val[l] > t.val[r]:
		t.val[j], t.cnt[j] = t.val[r], t.cnt[r]
	default:
		t.val[j], t.cnt[j] = t.val[l], t.cnt[l]+t.cnt[r]
	}
}

// Update sets leaf i's key and repairs the path to the root, stopping
// early once an ancestor's (min, count) is unchanged.
//finitelb:hotpath
func (t *Seq) Update(i int, key float64) {
	j := t.base + i
	if t.val[j] == key {
		return
	}
	t.val[j] = key
	for j >>= 1; j >= 1; j >>= 1 {
		v, c := t.val[j], t.cnt[j]
		t.combine(j)
		if t.val[j] == v && t.cnt[j] == c {
			return
		}
	}
}

// Min returns the minimum key.
func (t *Seq) Min() float64 { return t.val[1] }

// Argmin returns a uniformly chosen leaf among those holding the minimum
// key, descending by tie counts.
//finitelb:hotpath
func (t *Seq) Argmin(rng *rand.Rand) int {
	j := 1
	for j < t.base {
		l, r := 2*j, 2*j+1
		switch {
		case t.val[l] < t.val[r]:
			j = l
		case t.val[l] > t.val[r]:
			j = r
		default:
			if int32(rng.IntN(int(t.cnt[l]+t.cnt[r]))) < t.cnt[l] {
				j = l
			} else {
				j = r
			}
		}
	}
	return j - t.base
}
