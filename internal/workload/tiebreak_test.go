package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Tie-breaking distribution tests: on a frozen view with several servers
// tied at the minimum, the argmin choice of every load-aware picker must
// be uniform across the tied set — no deterministic preference for
// low-numbered servers. The tolerance is ±6σ of the binomial count, so a
// false failure is astronomically unlikely while any positional bias
// (which would concentrate picks on one tied index) trips instantly.

func assertUniformPicks(t *testing.T, name string, picks func(rng *rand.Rand) int, tied []int, trials int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 99))
	counts := make(map[int]int)
	for k := 0; k < trials; k++ {
		counts[picks(rng)]++
	}
	p := 1 / float64(len(tied))
	want := float64(trials) * p
	sigma := math.Sqrt(float64(trials) * p * (1 - p))
	for _, i := range tied {
		c := float64(counts[i])
		if math.Abs(c-want) > 6*sigma {
			t.Errorf("%s: tied server %d picked %d times, want %.0f ± %.0f (6σ)", name, i, counts[i], want, 6*sigma)
		}
	}
	for i, c := range counts {
		isTied := false
		for _, j := range tied {
			if i == j {
				isTied = true
			}
		}
		if !isTied {
			t.Errorf("%s: non-minimal server %d picked %d times", name, i, c)
		}
	}
}

func TestJSQTieBreakUnbiased(t *testing.T) {
	// Tied zeros scattered asymmetrically, including the ends.
	lens := []int{0, 3, 1, 0, 2, 2, 0, 5, 1, 0}
	q := fuzzQueues{lens: lens}
	pk, err := JSQ{}.NewPicker(len(lens))
	if err != nil {
		t.Fatal(err)
	}
	assertUniformPicks(t, "jsq", func(rng *rand.Rand) int { return pk.Pick(rng, q) },
		[]int{0, 3, 6, 9}, 40000)
}

func TestLWLTieBreakUnbiased(t *testing.T) {
	wq := workView{
		lens:  []int{1, 1, 2, 1, 1, 1},
		works: []float64{0.5, 2, 0.5, 3, 0.5, 4},
	}
	pk, err := LWL{}.NewPicker(wq.N())
	if err != nil {
		t.Fatal(err)
	}
	assertUniformPicks(t, "lwl", func(rng *rand.Rand) int { return pk.Pick(rng, wq) },
		[]int{0, 2, 4}, 40000)
}

func TestSQDFullSampleTieBreakUnbiased(t *testing.T) {
	// SQ(N) is JSQ in law; its Fisher–Yates scan must share the uniform
	// tie-breaking contract.
	lens := []int{1, 0, 1, 0, 1, 0, 1, 0}
	q := fuzzQueues{lens: lens}
	pk, err := SQD{D: len(lens)}.NewPicker(len(lens))
	if err != nil {
		t.Fatal(err)
	}
	assertUniformPicks(t, "sqd-full", func(rng *rand.Rand) int { return pk.Pick(rng, q) },
		[]int{1, 3, 5, 7}, 40000)
}

// indexedView fakes a host-maintained min-index so the test can pin the
// picker's indexed fast path: ArgminLen/ArgminWork answer directly, and
// any fallback scan would be visible as a non-uniform or non-minimal pick.
type indexedView struct {
	workView
	tied []int
}

func (v indexedView) ArgminLen(rng *rand.Rand) (int, bool) {
	return v.tied[rng.IntN(len(v.tied))], true
}

func (v indexedView) ArgminWork(rng *rand.Rand) (int, bool) {
	return v.tied[rng.IntN(len(v.tied))], true
}

func TestPickersUseHostIndex(t *testing.T) {
	v := indexedView{
		workView: workView{lens: []int{9, 9, 9}, works: []float64{9, 9, 9}},
		tied:     []int{1}, // the index, not the (deliberately useless) view, must answer
	}
	jsq, _ := JSQ{}.NewPicker(3)
	lwl, _ := LWL{}.NewPicker(3)
	rng := rand.New(rand.NewPCG(5, 6))
	for k := 0; k < 20; k++ {
		if got := jsq.Pick(rng, v); got != 1 {
			t.Fatalf("JSQ ignored the host index: picked %d", got)
		}
		if got := lwl.Pick(rng, v); got != 1 {
			t.Fatalf("LWL ignored the host index: picked %d", got)
		}
	}
}
