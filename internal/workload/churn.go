package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ChurnKind enumerates the membership and fault-injection events a churn
// schedule can carry. The same vocabulary drives both execution engines:
// the simulator applies events on model time, the live runtime
// (internal/lb) on the wall clock scaled by its mean service time, so a
// live chaos scenario always has a seed-reproducible sim twin.
type ChurnKind uint8

const (
	// ChurnCrash fails a server abruptly: its in-service job is
	// interrupted and every job it held is requeued through the retry
	// path (bounded redelivery budget; lost service is re-executed).
	ChurnCrash ChurnKind = iota
	// ChurnLeave removes a server gracefully: the in-service job
	// completes, queued jobs are requeued, no new work is routed to it.
	ChurnLeave
	// ChurnRestore returns a crashed or departed server to the farm.
	ChurnRestore
	// ChurnSlow degrades a server's speed: service durations multiply by
	// the event's Factor until a restore (Factor 1 resets).
	ChurnSlow
	// ChurnStall freezes a server for Dur: it serves nothing while
	// stalled, then resumes with its queue intact. Live-only (the
	// simulator rejects it; see internal/sim).
	ChurnStall
	// ChurnPause suspends the dispatcher: submissions block until the
	// matching resume. Live-only.
	ChurnPause
	// ChurnResume releases a dispatcher pause.
	ChurnResume
)

// churnKindNames maps kinds to their canonical spec names.
var churnKindNames = [...]string{"crash", "leave", "restore", "slow", "stall", "pause", "resume"}

func (k ChurnKind) String() string {
	if int(k) < len(churnKindNames) {
		return churnKindNames[k]
	}
	return fmt.Sprintf("churnkind(%d)", int(k))
}

// ChurnEvent is one scheduled event. T is in mean service times from the
// start of the run. Server is the target (−1 = unassigned; the
// deterministic resolver in internal/chaos picks one). Factor is the
// service-time multiplier of a slow event; Dur the span of a stall.
type ChurnEvent struct {
	Kind   ChurnKind
	T      float64
	Server int
	Factor float64
	Dur    float64
}

// String renders the event in the spec grammar.
func (e ChurnEvent) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	fmt.Fprintf(&b, "@t=%g", e.T)
	if e.Server >= 0 {
		fmt.Fprintf(&b, "@s=%d", e.Server)
	}
	if e.Kind == ChurnSlow {
		fmt.Fprintf(&b, "@f=%g", e.Factor)
	}
	if e.Kind == ChurnStall {
		fmt.Fprintf(&b, "@d=%g", e.Dur)
	}
	return b.String()
}

// Churn is a schedule of events, sorted by time (stable for equal
// stamps, preserving spec order).
type Churn struct {
	Events []ChurnEvent
}

// String renders the canonical spec (parseable by ParseChurn).
func (c *Churn) String() string {
	if c == nil || len(c.Events) == 0 {
		return ""
	}
	parts := make([]string, len(c.Events))
	for i, e := range c.Events {
		parts[i] = e.String()
	}
	return "churn:" + strings.Join(parts, ",")
}

// churnGrammar restates the accepted event shapes, so a malformed spec
// is self-diagnosing (same convention as checkKeys).
const churnGrammar = "grammar: KIND@t=T[@s=SERVER][@f=FACTOR][@d=DUR], events comma-separated, " +
	"kinds: crash, leave, restore|join, slow (needs f), stall (needs d), pause, resume; " +
	"the bare first value binds to t (crash@500 ≡ crash@t=500)"

// ParseChurn parses a churn schedule spec:
//
//	""                                      no churn (nil)
//	"churn:crash@t=500,restore@t=900"       the prefix is optional
//	"crash@500@s=2,slow@t=300@s=1@f=4"      bare first value is t
//
// Event arguments are @-separated (the comma separates events): t is the
// event time in mean service times (required, ≥ 0), s the target server
// (optional; unassigned events are picked deterministically by
// internal/chaos.Resolve), f the slow factor (> 0, slow only), d the
// stall duration (> 0, stall only). Events are sorted by t, stably.
func ParseChurn(spec string) (*Churn, error) {
	spec = strings.TrimSpace(spec)
	spec = strings.TrimPrefix(spec, "churn:")
	if spec == "" {
		return nil, nil
	}
	var c Churn
	for _, raw := range strings.Split(spec, ",") {
		ev, err := parseChurnEvent(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("workload: churn event %q: %w (%s)", raw, err, churnGrammar)
		}
		c.Events = append(c.Events, ev)
	}
	sort.SliceStable(c.Events, func(i, j int) bool { return c.Events[i].T < c.Events[j].T })
	return &c, nil
}

func parseChurnEvent(raw string) (ChurnEvent, error) {
	parts := strings.Split(raw, "@")
	ev := ChurnEvent{Server: -1, T: -1}
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	switch kind {
	case "crash":
		ev.Kind = ChurnCrash
	case "leave":
		ev.Kind = ChurnLeave
	case "restore", "join":
		ev.Kind = ChurnRestore
	case "slow":
		ev.Kind = ChurnSlow
	case "stall":
		ev.Kind = ChurnStall
	case "pause":
		ev.Kind = ChurnPause
	case "resume":
		ev.Kind = ChurnResume
	default:
		return ev, fmt.Errorf("unknown kind %q", kind)
	}
	seen := map[string]bool{}
	for i, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		eq := strings.IndexByte(kv, '=')
		key, val := "t", kv
		if eq >= 0 {
			key, val = strings.ToLower(strings.TrimSpace(kv[:eq])), strings.TrimSpace(kv[eq+1:])
		} else if i > 0 {
			return ev, fmt.Errorf("malformed argument %q", kv)
		}
		if seen[key] {
			return ev, fmt.Errorf("duplicate argument %q", key)
		}
		seen[key] = true
		switch key {
		case "t":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil || !(t >= 0) {
				return ev, fmt.Errorf("t=%q is not a time ≥ 0", val)
			}
			ev.T = t
		case "s":
			s, err := strconv.Atoi(val)
			if err != nil || s < 0 {
				return ev, fmt.Errorf("s=%q is not a server index ≥ 0", val)
			}
			ev.Server = s
		case "f":
			if ev.Kind != ChurnSlow {
				return ev, fmt.Errorf("argument f only applies to slow events")
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || !(f > 0) {
				return ev, fmt.Errorf("f=%q is not a factor > 0", val)
			}
			ev.Factor = f
		case "d":
			if ev.Kind != ChurnStall {
				return ev, fmt.Errorf("argument d only applies to stall events")
			}
			d, err := strconv.ParseFloat(val, 64)
			if err != nil || !(d > 0) {
				return ev, fmt.Errorf("d=%q is not a duration > 0", val)
			}
			ev.Dur = d
		default:
			return ev, fmt.Errorf("unknown argument %q", key)
		}
	}
	if ev.T < 0 {
		return ev, fmt.Errorf("missing required argument t")
	}
	if ev.Kind == ChurnSlow && ev.Factor == 0 {
		return ev, fmt.Errorf("slow needs a factor (f=F)")
	}
	if ev.Kind == ChurnStall && ev.Dur == 0 {
		return ev, fmt.Errorf("stall needs a duration (d=D)")
	}
	if (ev.Kind == ChurnPause || ev.Kind == ChurnResume) && ev.Server >= 0 {
		return ev, fmt.Errorf("%s is dispatcher-wide; it takes no server", ev.Kind)
	}
	return ev, nil
}
