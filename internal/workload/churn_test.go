package workload

import (
	"strings"
	"testing"
)

func TestParseChurn(t *testing.T) {
	c, err := ParseChurn("churn:crash@t=500,restore@t=900")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(c.Events))
	}
	if c.Events[0].Kind != ChurnCrash || c.Events[0].T != 500 || c.Events[0].Server != -1 {
		t.Errorf("event 0 = %+v, want crash@t=500 unassigned", c.Events[0])
	}
	if c.Events[1].Kind != ChurnRestore || c.Events[1].T != 900 {
		t.Errorf("event 1 = %+v, want restore@t=900", c.Events[1])
	}

	// The prefix is optional, the bare first value binds to t, join
	// aliases restore, and events sort by time.
	c, err = ParseChurn("join@900@s=3,slow@t=100@s=1@f=4,stall@200@d=50,crash@0")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]ChurnKind, len(c.Events))
	for i, e := range c.Events {
		kinds[i] = e.Kind
	}
	want := []ChurnKind{ChurnCrash, ChurnSlow, ChurnStall, ChurnRestore}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("sorted kinds %v, want %v", kinds, want)
		}
	}
	if c.Events[1].Factor != 4 || c.Events[1].Server != 1 {
		t.Errorf("slow event = %+v, want f=4 s=1", c.Events[1])
	}
	if c.Events[2].Dur != 50 {
		t.Errorf("stall event = %+v, want d=50", c.Events[2])
	}
	if c.Events[3].Server != 3 {
		t.Errorf("join event = %+v, want s=3", c.Events[3])
	}
}

func TestParseChurnEmpty(t *testing.T) {
	for _, spec := range []string{"", "churn:", "  "} {
		c, err := ParseChurn(spec)
		if err != nil || c != nil {
			t.Errorf("ParseChurn(%q) = %v, %v, want nil, nil", spec, c, err)
		}
	}
}

func TestParseChurnRoundTrip(t *testing.T) {
	const spec = "churn:crash@t=0@s=2,slow@t=100@s=1@f=4,stall@t=200@s=0@d=50,restore@t=900@s=2"
	c, err := ParseChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.String(); got != spec {
		t.Errorf("round trip %q, want %q", got, spec)
	}
	c2, err := ParseChurn(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Events) != len(c.Events) {
		t.Fatalf("re-parse lost events: %d vs %d", len(c2.Events), len(c.Events))
	}
}

func TestParseChurnErrors(t *testing.T) {
	for _, spec := range []string{
		"explode@t=1",     // unknown kind
		"crash",           // missing t
		"crash@t=-1",      // negative time
		"crash@t=x",       // non-numeric time
		"crash@t=1@s=-2",  // negative server
		"crash@t=1@q=3",   // unknown key
		"crash@t=1@t=2",   // duplicate key
		"slow@t=1",        // slow without factor
		"slow@t=1@f=0",    // non-positive factor
		"stall@t=1",       // stall without duration
		"crash@t=1@f=2",   // f on a non-slow event
		"crash@t=1@d=2",   // d on a non-stall event
		"pause@t=1@s=0",   // pause takes no server
		"crash@t=1@1@s=2", // bare value not in first position
	} {
		if _, err := ParseChurn(spec); err == nil {
			t.Errorf("ParseChurn(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), "grammar") {
			t.Errorf("ParseChurn(%q) error lacks the grammar restatement: %v", spec, err)
		}
	}
}
