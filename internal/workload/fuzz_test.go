package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

// fuzzQueues is a fixed farm view for exercising pickers.
type fuzzQueues struct{ lens []int }

func (q fuzzQueues) N() int        { return len(q.lens) }
func (q fuzzQueues) Len(i int) int { return q.lens[i] }

// FuzzParse drives the three spec parsers plus ParseSpeeds with arbitrary
// strings: parsing must never panic or hang, and whatever it accepts must
// be immediately usable — sources emit finite non-negative interarrivals,
// services sample finite positive times with E[S²] ≥ 1 (Jensen, unit
// mean), pickers stay in range. Seed corpus in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	f.Add("poisson", "exponential", "sqd:2", "1,1,1,1")
	f.Add("deterministic", "det", "jsq", "2x4")
	f.Add("erlang:3", "erlang:k=4", "jiq", "1x2,4x2")
	f.Add("hyperexp:cv2=9", "pareto:alpha=1.5,h=100", "round-robin", "0.5,0.5,2,2")
	f.Add("h2:4", "pareto:2.5", "random", "")
	f.Add("erlang:-1", "pareto:alpha=0", "sqd:d=0", "0")
	f.Add("erlang:99999999999", "pareto:alpha=1", "sq", "1x99999999999")
	f.Add(":::", "=,=", "sqd:d=x", "x1")
	f.Fuzz(func(t *testing.T, arrival, service, policy, speeds string) {
		rng := rand.New(rand.NewPCG(1, 2))
		if a, err := ParseArrival(arrival); err == nil && a != nil {
			src, err := a.NewSource(2.0)
			if err != nil {
				t.Fatalf("ParseArrival(%q) accepted a process NewSource rejects: %v", arrival, err)
			}
			for i := 0; i < 8; i++ {
				if gap := src.Next(rng); !(gap >= 0) || math.IsInf(gap, 1) {
					t.Fatalf("arrival %q: interarrival %v", arrival, gap)
				}
			}
		}
		if s, err := ParseService(service); err == nil && s != nil {
			if err := s.Validate(); err != nil {
				t.Fatalf("ParseService(%q) returned invalid law: %v", service, err)
			}
			if m2 := s.Moment2(); !(m2 >= 1) || math.IsInf(m2, 1) {
				t.Fatalf("service %q: E[S²] = %v < 1 for a unit-mean law", service, m2)
			}
			for i := 0; i < 8; i++ {
				if x := s.Sample(rng); !(x > 0) || math.IsInf(x, 1) {
					t.Fatalf("service %q: sample %v", service, x)
				}
			}
		}
		if p, err := ParsePolicy(policy); err == nil && p != nil {
			if sq, ok := p.(SQD); ok && sq.D == 0 {
				p = SQD{D: 2} // "sqd" defers D to the caller; pick one
			}
			q := fuzzQueues{lens: []int{3, 0, 1, 2}}
			if picker, err := p.NewPicker(q.N()); err == nil {
				for i := 0; i < 8; i++ {
					if id := picker.Pick(rng, q); id < 0 || id >= q.N() {
						t.Fatalf("policy %q picked server %d of %d", policy, id, q.N())
					}
				}
			}
		}
		if sp, err := ParseSpeeds(speeds, 4); err == nil && sp != nil {
			if len(sp) != 4 {
				t.Fatalf("ParseSpeeds(%q, 4) returned %d entries", speeds, len(sp))
			}
			for _, s := range sp {
				if !(s > 0) {
					t.Fatalf("ParseSpeeds(%q) accepted non-positive speed %v", speeds, s)
				}
			}
		}
	})
}
