package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Poisson is the default arrival process: i.i.d. exponential interarrivals,
// the paper's assumption and the only one the QBD bounds cover.
type Poisson struct{}

// NewSource implements Arrival.
func (Poisson) NewSource(rate float64) (Source, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	return poissonSource{rate: rate}, nil
}

func (Poisson) String() string { return "poisson" }

type poissonSource struct{ rate float64 }

func (s poissonSource) Next(rng *rand.Rand) float64 { return rng.ExpFloat64() / s.rate }

// DeterministicArrivals is the smoothest renewal process: fixed
// interarrivals 1/rate (SCV 0). With exponential service at a single
// server this is D/M/1, whose mean sojourn 1/(μ(1−σ)) follows from the
// σ-root of Theorem 2 (asym.DeterministicBetas) and anchors the oracle
// tests.
type DeterministicArrivals struct{}

// NewSource implements Arrival.
func (DeterministicArrivals) NewSource(rate float64) (Source, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	return constSource{gap: 1 / rate}, nil
}

func (DeterministicArrivals) String() string { return "deterministic" }

type constSource struct{ gap float64 }

func (s constSource) Next(*rand.Rand) float64 { return s.gap }

// ErlangArrivals has Erlang-K interarrivals (SCV 1/K): smoother than
// Poisson, interpolating toward deterministic as K grows.
type ErlangArrivals struct {
	K int // number of phases, 1 ≤ K ≤ MaxPhases (K = 1 is Poisson)
}

// MaxPhases caps phase counts accepted by Erlang arrival and service laws;
// beyond it the per-draw cost is pathological and the laws are
// indistinguishable from deterministic anyway.
const MaxPhases = 1000

// NewSource implements Arrival.
func (a ErlangArrivals) NewSource(rate float64) (Source, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	if a.K < 1 || a.K > MaxPhases {
		return nil, fmt.Errorf("workload: erlang arrivals need 1 ≤ K ≤ %d, got %d", MaxPhases, a.K)
	}
	return erlangSource{k: a.K, phaseRate: float64(a.K) * rate}, nil
}

func (a ErlangArrivals) String() string { return fmt.Sprintf("erlang:%d", a.K) }

type erlangSource struct {
	k         int
	phaseRate float64
}

func (s erlangSource) Next(rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < s.k; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / s.phaseRate
}

// HyperExp is a bursty renewal process: two-phase hyperexponential
// interarrivals with balanced means and squared coefficient of variation
// CV2 ≥ 1 (CV2 = 1 degenerates to Poisson). It stands in for the
// MAP/phase-type traffic the paper names as future work; its GI/M/1 mean
// sojourn is exactly solvable via asym.HyperExpBetas, which the oracle
// tests exploit.
type HyperExp struct {
	CV2 float64 // squared coefficient of variation of interarrivals, ≥ 1
}

// MaxCV2 caps the burstiness accepted by HyperExp; beyond it the branch
// probability underflows and simulations stop mixing in any feasible run.
const MaxCV2 = 1e6

// Phases returns the balanced-means parametrisation at aggregate rate:
// an interarrival is Exp(l1) with probability p, else Exp(l2). The same
// triple feeds asym.HyperExpBetas for the GI/M/1 oracle.
func (a HyperExp) Phases(rate float64) (p, l1, l2 float64) {
	p = (1 + math.Sqrt((a.CV2-1)/(a.CV2+1))) / 2
	return p, 2 * p * rate, 2 * (1 - p) * rate
}

// NewSource implements Arrival.
func (a HyperExp) NewSource(rate float64) (Source, error) {
	if err := checkRate(rate); err != nil {
		return nil, err
	}
	if !(a.CV2 >= 1 && a.CV2 <= MaxCV2) {
		return nil, fmt.Errorf("workload: hyperexp arrivals need 1 ≤ CV2 ≤ %g, got %v", MaxCV2, a.CV2)
	}
	p, l1, l2 := a.Phases(rate)
	return hyperExpSource{p: p, l1: l1, l2: l2}, nil
}

func (a HyperExp) String() string { return fmt.Sprintf("hyperexp:cv2=%g", a.CV2) }

type hyperExpSource struct{ p, l1, l2 float64 }

func (s hyperExpSource) Next(rng *rand.Rand) float64 {
	if rng.Float64() < s.p {
		return rng.ExpFloat64() / s.l1
	}
	return rng.ExpFloat64() / s.l2
}

func checkRate(rate float64) error {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return fmt.Errorf("workload: arrival rate %v outside (0, ∞)", rate)
	}
	return nil
}
