package workload

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

// sampleMean draws n values and returns their mean.
func sampleMean(n int, draw func(*rand.Rand) float64) float64 {
	rng := testRNG()
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += draw(rng)
	}
	return sum / float64(n)
}

func TestArrivalRates(t *testing.T) {
	const rate = 2.5
	for _, a := range []Arrival{
		Poisson{},
		DeterministicArrivals{},
		ErlangArrivals{K: 4},
		HyperExp{CV2: 9},
	} {
		src, err := a.NewSource(rate)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		mean := sampleMean(200_000, src.Next)
		if math.Abs(mean-1/rate) > 0.03/rate {
			t.Errorf("%s: mean interarrival %v, want %v", a, mean, 1/rate)
		}
	}
}

func TestHyperExpCV2(t *testing.T) {
	he := HyperExp{CV2: 9}
	src, err := he.NewSource(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	n, sum, sum2 := 400_000, 0.0, 0.0
	for i := 0; i < n; i++ {
		x := src.Next(rng)
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	cv2 := (sum2/float64(n) - mean*mean) / (mean * mean)
	if math.Abs(cv2-9) > 0.5 {
		t.Errorf("hyperexp CV² = %v, want 9", cv2)
	}
}

func TestServiceUnitMeans(t *testing.T) {
	pareto, err := NewBoundedPareto(1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	paretoLight, err := NewBoundedPareto(2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Service{
		Exponential{},
		DeterministicService{},
		ErlangService{K: 4},
		pareto,
		paretoLight,
	} {
		mean := sampleMean(400_000, s.Sample)
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("%s: sample mean %v, want 1", s, mean)
		}
		if m2 := s.Moment2(); !(m2 >= 1) {
			t.Errorf("%s: E[S²] = %v < 1", s, m2)
		}
	}
	// A light-tailed bounded Pareto's empirical second moment must agree
	// with the closed form (the heavy 1.5 tail mixes too slowly to check).
	rng := testRNG()
	sum2 := 0.0
	const n = 1_000_000
	for i := 0; i < n; i++ {
		x := paretoLight.Sample(rng)
		sum2 += x * x
	}
	if got, want := sum2/n, paretoLight.Moment2(); math.Abs(got-want) > 0.05*want {
		t.Errorf("pareto(2.5,100): empirical E[S²] %v vs closed form %v", got, want)
	}
}

func TestPickerBehaviour(t *testing.T) {
	q := fuzzQueues{lens: []int{3, 0, 1, 0}}
	rng := testRNG()

	jsq, _ := JSQ{}.NewPicker(4)
	jiq, _ := JIQ{}.NewPicker(4)
	for i := 0; i < 50; i++ {
		if id := jsq.Pick(rng, q); q.Len(id) != 0 {
			t.Fatalf("JSQ picked server %d with %d jobs; an empty one exists", id, q.Len(id))
		}
		if id := jiq.Pick(rng, q); q.Len(id) != 0 {
			t.Fatalf("JIQ picked busy server %d; an idle one exists", id)
		}
	}
	// With nobody idle, JIQ falls back to uniform random.
	busy := fuzzQueues{lens: []int{2, 1, 3, 1}}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[jiq.Pick(rng, busy)] = true
	}
	if len(seen) != 4 {
		t.Errorf("JIQ fallback visited only %d of 4 busy servers", len(seen))
	}

	rr, _ := RoundRobin{}.NewPicker(3)
	for i := 0; i < 7; i++ {
		if id := rr.Pick(rng, q); id != i%3 {
			t.Fatalf("round-robin pick %d = %d, want %d", i, id, i%3)
		}
	}

	// SQ(1) ≡ uniform random in law: over many picks every server shows up.
	sq1, _ := SQD{D: 1}.NewPicker(4)
	seen = map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[sq1.Pick(rng, q)] = true
	}
	if len(seen) != 4 {
		t.Errorf("SQ(1) visited only %d of 4 servers", len(seen))
	}

	// SQ(4) at N=4 must behave like JSQ: always an empty server.
	sq4, _ := SQD{D: 4}.NewPicker(4)
	for i := 0; i < 50; i++ {
		if id := sq4.Pick(rng, q); q.Len(id) != 0 {
			t.Fatalf("SQ(4)=JSQ picked server %d with %d jobs", id, q.Len(id))
		}
	}

	// LWL follows outstanding work, not queue length: server 3 has the
	// longest queue but the least work, and must always win.
	lwl, _ := LWL{}.NewPicker(4)
	wq := workView{lens: []int{1, 1, 1, 3}, works: []float64{5, 2.5, 0.7, 0.2}}
	for i := 0; i < 50; i++ {
		if id := lwl.Pick(rng, wq); id != 3 {
			t.Fatalf("LWL picked server %d (work %v); server 3 has the least work", id, wq.works[id])
		}
	}
	// All-idle ties break across every server.
	idleW := workView{lens: []int{0, 0, 0, 0}, works: []float64{0, 0, 0, 0}}
	seen = map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[lwl.Pick(rng, idleW)] = true
	}
	if len(seen) != 4 {
		t.Errorf("LWL tie breaking visited only %d of 4 idle servers", len(seen))
	}
}

// workView is a static WorkQueues for picker tests.
type workView struct {
	lens  []int
	works []float64
}

func (q workView) N() int             { return len(q.lens) }
func (q workView) Len(i int) int      { return q.lens[i] }
func (q workView) Work(i int) float64 { return q.works[i] }

// TestParseRoundTrip: every concrete configuration renders a spec string
// that parses back to an equal configuration.
func TestParseRoundTrip(t *testing.T) {
	for _, a := range []Arrival{Poisson{}, DeterministicArrivals{}, ErlangArrivals{K: 7}, HyperExp{CV2: 4.5}} {
		got, err := ParseArrival(a.String())
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("arrival %q parsed to %#v", a.String(), got)
		}
	}
	pareto, err := NewBoundedPareto(1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The documented bare-primary-plus-named-arg form must parse too.
	if got, err := ParseService("pareto:2.5,h=100"); err != nil {
		t.Errorf("ParseService(pareto:2.5,h=100): %v", err)
	} else if got.String() != "pareto:alpha=2.5,h=100" {
		t.Errorf("pareto:2.5,h=100 parsed to %q", got.String())
	}
	for _, s := range []Service{Exponential{}, DeterministicService{}, ErlangService{K: 3}, pareto} {
		got, err := ParseService(s.String())
		if err != nil {
			t.Fatalf("ParseService(%q): %v", s.String(), err)
		}
		if got.String() != s.String() || math.Abs(got.Moment2()-s.Moment2()) > 1e-12 {
			t.Errorf("service %q parsed to %q (E[S²] %v vs %v)", s.String(), got.String(), got.Moment2(), s.Moment2())
		}
	}
	for _, p := range []Policy{SQD{D: 3}, JSQ{}, JIQ{}, LWL{}, RoundRobin{}, Random{}} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("policy %q parsed to %#v", p.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"nope", "erlang", "erlang:0", "erlang:2000", "hyperexp:0.5", "poisson:3"} {
		if _, err := ParseArrival(spec); err == nil {
			t.Errorf("ParseArrival(%q) accepted", spec)
		}
	}
	for _, spec := range []string{
		"nope", "erlang:x", "pareto", "pareto:alpha=-1", "pareto:alpha=2,h=0.5", "exp:2",
		"pareto:alpha=2,cap=50", // typo for h= must not silently default
		"erlang:4,k=5",          // bare value restated as a conflicting named one
		"pareto:alpha=2,alpha=3",
	} {
		if _, err := ParseService(spec); err == nil {
			t.Errorf("ParseService(%q) accepted", spec)
		}
	}
	for _, spec := range []string{"nope", "sqd:d=-2", "jsq:3", "rr:x", "sqd:q=2", "lwl:2"} {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", spec)
		}
	}
	for _, spec := range []string{"1,1", "1,1,1,1,1", "0,1,1,1", "x", "1x3,1x2", "2x0,1x4"} {
		if _, err := ParseSpeeds(spec, 4); err == nil {
			t.Errorf("ParseSpeeds(%q, 4) accepted", spec)
		}
	}
}

// TestParseErrorsSurfaceGrammar: an argument typo must come back with the
// accepted keys and shape in the message, not a bare "unknown argument".
func TestParseErrorsSurfaceGrammar(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		parse   func(string) (any, error)
		needles []string
	}{
		{"pareto:alpha=2,cap=50", func(s string) (any, error) { return ParseService(s) }, []string{"cap", "valid keys", "alpha", "h"}},
		{"erlang:4,k=5", func(s string) (any, error) { return ParseService(s) }, []string{"duplicate", "valid keys", "k"}},
		{"sqd:q=2", func(s string) (any, error) { return ParsePolicy(s) }, []string{"valid keys", "d"}},
		{"hyperexp:cv=4", func(s string) (any, error) { return ParseArrival(s) }, []string{"valid keys", "cv2"}},
	} {
		_, err := tc.parse(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		for _, want := range tc.needles {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error for %q does not surface %q: %v", tc.spec, want, err)
			}
		}
	}
}

func TestParseSpeedsGroups(t *testing.T) {
	got, err := ParseSpeeds("1x2,4x2", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseSpeeds groups = %v, want %v", got, want)
		}
	}
	if s, err := ParseSpeeds("", 4); err != nil || s != nil {
		t.Errorf("empty speeds spec: got %v, %v; want nil, nil", s, err)
	}
}
