package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// SQD is the paper's power-of-d policy: sample D distinct servers
// uniformly without replacement and join the shortest, ties broken
// uniformly. Its picker reproduces the pre-workload simulator's partial
// Fisher–Yates draw sequence exactly, which is what keeps the default
// configuration bit-identical.
type SQD struct {
	D int // choices per arrival, 1 ≤ D ≤ N
}

// NewPicker implements Policy.
func (p SQD) NewPicker(n int) (Picker, error) {
	if p.D < 1 || p.D > n {
		return nil, fmt.Errorf("workload: SQ(d) with d = %d outside [1, N=%d]", p.D, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return &sqdPicker{d: p.D, perm: perm}, nil
}

func (p SQD) String() string { return fmt.Sprintf("sqd:%d", p.D) }

type sqdPicker struct {
	d    int
	perm []int
}

func (pk *sqdPicker) Pick(rng *rand.Rand, q Queues) int {
	// Sample d distinct servers by partial Fisher–Yates, keeping the
	// least-loaded with uniform tie breaking.
	n := len(pk.perm)
	best, bestLen, ties := -1, math.MaxInt, 0
	for k := 0; k < pk.d; k++ {
		j := k + rng.IntN(n-k)
		pk.perm[k], pk.perm[j] = pk.perm[j], pk.perm[k]
		s := pk.perm[k]
		switch l := q.Len(s); {
		case l < bestLen:
			best, bestLen, ties = s, l, 1
		case l == bestLen:
			ties++
			if rng.IntN(ties) == 0 {
				best = s
			}
		}
	}
	return best
}

// JSQ joins the shortest of all N queues (ties uniform) — SQ(N) in law,
// implemented as a single scan.
type JSQ struct{}

// NewPicker implements Policy.
func (JSQ) NewPicker(n int) (Picker, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: JSQ needs n ≥ 1, got %d", n)
	}
	return jsqPicker{}, nil
}

func (JSQ) String() string { return "jsq" }

type jsqPicker struct{}

func (jsqPicker) Pick(rng *rand.Rand, q Queues) int {
	if aq, ok := q.(ArgminQueues); ok {
		if i, ok := aq.ArgminLen(rng); ok {
			return i // O(log N) via the host's min-index
		}
	}
	// Reference O(N) scan. The start is rotated off rng: reservoir
	// sampling already breaks ties uniformly on a frozen view, but a
	// directional 0→N−1 pass over *live* queues reads low indices with
	// systematically staler state than high ones (a server that drains
	// mid-scan is seen long only if it sits early), deterministically
	// biasing low-numbered servers. Randomizing the origin removes the
	// positional bias; the reservoir keeps tie-breaking exactly uniform.
	n := q.N()
	start := rng.IntN(n)
	best, bestLen, ties := start, q.Len(start), 1
	for k := 1; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		switch l := q.Len(i); {
		case l < bestLen:
			best, bestLen, ties = i, l, 1
		case l == bestLen:
			ties++
			if rng.IntN(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// JIQ is join-idle-queue: route to a uniformly chosen idle server when one
// exists, otherwise to a uniformly chosen server. Its message footprint is
// what makes it attractive at datacenter scale; here it is simulation-only
// (no analytic oracle), validated by ordering properties.
type JIQ struct{}

// NewPicker implements Policy.
func (JIQ) NewPicker(n int) (Picker, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: JIQ needs n ≥ 1, got %d", n)
	}
	return jiqPicker{}, nil
}

func (JIQ) String() string { return "jiq" }

type jiqPicker struct{}

func (jiqPicker) Pick(rng *rand.Rand, q Queues) int {
	// Reservoir-sample uniformly among idle servers in one scan.
	n := q.N()
	idle, count := -1, 0
	for i := 0; i < n; i++ {
		if q.Len(i) == 0 {
			count++
			if rng.IntN(count) == 0 {
				idle = i
			}
		}
	}
	if count > 0 {
		return idle
	}
	return rng.IntN(n)
}

// LWL is least-work-left: join the server whose backlog drains soonest
// (queued service requirements plus the in-service remainder, scaled by
// the server's speed), ties broken uniformly. It sees through the
// queue-length proxy that JSQ relies on — under high-variance
// (heavy-tailed) service a short queue can hide an enormous job, and on
// heterogeneous fleets a short queue can sit on a slow server — at the
// price of knowing every job's size at dispatch time. Its picker requires
// a WorkQueues view; hosts detect that via the WorkAware marker and turn
// on per-job work tracking.
type LWL struct{}

// NewPicker implements Policy.
func (LWL) NewPicker(n int) (Picker, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: LWL needs n ≥ 1, got %d", n)
	}
	return lwlPicker{}, nil
}

func (LWL) String() string { return "lwl" }

// NeedsWork marks LWL as WorkAware.
func (LWL) NeedsWork() {}

type lwlPicker struct{}

func (lwlPicker) Pick(rng *rand.Rand, q Queues) int {
	if aw, ok := q.(ArgminWorkQueues); ok {
		if i, ok := aw.ArgminWork(rng); ok {
			return i // O(log N) via the host's min-index
		}
	}
	wq, ok := q.(WorkQueues)
	if !ok {
		panic("workload: LWL picker needs a WorkQueues view (host did not enable work tracking)")
	}
	// Reference O(N) scan with a rotated origin; see jsqPicker.Pick for
	// why the rotation matters on live, concurrently-updated views.
	n := wq.N()
	start := rng.IntN(n)
	best, bestWork, ties := start, wq.Work(start), 1
	for k := 1; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		switch w := wq.Work(i); {
		case w < bestWork:
			best, bestWork, ties = i, w, 1
		case w == bestWork:
			ties++
			if rng.IntN(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// RoundRobin cycles through the servers in order, ignoring queue state
// entirely; with deterministic arrivals each server sees a D/M/1 queue,
// the oracle the tests use.
type RoundRobin struct{}

// NewPicker implements Policy.
func (RoundRobin) NewPicker(n int) (Picker, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: round-robin needs n ≥ 1, got %d", n)
	}
	return &rrPicker{n: n}, nil
}

func (RoundRobin) String() string { return "round-robin" }

type rrPicker struct{ n, next int }

func (pk *rrPicker) Pick(*rand.Rand, Queues) int {
	i := pk.next
	pk.next++
	if pk.next == pk.n {
		pk.next = 0
	}
	return i
}

// Random routes each arrival to a uniformly chosen server — SQ(1), the
// no-information baseline every load-aware policy must beat.
type Random struct{}

// NewPicker implements Policy.
func (Random) NewPicker(n int) (Picker, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: random needs n ≥ 1, got %d", n)
	}
	return randomPicker{n: n}, nil
}

func (Random) String() string { return "random" }

type randomPicker struct{ n int }

func (pk randomPicker) Pick(rng *rand.Rand, _ Queues) int { return rng.IntN(pk.n) }
