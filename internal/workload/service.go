package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Exponential is the default unit-mean service law — the only one the QBD
// bounds cover. Sample is exactly one ExpFloat64 draw, preserving the
// simulator's pre-workload draw sequence bit for bit.
type Exponential struct{}

// Sample implements Service.
func (Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() }

// Moment2 implements Service.
func (Exponential) Moment2() float64 { return 2 }

// Validate implements Service.
func (Exponential) Validate() error { return nil }

func (Exponential) String() string { return "exponential" }

// DeterministicService is the zero-variance law: every job needs exactly
// one unit of work. M/D/1 mean sojourn 1 + ρ/(2(1−ρ)) is the
// Pollaczek–Khinchine oracle.
type DeterministicService struct{}

// Sample implements Service.
func (DeterministicService) Sample(*rand.Rand) float64 { return 1 }

// Moment2 implements Service.
func (DeterministicService) Moment2() float64 { return 1 }

// Validate implements Service.
func (DeterministicService) Validate() error { return nil }

func (DeterministicService) String() string { return "deterministic" }

// ErlangService is the unit-mean Erlang-K (phase-type) law, SCV 1/K —
// between exponential (K = 1) and deterministic (K → ∞). Construct via
// NewErlangService or ParseService, or set K directly; Validate rejects
// out-of-range phase counts.
type ErlangService struct {
	K int // number of phases, 1 ≤ K ≤ MaxPhases
}

// NewErlangService validates and builds the Erlang-K service law.
func NewErlangService(k int) (ErlangService, error) {
	if k < 1 || k > MaxPhases {
		return ErlangService{}, fmt.Errorf("workload: erlang service needs 1 ≤ K ≤ %d, got %d", MaxPhases, k)
	}
	return ErlangService{K: k}, nil
}

// Sample implements Service.
func (s ErlangService) Sample(rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < s.K; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / float64(s.K)
}

// Moment2 implements Service.
func (s ErlangService) Moment2() float64 { return 1 + 1/float64(s.K) }

// Validate implements Service.
func (s ErlangService) Validate() error {
	_, err := NewErlangService(s.K)
	return err
}

func (s ErlangService) String() string { return fmt.Sprintf("erlang:%d", s.K) }

// BoundedPareto is a heavy-tailed unit-mean law on [l, h]: the classic
// model of file-size and flow-size distributions. Alpha is the tail index
// (heavier for smaller alpha), h the truncation cap in units of the mean;
// l is solved numerically so the mean is exactly 1. Construct via
// NewBoundedPareto, which precomputes the inverse-CDF constants.
type BoundedPareto struct {
	Alpha float64 // tail index
	H     float64 // upper cutoff, in service-time units

	l       float64 // lower cutoff solving E[S] = 1
	ratioA  float64 // 1 − (l/h)^α, the CDF normaliser
	moment2 float64
}

// NewBoundedPareto validates (alpha, h) and solves the lower cutoff for a
// unit mean. It requires h > 1 (the mean must be interior) and
// 0 < alpha ≤ 64.
func NewBoundedPareto(alpha, h float64) (BoundedPareto, error) {
	if !(alpha > 0 && alpha <= 64) {
		return BoundedPareto{}, fmt.Errorf("workload: pareto tail index alpha = %v outside (0, 64]", alpha)
	}
	if !(h > 1 && h <= 1e12) {
		return BoundedPareto{}, fmt.Errorf("workload: pareto cap h = %v outside (1, 1e12]", h)
	}
	// The mean is continuous and strictly increasing in l (larger l
	// stochastically dominates), from 0 as l → 0 to > 1 at l = 1; bisect.
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if bpMoment(alpha, mid, h, 1) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	p := BoundedPareto{Alpha: alpha, H: h, l: (lo + hi) / 2}
	p.ratioA = 1 - math.Pow(p.l/h, alpha)
	p.moment2 = bpMoment(alpha, p.l, h, 2)
	return p, nil
}

// bpMoment returns E[X^k] of a Pareto(alpha) law truncated to [l, h].
func bpMoment(alpha, l, h float64, k int) float64 {
	kk := float64(k)
	norm := math.Pow(l, alpha) / (1 - math.Pow(l/h, alpha))
	if alpha == kk {
		return alpha * norm * math.Log(h/l) / math.Pow(l, alpha-kk)
	}
	return alpha * norm * (math.Pow(l, kk-alpha) - math.Pow(h, kk-alpha)) / (alpha - kk)
}

// Sample implements Service via the inverse CDF: one uniform draw.
func (p BoundedPareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// Quantile is the law's inverse CDF on [0, 1). It is exported so hosts
// that draw their own uniforms (the simulator's devirtualized event loop)
// sample through byte-for-byte the same arithmetic as Sample; the two
// share this implementation and cannot drift.
func (p BoundedPareto) Quantile(u float64) float64 {
	return p.l / math.Pow(1-u*p.ratioA, 1/p.Alpha)
}

// Moment2 implements Service.
func (p BoundedPareto) Moment2() float64 { return p.moment2 }

// Validate implements Service. A BoundedPareto must come from
// NewBoundedPareto (a bare literal has no inverse-CDF constants).
func (p BoundedPareto) Validate() error {
	if !(p.l > 0 && p.ratioA > 0) {
		return fmt.Errorf("workload: BoundedPareto must be built with NewBoundedPareto")
	}
	return nil
}

func (p BoundedPareto) String() string {
	return fmt.Sprintf("pareto:alpha=%g,h=%g", p.Alpha, p.H)
}
