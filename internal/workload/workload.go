// Package workload makes the discrete-event simulator pluggable: arrival
// processes, service-time distributions, per-server speed factors, and
// dispatch policies are small interfaces the event loop in internal/sim
// draws from. The analytic side of the repository (the QBD bounds) covers
// exactly one configuration — Poisson arrivals, exponential unit-rate
// homogeneous servers, SQ(d) dispatch — and that configuration is this
// package's default, reproduced draw-for-draw so the simulator stays
// bit-identical to its pre-workload behaviour. Every other combination
// opens a scenario the paper's bounds cannot reach; where a classical
// queueing formula exists (Pollaczek–Khinchine for M/G/1, the σ-root of
// Theorem 2 for GI/M/1) the tests in internal/sim use it as a correctness
// oracle, and the remaining combinations are validated by ordering
// properties (JSQ ≤ SQ(2) ≤ random at equal load).
//
// Configurations are plain values safe to share across goroutines; any
// per-stream mutable state (an SQ(d) sampling permutation, a round-robin
// cursor, a modulated arrival phase) lives in the Source/Picker instances
// created per simulation stream.
//
// All pieces are constructible from compact spec strings (see ParseArrival,
// ParseService, ParsePolicy, ParseSpeeds), which is how cmd/sweep flags and
// the public finitelb.SimOptions reach them.
package workload

import (
	"math/rand/v2"
)

// Arrival describes an arrival process. NewSource instantiates the
// per-stream state for an aggregate arrival rate (jobs per unit time);
// implementations must validate and report configuration errors here, so
// the hot path never checks.
type Arrival interface {
	NewSource(rate float64) (Source, error)
	// String renders the canonical spec (parseable by ParseArrival).
	String() string
}

// Source emits successive interarrival times of one stream. Sources are
// not safe for concurrent use; create one per stream.
type Source interface {
	Next(rng *rand.Rand) float64
}

// Service is a unit-mean service-time distribution. Implementations are
// immutable and draw i.i.d. samples, so one value serves all streams.
type Service interface {
	// Sample draws one service requirement (mean 1).
	Sample(rng *rand.Rand) float64
	// Moment2 returns E[S²], the ingredient of the Pollaczek–Khinchine
	// oracle; it is ≥ 1 for any unit-mean law.
	Moment2() float64
	// Validate reports configuration errors (checked once per run; the hot
	// path never does).
	Validate() error
	// String renders the canonical spec (parseable by ParseService).
	String() string
}

// Queues is the dispatcher's read-only view of the server farm.
type Queues interface {
	// N returns the number of servers.
	N() int
	// Len returns the current queue length of server i (including the job
	// in service).
	Len(i int) int
}

// WorkQueues extends Queues with per-server backlog, the state a
// size-based policy (LWL) dispatches on. Work is measured in *time to
// drain* — the queued jobs' requirements plus the in-service remainder,
// divided by the server's speed — because that, not raw work, is what an
// arriving job will wait behind: on a heterogeneous fleet a fast server
// holding more work can still be the earlier exit. On unit-speed fleets
// the two notions coincide. Hosts that cannot track per-job work simply
// don't implement the interface.
type WorkQueues interface {
	Queues
	// Work returns the time server i needs to drain its current backlog,
	// ≥ 0, in service-time units.
	Work(i int) float64
}

// ArgminQueues extends Queues with sub-linear argmin access: hosts that
// maintain a hierarchical min-index over queue lengths (internal/minindex)
// implement it, and the JSQ picker consults it before falling back to the
// O(N) reference scan. ok = false means no index is currently maintained —
// hosts serve small farms with the scan, where a tight pass over a few
// cache lines beats a multi-level tree walk. The returned index must be
// uniformly distributed across tied shortest queues, the same tie-breaking
// law as the scan.
type ArgminQueues interface {
	Queues
	// ArgminLen returns a uniformly chosen index among the shortest
	// queues, or ok = false when the host maintains no length index.
	ArgminLen(rng *rand.Rand) (i int, ok bool)
}

// ArgminWorkQueues is the work-aware counterpart of ArgminQueues: an
// indexed view over per-server backlog for LWL. Hosts may key the index on
// a monotone proxy of Work (the live runtime indexes outstanding nominal
// work, quantized; see internal/lb) — the picker treats the answer as the
// argmin authority, so proxy and Work should order servers identically up
// to quantization.
type ArgminWorkQueues interface {
	WorkQueues
	// ArgminWork returns a uniformly chosen index among the least-loaded
	// servers by backlog, or ok = false when the host maintains no work
	// index.
	ArgminWork(rng *rand.Rand) (i int, ok bool)
}

// WorkAware marks policies whose pickers require a WorkQueues view. Hosts
// (the simulator event loop, the live runtime) check for it when wiring a
// policy and switch on per-job work tracking — each job's service
// requirement is then drawn at arrival so the dispatcher can see it.
type WorkAware interface {
	Policy
	// NeedsWork is a marker; it is never called.
	NeedsWork()
}

// Policy describes a dispatch policy. NewPicker instantiates the
// per-stream state for a farm of n servers and reports configuration
// errors (e.g. SQ(d) with d > n).
type Policy interface {
	NewPicker(n int) (Picker, error)
	// String renders the canonical spec (parseable by ParsePolicy).
	String() string
}

// Picker routes one arrival to a server. Pickers are not safe for
// concurrent use; create one per stream.
type Picker interface {
	Pick(rng *rand.Rand, q Queues) int
}
