package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseArrival builds an arrival process from a spec string:
//
//	""                        default (nil: caller picks Poisson)
//	"poisson" | "m"           Poisson
//	"deterministic" | "det" | "d"
//	"erlang:K" | "erlang:k=K"
//	"hyperexp:CV2" | "hyperexp:cv2=CV2" | "h2:CV2"
func ParseArrival(spec string) (Arrival, error) {
	name, args := splitSpec(spec)
	switch name {
	case "":
		return nil, nil
	case "poisson", "m", "exp", "exponential":
		if err := noArgs("arrival", name, args); err != nil {
			return nil, err
		}
		return Poisson{}, nil
	case "deterministic", "det", "d":
		if err := noArgs("arrival", name, args); err != nil {
			return nil, err
		}
		return DeterministicArrivals{}, nil
	case "erlang", "er":
		if err := checkKeys(args, "k"); err != nil {
			return nil, fmt.Errorf("workload: arrival %q: %w", spec, err)
		}
		k, err := intArg(args, "k", true, true, 0)
		if err != nil {
			return nil, fmt.Errorf("workload: arrival %q: %w", spec, err)
		}
		a := ErlangArrivals{K: k}
		if _, err := a.NewSource(1); err != nil {
			return nil, err
		}
		return a, nil
	case "hyperexp", "h2":
		if err := checkKeys(args, "cv2"); err != nil {
			return nil, fmt.Errorf("workload: arrival %q: %w", spec, err)
		}
		cv2, err := floatArg(args, "cv2", true, true, 0)
		if err != nil {
			return nil, fmt.Errorf("workload: arrival %q: %w", spec, err)
		}
		a := HyperExp{CV2: cv2}
		if _, err := a.NewSource(1); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (want poisson, deterministic, erlang:K, hyperexp:CV2)", spec)
	}
}

// ParseService builds a service-time law from a spec string:
//
//	""                        default (nil: caller picks Exponential)
//	"exponential" | "exp" | "m"
//	"deterministic" | "det" | "d"
//	"erlang:K" | "erlang:k=K"
//	"pareto:ALPHA" | "pareto:alpha=ALPHA[,h=H]"   (default h 1000)
func ParseService(spec string) (Service, error) {
	name, args := splitSpec(spec)
	switch name {
	case "":
		return nil, nil
	case "exponential", "exp", "m":
		if err := noArgs("service", name, args); err != nil {
			return nil, err
		}
		return Exponential{}, nil
	case "deterministic", "det", "d":
		if err := noArgs("service", name, args); err != nil {
			return nil, err
		}
		return DeterministicService{}, nil
	case "erlang", "er":
		if err := checkKeys(args, "k"); err != nil {
			return nil, fmt.Errorf("workload: service %q: %w", spec, err)
		}
		k, err := intArg(args, "k", true, true, 0)
		if err != nil {
			return nil, fmt.Errorf("workload: service %q: %w", spec, err)
		}
		return NewErlangService(k)
	case "pareto", "bp":
		if err := checkKeys(args, "alpha", "h"); err != nil {
			return nil, fmt.Errorf("workload: service %q: %w", spec, err)
		}
		alpha, err := floatArg(args, "alpha", true, true, 0)
		if err != nil {
			return nil, fmt.Errorf("workload: service %q: %w", spec, err)
		}
		h, err := floatArg(args, "h", false, false, 1000)
		if err != nil {
			return nil, fmt.Errorf("workload: service %q: %w", spec, err)
		}
		return NewBoundedPareto(alpha, h)
	default:
		return nil, fmt.Errorf("workload: unknown service law %q (want exponential, deterministic, erlang:K, pareto:ALPHA)", spec)
	}
}

// ParsePolicy builds a dispatch policy from a spec string:
//
//	""                        default (nil: caller picks SQ(d) from Params)
//	"sqd" | "sqd:D" | "sqd:d=D"   (D 0 means "use Params.D")
//	"jsq"
//	"jiq"
//	"lwl" | "least-work-left"
//	"round-robin" | "rr"
//	"random" | "uniform"
func ParsePolicy(spec string) (Policy, error) {
	name, args := splitSpec(spec)
	switch name {
	case "":
		return nil, nil
	case "sqd", "sq":
		if err := checkKeys(args, "d"); err != nil {
			return nil, fmt.Errorf("workload: policy %q: %w", spec, err)
		}
		d, err := intArg(args, "d", true, false, 0) // 0: inherit Params.D
		if err != nil {
			return nil, fmt.Errorf("workload: policy %q: %w", spec, err)
		}
		if d < 0 || d > 1<<20 {
			return nil, fmt.Errorf("workload: policy %q: d = %d out of range", spec, d)
		}
		return SQD{D: d}, nil
	case "jsq":
		if err := noArgs("policy", name, args); err != nil {
			return nil, err
		}
		return JSQ{}, nil
	case "jiq":
		if err := noArgs("policy", name, args); err != nil {
			return nil, err
		}
		return JIQ{}, nil
	case "lwl", "least-work-left":
		if err := noArgs("policy", name, args); err != nil {
			return nil, err
		}
		return LWL{}, nil
	case "round-robin", "rr":
		if err := noArgs("policy", name, args); err != nil {
			return nil, err
		}
		return RoundRobin{}, nil
	case "random", "uniform":
		if err := noArgs("policy", name, args); err != nil {
			return nil, err
		}
		return Random{}, nil
	default:
		return nil, fmt.Errorf("workload: unknown policy %q (want sqd[:D], jsq, jiq, lwl, round-robin, random)", spec)
	}
}

// ParseSpeeds parses per-server speed factors: either a comma list of n
// positive floats ("1,1,2.5") or "SPEEDxCOUNT" groups ("1x8,4x2" — eight
// unit-speed servers then two 4× servers). An empty spec returns nil (a
// homogeneous unit-speed fleet). The total server count must equal n.
func ParseSpeeds(spec string, n int) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var speeds []float64
	for _, part := range strings.Split(spec, ",") {
		val, count := part, 1
		if i := strings.IndexByte(part, 'x'); i >= 0 {
			c, err := strconv.Atoi(part[i+1:])
			if err != nil || c < 1 || c > 1<<20 {
				return nil, fmt.Errorf("workload: speed group %q: bad count", part)
			}
			val, count = part[:i], c
		}
		s, err := strconv.ParseFloat(val, 64)
		if err != nil || !(s > 0 && s <= 1e6) {
			return nil, fmt.Errorf("workload: speed %q outside (0, 1e6]", part)
		}
		if len(speeds)+count > n {
			return nil, fmt.Errorf("workload: speeds %q describe more than %d servers", spec, n)
		}
		for i := 0; i < count; i++ {
			speeds = append(speeds, s)
		}
	}
	if len(speeds) != n {
		return nil, fmt.Errorf("workload: speeds %q describe %d servers, need %d", spec, len(speeds), n)
	}
	return speeds, nil
}

// splitSpec separates "name:key=v,key=v" into the lowercase name and its
// raw argument string.
func splitSpec(spec string) (name, args string) {
	spec = strings.TrimSpace(spec)
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return strings.ToLower(strings.TrimSpace(spec[:i])), strings.TrimSpace(spec[i+1:])
	}
	return strings.ToLower(spec), ""
}

func noArgs(kind, name, args string) error {
	if args != "" {
		return fmt.Errorf("workload: %s %q takes no arguments (got %q)", kind, name, args)
	}
	return nil
}

// checkKeys rejects argument strings containing unknown, duplicate, or
// conflicting keys, so a typo ("pareto:alpha=2,cap=50") or a bare value
// restated as a named one ("erlang:4,k=5") errors instead of silently
// simulating a different configuration. The bare first token counts as the
// primary key. Error messages restate the accepted grammar — the valid
// keys and the key=value shape — so a flag typo is self-diagnosing.
func checkKeys(args, primary string, secondary ...string) error {
	grammar := func() string {
		keys := append([]string{primary}, secondary...)
		return fmt.Sprintf("valid keys: %s; grammar: %q, with the bare first value binding to %q",
			strings.Join(keys, ", "), primary+"=V[,k=V...]", primary)
	}
	if args == "" {
		return nil
	}
	seen := map[string]bool{}
	for i, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			if i > 0 {
				return fmt.Errorf("malformed argument %q (%s)", kv, grammar())
			}
			seen[primary] = true
			continue
		}
		k := strings.ToLower(strings.TrimSpace(kv[:eq]))
		known := k == primary
		for _, a := range secondary {
			known = known || k == a
		}
		if !known {
			return fmt.Errorf("unknown argument %q (%s)", k, grammar())
		}
		if seen[k] {
			return fmt.Errorf("duplicate argument %q (%s)", k, grammar())
		}
		seen[k] = true
	}
	return nil
}

// intArg reads key from "k=v,k=v" args. primary marks the spec's main
// argument, which may also be given bare ("erlang:4" ≡ "erlang:k=4").
// required=false falls back to def when the key is absent.
func intArg(args, key string, primary, required bool, def int) (int, error) {
	s, ok, err := lookupArg(args, key, primary)
	if err != nil {
		return 0, err
	}
	if !ok {
		if required {
			return 0, fmt.Errorf("missing required argument %q", key)
		}
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("argument %s=%q is not an integer", key, s)
	}
	return v, nil
}

// floatArg is intArg for floats.
func floatArg(args, key string, primary, required bool, def float64) (float64, error) {
	s, ok, err := lookupArg(args, key, primary)
	if err != nil {
		return 0, err
	}
	if !ok {
		if required {
			return 0, fmt.Errorf("missing required argument %q", key)
		}
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("argument %s=%q is not a number", key, s)
	}
	return v, nil
}

// lookupArg finds key in "k=v,k=v" args. The first token may be a bare
// value with no '=' — it binds to the spec's primary key ("pareto:2.5" and
// "pareto:2.5,h=100" both read 2.5 as alpha); secondary keys must be
// named, and a bare token anywhere else is malformed.
func lookupArg(args, key string, primary bool) (val string, ok bool, err error) {
	if args == "" {
		return "", false, nil
	}
	for i, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			if i > 0 {
				return "", false, fmt.Errorf("malformed argument %q", kv)
			}
			if primary {
				return kv, true, nil
			}
			continue // the bare primary value, but another key was asked for
		}
		if strings.ToLower(strings.TrimSpace(kv[:eq])) == key {
			return strings.TrimSpace(kv[eq+1:]), true, nil
		}
	}
	return "", false, nil
}
