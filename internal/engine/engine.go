// Package engine provides the bounded worker pool that parallelizes the
// evaluation pipeline: figure panels, parameter sweeps, and simulation
// replications all consist of independent (N, d, ρ, T) grid cells whose
// results must be assembled in a deterministic order. The pool fans the
// cells out across up to GOMAXPROCS workers (configurable) and merges
// results in submission order regardless of completion order, so a run
// with W workers is bit-identical to a serial run as long as each cell is
// itself deterministic (every caller seeds cells from their own
// coordinates).
package engine

import (
	"runtime"
	"sync"
)

// Pool executes batches of independent, index-addressed jobs on a bounded
// number of workers. The zero value is not useful; construct with New.
// Pools are stateless between calls and safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool running at most workers jobs concurrently. A
// non-positive count selects GOMAXPROCS, the default for compute-bound
// cells.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n) on the pool and waits for all
// jobs to finish. Errors are collected per index and the one with the
// lowest index is returned, so the reported error does not depend on
// scheduling; jobs already started are not cancelled, matching the
// all-cells-or-nothing semantics of a figure panel.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		// Serial fast path: no goroutines, exact submission order.
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect runs fn(i) for every i in [0, n) on the pool and returns the
// results ordered by submission index. On error the partially filled slice
// is returned alongside the lowest-index error.
func Collect[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
