package engine

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"
)

// cellValue is a deterministic stand-in for a grid-cell computation: the
// value depends only on the cell's own coordinates, as every real caller
// guarantees by seeding from coordinates.
func cellValue(i int) float64 {
	rng := rand.New(rand.NewPCG(uint64(i)+1, 77))
	s := 0.0
	for k := 0; k < 100; k++ {
		s += rng.Float64()
	}
	return s
}

func TestCollectIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 200
	ref, err := Collect(New(1), n, func(i int) (float64, error) { return cellValue(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := Collect(New(w), n, func(i int) (float64, error) { return cellValue(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %v, serial gives %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 537
	counts := make([]int32, n)
	if err := New(0).ForEach(n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Several jobs fail; the reported error must be the lowest-index one no
	// matter which worker finishes first.
	for _, w := range []int{1, 3, 8} {
		err := New(w).ForEach(100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want lowest-index 'cell 3 failed'", w, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := New(4).ForEach(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("Workers() = %d for negative input", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("Workers() = %d, want 5", got)
	}
}

func TestCollectPropagatesError(t *testing.T) {
	out, err := Collect(New(4), 10, func(i int) (int, error) {
		if i == 6 {
			return 0, errors.New("boom")
		}
		return i * i, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if len(out) != 10 {
		t.Fatalf("partial results length %d", len(out))
	}
	if out[2] != 4 {
		t.Errorf("successful cells must still be filled: out[2] = %d", out[2])
	}
}
