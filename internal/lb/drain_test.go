package lb

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finitelb/internal/workload"
)

// TestGracefulDrainNeverLosesJobs hammers the farm from concurrent
// submitters while Shutdown races them, and asserts the core drain
// invariant: every job whose Dispatch returned nil is eventually
// completed — never silently dropped — and every other attempt got a
// definite refusal (ErrClosed or ErrQueueFull). Run under -race this also
// exercises the closed-flag/inflight/channel-close handshake.
func TestGracefulDrainNeverLosesJobs(t *testing.T) {
	lb, err := New(Config{N: 4, MeanService: 200 * time.Microsecond, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	var accepted, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch err := lb.Dispatch(1.0); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrClosed), errors.Is(err, ErrQueueFull):
					refused.Add(1)
				default:
					t.Errorf("dispatch: %v", err)
					return
				}
			}
		}()
	}
	// Let the submitters race the shutdown itself.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := lb.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, st)
	}
	wg.Wait()

	if got := accepted.Load() + refused.Load(); got != 8*300 {
		t.Fatalf("accounted for %d of %d dispatch attempts", got, 8*300)
	}
	// Shutdown may have returned before the last racing submitters'
	// accounting, so re-read the final counters.
	final := lb.Summary()
	if final.Completed != accepted.Load() {
		t.Errorf("completed %d jobs, accepted %d — jobs lost or invented", final.Completed, accepted.Load())
	}
	if st.Abandoned != 0 {
		t.Errorf("graceful drain abandoned %d jobs", st.Abandoned)
	}
}

// TestDrainDeadlineReportsAbandoned: a drain cut short by its context
// reports the still-queued jobs rather than losing them, and the servers
// finish the work in the background — a later wait observes every job
// completed.
func TestDrainDeadlineReportsAbandoned(t *testing.T) {
	lb, err := New(Config{N: 1, QueueCap: 32, MeanService: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 10 // 10 × 10ms on one server ≈ 100ms of queued work
	for i := 0; i < jobs; i++ {
		if err := lb.Dispatch(1.0); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	st, err := lb.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown before drain could finish: err %v, stats %+v", err, st)
	}
	if st.Abandoned == 0 {
		t.Fatal("deadline-cut drain reported no abandoned jobs")
	}
	if st.Completed+st.Abandoned != jobs {
		t.Errorf("completed %d + abandoned %d ≠ %d dispatched", st.Completed, st.Abandoned, jobs)
	}
	// The background drain must still finish every job.
	st2, err := lb.Shutdown(context.Background())
	if err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if st2.Completed != jobs || st2.Abandoned != 0 {
		t.Errorf("after full drain: %+v, want %d completed", st2, jobs)
	}
}

// TestShutdownIdempotent: repeated and concurrent Shutdown calls all
// succeed and agree.
func TestShutdownIdempotent(t *testing.T) {
	lb, err := New(fastCfg(2, workload.JIQ{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := lb.Dispatch(1.0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := lb.Shutdown(context.Background())
			if err != nil || st.Completed != 50 {
				t.Errorf("concurrent shutdown: %v %+v", err, st)
			}
		}()
	}
	wg.Wait()
}

// TestLoadGenCancellation: canceling the generator's context stops
// offering promptly and still returns a coherent partial summary.
func TestLoadGenCancellation(t *testing.T) {
	lb, err := New(Config{N: 2, MeanService: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	s, err := lb.RunLoadGen(ctx, GenConfig{Rho: 0.5, Jobs: 1_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("loadgen under canceled ctx: %v", err)
	}
	if s.Completed >= 1_000_000 {
		t.Error("cancellation did not stop the generator")
	}
	mustShutdown(t, lb)
}
