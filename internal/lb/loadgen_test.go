package lb

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"finitelb/internal/minindex"
	"finitelb/internal/workload"
)

// TestLoadGenMultiDispatcher fans the generator across several goroutines
// sharing one indexed farm: every offered job must be accounted for
// (completed + rejected = offered) and the measured stream stays sane.
// CI's race job runs this, covering the D-producer dispatch path.
func TestLoadGenMultiDispatcher(t *testing.T) {
	n := minindex.Threshold // indexed JSQ plus fan-in on one table
	farm, err := New(Config{N: n, Policy: workload.JSQ{}, MeanService: 100 * time.Microsecond, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := farm.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const jobs = 6000
	s, err := farm.RunLoadGen(context.Background(), GenConfig{
		Rho: 0.7, Jobs: jobs, Seed: 5, Dispatchers: 4, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed+s.Rejected != jobs {
		t.Errorf("offered %d jobs, completed %d + rejected %d = %d",
			jobs, s.Completed, s.Rejected, s.Completed+s.Rejected)
	}
	if !(s.MeanDelay >= 1) {
		t.Errorf("mean delay %v below one service time", s.MeanDelay)
	}
	if got := farm.lenTree.Min(); got != 0 {
		t.Errorf("drained farm's length index min = %d, want 0", got)
	}
}

// TestLoadGenDispatcherEdgeCases: D capped at Jobs, and invalid D refused.
func TestLoadGenDispatcherEdgeCases(t *testing.T) {
	farm, err := New(Config{N: 2, MeanService: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())

	if _, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: 3, Dispatchers: 8, Batch: 4}); err != nil {
		t.Errorf("D > Jobs: %v", err)
	}
	if _, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: 3, Dispatchers: -1}); err == nil {
		t.Error("negative dispatcher count accepted")
	}
}

// TestLoadGenBurstBatching runs a farm whose offered rate far outstrips
// one sleep/wake per job, forcing the burst path; accounting must hold
// and the run must finish quickly (the point of batching).
func TestLoadGenBurstBatching(t *testing.T) {
	farm, err := New(Config{N: 8, MeanService: time.Microsecond, QueueCap: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())

	const jobs = 30000 // at ~1µs mean service and ρ=0.9: ~7.2M arrivals/sec offered
	start := time.Now()
	s, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.9, Jobs: jobs, Seed: 3, Batch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed+s.Rejected != jobs {
		t.Errorf("offered %d, completed %d + rejected %d", jobs, s.Completed, s.Rejected)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("burst run took %v; batching is not engaging", elapsed)
	}
}

// recordingService wraps a law and logs every draw, in order. The
// generator draws single-goroutine at D = 1, so the log is a
// deterministic transcript of the service stream.
type recordingService struct {
	inner workload.Service
	log   *[]float64
}

func (r recordingService) Sample(rng *rand.Rand) float64 {
	v := r.inner.Sample(rng)
	*r.log = append(*r.log, v)
	return v
}
func (r recordingService) Moment2() float64 { return r.inner.Moment2() }
func (r recordingService) Validate() error  { return r.inner.Validate() }
func (r recordingService) String() string   { return r.inner.String() }

// TestBurstCoalescingDrawIdentity pins the per-server channel batching
// satellite: coalescing same-target jobs into one send per server per
// wake-up is pure transport — a D = 1 run with aggressive batching must
// consume exactly the same generator draw sequence as the unbatched
// (Batch = 1) run, and every offered job must still be accounted for.
// LWL keeps the work-aware burst bookkeeping (pending/outwork ledgers)
// under test; the drained farm's work index must return to all-idle.
func TestBurstCoalescingDrawIdentity(t *testing.T) {
	run := func(batch int) ([]float64, Summary) {
		farm, err := New(Config{
			N:           minindex.Threshold, // indexed LWL: work ledger + tree in the burst path
			Policy:      workload.LWL{},
			MeanService: time.Microsecond, // far beyond one sleep/wake per job: bursts guaranteed
			QueueCap:    1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := farm.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
		var draws []float64
		s, err := farm.RunLoadGen(context.Background(), GenConfig{
			Service: recordingService{inner: workload.Exponential{}, log: &draws},
			Rho:     0.8, Jobs: 8000, Seed: 17, Batch: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := farm.workTree.Min(); got != 0 {
			t.Errorf("batch=%d: drained farm's work index min = %d, want 0", batch, got)
		}
		return draws, s
	}
	unbatchedDraws, unbatched := run(1)
	batchedDraws, batched := run(256)

	if unbatched.Completed+unbatched.Rejected != 8000 || batched.Completed+batched.Rejected != 8000 {
		t.Errorf("job conservation broken: unbatched %d+%d, batched %d+%d of 8000",
			unbatched.Completed, unbatched.Rejected, batched.Completed, batched.Rejected)
	}
	if len(unbatchedDraws) != len(batchedDraws) {
		t.Fatalf("draw counts differ: unbatched %d, batched %d", len(unbatchedDraws), len(batchedDraws))
	}
	for i := range unbatchedDraws {
		if unbatchedDraws[i] != batchedDraws[i] {
			t.Fatalf("draw %d differs: unbatched %v, batched %v", i, unbatchedDraws[i], batchedDraws[i])
		}
	}
}

// TestSubmitBurstInvalidWorkLeaksNothing: an out-of-range requirement
// anywhere in a burst must fail the whole burst before any queue
// reservation or ledger entry is staged — a mid-burst abort would leak
// phantom queue occupancy forever.
func TestSubmitBurstInvalidWorkLeaksNothing(t *testing.T) {
	farm, err := New(Config{N: 4, Policy: workload.LWL{}, MeanService: 10 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())

	sc := &burstScratch{}
	if _, err := farm.submitBurst(time.Now(), []float64{1, 2, -1}, nil, sc); err == nil {
		t.Fatal("invalid work accepted")
	}
	for i := 0; i < farm.n; i++ {
		if l := farm.slots[i].qlen.Load(); l != 0 {
			t.Errorf("server %d: leaked queue reservation (qlen %d)", i, l)
		}
		if p := farm.slots[i].pending.Load(); p != 0 {
			t.Errorf("server %d: leaked pending work %d", i, p)
		}
	}
	if got := farm.accepted.Load(); got != 0 {
		t.Errorf("accepted %d jobs from an invalid burst", got)
	}
}
