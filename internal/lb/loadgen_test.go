package lb

import (
	"context"
	"testing"
	"time"

	"finitelb/internal/minindex"
	"finitelb/internal/workload"
)

// TestLoadGenMultiDispatcher fans the generator across several goroutines
// sharing one indexed farm: every offered job must be accounted for
// (completed + rejected = offered) and the measured stream stays sane.
// CI's race job runs this, covering the D-producer dispatch path.
func TestLoadGenMultiDispatcher(t *testing.T) {
	n := minindex.Threshold // indexed JSQ plus fan-in on one table
	farm, err := New(Config{N: n, Policy: workload.JSQ{}, MeanService: 100 * time.Microsecond, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := farm.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const jobs = 6000
	s, err := farm.RunLoadGen(context.Background(), GenConfig{
		Rho: 0.7, Jobs: jobs, Seed: 5, Dispatchers: 4, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed+s.Rejected != jobs {
		t.Errorf("offered %d jobs, completed %d + rejected %d = %d",
			jobs, s.Completed, s.Rejected, s.Completed+s.Rejected)
	}
	if !(s.MeanDelay >= 1) {
		t.Errorf("mean delay %v below one service time", s.MeanDelay)
	}
	if got := farm.lenTree.Min(); got != 0 {
		t.Errorf("drained farm's length index min = %d, want 0", got)
	}
}

// TestLoadGenDispatcherEdgeCases: D capped at Jobs, and invalid D refused.
func TestLoadGenDispatcherEdgeCases(t *testing.T) {
	farm, err := New(Config{N: 2, MeanService: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())

	if _, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: 3, Dispatchers: 8, Batch: 4}); err != nil {
		t.Errorf("D > Jobs: %v", err)
	}
	if _, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: 3, Dispatchers: -1}); err == nil {
		t.Error("negative dispatcher count accepted")
	}
}

// TestLoadGenBurstBatching runs a farm whose offered rate far outstrips
// one sleep/wake per job, forcing the burst path; accounting must hold
// and the run must finish quickly (the point of batching).
func TestLoadGenBurstBatching(t *testing.T) {
	farm, err := New(Config{N: 8, MeanService: time.Microsecond, QueueCap: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())

	const jobs = 30000 // at ~1µs mean service and ρ=0.9: ~7.2M arrivals/sec offered
	start := time.Now()
	s, err := farm.RunLoadGen(context.Background(), GenConfig{Rho: 0.9, Jobs: jobs, Seed: 3, Batch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed+s.Rejected != jobs {
		t.Errorf("offered %d, completed %d + rejected %d", jobs, s.Completed, s.Rejected)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("burst run took %v; batching is not engaging", elapsed)
	}
}
