package lb

import (
	"sync"
	"testing"
	"time"

	"finitelb/internal/frand"
	"finitelb/internal/stats"
)

// TestRecorderMergeEqualsSingleStream is the property behind the
// Recorder's sharding: pooling the per-server shards must give exactly
// the tail state a single unsharded sketch would hold — quantiles and
// Overflow bit-equal — no matter how many goroutines race their
// completions in. The sketch's canonical collapse makes the merged
// state a pure function of the observation multiset, so the assertion
// is exact equality, not a tolerance.
func TestRecorderMergeEqualsSingleStream(t *testing.T) {
	const (
		n         = 64 // servers (shards are per-server at this size)
		writers   = 8
		perWriter = 5_000
		batchSize = 200
	)
	mean := time.Millisecond
	meanNs := float64(mean.Nanoseconds())
	rec := newRecorder(n, mean, 0, batchSize)

	// Pre-draw every completion deterministically: (server, sojourn).
	type obs struct {
		server  int
		sojourn time.Duration
	}
	all := make([][]obs, writers)
	rng := frand.New(42, 7)
	for w := range all {
		all[w] = make([]obs, perWriter)
		for i := range all[w] {
			// Heavy-ish tail so the shards collapse independently — the
			// regime where a non-canonical merge would drift.
			v := rng.ExpFloat64() * (1 + 50*rng.Float64())
			all[w][i] = obs{
				server:  rng.IntN(n),
				sojourn: time.Duration(v * meanNs),
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, o := range all[w] {
				rec.record(o.server, o.sojourn, o.sojourn)
			}
		}(w)
	}
	wg.Wait()

	// Reference: one unsharded sketch fed the same multiset, applying
	// the recorder's own quantization (Duration ns → service times).
	ref := stats.NewSketch(stats.DefaultAlpha, stats.DefaultSketchBudget)
	for _, ws := range all {
		for _, o := range ws {
			ref.Add(float64(o.sojourn) / meanNs)
		}
	}

	s := rec.Snapshot()
	if s.Jobs != writers*perWriter {
		t.Fatalf("snapshot jobs %d, want %d", s.Jobs, writers*perWriter)
	}
	if s.Overflow != 0 {
		t.Fatalf("sketch recorder reported overflow %d", s.Overflow)
	}
	for _, q := range []struct {
		p    float64
		got  float64
		name string
	}{
		{0.50, s.P50, "P50"},
		{0.95, s.P95, "P95"},
		{0.99, s.P99, "P99"},
		{0.999, s.P999, "P999"},
	} {
		if want := ref.Quantile(q.p); q.got != want {
			t.Errorf("%s: merged %v ≠ single-stream %v", q.name, q.got, want)
		}
	}
	// The pooled cumulative buckets (cmd/lbd's histogram payload) carry
	// the same guarantee.
	got := rec.TailBuckets(32)
	want := ref.CumulativeBuckets(32)
	if len(got) != len(want) {
		t.Fatalf("bucket count %d ≠ %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("bucket %d: merged %+v ≠ single-stream %+v", i, got[i], want[i])
		}
	}
}
