package lb

import (
	"context"
	"math"
	"testing"
	"time"

	"finitelb/internal/trace"
)

// TestLiveTraceSpansReconcile drives a traced farm and checks the
// acceptance property on the live side: spans are well-formed, their
// stage durations telescope exactly to the recorded sojourn, and the
// stage sketches carry one observation per completed sampled job.
func TestLiveTraceSpansReconcile(t *testing.T) {
	const n, jobs = 4, 300
	mean := 200 * time.Microsecond
	rec := trace.New(trace.Config{
		Sample: 1, Cap: 1024, Pending: 1024,
		Scale: float64(mean.Nanoseconds()),
	})
	farm, err := New(Config{N: n, MeanService: mean, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < jobs; i++ {
		if err := farm.Dispatch(1); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := farm.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans(-1)
	if len(spans) != jobs {
		t.Fatalf("recorded %d spans, want %d at Sample=1", len(spans), jobs)
	}
	for _, sp := range spans {
		if sp.Server < 0 || sp.Server >= n {
			t.Fatalf("span server %d outside [0,%d)", sp.Server, n)
		}
		if sp.QLen < 0 {
			t.Fatalf("span qlen %d < 0", sp.QLen)
		}
		if sp.Ties != -1 {
			t.Fatalf("live pickers don't report ties, got %d", sp.Ties)
		}
		// The dispatch pipeline is ordered in wall time; only the
		// work-clock Start may run ahead of the Enqueued observation.
		if !(sp.Arrival <= sp.Picked && sp.Picked <= sp.Enqueued) {
			t.Fatalf("dispatch stamps out of order: %+v", sp)
		}
		if sp.Start < sp.Arrival {
			t.Fatalf("start %v before arrival %v", sp.Start, sp.Arrival)
		}
		if !(sp.Done > sp.Start) {
			t.Fatalf("done %v ≤ start %v", sp.Done, sp.Start)
		}
		sum := (sp.Picked - sp.Arrival) + (sp.Enqueued - sp.Picked) +
			(sp.Start - sp.Enqueued) + (sp.Done - sp.Start)
		sojourn := sp.Done - sp.Arrival
		if d := math.Abs(sum - sojourn); d > 1e-6*(1+math.Abs(sojourn)) {
			t.Fatalf("stage sums %v don't reconcile with sojourn %v", sum, sojourn)
		}
	}
	st := rec.Stages()
	if st.N != jobs {
		t.Fatalf("stage observations %d, want %d", st.N, jobs)
	}
	// Unit work at Scale = MeanService ⇒ realized service ≈ 1 in
	// service-time units (the sleeper's jitter rides on top).
	if svcMean := st.ServiceSum / float64(st.N); svcMean < 0.5 || svcMean > 3 {
		t.Fatalf("mean realized service %v service times, want ≈ 1", svcMean)
	}
}

// TestLiveTraceRejectsAbort: jobs refused on a full queue must release
// their pending spans as aborted, never publish them.
func TestLiveTraceRejectsAbort(t *testing.T) {
	mean := 5 * time.Millisecond
	rec := trace.New(trace.Config{Sample: 1, Scale: float64(mean.Nanoseconds())})
	farm, err := New(Config{N: 1, QueueCap: 1, MeanService: mean, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := 0; i < 50; i++ {
		if err := farm.Dispatch(1); err == ErrQueueFull {
			rejected++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := farm.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if rejected == 0 {
		t.Fatal("flooding a QueueCap=1 farm rejected nothing")
	}
	if got := rec.Aborted(); got != uint64(rejected) {
		t.Fatalf("recorder aborted %d, farm rejected %d", got, rejected)
	}
	if pub := int(rec.Published()); pub != 50-rejected {
		t.Fatalf("published %d spans, want %d accepted jobs", pub, 50-rejected)
	}
}

// TestLiveTraceOffUnchanged: with no recorder attached the job structs
// carry trace.None and the farm behaves identically (smoke-level check
// that the nil path is really inert).
func TestLiveTraceOffUnchanged(t *testing.T) {
	farm, err := New(Config{N: 2, MeanService: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if farm.Trace() != nil {
		t.Fatal("recorder attached without Config.Trace")
	}
	for i := 0; i < 20; i++ {
		if err := farm.Dispatch(1); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := farm.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 20 {
		t.Fatalf("completed %d of 20", st.Completed)
	}
}
