package lb

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"finitelb/internal/workload"
)

// fastCfg is a farm whose jobs finish almost instantly (tiny mean
// service), for functional tests where queueing physics is not the point.
func fastCfg(n int, policy workload.Policy) Config {
	return Config{N: n, Policy: policy, MeanService: 50 * time.Microsecond}
}

func mustShutdown(t *testing.T, lb *LB) DrainStats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := lb.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, st)
	}
	return st
}

func TestDispatchAndMeasure(t *testing.T) {
	lb, err := New(fastCfg(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	const jobs = 400
	for i := 0; i < jobs; i++ {
		if err := lb.Dispatch(rng.ExpFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	st := mustShutdown(t, lb)
	if st.Completed != jobs || st.Rejected != 0 || st.Abandoned != 0 {
		t.Fatalf("drain stats %+v, want %d completions", st, jobs)
	}
	s := lb.Summary()
	if s.Jobs != jobs || s.Completed != jobs {
		t.Fatalf("summary books %d/%d jobs, want %d", s.Jobs, s.Completed, jobs)
	}
	// Sojourn ≥ service, and with everything dispatched in one burst the
	// mean must exceed one mean service time.
	if s.MeanDelay < 1 {
		t.Errorf("mean live sojourn %v below one mean service", s.MeanDelay)
	}
	if s.MaxQueue < 1 {
		t.Errorf("max queue %d never observed a job", s.MaxQueue)
	}
	if !(s.P999 >= s.P99 && s.P99 >= s.P95 && s.P95 >= s.P50 && s.P50 > 0) {
		t.Errorf("quantiles out of order: p50 %v p95 %v p99 %v p999 %v", s.P50, s.P95, s.P99, s.P999)
	}
	if s.Overflow != 0 {
		t.Errorf("sketch recorder reported overflow %d", s.Overflow)
	}
	// The Prometheus exposition view: monotone cumulative buckets whose
	// final count books every measured job.
	bs := lb.Recorder().TailBuckets(32)
	if len(bs) == 0 || len(bs) > 32 {
		t.Fatalf("TailBuckets: %d buckets", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].LE <= bs[i-1].LE || bs[i].Count < bs[i-1].Count {
			t.Fatalf("TailBuckets not monotone at %d: %+v after %+v", i, bs[i], bs[i-1])
		}
	}
	if last := bs[len(bs)-1]; last.Count != int64(jobs) {
		t.Errorf("final cumulative count %d, want %d", last.Count, jobs)
	}
	// The sharded accumulators stay O(KB) per server — the memory bound
	// that restored per-server sharding headroom.
	if got := lb.Recorder().StateBytes(); got > 4*16*1024 {
		t.Errorf("recorder state %d B across 4 shards, want O(KB) each", got)
	}
}

func TestDoWaitsForCompletion(t *testing.T) {
	lb, err := New(Config{N: 1, MeanService: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lb.Do(context.Background(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != 2*time.Millisecond {
		t.Errorf("nominal service %v, want 2ms", d.Service)
	}
	if d.Sojourn < d.Service {
		t.Errorf("sojourn %v below nominal service %v", d.Sojourn, d.Service)
	}

	// A canceled wait abandons only the wait: the job still completes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lb.Do(ctx, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with canceled ctx: %v", err)
	}
	st := mustShutdown(t, lb)
	if st.Completed != 2 {
		t.Errorf("completed %d jobs, want 2 (canceled wait must not lose the job)", st.Completed)
	}
}

func TestQueueCapRejects(t *testing.T) {
	lb, err := New(Config{N: 1, QueueCap: 2, MeanService: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Three long jobs fill server and queue; the rest must bounce.
	var accepted, rejected int
	for i := 0; i < 8; i++ {
		switch err := lb.Dispatch(5.0); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if accepted != 2 || rejected != 6 {
		t.Fatalf("accepted %d rejected %d, want 2/6 with QueueCap 2", accepted, rejected)
	}
	st := mustShutdown(t, lb)
	if st.Completed != int64(accepted) || st.Rejected != int64(rejected) {
		t.Fatalf("drain stats %+v disagree with %d accepted / %d rejected", st, accepted, rejected)
	}
}

func TestEveryPolicyServesLive(t *testing.T) {
	for _, pol := range []workload.Policy{
		workload.SQD{D: 2}, workload.JSQ{}, workload.JIQ{}, workload.LWL{},
		workload.RoundRobin{}, workload.Random{},
	} {
		lb, err := New(fastCfg(4, pol))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		rng := rand.New(rand.NewPCG(11, 13))
		for i := 0; i < 200; i++ {
			if err := lb.Dispatch(rng.ExpFloat64()); err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
		}
		if st := mustShutdown(t, lb); st.Completed != 200 {
			t.Fatalf("%s: completed %d of 200", pol, st.Completed)
		}
	}
}

func TestLoadGenOffersConfiguredLoad(t *testing.T) {
	lb, err := New(Config{N: 4, MeanService: 200 * time.Microsecond, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 1500
	t0 := time.Now()
	s, err := lb.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: jobs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(t0)
	mustShutdown(t, lb)
	if s.Completed != jobs || s.Jobs != jobs-50 {
		t.Fatalf("completed %d measured %d, want %d/%d", s.Completed, s.Jobs, jobs, jobs-50)
	}
	// Offered rate is ρN per mean service = 10k jobs/s: the run must take
	// roughly jobs/rate. Allow a wide band — this asserts pacing, not
	// precision timing.
	want := time.Duration(float64(jobs) / (0.5 * 4) * 200 * float64(time.Microsecond))
	if elapsed < want/2 || elapsed > 4*want {
		t.Errorf("load generation took %v, want about %v", elapsed, want)
	}
	// The fidelity gauge: services are never rendered early, and the mean
	// completion-observation lateness stays bounded in absolute terms
	// (the work-clock scheduling keeps it from compounding, but a host
	// that can't wake a goroutine within a few ms can't run live tests).
	if s.MeanService < 0.95 {
		t.Errorf("realized mean service %.3f× nominal — services rendered early", s.MeanService)
	}
	if late := time.Duration((s.MeanService - 1) * 200e3); late > 5*time.Millisecond {
		t.Errorf("mean completion lateness %v; host timers too coarse for live measurement", late)
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	lb, err := New(fastCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	mustShutdown(t, lb)
	if err := lb.Dispatch(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("dispatch after shutdown: %v, want ErrClosed", err)
	}
	if _, err := lb.RunLoadGen(context.Background(), GenConfig{Rho: 0.5, Jobs: 10}); !errors.Is(err, ErrClosed) {
		t.Fatalf("loadgen after shutdown: %v, want ErrClosed", err)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no servers":     {N: 0},
		"bad policy":     {N: 2, Policy: workload.SQD{D: 5}},
		"short speeds":   {N: 3, Speeds: []float64{1, 1}},
		"negative speed": {N: 2, Speeds: []float64{1, -1}},
		"bad queue cap":  {N: 2, QueueCap: -3},
		"bad service":    {N: 2, MeanService: -time.Second},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	lb, err := New(fastCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, lb)
	for _, w := range []float64{0, -1, 2e9} {
		if err := lb.Dispatch(w); err == nil {
			t.Errorf("work %v accepted", w)
		}
	}
}

func TestIdleStack(t *testing.T) {
	st := newIdleStack(8)
	for i := 0; i < 8; i++ {
		st.push(i)
	}
	for want := 7; want >= 0; want-- {
		got, ok := st.tryPop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d (LIFO)", got, ok, want)
		}
	}
	if _, ok := st.tryPop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	// Interleaved reuse keeps ids unique and last-in-first-out.
	st.push(3)
	st.push(5)
	if got, _ := st.tryPop(); got != 5 {
		t.Fatalf("pop = %d, want 5", got)
	}
	if got, _ := st.tryPop(); got != 3 {
		t.Fatalf("pop = %d, want 3", got)
	}
}
