package lb

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"finitelb/internal/workload"
)

// TestChaosCalibrationRecovery is the failure-domain closure of the
// calibration suite: the QBD bracket doesn't just describe a healthy
// farm, it predicts where the farm lands after losing and regaining
// capacity. An open-loop SQ(2) farm of N=4 runs at per-server ρ=0.45;
// crashing k=2 servers holds the offered rate constant, so the
// surviving pair runs at effective ρ = 0.45·4/2 = 0.9 — a different
// solved system, (N−k, ρ_eff) — and the measured windowed mean delay
// must re-enter *that* bracket. Restoring the servers must bring the
// measured mean back inside the N-server bracket. Windowed means are
// differenced from Summary snapshots (mean·jobs telescopes), so each
// phase is judged on its own traffic, not diluted by history.
//
// Slack policy mirrors TestLiveDelayWithinQBDBounds: a fraction of the
// bracket's upper edge for windowed statistical noise (the windows hold
// a few thousand jobs, not the full-run sample), plus the measured
// completion-observation lateness. A directional check (degraded mean
// clearly above healthy mean) keeps teeth independent of the slack.
func TestChaosCalibrationRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos calibration needs wall-clock traffic")
	}
	const (
		n    = 4
		k    = 2
		rho  = 0.45
		rhoK = rho * n / (n - k) // 0.9 on the survivors
	)
	loN, hiN := qbdBracket(t, n, rho)
	loK, hiK := qbdBracket(t, n-k, rhoK)

	lb, err := New(Config{
		N:           n,
		Policy:      workload.SQD{D: 2},
		MeanService: time.Millisecond,
		QueueCap:    1 << 16,
		BatchSize:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm(lb) // chunked sleeps from the start: the crash must interrupt service

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Open loop at the fixed healthy-farm rate; Jobs is a ceiling the
		// cancel below cuts short.
		if _, err := lb.RunLoadGen(ctx, GenConfig{Rho: rho, Jobs: 1 << 30, Seed: 23}); err != nil && ctx.Err() == nil {
			t.Errorf("load generator: %v", err)
		}
	}()

	// window measures the mean delay of exactly the jobs completing in
	// the next span: Summary means telescope as mean·jobs.
	window := func(span time.Duration) (float64, int64) {
		s1 := lb.Summary()
		time.Sleep(span)
		s2 := lb.Summary()
		jobs := s2.Jobs - s1.Jobs
		if jobs <= 0 {
			t.Fatalf("no completions in a %v window", span)
		}
		return (s2.MeanDelay*float64(s2.Jobs) - s1.MeanDelay*float64(s1.Jobs)) / float64(jobs), jobs
	}

	time.Sleep(2 * time.Second) // past the empty-start transient
	healthy, jh := window(3 * time.Second)

	for i := 0; i < k; i++ {
		if err := lb.Crash(2*i + 1); err != nil { // servers 1 and 3
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Second) // convergence to the degraded regime
	degraded, jd := window(4 * time.Second)

	for i := 0; i < k; i++ {
		if err := lb.Join(2*i + 1); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Second) // drain the degraded backlog
	restored, jr := window(3 * time.Second)

	cancel()
	wg.Wait()
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	final := lb.Summary()
	lateness := math.Max(final.MeanService-1, 0.1)

	t.Logf("N=%d bracket [%.3f, %.3f]; N−k=%d bracket [%.3f, %.3f]; svc gauge %.3f", n, loN, hiN, n-k, loK, hiK, final.MeanService)
	t.Logf("healthy %.3f (%d jobs) → degraded %.3f (%d jobs) → restored %.3f (%d jobs)", healthy, jh, degraded, jd, restored, jr)

	inBracket := func(phase string, m, lo, hi, slack float64) {
		t.Helper()
		if m < lo-slack || m > hi+slack {
			t.Errorf("%s: windowed mean %.4f outside [%.4f, %.4f] (slack %.3f)", phase, m, lo, hi, slack)
		}
	}
	slackN := 0.5*hiN + 2*lateness
	slackK := 0.35*hiK + 2*lateness
	inBracket("healthy N", healthy, loN, hiN, slackN)
	inBracket("degraded N−k at ρ_eff", degraded, loK, hiK, slackK)
	inBracket("restored N", restored, loN, hiN, slackN)
	// The regime change itself, independent of slack: two servers at
	// ρ 0.9 queue far deeper than four at ρ 0.45.
	if degraded < healthy+0.5 {
		t.Errorf("degraded mean %.4f not clearly above healthy %.4f", degraded, healthy)
	}
	if o := lb.Recorder().Outcomes(); o.Requeued == 0 {
		t.Error("crashing 2 of 4 servers mid-run requeued nothing")
	}
	if st.Rejected != 0 {
		t.Errorf("%d rejects with an effectively unbounded queue", st.Rejected)
	}
}
