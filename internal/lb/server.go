package lb

import (
	"sync"
	"time"
)

// envelope is what travels over a server's channel: either one job or a
// coalesced burst of jobs for this server. The load generator's burst
// path groups all same-target arrivals drained on one wake-up into a
// single send (one channel operation, one buffer), so a K-job burst to
// one server costs one handoff instead of K; the single-job path is
// unchanged and allocation-free.
type envelope struct {
	j     job
	batch *[]job // non-nil: the jobs, in arrival order; j is unused
}

// batchPool recycles burst buffers; the consuming server returns them.
var batchPool = sync.Pool{New: func() any {
	b := make([]job, 0, 64)
	return &b
}}

// server is one backend: a goroutine draining its bounded FIFO channel,
// rendering each job's service requirement in real time through the
// calibrated sleeper, and booking the completion. All cross-goroutine
// state lives in the sharded table slot; the goroutine itself holds
// nothing another goroutine reads.
type server struct {
	id    int
	speed float64
	ch    chan envelope
}

func (s *server) run(lb *LB) {
	defer lb.srvWG.Done()
	slot := &lb.slots[s.id]
	// busyUntil is the server's work clock: the ideal completion instant
	// of its previous job. Each job's deadline is computed from
	// max(arrival, busyUntil) — the ideal FIFO schedule — rather than
	// from the instant the goroutine got around to observing the queue.
	// Host scheduling noise (timer overshoot, vCPU steal) therefore
	// delays only the *observation* of each completion by its own jitter;
	// it never compounds through the queue into inflated service times,
	// which on contended hosts would silently push the effective
	// utilization past saturation.
	var busyUntil time.Time
	for e := range s.ch {
		if e.batch != nil {
			for _, j := range *e.batch {
				busyUntil = s.serve(lb, slot, busyUntil, j)
			}
			*e.batch = (*e.batch)[:0]
			batchPool.Put(e.batch)
			continue
		}
		busyUntil = s.serve(lb, slot, busyUntil, e.j)
	}
}

// serve renders one job and books its completion, returning the advanced
// work clock.
func (s *server) serve(lb *LB, slot *slot, busyUntil time.Time, j job) time.Time {
	start := j.arrival
	if busyUntil.After(start) {
		start = busyUntil
	}
	dur := time.Duration(j.work / s.speed * lb.meanServiceNs)
	deadline := start.Add(dur)
	if j.trace >= 0 {
		// start is the work-clock (ideal-schedule) instant — it can
		// precede the Enqueued observation; see trace.Recorder.observe.
		lb.tr.Started(j.trace, lb.rel(start))
	}
	if lb.workAware {
		// The job leaves the queued-work ledger and becomes the
		// in-service remainder the LWL view reads from deadline.
		slot.pending.Add(-j.workNs)
		slot.deadline.Store(deadline.UnixNano())
	}
	lb.sleep.sleepUntil(deadline)
	if lb.workAware {
		slot.deadline.Store(0)
	}
	if slot.qlen.Add(-1) == 0 && lb.jiq {
		// Queue drained: report idle (push at most once — the flag
		// guards against a stale stack entry from a fallback dispatch).
		if slot.onStack.CompareAndSwap(false, true) {
			lb.idle.push(s.id)
		}
	}
	if lb.lenTree != nil {
		lb.lenTree.Update(s.id)
	}
	if lb.workTree != nil {
		// The job's nominal work leaves the LWL index only now, at
		// completion, so the index keeps counting the in-service job.
		slot.outwork.Add(-j.workNs)
		lb.workTree.Update(s.id)
	}
	end := time.Now()
	lb.rec.record(s.id, end.Sub(j.arrival), end.Sub(start))
	if j.trace >= 0 {
		lb.tr.Done(j.trace, lb.rel(end))
	}
	if j.counted != nil {
		j.counted.Add(1)
	}
	if j.done != nil {
		j.done <- Done{Server: s.id, Sojourn: end.Sub(j.arrival), Service: dur}
	}
	return deadline
}
