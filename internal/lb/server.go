package lb

import (
	"math"
	"sync"
	"time"
)

// envelope is what travels over a server's channel: either one job or a
// coalesced burst of jobs for this server. The load generator's burst
// path groups all same-target arrivals drained on one wake-up into a
// single send (one channel operation, one buffer), so a K-job burst to
// one server costs one handoff instead of K; the single-job path is
// unchanged and allocation-free.
type envelope struct {
	j     job
	batch *[]job // non-nil: the jobs, in arrival order; j is unused
}

// batchPool recycles burst buffers; the consuming server returns them.
var batchPool = sync.Pool{New: func() any {
	b := make([]job, 0, 64)
	return &b
}}

// server is one backend: a goroutine draining its bounded FIFO channel,
// rendering each job's service requirement in real time through the
// calibrated sleeper, and booking the completion. All cross-goroutine
// state lives in the sharded table slot; the goroutine itself holds
// nothing another goroutine reads.
type server struct {
	id    int
	speed float64
	ch    chan envelope
}

func (s *server) run(lb *LB) {
	defer lb.srvWG.Done()
	slot := &lb.slots[s.id]
	// busyUntil is the server's work clock: the ideal completion instant
	// of its previous job. Each job's deadline is computed from
	// max(arrival, busyUntil) — the ideal FIFO schedule — rather than
	// from the instant the goroutine got around to observing the queue.
	// Host scheduling noise (timer overshoot, vCPU steal) therefore
	// delays only the *observation* of each completion by its own jitter;
	// it never compounds through the queue into inflated service times,
	// which on contended hosts would silently push the effective
	// utilization past saturation.
	var busyUntil time.Time
	for e := range s.ch {
		if e.batch != nil {
			for _, j := range *e.batch {
				busyUntil = s.serve(lb, slot, busyUntil, j)
			}
			*e.batch = (*e.batch)[:0]
			batchPool.Put(e.batch)
			continue
		}
		busyUntil = s.serve(lb, slot, busyUntil, e.j)
	}
}

// serve renders one job and books its completion, returning the advanced
// work clock. On a down server it instead redelivers the job (the
// down-drain); it also resolves the job's hedge claim, deadline, and any
// injected stall/slowdown, and aborts into the retry path when a crash
// interrupts the service sleep.
func (s *server) serve(lb *LB, slot *slot, busyUntil time.Time, j job) time.Time {
	if slot.down.Load() {
		// Down-drain: a departed/crashed server requeues everything it
		// dequeues. The job never started, so the full reservation
		// unwinds; no idle report from a down server.
		s.dequeue(lb, slot, &j, false, false)
		lb.scheduleRetry(j, time.Now())
		return busyUntil
	}
	if j.claim != nil && !j.claim.CompareAndSwap(0, 1) {
		// Another copy of this hedged job won the service race (or the
		// job was dropped): release the reservation and vanish — the
		// winner owns the record, the counted bump, and the done send.
		s.dequeue(lb, slot, &j, false, true)
		return busyUntil
	}
	start := j.arrival
	if busyUntil.After(start) {
		start = busyUntil
	}
	if st := slot.stallUntil.Load(); st != 0 {
		if t := time.Unix(0, st); t.After(start) {
			start = t
		} else {
			// Expired: clear, but never clobber a fresher stall (CAS).
			slot.stallUntil.CompareAndSwap(st, 0)
		}
	}
	if j.deadlineNs != 0 && start.UnixNano() > j.deadlineNs {
		// The deadline expires before service would begin on the ideal
		// schedule: drop instead of serving. The claim (if any) is
		// already owned, so the drop counts unconditionally.
		s.dequeue(lb, slot, &j, false, true)
		lb.finalizeDrop(j, time.Now(), true)
		return busyUntil
	}
	dur := time.Duration(j.work / s.speed * lb.meanServiceNs)
	if f := slot.slowBits.Load(); f != 0 {
		dur = time.Duration(float64(dur) * math.Float64frombits(f))
	}
	deadline := start.Add(dur)
	if j.trace >= 0 {
		// start is the work-clock (ideal-schedule) instant — it can
		// precede the Enqueued observation; see trace.Recorder.observe.
		lb.tr.Started(j.trace, lb.rel(start))
	}
	if lb.workAware {
		// The job leaves the queued-work ledger and becomes the
		// in-service remainder the LWL view reads from deadline.
		slot.pending.Add(-j.workNs)
		slot.deadline.Store(deadline.UnixNano())
	}
	completed := s.sleepService(lb, slot, deadline)
	if lb.workAware {
		slot.deadline.Store(0)
	}
	if !completed {
		// Crash interrupt: the partial service is lost. The job goes
		// back to unclaimed (a hedge copy may pick it up) and into the
		// retry path; pending already left the ledger at service start.
		s.dequeue(lb, slot, &j, true, false)
		if j.claim != nil {
			j.claim.Store(0)
		}
		lb.scheduleRetry(j, time.Now())
		return busyUntil
	}
	if slot.qlen.Add(-1) == 0 && lb.jiq && !slot.down.Load() {
		// Queue drained: report idle (push at most once — the flag
		// guards against a stale stack entry from a fallback dispatch).
		if slot.onStack.CompareAndSwap(false, true) {
			lb.idle.push(s.id)
		}
	}
	if lb.lenTree != nil {
		lb.lenTree.Update(s.id)
	}
	if lb.workTree != nil {
		// The job's nominal work leaves the LWL index only now, at
		// completion, so the index keeps counting the in-service job.
		slot.outwork.Add(-j.workNs)
		lb.workTree.Update(s.id)
	}
	end := time.Now()
	lb.rec.record(s.id, end.Sub(j.arrival), end.Sub(start))
	if j.trace >= 0 {
		lb.tr.Done(j.trace, lb.rel(end))
	}
	if j.counted != nil {
		j.counted.Add(1)
	}
	if j.done != nil {
		j.done <- Done{Server: s.id, Sojourn: end.Sub(j.arrival), Service: dur}
	}
	return deadline
}

// dequeue unwinds a queue reservation for a job leaving this server
// unserved — the reverse of admit. started says the job already left
// the pending ledger at service start; jiqPush lets a live server
// report idle if this drained its queue.
func (s *server) dequeue(lb *LB, slot *slot, j *job, started, jiqPush bool) {
	if lb.workAware && !started {
		slot.pending.Add(-j.workNs)
	}
	if slot.qlen.Add(-1) == 0 && jiqPush && lb.jiq && !slot.down.Load() {
		if slot.onStack.CompareAndSwap(false, true) {
			lb.idle.push(s.id)
		}
	}
	if lb.lenTree != nil {
		lb.lenTree.Update(s.id)
	}
	if lb.workTree != nil {
		slot.outwork.Add(-j.workNs)
		lb.workTree.Update(s.id)
	}
}

// sleepService renders the service duration, returning false if a
// crash interrupted it. Churn-free farms (churny never set) keep the
// single compensated sleep; once any fault has been injected the sleep
// is chunked at crashPoll so a crash lands mid-service instead of
// waiting the job out.
func (s *server) sleepService(lb *LB, slot *slot, deadline time.Time) bool {
	if !lb.churny.Load() {
		lb.sleep.sleepUntil(deadline)
		return true
	}
	for {
		if slot.crashed.Load() {
			return false
		}
		now := time.Now()
		rem := deadline.Sub(now)
		if rem <= 0 {
			return true
		}
		if rem > crashPoll {
			lb.sleep.sleepUntil(now.Add(crashPoll))
		} else {
			lb.sleep.sleepUntil(deadline)
		}
	}
}
