package lb

import "time"

// server is one backend: a goroutine draining its bounded FIFO channel,
// rendering each job's service requirement in real time through the
// calibrated sleeper, and booking the completion. All cross-goroutine
// state lives in the sharded table slot; the goroutine itself holds
// nothing another goroutine reads.
type server struct {
	id    int
	speed float64
	ch    chan job
}

func (s *server) run(lb *LB) {
	defer lb.srvWG.Done()
	slot := &lb.slots[s.id]
	// busyUntil is the server's work clock: the ideal completion instant
	// of its previous job. Each job's deadline is computed from
	// max(arrival, busyUntil) — the ideal FIFO schedule — rather than
	// from the instant the goroutine got around to observing the queue.
	// Host scheduling noise (timer overshoot, vCPU steal) therefore
	// delays only the *observation* of each completion by its own jitter;
	// it never compounds through the queue into inflated service times,
	// which on contended hosts would silently push the effective
	// utilization past saturation.
	var busyUntil time.Time
	for j := range s.ch {
		start := j.arrival
		if busyUntil.After(start) {
			start = busyUntil
		}
		dur := time.Duration(j.work / s.speed * lb.meanServiceNs)
		deadline := start.Add(dur)
		busyUntil = deadline
		if lb.workAware {
			// The job leaves the queued-work ledger and becomes the
			// in-service remainder the LWL view reads from deadline.
			slot.pending.Add(-j.workNs)
			slot.deadline.Store(deadline.UnixNano())
		}
		lb.sleep.sleepUntil(deadline)
		if lb.workAware {
			slot.deadline.Store(0)
		}
		if slot.qlen.Add(-1) == 0 && lb.jiq {
			// Queue drained: report idle (push at most once — the flag
			// guards against a stale stack entry from a fallback dispatch).
			if slot.onStack.CompareAndSwap(false, true) {
				lb.idle.push(s.id)
			}
		}
		if lb.lenTree != nil {
			lb.lenTree.Update(s.id)
		}
		if lb.workTree != nil {
			// The job's nominal work leaves the LWL index only now, at
			// completion, so the index keeps counting the in-service job.
			slot.outwork.Add(-j.workNs)
			lb.workTree.Update(s.id)
		}
		end := time.Now()
		lb.rec.record(s.id, end.Sub(j.arrival), end.Sub(start))
		if j.counted != nil {
			j.counted.Add(1)
		}
		if j.done != nil {
			j.done <- Done{Server: s.id, Sojourn: end.Sub(j.arrival), Service: dur}
		}
	}
}
