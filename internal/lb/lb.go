// Package lb is the live side of the repository: a production-style
// concurrent load-balancer runtime that serves real traffic through the
// same dispatch policies the discrete-event simulator and the paper's QBD
// bound models reason about. N server goroutines drain bounded FIFO
// queues; a dispatcher routes each incoming job by sampling a sharded
// atomic queue-length table (SQ(d) stays O(d) with no global lock), a
// lock-free Treiber stack serves JIQ's idle hints, JSQ and LWL at
// N ≥ minindex.Threshold route through a lock-free hierarchical min-index
// over that table (O(log N) repair per dispatch/completion, O(log N)
// argmin per pick — see internal/minindex), and per-job service
// requirements are rendered in real time by a self-calibrating sleeper.
// Completions stream into a Recorder built on the simulator's own
// statistics (internal/stats), so live measurements come out in the same
// units — multiples of the mean service time — and can be laid directly
// against sim.Result and the paper's finite-N delay bounds. That closure
// is tested: the calibration suite drives this runtime with Poisson
// arrivals and exponential service and asserts the measured mean delay
// lands inside the QBD lower/upper bracket (see calibrate_test.go).
//
// The workload vocabulary is internal/workload, unchanged: any
// workload.Policy routes live traffic exactly as it routes simulated
// traffic, with two live-specific notes. Pickers are pooled per
// dispatching goroutine (the interfaces are documented single-goroutine),
// so stateful pickers like round-robin interleave across concurrent
// clients rather than cycling globally; and the JIQ policy is served by
// the idle stack — most-recently-idle rather than uniformly-random-idle,
// a distinction without a delay difference on homogeneous servers since
// either way the job starts service immediately.
package lb

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"finitelb/internal/minindex"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// ErrClosed reports a dispatch attempted after Shutdown began.
var ErrClosed = errors.New("lb: dispatcher is shut down")

// ErrQueueFull reports a job refused because the picked server's bounded
// queue was at capacity. The caller sees loss semantics, as a real
// admission-controlled farm would; rejections are counted in the Summary.
var ErrQueueFull = errors.New("lb: picked server's queue is full")

// Config describes a live farm.
type Config struct {
	// N is the number of servers (required, ≥ 1).
	N int
	// Policy routes each job; default SQ(2) (SQ(1) when N = 1), the
	// paper's dispatcher. Any workload.Policy works, including the
	// work-aware LWL.
	Policy workload.Policy
	// Speeds are per-server speed factors; nil means homogeneous unit
	// speed. A job of requirement w occupies server i for
	// w/Speeds[i] × MeanService of wall time.
	Speeds []float64
	// QueueCap bounds each server's queue, including the job in service;
	// a job routed to a full queue is rejected with ErrQueueFull.
	// Default 4096.
	QueueCap int
	// MeanService is the wall-clock length of one unit of work — the
	// scale knob mapping the model's service-time unit onto real time.
	// Default 1ms.
	MeanService time.Duration
	// Warmup completions are excluded from the Recorder's statistics
	// (counted, not measured). Default 0.
	Warmup int64
	// BatchSize is the per-server batch size for the batch-means
	// confidence interval. Default 200.
	BatchSize int64
	// Seed seeds the per-dispatcher RNGs. Live timing is inherently
	// nondeterministic; the seed only decorrelates sampling choices.
	// Default 1.
	Seed uint64
	// Trace, when non-nil, attaches a flight recorder: sampled jobs get
	// lifecycle spans (arrival → pick → enqueue → service start →
	// completion, with the chosen server and the queue length seen) and
	// per-stage delay sketches. Timestamps are nanoseconds relative to
	// the farm's start; build the recorder with Scale set to
	// MeanService's nanoseconds to read the stage sketches in
	// service-time units. Tracing costs one extra clock read per
	// *sampled* job on the dispatch path and zero allocations.
	Trace *trace.Recorder
}

func (c *Config) setDefaults() error {
	if c.N < 1 {
		return fmt.Errorf("lb: N = %d, need at least one server", c.N)
	}
	if c.Policy == nil {
		d := 2
		if c.N == 1 {
			d = 1
		}
		c.Policy = workload.SQD{D: d}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4096
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("lb: queue capacity %d, need ≥ 1", c.QueueCap)
	}
	if c.MeanService == 0 {
		c.MeanService = time.Millisecond
	}
	if c.MeanService <= 0 {
		return fmt.Errorf("lb: mean service %v, need > 0", c.MeanService)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("lb: warmup %d, need ≥ 0", c.Warmup)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Done reports one completed job.
type Done struct {
	Server  int           // server that ran the job
	Sojourn time.Duration // arrival → completion
	Service time.Duration // nominal service duration (work/speed × MeanService)
}

// job travels from a dispatcher to a server goroutine.
type job struct {
	work    float64 // service requirement, work units
	workNs  int64   // requirement × MeanService, for the LWL work table
	arrival time.Time
	done    chan<- Done   // nil for fire-and-forget
	counted *atomic.Int64 // bumped at completion; lets a submitter await its own jobs
	// trace is the job's flight-recorder handle; meaningful only when
	// the farm has a recorder attached (always assigned then, mostly
	// trace.None). Ownership of the span follows the job: the dispatcher
	// writes up to Enqueued, the server writes Start/Done — the channel
	// send is the hand-off.
	trace trace.Handle
}

// rel converts a wall-clock instant to the recorder's timestamp unit:
// float64 nanoseconds since the farm's epoch (exact to well past a
// hundred days of uptime).
//
//finitelb:hotpath
func (lb *LB) rel(t time.Time) float64 { return float64(t.Sub(lb.epoch)) }

// Trace returns the attached flight recorder (nil when tracing is off).
func (lb *LB) Trace() *trace.Recorder { return lb.tr }

// LB is the live dispatcher runtime. Create with New, feed with Dispatch
// or Do (safe for arbitrary concurrent callers), stop with Shutdown.
type LB struct {
	cfg           Config
	n             int
	meanServiceNs float64
	speeds        []float64
	queueCap      int32

	slots   table
	idle    *idleStack
	servers []*server
	rec     *Recorder
	sleep   *sleeper
	tr      *trace.Recorder // nil = tracing off
	epoch   time.Time       // zero point of trace timestamps

	// Hierarchical min-indexes over the slot table (nil below
	// minindex.Threshold, or when the policy doesn't dispatch on a global
	// argmin). lenTree keys on qlen for JSQ; workTree keys on outwork
	// (outstanding nominal work, quantized to µs and divided by the
	// server's speed) for LWL. Dispatchers and servers repair the tree
	// after every slot write, so a JSQ/LWL pick is O(log N) instead of the
	// O(N) scan that caps throughput near 80k jobs/sec at N=1000.
	lenTree  *minindex.Conc
	workTree *minindex.Conc

	jiq       bool // Policy is workload.JIQ: dispatch via the idle stack
	workAware bool // Policy needs the per-server work table

	dispatchers sync.Pool // *dispatcher
	seedCtr     atomic.Uint64

	inflight  sync.WaitGroup // Dispatch calls between closed-check and enqueue
	srvWG     sync.WaitGroup
	closed    atomic.Bool
	closeOnce sync.Once
	accepted  atomic.Int64
	rejected  atomic.Int64
}

// dispatcher is the per-goroutine picking state (the workload interfaces
// are documented single-goroutine): an RNG, a Picker, and the farm view
// it samples. sync.Pool keeps one per P in steady state, so picks stay
// lock-free.
type dispatcher struct {
	rng    *rand.Rand
	picker workload.Picker
	view   qview
}

// qview adapts the sharded table to the dispatcher's workload.Queues (and
// workload.WorkQueues) interfaces. nowNs is set per dispatch so that LWL
// sees in-service remainders at the arrival instant.
type qview struct {
	lb    *LB
	nowNs int64
}

func (q *qview) N() int        { return q.lb.n }
//finitelb:hotpath
func (q *qview) Len(i int) int { return int(q.lb.slots[i].qlen.Load()) }

// Work implements workload.WorkQueues: the server's time-to-drain in
// service-time units — queued (not yet started) work divided by the
// server's speed, plus the in-service wall-clock remainder.
//finitelb:hotpath
func (q *qview) Work(i int) float64 {
	s := &q.lb.slots[i]
	w := float64(s.pending.Load()) / q.lb.speeds[i]
	if dl := s.deadline.Load(); dl != 0 {
		if rem := dl - q.nowNs; rem > 0 {
			w += float64(rem)
		}
	}
	return w / q.lb.meanServiceNs
}

// ArgminLen implements workload.ArgminQueues when the length index is on:
// a uniformly-tie-broken shortest queue in O(log N) tree reads.
//finitelb:hotpath
func (q *qview) ArgminLen(rng *rand.Rand) (int, bool) {
	if t := q.lb.lenTree; t != nil {
		return t.Argmin(rng), true
	}
	return 0, false
}

// ArgminWork implements workload.ArgminWorkQueues when the work index is
// on. The index orders servers by outstanding nominal work — every
// accepted job's full requirement until it completes — rather than the
// scan view's queued-work-plus-in-service-remainder, so it overstates a
// busy server by at most the elapsed part of its in-service job; both
// orderings agree whenever backlogs differ by at least one job, which is
// when LWL's choice matters.
//finitelb:hotpath
func (q *qview) ArgminWork(rng *rand.Rand) (int, bool) {
	if t := q.lb.workTree; t != nil {
		return t.Argmin(rng), true
	}
	return 0, false
}

// New validates cfg, starts the N server goroutines, and returns a
// running farm.
func New(cfg Config) (*LB, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if _, err := cfg.Policy.NewPicker(cfg.N); err != nil {
		return nil, err
	}
	speeds := cfg.Speeds
	if speeds == nil {
		speeds = make([]float64, cfg.N)
		for i := range speeds {
			speeds[i] = 1
		}
	} else if len(speeds) != cfg.N {
		return nil, fmt.Errorf("lb: %d speed factors for N = %d servers", len(speeds), cfg.N)
	}
	for i, s := range speeds {
		if !(s > 0) {
			return nil, fmt.Errorf("lb: speed[%d] = %v, need > 0", i, s)
		}
	}

	lb := &LB{
		cfg:           cfg,
		n:             cfg.N,
		meanServiceNs: float64(cfg.MeanService.Nanoseconds()),
		speeds:        speeds,
		queueCap:      int32(cfg.QueueCap),
		slots:         newTable(cfg.N),
		rec:           newRecorder(cfg.N, cfg.MeanService, cfg.Warmup, cfg.BatchSize),
		sleep:         newSleeper(),
		tr:            cfg.Trace,
		epoch:         time.Now(),
	}
	_, lb.jiq = cfg.Policy.(workload.JIQ)
	_, lb.workAware = cfg.Policy.(workload.WorkAware)
	if cfg.N >= minindex.Threshold {
		switch cfg.Policy.(type) {
		case workload.JSQ:
			lb.lenTree = minindex.NewConc(cfg.N, func(i int) uint32 {
				if l := lb.slots[i].qlen.Load(); l > 0 {
					return uint32(l)
				}
				return 0
			})
		case workload.LWL:
			lb.workTree = minindex.NewConc(cfg.N, func(i int) uint32 {
				us := float64(lb.slots[i].outwork.Load()) / lb.speeds[i] / 1e3
				if us >= float64(^uint32(0)) {
					return ^uint32(0)
				}
				if us <= 0 {
					return 0
				}
				return uint32(us)
			})
		}
	}
	if lb.jiq {
		lb.idle = newIdleStack(cfg.N)
		for i := 0; i < cfg.N; i++ {
			lb.slots[i].onStack.Store(true)
			lb.idle.push(i)
		}
	}
	lb.dispatchers.New = func() any {
		picker, err := cfg.Policy.NewPicker(cfg.N)
		if err != nil {
			// Unreachable: the same constructor succeeded above.
			panic("lb: NewPicker failed after validation: " + err.Error())
		}
		d := &dispatcher{
			rng:    rand.New(rand.NewPCG(cfg.Seed, lb.seedCtr.Add(1))),
			picker: picker,
		}
		d.view.lb = lb
		return d
	}

	lb.servers = make([]*server, cfg.N)
	lb.srvWG.Add(cfg.N)
	for i := range lb.servers {
		lb.servers[i] = &server{
			id:    i,
			speed: speeds[i],
			ch:    make(chan envelope, cfg.QueueCap),
		}
		go lb.servers[i].run(lb)
	}
	return lb, nil
}

// N returns the number of servers.
func (lb *LB) N() int { return lb.n }

// QueueLens snapshots every server's current queue length (including the
// job in service) — the same view the dispatch policies sample.
func (lb *LB) QueueLens() []int {
	lens := make([]int, lb.n)
	for i := range lens {
		lens[i] = int(lb.slots[i].qlen.Load())
	}
	return lens
}

// Recorder exposes the live measurement stream.
func (lb *LB) Recorder() *Recorder { return lb.rec }

// Summary snapshots the current statistics, including rejects.
func (lb *LB) Summary() Summary {
	s := lb.rec.Snapshot()
	s.Rejected = lb.rejected.Load()
	return s
}

// Dispatch routes one job of the given service requirement (in work
// units; 1.0 is a mean-sized job) to a server and returns without waiting
// for it. The job's sojourn is recorded by the runtime.
func (lb *LB) Dispatch(work float64) error {
	_, err := lb.submit(work, nil, nil)
	return err
}

// Do routes one job and waits for its completion (or ctx expiry — the job
// itself still runs to completion and is recorded; only the wait is
// abandoned).
func (lb *LB) Do(ctx context.Context, work float64) (Done, error) {
	ch := make(chan Done, 1)
	if _, err := lb.submit(work, ch, nil); err != nil {
		return Done{}, err
	}
	select {
	case d := <-ch:
		return d, nil
	case <-ctx.Done():
		return Done{}, ctx.Err()
	}
}

//finitelb:hotpath
func (lb *LB) submit(work float64, done chan<- Done, counted *atomic.Int64) (int, error) {
	return lb.submitAt(time.Now(), work, done, counted)
}

// submitAt is submit with the arrival stamp supplied by the caller: the
// load generator's burst path drains several overdue arrivals per sleeper
// wake-up and stamps the whole burst with one clock read.
//finitelb:hotpath
func (lb *LB) submitAt(arrival time.Time, work float64, done chan<- Done, counted *atomic.Int64) (int, error) {
	if !(work > 0) || work > 1e9 {
		//lint:allow hotpath rejected-input error exit; never taken on the accept path
		return -1, fmt.Errorf("lb: job work %v outside (0, 1e9]", work)
	}
	if lb.closed.Load() {
		return -1, ErrClosed
	}
	// The inflight group brackets the closed-check-to-enqueue window:
	// Shutdown flips closed and then waits for it, so no enqueue can race
	// past a closed channel.
	lb.inflight.Add(1)
	defer lb.inflight.Done()
	if lb.closed.Load() {
		return -1, ErrClosed
	}

	d := lb.dispatchers.Get().(*dispatcher)
	if lb.workAware {
		d.view.nowNs = arrival.UnixNano()
	}
	j, target, ok := lb.admit(d, arrival, work, done, counted)
	lb.dispatchers.Put(d)
	if !ok {
		return target, ErrQueueFull
	}
	if j.trace >= 0 {
		lb.tr.Enqueued(j.trace, lb.rel(time.Now()))
	}
	// Cannot block: qlen ≤ QueueCap bounds channel occupancy by the
	// channel's own capacity (an envelope never carries more jobs than
	// queue reservations).
	lb.servers[target].ch <- envelope{j: j}
	return target, nil
}

// admit is the per-job admission stage shared by submitAt and
// submitBurst: pick a target with the caller's dispatcher (the caller
// sets d.view.nowNs under a work-aware policy), reserve a queue slot,
// and update every ledger and index. ok = false means the picked
// server's queue was full; the rejection is counted and nothing needs
// unwinding. The caller owns the channel send.
//finitelb:hotpath
func (lb *LB) admit(d *dispatcher, arrival time.Time, work float64, done chan<- Done, counted *atomic.Int64) (job, int, bool) {
	th := trace.None
	if lb.tr != nil {
		th = lb.tr.Start(lb.rel(arrival))
	}
	var target int
	if lb.jiq {
		// JIQ fast path: pop an idle hint in O(1); fall back to a uniform
		// pick when nobody has reported idle.
		var ok bool
		if target, ok = lb.idle.tryPop(); ok {
			lb.slots[target].onStack.Store(false)
		} else {
			target = d.rng.IntN(lb.n)
		}
	} else {
		target = d.picker.Pick(d.rng, &d.view)
	}
	s := &lb.slots[target]
	newLen := s.qlen.Add(1)
	if newLen > lb.queueCap {
		// Net-zero qlen change: the min-index never saw the reservation,
		// so there is nothing to repair.
		s.qlen.Add(-1)
		lb.rejected.Add(1)
		if lb.tr != nil {
			lb.tr.Abort(th)
		}
		return job{}, target, false
	}
	if lb.lenTree != nil {
		lb.lenTree.Update(target)
	}
	lb.rec.observeQueue(int(newLen))
	j := job{work: work, arrival: arrival, done: done, counted: counted, trace: th}
	if th >= 0 {
		// One clock read per sampled job; live pickers don't report tie
		// counts (the simulator's side of the recorder does).
		lb.tr.Picked(th, lb.rel(time.Now()), target, int(newLen-1), -1)
	}
	if lb.workAware {
		j.workNs = int64(work * lb.meanServiceNs)
		s.pending.Add(j.workNs)
		if lb.workTree != nil {
			s.outwork.Add(j.workNs)
			lb.workTree.Update(target)
		}
	}
	lb.accepted.Add(1)
	return j, target, true
}

// burstScratch is the reusable staging area of one generator goroutine's
// submitBurst calls; it keeps the burst path allocation-free apart from
// the pooled per-send buffers.
type burstScratch struct {
	jobs    []job
	targets []int32
}

// submitBurst routes a burst of jobs sharing one arrival stamp — the
// load generator's overdue arrivals drained on a single wake-up — and
// coalesces all jobs routed to the same server into one channel send
// (ROADMAP PR-4 follow-up: one send per server per wake-up). Target
// picks consume the dispatcher rng exactly as the same sequence of
// submitAt calls would, so D = 1 runs stay draw-identical to the
// unbatched generator; per-job admission is unchanged (full queues
// reject individual jobs, counted by the farm). It returns the number of
// jobs accepted.
//finitelb:hotpath
func (lb *LB) submitBurst(arrival time.Time, works []float64, counted *atomic.Int64, sc *burstScratch) (int, error) {
	if len(works) == 0 {
		return 0, nil
	}
	if lb.closed.Load() {
		return 0, ErrClosed
	}
	lb.inflight.Add(1)
	defer lb.inflight.Done()
	if lb.closed.Load() {
		return 0, ErrClosed
	}

	// Validate the whole burst before reserving anything: an invalid work
	// mid-burst must not abandon queue reservations and ledger entries
	// already staged for earlier jobs.
	for _, work := range works {
		if !(work > 0) || work > 1e9 {
			//lint:allow hotpath rejected-input error exit; never taken on the accept path
			return 0, fmt.Errorf("lb: job work %v outside (0, 1e9]", work)
		}
	}

	d := lb.dispatchers.Get().(*dispatcher)
	if lb.workAware {
		d.view.nowNs = arrival.UnixNano()
	}
	sc.jobs = sc.jobs[:0]
	sc.targets = sc.targets[:0]
	for _, work := range works {
		if j, target, ok := lb.admit(d, arrival, work, nil, counted); ok {
			//lint:allow hotpath scratch capacity is Batch-sized at construction; appends never grow it
			sc.jobs = append(sc.jobs, j)
			//lint:allow hotpath scratch capacity is Batch-sized at construction; appends never grow it
			sc.targets = append(sc.targets, int32(target))
		}
	}
	lb.dispatchers.Put(d)
	accepted := len(sc.jobs)

	// Send phase: one envelope per distinct target. Same-target jobs are
	// rare outside genuine bursts (the O(K²) group scan is over ≤ Batch
	// int32s), and each group preserves arrival order. Sends cannot
	// block: every staged job holds a queue reservation, and an envelope
	// occupies at most as many channel slots as reservations it carries.
	for i := range sc.jobs {
		t := sc.targets[i]
		if t < 0 {
			continue // already sent in an earlier group
		}
		group := 1
		for j := i + 1; j < len(sc.targets); j++ {
			if sc.targets[j] == t {
				group++
			}
		}
		if group == 1 {
			if h := sc.jobs[i].trace; h >= 0 {
				lb.tr.Enqueued(h, lb.rel(time.Now()))
			}
			lb.servers[t].ch <- envelope{j: sc.jobs[i]}
			continue
		}
		buf := batchPool.Get().(*[]job)
		//lint:allow hotpath pooled buffer reaches Batch capacity after warmup and stops growing
		*buf = append(*buf, sc.jobs[i])
		for j := i + 1; j < len(sc.targets); j++ {
			if sc.targets[j] == t {
				//lint:allow hotpath pooled buffer reaches Batch capacity after warmup and stops growing
				*buf = append(*buf, sc.jobs[j])
				sc.targets[j] = -1
			}
		}
		if lb.tr != nil {
			for _, bj := range *buf {
				if bj.trace >= 0 {
					lb.tr.Enqueued(bj.trace, lb.rel(time.Now()))
				}
			}
		}
		lb.servers[t].ch <- envelope{batch: buf}
	}
	return accepted, nil
}

// DrainStats reports the fate of every job accepted before Shutdown.
type DrainStats struct {
	Completed int64 // jobs fully served (including warmup)
	Rejected  int64 // jobs refused on a full queue over the farm's lifetime
	Abandoned int64 // jobs still queued when the drain deadline expired
}

// Shutdown stops admission and drains: it waits for in-flight dispatches,
// closes the server queues, and blocks until every queued job completes
// or ctx expires. Jobs are never lost — on deadline expiry the remaining
// ones are counted in Abandoned (and the servers keep draining them in
// the background; a later Shutdown call observes the progress). Safe to
// call multiple times.
func (lb *LB) Shutdown(ctx context.Context) (DrainStats, error) {
	lb.closed.Store(true)
	lb.inflight.Wait()
	lb.closeOnce.Do(func() {
		for _, s := range lb.servers {
			close(s.ch)
		}
	})
	done := make(chan struct{})
	go func() {
		lb.srvWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return DrainStats{Completed: lb.rec.Completed(), Rejected: lb.rejected.Load()}, nil
	case <-ctx.Done():
		// accepted is frozen (admission is closed), so accepted −
		// completed is an exact cut of the still-queued jobs — no window
		// against racing completions, unlike summing live queue lengths.
		st := DrainStats{Completed: lb.rec.Completed(), Rejected: lb.rejected.Load()}
		st.Abandoned = lb.accepted.Load() - st.Completed
		return st, ctx.Err()
	}
}
