// Package lb is the live side of the repository: a production-style
// concurrent load-balancer runtime that serves real traffic through the
// same dispatch policies the discrete-event simulator and the paper's QBD
// bound models reason about. N server goroutines drain bounded FIFO
// queues; a dispatcher routes each incoming job by sampling a sharded
// atomic queue-length table (SQ(d) stays O(d) with no global lock), a
// lock-free Treiber stack serves JIQ's idle hints, JSQ and LWL at
// N ≥ minindex.Threshold route through a lock-free hierarchical min-index
// over that table (O(log N) repair per dispatch/completion, O(log N)
// argmin per pick — see internal/minindex), and per-job service
// requirements are rendered in real time by a self-calibrating sleeper.
// Completions stream into a Recorder built on the simulator's own
// statistics (internal/stats), so live measurements come out in the same
// units — multiples of the mean service time — and can be laid directly
// against sim.Result and the paper's finite-N delay bounds. That closure
// is tested: the calibration suite drives this runtime with Poisson
// arrivals and exponential service and asserts the measured mean delay
// lands inside the QBD lower/upper bracket (see calibrate_test.go).
//
// The workload vocabulary is internal/workload, unchanged: any
// workload.Policy routes live traffic exactly as it routes simulated
// traffic, with two live-specific notes. Pickers are pooled per
// dispatching goroutine (the interfaces are documented single-goroutine),
// so stateful pickers like round-robin interleave across concurrent
// clients rather than cycling globally; and the JIQ policy is served by
// the idle stack — most-recently-idle rather than uniformly-random-idle,
// a distinction without a delay difference on homogeneous servers since
// either way the job starts service immediately.
package lb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"finitelb/internal/minindex"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// ErrClosed reports a dispatch attempted after Shutdown began.
var ErrClosed = errors.New("lb: dispatcher is shut down")

// ErrQueueFull reports a job refused because the picked server's bounded
// queue was at capacity. The caller sees loss semantics, as a real
// admission-controlled farm would; rejections are counted in the Summary.
var ErrQueueFull = errors.New("lb: picked server's queue is full")

// ErrNoServers reports a dispatch attempted while every server is down
// (crashed or departed and not yet restored).
var ErrNoServers = errors.New("lb: no live servers")

// Config describes a live farm.
type Config struct {
	// N is the number of servers (required, ≥ 1).
	N int
	// Policy routes each job; default SQ(2) (SQ(1) when N = 1), the
	// paper's dispatcher. Any workload.Policy works, including the
	// work-aware LWL.
	Policy workload.Policy
	// Speeds are per-server speed factors; nil means homogeneous unit
	// speed. A job of requirement w occupies server i for
	// w/Speeds[i] × MeanService of wall time.
	Speeds []float64
	// QueueCap bounds each server's queue, including the job in service;
	// a job routed to a full queue is rejected with ErrQueueFull.
	// Default 4096.
	QueueCap int
	// MeanService is the wall-clock length of one unit of work — the
	// scale knob mapping the model's service-time unit onto real time.
	// Default 1ms.
	MeanService time.Duration
	// Warmup completions are excluded from the Recorder's statistics
	// (counted, not measured). Default 0.
	Warmup int64
	// BatchSize is the per-server batch size for the batch-means
	// confidence interval. Default 200.
	BatchSize int64
	// Seed seeds the per-dispatcher RNGs. Live timing is inherently
	// nondeterministic; the seed only decorrelates sampling choices.
	// Default 1.
	Seed uint64
	// RetryBudget bounds redeliveries per job: a job orphaned by a crash
	// or graceful leave is requeued at most RetryBudget times before it
	// is dropped (counted, surfaced as Done.Dropped). 0 selects the
	// default of 3; negative disables redelivery entirely.
	RetryBudget int
	// RetryBackoff is the base of the jittered exponential backoff
	// applied before a requeued job is redispatched: attempt k waits
	// RetryBackoff × 2^(k−1), ±50% jitter, capped at 64× the base.
	// 0 redispatches immediately.
	RetryBackoff time.Duration
	// Deadline bounds each job's sojourn: a job whose service has not
	// begun Deadline after its arrival is dropped instead of served
	// (checked on the work clock at the instant service would start).
	// 0 = no deadline.
	Deadline time.Duration
	// Hedge, when > 0, arms a hedge timer per dispatched job: if service
	// has not started Hedge after dispatch, a duplicate is routed to
	// another server and whichever copy starts service first wins — the
	// other copy cancels at its own service start (one completion, one
	// record, however the race falls). Costs one allocation and one
	// timer per job; off (0) the dispatch path is unchanged.
	Hedge time.Duration
	// Chaos arms the failure-domain machinery from the start: service
	// sleeps are chunked crash-interruptible immediately, instead of
	// only after the first fault lands. Without it, jobs already in
	// service when the *first* crash arrives run to completion (later
	// faults interrupt normally) — fine for a farm that never churns,
	// surprising for one built to be crashed. Set it when churn is
	// expected (cmd/lbd does for -churn and -chaos); it costs a few
	// timer wake-ups per service, nothing on the dispatch path.
	Chaos bool
	// Trace, when non-nil, attaches a flight recorder: sampled jobs get
	// lifecycle spans (arrival → pick → enqueue → service start →
	// completion, with the chosen server and the queue length seen) and
	// per-stage delay sketches. Timestamps are nanoseconds relative to
	// the farm's start; build the recorder with Scale set to
	// MeanService's nanoseconds to read the stage sketches in
	// service-time units. Tracing costs one extra clock read per
	// *sampled* job on the dispatch path and zero allocations.
	Trace *trace.Recorder
}

func (c *Config) setDefaults() error {
	if c.N < 1 {
		return fmt.Errorf("lb: N = %d, need at least one server", c.N)
	}
	if c.Policy == nil {
		d := 2
		if c.N == 1 {
			d = 1
		}
		c.Policy = workload.SQD{D: d}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4096
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("lb: queue capacity %d, need ≥ 1", c.QueueCap)
	}
	if c.MeanService == 0 {
		c.MeanService = time.Millisecond
	}
	if c.MeanService <= 0 {
		return fmt.Errorf("lb: mean service %v, need > 0", c.MeanService)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("lb: warmup %d, need ≥ 0", c.Warmup)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("lb: retry backoff %v, need ≥ 0", c.RetryBackoff)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("lb: deadline %v, need ≥ 0", c.Deadline)
	}
	if c.Hedge < 0 {
		return fmt.Errorf("lb: hedge %v, need ≥ 0", c.Hedge)
	}
	return nil
}

// Done reports one completed job.
type Done struct {
	Server  int           // server that ran the job, −1 for a dropped job
	Sojourn time.Duration // arrival → completion (or drop)
	Service time.Duration // nominal service duration (work/speed × MeanService)
	Dropped bool          // the job left unserved: deadline expired or retry budget exhausted
}

// job travels from a dispatcher to a server goroutine.
type job struct {
	work    float64 // service requirement, work units
	workNs  int64   // requirement × MeanService, for the LWL work table
	arrival time.Time
	done    chan<- Done   // nil for fire-and-forget
	counted *atomic.Int64 // bumped at completion; lets a submitter await its own jobs
	// attempts counts redeliveries of this job (0 on first dispatch);
	// bounded by Config.RetryBudget.
	attempts int32
	// deadlineNs is the absolute drop deadline (UnixNano), 0 = none.
	deadlineNs int64
	// claim arbitrates hedged copies: nil for an unhedged job; otherwise
	// shared by every copy, and exactly one copy wins the 0→1 CAS at
	// service start (0→2 marks a drop). The losers clean up their queue
	// reservation and vanish without a record.
	claim *atomic.Int32
	// trace is the job's flight-recorder handle; meaningful only when
	// the farm has a recorder attached (always assigned then, mostly
	// trace.None). Ownership of the span follows the job: the dispatcher
	// writes up to Enqueued, the server writes Start/Done — the channel
	// send is the hand-off.
	trace trace.Handle
}

// rel converts a wall-clock instant to the recorder's timestamp unit:
// float64 nanoseconds since the farm's epoch (exact to well past a
// hundred days of uptime).
//
//finitelb:hotpath
func (lb *LB) rel(t time.Time) float64 { return float64(t.Sub(lb.epoch)) }

// Trace returns the attached flight recorder (nil when tracing is off).
func (lb *LB) Trace() *trace.Recorder { return lb.tr }

// LB is the live dispatcher runtime. Create with New, feed with Dispatch
// or Do (safe for arbitrary concurrent callers), stop with Shutdown.
type LB struct {
	cfg           Config
	n             int
	meanServiceNs float64
	speeds        []float64
	queueCap      int32

	slots   table
	idle    *idleStack
	servers []*server
	rec     *Recorder
	sleep   *sleeper
	tr      *trace.Recorder // nil = tracing off
	epoch   time.Time       // zero point of trace timestamps

	// Hierarchical min-indexes over the slot table (nil below
	// minindex.Threshold, or when the policy doesn't dispatch on a global
	// argmin). lenTree keys on qlen for JSQ; workTree keys on outwork
	// (outstanding nominal work, quantized to µs and divided by the
	// server's speed) for LWL. Dispatchers and servers repair the tree
	// after every slot write, so a JSQ/LWL pick is O(log N) instead of the
	// O(N) scan that caps throughput near 80k jobs/sec at N=1000.
	lenTree  *minindex.Conc
	workTree *minindex.Conc

	jiq       bool // Policy is workload.JIQ: dispatch via the idle stack
	workAware bool // Policy needs the per-server work table

	dispatchers sync.Pool // *dispatcher
	seedCtr     atomic.Uint64

	inflight  sync.WaitGroup // Dispatch calls between closed-check and enqueue
	srvWG     sync.WaitGroup
	closed    atomic.Bool
	closeOnce sync.Once
	accepted  atomic.Int64
	rejected  atomic.Int64

	// Failure-domain state. memberMu serializes the control-plane
	// membership ops (Leave/Crash/Join and the injectors); the data
	// plane reads only the per-slot atomics. stopCh is closed when
	// Shutdown begins: it flushes pending retry backoffs, unblocks a
	// dispatcher pause, and stops RunChurn. chClosed flips just before
	// the server channels close; redispatch brackets against it exactly
	// as submitAt brackets against closed. churny turns on the
	// crash-interruptible (chunked) service sleep the first time any
	// fault is injected, so churn-free farms keep the single-sleep path.
	memberMu sync.Mutex
	alive    atomic.Int32
	stopCh   chan struct{}
	stopOnce sync.Once
	chClosed atomic.Bool
	retryWG  sync.WaitGroup
	churny   atomic.Bool
	pause    atomic.Pointer[chan struct{}]

	// liveList is the compact list of live server ids, republished (and
	// liveSeq bumped) under memberMu on every membership change. It
	// exists for the degraded-mode SQ(d) pick: sampling d servers from
	// the live set keeps the policy's law — and therefore the QBD
	// bracket solved at (alive, ρ·N/alive) — intact while servers are
	// down, where sampling from all N would collapse SQ(d) toward
	// random routing on the survivors. sqdD caches the policy's d
	// (0 when the policy is not SQ(d)).
	sqdD     int
	liveSeq  atomic.Uint64
	liveList atomic.Pointer[[]int32]
}

// dispatcher is the per-goroutine picking state (the workload interfaces
// are documented single-goroutine): an RNG, a Picker, and the farm view
// it samples. sync.Pool keeps one per P in steady state, so picks stay
// lock-free.
type dispatcher struct {
	rng    *rand.Rand
	picker workload.Picker
	view   qview

	// Degraded-mode SQ(d) sampling state: a private copy of the farm's
	// live-server list (refreshed when liveSeq moves), permuted in place
	// by partial Fisher–Yates per pick.
	aliveSeq  uint64
	alivePerm []int32
}

// qview adapts the sharded table to the dispatcher's workload.Queues (and
// workload.WorkQueues) interfaces. nowNs is set per dispatch so that LWL
// sees in-service remainders at the arrival instant.
type qview struct {
	lb    *LB
	nowNs int64
}

func (q *qview) N() int { return q.lb.n }

// Len reports a down server as worst-possible so length-scanning
// pickers (SQ(d) samples, the small-N JSQ reference scan, JIQ's
// idle-scan) route around it; admit's post-pick liveness check is then
// only a race backstop, not the routing mechanism.
//
//finitelb:hotpath
func (q *qview) Len(i int) int {
	if q.lb.slots[i].down.Load() {
		return math.MaxInt32
	}
	return int(q.lb.slots[i].qlen.Load())
}

// Work implements workload.WorkQueues: the server's time-to-drain in
// service-time units — queued (not yet started) work divided by the
// server's speed, plus the in-service wall-clock remainder.
//finitelb:hotpath
func (q *qview) Work(i int) float64 {
	s := &q.lb.slots[i]
	if s.down.Load() {
		return math.Inf(1)
	}
	w := float64(s.pending.Load()) / q.lb.speeds[i]
	if dl := s.deadline.Load(); dl != 0 {
		if rem := dl - q.nowNs; rem > 0 {
			w += float64(rem)
		}
	}
	return w / q.lb.meanServiceNs
}

// ArgminLen implements workload.ArgminQueues when the length index is on:
// a uniformly-tie-broken shortest queue in O(log N) tree reads.
//finitelb:hotpath
func (q *qview) ArgminLen(rng *rand.Rand) (int, bool) {
	if t := q.lb.lenTree; t != nil {
		return t.Argmin(rng), true
	}
	return 0, false
}

// ArgminWork implements workload.ArgminWorkQueues when the work index is
// on. The index orders servers by outstanding nominal work — every
// accepted job's full requirement until it completes — rather than the
// scan view's queued-work-plus-in-service-remainder, so it overstates a
// busy server by at most the elapsed part of its in-service job; both
// orderings agree whenever backlogs differ by at least one job, which is
// when LWL's choice matters.
//finitelb:hotpath
func (q *qview) ArgminWork(rng *rand.Rand) (int, bool) {
	if t := q.lb.workTree; t != nil {
		return t.Argmin(rng), true
	}
	return 0, false
}

// New validates cfg, starts the N server goroutines, and returns a
// running farm.
func New(cfg Config) (*LB, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if _, err := cfg.Policy.NewPicker(cfg.N); err != nil {
		return nil, err
	}
	speeds := cfg.Speeds
	if speeds == nil {
		speeds = make([]float64, cfg.N)
		for i := range speeds {
			speeds[i] = 1
		}
	} else if len(speeds) != cfg.N {
		return nil, fmt.Errorf("lb: %d speed factors for N = %d servers", len(speeds), cfg.N)
	}
	for i, s := range speeds {
		if !(s > 0) {
			return nil, fmt.Errorf("lb: speed[%d] = %v, need > 0", i, s)
		}
	}

	lb := &LB{
		cfg:           cfg,
		n:             cfg.N,
		meanServiceNs: float64(cfg.MeanService.Nanoseconds()),
		speeds:        speeds,
		queueCap:      int32(cfg.QueueCap),
		slots:         newTable(cfg.N),
		rec:           newRecorder(cfg.N, cfg.MeanService, cfg.Warmup, cfg.BatchSize),
		sleep:         newSleeper(),
		tr:            cfg.Trace,
		epoch:         time.Now(),
		stopCh:        make(chan struct{}),
	}
	lb.alive.Store(int32(cfg.N))
	if cfg.Chaos {
		lb.churny.Store(true)
	}
	if p, ok := cfg.Policy.(workload.SQD); ok {
		lb.sqdD = p.D
	}
	full := make([]int32, cfg.N)
	for i := range full { //lint:allow atomicfield list is plain-built before the publishing Store, immutable after; the Store is the release fence
		full[i] = int32(i)
	}
	lb.liveList.Store(&full)
	_, lb.jiq = cfg.Policy.(workload.JIQ)
	_, lb.workAware = cfg.Policy.(workload.WorkAware)
	if cfg.N >= minindex.Threshold {
		switch cfg.Policy.(type) {
		case workload.JSQ:
			lb.lenTree = minindex.NewConc(cfg.N, func(i int) uint32 {
				if lb.slots[i].down.Load() {
					// A down server keys at the ceiling so the argmin
					// routes around it whenever anyone is alive.
					return ^uint32(0)
				}
				if l := lb.slots[i].qlen.Load(); l > 0 {
					return uint32(l)
				}
				return 0
			})
		case workload.LWL:
			lb.workTree = minindex.NewConc(cfg.N, func(i int) uint32 {
				if lb.slots[i].down.Load() {
					return ^uint32(0)
				}
				us := float64(lb.slots[i].outwork.Load()) / lb.speeds[i] / 1e3
				if us >= float64(^uint32(0)) {
					return ^uint32(0)
				}
				if us <= 0 {
					return 0
				}
				return uint32(us)
			})
		}
	}
	if lb.jiq {
		lb.idle = newIdleStack(cfg.N)
		for i := 0; i < cfg.N; i++ {
			lb.slots[i].onStack.Store(true)
			lb.idle.push(i)
		}
	}
	lb.dispatchers.New = func() any {
		picker, err := cfg.Policy.NewPicker(cfg.N)
		if err != nil {
			// Unreachable: the same constructor succeeded above.
			panic("lb: NewPicker failed after validation: " + err.Error())
		}
		d := &dispatcher{
			rng:    rand.New(rand.NewPCG(cfg.Seed, lb.seedCtr.Add(1))),
			picker: picker,
		}
		d.view.lb = lb
		return d
	}

	lb.servers = make([]*server, cfg.N)
	lb.srvWG.Add(cfg.N)
	for i := range lb.servers {
		lb.servers[i] = &server{
			id:    i,
			speed: speeds[i],
			ch:    make(chan envelope, cfg.QueueCap),
		}
		go lb.servers[i].run(lb)
	}
	return lb, nil
}

// N returns the number of servers.
func (lb *LB) N() int { return lb.n }

// QueueLens snapshots every server's current queue length (including the
// job in service) — the same view the dispatch policies sample.
func (lb *LB) QueueLens() []int {
	lens := make([]int, lb.n)
	for i := range lens {
		lens[i] = int(lb.slots[i].qlen.Load())
	}
	return lens
}

// Recorder exposes the live measurement stream.
func (lb *LB) Recorder() *Recorder { return lb.rec }

// Summary snapshots the current statistics, including rejects.
func (lb *LB) Summary() Summary {
	s := lb.rec.Snapshot()
	s.Rejected = lb.rejected.Load()
	return s
}

// Dispatch routes one job of the given service requirement (in work
// units; 1.0 is a mean-sized job) to a server and returns without waiting
// for it. The job's sojourn is recorded by the runtime.
func (lb *LB) Dispatch(work float64) error {
	_, err := lb.submit(work, nil, nil)
	return err
}

// Do routes one job and waits for its completion (or ctx expiry — the job
// itself still runs to completion and is recorded; only the wait is
// abandoned).
func (lb *LB) Do(ctx context.Context, work float64) (Done, error) {
	ch := make(chan Done, 1)
	if _, err := lb.submit(work, ch, nil); err != nil {
		return Done{}, err
	}
	select {
	case d := <-ch:
		return d, nil
	case <-ctx.Done():
		return Done{}, ctx.Err()
	}
}

//finitelb:hotpath
func (lb *LB) submit(work float64, done chan<- Done, counted *atomic.Int64) (int, error) {
	return lb.submitAt(time.Now(), work, done, counted)
}

// submitAt is submit with the arrival stamp supplied by the caller: the
// load generator's burst path drains several overdue arrivals per sleeper
// wake-up and stamps the whole burst with one clock read.
//finitelb:hotpath
func (lb *LB) submitAt(arrival time.Time, work float64, done chan<- Done, counted *atomic.Int64) (int, error) {
	if !(work > 0) || work > 1e9 {
		//lint:allow hotpath rejected-input error exit; never taken on the accept path
		return -1, fmt.Errorf("lb: job work %v outside (0, 1e9]", work)
	}
	if p := lb.pause.Load(); p != nil {
		if err := lb.pauseWait(p); err != nil {
			return -1, err
		}
	}
	if lb.closed.Load() {
		return -1, ErrClosed
	}
	// The inflight group brackets the closed-check-to-enqueue window:
	// Shutdown flips closed and then waits for it, so no enqueue can race
	// past a closed channel.
	lb.inflight.Add(1)
	defer lb.inflight.Done()
	if lb.closed.Load() {
		return -1, ErrClosed
	}

	d := lb.dispatchers.Get().(*dispatcher)
	if lb.workAware {
		d.view.nowNs = arrival.UnixNano()
	}
	j := job{work: work, arrival: arrival, done: done, counted: counted, trace: trace.None}
	if lb.tr != nil {
		j.trace = lb.tr.Start(lb.rel(arrival))
	}
	if lb.cfg.Deadline > 0 {
		j.deadlineNs = arrival.Add(lb.cfg.Deadline).UnixNano()
	}
	target, err := lb.admit(d, &j)
	lb.dispatchers.Put(d)
	if err != nil {
		if j.trace >= 0 {
			lb.tr.Abort(j.trace)
		}
		return target, err
	}
	lb.accepted.Add(1)
	if lb.cfg.Hedge > 0 {
		lb.armHedge(&j, target)
	}
	if j.trace >= 0 {
		lb.tr.Enqueued(j.trace, lb.rel(time.Now()))
	}
	// Cannot block: qlen ≤ QueueCap bounds channel occupancy by the
	// channel's own capacity (an envelope never carries more jobs than
	// queue reservations).
	lb.servers[target].ch <- envelope{j: j}
	return target, nil
}

// admit is the per-job admission stage shared by submitAt, submitBurst
// and the redelivery path: pick a live target with the caller's
// dispatcher (the caller sets d.view.nowNs under a work-aware policy),
// reserve a queue slot, and update every ledger and index. The job is
// prebuilt by the caller — admit never creates or aborts trace spans
// and never counts acceptance, so redeliveries of an already-accepted
// job reuse it unchanged. ErrQueueFull means the picked server's queue
// was full (the rejection is counted, nothing needs unwinding);
// ErrNoServers means every server is down. The caller owns the send.
//finitelb:hotpath
func (lb *LB) admit(d *dispatcher, j *job) (int, error) {
	var target int
	if lb.jiq {
		// JIQ fast path: pop an idle hint in O(1), discarding hints from
		// servers that went down since they reported idle; fall back to a
		// uniform pick when nobody live has reported idle.
		for {
			var ok bool
			if target, ok = lb.idle.tryPop(); !ok {
				target = d.rng.IntN(lb.n)
				break
			}
			lb.slots[target].onStack.Store(false)
			if !lb.slots[target].down.Load() {
				break
			}
		}
	} else if lb.sqdD > 0 && lb.alive.Load() < int32(lb.n) {
		// Degraded farm under SQ(d): sample from the live set, not all N.
		// Healthy farms never take this branch, so their picker draw
		// sequence is untouched.
		target = lb.pickSQDLive(d)
		if target < 0 {
			return -1, ErrNoServers
		}
	} else {
		target = d.picker.Pick(d.rng, &d.view)
	}
	if lb.slots[target].down.Load() {
		// The policy's pick raced a membership change (or scans a view
		// that doesn't know about liveness): probe for the next live
		// server instead of bouncing the job.
		if target = lb.nextAlive(target, d); target < 0 {
			return -1, ErrNoServers
		}
	}
	s := &lb.slots[target]
	newLen := s.qlen.Add(1)
	if newLen > lb.queueCap {
		// Net-zero qlen change: the min-index never saw the reservation,
		// so there is nothing to repair.
		s.qlen.Add(-1)
		lb.rejected.Add(1)
		return target, ErrQueueFull
	}
	if lb.lenTree != nil {
		lb.lenTree.Update(target)
	}
	lb.rec.observeQueue(int(newLen))
	if j.trace >= 0 {
		// One clock read per sampled job; live pickers don't report tie
		// counts (the simulator's side of the recorder does). A
		// redelivery re-stamps, so the span shows the final routing.
		lb.tr.Picked(j.trace, lb.rel(time.Now()), target, int(newLen-1), -1)
	}
	if lb.workAware {
		j.workNs = int64(j.work * lb.meanServiceNs)
		s.pending.Add(j.workNs)
		if lb.workTree != nil {
			s.outwork.Add(j.workNs)
			lb.workTree.Update(target)
		}
	}
	return target, nil
}

// pickSQDLive is the degraded-mode SQ(d) pick: d distinct samples drawn
// by partial Fisher–Yates over the dispatcher's copy of the live-server
// list, least queue wins with uniform tie-breaking — the same law as
// workload.SQD's picker, restricted to the survivors. The copy refreshes
// whenever membership moves (liveSeq); a pick landing on a server that
// went down after the copy is repaired by admit's liveness backstop.
// Returns −1 only if the live list is empty (alive ≥ 1 is a membership
// invariant, so in practice only during teardown races).
func (lb *LB) pickSQDLive(d *dispatcher) int {
	if seq := lb.liveSeq.Load(); seq != d.aliveSeq || len(d.alivePerm) == 0 {
		d.alivePerm = append(d.alivePerm[:0], *lb.liveList.Load()...)
		d.aliveSeq = seq
	}
	perm := d.alivePerm
	m := len(perm)
	if m == 0 {
		return -1
	}
	dd := lb.sqdD
	if dd > m {
		dd = m
	}
	best, bestLen, ties := -1, math.MaxInt, 0
	for k := 0; k < dd; k++ {
		j := k + d.rng.IntN(m-k)
		perm[k], perm[j] = perm[j], perm[k]
		s := int(perm[k])
		switch l := int(lb.slots[s].qlen.Load()); {
		case l < bestLen:
			best, bestLen, ties = s, l, 1
		case l == bestLen:
			ties++
			if d.rng.IntN(ties) == 0 {
				best = s
			}
		}
	}
	return best
}

// nextAlive scans for a live server starting after from; a uniformly
// random rotation decorrelates concurrent dispatchers racing the same
// membership change. Returns −1 when every server is down.
//finitelb:hotpath
func (lb *LB) nextAlive(from int, d *dispatcher) int {
	off := d.rng.IntN(lb.n)
	for k := 0; k < lb.n; k++ {
		i := (from + 1 + off + k) % lb.n
		if !lb.slots[i].down.Load() {
			return i
		}
	}
	return -1
}

// burstScratch is the reusable staging area of one generator goroutine's
// submitBurst calls; it keeps the burst path allocation-free apart from
// the pooled per-send buffers.
type burstScratch struct {
	jobs    []job
	targets []int32
}

// submitBurst routes a burst of jobs sharing one arrival stamp — the
// load generator's overdue arrivals drained on a single wake-up — and
// coalesces all jobs routed to the same server into one channel send
// (ROADMAP PR-4 follow-up: one send per server per wake-up). Target
// picks consume the dispatcher rng exactly as the same sequence of
// submitAt calls would, so D = 1 runs stay draw-identical to the
// unbatched generator; per-job admission is unchanged (full queues
// reject individual jobs, counted by the farm). It returns the number of
// jobs accepted.
//finitelb:hotpath
func (lb *LB) submitBurst(arrival time.Time, works []float64, counted *atomic.Int64, sc *burstScratch) (int, error) {
	if len(works) == 0 {
		return 0, nil
	}
	if p := lb.pause.Load(); p != nil {
		if err := lb.pauseWait(p); err != nil {
			return 0, err
		}
	}
	if lb.closed.Load() {
		return 0, ErrClosed
	}
	lb.inflight.Add(1)
	defer lb.inflight.Done()
	if lb.closed.Load() {
		return 0, ErrClosed
	}

	// Validate the whole burst before reserving anything: an invalid work
	// mid-burst must not abandon queue reservations and ledger entries
	// already staged for earlier jobs.
	for _, work := range works {
		if !(work > 0) || work > 1e9 {
			//lint:allow hotpath rejected-input error exit; never taken on the accept path
			return 0, fmt.Errorf("lb: job work %v outside (0, 1e9]", work)
		}
	}

	d := lb.dispatchers.Get().(*dispatcher)
	if lb.workAware {
		d.view.nowNs = arrival.UnixNano()
	}
	deadlineNs := int64(0)
	if lb.cfg.Deadline > 0 {
		deadlineNs = arrival.Add(lb.cfg.Deadline).UnixNano()
	}
	sc.jobs = sc.jobs[:0]
	sc.targets = sc.targets[:0]
	for _, work := range works {
		j := job{work: work, arrival: arrival, counted: counted, deadlineNs: deadlineNs, trace: trace.None}
		if lb.tr != nil {
			j.trace = lb.tr.Start(lb.rel(arrival))
		}
		target, err := lb.admit(d, &j)
		if err != nil {
			if j.trace >= 0 {
				lb.tr.Abort(j.trace)
			}
			continue
		}
		lb.accepted.Add(1)
		//lint:allow hotpath scratch capacity is Batch-sized at construction; appends never grow it
		sc.jobs = append(sc.jobs, j)
		//lint:allow hotpath scratch capacity is Batch-sized at construction; appends never grow it
		sc.targets = append(sc.targets, int32(target))
	}
	lb.dispatchers.Put(d)
	accepted := len(sc.jobs)

	// Send phase: one envelope per distinct target. Same-target jobs are
	// rare outside genuine bursts (the O(K²) group scan is over ≤ Batch
	// int32s), and each group preserves arrival order. Sends cannot
	// block: every staged job holds a queue reservation, and an envelope
	// occupies at most as many channel slots as reservations it carries.
	for i := range sc.jobs {
		t := sc.targets[i]
		if t < 0 {
			continue // already sent in an earlier group
		}
		group := 1
		for j := i + 1; j < len(sc.targets); j++ {
			if sc.targets[j] == t {
				group++
			}
		}
		if group == 1 {
			if h := sc.jobs[i].trace; h >= 0 {
				lb.tr.Enqueued(h, lb.rel(time.Now()))
			}
			lb.servers[t].ch <- envelope{j: sc.jobs[i]}
			continue
		}
		buf := batchPool.Get().(*[]job)
		//lint:allow hotpath pooled buffer reaches Batch capacity after warmup and stops growing
		*buf = append(*buf, sc.jobs[i])
		for j := i + 1; j < len(sc.targets); j++ {
			if sc.targets[j] == t {
				//lint:allow hotpath pooled buffer reaches Batch capacity after warmup and stops growing
				*buf = append(*buf, sc.jobs[j])
				sc.targets[j] = -1
			}
		}
		if lb.tr != nil {
			for _, bj := range *buf {
				if bj.trace >= 0 {
					lb.tr.Enqueued(bj.trace, lb.rel(time.Now()))
				}
			}
		}
		lb.servers[t].ch <- envelope{batch: buf}
	}
	return accepted, nil
}

// DrainStats reports the fate of every job accepted before Shutdown.
type DrainStats struct {
	Completed int64 // jobs fully served (including warmup)
	Rejected  int64 // jobs refused on a full queue over the farm's lifetime
	Dropped   int64 // jobs dropped after acceptance: deadline, retry budget, or a redelivery overtaken by shutdown
	Abandoned int64 // jobs still queued when the drain deadline expired
}

// Shutdown stops admission and drains: it waits for in-flight
// dispatches, flushes pending retry backoffs, closes the server queues,
// and blocks until every queued job completes or ctx expires. Every
// accepted job is accounted for: served (Completed), dropped with a
// count and a final-outcome span (Dropped — deadline expiry, exhausted
// redelivery budget, or a redelivery whose only remaining targets were
// down), or — on deadline expiry only — still queued (Abandoned; the
// servers keep draining in the background and a later Shutdown call
// observes the progress). Safe to call multiple times.
func (lb *LB) Shutdown(ctx context.Context) (DrainStats, error) {
	lb.closed.Store(true)
	lb.stopOnce.Do(func() { close(lb.stopCh) })
	// A paused dispatcher would hold submitters (and RunChurn timers)
	// forever; release them so they observe closed and exit.
	lb.ResumeDispatch()
	// External submissions quiesce first, then the retry goroutines —
	// stopCh made every pending backoff flush its redelivery
	// immediately, and those sends are synchronous in the goroutines
	// retryWG tracks.
	lb.inflight.Wait()
	lb.retryWG.Wait()
	// The only senders left are server goroutines redelivering jobs off
	// down servers. Those sends bracket in inflight against chClosed the
	// way submitAt brackets against closed, so after this second Wait no
	// send can race the close below; later redeliveries observe chClosed
	// and finalize as drops instead.
	lb.chClosed.Store(true)
	lb.inflight.Wait()
	lb.closeOnce.Do(func() {
		for _, s := range lb.servers {
			close(s.ch)
		}
	})
	done := make(chan struct{})
	go func() {
		lb.srvWG.Wait()
		close(done)
	}()
	stats := func() DrainStats {
		return DrainStats{
			Completed: lb.rec.Completed(),
			Rejected:  lb.rejected.Load(),
			Dropped:   lb.rec.dropped.Load(),
		}
	}
	select {
	case <-done:
		return stats(), nil
	case <-ctx.Done():
		// accepted is frozen (admission is closed), so accepted −
		// completed − dropped is an exact cut of the still-queued jobs —
		// no window against racing completions, unlike summing live
		// queue lengths.
		st := stats()
		st.Abandoned = lb.accepted.Load() - st.Completed - st.Dropped
		return st, ctx.Err()
	}
}
