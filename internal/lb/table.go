package lb

import "sync/atomic"

// slot is one server's entry in the sharded dispatch-state table. Each
// slot is padded to its own pair of cache lines so that the per-dispatch
// queue-length increment on one server never invalidates the line a
// concurrent SQ(d) sample of a *different* server is reading — the table
// is the lock-free replacement for a mutex-guarded length array, keeping
// an SQ(d) pick at exactly d atomic loads with no shared write hotspot.
type slot struct {
	// pending is the outstanding not-yet-started work at this server in
	// work-nanoseconds (requirement × MeanService, speed-independent),
	// maintained only under a work-aware policy (LWL): the dispatcher adds
	// a job's work when it enqueues, the server subtracts it when the job
	// enters service.
	pending atomic.Int64
	// deadline is the absolute completion time (UnixNano) of the job in
	// service, 0 when none; maintained only under a work-aware policy. The
	// LWL view adds the remainder deadline−now to pending.
	deadline atomic.Int64
	// outwork is the server's outstanding nominal work in work-nanoseconds
	// — every accepted job's requirement from dispatch until *completion*
	// (unlike pending, which a job leaves at service start). It is the
	// authoritative key behind the LWL min-index and is maintained only
	// when that index is active (policy LWL at N ≥ minindex.Threshold);
	// the scan path keeps reading pending + deadline.
	outwork atomic.Int64
	// stallUntil is the instant (UnixNano) until which the server is
	// frozen by a fault injection: service starts are pushed past it.
	// 0 = not stalled.
	stallUntil atomic.Int64
	// slowBits is the float64 bit pattern of the server's
	// speed-degradation factor (service durations multiply by it);
	// 0 = no degradation.
	slowBits atomic.Uint64
	// qlen is the queue length including the job in service — the value
	// behind the workload.Queues view every picker samples. The dispatcher
	// increments it to reserve a queue position (rolling back on a full
	// queue), the server decrements it at completion, so it can
	// transiently overshoot the true length by an in-flight reservation
	// but never undercounts.
	qlen atomic.Int32
	// onStack guards against double-pushing this server onto the JIQ idle
	// stack: only a false→true transition pushes.
	onStack atomic.Bool
	// down marks the server out of the farm (Leave/Crash): pickers route
	// around it and its goroutine requeues everything it dequeues.
	down atomic.Bool
	// crashed additionally interrupts the in-service job (the chunked
	// service sleep polls it); cleared on Join.
	crashed atomic.Bool

	_ [128 - 8 - 8 - 8 - 8 - 8 - 4 - 1 - 1 - 1]byte
}

// table is the farm's sharded atomic state, one padded slot per server.
type table []slot

func newTable(n int) table { return make(table, n) }
