package lb

import (
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"finitelb"
	"finitelb/internal/qbd"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

// The headline oracle of the live runtime: drive it with real
// wall-clock Poisson arrivals and exponential service under SQ(2), and
// assert the *measured* mean sojourn falls inside the paper's finite-N
// QBD delay bracket. This ties the running concurrent system — goroutine
// servers, atomic dispatch tables, real elapsed time — back to the
// Theorem-level guarantees the repository computes analytically, and is
// the "from model to machine" closure described in doc.go.
//
// Slack policy: the bracket is widened by 5× the batch-means CI
// half-width (statistical noise) plus an absolute allowance for
// completion-observation lateness (the Summary.MeanService gauge measures
// it; on sharp-timer hosts it is ~0). The test therefore has teeth
// against systemic errors — a wrong arrival rate, broken dispatch
// sampling, lost jobs, compounding service inflation — while staying
// robust to host timer jitter. Skipped under -short: it needs tens of
// real-time seconds of traffic.
func TestLiveDelayWithinQBDBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("live calibration needs wall-clock traffic")
	}
	for _, c := range []struct {
		n    int
		rho  float64
		jobs int64
	}{
		{2, 0.7, 4000},
		{2, 0.9, 4000},
		{10, 0.7, 8000},
		{10, 0.9, 8000},
	} {
		lo, hi := qbdBracket(t, c.n, c.rho)
		s := runLive(t, c.n, workload.SQD{D: 2}, c.rho, c.jobs)
		// Observation lateness in service units: the gauge's excess over
		// the nominal unit mean, floored at a modest allowance.
		lateness := math.Max(s.MeanService-1, 0.1)
		slack := 5*s.HalfWidth + 2*lateness
		t.Logf("N=%d ρ=%g: live %.4f ± %.4f ∈ [%.4f, %.4f]? (slack %.3f, svc gauge %.3f, maxQ %d)",
			c.n, c.rho, s.MeanDelay, s.HalfWidth, lo, hi, slack, s.MeanService, s.MaxQueue)
		if s.MeanDelay < lo-slack || s.MeanDelay > hi+slack {
			t.Errorf("N=%d ρ=%g: live mean delay %v outside QBD bounds [%v, %v] (slack %v)",
				c.n, c.rho, s.MeanDelay, lo, hi, slack)
		}
		if s.Rejected != 0 {
			t.Errorf("N=%d ρ=%g: %d rejects with an effectively unbounded queue", c.n, c.rho, s.Rejected)
		}
		// Distributional calibration (PR 8): the measured p99 should land
		// inside the predicted quantile bracket from the arrival-join-level
		// distribution (finitelb.DelayDistributionBracket — the same solve
		// behind lbd's predicted gauges). The p99 estimate rides on ~1% of
		// the measured jobs, so the slack is proportionally wider than the
		// mean check's; this still has teeth against systemic errors, which
		// move the tail by factors, not percents.
		if lo99, hi99, ok := qbdP99Bracket(t, c.n, c.rho); ok {
			slack99 := 0.25*hi99 + 2*lateness
			t.Logf("N=%d ρ=%g: live p99 %.4f ∈ [%.4f, %.4f]? (slack %.3f)",
				c.n, c.rho, s.P99, lo99, hi99, slack99)
			if s.P99 < lo99-slack99 || s.P99 > hi99+slack99 {
				t.Errorf("N=%d ρ=%g: live p99 %v outside predicted bracket [%v, %v] (slack %v)",
					c.n, c.rho, s.P99, lo99, hi99, slack99)
			}
		}
	}
}

// qbdP99Bracket solves the delay-distribution bracket for SQ(2) at
// (n, rho) and returns the predicted p99 interval. The N=10 ρ=0.9 cell is
// skipped (ok=false): its upper-bound chain is first stable at T=5, a
// minutes-long solve (see the pinned mean constants above).
func qbdP99Bracket(t *testing.T, n int, rho float64) (lo, hi float64, ok bool) {
	t.Helper()
	if n == 10 && rho == 0.9 {
		return 0, 0, false
	}
	sys, err := finitelb.NewSystem(n, 2, rho)
	if err != nil {
		t.Fatal(err)
	}
	for T := 3; T <= 4; T++ {
		br, err := sys.DelayDistributionBracket(T)
		if errors.Is(err, finitelb.ErrUnstable) {
			continue
		}
		if err != nil {
			t.Fatalf("N=%d ρ=%g T=%d: distribution bracket: %v", n, rho, T, err)
		}
		lo, hi = br.Quantile(0.99)
		return lo, hi, true
	}
	t.Fatalf("N=%d ρ=%g: no stable distribution bracket by T=4", n, rho)
	return 0, 0, false
}

// TestLivePolicyOrderingHolds runs the same live harness across the
// policy spectrum at equal load and asserts the information ordering the
// simulator pins analytically: the informed policies (JSQ, LWL, JIQ)
// beat two-sample SQ(2), which beats blind random. Under exponential
// service LWL and JSQ are near-equivalent (queue length is a good work
// proxy there), so LWL is asserted against SQ(2), not JSQ.
func TestLivePolicyOrderingHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("live ordering needs wall-clock traffic")
	}
	const (
		n    = 8
		rho  = 0.85
		jobs = 8000
	)
	run := func(p workload.Policy) Summary { return runLive(t, n, p, rho, jobs) }
	jsq := run(workload.JSQ{})
	lwl := run(workload.LWL{})
	jiq := run(workload.JIQ{})
	sq2 := run(workload.SQD{D: 2})
	rnd := run(workload.Random{})
	t.Logf("live N=%d ρ=%g: jsq %.3f lwl %.3f jiq %.3f sq2 %.3f random %.3f",
		n, rho, jsq.MeanDelay, lwl.MeanDelay, jiq.MeanDelay, sq2.MeanDelay, rnd.MeanDelay)

	expectBelow := func(name string, a, b Summary) {
		t.Helper()
		if !(a.MeanDelay+a.HalfWidth < b.MeanDelay-b.HalfWidth) {
			t.Errorf("live %s: %v ± %v not below %v ± %v",
				name, a.MeanDelay, a.HalfWidth, b.MeanDelay, b.HalfWidth)
		}
	}
	expectBelow("JSQ < SQ(2)", jsq, sq2)
	expectBelow("LWL < SQ(2)", lwl, sq2)
	expectBelow("JIQ < random", jiq, rnd)
	expectBelow("SQ(2) < random", sq2, rnd)
}

// runLive builds a farm and pushes one open-loop Poisson/exponential run
// through it.
func runLive(t *testing.T, n int, policy workload.Policy, rho float64, jobs int64) Summary {
	t.Helper()
	lb, err := New(Config{
		N:           n,
		Policy:      policy,
		MeanService: 2 * time.Millisecond,
		Warmup:      jobs / 10,
		BatchSize:   max(jobs/(20*int64(n)), 20),
		QueueCap:    1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := lb.RunLoadGen(context.Background(), GenConfig{Rho: rho, Jobs: jobs, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	mustShutdown(t, lb)
	return s
}

// Pinned QBD bounds for N=10, d=2, ρ=0.9 at T=5 (block size 2002): the
// upper-bound model is first stable at T=5 there, and that solve takes
// minutes — far beyond a test budget — so the values are computed once
// and pinned. Regenerate (and verify) with:
//
//	FINITELB_REGEN_QBD=1 go test -run TestPinnedQBDBounds -timeout 30m ./internal/lb
const (
	pinnedLowerN10R09 = 2.8803205427891676 // LowerBound(5), improved (Theorem 3)
	pinnedUpperN10R09 = 3.706005528554274  // UpperBound(5)
)

// qbdBracket returns the paper's [lower, upper] mean-delay bracket for
// SQ(2) at (n, rho), solving the cheap configurations inline and using
// the pinned constants where the solve is test-prohibitive.
func qbdBracket(t *testing.T, n int, rho float64) (lo, hi float64) {
	t.Helper()
	if n == 10 && rho == 0.9 {
		return pinnedLowerN10R09, pinnedUpperN10R09
	}
	p := sqd.Params{N: n, D: 2, Rho: rho}
	// Walk T up from 3 (sharper than the first-stable threshold, still
	// cheap: block size ≤ 220 for these configurations).
	for T := 3; T <= 4; T++ {
		bp := sqd.BoundParams{Params: p, T: T}
		hiSol, err := qbd.Solve(&sqd.UpperBound{P: bp}, qbd.Options{})
		if err != nil {
			continue
		}
		loSol, err := qbd.Solve(&sqd.LowerBound{P: bp}, qbd.Options{ImprovedLB: true})
		if err != nil {
			t.Fatalf("N=%d ρ=%g T=%d: lower bound: %v", n, rho, T, err)
		}
		return loSol.MeanDelay, hiSol.MeanDelay
	}
	t.Fatalf("N=%d ρ=%g: no stable upper bound by T=4", n, rho)
	return 0, 0
}

// TestPinnedQBDBounds recomputes the pinned N=10 ρ=0.9 bracket from the
// QBD solvers and compares. Solving at T=5 takes minutes, so it only
// runs when FINITELB_REGEN_QBD is set.
func TestPinnedQBDBounds(t *testing.T) {
	if os.Getenv("FINITELB_REGEN_QBD") == "" {
		t.Skip("set FINITELB_REGEN_QBD=1 to re-solve the pinned T=5 bracket (takes minutes)")
	}
	bp := sqd.BoundParams{Params: sqd.Params{N: 10, D: 2, Rho: 0.9}, T: 5}
	lo, err := qbd.Solve(&sqd.LowerBound{P: bp}, qbd.Options{ImprovedLB: true})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := qbd.Solve(&sqd.UpperBound{P: bp}, qbd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo.MeanDelay-pinnedLowerN10R09) > 1e-9 || math.Abs(hi.MeanDelay-pinnedUpperN10R09) > 1e-9 {
		t.Errorf("pinned bounds stale: solved [%.16g, %.16g], pinned [%.16g, %.16g]",
			lo.MeanDelay, hi.MeanDelay, pinnedLowerN10R09, pinnedUpperN10R09)
	}
}
