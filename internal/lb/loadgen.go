package lb

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"finitelb/internal/workload"
)

// GenConfig drives the built-in open-loop load generator: arrivals are
// scheduled on an absolute timeline from a workload.Arrival process (so
// pacing error never accumulates into rate drift), each job's service
// requirement is drawn from a workload.Service law, and the offered load
// is Rho × Σspeeds jobs per mean service time — the same parameterisation
// as the simulator and the analytic models, which is what makes the
// resulting Summary directly comparable to both.
type GenConfig struct {
	// Arrival is the interarrival process; default workload.Poisson{}.
	Arrival workload.Arrival
	// Service draws each job's requirement; default workload.Exponential{}.
	Service workload.Service
	// Rho is the per-server utilization, in (0, 1).
	Rho float64
	// Jobs is the number of jobs to offer (required, ≥ 1). Jobs rejected
	// on full queues still count as offered.
	Jobs int64
	// Seed for the generator's arrival and service draws; default 1.
	Seed uint64
}

// RunLoadGen offers g.Jobs jobs to the farm at the configured load,
// waits for every accepted job to complete, and returns the resulting
// Summary. It runs in the calling goroutine; ctx cancels early (the
// partial Summary is still returned). The farm stays running — callers
// own Shutdown.
func (lb *LB) RunLoadGen(ctx context.Context, g GenConfig) (Summary, error) {
	if g.Arrival == nil {
		g.Arrival = workload.Poisson{}
	}
	if g.Service == nil {
		g.Service = workload.Exponential{}
	}
	if g.Jobs < 1 {
		return Summary{}, fmt.Errorf("lb: load generator needs ≥ 1 job, got %d", g.Jobs)
	}
	if !(g.Rho > 0 && g.Rho < 1) {
		return Summary{}, fmt.Errorf("lb: load generator utilization ρ = %v outside (0, 1)", g.Rho)
	}
	if err := g.Service.Validate(); err != nil {
		return Summary{}, err
	}
	sum := 0.0
	for _, s := range lb.speeds {
		sum += s
	}
	src, err := g.Arrival.NewSource(g.Rho * sum)
	if err != nil {
		return Summary{}, err
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0xa0761d6478bd642f))

	// finished counts this generator's own completions, so the drain wait
	// below is immune to concurrent Do/Dispatch traffic on the same farm.
	var finished atomic.Int64
	var accepted int64
	next := time.Now()
	for k := int64(0); k < g.Jobs; k++ {
		next = next.Add(time.Duration(src.Next(rng) * lb.meanServiceNs))
		lb.sleep.sleepUntil(next)
		if ctx.Err() != nil {
			break
		}
		switch _, err := lb.submit(g.Service.Sample(rng), nil, &finished); err {
		case nil:
			accepted++
		case ErrQueueFull:
			// Counted by the farm; open-loop generators don't retry.
		default:
			return lb.Summary(), err
		}
	}

	// Drain: every accepted job completes (service times are finite), so
	// poll completions rather than plumbing a channel per job.
	for finished.Load() < accepted {
		if ctx.Err() != nil {
			return lb.Summary(), ctx.Err()
		}
		time.Sleep(2 * time.Millisecond)
	}
	return lb.Summary(), ctx.Err()
}
