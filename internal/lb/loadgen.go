package lb

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"finitelb/internal/workload"
)

// GenConfig drives the built-in open-loop load generator: arrivals are
// scheduled on an absolute timeline from a workload.Arrival process (so
// pacing error never accumulates into rate drift), each job's service
// requirement is drawn from a workload.Service law, and the offered load
// is Rho × Σspeeds jobs per mean service time — the same parameterisation
// as the simulator and the analytic models, which is what makes the
// resulting Summary directly comparable to both.
type GenConfig struct {
	// Arrival is the interarrival process; default workload.Poisson{}.
	Arrival workload.Arrival
	// Service draws each job's requirement; default workload.Exponential{}.
	Service workload.Service
	// Rho is the per-server utilization, in (0, 1).
	Rho float64
	// Jobs is the number of jobs to offer (required, ≥ 1). Jobs rejected
	// on full queues still count as offered.
	Jobs int64
	// Seed for the generator's arrival and service draws; default 1.
	Seed uint64
	// Dispatchers fans the offered load across this many concurrent
	// generator goroutines sharing the one farm (table, min-index, idle
	// stack): each runs an independent arrival source at rate λ/D with its
	// own rng, the model of several front-end dispatchers feeding one
	// server pool. For Poisson arrivals the superposition is exactly the
	// single-dispatcher process; for other laws it is the natural
	// multi-dispatcher analogue (independent thinned streams), not a
	// sample-path split of one stream. Default 1, which reproduces the
	// single-dispatcher generator draw for draw.
	Dispatchers int
	// Batch bounds how many overdue arrivals one dispatcher drains per
	// sleeper wake-up. When the generator falls behind its absolute
	// timeline (a burst, or simply a rate beyond one goroutine's
	// sleep/wake throughput) it submits up to Batch due jobs back to back
	// on a single wake-up and a single clock read, amortizing the
	// per-arrival pacing cost; on-schedule traffic is untouched (every
	// burst has length 1). Default 64.
	Batch int
}

// RunLoadGen offers g.Jobs jobs to the farm at the configured load,
// waits for every accepted job to complete, and returns the resulting
// Summary. It blocks the calling goroutine (spawning g.Dispatchers
// workers); ctx cancels early (the partial Summary is still returned).
// The farm stays running — callers own Shutdown.
func (lb *LB) RunLoadGen(ctx context.Context, g GenConfig) (Summary, error) {
	if g.Arrival == nil {
		g.Arrival = workload.Poisson{}
	}
	if g.Service == nil {
		g.Service = workload.Exponential{}
	}
	if g.Jobs < 1 {
		return Summary{}, fmt.Errorf("lb: load generator needs ≥ 1 job, got %d", g.Jobs)
	}
	if !(g.Rho > 0 && g.Rho < 1) {
		return Summary{}, fmt.Errorf("lb: load generator utilization ρ = %v outside (0, 1)", g.Rho)
	}
	if err := g.Service.Validate(); err != nil {
		return Summary{}, err
	}
	if g.Dispatchers < 0 {
		return Summary{}, fmt.Errorf("lb: %d dispatchers, need ≥ 1", g.Dispatchers)
	}
	D := g.Dispatchers
	if D == 0 {
		D = 1
	}
	if int64(D) > g.Jobs {
		D = int(g.Jobs)
	}
	K := g.Batch
	if K < 1 {
		K = 64
	}
	sum := 0.0
	for _, s := range lb.speeds {
		sum += s
	}
	// Validate the arrival configuration once up front; per-dispatcher
	// sources are instantiated inside each worker.
	if _, err := g.Arrival.NewSource(g.Rho * sum / float64(D)); err != nil {
		return Summary{}, err
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}

	// finished counts this generator's own completions, so the drain wait
	// below is immune to concurrent Do/Dispatch traffic on the same farm.
	var finished, accepted atomic.Int64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < D; w++ {
		jobs := g.Jobs / int64(D)
		if int64(w) < g.Jobs%int64(D) {
			jobs++
		}
		src, err := g.Arrival.NewSource(g.Rho * sum / float64(D))
		if err != nil {
			return Summary{}, err // unreachable: validated above
		}
		// Worker 0 with D=1 reproduces the historical single-dispatcher
		// stream exactly; further workers decorrelate by the xor.
		rng := rand.New(rand.NewPCG(seed, 0xa0761d6478bd642f^uint64(w)))
		wg.Add(1)
		go func(jobs int64, src workload.Source, rng *rand.Rand) {
			defer wg.Done()
			if err := lb.generate(ctx, g.Service, src, rng, jobs, K, &finished, &accepted); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(jobs, src, rng)
	}
	wg.Wait()
	if firstErr != nil {
		return lb.Summary(), firstErr
	}

	// Drain: every accepted job completes (service times are finite), so
	// poll completions rather than plumbing a channel per job.
	for finished.Load() < accepted.Load() {
		if ctx.Err() != nil {
			return lb.Summary(), ctx.Err()
		}
		time.Sleep(2 * time.Millisecond)
	}
	return lb.Summary(), ctx.Err()
}

// generate is one dispatcher goroutine: an absolute-timeline open loop
// that, on each wake-up, drains every arrival already due (up to the
// batch bound) and submits them as one burst — the arrival and service
// draws interleave exactly as the historical one-submit-per-arrival
// loop's did, and submitBurst coalesces same-target jobs into one
// channel send per server per wake-up.
func (lb *LB) generate(ctx context.Context, svc workload.Service, src workload.Source, rng *rand.Rand, jobs int64, batch int, finished, accepted *atomic.Int64) error {
	works := make([]float64, 0, batch)
	sc := &burstScratch{jobs: make([]job, 0, batch), targets: make([]int32, 0, batch)}
	next := time.Now().Add(time.Duration(src.Next(rng) * lb.meanServiceNs))
	for k := int64(0); k < jobs; {
		lb.sleep.sleepUntil(next)
		if ctx.Err() != nil {
			return nil
		}
		now := time.Now()
		works = works[:0]
		for b := 0; b < batch; b++ {
			works = append(works, svc.Sample(rng))
			k++
			next = next.Add(time.Duration(src.Next(rng) * lb.meanServiceNs))
			if k == jobs || next.After(now) {
				break
			}
		}
		acc, err := lb.submitBurst(now, works, finished, sc)
		if err != nil {
			return err
		}
		accepted.Add(int64(acc))
	}
	return nil
}
