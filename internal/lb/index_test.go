package lb

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"finitelb/internal/minindex"
	"finitelb/internal/workload"
)

// The live min-index tests drive the real dispatch pipeline — concurrent
// submitters racing server completions over the shared slot table — and
// check the tree against a naive scan of that table at quiescent points.
// CI's race job runs this package, so the whole multi-producer path is
// covered under -race.

// TestLiveLenIndexMatchesTable floods an indexed JSQ farm whose servers
// are too slow to complete anything during the flood, then compares the
// tree's min and argmin against a scan of the table.
func TestLiveLenIndexMatchesTable(t *testing.T) {
	n := 2 * minindex.Threshold
	farm, err := New(Config{N: n, Policy: workload.JSQ{}, MeanService: 30 * time.Second, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		farm.Shutdown(ctx) // jobs are deliberately unfinishable; abandon them
	}()
	if farm.lenTree == nil {
		t.Fatalf("JSQ at N=%d ≥ threshold %d did not build a length index", n, minindex.Threshold)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				if err := farm.Dispatch(1); err != nil && !errors.Is(err, ErrQueueFull) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiescent: no dispatches in flight, no completions possible yet.
	lens := farm.QueueLens()
	minLen := lens[0]
	for _, l := range lens[1:] {
		if l < minLen {
			minLen = l
		}
	}
	if got := int(farm.lenTree.Min()); got != minLen {
		t.Errorf("index min %d, table scan %d (lens %v)", got, minLen, lens)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for k := 0; k < 50; k++ {
		if am := farm.lenTree.Argmin(rng); lens[am] != minLen {
			t.Errorf("index argmin %d has length %d, min is %d", am, lens[am], minLen)
		}
	}
	// JSQ with 320 jobs over 128 servers must have spread them 2-3 per
	// server — a stale or broken index would let queues skew.
	for i, l := range lens {
		if l > 4 {
			t.Errorf("server %d queued %d jobs under indexed JSQ; index is steering badly", i, l)
		}
	}
}

// TestLiveWorkIndexMatchesTable is the LWL counterpart: the outwork ledger
// feeds the index, and after a concurrent flood the tree's argmin must sit
// on a least-loaded server by that ledger.
func TestLiveWorkIndexMatchesTable(t *testing.T) {
	n := 2 * minindex.Threshold
	farm, err := New(Config{N: n, Policy: workload.LWL{}, MeanService: 30 * time.Second, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		farm.Shutdown(ctx)
	}()
	if farm.workTree == nil {
		t.Fatalf("LWL at N=%d ≥ threshold %d did not build a work index", n, minindex.Threshold)
	}

	var wg sync.WaitGroup
	rngs := make([]*rand.Rand, 8)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewPCG(uint64(w+1), 77))
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(r *rand.Rand) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				if err := farm.Dispatch(0.25 + 2*r.Float64()); err != nil && !errors.Is(err, ErrQueueFull) {
					t.Error(err)
					return
				}
			}
		}(rngs[w])
	}
	wg.Wait()

	outwork := make([]int64, n)
	minWork := int64(1<<63 - 1)
	for i := range outwork {
		outwork[i] = farm.slots[i].outwork.Load()
		if outwork[i] < minWork {
			minWork = outwork[i]
		}
	}
	// The index keys at µs resolution; accept any argmin within one
	// quantum of the scan's minimum.
	const quantumNs = 1000
	rng := rand.New(rand.NewPCG(3, 4))
	for k := 0; k < 50; k++ {
		if am := farm.workTree.Argmin(rng); outwork[am]/quantumNs > minWork/quantumNs {
			t.Errorf("work index argmin %d holds %dns, table minimum is %dns", am, outwork[am], minWork)
		}
	}
}

// TestLiveIndexSurvivesChurn runs an indexed JSQ farm end to end with real
// completions (fast service) and verifies the index drains back to the
// all-zero state the table shows after shutdown.
func TestLiveIndexSurvivesChurn(t *testing.T) {
	n := 2 * minindex.Threshold
	farm, err := New(Config{N: n, Policy: workload.JSQ{}, MeanService: 50 * time.Microsecond, QueueCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				for {
					err := farm.Dispatch(1)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Error(err)
						return
					}
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := farm.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 8*500 {
		t.Errorf("completed %d of %d", st.Completed, 8*500)
	}
	if got := farm.lenTree.Min(); got != 0 {
		t.Errorf("drained farm's index min = %d, want 0", got)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	if am := farm.lenTree.Argmin(rng); am < 0 || am >= n {
		t.Errorf("drained farm's argmin out of range: %d", am)
	}
}

// TestSmallFarmsSkipIndex: below the threshold the scan remains the
// implementation — no tree is built and dispatch still works.
func TestSmallFarmsSkipIndex(t *testing.T) {
	farm, err := New(Config{N: 4, Policy: workload.JSQ{}, MeanService: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())
	if farm.lenTree != nil || farm.workTree != nil {
		t.Fatal("N=4 built a min-index; the scan should serve small farms")
	}
	for i := 0; i < 32; i++ {
		if err := farm.Dispatch(1); err != nil {
			t.Fatal(err)
		}
	}
}
