package lb

import (
	"runtime"
	"sync/atomic"
	"time"
)

// sleeper renders durations in real time with far better accuracy than a
// bare time.Sleep, whose wakeup overshoot ranges from ~50µs on an idle
// bare-metal box to over a millisecond on virtualized or coarse-tick
// hosts. That overshoot would otherwise inflate every service time and
// push the live system's measured delays outside the paper's bounds — the
// calibration this runtime exists to demonstrate.
//
// Strategy: learn the host's typical overshoot online (an EWMA updated
// after every real sleep), time.Sleep only up to the learned margin short
// of the deadline, and cooperatively yield-spin across the final stretch.
// The spin costs at most ~one margin of CPU per sleep — negligible on
// hosts with sharp timers, and the honest price of microsecond pacing on
// hosts without them.
type sleeper struct {
	comp atomic.Int64 // EWMA of observed time.Sleep overshoot, ns
}

const (
	initComp = int64(200 * time.Microsecond)
	maxComp  = int64(20 * time.Millisecond)
)

func newSleeper() *sleeper {
	s := &sleeper{}
	s.comp.Store(initComp)
	return s
}

// sleepUntil returns as close to deadline as the host allows, never
// before. Deadlines in the past return immediately.
func (s *sleeper) sleepUntil(deadline time.Time) {
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		comp := time.Duration(s.comp.Load())
		if remaining <= comp {
			break // inside the uncertainty margin: finish by yielding
		}
		t0 := time.Now()
		time.Sleep(remaining - comp)
		s.observe(time.Since(t0) - (remaining - comp))
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// observe folds one measured sleep overshoot into the EWMA. Updates race
// benignly across servers (each is an atomic load/store pair; a lost
// update just slows convergence).
func (s *sleeper) observe(overshoot time.Duration) {
	c := s.comp.Load()
	c += (int64(overshoot) - c) / 8
	if c < 0 {
		c = 0
	}
	if c > maxComp {
		c = maxComp
	}
	s.comp.Store(c)
}
