package lb

import "sync/atomic"

// idleStack is a lock-free Treiber stack of server ids, the O(1) heart of
// the JIQ fast path: a server pushes itself when its queue drains, a
// dispatcher pops the most recently idled server instead of scanning all N
// queues. Nodes live in a fixed arena indexed by server id — no
// allocation, no pointers — and the head packs a 32-bit ABA tag above the
// 32-bit top index, bumped on every successful push or pop, so a stalled
// compare-and-swap cannot splice a reused node under a concurrent pop.
//
// Entries are hints, not guarantees: a server dispatched to through the
// non-idle fallback may still be on the stack, so a pop can return a
// server that has since gone busy. That is standard JIQ behaviour (idle
// reports race with dispatches in any distributed implementation) and is
// harmless: the job queues like any other. Each server appears at most
// once (the slot's onStack flag gates pushes), which is what makes the
// fixed arena sound.
type idleStack struct {
	head atomic.Uint64   // tag<<32 | id+1; low half 0 when empty
	next []atomic.Uint32 // next[id] = packed id+1 of the node below, 0 at the bottom
}

func newIdleStack(n int) *idleStack {
	return &idleStack{next: make([]atomic.Uint32, n)}
}

// push adds server id to the stack top.
//finitelb:hotpath
func (st *idleStack) push(id int) {
	for {
		h := st.head.Load()
		st.next[id].Store(uint32(h))
		nh := (h>>32+1)<<32 | uint64(id+1)
		if st.head.CompareAndSwap(h, nh) {
			return
		}
	}
}

// tryPop removes and returns the most recently pushed server id.
//finitelb:hotpath
func (st *idleStack) tryPop() (int, bool) {
	for {
		h := st.head.Load()
		top := uint32(h)
		if top == 0 {
			return -1, false
		}
		id := int(top - 1)
		nh := (h>>32+1)<<32 | uint64(st.next[id].Load())
		if st.head.CompareAndSwap(h, nh) {
			return id, true
		}
	}
}
