package lb

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"finitelb/internal/chaos"
	"finitelb/internal/workload"
)

// arm flips the farm into the fault-injection regime (chunked,
// crash-interruptible service sleeps) without otherwise perturbing it,
// so a single mid-test Crash interrupts in-service jobs instead of
// riding on the first-fault arming nuance documented on Crash.
func arm(lb *LB) { lb.churny.Store(true) }

// conserve asserts the failure-domain ledger: every accepted job either
// completed or was dropped with a count, and the drain abandoned none.
func conserve(t *testing.T, lb *LB, st DrainStats) {
	t.Helper()
	accepted := lb.accepted.Load()
	if st.Completed+st.Dropped != accepted || st.Abandoned != 0 {
		t.Errorf("conservation broken: accepted %d, completed %d, dropped %d, abandoned %d",
			accepted, st.Completed, st.Dropped, st.Abandoned)
	}
	o := lb.Recorder().Outcomes()
	if o.Completed != st.Completed || o.Dropped != st.Dropped {
		t.Errorf("outcome counters disagree with drain stats: %+v vs %+v", o, st)
	}
}

func TestLeaveDrainsAndJoinRestores(t *testing.T) {
	cfg := fastCfg(4, nil)
	cfg.MeanService = 200 * time.Microsecond // ≈10ms backlog/server: the leave lands mid-drain
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var counted atomic.Int64
	const jobs = 200
	for i := 0; i < jobs; i++ {
		if _, err := lb.submit(1, nil, &counted); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.Leave(2); err != nil {
		t.Fatal(err)
	}
	if got := lb.Alive(); got != 3 {
		t.Fatalf("Alive() = %d after one leave of four, want 3", got)
	}
	if err := lb.Leave(2); err == nil {
		t.Error("double-leave accepted")
	}
	// The departed server's queue requeues; everything still completes.
	deadline := time.Now().Add(10 * time.Second)
	for counted.Load() < jobs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs finished after a graceful leave", counted.Load(), jobs)
		}
		time.Sleep(time.Millisecond)
	}
	if err := lb.Join(2); err != nil {
		t.Fatal(err)
	}
	if err := lb.Join(2); err == nil {
		t.Error("double-join accepted")
	}
	if got := lb.Alive(); got != 4 {
		t.Fatalf("Alive() = %d after restore, want 4", got)
	}
	// Routing works on the restored farm.
	for i := 0; i < 50; i++ {
		if err := lb.Dispatch(1); err != nil {
			t.Fatal(err)
		}
	}
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	if st.Dropped != 0 {
		t.Errorf("%d drops on a graceful leave with default budget", st.Dropped)
	}
	if o := lb.Recorder().Outcomes(); o.Requeued == 0 {
		t.Error("a leave with a backlog requeued nothing")
	}
}

func TestCrashInterruptsAndRedelivers(t *testing.T) {
	cfg := fastCfg(2, nil)
	cfg.MeanService = time.Millisecond
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arm(lb)
	// One long job (≈300ms) lands on one of the two idle servers.
	var counted atomic.Int64
	if _, err := lb.submit(300, nil, &counted); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let it enter service
	busy := 0
	if lb.QueueLens()[1] > 0 {
		busy = 1
	}
	if err := lb.Crash(busy); err != nil {
		t.Fatal(err)
	}
	// The interrupt lands within ~crashPoll and the job redelivers to
	// the surviving server, where it re-executes in full.
	deadline := time.Now().Add(10 * time.Second)
	for counted.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("crashed job never redelivered")
		}
		time.Sleep(time.Millisecond)
	}
	o := lb.Recorder().Outcomes()
	if o.Requeued < 1 || o.Retried < 1 {
		t.Errorf("outcomes after crash: %+v, want ≥1 requeued and retried", o)
	}
	if err := lb.Crash(1 - busy); err == nil {
		t.Error("crashing the last live server accepted")
	}
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	if st.Completed != 1 || st.Dropped != 0 {
		t.Errorf("drain stats %+v, want the one job completed", st)
	}
}

func TestRetryBudgetExhaustionDrops(t *testing.T) {
	cfg := fastCfg(2, nil)
	cfg.RetryBudget = -1 // no redelivery: orphaned jobs drop immediately
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arm(lb)
	ch := make(chan Done, 1)
	if _, err := lb.submit(2000, ch, nil); err != nil { // ≈100ms at 50µs
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	busy := 0
	if lb.QueueLens()[1] > 0 {
		busy = 1
	}
	if err := lb.Crash(busy); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ch:
		if !d.Dropped || d.Server != -1 {
			t.Errorf("done = %+v, want a drop report", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("budget-exhausted job neither completed nor dropped")
	}
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	if st.Dropped != 1 {
		t.Errorf("drain stats %+v, want exactly one drop", st)
	}
}

func TestDeadlineDropsQueuedJob(t *testing.T) {
	cfg := fastCfg(1, nil)
	cfg.MeanService = time.Millisecond
	cfg.Deadline = 10 * time.Millisecond
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 100ms job holds the lone server; the next job's service would
	// start far past its 10ms deadline, so it drops instead of serving.
	if err := lb.Dispatch(100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d, err := lb.Do(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dropped {
		t.Errorf("done = %+v, want deadline drop", d)
	}
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	if st.Completed != 1 || st.Dropped != 1 {
		t.Errorf("drain stats %+v, want 1 completion + 1 drop", st)
	}
}

func TestHedgeResolvesToOneCompletion(t *testing.T) {
	cfg := fastCfg(2, nil)
	cfg.MeanService = time.Millisecond
	cfg.Hedge = 5 * time.Millisecond
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy both servers (~80ms each), then hedge a short job: both the
	// original and the duplicate queue behind a long job, exactly one
	// copy wins the claim and completes, the loser vanishes uncounted.
	for i := 0; i < 2; i++ {
		if err := lb.Dispatch(80); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d, err := lb.Do(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dropped {
		t.Errorf("hedged job dropped: %+v", d)
	}
	st := mustShutdown(t, lb)
	conserve(t, lb, st)
	if st.Completed != 3 {
		t.Errorf("drain stats %+v, want exactly 3 completions (no double-count)", st)
	}
}

func TestPauseDispatchGates(t *testing.T) {
	lb, err := New(fastCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	lb.PauseDispatch()
	released := make(chan error, 1)
	go func() {
		err := lb.Dispatch(1)
		released <- err
	}()
	select {
	case err := <-released:
		t.Fatalf("dispatch returned %v while paused", err)
	case <-time.After(50 * time.Millisecond):
	}
	lb.ResumeDispatch()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("dispatch after resume: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch never released after resume")
	}
	// Shutdown releases a paused dispatcher with ErrClosed.
	lb.PauseDispatch()
	go func() {
		released <- lb.Dispatch(1)
	}()
	time.Sleep(20 * time.Millisecond)
	st := mustShutdown(t, lb)
	select {
	case err := <-released:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("paused dispatch at shutdown returned %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("paused dispatch never released by shutdown")
	}
	conserve(t, lb, st)
}

func TestSlowFactorStretchesService(t *testing.T) {
	cfg := fastCfg(1, nil)
	cfg.MeanService = time.Millisecond
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.SetSlow(0, 20); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	if _, err := lb.Do(ctx, 1); err != nil { // nominal 1ms, degraded 20×
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("slowed 1ms job finished in %v, want ≳20ms", el)
	}
	if err := lb.SetSlow(0, 1); err != nil { // clear
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := lb.Do(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 15*time.Millisecond {
		t.Errorf("restored 1ms job took %v, degradation did not clear", el)
	}
	conserve(t, lb, mustShutdown(t, lb))
}

func TestRunChurnReplaysResolvedSchedule(t *testing.T) {
	cfg := fastCfg(3, nil)
	cfg.MeanService = time.Millisecond
	lb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ParseChurn("churn:crash@t=5,restore@t=30")
	if err != nil {
		t.Fatal(err)
	}
	events, err := chaos.Resolve(spec, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	mid := make(chan int, 1)
	go func() {
		// Sample liveness between the two events (t=5..30 ⇒ 5..30ms).
		time.Sleep(17 * time.Millisecond)
		mid <- lb.Alive()
	}()
	if err := lb.RunChurn(events); err != nil {
		t.Fatal(err)
	}
	if a := <-mid; a != 2 {
		t.Errorf("Alive() = %d between crash and restore, want 2", a)
	}
	if a := lb.Alive(); a != 3 {
		t.Errorf("Alive() = %d after the schedule, want 3", a)
	}
	// Unresolved events are a caller error.
	if err := lb.RunChurn([]workload.ChurnEvent{{Kind: workload.ChurnCrash, T: 0, Server: -1}}); err == nil {
		t.Error("RunChurn accepted an unresolved event")
	}
	conserve(t, lb, mustShutdown(t, lb))
}
