package lb

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"finitelb/internal/workload"
)

// This file is the farm's failure domain: membership changes
// (Leave/Crash/Join), fault injectors (SetSlow/Stall/PauseDispatch),
// the redelivery path that keeps every accepted job accounted for, and
// RunChurn, which replays a resolved churn schedule
// (internal/workload's churn: spec through internal/chaos.Resolve)
// against the live farm.
//
// Membership is flag-based, not structural: the farm keeps its N
// goroutines, channels and table slots for life, and a down server is
// one whose slot carries the down flag — pickers route around it and
// its goroutine requeues everything it dequeues. That keeps every
// membership transition a handful of atomic stores with no channel
// close/reopen races, at the price of an idle goroutine per down
// server (blocked on its empty channel, costing nothing).

// Leave removes server i from the farm gracefully: no new work routes
// to it, its in-service job completes, and everything still queued is
// redelivered to live servers through the retry path (each redelivery
// consumes the job's RetryBudget). Errors if i is already down or is
// the last live server — the farm never runs empty.
func (lb *LB) Leave(i int) error { return lb.takeDown(i, false) }

// Crash fails server i abruptly: like Leave, but the in-service job is
// interrupted mid-service (its completed work is lost) and redelivered
// along with the queue. The service sleep polls the crash flag every
// crashPoll, so a crash lands within ~2ms regardless of job length.
// One nuance: the polling is armed by the farm's first-ever fault
// injection (churn-free farms keep the cheaper single sleep), so a job
// already in service at that first fault completes as if the server
// left gracefully; every service that starts afterwards is
// crash-interruptible.
func (lb *LB) Crash(i int) error { return lb.takeDown(i, true) }

func (lb *LB) takeDown(i int, crash bool) error {
	if i < 0 || i >= lb.n {
		return fmt.Errorf("lb: server %d out of range [0, %d)", i, lb.n)
	}
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	s := &lb.slots[i]
	if s.down.Load() {
		return fmt.Errorf("lb: server %d is already down", i)
	}
	if lb.alive.Load() <= 1 {
		return fmt.Errorf("lb: refusing to take down server %d: it is the last live server", i)
	}
	lb.churny.Store(true)
	s.down.Store(true)
	if crash {
		s.crashed.Store(true)
	}
	lb.alive.Add(-1)
	lb.publishLive()
	// Re-key the min-indexes so the argmin routes around the server
	// immediately (the key callbacks read the down flag).
	if lb.lenTree != nil {
		lb.lenTree.Update(i)
	}
	if lb.workTree != nil {
		lb.workTree.Update(i)
	}
	return nil
}

// publishLive rebuilds the compact live-server list after a membership
// change (memberMu held). The list is stored before the sequence bump,
// so a dispatcher observing the new sequence always copies the new list.
func (lb *LB) publishLive() {
	list := make([]int32, 0, lb.n)
	for i := 0; i < lb.n; i++ {
		if !lb.slots[i].down.Load() {
			//lint:allow atomicfield list is plain-built before the publishing Store, immutable after; the Store is the release fence
			list = append(list, int32(i))
		}
	}
	lb.liveList.Store(&list)
	lb.liveSeq.Add(1)
}

// Join returns a down server to the farm (restore after Leave/Crash):
// flags clear, the min-indexes re-key, and an empty queue reports idle
// to JIQ. Errors if the server is already up.
func (lb *LB) Join(i int) error {
	if i < 0 || i >= lb.n {
		return fmt.Errorf("lb: server %d out of range [0, %d)", i, lb.n)
	}
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	s := &lb.slots[i]
	if !s.down.Load() {
		return fmt.Errorf("lb: server %d is already up", i)
	}
	s.crashed.Store(false)
	s.down.Store(false)
	lb.alive.Add(1)
	lb.publishLive()
	if lb.lenTree != nil {
		lb.lenTree.Update(i)
	}
	if lb.workTree != nil {
		lb.workTree.Update(i)
	}
	if lb.jiq && s.qlen.Load() == 0 && s.onStack.CompareAndSwap(false, true) {
		lb.idle.push(i)
	}
	return nil
}

// Alive returns the number of live (not down) servers.
func (lb *LB) Alive() int { return int(lb.alive.Load()) }

// SetSlow degrades server i: service durations multiply by factor
// until cleared. factor 1 clears the degradation; factor < 1 is a
// speed-up (allowed — useful for asymmetry experiments). Applies to
// services that start after the call.
func (lb *LB) SetSlow(i int, factor float64) error {
	if i < 0 || i >= lb.n {
		return fmt.Errorf("lb: server %d out of range [0, %d)", i, lb.n)
	}
	if !(factor > 0) {
		return fmt.Errorf("lb: slow factor %v, need > 0", factor)
	}
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	if factor == 1 {
		lb.slots[i].slowBits.Store(0)
		return nil
	}
	lb.churny.Store(true)
	lb.slots[i].slowBits.Store(math.Float64bits(factor))
	return nil
}

// Stall freezes server i for d: service starts are pushed past the
// stall horizon (the in-service job, if any, finishes first — the
// freeze takes effect between jobs). The queue stays intact and keeps
// accepting work.
func (lb *LB) Stall(i int, d time.Duration) error {
	if i < 0 || i >= lb.n {
		return fmt.Errorf("lb: server %d out of range [0, %d)", i, lb.n)
	}
	if d <= 0 {
		return fmt.Errorf("lb: stall duration %v, need > 0", d)
	}
	lb.memberMu.Lock()
	defer lb.memberMu.Unlock()
	lb.churny.Store(true)
	lb.slots[i].stallUntil.Store(time.Now().Add(d).UnixNano())
	return nil
}

// PauseDispatch suspends admission: Dispatch/Do/loadgen submissions
// block until ResumeDispatch (or error with ErrClosed if the farm
// shuts down first). Idempotent — pausing a paused farm is a no-op.
func (lb *LB) PauseDispatch() {
	ch := make(chan struct{})
	lb.pause.CompareAndSwap(nil, &ch)
}

// ResumeDispatch releases a dispatcher pause (no-op when not paused).
func (lb *LB) ResumeDispatch() {
	if p := lb.pause.Swap(nil); p != nil {
		close(*p)
	}
}

// pauseWait blocks a submitter while the dispatcher is paused. Off the
// hot path by construction: submitters call it only after observing a
// non-nil pause gate.
func (lb *LB) pauseWait(p *chan struct{}) error {
	select {
	case <-*p:
		return nil
	case <-lb.stopCh:
		return ErrClosed
	}
}

// crashPoll bounds how long a crash waits for the in-service sleep to
// notice it, and is therefore the chunk size of the interruptible
// service sleep. Only farms that have seen churn pay the chunking (the
// churny flag gates it); everyone else keeps the single compensated
// sleep.
const crashPoll = 2 * time.Millisecond

// scheduleRetry routes a job orphaned by a crash or leave (or bounced
// off a full queue on redelivery) back toward a live server: budget
// check, jittered exponential backoff, then redispatch. Runs on server
// goroutines and backoff timers — never on the dispatch hot path.
func (lb *LB) scheduleRetry(j job, now time.Time) {
	lb.rec.requeued.Add(1)
	if j.trace >= 0 {
		lb.tr.Retried(j.trace)
	}
	j.attempts++
	if lb.cfg.RetryBudget < 0 || int(j.attempts) > lb.cfg.RetryBudget {
		lb.finalizeDrop(j, now, false)
		return
	}
	d := lb.backoffFor(j.attempts)
	if d <= 0 || lb.closed.Load() {
		// No backoff configured, or shutting down: redeliver inline (the
		// drain must not wait out backoff timers, and spawning goroutines
		// after Shutdown's retryWG barrier would race it).
		lb.redispatch(j, false)
		return
	}
	lb.retryWG.Add(1)
	go func() {
		defer lb.retryWG.Done()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-lb.stopCh:
			// Shutdown flushes the remaining backoff: redeliver now so the
			// drain completes the job instead of waiting for the timer.
		}
		lb.redispatch(j, false)
	}()
}

// backoffFor returns the jittered exponential backoff before redelivery
// attempt k (1-based): base × 2^(k−1), ±50% multiplicative jitter,
// capped at 64× the base. Zero base means immediate redelivery.
func (lb *LB) backoffFor(k int32) time.Duration {
	base := lb.cfg.RetryBackoff
	if base <= 0 {
		return 0
	}
	d := base << min(k-1, 6)
	if d > base<<6 {
		d = base << 6
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// redispatch re-admits an already-accepted job copy. hedge marks a
// speculative duplicate: on any failure it is discarded silently (the
// original still holds the claim race), whereas a redelivery failure
// re-enters scheduleRetry until the budget drops the job. The
// inflight/chClosed bracket mirrors submitAt's closed bracket so a
// redelivery never sends on a channel Shutdown has closed.
func (lb *LB) redispatch(j job, hedge bool) {
	if lb.chClosed.Load() {
		if !hedge {
			lb.finalizeDrop(j, time.Now(), false)
		}
		return
	}
	lb.inflight.Add(1)
	defer lb.inflight.Done()
	if lb.chClosed.Load() {
		if !hedge {
			lb.finalizeDrop(j, time.Now(), false)
		}
		return
	}
	d := lb.dispatchers.Get().(*dispatcher)
	if lb.workAware {
		d.view.nowNs = time.Now().UnixNano()
	}
	target, err := lb.admit(d, &j)
	lb.dispatchers.Put(d)
	if err != nil {
		if hedge {
			return
		}
		// Full queue or no live server: try again (consuming budget) —
		// membership may recover before the budget runs out.
		lb.scheduleRetry(j, time.Now())
		return
	}
	lb.rec.retried.Add(1)
	if j.trace >= 0 {
		lb.tr.Enqueued(j.trace, lb.rel(time.Now()))
	}
	lb.servers[target].ch <- envelope{j: j}
}

// finalizeDrop resolves a job that leaves the system unserved after
// acceptance: deadline expired, redelivery budget exhausted, or a
// redelivery overtaken by shutdown. owned says the caller already won
// the hedge claim; otherwise the drop must win the 0→2 transition — if
// another copy claimed service, the job is someone else's to finish
// and this copy vanishes without counting.
func (lb *LB) finalizeDrop(j job, at time.Time, owned bool) {
	if j.claim != nil && !owned && !j.claim.CompareAndSwap(0, 2) {
		return
	}
	lb.rec.dropped.Add(1)
	if j.trace >= 0 {
		lb.tr.Drop(j.trace, lb.rel(at))
	}
	if j.counted != nil {
		j.counted.Add(1)
	}
	if j.done != nil {
		j.done <- Done{Server: -1, Sojourn: at.Sub(j.arrival), Dropped: true}
	}
}

// armHedge attaches a hedge claim to j and schedules the speculative
// duplicate: if nothing has claimed the job Hedge after dispatch, a
// copy is routed to another server and the first copy to reach service
// start wins the claim. Allocates (the shared claim word and a timer)
// — deliberately outside the hotpath-annotated dispatch functions.
func (lb *LB) armHedge(j *job, target int) {
	claim := new(atomic.Int32)
	j.claim = claim
	dup := *j
	time.AfterFunc(lb.cfg.Hedge, func() {
		if claim.Load() != 0 || lb.closed.Load() {
			return
		}
		lb.rec.requeued.Add(1)
		if dup.trace >= 0 {
			lb.tr.Retried(dup.trace)
		}
		dup.attempts++
		lb.redispatch(dup, true)
	})
}

// RunChurn replays a resolved churn schedule against the live farm:
// event times are in mean service times, mapped onto the wall clock
// from the moment of the call (t=0 is now). It blocks until the
// schedule completes, the farm shuts down, or an event fails to apply.
// Events must carry explicit servers — resolve a parsed spec with
// internal/chaos.Resolve first, which also validates the schedule
// against farm membership.
func (lb *LB) RunChurn(events []workload.ChurnEvent) error {
	start := time.Now()
	for _, ev := range events {
		at := start.Add(time.Duration(ev.T * lb.meanServiceNs))
		if wait := time.Until(at); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-lb.stopCh:
				t.Stop()
				return ErrClosed
			}
		}
		if err := lb.applyChurn(ev); err != nil {
			return err
		}
	}
	return nil
}

func (lb *LB) applyChurn(ev workload.ChurnEvent) error {
	switch ev.Kind {
	case workload.ChurnCrash:
		return lb.Crash(ev.Server)
	case workload.ChurnLeave:
		return lb.Leave(ev.Server)
	case workload.ChurnRestore:
		return lb.Join(ev.Server)
	case workload.ChurnSlow:
		return lb.SetSlow(ev.Server, ev.Factor)
	case workload.ChurnStall:
		return lb.Stall(ev.Server, time.Duration(ev.Dur*lb.meanServiceNs))
	case workload.ChurnPause:
		lb.PauseDispatch()
		return nil
	case workload.ChurnResume:
		lb.ResumeDispatch()
		return nil
	}
	return fmt.Errorf("lb: unknown churn event %v", ev)
}
