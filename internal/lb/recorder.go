package lb

import (
	"sync"
	"sync/atomic"
	"time"

	"finitelb/internal/stats"
)

// Recorder accumulates live sojourn measurements in the same currency as
// the discrete-event simulator: time normalized by the configured mean
// service (so a sojourn of 2.0 means "two mean service times", directly
// comparable to sim.Result and to the QBD bounds), through the same
// stats.Stream arithmetic (Welford moments, batch-means confidence
// intervals, mergeable quantile sketch). Completions land in sharded
// accumulators and Snapshot pools the shards exactly as the simulator
// pools replications — exactly in the literal sense: the sketch's
// canonical merge makes shard-pooled tail quantiles bit-equal to a
// single-stream accumulation, whatever the sharding.
//
// Shards hold a quantile sketch (~9 KB) instead of the former 25k-bin
// histogram (~200 KB) — the shape that once put ~2 GB of accumulator
// state on a 10⁴-server farm, whose GC cycles purged the dispatcher
// sync.Pool mid-flight (the stray ~1 B/op the N=10⁴ dispatch benchmarks
// used to show). At sketch size the recShards cap can sit at 1024:
// per-server sharding headroom through N=1024 (and 64× less mutex
// contention above) for under 10 MB worst case.
type Recorder struct {
	meanServiceNs float64
	batchSize     int64

	warmupLeft atomic.Int64 // completions still to discard
	completed  atomic.Int64 // total completions, including warmup
	maxQueue   atomic.Int64 // largest queue length reserved by a dispatch

	// Per-outcome job counters — the failure-domain ledger beside the
	// delay statistics (exported by cmd/lbd as lbd_jobs_total{outcome}).
	requeued atomic.Int64 // job copies sent back through dispatch (crash/leave/hedge)
	retried  atomic.Int64 // redeliveries that re-entered a queue
	shed     atomic.Int64 // admissions refused by an SLO guard (NoteShed)
	dropped  atomic.Int64 // accepted jobs that left unserved (deadline, budget, shutdown)

	shards []recShard
	mask   int
}

// recShards caps the shard count (power of two; servers hash in by id,
// so below the cap sharding is per-server and contention-free).
const recShards = 1024

type recShard struct {
	mu      sync.Mutex
	stream  *stats.Stream
	service stats.Welford // realized service durations, work units
	_       [64]byte      // keep neighbouring shards off one cache line
}

func newRecorder(n int, meanService time.Duration, warmup, batchSize int64) *Recorder {
	s := 1
	for s < n && s < recShards {
		s <<= 1
	}
	r := &Recorder{
		meanServiceNs: float64(meanService.Nanoseconds()),
		batchSize:     batchSize,
		shards:        make([]recShard, s),
		mask:          s - 1,
	}
	r.warmupLeft.Store(warmup)
	for i := range r.shards {
		// Sketch configuration shared with internal/sim, so live and
		// simulated tails are the same estimator at the same accuracy.
		r.shards[i].stream = stats.NewSketchStream(batchSize, stats.DefaultAlpha, stats.DefaultSketchBudget)
	}
	return r
}

// record books one completion at server i: the job's full sojourn and its
// realized (wall-clock) service duration.
func (r *Recorder) record(i int, sojourn, service time.Duration) {
	r.completed.Add(1)
	if r.warmupLeft.Add(-1) >= 0 {
		return
	}
	sh := &r.shards[i&r.mask]
	sh.mu.Lock()
	sh.stream.Add(float64(sojourn) / r.meanServiceNs)
	sh.service.Add(float64(service) / r.meanServiceNs)
	sh.mu.Unlock()
}

// observeQueue keeps the running maximum of reserved queue lengths.
func (r *Recorder) observeQueue(l int) {
	for {
		cur := r.maxQueue.Load()
		if int64(l) <= cur || r.maxQueue.CompareAndSwap(cur, int64(l)) {
			return
		}
	}
}

// Completed returns the total completions so far, including warmup.
func (r *Recorder) Completed() int64 { return r.completed.Load() }

// Outcomes is the per-outcome job ledger. Completed counts jobs served
// to the end; Requeued counts copies sent back through dispatch after a
// crash, graceful leave, or hedge; Retried counts redeliveries that
// re-entered a queue; Shed counts admissions refused by an SLO guard
// (see NoteShed); Dropped counts accepted jobs that left unserved —
// deadline expiry, exhausted redelivery budget, or shutdown overtaking
// a redelivery. At quiescence, accepted = Completed + Dropped.
type Outcomes struct {
	Completed int64
	Requeued  int64
	Retried   int64
	Shed      int64
	Dropped   int64
}

// Outcomes snapshots the per-outcome counters.
func (r *Recorder) Outcomes() Outcomes {
	return Outcomes{
		Completed: r.completed.Load(),
		Requeued:  r.requeued.Load(),
		Retried:   r.retried.Load(),
		Shed:      r.shed.Load(),
		Dropped:   r.dropped.Load(),
	}
}

// NoteShed books one admission refused by a load-shedding guard above
// the farm (cmd/lbd's SLO gate); the farm itself never sheds.
func (r *Recorder) NoteShed() { r.shed.Add(1) }

// Summary is a point-in-time statistical snapshot of the live system, in
// the simulator's units: times are multiples of the configured mean
// service.
type Summary struct {
	MeanDelay float64 // mean sojourn, in mean service times
	MeanWait  float64 // MeanDelay − 1 (the unit mean service)
	HalfWidth float64 // 95% batch-means CI half-width on MeanDelay
	Jobs      int64   // measured completions (after warmup)
	Completed int64   // total completions, including warmup
	Rejected  int64   // jobs refused on a full queue
	MaxQueue  int     // largest queue length reserved by a dispatch

	// Sojourn quantiles, in mean service times (sketch-estimated within
	// 1% relative error; P999 is the reason the sketch replaced the
	// fixed histogram, which clipped everything past 500 service times).
	P50, P95, P99, P999 float64

	// Overflow counts observations the tail estimator could not resolve.
	// Always 0 with the sketch recorder; retained so callers (cmd/lbd)
	// can flag clipped quantiles if a histogram recorder ever returns.
	Overflow int64

	// MeanService is the realized mean service duration in units of the
	// configured one — the live system's fidelity gauge. ≈1 when the
	// compensated sleeper renders service times faithfully; a persistent
	// excess means the host's timers are inflating service (and therefore
	// every delay above).
	MeanService float64

	// Outcomes is the per-outcome job ledger (requeues, retries, sheds,
	// drops beside the completions).
	Outcomes Outcomes
}

// merge pools every shard into one fresh stream; callers get exactly the
// state a single unsharded stream would hold (canonical sketch merge).
// It may run concurrently with recording; each shard is locked only while
// merged.
func (r *Recorder) merge() (*stats.Stream, stats.Welford) {
	merged := stats.NewSketchStream(r.batchSize, stats.DefaultAlpha, stats.DefaultSketchBudget)
	var service stats.Welford
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		merged.Merge(sh.stream)
		service.Merge(sh.service)
		sh.mu.Unlock()
	}
	return merged, service
}

// Snapshot pools all shards into one Summary.
func (r *Recorder) Snapshot() Summary {
	merged, service := r.merge()
	s := Summary{
		MeanDelay:   merged.Sojourns.Mean(),
		MeanWait:    merged.Sojourns.Mean() - 1,
		HalfWidth:   merged.Batch.HalfWidth(),
		Jobs:        merged.N(),
		Completed:   r.completed.Load(),
		MaxQueue:    int(r.maxQueue.Load()),
		MeanService: service.Mean(),
		Overflow:    merged.Overflow(),
		Outcomes:    r.Outcomes(),
	}
	if merged.N() > 0 {
		s.P50 = merged.Quantile(0.50)
		s.P95 = merged.Quantile(0.95)
		s.P99 = merged.Quantile(0.99)
		s.P999 = merged.Quantile(0.999)
	}
	return s
}

// TailBuckets returns the pooled sojourn distribution as at most max
// cumulative buckets at exact log-spaced boundaries — the payload of
// cmd/lbd's native Prometheus histogram. May be nil before any
// measurement.
func (r *Recorder) TailBuckets(max int) []stats.TailBucket {
	merged, _ := r.merge()
	if merged.Sketch == nil {
		return nil
	}
	return merged.Sketch.CumulativeBuckets(max)
}

// TailSketch returns a deep copy of the pooled sojourn sketch, or nil
// before any measurement. Successive snapshots difference into
// windowed quantiles via stats.(*Sketch).DiffQuantile — the measured
// side of cmd/lbd's SLO-guarded load shedding.
func (r *Recorder) TailSketch() *stats.Sketch {
	merged, _ := r.merge()
	if merged.Sketch == nil || merged.N() == 0 {
		return nil
	}
	c := stats.NewSketch(stats.DefaultAlpha, stats.DefaultSketchBudget)
	c.Merge(merged.Sketch)
	return c
}

// StateBytes reports the total accumulator footprint across shards — the
// number the sketch migration is about: ~9 KB per shard against the
// former 200 KB histograms.
func (r *Recorder) StateBytes() int {
	total := 0
	for i := range r.shards {
		total += r.shards[i].stream.StateBytes()
	}
	return total
}
