package lb

import (
	"sync"
	"sync/atomic"
	"time"

	"finitelb/internal/stats"
)

// Recorder accumulates live sojourn measurements in the same currency as
// the discrete-event simulator: time normalized by the configured mean
// service (so a sojourn of 2.0 means "two mean service times", directly
// comparable to sim.Result and to the QBD bounds), through the same
// stats.Stream arithmetic (Welford moments, batch-means confidence
// intervals, fixed-width quantile histogram). Completions land in
// sharded accumulators and Snapshot pools the shards exactly as the
// simulator pools replications.
//
// Shards are capped at recShards rather than one per server: a shard
// carries a full quantile histogram (25k bins ≈ 200 KB), so per-server
// shards put ~2 GB of live accumulator state on a 10⁴-server farm — and
// the GC cycles that heap provoked purged the dispatcher sync.Pool
// mid-flight, which is exactly the stray ~1 B/op the N=10⁴ dispatch
// benchmarks used to show. A few dozen shards hold mutex contention to
// noise (each server goroutine touches one shard briefly per completion)
// at a tiny fraction of the memory.
type Recorder struct {
	meanServiceNs float64
	batchSize     int64

	warmupLeft atomic.Int64 // completions still to discard
	completed  atomic.Int64 // total completions, including warmup
	maxQueue   atomic.Int64 // largest queue length reserved by a dispatch

	shards []recShard
	mask   int
}

// recShards caps the shard count (power of two, comfortably above any
// realistic core count; servers hash in by id).
const recShards = 64

type recShard struct {
	mu      sync.Mutex
	stream  *stats.Stream
	service stats.Welford // realized service durations, work units
	_       [64]byte      // keep neighbouring shards off one cache line
}

// histogram shape shared with internal/sim: 0.02 service-time resolution
// up to 500 service times.
const (
	histWidth = 0.02
	histBins  = 25_000
)

func newRecorder(n int, meanService time.Duration, warmup, batchSize int64) *Recorder {
	s := 1
	for s < n && s < recShards {
		s <<= 1
	}
	r := &Recorder{
		meanServiceNs: float64(meanService.Nanoseconds()),
		batchSize:     batchSize,
		shards:        make([]recShard, s),
		mask:          s - 1,
	}
	r.warmupLeft.Store(warmup)
	for i := range r.shards {
		r.shards[i].stream = stats.NewStream(batchSize, histWidth, histBins)
	}
	return r
}

// record books one completion at server i: the job's full sojourn and its
// realized (wall-clock) service duration.
func (r *Recorder) record(i int, sojourn, service time.Duration) {
	r.completed.Add(1)
	if r.warmupLeft.Add(-1) >= 0 {
		return
	}
	sh := &r.shards[i&r.mask]
	sh.mu.Lock()
	sh.stream.Add(float64(sojourn) / r.meanServiceNs)
	sh.service.Add(float64(service) / r.meanServiceNs)
	sh.mu.Unlock()
}

// observeQueue keeps the running maximum of reserved queue lengths.
func (r *Recorder) observeQueue(l int) {
	for {
		cur := r.maxQueue.Load()
		if int64(l) <= cur || r.maxQueue.CompareAndSwap(cur, int64(l)) {
			return
		}
	}
}

// Completed returns the total completions so far, including warmup.
func (r *Recorder) Completed() int64 { return r.completed.Load() }

// Summary is a point-in-time statistical snapshot of the live system, in
// the simulator's units: times are multiples of the configured mean
// service.
type Summary struct {
	MeanDelay float64 // mean sojourn, in mean service times
	MeanWait  float64 // MeanDelay − 1 (the unit mean service)
	HalfWidth float64 // 95% batch-means CI half-width on MeanDelay
	Jobs      int64   // measured completions (after warmup)
	Completed int64   // total completions, including warmup
	Rejected  int64   // jobs refused on a full queue
	MaxQueue  int     // largest queue length reserved by a dispatch

	// Sojourn quantiles, in mean service times.
	P50, P95, P99 float64

	// MeanService is the realized mean service duration in units of the
	// configured one — the live system's fidelity gauge. ≈1 when the
	// compensated sleeper renders service times faithfully; a persistent
	// excess means the host's timers are inflating service (and therefore
	// every delay above).
	MeanService float64
}

// Snapshot pools all shards into one Summary. It may run concurrently
// with recording; each shard is locked only while merged.
func (r *Recorder) Snapshot() Summary {
	merged := stats.NewStream(r.batchSize, histWidth, histBins)
	var service stats.Welford
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		merged.Merge(sh.stream)
		service.Merge(sh.service)
		sh.mu.Unlock()
	}
	s := Summary{
		MeanDelay:   merged.Sojourns.Mean(),
		MeanWait:    merged.Sojourns.Mean() - 1,
		HalfWidth:   merged.Batch.HalfWidth(),
		Jobs:        merged.N(),
		Completed:   r.completed.Load(),
		MaxQueue:    int(r.maxQueue.Load()),
		MeanService: service.Mean(),
	}
	if merged.N() > 0 {
		s.P50 = merged.Hist.Quantile(0.50)
		s.P95 = merged.Hist.Quantile(0.95)
		s.P99 = merged.Hist.Quantile(0.99)
	}
	return s
}
