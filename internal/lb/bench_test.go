package lb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"finitelb/internal/workload"
)

// Dispatch-hot-path benchmarks, the feed for BENCH_lb.json (see
// scripts/bench_lb.sh). Two altitudes:
//
//   - BenchmarkPick isolates the routing decision itself — the policy's
//     sample over the sharded atomic table — which is what must stay O(d)
//     for SQ(d) as N grows;
//   - BenchmarkDispatch measures the full submit path (closed-check,
//     pick, queue reservation, channel handoff) against live draining
//     servers, whose reciprocal is the farm's jobs/sec dispatch ceiling.
//
// Service times are effectively zero so queueing physics stays out of the
// numbers.
var benchPolicies = []struct {
	name   string
	policy workload.Policy
}{
	{"sqd2", workload.SQD{D: 2}},
	{"jsq", workload.JSQ{}},
	{"jiq", workload.JIQ{}},
	{"lwl", workload.LWL{}},
	{"random", workload.Random{}},
}

var benchSizes = []int{10, 100, 1000}

func benchFarm(b *testing.B, n int, policy workload.Policy) *LB {
	b.Helper()
	lb, err := New(Config{
		N:           n,
		Policy:      policy,
		MeanService: time.Nanosecond, // jobs complete at channel speed
		QueueCap:    1 << 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if _, err := lb.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return lb
}

func BenchmarkDispatch(b *testing.B) {
	for _, bp := range benchPolicies {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", bp.name, n), func(b *testing.B) {
				lb := benchFarm(b, n, bp.policy)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Closed-loop backpressure: when the producer outruns
					// the drainers and fills a bounded queue, yield and
					// retry, so ns/op is the steady-state per-job cost of
					// the whole dispatch pipeline.
					for {
						err := lb.Dispatch(1)
						if err == nil {
							break
						}
						if !errors.Is(err, ErrQueueFull) {
							b.Fatal(err)
						}
						runtime.Gosched()
					}
				}
			})
		}
	}
}

func BenchmarkPick(b *testing.B) {
	for _, bp := range benchPolicies {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", bp.name, n), func(b *testing.B) {
				lb := benchFarm(b, n, bp.policy)
				d := lb.dispatchers.Get().(*dispatcher)
				defer lb.dispatchers.Put(d)
				b.ResetTimer()
				if lb.jiq {
					// The JIQ "pick" is the idle-stack pop/push pair.
					for i := 0; i < b.N; i++ {
						if id, ok := lb.idle.tryPop(); ok {
							lb.idle.push(id)
						}
					}
					return
				}
				for i := 0; i < b.N; i++ {
					_ = d.picker.Pick(d.rng, &d.view)
				}
			})
		}
	}
}
