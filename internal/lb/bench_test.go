package lb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"finitelb/internal/workload"
)

// Dispatch-hot-path benchmarks, the feed for BENCH_lb.json (see
// scripts/bench_lb.sh). Two altitudes:
//
//   - BenchmarkPick isolates the routing decision itself — the policy's
//     sample over the sharded atomic table — which is what must stay O(d)
//     for SQ(d) as N grows;
//   - BenchmarkDispatch measures the full submit path (closed-check,
//     pick, queue reservation, channel handoff) against live draining
//     servers, whose reciprocal is the farm's jobs/sec dispatch ceiling.
//
// Service times are effectively zero so queueing physics stays out of the
// numbers.
var benchPolicies = []struct {
	name   string
	policy workload.Policy
}{
	{"sqd2", workload.SQD{D: 2}},
	{"jsq", workload.JSQ{}},
	{"jiq", workload.JIQ{}},
	{"lwl", workload.LWL{}},
	{"random", workload.Random{}},
}

var benchSizes = []int{10, 100, 1000, 10000}

func benchFarm(b *testing.B, n int, policy workload.Policy) *LB {
	b.Helper()
	queueCap := 1 << 14
	if n >= 10000 {
		// 10k servers × 16k-slot channel buffers would allocate gigabytes
		// of backing array before the first dispatch; the backpressure
		// loop below needs depth, not that much of it.
		queueCap = 128
	}
	lb, err := New(Config{
		N:           n,
		Policy:      policy,
		MeanService: time.Nanosecond, // jobs complete at channel speed
		QueueCap:    queueCap,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if _, err := lb.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return lb
}

func BenchmarkDispatch(b *testing.B) {
	for _, bp := range benchPolicies {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", bp.name, n), func(b *testing.B) {
				lb := benchFarm(b, n, bp.policy)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Closed-loop backpressure: when the producer outruns
					// the drainers and fills a bounded queue, yield and
					// retry, so ns/op is the steady-state per-job cost of
					// the whole dispatch pipeline.
					for {
						err := lb.Dispatch(1)
						if err == nil {
							break
						}
						if !errors.Is(err, ErrQueueFull) {
							b.Fatal(err)
						}
						runtime.Gosched()
					}
				}
				// Recorder accumulator footprint, the memory column of
				// BENCH_lb.json: per-server sketch shards at N ≤ 1024,
				// O(KB) each (the 200 KB histogram shards of the ~2 GB
				// incident would read 5e6+ B even at the smallest N here).
				b.ReportMetric(float64(lb.rec.StateBytes()), "state_bytes")
			})
		}
	}
}

// BenchmarkDispatchContended is the multi-producer axis: D goroutines
// hammer Dispatch on one shared farm (table + min-index), the shape of D
// front-end dispatchers feeding a common pool. Healthy scaling shows as
// ns/op holding (or dropping) while D grows; a serializing hot spot shows
// as ns/op rising with D. N=1000 with indexed JSQ keeps the pick itself
// off the critical path so the contention being measured is the shared
// state: queue reservations, index repair, channel handoffs.
func BenchmarkDispatchContended(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			// Moderate queue depth: the 1<<14 buffers the single-producer
			// benchmarks keep for baseline comparability cost more in GC
			// scan time (16M pointer-bearing job slots) than the dispatch
			// path being measured here costs in total.
			lb, err := New(Config{
				N:           1000,
				Policy:      workload.JSQ{},
				MeanService: time.Nanosecond,
				QueueCap:    256,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				if _, err := lb.Shutdown(ctx); err != nil {
					b.Errorf("shutdown: %v", err)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < d; g++ {
				jobs := b.N / d
				if g < b.N%d {
					jobs++
				}
				wg.Add(1)
				go func(jobs int) {
					defer wg.Done()
					for i := 0; i < jobs; i++ {
						for {
							err := lb.Dispatch(1)
							if err == nil {
								break
							}
							if !errors.Is(err, ErrQueueFull) {
								b.Error(err)
								return
							}
							runtime.Gosched()
						}
					}
				}(jobs)
			}
			wg.Wait()
		})
	}
}

func BenchmarkPick(b *testing.B) {
	for _, bp := range benchPolicies {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", bp.name, n), func(b *testing.B) {
				lb := benchFarm(b, n, bp.policy)
				d := lb.dispatchers.Get().(*dispatcher)
				defer lb.dispatchers.Put(d)
				b.ResetTimer()
				if lb.jiq {
					// The JIQ "pick" is the idle-stack pop/push pair.
					for i := 0; i < b.N; i++ {
						if id, ok := lb.idle.tryPop(); ok {
							lb.idle.push(id)
						}
					}
					return
				}
				for i := 0; i < b.N; i++ {
					_ = d.picker.Pick(d.rng, &d.view)
				}
			})
		}
	}
}
