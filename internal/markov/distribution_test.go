package markov

import (
	"math"
	"testing"

	"finitelb/internal/asym"
	"finitelb/internal/sqd"
)

func solveDist(t *testing.T, p sqd.Params, cap int) (Result, *Distribution) {
	t.Helper()
	res, dist, err := SolveExactDistribution(p, ExactOptions{QueueCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	return res, dist
}

func TestDistributionSelectedSumsToOne(t *testing.T) {
	_, dist := solveDist(t, sqd.Params{N: 3, D: 2, Rho: 0.8}, 30)
	sum := 0.0
	for _, p := range dist.Selected {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ Selected = %v, want 1", sum)
	}
}

// TestDistributionMeanConsistency: the Erlang-mixture mean must equal the
// Little's-law mean from the stationary solve — two independent derivations
// of E[sojourn].
func TestDistributionMeanConsistency(t *testing.T) {
	for _, p := range []sqd.Params{
		{N: 3, D: 2, Rho: 0.8},
		{N: 3, D: 3, Rho: 0.6},
		{N: 2, D: 1, Rho: 0.5},
	} {
		res, dist := solveDist(t, p, 40)
		if got, want := dist.MeanDelay(), res.MeanDelay; math.Abs(got-want) > 1e-6*want {
			t.Errorf("%+v: mixture mean %v vs Little mean %v", p, got, want)
		}
	}
}

// TestDistributionMM1Tail: for d=1 the sojourn is exponential with rate
// 1−ρ (M/M/1), giving an exact closed form to verify the machinery.
func TestDistributionMM1Tail(t *testing.T) {
	const rho = 0.6
	_, dist := solveDist(t, sqd.Params{N: 1, D: 1, Rho: rho}, 200)
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := math.Exp(-(1 - rho) * x)
		if got := dist.DelayTail(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("P(T > %v) = %v, want %v", x, got, want)
		}
	}
	// Quantiles of Exp(1−ρ): q-quantile = −ln(1−q)/(1−ρ).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -math.Log(1-q) / (1 - rho)
		if got := dist.Quantile(q, 1e-9); math.Abs(got-want) > 1e-5 {
			t.Errorf("quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// TestDistributionServerTailMM1: the d=1 marginal is geometric ρᵏ.
func TestDistributionServerTailMM1(t *testing.T) {
	const rho = 0.7
	_, dist := solveDist(t, sqd.Params{N: 2, D: 1, Rho: rho}, 150)
	for k := 0; k <= 10; k++ {
		want := math.Pow(rho, float64(k))
		if got := dist.ServerTail[k]; math.Abs(got-want) > 1e-6 {
			t.Errorf("P(server ≥ %d) = %v, want %v", k, got, want)
		}
	}
}

// TestServerTailDoublyExponential: the finite-N SQ(2) tail must collapse
// dramatically faster than geometric — the power-of-two effect in the
// distribution, and approach the asymptotic fixed point as N grows.
func TestServerTailDoublyExponential(t *testing.T) {
	if testing.Short() {
		t.Skip("N=6 cap-12 solve (~18.5k states) needs seconds; the clip cannot be reduced without moving the k=4 tail")
	}
	const rho = 0.9
	// Cap 12 keeps the space at C(18,6) ≈ 18.5k states; the SQ(2) tail at
	// level 12 is already ≈ 0, so the clip is invisible at k=4.
	_, dist := solveDist(t, sqd.Params{N: 6, D: 2, Rho: rho}, 12)
	// Geometric would give ρ⁴ ≈ 0.656; the SQ(2) asymptotic gives
	// ρ^15 ≈ 0.206. Finite N=6 must land near the latter.
	asy := asym.QueueTail(2, rho, 4)
	got := dist.ServerTail[4]
	if got > 0.4 {
		t.Errorf("P(server ≥ 4) = %v: no doubly-exponential collapse", got)
	}
	if math.Abs(got-asy) > 0.15 {
		t.Errorf("finite tail %v too far from asymptotic %v", got, asy)
	}
	// And the finite-N tail should sit slightly above the asymptotic one
	// at high load (the same finite-regime pessimism as the mean).
	if got < asy/2 {
		t.Errorf("finite tail %v implausibly below asymptotic %v", got, asy)
	}
}

// TestDistributionLittleLawServerTail: Σ_k≥1 ServerTail[k] = mean jobs per
// server = ρ·MeanDelay.
func TestDistributionLittleLawServerTail(t *testing.T) {
	p := sqd.Params{N: 3, D: 2, Rho: 0.75}
	res, dist := solveDist(t, p, 30)
	var jobs float64
	for k := 1; k < len(dist.ServerTail); k++ {
		jobs += dist.ServerTail[k]
	}
	want := p.Rho * res.MeanDelay
	if math.Abs(jobs-want) > 1e-6*want {
		t.Errorf("Σ ServerTail = %v, want ρ·E[T] = %v", jobs, want)
	}
}

func TestQuantilePanics(t *testing.T) {
	_, dist := solveDist(t, sqd.Params{N: 2, D: 2, Rho: 0.5}, 20)
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			dist.Quantile(q, 0)
		}()
	}
}
