// Package markov assembles CTMC generator matrices from sqd models over
// explicit state enumerations and computes stationary distributions and
// delay metrics. It provides the exact-model ground truth that the
// matrix-geometric bounds are validated against.
package markov

import (
	"fmt"
	"math"

	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// MissingPolicy controls what happens when a transition target is not part
// of the enumerated state space.
type MissingPolicy int

const (
	// MissingError treats an unindexed target as a fatal modelling bug.
	MissingError MissingPolicy = iota
	// MissingDrop silently drops the transition, turning the enumeration
	// boundary into a loss surface. Used to clip the exact model at a
	// queue cap; the dropped mass is reported so callers can check that
	// the truncation error is negligible.
	MissingDrop
)

// GeneratorTranspose builds Qᵀ in CSR form for model over the states of ix.
// The transpose orientation is what the Gauss–Seidel stationary solver
// consumes. It returns the matrix and the number of dropped transitions.
func GeneratorTranspose(model sqd.Model, ix *statespace.Index, policy MissingPolicy) (*mat.CSR, int, error) {
	n := ix.Len()
	ts := make([]mat.Triplet, 0, 8*n)
	dropped := 0
	for i := 0; i < n; i++ {
		m := ix.At(i)
		var out float64
		for _, tr := range sqd.Merged(model.Transitions(m)) {
			j, ok := ix.Of(tr.To)
			if !ok {
				if policy == MissingError {
					return nil, 0, fmt.Errorf("markov: transition %v → %v leaves the enumerated space", m, tr.To)
				}
				dropped++
				continue
			}
			if j == i {
				continue // self-loops are no-ops in a generator
			}
			ts = append(ts, mat.Triplet{Row: j, Col: i, Val: tr.Rate})
			out += tr.Rate
		}
		ts = append(ts, mat.Triplet{Row: i, Col: i, Val: -out})
	}
	return mat.NewCSR(n, n, ts), dropped, nil
}

// GeneratorDense builds Q as a dense matrix; used by tests and by the QBD
// boundary construction where blocks are small.
func GeneratorDense(model sqd.Model, ix *statespace.Index, policy MissingPolicy) (*mat.Dense, int, error) {
	n := ix.Len()
	q := mat.NewDense(n, n)
	dropped := 0
	for i := 0; i < n; i++ {
		m := ix.At(i)
		for _, tr := range sqd.Merged(model.Transitions(m)) {
			j, ok := ix.Of(tr.To)
			if !ok {
				if policy == MissingError {
					return nil, 0, fmt.Errorf("markov: transition %v → %v leaves the enumerated space", m, tr.To)
				}
				dropped++
				continue
			}
			if j == i {
				continue
			}
			q.Inc(i, j, tr.Rate)
			q.Inc(i, i, -tr.Rate)
		}
	}
	return q, dropped, nil
}

// Result summarizes a stationary solve.
type Result struct {
	Pi          []float64 // stationary distribution over the enumeration
	MeanJobs    float64   // E[#m]
	MeanWaiting float64   // E[Σ max(m_i − 1, 0)]
	MeanDelay   float64   // mean sojourn time E[waiting]/(λN) + 1 (Little)
	MeanWait    float64   // mean waiting time E[waiting]/(λN)
	TailMass    float64   // probability mass on the top total-jobs layer
}

// metrics fills the delay metrics of r from pi over ix.
func metrics(p sqd.Params, ix *statespace.Index, pi []float64) Result {
	r := Result{Pi: pi}
	maxTotal := 0
	for i := 0; i < ix.Len(); i++ {
		if t := ix.At(i).Total(); t > maxTotal {
			maxTotal = t
		}
	}
	for i, prob := range pi {
		s := ix.At(i)
		r.MeanJobs += prob * float64(s.Total())
		r.MeanWaiting += prob * float64(s.WaitingJobs())
		if s.Total() == maxTotal {
			r.TailMass += prob
		}
	}
	lamN := p.TotalArrivalRate()
	r.MeanWait = r.MeanWaiting / lamN
	r.MeanDelay = r.MeanWait + 1
	return r
}

// ExactOptions tunes SolveExact.
type ExactOptions struct {
	QueueCap  int     // per-queue truncation K (default: auto from ρ)
	Tol       float64 // Gauss–Seidel tolerance (default 1e-12)
	MaxSweeps int     // Gauss–Seidel sweep budget (default 200000)
}

func (o *ExactOptions) setDefaults(p sqd.Params) {
	if o.QueueCap <= 0 {
		// The per-queue tail decays at least geometrically with ratio ρ
		// (doubly exponentially for d ≥ 2); size the cap so ρ^K is far
		// below the solver tolerance...
		k := int(math.Ceil(math.Log(1e-14) / math.Log(p.Rho)))
		if p.D >= 2 {
			// ...but SQ(d≥2) tails collapse like ρ^(dᵏ), so a shallow cap
			// is already effectively infinite (TailMass reports the error).
			k = 24
		}
		if k < 10 {
			k = 10
		}
		// ...and never let the enumeration C(K+N, N) outgrow memory: shrink
		// K until the state count fits a fixed budget.
		const maxStates = 2 << 20
		for k > 4 && statespace.Binomial(k+p.N, p.N) > maxStates {
			k--
		}
		o.QueueCap = k
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 200000
	}
}

// SolveExact computes the stationary delay of the exact SQ(d) model on the
// queue-capped space {m sorted : m1 ≤ K}. Arrivals that would exceed the
// cap are dropped (loss truncation); TailMass reports the stationary mass
// on the largest enumerated total so callers can confirm the cap is
// effectively infinite. Only feasible for small N — the space has
// C(K+N, N) states.
func SolveExact(p sqd.Params, opts ExactOptions) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.setDefaults(p)
	states := statespace.EnumCapped(p.N, opts.QueueCap)
	ix := statespace.NewIndex(states)
	qt, _, err := GeneratorTranspose(&sqd.Exact{P: p}, ix, MissingDrop)
	if err != nil {
		return Result{}, err
	}
	pi, err := mat.StationaryGS(qt, opts.Tol, opts.MaxSweeps)
	if err != nil {
		return Result{}, fmt.Errorf("markov: exact solve N=%d d=%d ρ=%v: %w", p.N, p.D, p.Rho, err)
	}
	res := metrics(p, ix, pi)
	// Recompute tail mass as the probability of any queue at the cap: the
	// quantity that actually bounds the truncation error.
	res.TailMass = 0
	for i, prob := range pi {
		if ix.At(i)[0] == opts.QueueCap {
			res.TailMass += prob
		}
	}
	return res, nil
}

// SolveTruncated computes the stationary delay of an arbitrary model on an
// explicit finite enumeration. Used to solve the bound models by brute
// force (for cross-validation of the matrix-geometric solver) on
// S ∩ {#m ≤ maxTotal}.
func SolveTruncated(model sqd.Model, states []statespace.State, tol float64, maxSweeps int) (Result, error) {
	ix := statespace.NewIndex(states)
	qt, _, err := GeneratorTranspose(model, ix, MissingDrop)
	if err != nil {
		return Result{}, err
	}
	pi, err := mat.StationaryGS(qt, tol, maxSweeps)
	if err != nil {
		return Result{}, err
	}
	return metrics(model.Params(), ix, pi), nil
}
