package markov

import (
	"math"
	"testing"

	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

func TestGeneratorRowSumsZero(t *testing.T) {
	p := sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.7}, T: 2}
	states := statespace.EnumTruncated(p.N, p.T, 20)
	ix := statespace.NewIndex(states)
	for _, model := range []sqd.Model{
		&sqd.LowerBound{P: p},
		&sqd.UpperBound{P: p},
	} {
		q, _, err := GeneratorDense(model, ix, MissingDrop)
		if err != nil {
			t.Fatalf("%T: %v", model, err)
		}
		// All rows except those at the truncation frontier must sum to 0;
		// frontier rows lose their upward rate (MissingDrop).
		for i, s := range states {
			sum := 0.0
			for j := range states {
				sum += q.At(i, j)
			}
			frontier := s.Total() >= 20-p.N
			if !frontier && math.Abs(sum) > 1e-12 {
				t.Errorf("%T: row %v sums to %v", model, s, sum)
			}
			if sum > 1e-12 {
				t.Errorf("%T: row %v sums positive (%v)", model, s, sum)
			}
		}
	}
}

func TestGeneratorMissingError(t *testing.T) {
	p := sqd.Params{N: 2, D: 1, Rho: 0.5}
	states := statespace.EnumCapped(2, 1) // tiny: arrivals escape instantly
	ix := statespace.NewIndex(states)
	if _, _, err := GeneratorTranspose(&sqd.Exact{P: p}, ix, MissingError); err == nil {
		t.Error("MissingError did not reject an escaping transition")
	}
	if _, dropped, err := GeneratorTranspose(&sqd.Exact{P: p}, ix, MissingDrop); err != nil || dropped == 0 {
		t.Errorf("MissingDrop: err=%v dropped=%d, want nil and >0", err, dropped)
	}
}

// TestExactMM1 validates the full pipeline against the only analytically
// solvable case: d = 1, where each server is an independent M/M/1 queue
// with mean sojourn 1/(1−ρ).
func TestExactMM1(t *testing.T) {
	// The state space is C(K+N, N); keep deep caps (slowly decaying d=1
	// tails) to N ≤ 2 and use a moderate ρ for N = 3.
	cases := []struct {
		n   int
		rho float64
		cap int
	}{
		{1, 0.3, 120}, {1, 0.6, 120}, {1, 0.8, 140},
		{2, 0.3, 100}, {2, 0.6, 110}, {2, 0.8, 140},
		{3, 0.5, 50},
	}
	for _, c := range cases {
		if testing.Short() && c.n*c.cap >= 220 {
			// The deep-cap N=2 solves dominate the runtime; the shallow
			// cases already exercise every code path.
			continue
		}
		p := sqd.Params{N: c.n, D: 1, Rho: c.rho}
		res, err := SolveExact(p, ExactOptions{QueueCap: c.cap})
		if err != nil {
			t.Fatalf("N=%d ρ=%v: %v", c.n, c.rho, err)
		}
		want := 1 / (1 - c.rho)
		if math.Abs(res.MeanDelay-want) > 1e-6*want {
			t.Errorf("N=%d ρ=%v: delay = %v, want %v", c.n, c.rho, res.MeanDelay, want)
		}
		if res.TailMass > 1e-10 {
			t.Errorf("N=%d ρ=%v: truncation mass %v too large", c.n, c.rho, res.TailMass)
		}
	}
}

// TestExactThroughputConservation: with a negligible cap loss, the mean
// number of busy servers must equal the offered load λN = ρN.
func TestExactThroughputConservation(t *testing.T) {
	for _, cfg := range []sqd.Params{
		{N: 2, D: 2, Rho: 0.5},
		{N: 3, D: 2, Rho: 0.75},
		{N: 3, D: 3, Rho: 0.6},
	} {
		// d ≥ 2 queue tails decay doubly exponentially: a small cap is
		// effectively infinite (TailMass is checked in other tests).
		const cap = 30
		res, err := SolveExact(cfg, ExactOptions{QueueCap: cap})
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		states := statespace.EnumCapped(cfg.N, cap)
		var busy float64
		for i, s := range states {
			busy += res.Pi[i] * float64(s.Busy())
		}
		if want := cfg.Rho * float64(cfg.N); math.Abs(busy-want) > 1e-6 {
			t.Errorf("%+v: E[busy] = %v, want %v", cfg, busy, want)
		}
	}
}

// TestExactPowerOfTwoGain: the qualitative power-of-two effect must appear
// even at N=3: SQ(2) beats SQ(1), and JSQ beats SQ(2).
func TestExactPowerOfTwoGain(t *testing.T) {
	const rho = 0.75
	delay := func(d, cap int) float64 {
		res, err := SolveExact(sqd.Params{N: 3, D: d, Rho: rho}, ExactOptions{QueueCap: cap})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		return res.MeanDelay
	}
	// The d=1 solve is the expensive one (slow geometric tail needs a deep
	// cap); in short mode a cap of 45 still leaves ρ⁴⁵ ≈ 2e-6 tail mass,
	// invisible at the 1.5× gain threshold below.
	d1Cap := 80
	if testing.Short() {
		d1Cap = 45
	}
	d1, d2, d3 := delay(1, d1Cap), delay(2, 30), delay(3, 30)
	if !(d1 > d2 && d2 > d3) {
		t.Errorf("delays not ordered: SQ(1)=%v, SQ(2)=%v, JSQ=%v", d1, d2, d3)
	}
	// M/M/1 at ρ=0.75 has delay 4. At N=3 the finite-regime SQ(2) delay
	// (≈2.14) sits well above the asymptotic prediction (≈1.76) — the
	// paper's central observation — so the gain is ~1.87x, not the
	// asymptotic 2.3x.
	if d1/d2 < 1.5 {
		t.Errorf("power-of-two gain at ρ=0.75 only %vx, expected substantial", d1/d2)
	}
}

// TestSolveTruncatedSandwich: brute-force stationary solves of the two
// bound models must sandwich the exact model's delay (small N so the
// truncated spaces are effectively exact).
func TestSolveTruncatedSandwich(t *testing.T) {
	p := sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: 2}
	exact, err := SolveExact(p.Params, ExactOptions{QueueCap: 30})
	if err != nil {
		t.Fatal(err)
	}
	trunc := statespace.EnumTruncated(p.N, p.T, 250)
	lb, err := SolveTruncated(&sqd.LowerBound{P: p}, trunc, 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := SolveTruncated(&sqd.UpperBound{P: p}, trunc, 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb.MeanDelay <= exact.MeanDelay+1e-9) {
		t.Errorf("lower bound %v exceeds exact %v", lb.MeanDelay, exact.MeanDelay)
	}
	if !(ub.MeanDelay >= exact.MeanDelay-1e-9) {
		t.Errorf("upper bound %v below exact %v", ub.MeanDelay, exact.MeanDelay)
	}
	// The lower bound tightens as T grows (less jockeying): LB(T=3) must
	// improve on LB(T=2) and land close to the exact value.
	p3 := p
	p3.T = 3
	lb3, err := SolveTruncated(&sqd.LowerBound{P: p3}, statespace.EnumTruncated(p3.N, p3.T, 250), 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if lb3.MeanDelay < lb.MeanDelay-1e-9 {
		t.Errorf("LB not monotone in T: T=2 gives %v, T=3 gives %v", lb.MeanDelay, lb3.MeanDelay)
	}
	if lb3.MeanDelay > exact.MeanDelay+1e-9 {
		t.Errorf("LB(T=3) %v exceeds exact %v", lb3.MeanDelay, exact.MeanDelay)
	}
	if rel := (exact.MeanDelay - lb3.MeanDelay) / exact.MeanDelay; rel > 0.05 {
		t.Errorf("LB(T=3) off by %.1f%%, expected within 5%%", rel*100)
	}
}
