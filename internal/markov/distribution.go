package markov

import (
	"fmt"

	"finitelb/internal/asym"
	"finitelb/internal/mat"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// Distribution summarizes the stationary distributional metrics of the
// exact SQ(d) model, beyond the mean that the paper's bounds target.
type Distribution struct {
	// Selected[k] is the probability that an arriving job joins a queue
	// currently holding k jobs (PASTA: arrivals see the stationary state;
	// the polling rates weight the tie groups).
	Selected []float64
	// ServerTail[k] is the stationary probability that a uniformly chosen
	// server holds at least k jobs — the finite-N counterpart of
	// Mitzenmacher's fixed point s_k.
	ServerTail []float64
}

// DelayTail returns P(sojourn > t): a job that joins a queue with k jobs
// ahead of it waits Erlang(k+1, 1) in total, by memorylessness of the
// exponential service.
func (d *Distribution) DelayTail(t float64) float64 {
	sum := 0.0
	for k, pk := range d.Selected {
		if pk == 0 {
			continue
		}
		sum += pk * asym.ErlangTail(k+1, t)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// MeanDelay returns the mean sojourn implied by the selected-queue
// distribution, Σ_k (k+1)·Selected[k]; it must match the Little's-law mean
// of the stationary solve (tested), providing an internal consistency
// check.
func (d *Distribution) MeanDelay() float64 {
	sum := 0.0
	for k, pk := range d.Selected {
		sum += float64(k+1) * pk
	}
	return sum
}

// Quantile returns the smallest t (to within tol) with P(sojourn ≤ t) ≥ q.
func (d *Distribution) Quantile(q float64, tol float64) float64 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("markov: quantile level %v outside (0,1)", q))
	}
	if tol <= 0 {
		tol = 1e-9
	}
	lo, hi := 0.0, 1.0
	for d.DelayTail(hi) > 1-q {
		hi *= 2
		if hi > 1e9 {
			return hi
		}
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if d.DelayTail(mid) > 1-q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExactDistribution computes the stationary distributional metrics of the
// exact model from a SolveExact-style solution. It re-derives the polling
// weights per state, so it needs the same enumeration the solve used.
func ExactDistribution(p sqd.Params, ix *statespace.Index, pi []float64) *Distribution {
	lamN := p.TotalArrivalRate()
	maxLevel := 0
	for i := 0; i < ix.Len(); i++ {
		if l := int(ix.At(i)[0]); l > maxLevel {
			maxLevel = l
		}
	}
	d := &Distribution{
		Selected:   make([]float64, maxLevel+1),
		ServerTail: make([]float64, maxLevel+2),
	}
	for i := 0; i < ix.Len(); i++ {
		m := ix.At(i)
		prob := pi[i]
		if prob == 0 {
			continue
		}
		// Selected-queue distribution: an arrival joins tie group g with
		// probability (group arrival rate)/λN, finding g.Level jobs there.
		for _, g := range m.Groups() {
			if r := sqd.ArrivalRate(p, g); r > 0 {
				d.Selected[g.Level] += prob * r / lamN
			}
		}
		// Server-occupancy marginal.
		for _, v := range m {
			for k := 0; k <= v; k++ {
				d.ServerTail[k] += prob / float64(p.N)
			}
		}
	}
	return d
}

// SolveExactDistribution runs SolveExact and extracts the distributional
// metrics in one call.
func SolveExactDistribution(p sqd.Params, opts ExactOptions) (Result, *Distribution, error) {
	if err := p.Validate(); err != nil {
		return Result{}, nil, err
	}
	opts.setDefaults(p)
	states := statespace.EnumCapped(p.N, opts.QueueCap)
	ix := statespace.NewIndex(states)
	qt, _, err := GeneratorTranspose(&sqd.Exact{P: p}, ix, MissingDrop)
	if err != nil {
		return Result{}, nil, err
	}
	pi, err := mat.StationaryGS(qt, opts.Tol, opts.MaxSweeps)
	if err != nil {
		return Result{}, nil, err
	}
	res := metrics(p, ix, pi)
	return res, ExactDistribution(p, ix, pi), nil
}
