package figures

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"finitelb/internal/plot"
)

// tinyBudget keeps figure tests fast; statistical assertions are loose
// accordingly.
var tinyBudget = SimBudget{Jobs: 60_000, Seed: 5}

func TestFig9SmallGrid(t *testing.T) {
	cfg := Fig9Config{Rho: 0.75, Ds: []int{2, 5}, Ns: []int{3, 10, 40}}
	chart, err := Fig9(cfg, tinyBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(chart.Series))
	}
	d2 := chart.Series[0]
	if len(d2.X) != 3 {
		t.Fatalf("d=2 points = %d, want 3", len(d2.X))
	}
	// The relative error must shrink substantially from N=3 to N=40.
	if !(d2.Y[0] > d2.Y[2]) {
		t.Errorf("error not decreasing in N: %v", d2.Y)
	}
	// d=5 skips N=3 < d.
	if len(chart.Series[1].X) != 2 {
		t.Errorf("d=5 points = %v, want N ≥ d only", chart.Series[1].X)
	}
	var buf bytes.Buffer
	if err := chart.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ρ = 0.75") {
		t.Error("chart title missing utilization")
	}
}

func TestFig10SmallGrid(t *testing.T) {
	cfg := Fig10Config{N: 3, D: 2, T: 3, Rhos: []float64{0.4, 0.7, 0.9}}
	points, chart, err := Fig10(cfg, tinyBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if !(p.Lower > 1 && p.Simulated > 1 && p.Asymptotic > 1) {
			t.Errorf("ρ=%v: degenerate values %+v", p.Rho, p)
		}
		if !math.IsNaN(p.Upper) && p.Upper < p.Lower {
			t.Errorf("ρ=%v: upper %v below lower %v", p.Rho, p.Upper, p.Lower)
		}
	}
	if bad := CheckFig10Invariants(points); len(bad) > 0 {
		t.Errorf("invariant violations: %v", bad)
	}
	if got := len(chart.Series); got != 4 {
		t.Errorf("series = %d, want 4", got)
	}
}

func TestFig10UnstableUpperIsNaN(t *testing.T) {
	cfg := Fig10Config{N: 3, D: 2, T: 2, Rhos: []float64{0.95}}
	points, _, err := Fig10(cfg, tinyBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(points[0].Upper) {
		t.Errorf("T=2 at ρ=0.95 should be unstable, got UB %v", points[0].Upper)
	}
	if points[0].Lower <= 1 {
		t.Errorf("lower bound %v must still compute", points[0].Lower)
	}
}

func TestCheckFig10InvariantsFlagsViolations(t *testing.T) {
	bad := CheckFig10Invariants([]Fig10Point{{
		Rho: 0.9, Lower: 5, Upper: 2, Simulated: 3, SimCI: 0.001, Asymptotic: 6,
	}})
	if len(bad) != 3 {
		t.Errorf("want 3 violations (LB above sim, UB below sim, asym above sim), got %v", bad)
	}
}

func TestDefaultConfigs(t *testing.T) {
	f9 := DefaultFig9(0.95)
	if f9.Rho != 0.95 || len(f9.Ds) != 5 || f9.Ns[len(f9.Ns)-1] != 250 {
		t.Errorf("DefaultFig9 = %+v", f9)
	}
	f10 := DefaultFig10(12, 3)
	if f10.N != 12 || f10.D != 2 || f10.T != 3 || len(f10.Rhos) != 19 {
		t.Errorf("DefaultFig10 = %+v", f10)
	}
}

// TestFigSeriesIdenticalAcrossWorkerCounts: every cell is seeded from its
// own coordinates, so the assembled series must be bit-identical whether
// the engine pool runs 1, 2, or GOMAXPROCS workers.
func TestFigSeriesIdenticalAcrossWorkerCounts(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}

	f9 := Fig9Config{Rho: 0.75, Ds: []int{2, 5}, Ns: []int{5, 20}}
	var ref9 *plot.Chart
	for _, w := range workerCounts {
		budget := tinyBudget
		budget.Workers = w
		chart, err := Fig9(f9, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ref9 == nil {
			ref9 = chart
			continue
		}
		for si, s := range chart.Series {
			if !reflect.DeepEqual(s, ref9.Series[si]) {
				t.Errorf("Fig9 workers=%d: series %q differs from serial run", w, s.Name)
			}
		}
	}

	f10 := Fig10Config{N: 3, D: 2, T: 3, Rhos: []float64{0.4, 0.7, 0.9}}
	var ref10 []Fig10Point
	for _, w := range workerCounts {
		budget := tinyBudget
		budget.Workers = w
		points, _, err := Fig10(f10, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ref10 == nil {
			ref10 = points
			continue
		}
		if !reflect.DeepEqual(points, ref10) {
			t.Errorf("Fig10 workers=%d: points differ from serial run", w)
		}
	}
}
