// Package figures regenerates every data figure of the paper's evaluation
// (Section V): Figure 9's relative error of the asymptotic approximation
// versus simulation, and Figure 10's bound/simulation/asymptotic delay
// curves across utilizations. It is shared by cmd/figures and the
// top-level benchmark harness.
package figures

import (
	"errors"
	"fmt"
	"math"

	"finitelb/internal/asym"
	"finitelb/internal/engine"
	"finitelb/internal/plot"
	"finitelb/internal/qbd"
	"finitelb/internal/sim"
	"finitelb/internal/sqd"
)

// SimBudget controls the simulation fidelity of the figure runs. The paper
// simulates 1e8 jobs per point and discards the first 1e7; that takes hours
// in total, so the default budget is scaled down 50× — enough for every
// qualitative claim — and can be raised from the command line.
type SimBudget struct {
	Jobs int64
	Seed uint64
	// Workers bounds the number of grid cells evaluated concurrently by
	// the engine pool; 0 selects GOMAXPROCS. Every cell is seeded from its
	// own coordinates, so the assembled series are identical for any
	// worker count.
	Workers int
}

func (b *SimBudget) setDefaults() {
	if b.Jobs <= 0 {
		b.Jobs = 2_000_000
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
}

// pool returns the engine pool the panel's grid cells run on.
func (b SimBudget) pool() *engine.Pool { return engine.New(b.Workers) }

// Fig9Config describes one panel of Figure 9.
type Fig9Config struct {
	Rho float64 // utilization (0.75 for panel a, 0.95 for panel b)
	Ds  []int   // choice counts; paper: 2, 5, 10, 25, 50
	Ns  []int   // server counts; paper sweeps to 250
}

// DefaultFig9 returns the paper's panel configuration.
func DefaultFig9(rho float64) Fig9Config {
	return Fig9Config{
		Rho: rho,
		Ds:  []int{2, 5, 10, 25, 50},
		Ns:  []int{5, 10, 15, 25, 50, 75, 100, 150, 200, 250},
	}
}

// Fig9 computes the relative error (%) of the asymptotic delay (Eq. (16))
// against simulation, one series per d over the N axis (points with N < d
// are skipped).
func Fig9(cfg Fig9Config, budget SimBudget) (*plot.Chart, error) {
	budget.setDefaults()
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Fig 9: relative error of asymptotic delay vs simulation (ρ = %g)", cfg.Rho),
		XLabel: "number of servers N",
		YLabel: "relative error (%)",
	}
	// Enumerate the (d, N) grid, submit the cells to the engine pool with
	// per-cell deterministic seeds, then assemble series in grid order.
	type point struct {
		d, n   int
		relErr float64
	}
	var pts []point
	for _, d := range cfg.Ds {
		for _, n := range cfg.Ns {
			if n >= d {
				pts = append(pts, point{d: d, n: n})
			}
		}
	}
	err := budget.pool().ForEach(len(pts), func(i int) error {
		p := &pts[i]
		res, err := sim.Run(sqd.Params{N: p.n, D: p.d, Rho: cfg.Rho}, sim.Options{
			Jobs: budget.Jobs,
			Seed: budget.Seed + uint64(p.n)*1000 + uint64(p.d),
		})
		if err != nil {
			return fmt.Errorf("figures: fig9 N=%d d=%d: %w", p.n, p.d, err)
		}
		p.relErr = math.Abs(res.MeanDelay-asym.Delay(p.d, cfg.Rho)) / res.MeanDelay * 100
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range cfg.Ds {
		s := plot.Series{Name: fmt.Sprintf("d=%d", d)}
		for _, p := range pts {
			if p.d != d {
				continue
			}
			s.X = append(s.X, float64(p.n))
			s.Y = append(s.Y, p.relErr)
		}
		chart.Series = append(chart.Series, s)
	}
	return chart, nil
}

// Fig10Config describes one panel of Figure 10.
type Fig10Config struct {
	N, D, T int
	Rhos    []float64
}

// DefaultFig10 returns a paper panel: SQ(2) with the given N and T over
// the utilization axis.
func DefaultFig10(n, t int) Fig10Config {
	rhos := make([]float64, 0, 19)
	for r := 0.05; r < 0.96; r += 0.05 {
		rhos = append(rhos, math.Round(r*100)/100)
	}
	return Fig10Config{N: n, D: 2, T: t, Rhos: rhos}
}

// Fig10Point is one utilization's worth of Figure 10 data.
type Fig10Point struct {
	Rho        float64
	Lower      float64
	Upper      float64 // NaN when the upper-bound model is unstable at this ρ
	Simulated  float64
	SimCI      float64
	Asymptotic float64
}

// Fig10 computes the four curves of one Figure 10 panel: matrix-geometric
// upper bound, simulation, improved (Theorem 3) lower bound, and the
// asymptotic approximation. Upper-bound instability at high ρ is recorded
// as NaN, mirroring the truncated curves in the paper's plots.
func Fig10(cfg Fig10Config, budget SimBudget) ([]Fig10Point, *plot.Chart, error) {
	budget.setDefaults()
	points := make([]Fig10Point, len(cfg.Rhos))
	err := budget.pool().ForEach(len(cfg.Rhos), func(i int) error {
		rho := cfg.Rhos[i]
		bp := sqd.BoundParams{Params: sqd.Params{N: cfg.N, D: cfg.D, Rho: rho}, T: cfg.T}
		pt := Fig10Point{Rho: rho, Asymptotic: asym.Delay(cfg.D, rho)}

		lb, err := qbd.Solve(&sqd.LowerBound{P: bp}, qbd.Options{ImprovedLB: true})
		if err != nil {
			return fmt.Errorf("figures: fig10 lower ρ=%v: %w", rho, err)
		}
		pt.Lower = lb.MeanDelay

		ub, err := qbd.Solve(&sqd.UpperBound{P: bp}, qbd.Options{})
		switch {
		case errors.Is(err, qbd.ErrUnstable):
			pt.Upper = math.NaN()
		case err != nil:
			return fmt.Errorf("figures: fig10 upper ρ=%v: %w", rho, err)
		default:
			pt.Upper = ub.MeanDelay
		}

		sr, err := sim.Run(bp.Params, sim.Options{Jobs: budget.Jobs, Seed: budget.Seed + uint64(rho*1000)})
		if err != nil {
			return fmt.Errorf("figures: fig10 sim ρ=%v: %w", rho, err)
		}
		pt.Simulated = sr.MeanDelay
		pt.SimCI = sr.HalfWidth
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	chart := &plot.Chart{
		Title: fmt.Sprintf("Fig 10: average delay vs utilization, SQ(%d), N=%d, T=%d",
			cfg.D, cfg.N, cfg.T),
		XLabel: "utilization ρ",
		YLabel: "average delay",
		YMax:   5, // the paper's axis limit
	}
	series := []struct {
		name string
		get  func(Fig10Point) float64
	}{
		{"upper-bound", func(p Fig10Point) float64 { return p.Upper }},
		{"simulation", func(p Fig10Point) float64 { return p.Simulated }},
		{"lower-bound", func(p Fig10Point) float64 { return p.Lower }},
		{"asymptotic", func(p Fig10Point) float64 { return p.Asymptotic }},
	}
	for _, sp := range series {
		s := plot.Series{Name: sp.name}
		for _, p := range points {
			s.X = append(s.X, p.Rho)
			s.Y = append(s.Y, sp.get(p))
		}
		chart.Series = append(chart.Series, s)
	}
	return points, chart, nil
}

// CheckFig10Invariants verifies the qualitative claims of Figure 10 on
// computed points: bounds bracket simulation (within CI slack), and the
// asymptotic curve underestimates at high utilization. It returns a
// human-readable list of violations (empty means the panel reproduces).
func CheckFig10Invariants(points []Fig10Point) []string {
	var bad []string
	for _, p := range points {
		slack := 4*p.SimCI + 0.02*p.Simulated
		if p.Lower > p.Simulated+slack {
			bad = append(bad, fmt.Sprintf("ρ=%.2f: lower bound %.4f above simulation %.4f", p.Rho, p.Lower, p.Simulated))
		}
		if !math.IsNaN(p.Upper) && p.Upper < p.Simulated-slack {
			bad = append(bad, fmt.Sprintf("ρ=%.2f: upper bound %.4f below simulation %.4f", p.Rho, p.Upper, p.Simulated))
		}
		if p.Rho >= 0.9 && p.Asymptotic > p.Simulated+slack {
			bad = append(bad, fmt.Sprintf("ρ=%.2f: asymptotic %.4f above simulation %.4f at high load", p.Rho, p.Asymptotic, p.Simulated))
		}
	}
	return bad
}
