// Package finitelb computes finite-regime delay bounds for randomized load
// balancing, reproducing Godtschalk & Ciucu, "Randomized Load Balancing in
// Finite Regimes" (ICDCS 2016).
//
// The SQ(d) ("power-of-d") policy dispatches each arriving job to the
// least-loaded of d uniformly sampled servers out of N. Its delay is known
// exactly only asymptotically (N → ∞, Mitzenmacher's fixed point); this
// package computes *non-asymptotic* stochastic lower and upper bounds on
// the mean delay for any concrete N, by solving two modified Markov models
// with matrix-geometric (quasi-birth-death) techniques:
//
//   - the lower-bound model generalizes threshold jockeying: whenever the
//     longest/shortest queue spread would exceed a threshold T, a job jumps
//     toward the shortest queue, making the system slightly better;
//   - the upper-bound model wastes the offending service completions and
//     pads arrivals with phantom work, making the system slightly worse.
//
// Both live on a truncated state space whose blocks repeat, so stationary
// distributions follow Neuts' matrix-geometric form π_{q+1} = π_q·R; for
// the lower bound the rate matrix collapses to the scalar ρᴺ (the paper's
// Theorem 3), making it essentially free to evaluate.
//
// # Quick start
//
//	sys, err := finitelb.NewSystem(6, 2, 0.9) // N=6 servers, d=2 choices, ρ=0.9
//	if err != nil { ... }
//	b, err := sys.DelayBounds(3) // threshold T=3
//	if err != nil { ... }
//	fmt.Printf("delay ∈ [%.3f, %.3f], asymptotic %.3f\n",
//	    b.Lower.MeanDelay, b.Upper.MeanDelay, sys.AsymptoticDelay())
//
// The package also ships the exact-model numerical solver (small N), a
// discrete-event simulator, and Mitzenmacher's asymptotic formula, so the
// full evaluation of the paper (Figures 9 and 10) regenerates from this
// API alone; see cmd/figures.
package finitelb
