// Package finitelb computes finite-regime delay bounds for randomized load
// balancing, reproducing Godtschalk & Ciucu, "Randomized Load Balancing in
// Finite Regimes" (ICDCS 2016).
//
// The SQ(d) ("power-of-d") policy dispatches each arriving job to the
// least-loaded of d uniformly sampled servers out of N. Its delay is known
// exactly only asymptotically (N → ∞, Mitzenmacher's fixed point); this
// package computes *non-asymptotic* stochastic lower and upper bounds on
// the mean delay for any concrete N, by solving two modified Markov models
// with matrix-geometric (quasi-birth-death) techniques:
//
//   - the lower-bound model generalizes threshold jockeying: whenever the
//     longest/shortest queue spread would exceed a threshold T, a job jumps
//     toward the shortest queue, making the system slightly better;
//   - the upper-bound model wastes the offending service completions and
//     pads arrivals with phantom work, making the system slightly worse.
//
// Both live on a truncated state space whose blocks repeat, so stationary
// distributions follow Neuts' matrix-geometric form π_{q+1} = π_q·R; for
// the lower bound the rate matrix collapses to the scalar ρᴺ (the paper's
// Theorem 3), making it essentially free to evaluate.
//
// # Quick start
//
//	sys, err := finitelb.NewSystem(6, 2, 0.9) // N=6 servers, d=2 choices, ρ=0.9
//	if err != nil { ... }
//	b, err := sys.DelayBounds(3) // threshold T=3
//	if err != nil { ... }
//	fmt.Printf("delay ∈ [%.3f, %.3f], asymptotic %.3f\n",
//	    b.Lower.MeanDelay, b.Upper.MeanDelay, sys.AsymptoticDelay())
//
// The package also ships the exact-model numerical solver (small N), a
// discrete-event simulator, and Mitzenmacher's asymptotic formula, so the
// full evaluation of the paper (Figures 9 and 10) regenerates from this
// API alone; see cmd/figures.
//
// # Parallel evaluation engine
//
// The evaluation pipeline is embarrassingly parallel: every (N, d, ρ, T)
// grid cell of a figure panel or sweep is independent. internal/engine
// provides the bounded worker pool (GOMAXPROCS-sized by default,
// configurable) that fans cells out and merges results deterministically
// in submission order, so output is bit-identical for any worker count;
// internal/figures, cmd/figures (-workers), and cmd/sweep (-workers) all
// submit their grids through it.
//
// The simulator parallelizes one level deeper: sim.Options.Replications
// splits a measured-job budget across R independently seeded replications
// (seeds derived from the master seed via a PCG stream) run concurrently
// and merged into a single Result with pooled mean, variance, confidence
// interval, and quantile histogram. R=1 — the default — is bit-identical
// to the legacy serial stream; larger R is statistically equivalent.
// Underneath, the dense matmul that dominates the QBD logarithmic
// reduction is cache-blocked and allocation-free (mat.Dense.MulTo with
// reused workspaces).
//
// # Pluggable workloads and policies
//
// The analytic machinery covers exactly one scenario — Poisson arrivals,
// exponential unit-rate homogeneous servers, SQ(d) dispatch. The
// simulator goes beyond it: internal/workload plugs arrival processes,
// unit-mean service-time laws, per-server speed factors, and dispatch
// policies into the event loop, selected through spec strings on
// SimOptions (Arrival, Service, Policy, Speeds) and the matching
// cmd/sweep flags (-mode sim -arrival -service -policies -speeds).
//
// # Workload spec grammar
//
// Every workload piece parses from a compact spec string of the shape
// NAME[:ARGS], where ARGS is a comma list of KEY=VALUE pairs and the
// first token may be the bare value of the spec's primary key
// ("erlang:4" ≡ "erlang:k=4"). Unknown, duplicate, or malformed keys are
// rejected with the accepted grammar restated in the error. The full
// vocabulary:
//
//	arrivals  "poisson" (default) | "deterministic" | "erlang:K"
//	          (smoother, SCV 1/K) | "hyperexp:CV2" (bursty, SCV ≥ 1)
//	services  "exponential" (default) | "deterministic" | "erlang:K" |
//	          "pareto:ALPHA[,h=H]" (heavy-tailed bounded Pareto,
//	          default cap h=1000 mean service times)
//	policies  "sqd" (default, the paper's SQ(d); "sqd:D" overrides d) |
//	          "jsq" | "jiq" | "lwl" (least-work-left, dispatching on
//	          actual outstanding work) | "round-robin" | "random"
//	speeds    comma list ("1,1,2.5") or SPEEDxCOUNT groups ("1x8,4x2")
//
// Every combination with a classical closed form is pinned to it as a
// correctness oracle (internal/sim tests):
//
//   - default Poisson/exponential/SQ(d): bit-identical to the
//     pre-workload simulator AND inside the paper's QBD lower/upper delay
//     bounds on an (N, d, ρ, T) grid;
//   - M/G/1 (N=1, d=1, any service law): Pollaczek–Khinchine via the
//     law's E[S²];
//   - GI/M/1 (N=1, d=1, any arrival process): 1/(1−σ) with σ from
//     Theorem 2's embedded σ-equation (internal/asym);
//   - round-robin + deterministic arrivals: per-server D/M/1, same σ
//     machinery;
//   - random at any N: independent M/M/1 queues;
//   - single-server speed s: M/M/1 with both rates scaled by s;
//   - LWL at N=1 (any service law): the same M/G/1, exercising the
//     work-tracking event loop.
//
// The remaining combinations — JIQ, SQ(d) under non-Poisson or
// heavy-tailed workloads, heterogeneous fleets under any load-aware
// policy — are simulation-only and validated by ordering properties
// (JSQ ≤ SQ(2) ≤ random at equal load; LWL ≤ JSQ under heavy-tailed
// service, where queue length is a poor proxy for work) and
// seed-determinism tests. The default configuration costs nothing for
// the pluggability: it resolves to the original concrete event loop (see
// internal/sim), and both loops are held to the same bit-identity
// goldens.
//
// # From model to machine
//
// Everything above evaluates the paper in model space — closed forms,
// matrix-geometric solves, virtual-time simulation. internal/lb closes
// the remaining gap: a live dispatcher runtime serving real concurrent
// traffic on N goroutine servers with bounded FIFO queues, routing
// through the *same* workload.Policy implementations, measuring through
// the *same* internal/stats accumulators, and reporting in the *same*
// unit (multiples of the mean service time). A job's requirement is
// rendered as wall-clock time by a self-calibrating sleeper; dispatch
// samples a sharded atomic queue-length table (O(d) per SQ(d) decision,
// no global lock) and a lock-free idle stack serves JIQ; cmd/lbd exposes
// the farm over HTTP (POST /work, /metrics, /healthz) with a built-in
// open-loop load generator mode.
//
// The calibration methodology — and the repository's headline
// end-to-end test (internal/lb/calibrate_test.go, skipped under -short)
// — is: drive the live farm with Poisson arrivals and exponential
// service under SQ(2) at (N, ρ) ∈ {2, 10} × {0.7, 0.9}, and assert the
// *measured* mean sojourn falls inside the paper's QBD lower/upper
// bracket, with slack for the batch-means confidence interval and for
// host timer jitter (which the Summary's realized-service gauge makes
// visible). The same harness checks the policy ordering holds live.
// Two reproduction paths:
//
//	go test -run TestLiveDelayWithinQBDBounds -v ./internal/lb
//	go run ./examples/livelb
//
// Live timing fidelity is the interesting engineering problem: hosts
// overshoot time.Sleep by anywhere from ~50µs to over a millisecond, and
// naive per-job sleeping compounds that error through every queue into
// an effective utilization far above the nominal ρ. The runtime defeats
// this twice over: the sleeper learns the host's overshoot online and
// yield-spins only across the learned uncertainty margin, and each
// server schedules completions on its own work clock (deadlines chain
// from max(arrival, previous deadline), the ideal FIFO schedule), so
// scheduling noise delays only the observation of each completion and
// never inflates the queueing dynamics themselves. Dispatch benchmarks
// for the hot path live in internal/lb/bench_test.go; scripts/bench_lb.sh
// records them to BENCH_lb.json.
//
// # Dispatch at scale
//
// SQ(d) samples d queues per job, but the global-information policies —
// JSQ over queue lengths, LWL over outstanding work — need an argmin over
// all N, and the reference O(N) scan prices that at ~9–12µs per pick at
// N=1000, capping a live farm near 80k dispatches/sec exactly where
// large-N experiments get interesting. internal/minindex removes the
// asymptote: a tournament min-tree over the per-server keys maintains
// (min, tie count) at every node, giving O(log N) repair per state change
// and O(log N) argmin per pick, with ties broken *exactly* uniformly by
// descending on tie counts — the same unbiasedness contract the scan
// pickers satisfy (reservoir tie-breaking plus a rotated scan origin, so
// a directional pass over live queues cannot favour low-numbered
// servers).
//
// The index activates by size: at N ≥ minindex.Threshold (64) the
// simulator's farm view mounts a sequential tree and the live runtime
// mounts a lock-free one over its padded atomic slot table; below it both
// keep the scan, which beats tree walks on a few cache lines. The
// selection is invisible through the workload.Picker interface — JSQ and
// LWL ask their Queues view for workload.ArgminQueues/ArgminWorkQueues
// and fall back to scanning when the host offers no index — and changes
// only rng consumption, never the policy's law (pinned by agreement and
// seed-determinism tests in internal/sim). The live tree is repaired by
// compare-and-swap with per-node version tags; a randomized property test
// drives concurrent enqueue/complete churn under -race and asserts the
// tree's argmin matches a naive scan of the atomic table at every
// quiescent point. The live LWL index keys on outstanding nominal work
// (dispatch → completion, µs-quantized, speed-scaled) rather than the
// scan view's decaying in-service remainder; the two orderings agree
// whenever backlogs differ by at least one job.
//
// The dispatch path is also multi-producer: lb.GenConfig.Dispatchers fans
// the open-loop generator across D goroutines sharing one farm (table,
// index, idle stack) — the multi-front-end model, cmd/lbd -dispatchers —
// and GenConfig.Batch (-batch) lets each dispatcher drain up to K overdue
// arrivals per sleeper wake-up, amortizing pacing costs under burst.
// BenchmarkDispatchContended/D={1,2,4,8} tracks the shared-state cost of
// fan-in (on a single-core host ns/op holding flat as D grows is the
// no-collapse ceiling; scaling with D needs cores), and the N=10000 rows
// in BENCH_lb.json record the sub-µs indexed picks two decades past where
// the scan gave out. When a drained burst lands several jobs on the same
// server, the generator coalesces them into a single channel send per
// server per wake-up (pure transport — D=1 runs stay draw-identical to
// the unbatched stream, pinned by test).
//
// # Simulator performance
//
// The discrete-event simulator is the cost floor under every sweep the
// analytic side cannot reach, so its event core is engineered and
// benchmarked like the live dispatch path. Three loops exist, all
// producing identical draws for identical wirings (pinned by equivalence
// tests and the pre-workload bit-identity goldens): a hand-specialized
// loop for the paper's default wiring (Poisson × exponential × SQ(d),
// any speeds), a generics-stenciled typed loop covering every built-in
// arrival law × service law × policy with concrete samplers and
// pickers, and the interface loop that still serves exotic user-supplied
// workload implementations. Draws come from internal/frand, a concrete
// PCG re-derivation of math/rand/v2's exact streams (bit-identity pinned
// in that package), so the hot loops pay no rand.Source dispatch.
//
// The completion tracker — "which server finishes next" — was rebuilt
// from a container/heap binary heap (three interface calls per sift
// level, ~half of all event time at N ≥ 250) into measured concrete
// contenders: a flat scan (wins at N ≤ 8), a 4-ary indexed min-heap and
// a 4-ary (key, id) tournament tree (both branch-free over the integer
// bit patterns of the completion times), and a calendar queue that
// exploits the event loop's monotone re-key pattern for amortized O(1)
// updates (wins at N ≥ 512 under light-tailed service; the tournament
// tree takes the mid range and heavy-tailed laws, whose deep keys defeat
// the calendar's window sweep). BenchmarkTracker records the crossover;
// internal/sim/tracker.go documents why each loser lost.
//
// scripts/bench_sim.sh runs BenchmarkSimJobs — {fast, fast-hist,
// pluggable-default, jsq-indexed, lwl-work-aware} × N ∈ {10, 250, 1000,
// 10000} at ρ = 0.9 (fast vs fast-hist is the sketch-vs-histogram tail
// estimator axis) — and writes BENCH_sim.json at the repository root:
// one record per configuration with ns/job, events/sec (one measured
// job = one arrival plus one departure event, so events/sec =
// 2e9/ns_per_op), allocation counts, and the measurement stream's
// state_bytes footprint, with the pre-overhaul baseline embedded under
// "baseline" so the trajectory travels with the file. The steady-state
// event paths are allocation-free (guarded by TestAllocFreeEventPath in
// CI); after the overhaul the loop is bound by the irreducible parts —
// the bit-pinned rng draws, the statistics accumulators, and one
// genuinely unpredictable arrival-vs-departure branch per event — with
// the tracker down to ~15% of event time.
//
// # Streaming observability
//
// Every delay number the repository reports — simulator quantiles, live
// Summary percentiles, Prometheus histograms — flows through one
// accumulator, internal/stats.Stream, and since PR 7 its default tail
// estimator is a mergeable DDSketch-style quantile sketch
// (internal/stats/sketch.go) rather than a fixed-range histogram. The
// sketch holds log-spaced buckets at relative accuracy α = 1%
// (γ = (1+α)/(1−α); bucket i covers (γ^(i−1), γ^i]), so any quantile of
// any positive-valued stream — p50 through p999, at any N and any run
// length — comes back within α of the exact order statistic, in ~9 KB
// of state instead of the histogram's 200 KB, with no range to
// configure and no silent clipping. A bounded bucket budget (1024
// log-spaced buckets ≈ 8 decades of dynamic range) caps worst-case
// state by collapsing the lowest buckets toward a canonical cutoff;
// collapsed-region quantiles degrade to upper bounds (Clamped() reports
// it) while the upper tail keeps the α guarantee.
//
// Mergeability is the load-bearing property: the collapse rule is
// canonical (final state is a pure function of the observation
// multiset), so merging per-replication or per-server shard sketches in
// any order is bit-identical to sketching the whole stream — pinned by
// white-box state-equality tests under forced collapse, and by an
// accuracy oracle comparing sketch quantiles against exact sorted-sample
// quantiles on exponential, Erlang, and bounded-Pareto streams. That is
// what lets sim.Replications pool tails exactly, lets lb.Recorder keep a
// sketch per server (recShards = 1024) with cheap exact Snapshot merges,
// and is the unit-compatible substrate a sharded multi-dispatcher
// cluster or an SLO controller needs for honest tail reporting (ROADMAP
// items 2 and 4; this section delivers item 5). cmd/lbd exports the
// merged sketch natively: p50/p95/p99/p999 quantile gauges plus a
// cumulative lbd_delay_service_times Prometheus histogram with
// log-spaced le buckets.
//
// The fixed histogram remains behind stats.NewStream and
// sim.Options.Tail = TailHistogram — the pre-PR-7 bit-identity goldens
// pin it — and PR 7 also fixed its long-hidden overflow bugs: Add and
// Tail converted to int before range-checking, so observations beyond
// ~1.8e17·width overflowed the conversion and panicked (or corrupted a
// bucket) instead of counting as overflow. Both paths now float-guard
// first; Histogram.Overflow()/Stream.Overflow() expose the clipped
// count, sim.Result and lb.Summary surface it, and lbd's load generator
// flags a clipped p99 as a lower bound. The sketch path never clips —
// its Overflow() is identically zero.
//
// Both estimators ride the same zero-allocation contract as the event
// loops: Sketch.Add/Merge and the batched Stream.AddBatch are
// //finitelb:hotpath-annotated, finitelint-clean, and covered by
// TestAllocFreeEventPath.
//
// # Tracing the job lifecycle
//
// Aggregates answer "how is the system doing"; the flight recorder
// answers "what happened to that job". internal/trace records a span per
// sampled job — arrival, pick, enqueue, service start, completion, plus
// the chosen server, the queue length the picker saw, and how many
// servers tied for the minimum — through five ordered stage calls
// (Start/Picked/Enqueued/Started/Done, Abort for rejected jobs). Spans
// live in a fixed-capacity lock-free ring (default 4096) that overwrites
// oldest-first, so memory is bounded no matter how long the process
// runs; sampling is deterministic (every k-th arrival in sequence order,
// not coin flips), so two runs at the same seed trace the same jobs and
// a sim trace is reproducible evidence, not an anecdote.
//
// Both simulator event loops and the live dispatch path carry the hooks.
// The contract is the same on both sides: trace off means bit-identical
// draws and 0 allocs/event (the sim goldens and
// TestAllocFreeEventPathTraced pin it; the recorder itself is
// hotpath-annotated with 0 allocs/span, guarded by
// TestAllocFreeRecording), so tracing can ship enabled-by-flag without a
// standing tax. cmd/lbd surfaces the recording three ways: GET
// /debug/jobs returns the most recent spans as JSON (or
// ?format=csv for spreadsheet triage) with per-stage timestamps and
// derived wait/service/sojourn durations; /metrics exports per-stage
// latency histograms (lbd_trace_stage_service_times{stage=pick|wait|
// service}, in service-time units via the recorder's Scale) plus
// seen/sampled/published/dropped/aborted counters; and lbd_go_* gauges
// read the Go runtime's own telemetry (runtime/metrics: GC cycles and
// pauses, heap bytes, goroutines, scheduler latency quantiles) so host
// noise is visible next to the queueing signal it pollutes.
//
// The same scrape closes the predicted-vs-measured loop (ROADMAP item
// 4): when the serve-mode configuration is inside the analytic model's
// reach (SQ(d), exponential service, homogeneous speeds, N ≤ 16), lbd
// solves the QBD bracket for its own (N, d, ρ) at startup — walking the
// threshold T up while the block size stays affordable — and exports
// lbd_delay_predicted_{mean,p99}_{lower,upper} gauges beside the
// measured lbd_delay_* series, with lbd_delay_predicted_ready flagging
// solver completion. The p99 bracket comes from
// finitelb.DelayDistributionBracket: the arrival-join-level distribution
// extracted from each bound chain's stationary vector (PASTA over the
// tie-group arrival rates, internal/qbd.JoinDistribution) feeds an
// Erlang mixture for the sojourn law. The mean bracket inherits the
// paper's Theorem 1 ordering; the quantile bracket is an empirical
// transfer of it — see the DelayBracket doc comment for the honest
// caveat. One Grafana panel showing measured p99 (α = 1% sketch error)
// tracking between two model-derived lines is the repository's thesis
// as a dashboard.
//
// # The failure domain
//
// A model of N servers is only production-shaped if N can change out
// from under it. The failure domain spans both execution engines and
// the daemon with one semantics: servers join, leave gracefully
// (finish the in-service job, requeue the rest), or crash (lose
// in-service progress, orphan the queue for redelivery), and because
// the offered load is open-loop, crashing k of N pushes every
// survivor's utilization from ρ to ρ·N/(N−k) — which the analytics
// already price. The headline oracle
// (internal/lb/chaos_calibrate_test.go) drives the live farm through
// healthy → crashed → restored and asserts the measured windowed delay
// leaves the (N, ρ) QBD bracket and lands in the (N−k, ρ·N/(N−k)) one,
// then comes back; examples/churn replays the same three-act script
// with the model bracket, the simulator twin, and the live farm
// printed side by side.
//
// The pieces, layer by layer:
//
//   - Live churn (internal/lb): Join/Leave/Crash plus Stall, Pause/
//     Resume, and SetSlow speed faults, all safe under concurrent
//     dispatch. SQ(d) samples from an atomically published live-server
//     list and the min-index trees key down servers at the ceiling, so
//     routing follows membership without a lock. Config.Chaos arms the
//     crash-interruptible service path from the start (otherwise it
//     arms on the first fault, and a job already sleeping uninterrupted
//     through the very first crash completes instead of requeueing).
//   - Deterministic mirror (internal/sim): Options.Churn replays the
//     same event kinds on the simulator's virtual clock, so any churn
//     scenario is seed-reproducible and cheap to sweep. A crash-at-zero
//     schedule on (N, ρ) is pinned to agree with a direct
//     (N−k, ρ·N/(N−k)) run, and a never-firing schedule stays
//     bit-identical to the churn-free goldens at 0 allocs/event.
//   - Fault schedules (internal/workload, internal/chaos): one compact
//     grammar — "crash@200,slow@800@s=2@f=3,restore@2000" — parses to
//     a validated, time-ordered schedule; internal/chaos resolves
//     unassigned events onto servers with a seeded PCG (never killing
//     the last live server) and ships storm presets. lbd -churn replays
//     a schedule in either mode; lbd -chaos exposes POST /debug/chaos
//     for live injection.
//   - Timeouts, retries, hedging (internal/lb): redelivered jobs carry
//     a per-job retry budget with jittered exponential backoff
//     (RetryBudget, RetryBackoff); Deadline drops jobs whose service
//     has not started in time; Hedge duplicates a slow-to-start job to
//     a second server and cancels the loser. Every outcome lands in
//     the Recorder's conservation ledger (completed + dropped accounts
//     for every accepted job, requeues and retries itemized) and on the
//     job's trace span (Retries, Outcome), exported as
//     lbd_jobs_total{outcome} and visible per job in /debug/jobs.
//   - SLO-guarded shedding (cmd/lbd -shed): the admission guard
//     differences successive Recorder sketch snapshots
//     (stats.Sketch.DiffQuantile — exact windowed quantiles from the
//     mergeable sketch, no second accumulator) and compares the
//     windowed p99 against the model's predicted upper bracket (or
//     -shed-p99). Sustained breach trips the guard: POST /work answers
//     429 with Retry-After until a healthy window reopens admission.
//     This is the act-on-the-comparison half of ROADMAP item 4.
//
// Shutdown is part of the domain: lbd drains in dependency order —
// background generator first, HTTP listener second, farm last — so a
// SIGTERM under load cannot race fresh submissions against the drain.
// CI smokes the whole surface (scripts/smoke_chaos.sh): churn replay
// in loadgen mode, live crash/restore over /debug/chaos with the
// ledger and membership gauges scraped mid-fault, and the ordered
// drain with the generator still attached.
//
// # Machine-checked invariants
//
// The properties the headline results rest on are encoded as static
// analyzers in internal/lint and enforced by cmd/finitelint, a
// multichecker that speaks the go vet protocol:
//
//	go build -o "$(go env GOPATH)/bin/finitelint" ./cmd/finitelint
//	go vet -vettool=$(which finitelint) ./...
//	go run ./cmd/finitelint ./...        # same thing, self-driving
//	./scripts/lint.sh                    # the full CI lint gate
//
// The suite (each analyzer carries fixture-backed tests under
// internal/lint/testdata):
//
//   - detrand — deterministic packages (the analytic models, the
//     simulator and its support packages) must not call global math/rand
//     or math/rand/v2 functions; randomness flows from internal/frand or
//     an explicitly seeded source passed as a parameter. Bit-identity
//     goldens are only as reproducible as their weakest draw.
//   - walltime — the same packages must not read the wall clock
//     (time.Now, time.Since, timers); model code runs on simulated time
//     only. internal/lb and cmd/ are live and exempt.
//   - hotpath — functions annotated //finitelb:hotpath (the typed event
//     loops, completion trackers, min-index pick paths, and the live
//     dispatch path) must avoid alloc-causing constructs: fmt/reflect/
//     errors calls, capturing closures, append, string concatenation,
//     and value-to-interface boxing. This is the source-level face of
//     the 0 allocs/event guarantee TestAllocFreeEventPath measures; a
//     meta-test (internal/lint/meta_test.go) pins that the annotated
//     set covers the functions the alloc test guards.
//   - atomicfield — a variable accessed through sync/atomic anywhere
//     must be accessed through sync/atomic everywhere in the package;
//     no mixed atomic/plain access to shared state.
//   - errret — cmd/ binaries must not silently discard error returns
//     from io, bufio, flag, os, or encoding/* calls.
//
// Directive grammar: //finitelb:hotpath goes in (or directly above) the
// doc comment of a function or on the line before a func literal, and
// marks it hot for the hotpath analyzer. //lint:allow <analyzer>
// <reason> on a finding's line (or the line above) suppresses that one
// finding; the reason is mandatory — an allow with an empty reason is
// itself a finding, and so is a stale allow that no longer matches
// anything.
package finitelb
