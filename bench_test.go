package finitelb

// One benchmark per evaluation artifact of the paper (the experiment
// inventory is described in doc.go and PAPER.md). Each figure bench runs a
// budget-reduced version of the corresponding panel — once on a single
// worker (the serial baseline) and once on the engine's default GOMAXPROCS
// pool — and logs the series it produced; the full-fidelity sweeps live in
// cmd/figures. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"finitelb/internal/figures"
	"finitelb/internal/markov"
	"finitelb/internal/qbd"
	"finitelb/internal/sim"
	"finitelb/internal/sqd"
	"finitelb/internal/workload"
)

// figWorkerCounts names the two pool sizes every figure panel is
// benchmarked at: the serial baseline and the engine default (GOMAXPROCS).
var figWorkerCounts = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", 0},
}

// benchFig9 runs a reduced Figure 9 panel: relative error of the
// asymptotic delay vs simulation across N, one series per d — at both pool
// sizes. Cells are seeded from their coordinates, so the series are
// identical across worker counts (asserted in internal/figures tests).
func benchFig9(b *testing.B, rho float64) {
	b.Helper()
	cfg := figures.Fig9Config{
		Rho: rho,
		Ds:  []int{2, 10, 50},
		Ns:  []int{10, 50, 250},
	}
	for _, wc := range figWorkerCounts {
		b.Run(wc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chart, err := figures.Fig9(cfg, figures.SimBudget{Jobs: 200_000, Seed: 1, Workers: wc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, s := range chart.Series {
						b.Logf("ρ=%g %s: N=%v → err%%=%v", rho, s.Name, s.X, s.Y)
					}
				}
			}
		})
	}
}

func BenchmarkFig9a(b *testing.B) { benchFig9(b, 0.75) }
func BenchmarkFig9b(b *testing.B) { benchFig9(b, 0.95) }

// benchFig10 runs a reduced Figure 10 panel: upper bound, simulation,
// improved lower bound and asymptotic delay across utilizations — at both
// pool sizes.
func benchFig10(b *testing.B, n, t int) {
	b.Helper()
	cfg := figures.Fig10Config{N: n, D: 2, T: t, Rhos: []float64{0.3, 0.5, 0.7, 0.9}}
	for _, wc := range figWorkerCounts {
		b.Run(wc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, _, err := figures.Fig10(cfg, figures.SimBudget{Jobs: 200_000, Seed: 1, Workers: wc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, p := range points {
						b.Logf("N=%d T=%d ρ=%.2f: LB=%.4f sim=%.4f UB=%.4f asym=%.4f",
							n, t, p.Rho, p.Lower, p.Simulated, p.Upper, p.Asymptotic)
					}
					if bad := figures.CheckFig10Invariants(points); len(bad) > 0 {
						b.Fatalf("invariant violations: %v", bad)
					}
				}
			}
		})
	}
}

func BenchmarkFig10a(b *testing.B) { benchFig10(b, 3, 2) }
func BenchmarkFig10b(b *testing.B) { benchFig10(b, 3, 3) }
func BenchmarkFig10c(b *testing.B) { benchFig10(b, 6, 3) }
func BenchmarkFig10d(b *testing.B) { benchFig10(b, 12, 3) }

// BenchmarkLogReduction isolates the §IV-A workhorse on the Fig 10(c)
// blocks (N=6, T=3, block size 56) and asserts the paper's ≤6-iteration
// claim at a moderately loaded point.
func BenchmarkLogReduction(b *testing.B) {
	model := &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 6, D: 2, Rho: 0.75}, T: 3}}
	blocks, err := qbd.NewBlocks(model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, iters, err := qbd.LogReduction(blocks.A0, blocks.A1, blocks.A2, 1e-12)
		if err != nil {
			b.Fatal(err)
		}
		if iters > 6 {
			b.Fatalf("logarithmic reduction took %d iterations, paper reports ≤ 6", iters)
		}
	}
}

// BenchmarkUpperBoundVsT is the §V accuracy/complexity ablation: the same
// upper bound at increasing T, whose block size C(N+T−1, T) — and solve
// cost — grows quickly while the bound tightens.
func BenchmarkUpperBoundVsT(b *testing.B) {
	for _, t := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			model := &sqd.UpperBound{P: sqd.BoundParams{Params: sqd.Params{N: 3, D: 2, Rho: 0.8}, T: t}}
			var last float64
			for i := 0; i < b.N; i++ {
				sol, err := qbd.Solve(model, qbd.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = sol.MeanDelay
			}
			b.ReportMetric(last, "delay")
		})
	}
}

// BenchmarkLowerBoundPaths is the Theorem 1 vs Theorem 3 ablation: the
// improved lower bound skips the logarithmic reduction and rate matrix
// entirely.
func BenchmarkLowerBoundPaths(b *testing.B) {
	model := &sqd.LowerBound{P: sqd.BoundParams{Params: sqd.Params{N: 6, D: 2, Rho: 0.9}, T: 3}}
	b.Run("matrix-geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qbd.Solve(model, qbd.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("improved-theorem3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qbd.Solve(model, qbd.Options{ImprovedLB: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulator measures the discrete-event engine's throughput on
// the paper's largest simulation setting (N=250, d=50).
func BenchmarkSimulator(b *testing.B) {
	for _, cfg := range []sqd.Params{
		{N: 3, D: 2, Rho: 0.9},
		{N: 50, D: 10, Rho: 0.95},
		{N: 250, D: 50, Rho: 0.95},
	} {
		b.Run(fmt.Sprintf("N=%d_d=%d", cfg.N, cfg.D), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, sim.Options{Jobs: 100_000, Seed: uint64(i) + 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSimulatorPolicies measures what users get from each dispatch
// policy at the same load. Note the sqd row resolves to the concrete fast
// path (it IS the default wiring), not the interface loop — the
// interface-dispatch cost gauge is BenchmarkSimulatorWorkloads' M/M-fast
// vs M/M-pluggable pair.
func BenchmarkSimulatorPolicies(b *testing.B) {
	p := sqd.Params{N: 50, D: 10, Rho: 0.9}
	for _, pol := range []workload.Policy{
		workload.SQD{D: p.D},
		workload.JSQ{},
		workload.JIQ{},
		workload.RoundRobin{},
		workload.Random{},
	} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(p, sim.Options{Jobs: 100_000, Seed: uint64(i) + 1, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSimulatorWorkloads measures the event loop across the
// arrival/service grid (policy fixed at the paper's SQ(d)). The first two
// rows run the *same physical system*: "M/M-fast" resolves to the concrete
// default loop, while "M/M-pluggable" forces the interface loop via an
// explicit all-ones speed vector — their gap is the whole cost of workload
// pluggability, paid only by non-default configurations.
func BenchmarkSimulatorWorkloads(b *testing.B) {
	p := sqd.Params{N: 50, D: 10, Rho: 0.9}
	pareto, err := workload.NewBoundedPareto(1.5, 1000)
	if err != nil {
		b.Fatal(err)
	}
	unit := make([]float64, p.N)
	for i := range unit {
		unit[i] = 1
	}
	for _, cfg := range []struct {
		name    string
		arrival workload.Arrival
		service workload.Service
		speeds  []float64
	}{
		{"M/M-fast", workload.Poisson{}, workload.Exponential{}, nil},
		{"M/M-pluggable", workload.Poisson{}, workload.Exponential{}, unit},
		{"D/Er4", workload.DeterministicArrivals{}, workload.ErlangService{K: 4}, nil},
		{"H2/M", workload.HyperExp{CV2: 9}, workload.Exponential{}, nil},
		{"M/Pareto", workload.Poisson{}, pareto, nil},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sim.Options{Jobs: 100_000, Seed: uint64(i) + 1, Arrival: cfg.arrival, Service: cfg.service, Speeds: cfg.speeds}
				if _, err := sim.Run(p, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100_000*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSimulatorReplications measures the wall-clock effect of
// splitting one simulation budget across concurrently executed
// replications (R=1 is the bit-exact legacy single stream).
func BenchmarkSimulatorReplications(b *testing.B) {
	p := sqd.Params{N: 50, D: 10, Rho: 0.9}
	for _, r := range []int{1, 4} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(p, sim.Options{Jobs: 800_000, Seed: 7, Replications: r}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactSolve measures the brute-force stationary solver used as
// ground truth (not part of the paper's method, but of its validation).
func BenchmarkExactSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := markov.SolveExact(sqd.Params{N: 3, D: 2, Rho: 0.8}, markov.ExactOptions{QueueCap: 25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundsAPI measures the public one-call entry point end to end.
func BenchmarkBoundsAPI(b *testing.B) {
	sys, err := NewSystem(6, 2, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sys.DelayBounds(4); err != nil {
			b.Fatal(err)
		}
	}
}
