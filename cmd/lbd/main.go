// Command lbd runs the live load-balancer daemon: the internal/lb runtime
// behind an HTTP front end, dispatching real concurrent requests across N
// goroutine servers under any of the repository's workload policies. It is
// the "machine" end of the model-to-machine calibration story — the same
// policy implementations, measured in the same units, as the simulator and
// the paper's QBD bounds (see the package documentation of finitelb and
// internal/lb).
//
// Serve mode (default):
//
//	lbd -addr :8080 -n 16 -policy sqd:2 -service exponential -mean-service 5ms
//
//	POST /work[?work=1.5]   dispatch one job (requirement drawn from the
//	                        service law unless given); responds when done
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/jobs        flight-recorder span dump (JSON; ?format=csv),
//	                        404 unless -trace is on
//	GET  /healthz           liveness
//
// -trace N samples one of every N jobs (a power of two; deterministic in
// the job sequence, not the RNG) into a fixed -trace-cap ring of per-job
// lifecycle spans: arrival → picked → enqueued → service start → done,
// with the chosen server and the queue length the pick saw. The spans
// feed /debug/jobs, per-stage delay histograms on /metrics
// (lbd_trace_stage_service_times), and the lbd_trace_jobs_total
// counters. Tracing off (the default) costs nothing on the dispatch path.
//
// When the configured workload is the paper's (SQ(d), exponential
// service, homogeneous, N ≤ 16), serve mode also solves the QBD model in
// the background at startup and exposes the analytic bracket for the
// declared -rho as lbd_delay_predicted_{mean,p99}_{lower,upper} gauges —
// the model line the measured mean and p99 gauges should land inside.
//
// SIGINT/SIGTERM stop admission, drain every queued job, and print the
// drain stats.
//
// Load-generator mode drives the farm itself — open-loop arrivals from
// -arrival at utilization -rho — then prints the measured summary and,
// when the workload is the paper's (Poisson/exponential/SQ(d)), the
// analytic QBD delay bracket the measurement should (and does) land in:
//
//	lbd -loadgen 20000 -n 10 -d 2 -rho 0.9 -arrival poisson -mean-service 2ms
//
// -dispatchers D fans the generated load across D concurrent dispatcher
// goroutines sharing the farm (the multi-front-end model), and -batch K
// bounds how many overdue arrivals one dispatcher drains per wake-up when
// the offered rate outruns per-job pacing. At N ≥ 64, JSQ and LWL route
// through the hierarchical min-index (see internal/minindex), so -n 10000
// farms dispatch in O(log N).
//
// -pprof ADDR (e.g. -pprof :6060) serves net/http/pprof on a separate
// listener in either mode, so dispatch-path profiles can be captured from
// a live farm:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"finitelb"
	"finitelb/internal/lb"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// daemon bundles the state the HTTP surface reads: the farm, the service
// law for drawn work, the flight recorder (nil when -trace is off), and
// the background model prediction (nil when the workload is off-model).
type daemon struct {
	farm *lb.LB
	svc  workload.Service
	seed uint64
	tr   *trace.Recorder
	pred *predicted
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address (serve mode)")
		n           = flag.Int("n", 8, "number of servers N")
		d           = flag.Int("d", 2, "choices per arrival for the default sqd policy")
		policy      = flag.String("policy", "sqd", "dispatch policy: sqd[:D] | jsq | jiq | lwl | round-robin | random")
		service     = flag.String("service", "exponential", "service law: exponential | deterministic | erlang:K | pareto:ALPHA[,h=H]")
		arrival     = flag.String("arrival", "poisson", "arrival process (loadgen mode): poisson | deterministic | erlang:K | hyperexp:CV2")
		rho         = flag.Float64("rho", 0.8, "per-server utilization (loadgen mode)")
		speeds      = flag.String("speeds", "", "per-server speed factors, e.g. 1x6,4x2 (empty = homogeneous)")
		queueCap    = flag.Int("queue-cap", 4096, "per-server queue bound, including the job in service")
		meanService = flag.Duration("mean-service", 5*time.Millisecond, "wall-clock length of one unit of work")
		warmup      = flag.Int64("warmup", 0, "completions excluded from statistics")
		seed        = flag.Uint64("seed", 1, "RNG seed for sampling choices and drawn workloads")
		loadgen     = flag.Int64("loadgen", 0, "run the built-in load generator for this many jobs and exit (0 = serve HTTP)")
		dispatchers = flag.Int("dispatchers", 1, "concurrent dispatcher goroutines sharing the farm (loadgen mode)")
		burstBatch  = flag.Int("batch", 64, "max overdue arrivals one dispatcher drains per wake-up (loadgen mode)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060); empty = off")
		traceEvery  = flag.Int("trace", 0, "trace 1 of every N jobs into the flight recorder (rounded to a power of two; 0 = off)")
		traceCap    = flag.Int("trace-cap", 4096, "flight-recorder ring capacity in spans (rounded to a power of two)")
	)
	flag.Parse()

	pol, err := workload.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	if s, ok := pol.(workload.SQD); pol == nil || (ok && s.D == 0) {
		pol = workload.SQD{D: *d}
	}
	svc, err := workload.ParseService(*service)
	if err != nil {
		fatal(err)
	}
	if svc == nil {
		svc = workload.Exponential{}
	}
	arr, err := workload.ParseArrival(*arrival)
	if err != nil {
		fatal(err)
	}
	spd, err := workload.ParseSpeeds(*speeds, *n)
	if err != nil {
		fatal(err)
	}

	var batch int64
	if *loadgen > 0 {
		// Scale the CI batches to the run so even short smokes report a
		// finite half-width.
		batch = max(*loadgen/(20*int64(*n)), 10)
	}
	var rec *trace.Recorder
	if *traceEvery > 0 {
		rec = trace.New(trace.Config{
			Sample: *traceEvery,
			Cap:    *traceCap,
			Seed:   *seed,
			Scale:  float64(meanService.Nanoseconds()),
		})
	}
	farm, err := lb.New(lb.Config{
		N:           *n,
		Policy:      pol,
		Speeds:      spd,
		QueueCap:    *queueCap,
		MeanService: *meanService,
		Warmup:      *warmup,
		BatchSize:   batch,
		Seed:        *seed,
		Trace:       rec,
	})
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	if *loadgen > 0 {
		if err := runLoadGen(farm, arr, svc, pol, *n, *d, *rho, *loadgen, *seed, *dispatchers, *burstBatch); err != nil {
			fatal(err)
		}
		return
	}
	serve(&daemon{
		farm: farm,
		svc:  svc,
		seed: *seed,
		tr:   rec,
		pred: newPredicted(pol, svc, spd, *n, *rho),
	}, *addr)
}

// servePprof runs the opt-in profiling listener. It is deliberately a
// separate server on a separate address: profiles are an operator
// surface, not something to expose on the farm's public port.
func servePprof(addr string) {
	fmt.Printf("lbd: pprof on %s\n", addr)
	if err := http.ListenAndServe(addr, pprofMux()); err != nil {
		fmt.Fprintln(os.Stderr, "lbd: pprof:", err)
	}
}

// pprofMux builds the net/http/pprof handler explicitly (rather than
// through the package's DefaultServeMux side effects); split out for
// tests.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runLoadGen drives the farm and prints the measurement next to the
// analytic bracket where one exists.
func runLoadGen(farm *lb.LB, arr workload.Arrival, svc workload.Service, pol workload.Policy, n, d int, rho float64, jobs int64, seed uint64, dispatchers, batch int) error {
	fmt.Printf("offering %d jobs: %s arrivals at ρ=%g, %s service, policy %s, %d dispatcher(s)\n",
		jobs, specName(arr, "poisson"), rho, svc, pol, max(dispatchers, 1))
	t0 := time.Now()
	s, err := farm.RunLoadGen(context.Background(), lb.GenConfig{
		Arrival: arr, Service: svc, Rho: rho, Jobs: jobs, Seed: seed,
		Dispatchers: dispatchers, Batch: batch,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	if _, err := farm.Shutdown(context.Background()); err != nil {
		return err
	}
	fmt.Printf("\nlive measurement (%d jobs measured, %v wall, %.0f jobs/s):\n",
		s.Jobs, elapsed.Round(time.Millisecond), float64(s.Completed)/elapsed.Seconds())
	fmt.Printf("  mean delay   %.4f ± %.4f service times (wait %.4f)\n", s.MeanDelay, s.HalfWidth, s.MeanWait)
	clip := ""
	if s.Overflow > 0 {
		// Only a histogram-backed recorder can clip; the sketch has no
		// ceiling. Flag it rather than print a wrong-but-plausible tail.
		clip = fmt.Sprintf("   (CLIPPED: %d sojourns beyond estimator range; p99/p999 are lower bounds)", s.Overflow)
	}
	fmt.Printf("  p50/p95/p99/p999  %.3f / %.3f / %.3f / %.3f%s\n", s.P50, s.P95, s.P99, s.P999, clip)
	fmt.Printf("  max queue %d, rejected %d, realized service %.3f× nominal\n", s.MaxQueue, s.Rejected, s.MeanService)
	if tr := farm.Trace(); tr != nil {
		fmt.Printf("  flight recorder: %d of %d jobs traced (1/%d), %d spans in ring, %d dropped, %d aborted\n",
			tr.Sampled(), tr.Seen(), tr.SampleEvery(), tr.Published(), tr.Dropped(), tr.Aborted())
	}

	// The paper's bracket applies exactly to Poisson/exponential/SQ(d)
	// homogeneous farms; print it when that is what just ran.
	sq, isSQD := pol.(workload.SQD)
	if isSQD && specName(arr, "poisson") == "poisson" && svc.String() == "exponential" && n <= 16 {
		sys, err := finitelb.NewSystem(n, sq.D, rho)
		if err != nil {
			return nil // e.g. d > n after an explicit -policy sqd:D
		}
		for t := 3; t <= 4; t++ {
			b, err := sys.DelayBounds(t)
			if err != nil {
				continue // upper-bound model unstable at this T; try tighter
			}
			fmt.Printf("\npaper's QBD bracket for SQ(%d), N=%d, ρ=%g at T=%d: [%.4f, %.4f]; asymptotic %.4f\n",
				sq.D, n, rho, t, b.Lower.MeanDelay, b.Upper.MeanDelay, sys.AsymptoticDelay())
			return nil
		}
		fmt.Printf("\n(no stable QBD upper bound by T=4 at ρ=%g; raise T offline for the bracket)\n", rho)
	}
	return nil
}

func specName(a workload.Arrival, def string) string {
	if a == nil {
		return def
	}
	return a.String()
}

// serve runs the HTTP front end until SIGINT/SIGTERM, then drains.
func serve(d *daemon, addr string) {
	farm := d.farm
	srv := &http.Server{Addr: addr, Handler: newMux(d)}
	go func() {
		fmt.Printf("lbd listening on %s (N=%d)\n", addr, farm.N())
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Println("lbd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lbd: http shutdown:", err)
	}
	st, err := farm.Shutdown(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbd: drain:", err)
	}
	fmt.Printf("lbd: drained: %d completed, %d rejected, %d abandoned\n", st.Completed, st.Rejected, st.Abandoned)
}

// newMux wires the HTTP surface; split out for tests.
func newMux(d *daemon) http.Handler {
	farm, svc := d.farm, d.svc
	drawRNG := rand.New(rand.NewPCG(d.seed, 0x2545f4914f6cdd1d))
	var drawMu sync.Mutex
	mux := http.NewServeMux()

	mux.HandleFunc("POST /work", func(w http.ResponseWriter, r *http.Request) {
		work := 0.0
		if q := r.URL.Query().Get("work"); q != "" {
			if _, err := fmt.Sscanf(q, "%g", &work); err != nil || !(work > 0) {
				http.Error(w, "work must be a positive number", http.StatusBadRequest)
				return
			}
		} else {
			drawMu.Lock()
			work = svc.Sample(drawRNG)
			drawMu.Unlock()
		}
		done, err := farm.Do(r.Context(), work)
		switch err {
		case nil:
		case lb.ErrQueueFull, lb.ErrClosed:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		default:
			if r.Context().Err() != nil {
				return // client went away; the job still completes
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Headers are already written; an encode failure here means the
		// client hung up and there is no different response to send.
		_ = json.NewEncoder(w).Encode(map[string]any{
			"server":     done.Server,
			"work":       work,
			"service_ms": float64(done.Service) / 1e6,
			"sojourn_ms": float64(done.Sojourn) / 1e6,
		})
	})

	mux.HandleFunc("GET /metrics", d.metricsHandler)
	mux.HandleFunc("GET /debug/jobs", d.debugJobsHandler)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbd:", err)
	os.Exit(1)
}
