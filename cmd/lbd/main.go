// Command lbd runs the live load-balancer daemon: the internal/lb runtime
// behind an HTTP front end, dispatching real concurrent requests across N
// goroutine servers under any of the repository's workload policies. It is
// the "machine" end of the model-to-machine calibration story — the same
// policy implementations, measured in the same units, as the simulator and
// the paper's QBD bounds (see the package documentation of finitelb and
// internal/lb).
//
// Serve mode (default):
//
//	lbd -addr :8080 -n 16 -policy sqd:2 -service exponential -mean-service 5ms
//
//	POST /work[?work=1.5]   dispatch one job (requirement drawn from the
//	                        service law unless given); responds when done,
//	                        429 + Retry-After while the -shed guard is
//	                        refusing admissions
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/jobs        flight-recorder span dump (JSON; ?format=csv),
//	                        404 unless -trace is on
//	POST /debug/chaos       live fault injection (crash/leave/join/slow/
//	                        stall/pause/resume), only with -chaos
//	GET  /healthz           liveness
//
// -trace N samples one of every N jobs (a power of two; deterministic in
// the job sequence, not the RNG) into a fixed -trace-cap ring of per-job
// lifecycle spans: arrival → picked → enqueued → service start → done,
// with the chosen server and the queue length the pick saw. The spans
// feed /debug/jobs, per-stage delay histograms on /metrics
// (lbd_trace_stage_service_times), and the lbd_trace_jobs_total
// counters. Tracing off (the default) costs nothing on the dispatch path.
//
// When the configured workload is the paper's (SQ(d), exponential
// service, homogeneous, N ≤ 16), serve mode also solves the QBD model in
// the background at startup and exposes the analytic bracket for the
// declared -rho as lbd_delay_predicted_{mean,p99}_{lower,upper} gauges —
// the model line the measured mean and p99 gauges should land inside.
//
// The failure domain rides along in either mode. -churn replays a
// schedule spec (e.g. -churn 'crash@40,restore@80', times in mean
// service times, servers resolved deterministically from -chaos-seed)
// against the live farm; -retry-budget, -retry-backoff, -deadline and
// -hedge configure how orphaned and late jobs are redelivered, dropped
// or duplicated (see internal/lb). In serve mode, -bgload RHO keeps the
// farm under built-in open-loop pressure so a chaos scenario needs no
// external client, and -shed arms the SLO guard: when the windowed
// measured p99 runs above the model's upper p99 bracket (or the -shed-p99
// override) for consecutive -shed-window periods, /work refuses new jobs
// with 429 until the tail recovers. Every outcome is accounted on
// /metrics as lbd_jobs_total{outcome} beside the lbd_alive_servers and
// lbd_shedding gauges.
//
// SIGINT/SIGTERM stop admission, drain every queued job, and print the
// drain stats. The drain is ordered: background generator first, HTTP
// listener second, farm last — so every accepted job is completed or
// accounted as dropped, never lost to a submitter/drain race.
//
// Load-generator mode drives the farm itself — open-loop arrivals from
// -arrival at utilization -rho — then prints the measured summary and,
// when the workload is the paper's (Poisson/exponential/SQ(d)), the
// analytic QBD delay bracket the measurement should (and does) land in:
//
//	lbd -loadgen 20000 -n 10 -d 2 -rho 0.9 -arrival poisson -mean-service 2ms
//
// -dispatchers D fans the generated load across D concurrent dispatcher
// goroutines sharing the farm (the multi-front-end model), and -batch K
// bounds how many overdue arrivals one dispatcher drains per wake-up when
// the offered rate outruns per-job pacing. At N ≥ 64, JSQ and LWL route
// through the hierarchical min-index (see internal/minindex), so -n 10000
// farms dispatch in O(log N).
//
// -pprof ADDR (e.g. -pprof :6060) serves net/http/pprof on a separate
// listener in either mode, so dispatch-path profiles can be captured from
// a live farm:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"finitelb"
	"finitelb/internal/chaos"
	"finitelb/internal/lb"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// daemon bundles the state the HTTP surface reads: the farm, the service
// law for drawn work, the flight recorder (nil when -trace is off), the
// background model prediction (nil when the workload is off-model), the
// SLO shedding guard (nil when -shed is off), and whether the
// fault-injection endpoint is exposed (-chaos).
type daemon struct {
	farm  *lb.LB
	svc   workload.Service
	seed  uint64
	tr    *trace.Recorder
	pred  *predicted
	shed  *shedder
	chaos bool
}

// bgLoad is the handle on the optional background load generator
// (-bgload): serve mode's way of keeping the farm under open-loop
// pressure without an external client, which is what makes a chaos
// scenario self-contained. stop cancels the generator and waits for it
// to quiesce — the first step of every drain, because shutting the farm
// down under an in-process generator is a race between the drain and
// the next submit.
type bgLoad struct {
	cancel context.CancelFunc
	done   chan struct{}
}

func (b *bgLoad) stop() {
	b.cancel()
	<-b.done
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address (serve mode)")
		n           = flag.Int("n", 8, "number of servers N")
		d           = flag.Int("d", 2, "choices per arrival for the default sqd policy")
		policy      = flag.String("policy", "sqd", "dispatch policy: sqd[:D] | jsq | jiq | lwl | round-robin | random")
		service     = flag.String("service", "exponential", "service law: exponential | deterministic | erlang:K | pareto:ALPHA[,h=H]")
		arrival     = flag.String("arrival", "poisson", "arrival process (loadgen mode): poisson | deterministic | erlang:K | hyperexp:CV2")
		rho         = flag.Float64("rho", 0.8, "per-server utilization (loadgen mode)")
		speeds      = flag.String("speeds", "", "per-server speed factors, e.g. 1x6,4x2 (empty = homogeneous)")
		queueCap    = flag.Int("queue-cap", 4096, "per-server queue bound, including the job in service")
		meanService = flag.Duration("mean-service", 5*time.Millisecond, "wall-clock length of one unit of work")
		warmup      = flag.Int64("warmup", 0, "completions excluded from statistics")
		seed        = flag.Uint64("seed", 1, "RNG seed for sampling choices and drawn workloads")
		loadgen     = flag.Int64("loadgen", 0, "run the built-in load generator for this many jobs and exit (0 = serve HTTP)")
		dispatchers = flag.Int("dispatchers", 1, "concurrent dispatcher goroutines sharing the farm (loadgen mode)")
		burstBatch  = flag.Int("batch", 64, "max overdue arrivals one dispatcher drains per wake-up (loadgen mode)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060); empty = off")
		traceEvery  = flag.Int("trace", 0, "trace 1 of every N jobs into the flight recorder (rounded to a power of two; 0 = off)")
		traceCap    = flag.Int("trace-cap", 4096, "flight-recorder ring capacity in spans (rounded to a power of two)")

		retryBudget  = flag.Int("retry-budget", 0, "redeliveries per job orphaned by churn (0 = default 3, negative = no redelivery)")
		retryBackoff = flag.Duration("retry-backoff", 0, "base of the jittered exponential redelivery backoff (0 = immediate)")
		deadline     = flag.Duration("deadline", 0, "drop a job whose service has not started this long after arrival (0 = none)")
		hedge        = flag.Duration("hedge", 0, "duplicate a job to a second server if service has not started within this (0 = off)")

		churnSpec = flag.String("churn", "", "churn schedule to replay, e.g. 'crash@40,restore@80' (times in mean service times; unassigned servers resolved from -chaos-seed)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for resolving -churn events onto servers (internal/chaos.Resolve)")
		chaosOn   = flag.Bool("chaos", false, "expose POST /debug/chaos live fault injection (serve mode)")
		shedOn    = flag.Bool("shed", false, "refuse admissions with 429 while the windowed p99 runs above the predicted bracket (serve mode)")
		shedP99   = flag.Float64("shed-p99", 0, "explicit p99 shedding ceiling in mean service times (0 = the model's upper p99 bracket)")
		shedWin   = flag.Duration("shed-window", time.Second, "evaluation window of the shedding guard")
		bgRho     = flag.Float64("bgload", 0, "drive the farm with a built-in open-loop generator at this per-server utilization (serve mode; 0 = off)")
	)
	flag.Parse()

	pol, err := workload.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	if s, ok := pol.(workload.SQD); pol == nil || (ok && s.D == 0) {
		pol = workload.SQD{D: *d}
	}
	svc, err := workload.ParseService(*service)
	if err != nil {
		fatal(err)
	}
	if svc == nil {
		svc = workload.Exponential{}
	}
	arr, err := workload.ParseArrival(*arrival)
	if err != nil {
		fatal(err)
	}
	spd, err := workload.ParseSpeeds(*speeds, *n)
	if err != nil {
		fatal(err)
	}

	var batch int64
	if *loadgen > 0 {
		// Scale the CI batches to the run so even short smokes report a
		// finite half-width.
		batch = max(*loadgen/(20*int64(*n)), 10)
	}
	var rec *trace.Recorder
	if *traceEvery > 0 {
		rec = trace.New(trace.Config{
			Sample: *traceEvery,
			Cap:    *traceCap,
			Seed:   *seed,
			Scale:  float64(meanService.Nanoseconds()),
		})
	}
	farm, err := lb.New(lb.Config{
		N:            *n,
		Policy:       pol,
		Speeds:       spd,
		QueueCap:     *queueCap,
		MeanService:  *meanService,
		Warmup:       *warmup,
		BatchSize:    batch,
		Seed:         *seed,
		Trace:        rec,
		RetryBudget:  *retryBudget,
		RetryBackoff: *retryBackoff,
		Deadline:     *deadline,
		Hedge:        *hedge,
		Chaos:        *chaosOn || *churnSpec != "",
	})
	if err != nil {
		fatal(err)
	}

	// Resolve the churn schedule up front so a typo fails the launch, not
	// the run.
	churn, err := resolveChurn(*churnSpec, *chaosSeed, *n)
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	if *loadgen > 0 {
		if churn != nil {
			go replayChurn(farm, churn)
		}
		if err := runLoadGen(farm, arr, svc, pol, *n, *d, *rho, *loadgen, *seed, *dispatchers, *burstBatch); err != nil {
			fatal(err)
		}
		return
	}

	dm := &daemon{
		farm:  farm,
		svc:   svc,
		seed:  *seed,
		tr:    rec,
		pred:  newPredicted(pol, svc, spd, *n, *rho),
		chaos: *chaosOn,
	}
	if *shedOn {
		dm.shed = newShedder(farm.Recorder(), dm.pred, *shedP99, *shedWin, 0)
		go dm.shed.run()
	}
	var bg *bgLoad
	if *bgRho > 0 {
		bg = startBgLoad(farm, arr, svc, *bgRho, *seed)
	}
	if churn != nil {
		go replayChurn(farm, churn)
	}
	serve(dm, *addr, bg)
}

// resolveChurn parses -churn and pins every event to a server with the
// deterministic chaos resolver; nil spec means no churn.
func resolveChurn(spec string, seed uint64, n int) ([]workload.ChurnEvent, error) {
	c, err := workload.ParseChurn(spec)
	if err != nil || c == nil {
		return nil, err
	}
	return chaos.Resolve(c, seed, n)
}

// replayChurn runs the resolved schedule against the live farm,
// reporting (not dying on) injections the farm refuses.
func replayChurn(farm *lb.LB, events []workload.ChurnEvent) {
	if err := farm.RunChurn(events); err != nil && err != lb.ErrClosed {
		fmt.Fprintln(os.Stderr, "lbd: churn:", err)
	}
}

// startBgLoad launches the in-process open-loop generator. The job
// budget is effectively unbounded; the generator runs until stop.
func startBgLoad(farm *lb.LB, arr workload.Arrival, svc workload.Service, rho float64, seed uint64) *bgLoad {
	ctx, cancel := context.WithCancel(context.Background())
	bg := &bgLoad{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(bg.done)
		_, err := farm.RunLoadGen(ctx, lb.GenConfig{
			Arrival: arr, Service: svc, Rho: rho, Jobs: 1 << 62, Seed: seed,
		})
		if err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "lbd: bgload:", err)
		}
	}()
	return bg
}

// servePprof runs the opt-in profiling listener. It is deliberately a
// separate server on a separate address: profiles are an operator
// surface, not something to expose on the farm's public port.
func servePprof(addr string) {
	fmt.Printf("lbd: pprof on %s\n", addr)
	if err := http.ListenAndServe(addr, pprofMux()); err != nil {
		fmt.Fprintln(os.Stderr, "lbd: pprof:", err)
	}
}

// pprofMux builds the net/http/pprof handler explicitly (rather than
// through the package's DefaultServeMux side effects); split out for
// tests.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runLoadGen drives the farm and prints the measurement next to the
// analytic bracket where one exists.
func runLoadGen(farm *lb.LB, arr workload.Arrival, svc workload.Service, pol workload.Policy, n, d int, rho float64, jobs int64, seed uint64, dispatchers, batch int) error {
	fmt.Printf("offering %d jobs: %s arrivals at ρ=%g, %s service, policy %s, %d dispatcher(s)\n",
		jobs, specName(arr, "poisson"), rho, svc, pol, max(dispatchers, 1))
	t0 := time.Now()
	s, err := farm.RunLoadGen(context.Background(), lb.GenConfig{
		Arrival: arr, Service: svc, Rho: rho, Jobs: jobs, Seed: seed,
		Dispatchers: dispatchers, Batch: batch,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	if _, err := farm.Shutdown(context.Background()); err != nil {
		return err
	}
	fmt.Printf("\nlive measurement (%d jobs measured, %v wall, %.0f jobs/s):\n",
		s.Jobs, elapsed.Round(time.Millisecond), float64(s.Completed)/elapsed.Seconds())
	fmt.Printf("  mean delay   %.4f ± %.4f service times (wait %.4f)\n", s.MeanDelay, s.HalfWidth, s.MeanWait)
	clip := ""
	if s.Overflow > 0 {
		// Only a histogram-backed recorder can clip; the sketch has no
		// ceiling. Flag it rather than print a wrong-but-plausible tail.
		clip = fmt.Sprintf("   (CLIPPED: %d sojourns beyond estimator range; p99/p999 are lower bounds)", s.Overflow)
	}
	fmt.Printf("  p50/p95/p99/p999  %.3f / %.3f / %.3f / %.3f%s\n", s.P50, s.P95, s.P99, s.P999, clip)
	fmt.Printf("  max queue %d, rejected %d, realized service %.3f× nominal\n", s.MaxQueue, s.Rejected, s.MeanService)
	if tr := farm.Trace(); tr != nil {
		fmt.Printf("  flight recorder: %d of %d jobs traced (1/%d), %d spans in ring, %d dropped, %d aborted\n",
			tr.Sampled(), tr.Seen(), tr.SampleEvery(), tr.Published(), tr.Dropped(), tr.Aborted())
	}

	// The paper's bracket applies exactly to Poisson/exponential/SQ(d)
	// homogeneous farms; print it when that is what just ran.
	sq, isSQD := pol.(workload.SQD)
	if isSQD && specName(arr, "poisson") == "poisson" && svc.String() == "exponential" && n <= 16 {
		sys, err := finitelb.NewSystem(n, sq.D, rho)
		if err != nil {
			return nil // e.g. d > n after an explicit -policy sqd:D
		}
		for t := 3; t <= 4; t++ {
			b, err := sys.DelayBounds(t)
			if err != nil {
				continue // upper-bound model unstable at this T; try tighter
			}
			fmt.Printf("\npaper's QBD bracket for SQ(%d), N=%d, ρ=%g at T=%d: [%.4f, %.4f]; asymptotic %.4f\n",
				sq.D, n, rho, t, b.Lower.MeanDelay, b.Upper.MeanDelay, sys.AsymptoticDelay())
			return nil
		}
		fmt.Printf("\n(no stable QBD upper bound by T=4 at ρ=%g; raise T offline for the bracket)\n", rho)
	}
	return nil
}

func specName(a workload.Arrival, def string) string {
	if a == nil {
		return def
	}
	return a.String()
}

// serve runs the HTTP front end until SIGINT/SIGTERM, then drains.
func serve(d *daemon, addr string, bg *bgLoad) {
	srv := &http.Server{Addr: addr, Handler: newMux(d)}
	go func() {
		fmt.Printf("lbd listening on %s (N=%d)\n", addr, d.farm.N())
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Println("lbd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := drainAll(ctx, d, srv, bg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbd: drain:", err)
	}
	fmt.Printf("lbd: drained: %d completed, %d dropped, %d rejected, %d abandoned\n",
		st.Completed, st.Dropped, st.Rejected, st.Abandoned)
}

// drainAll stops the daemon's moving parts in dependency order: first
// the in-process load generator (no new jobs from inside), then the
// HTTP listener (no new jobs from outside, in-flight /work handlers run
// to completion), and only then the farm itself. Draining the farm
// before silencing its submitters is a race — the generator's next
// submit lands on a closing farm and is miscounted as a lifetime
// rejection — which is exactly what TestDrainUnderBackgroundLoad pins.
func drainAll(ctx context.Context, d *daemon, srv *http.Server, bg *bgLoad) (lb.DrainStats, error) {
	if bg != nil {
		bg.stop()
	}
	if d.shed != nil {
		d.shed.close()
	}
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "lbd: http shutdown:", err)
		}
	}
	return d.farm.Shutdown(ctx)
}

// newMux wires the HTTP surface; split out for tests.
func newMux(d *daemon) http.Handler {
	farm, svc := d.farm, d.svc
	drawRNG := rand.New(rand.NewPCG(d.seed, 0x2545f4914f6cdd1d))
	var drawMu sync.Mutex
	mux := http.NewServeMux()

	mux.HandleFunc("POST /work", func(w http.ResponseWriter, r *http.Request) {
		if d.shed != nil && d.shed.Active() {
			// The SLO guard is tripped: refuse before touching the farm,
			// book the shed, and tell the client when to come back.
			farm.Recorder().NoteShed()
			w.Header().Set("Retry-After", strconv.Itoa(int(d.shed.RetryAfter()/time.Second)))
			http.Error(w, "farm over SLO; shedding load", http.StatusTooManyRequests)
			return
		}
		work := 0.0
		if q := r.URL.Query().Get("work"); q != "" {
			if _, err := fmt.Sscanf(q, "%g", &work); err != nil || !(work > 0) {
				http.Error(w, "work must be a positive number", http.StatusBadRequest)
				return
			}
		} else {
			drawMu.Lock()
			work = svc.Sample(drawRNG)
			drawMu.Unlock()
		}
		done, err := farm.Do(r.Context(), work)
		switch err {
		case nil:
		case lb.ErrQueueFull, lb.ErrClosed:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		default:
			if r.Context().Err() != nil {
				return // client went away; the job still completes
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Headers are already written; an encode failure here means the
		// client hung up and there is no different response to send.
		_ = json.NewEncoder(w).Encode(map[string]any{
			"server":     done.Server,
			"work":       work,
			"service_ms": float64(done.Service) / 1e6,
			"sojourn_ms": float64(done.Sojourn) / 1e6,
		})
	})

	mux.HandleFunc("GET /metrics", d.metricsHandler)
	mux.HandleFunc("GET /debug/jobs", d.debugJobsHandler)
	if d.chaos {
		mux.HandleFunc("/debug/chaos", d.chaosHandler)
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbd:", err)
	os.Exit(1)
}
