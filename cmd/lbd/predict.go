package main

import (
	"errors"
	"fmt"
	"sync"

	"finitelb"
	"finitelb/internal/statespace"
	"finitelb/internal/workload"
)

// predicted holds the paper's analytic delay bracket for the farm's
// declared operating point, solved once in the background at startup so
// /metrics can expose model-predicted gauges next to the measured ones.
// The model applies to Poisson arrivals, exponential service, and a
// homogeneous SQ(d) farm; the serve-mode arrival process is whatever the
// clients offer, so the gauges are the prediction *for the declared -rho*,
// the line operators compare their measured mean and p99 against.
type predicted struct {
	mu sync.Mutex
	predictedState
}

// predictedState is the copyable payload under the mutex.
type predictedState struct {
	ready   bool
	failed  string // human-readable reason when no bracket exists
	t       int    // truncation threshold used
	meanLo  float64
	meanHi  float64
	p99Lo   float64
	p99Hi   float64
	tailP99 bool // p99 bracket present (the mean can succeed alone)
}

func (p *predicted) snapshot() (predictedState, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.predictedState, p.ready
}

// maxPredictBlock caps the QBD block size C(N+T−1, T) the startup solve
// will attempt; beyond it the logarithmic reduction is too slow for a
// daemon's background thread.
const maxPredictBlock = 1200

// newPredicted launches the background solve when the configured workload
// is one the paper's bracket covers, and returns nil otherwise (the
// gauges are then simply absent from /metrics).
func newPredicted(pol workload.Policy, svc workload.Service, spd []float64, n int, rho float64) *predicted {
	sq, isSQD := pol.(workload.SQD)
	if !isSQD || svc.String() != "exponential" || spd != nil || n > 16 || sq.D > n {
		return nil
	}
	p := &predicted{}
	go p.solve(n, sq.D, rho)
	return p
}

func (p *predicted) solve(n, d int, rho float64) {
	fail := func(reason string) {
		p.mu.Lock()
		p.failed = reason
		p.ready = true
		p.mu.Unlock()
	}
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		fail(err.Error())
		return
	}
	// Larger T tightens the bracket and widens the upper bound's stability
	// region, at block size C(N+T−1, T); walk up until the solve fits and
	// succeeds.
	var lastErr error
	for t := 3; ; t++ {
		if statespace.Binomial(n+t-1, t) > maxPredictBlock {
			reason := fmt.Sprintf("no stable bracket within block budget %d", maxPredictBlock)
			if lastErr != nil {
				reason = lastErr.Error()
			}
			fail(reason)
			return
		}
		b, err := sys.DelayBounds(t)
		if err != nil {
			if errors.Is(err, finitelb.ErrUnstable) {
				lastErr = err
				continue
			}
			fail(err.Error())
			return
		}
		br, err := sys.DelayDistributionBracket(t)
		p.mu.Lock()
		p.t = t
		p.meanLo, p.meanHi = b.Lower.MeanDelay, b.Upper.MeanDelay
		if err == nil {
			p.p99Lo, p.p99Hi = br.Quantile(0.99)
			p.tailP99 = true
		}
		p.ready = true
		p.mu.Unlock()
		return
	}
}
