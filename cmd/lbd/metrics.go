package main

import (
	"fmt"
	"math"
	"net/http"
	"runtime/metrics"
	"strconv"

	"finitelb/internal/stats"
)

// runtimeSamples is the fixed runtime/metrics read set behind the
// lbd_go_* gauges: GC pressure and scheduler health, the two host-side
// effects that corrupt a calibration run before they show in the delay
// numbers themselves.
var runtimeSamples = []string{
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
	"/gc/pauses:seconds",
}

// metricsHandler renders the whole exposition through promWriter, so every
// family carries HELP/TYPE and every label value is escaped by
// construction (see prom.go and the conformance test).
func (d *daemon) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	s := d.farm.Summary()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := newPromWriter(w)

	p.Family("lbd_jobs_completed_total", "counter", "Jobs fully served, including warmup.")
	p.Sample("", nil, "%d", s.Completed)
	p.Family("lbd_jobs_rejected_total", "counter", "Jobs refused on a full queue.")
	p.Sample("", nil, "%d", s.Rejected)
	// The per-outcome ledger of the failure domain: at quiescence,
	// accepted = completed + dropped; requeued/retried book the churn
	// redelivery machinery and shed the SLO guard's refusals.
	p.Family("lbd_jobs_total", "counter", "Jobs by outcome (completed | requeued | retried | shed | dropped).")
	for _, c := range []struct {
		l string
		v int64
	}{
		{"completed", s.Outcomes.Completed},
		{"requeued", s.Outcomes.Requeued},
		{"retried", s.Outcomes.Retried},
		{"shed", s.Outcomes.Shed},
		{"dropped", s.Outcomes.Dropped},
	} {
		p.Sample("", []label{{"outcome", c.l}}, "%d", c.v)
	}
	p.Family("lbd_alive_servers", "gauge", "Servers currently in the dispatch set (N minus crashed/left).")
	p.Sample("", nil, "%d", d.farm.Alive())
	p.Family("lbd_delay_mean_service_times", "gauge", "Mean sojourn in mean service times (after warmup).")
	p.Sample("", nil, "%g", s.MeanDelay)
	p.Family("lbd_delay_halfwidth_service_times", "gauge", "95% batch-means CI half-width on the mean delay.")
	p.Sample("", nil, "%g", s.HalfWidth)
	p.Family("lbd_delay_quantile_service_times", "gauge", "Sojourn quantiles in mean service times.")
	for _, q := range []struct {
		l string
		v float64
	}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}, {"0.999", s.P999}} {
		p.Sample("", []label{{"q", q.l}}, "%g", q.v)
	}
	// Native histogram exposition from the mergeable sketch: exact
	// cumulative counts at log-spaced boundaries, so any Prometheus
	// quantile/SLO query sees the same tail the Summary reports.
	p.Family("lbd_delay_service_times", "histogram", "Sojourn distribution in mean service times (after warmup).")
	for _, tb := range d.farm.Recorder().TailBuckets(32) {
		p.Sample("_bucket", []label{{"le", fmt.Sprintf("%g", tb.LE)}}, "%d", tb.Count)
	}
	p.Sample("_bucket", []label{{"le", "+Inf"}}, "%d", s.Jobs)
	p.Sample("_sum", nil, "%g", s.MeanDelay*float64(s.Jobs))
	p.Sample("_count", nil, "%d", s.Jobs)
	p.Family("lbd_service_realized_ratio", "gauge", "Realized over nominal mean service (timer fidelity gauge).")
	p.Sample("", nil, "%g", s.MeanService)
	p.Family("lbd_max_queue_length", "gauge", "Largest queue length reserved by a dispatch.")
	p.Sample("", nil, "%d", s.MaxQueue)
	p.Family("lbd_queue_length", "gauge", "Current queue length, including the job in service.")
	for i, l := range d.farm.QueueLens() {
		p.Sample("", []label{{"server", strconv.Itoa(i)}}, "%d", l)
	}

	if d.shed != nil {
		d.shedMetrics(p)
	}
	if d.tr != nil {
		d.traceMetrics(p)
	}
	if d.pred != nil {
		predictedMetrics(p, d.pred)
	}
	runtimeMetrics(p)
	if err := p.Err(); err != nil {
		// A construction bug; the conformance test keeps this unreachable.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// shedMetrics exposes the SLO guard: whether admission is refused, the
// last windowed p99 it measured, and the ceiling it compares against.
func (d *daemon) shedMetrics(p *promWriter) {
	p.Family("lbd_shedding", "gauge", "1 while the SLO guard refuses admissions with 429.")
	shedding := 0
	if d.shed.Active() {
		shedding = 1
	}
	p.Sample("", nil, "%d", shedding)
	p.Family("lbd_slo_window_p99_service_times", "gauge", "Windowed measured p99 sojourn the SLO guard evaluates (0 before the first nonempty window).")
	p.Sample("", nil, "%g", d.shed.LastP99())
	if thr := d.shed.Threshold(); !math.IsNaN(thr) {
		p.Family("lbd_slo_p99_ceiling_service_times", "gauge", "The p99 ceiling the guard sheds above (predicted upper bracket or -shed-p99).")
		p.Sample("", nil, "%g", thr)
	}
}

// traceMetrics exposes the flight recorder: lifecycle counters and the
// per-stage delay sketches as log-bucketed histograms (stage ∈ pick |
// wait | service, durations in mean service times).
func (d *daemon) traceMetrics(p *promWriter) {
	p.Family("lbd_trace_jobs_total", "counter", "Jobs observed by the flight recorder, by outcome (seen counts every arrival; sampled/published/dropped/aborted count traced spans).")
	for _, c := range []struct {
		l string
		v uint64
	}{
		{"seen", d.tr.Seen()},
		{"sampled", d.tr.Sampled()},
		{"published", d.tr.Published()},
		{"dropped", d.tr.Dropped()},
		{"aborted", d.tr.Aborted()},
	} {
		p.Sample("", []label{{"outcome", c.l}}, "%d", c.v)
	}
	p.Family("lbd_trace_sample_every", "gauge", "Deterministic sampling period: 1 of every N jobs is traced.")
	p.Sample("", nil, "%d", d.tr.SampleEvery())

	st := d.tr.Stages()
	p.Family("lbd_trace_stage_service_times", "histogram", "Per-stage delay of traced jobs in mean service times (stage = pick | wait | service).")
	for _, sk := range []struct {
		stage  string
		sketch *stats.Sketch
		sum    float64
	}{
		{"pick", st.Pick, st.PickSum},
		{"wait", st.Wait, st.WaitSum},
		{"service", st.Service, st.ServiceSum},
	} {
		for _, tb := range sk.sketch.CumulativeBuckets(24) {
			p.Sample("_bucket", []label{{"stage", sk.stage}, {"le", fmt.Sprintf("%g", tb.LE)}}, "%d", tb.Count)
		}
		p.Sample("_bucket", []label{{"stage", sk.stage}, {"le", "+Inf"}}, "%d", sk.sketch.N())
		p.Sample("_sum", []label{{"stage", sk.stage}}, "%g", sk.sum)
		p.Sample("_count", []label{{"stage", sk.stage}}, "%d", sk.sketch.N())
	}
}

// predictedMetrics exposes the startup QBD solve: the paper's bracket on
// the mean delay and (empirically validated) on the p99, in mean service
// times, for the declared (N, d, ρ) operating point.
func predictedMetrics(p *promWriter, pr *predicted) {
	snap, ready := pr.snapshot()
	p.Family("lbd_delay_predicted_ready", "gauge", "1 once the startup QBD solve finished (0 while running; the value gauges appear only on success).")
	if !ready {
		p.Sample("", nil, "%d", 0)
		return
	}
	p.Sample("", nil, "%d", 1)
	if snap.failed != "" {
		return
	}
	p.Family("lbd_delay_predicted_threshold", "gauge", "Truncation threshold T of the QBD bracket solve.")
	p.Sample("", nil, "%d", snap.t)
	p.Family("lbd_delay_predicted_mean_lower", "gauge", "Model-predicted lower bound on the mean delay (service times; Theorem 1).")
	p.Sample("", nil, "%g", snap.meanLo)
	p.Family("lbd_delay_predicted_mean_upper", "gauge", "Model-predicted upper bound on the mean delay (service times; Theorem 1).")
	p.Sample("", nil, "%g", snap.meanHi)
	if snap.tailP99 {
		p.Family("lbd_delay_predicted_p99_lower", "gauge", "Lower side of the model's p99 sojourn bracket (service times; empirical transfer of the mean bracket).")
		p.Sample("", nil, "%g", snap.p99Lo)
		p.Family("lbd_delay_predicted_p99_upper", "gauge", "Upper side of the model's p99 sojourn bracket (service times; empirical transfer of the mean bracket).")
		p.Sample("", nil, "%g", snap.p99Hi)
	}
}

// runtimeMetrics exposes the Go runtime's GC and scheduler health.
func runtimeMetrics(p *promWriter) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	byName := map[string]metrics.Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s := byName["/gc/cycles/total:gc-cycles"]; s.Value.Kind() == metrics.KindUint64 {
		p.Family("lbd_go_gc_cycles_total", "counter", "Completed GC cycles.")
		p.Sample("", nil, "%d", s.Value.Uint64())
	}
	if s := byName["/memory/classes/heap/objects:bytes"]; s.Value.Kind() == metrics.KindUint64 {
		p.Family("lbd_go_heap_objects_bytes", "gauge", "Bytes of live plus unswept heap objects.")
		p.Sample("", nil, "%d", s.Value.Uint64())
	}
	if s := byName["/sched/goroutines:goroutines"]; s.Value.Kind() == metrics.KindUint64 {
		p.Family("lbd_go_goroutines", "gauge", "Live goroutines.")
		p.Sample("", nil, "%d", s.Value.Uint64())
	}
	if s := byName["/sched/latencies:seconds"]; s.Value.Kind() == metrics.KindFloat64Histogram {
		h := s.Value.Float64Histogram()
		p.Family("lbd_go_sched_latency_seconds", "gauge", "Goroutine scheduling latency quantiles since process start.")
		p.Sample("", []label{{"q", "0.5"}}, "%g", histQuantile(h, 0.5))
		p.Sample("", []label{{"q", "0.99"}}, "%g", histQuantile(h, 0.99))
	}
	if s := byName["/gc/pauses:seconds"]; s.Value.Kind() == metrics.KindFloat64Histogram {
		h := s.Value.Float64Histogram()
		p.Family("lbd_go_gc_pause_seconds", "gauge", "GC stop-the-world pause quantiles since process start.")
		p.Sample("", []label{{"q", "0.5"}}, "%g", histQuantile(h, 0.5))
		p.Sample("", []label{{"q", "0.99"}}, "%g", histQuantile(h, 0.99))
	}
}
