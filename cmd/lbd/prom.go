package main

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strings"
)

// promWriter emits Prometheus text exposition (format 0.0.4) with the
// conformance rules enforced by construction rather than by discipline:
// every sample belongs to the family declared immediately before it, each
// family's HELP and TYPE are written exactly once and always ahead of its
// samples, and every label value passes through the official escaping
// (backslash, double quote, newline). The /metrics handler is built
// entirely on this writer, so adding a series cannot silently produce a
// family without metadata.
type promWriter struct {
	w        io.Writer
	declared map[string]string // family name → type, to reject re-declares
	family   string            // family currently accepting samples
	typ      string
	err      error
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, declared: map[string]string{}}
}

// Family declares a metric family (counter, gauge, or histogram), writing
// its HELP and TYPE lines. Samples that follow belong to it until the next
// Family call. Re-declaring a family is a programming error.
func (p *promWriter) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	if _, dup := p.declared[name]; dup {
		p.err = fmt.Errorf("metric family %q declared twice", name)
		return
	}
	p.declared[name] = typ
	p.family, p.typ = name, typ
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// label is one name/value pair; values are escaped on output.
type label struct{ k, v string }

// Sample writes one sample of the current family. suffix must be "" for
// counters and gauges, and one of "_bucket", "_sum", "_count" for
// histograms; anything else is a construction error.
func (p *promWriter) Sample(suffix string, labels []label, format string, v any) {
	if p.err != nil {
		return
	}
	if p.family == "" {
		p.err = fmt.Errorf("sample with suffix %q before any Family declaration", suffix)
		return
	}
	switch p.typ {
	case "histogram":
		if suffix != "_bucket" && suffix != "_sum" && suffix != "_count" {
			p.err = fmt.Errorf("histogram family %q got sample suffix %q", p.family, suffix)
			return
		}
	default:
		if suffix != "" {
			p.err = fmt.Errorf("%s family %q got suffixed sample %q", p.typ, p.family, suffix)
			return
		}
	}
	var sb strings.Builder
	sb.WriteString(p.family)
	sb.WriteString(suffix)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.k)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.v))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	_, p.err = fmt.Fprintf(p.w, "%s "+format+"\n", sb.String(), v)
}

// Err reports the first construction error (a bug in the handler, caught
// by the conformance test, never by a scrape in production).
func (p *promWriter) Err() error { return p.err }

// escapeLabel applies the text-exposition escaping for label values:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// escapeHelp applies the HELP-line escaping: backslash and newline (quotes
// are legal there).
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// histQuantile reads the q-quantile out of a runtime/metrics histogram
// (cumulative interpolation on the bucket midpoints; ±Inf buckets clamp to
// their finite neighbor).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			switch {
			case math.IsInf(lo, -1):
				return hi
			case math.IsInf(hi, 1):
				return lo
			default:
				return (lo + hi) / 2
			}
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
