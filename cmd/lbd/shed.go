package main

import (
	"math"
	"sync/atomic"
	"time"

	"finitelb/internal/lb"
	"finitelb/internal/stats"
)

// shedder is serve mode's SLO guard: it watches the measured p99 sojourn
// over sliding windows and, when the farm runs sustained above the
// model-predicted upper bracket, refuses new admissions with 429 until
// the tail re-enters the bracket. The windowed p99 comes from
// differencing successive Recorder.TailSketch snapshots
// (stats.Sketch.DiffQuantile), so the signal sees only the last window's
// jobs — a lifetime quantile would dilute a fresh breach under hours of
// healthy history and never trip.
//
// The guard is asymmetric by design: it trips only after `trip`
// consecutive breached windows (a single GC pause or scheduling hiccup
// must not close admission), and it reopens on the first healthy
// window (queues drain fast once admission stops; holding 429s longer
// than necessary is its own SLO violation). An empty window — no
// completions, which is the steady state once shedding stops all
// arrivals — counts as healthy for the same reason: it is the signal
// that the backlog has drained.
type shedder struct {
	rec    *lb.Recorder
	pred   *predicted    // startup QBD solve; nil for off-model workloads
	thresh float64       // explicit threshold override; 0 defers to pred
	window time.Duration // evaluation period
	trip   int           // consecutive breached windows before shedding

	active   atomic.Bool
	breaches atomic.Int32
	p99Bits  atomic.Uint64 // last windowed p99 (Float64bits), for /metrics

	stop chan struct{}
	prev *stats.Sketch // previous snapshot; loop-local
}

// newShedder wires the guard; run must be started by the caller.
func newShedder(rec *lb.Recorder, pred *predicted, thresh float64, window time.Duration, trip int) *shedder {
	if window <= 0 {
		window = time.Second
	}
	if trip < 1 {
		trip = 2
	}
	return &shedder{
		rec: rec, pred: pred, thresh: thresh,
		window: window, trip: trip,
		stop: make(chan struct{}),
	}
}

// Active reports whether admission is currently refused.
func (s *shedder) Active() bool { return s.active.Load() }

// LastP99 returns the most recent windowed p99 (0 before the first
// nonempty window).
func (s *shedder) LastP99() float64 { return math.Float64frombits(s.p99Bits.Load()) }

// RetryAfter is the back-off the 429 advertises: one evaluation window,
// floored at a second — the soonest the guard could possibly reopen.
func (s *shedder) RetryAfter() time.Duration {
	if s.window > time.Second {
		return s.window
	}
	return time.Second
}

// Threshold resolves the p99 ceiling in mean service times: the explicit
// override when set, else the model's upper p99 bracket once the startup
// solve lands. NaN means "no ceiling yet" and the guard stays open.
func (s *shedder) Threshold() float64 {
	if s.thresh > 0 {
		return s.thresh
	}
	if s.pred != nil {
		if snap, ready := s.pred.snapshot(); ready && snap.tailP99 {
			return snap.p99Hi
		}
	}
	return math.NaN()
}

// run evaluates one window per tick until stop is closed.
func (s *shedder) run() {
	t := time.NewTicker(s.window)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.tick()
		case <-s.stop:
			return
		}
	}
}

// tick evaluates one window; split from run so tests can step the guard
// without real time.
func (s *shedder) tick() {
	cur := s.rec.TailSketch()
	if cur == nil {
		return // nothing measured yet
	}
	p99, ok := cur.DiffQuantile(s.prev, 0.99)
	s.prev = cur
	thr := s.Threshold()
	if ok {
		s.p99Bits.Store(math.Float64bits(p99))
	}
	if ok && !math.IsNaN(thr) && p99 > thr {
		if s.breaches.Add(1) >= int32(s.trip) {
			s.active.Store(true)
		}
		return
	}
	// Healthy or empty window: reopen immediately.
	s.breaches.Store(0)
	s.active.Store(false)
}

func (s *shedder) close() { close(s.stop) }
