package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finitelb/internal/lb"
	"finitelb/internal/workload"
)

func testFarm(t *testing.T) *lb.LB {
	t.Helper()
	farm, err := lb.New(lb.Config{N: 4, MeanService: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := farm.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return farm
}

func TestWorkEndpoint(t *testing.T) {
	mux := newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1})

	// Explicit work.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=2.5", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /work: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Server    int     `json:"server"`
		Work      float64 `json:"work"`
		ServiceMS float64 `json:"service_ms"`
		SojournMS float64 `json:"sojourn_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Work != 2.5 || resp.ServiceMS != 0.25 {
		t.Errorf("work %v service %vms, want 2.5 / 0.25ms", resp.Work, resp.ServiceMS)
	}
	if resp.SojournMS < resp.ServiceMS {
		t.Errorf("sojourn %vms below service %vms", resp.SojournMS, resp.ServiceMS)
	}

	// Drawn work.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /work (drawn): %d %s", rec.Code, rec.Body)
	}

	// Invalid work.
	for _, q := range []string{"?work=-1", "?work=0", "?work=banana"} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work"+q, nil))
		if rec.Code != 400 {
			t.Errorf("POST /work%s: %d, want 400", q, rec.Code)
		}
	}

	// Wrong method.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/work", nil))
	if rec.Code == 200 {
		t.Error("GET /work accepted")
	}
}

func TestMetricsAndHealth(t *testing.T) {
	farm := testFarm(t)
	mux := newMux(&daemon{farm: farm, svc: workload.Exponential{}, seed: 1})
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
		if rec.Code != 200 {
			t.Fatalf("POST /work: %d", rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"lbd_jobs_completed_total 20",
		"lbd_jobs_rejected_total 0",
		"lbd_jobs_total{outcome=\"completed\"} 20",
		"lbd_jobs_total{outcome=\"dropped\"} 0",
		"lbd_alive_servers 4",
		"lbd_delay_mean_service_times ",
		"lbd_delay_quantile_service_times{q=\"0.99\"}",
		"lbd_delay_quantile_service_times{q=\"0.999\"}",
		"lbd_delay_service_times_bucket{le=\"+Inf\"} 20",
		"lbd_delay_service_times_count 20",
		"lbd_service_realized_ratio ",
		"lbd_queue_length{server=\"3\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("GET /healthz: %d %q", rec.Code, rec.Body)
	}
}

// TestPprofEndpoint covers the -pprof surface: the explicit mux must
// serve the pprof index and the profile subpages.
func TestPprofEndpoint(t *testing.T) {
	mux := pprofMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/: %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Errorf("pprof index missing profile links:\n%s", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("GET /debug/pprof/goroutine: %d %q", rec.Code, rec.Body.String()[:min(120, rec.Body.Len())])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("GET /debug/pprof/cmdline: %d", rec.Code)
	}

	// The profiling mux must stay off the serve-mode mux: operators opt in
	// with -pprof on a separate listener.
	rec = httptest.NewRecorder()
	newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Error("serve-mode mux exposes /debug/pprof/ without -pprof")
	}
}

// TestDrainUnderBackgroundLoad pins the shutdown ordering: with the
// in-process generator still offering load, drainAll must first stop
// the generator, then the farm — every accepted job ends completed or
// dropped, none abandoned, and the drain itself returns no error. The
// old path shut the farm down with submitters live, racing the drain
// against the generator's next dispatch.
func TestDrainUnderBackgroundLoad(t *testing.T) {
	farm, err := lb.New(lb.Config{N: 4, MeanService: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	dm := &daemon{farm: farm, svc: workload.Exponential{}, seed: 1}
	dm.shed = newShedder(farm.Recorder(), nil, 0, 50*time.Millisecond, 0)
	go dm.shed.run()
	bg := startBgLoad(farm, nil, nil, 0.5, 7)
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := drainAll(ctx, dm, nil, bg)
	if err != nil {
		t.Fatalf("drainAll: %v", err)
	}
	if st.Completed == 0 {
		t.Error("background generator completed no jobs before the drain")
	}
	if st.Abandoned != 0 {
		t.Errorf("%d jobs abandoned by an ordered drain", st.Abandoned)
	}
	// The generator was silenced before the farm closed, so nothing was
	// offered to a closing farm.
	o := farm.Recorder().Outcomes()
	if got := o.Completed + o.Dropped; got != st.Completed+st.Dropped {
		t.Errorf("outcome ledger %d ≠ drain stats %d", got, st.Completed+st.Dropped)
	}
}

// TestChaosEndpoint covers the -chaos surface: injection round-trips,
// membership accounting, refusal semantics, and the default-off gate.
func TestChaosEndpoint(t *testing.T) {
	farm := testFarm(t)
	mux := newMux(&daemon{farm: farm, svc: workload.Exponential{}, seed: 1, chaos: true})

	post := func(q string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/chaos?"+q, nil))
		return rec
	}
	var status struct {
		N        int  `json:"n"`
		Alive    int  `json:"alive"`
		Shedding bool `json:"shedding"`
	}

	rec := post("action=crash&server=1")
	if rec.Code != 200 {
		t.Fatalf("crash: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.N != 4 || status.Alive != 3 {
		t.Errorf("after crash: n=%d alive=%d, want 4/3", status.N, status.Alive)
	}

	// Crashing a down server is a refusal, not a repeat.
	if rec = post("action=crash&server=1"); rec.Code != 409 {
		t.Errorf("double crash: %d, want 409", rec.Code)
	}
	if rec = post("action=join&server=1"); rec.Code != 200 {
		t.Fatalf("join: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Alive != 4 {
		t.Errorf("after join: alive=%d, want 4", status.Alive)
	}
	if rec = post("action=explode&server=0"); rec.Code != 400 {
		t.Errorf("unknown action: %d, want 400", rec.Code)
	}
	if rec = post("action=crash&server=banana"); rec.Code != 400 {
		t.Errorf("bad server: %d, want 400", rec.Code)
	}

	// GET reports status without mutating.
	getRec := httptest.NewRecorder()
	mux.ServeHTTP(getRec, httptest.NewRequest("GET", "/debug/chaos", nil))
	if getRec.Code != 200 {
		t.Errorf("GET status: %d", getRec.Code)
	}

	// Without -chaos the endpoint must not exist.
	offRec := httptest.NewRecorder()
	newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1}).
		ServeHTTP(offRec, httptest.NewRequest("POST", "/debug/chaos?action=crash&server=0", nil))
	if offRec.Code != 404 {
		t.Errorf("chaos endpoint without -chaos: %d, want 404", offRec.Code)
	}
}

// TestShedGuardGatesAdmission steps the SLO guard by hand: two breached
// windows trip it, /work then bounces with 429 + Retry-After and books
// the shed, and one healthy (empty) window reopens admission.
func TestShedGuardGatesAdmission(t *testing.T) {
	farm := testFarm(t)
	dm := &daemon{farm: farm, svc: workload.Exponential{}, seed: 1}
	// Ceiling far below any real sojourn (≥ 1 service time), so every
	// nonempty window breaches.
	dm.shed = newShedder(farm.Recorder(), nil, 1e-4, time.Second, 2)
	mux := newMux(dm)

	work := func() int {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
		return rec.Code
	}
	for i := 0; i < 5; i++ {
		if code := work(); code != 200 {
			t.Fatalf("healthy /work: %d", code)
		}
	}
	dm.shed.tick() // breach 1 of 2: still open
	if dm.shed.Active() {
		t.Fatal("guard tripped after one breached window")
	}
	if code := work(); code != 200 {
		t.Fatalf("/work after one breach: %d", code)
	}
	dm.shed.tick() // breach 2 of 2: shedding
	if !dm.shed.Active() {
		t.Fatal("guard did not trip after two breached windows")
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
	if rec.Code != 429 {
		t.Fatalf("shedding /work: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := farm.Recorder().Outcomes().Shed; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	mRec := httptest.NewRecorder()
	mux.ServeHTTP(mRec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{"lbd_shedding 1", "lbd_jobs_total{outcome=\"shed\"} 1", "lbd_slo_p99_ceiling_service_times 0.0001"} {
		if !strings.Contains(mRec.Body.String(), want) {
			t.Errorf("/metrics missing %q while shedding", want)
		}
	}

	// Admission closed ⇒ the next window is empty ⇒ the guard reopens.
	dm.shed.tick()
	if dm.shed.Active() {
		t.Fatal("guard did not reopen on an empty window")
	}
	if code := work(); code != 200 {
		t.Errorf("/work after recovery: %d", code)
	}
}

// TestBusyFarmReturns503: a full bounded queue surfaces as 503, the
// admission-control contract.
func TestBusyFarmReturns503(t *testing.T) {
	farm, err := lb.New(lb.Config{N: 1, QueueCap: 1, MeanService: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())
	mux := newMux(&daemon{farm: farm, svc: workload.Exponential{}, seed: 1})

	// Occupy the single queue slot with a long fire-and-forget job; the
	// next request must bounce with 503.
	if err := farm.Dispatch(10); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
	if rec.Code != 503 {
		t.Fatalf("POST /work against a full queue: %d, want 503", rec.Code)
	}
}
