package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finitelb/internal/lb"
	"finitelb/internal/workload"
)

func testFarm(t *testing.T) *lb.LB {
	t.Helper()
	farm, err := lb.New(lb.Config{N: 4, MeanService: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := farm.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return farm
}

func TestWorkEndpoint(t *testing.T) {
	mux := newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1})

	// Explicit work.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=2.5", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /work: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Server    int     `json:"server"`
		Work      float64 `json:"work"`
		ServiceMS float64 `json:"service_ms"`
		SojournMS float64 `json:"sojourn_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Work != 2.5 || resp.ServiceMS != 0.25 {
		t.Errorf("work %v service %vms, want 2.5 / 0.25ms", resp.Work, resp.ServiceMS)
	}
	if resp.SojournMS < resp.ServiceMS {
		t.Errorf("sojourn %vms below service %vms", resp.SojournMS, resp.ServiceMS)
	}

	// Drawn work.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /work (drawn): %d %s", rec.Code, rec.Body)
	}

	// Invalid work.
	for _, q := range []string{"?work=-1", "?work=0", "?work=banana"} {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work"+q, nil))
		if rec.Code != 400 {
			t.Errorf("POST /work%s: %d, want 400", q, rec.Code)
		}
	}

	// Wrong method.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/work", nil))
	if rec.Code == 200 {
		t.Error("GET /work accepted")
	}
}

func TestMetricsAndHealth(t *testing.T) {
	farm := testFarm(t)
	mux := newMux(&daemon{farm: farm, svc: workload.Exponential{}, seed: 1})
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
		if rec.Code != 200 {
			t.Fatalf("POST /work: %d", rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"lbd_jobs_completed_total 20",
		"lbd_jobs_rejected_total 0",
		"lbd_delay_mean_service_times ",
		"lbd_delay_quantile_service_times{q=\"0.99\"}",
		"lbd_delay_quantile_service_times{q=\"0.999\"}",
		"lbd_delay_service_times_bucket{le=\"+Inf\"} 20",
		"lbd_delay_service_times_count 20",
		"lbd_service_realized_ratio ",
		"lbd_queue_length{server=\"3\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("GET /healthz: %d %q", rec.Code, rec.Body)
	}
}

// TestPprofEndpoint covers the -pprof surface: the explicit mux must
// serve the pprof index and the profile subpages.
func TestPprofEndpoint(t *testing.T) {
	mux := pprofMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/: %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Errorf("pprof index missing profile links:\n%s", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("GET /debug/pprof/goroutine: %d %q", rec.Code, rec.Body.String()[:min(120, rec.Body.Len())])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("GET /debug/pprof/cmdline: %d", rec.Code)
	}

	// The profiling mux must stay off the serve-mode mux: operators opt in
	// with -pprof on a separate listener.
	rec = httptest.NewRecorder()
	newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == 200 {
		t.Error("serve-mode mux exposes /debug/pprof/ without -pprof")
	}
}

// TestBusyFarmReturns503: a full bounded queue surfaces as 503, the
// admission-control contract.
func TestBusyFarmReturns503(t *testing.T) {
	farm, err := lb.New(lb.Config{N: 1, QueueCap: 1, MeanService: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Shutdown(context.Background())
	mux := newMux(&daemon{farm: farm, svc: workload.Exponential{}, seed: 1})

	// Occupy the single queue slot with a long fire-and-forget job; the
	// next request must bounce with 503.
	if err := farm.Dispatch(10); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
	if rec.Code != 503 {
		t.Fatalf("POST /work against a full queue: %d, want 503", rec.Code)
	}
}
