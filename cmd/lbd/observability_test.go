package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finitelb/internal/lb"
	"finitelb/internal/trace"
	"finitelb/internal/workload"
)

// tracedDaemon builds a farm with the flight recorder on (every job
// traced) and a synchronously solved model prediction, so one scrape
// exercises every metric family the daemon can emit.
func tracedDaemon(t *testing.T) *daemon {
	t.Helper()
	mean := 100 * time.Microsecond
	rec := trace.New(trace.Config{Sample: 1, Cap: 1024, Scale: float64(mean.Nanoseconds())})
	farm, err := lb.New(lb.Config{N: 4, MeanService: mean, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		farm.Shutdown(ctx)
	})
	pred := &predicted{}
	pred.solve(4, 2, 0.7)
	return &daemon{farm: farm, svc: workload.Exponential{}, seed: 1, tr: rec, pred: pred}
}

// TestMetricsConformance is the exposition-format contract: every sample
// on /metrics belongs to a family whose HELP and TYPE were declared
// exactly once, ahead of the samples; histogram samples only use the
// _bucket/_sum/_count suffixes and carry a +Inf bucket.
func TestMetricsConformance(t *testing.T) {
	d := tracedDaemon(t)
	mux := newMux(d)
	for i := 0; i < 30; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
		if rec.Code != 200 {
			t.Fatalf("POST /work: %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}

	type family struct {
		typ           string
		help, samples int
	}
	families := map[string]*family{}
	infSeen := map[string]bool{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			if f.help++; f.help > 1 {
				t.Errorf("family %s: HELP declared %d times", name, f.help)
			}
			if f.samples > 0 {
				t.Errorf("family %s: HELP after samples", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			name, typ := fields[2], fields[3]
			f := families[name]
			if f == nil || f.help == 0 {
				t.Errorf("family %s: TYPE without preceding HELP", name)
				f = &family{}
				families[name] = f
			}
			if f.typ != "" {
				t.Errorf("family %s: TYPE declared twice", name)
			}
			f.typ = typ
		case strings.HasPrefix(line, "#"):
			// other comments are legal
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			fam, suffix := name, ""
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, sfx); base != name {
					if f, ok := families[base]; ok && f.typ == "histogram" {
						fam, suffix = base, sfx
						break
					}
				}
			}
			f, ok := families[fam]
			if !ok || f.typ == "" {
				t.Errorf("sample %q has no declared family", line)
				continue
			}
			if f.typ == "histogram" && suffix == "" {
				t.Errorf("histogram family %s has unsuffixed sample %q", fam, line)
			}
			f.samples++
			if suffix == "_bucket" && strings.Contains(line, `le="+Inf"`) {
				infSeen[fam] = true
			}
		}
	}
	for name, f := range families {
		if f.samples == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
		if f.typ == "histogram" && !infSeen[name] {
			t.Errorf("histogram family %s has no +Inf bucket", name)
		}
	}
	// The tentpole families must actually be present on a traced,
	// on-model daemon.
	for _, want := range []string{
		"lbd_trace_jobs_total", "lbd_trace_stage_service_times",
		"lbd_delay_predicted_mean_lower", "lbd_delay_predicted_mean_upper",
		"lbd_delay_predicted_p99_lower", "lbd_delay_predicted_p99_upper",
		"lbd_go_gc_cycles_total", "lbd_go_goroutines", "lbd_go_sched_latency_seconds",
	} {
		if families[want] == nil {
			t.Errorf("family %s missing from a traced on-model scrape", want)
		}
	}
}

// TestPredictedGaugesOrdered: the model gauges must form a bracket.
func TestPredictedGaugesOrdered(t *testing.T) {
	pred := &predicted{}
	pred.solve(3, 2, 0.8)
	snap, ready := pred.snapshot()
	if !ready || snap.failed != "" {
		t.Fatalf("predicted solve not ready or failed: %+v", snap)
	}
	if !(snap.meanLo <= snap.meanHi) || !(snap.meanLo > 1) {
		t.Errorf("mean bracket [%v, %v] malformed", snap.meanLo, snap.meanHi)
	}
	if !snap.tailP99 || !(snap.p99Lo <= snap.p99Hi) || !(snap.p99Lo > snap.meanLo) {
		t.Errorf("p99 bracket [%v, %v] malformed against mean %v", snap.p99Lo, snap.p99Hi, snap.meanLo)
	}
	if snap.t < 3 {
		t.Errorf("threshold %d below the starting T", snap.t)
	}
}

// TestPredictedOffModel: workloads outside the paper's assumptions get no
// prediction at all.
func TestPredictedOffModel(t *testing.T) {
	if p := newPredicted(workload.JSQ{}, workload.Exponential{}, nil, 4, 0.8); p != nil {
		t.Error("JSQ got a QBD prediction")
	}
	if p := newPredicted(workload.SQD{D: 2}, workload.DeterministicService{}, nil, 4, 0.8); p != nil {
		t.Error("deterministic service got a QBD prediction")
	}
	if p := newPredicted(workload.SQD{D: 2}, workload.Exponential{}, []float64{1, 2}, 2, 0.8); p != nil {
		t.Error("heterogeneous farm got a QBD prediction")
	}
	if p := newPredicted(workload.SQD{D: 2}, workload.Exponential{}, nil, 64, 0.8); p != nil {
		t.Error("N=64 got a QBD prediction")
	}
}

// TestDebugJobsEndpoint: the span dump must decode, reconcile stage sums
// with sojourns, honor ?max and ?format=csv, and 404 when tracing is off.
func TestDebugJobsEndpoint(t *testing.T) {
	d := tracedDaemon(t)
	mux := newMux(d)
	const jobs = 40
	for i := 0; i < jobs; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/work?work=1", nil))
		if rec.Code != 200 {
			t.Fatalf("POST /work: %d", rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jobs", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/jobs: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		SampleEvery int       `json:"sample_every"`
		Seen        uint64    `json:"seen"`
		Published   uint64    `json:"published"`
		Spans       []jobSpan `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SampleEvery != 1 || resp.Seen != jobs || len(resp.Spans) != jobs {
		t.Fatalf("sample_every=%d seen=%d spans=%d, want 1/%d/%d",
			resp.SampleEvery, resp.Seen, len(resp.Spans), jobs, jobs)
	}
	for _, sp := range resp.Spans {
		if sp.Server < 0 || sp.Server >= 4 {
			t.Fatalf("span server %d out of range", sp.Server)
		}
		stages := (sp.Picked - sp.Arrival) + (sp.Enqueue - sp.Picked) + sp.Wait + sp.Service
		if diff := math.Abs(stages - sp.Sojourn); diff > 1e-6*(1+sp.Sojourn) {
			t.Fatalf("stage sums %v don't reconcile with sojourn %v", stages, sp.Sojourn)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jobs?max=5", nil))
	var capped struct {
		Spans []jobSpan `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped.Spans) != 5 {
		t.Errorf("?max=5 returned %d spans", len(capped.Spans))
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jobs?max=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("?max=bogus: %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jobs?format=csv", nil))
	if rec.Code != 200 || !strings.HasPrefix(rec.Body.String(), "seq,server,qlen,ties,") {
		t.Errorf("csv dump: %d %q", rec.Code, firstLine(rec.Body))
	}
	if lines := strings.Count(strings.TrimSpace(rec.Body.String()), "\n"); lines != jobs {
		t.Errorf("csv dump has %d data rows, want %d", lines, jobs)
	}

	// Tracing off → 404.
	plain := newMux(&daemon{farm: testFarm(t), svc: workload.Exponential{}, seed: 1})
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jobs", nil))
	if rec.Code != 404 {
		t.Errorf("untraced /debug/jobs: %d, want 404", rec.Code)
	}
}

func firstLine(b *bytes.Buffer) string {
	s := b.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestPromWriterEnforcement: misuse is caught at construction time.
func TestPromWriterEnforcement(t *testing.T) {
	var buf bytes.Buffer
	p := newPromWriter(&buf)
	p.Sample("", nil, "%d", 1)
	if p.Err() == nil {
		t.Error("sample before any family accepted")
	}

	p = newPromWriter(&buf)
	p.Family("x_total", "counter", "a counter")
	p.Family("x_total", "counter", "again")
	if p.Err() == nil {
		t.Error("re-declared family accepted")
	}

	p = newPromWriter(&buf)
	p.Family("g", "gauge", "a gauge")
	p.Sample("_bucket", nil, "%d", 1)
	if p.Err() == nil {
		t.Error("suffixed sample on a gauge accepted")
	}

	p = newPromWriter(&buf)
	p.Family("h", "histogram", "a histogram")
	p.Sample("", nil, "%d", 1)
	if p.Err() == nil {
		t.Error("unsuffixed sample on a histogram accepted")
	}
}

// TestLabelEscaping: the three escaped characters, directly and through
// the writer.
func TestLabelEscaping(t *testing.T) {
	if got, want := escapeLabel("a\"b\\c\nd"), `a\"b\\c\nd`; got != want {
		t.Errorf("escapeLabel = %q, want %q", got, want)
	}
	if got, want := escapeHelp("50% \\ of\nthis"), `50% \\ of\nthis`; got != want {
		t.Errorf("escapeHelp = %q, want %q", got, want)
	}
	var buf bytes.Buffer
	p := newPromWriter(&buf)
	p.Family("m", "gauge", "line one\nline two")
	p.Sample("", []label{{"path", `C:\tmp "x"` + "\n"}}, "%d", 7)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP m line one\nline two`) {
		t.Errorf("HELP not escaped: %q", out)
	}
	if !strings.Contains(out, `m{path="C:\\tmp \"x\"\n"} 7`) {
		t.Errorf("label not escaped: %q", out)
	}
}
