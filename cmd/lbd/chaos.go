package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// chaosHandler serves /debug/chaos, the live fault-injection surface
// (registered only with -chaos; mutating a production farm from an HTTP
// endpoint is strictly an opt-in):
//
//	GET  /debug/chaos                          membership snapshot
//	POST /debug/chaos?action=A&server=I[&...]  inject one event
//
// Actions map one-to-one onto the internal/lb failure-domain verbs:
// crash (lose in-service progress, redeliver the queue), leave
// (graceful drain), join/restore, slow (&factor=F), stall (&dur=D, a
// Go duration), pause and resume (farm-wide, no server). Rejected
// injections — crashing a server twice, taking down the last live
// server — return 409 with the farm's reason, so a chaos script can
// tell "already applied" from "refused".
func (d *daemon) chaosHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		d.chaosStatus(w)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "GET for status, POST to inject", http.StatusMethodNotAllowed)
		return
	}
	action := r.URL.Query().Get("action")
	needsServer := action != "pause" && action != "resume"
	server := -1
	if needsServer {
		v, err := strconv.Atoi(r.URL.Query().Get("server"))
		if err != nil {
			http.Error(w, "server must be an integer index", http.StatusBadRequest)
			return
		}
		server = v
	}
	var err error
	switch action {
	case "crash":
		err = d.farm.Crash(server)
	case "leave":
		err = d.farm.Leave(server)
	case "join", "restore":
		err = d.farm.Join(server)
	case "slow":
		factor, perr := strconv.ParseFloat(r.URL.Query().Get("factor"), 64)
		if perr != nil {
			http.Error(w, "slow needs factor=F", http.StatusBadRequest)
			return
		}
		err = d.farm.SetSlow(server, factor)
	case "stall":
		dur, perr := time.ParseDuration(r.URL.Query().Get("dur"))
		if perr != nil {
			http.Error(w, "stall needs dur=D (a Go duration)", http.StatusBadRequest)
			return
		}
		err = d.farm.Stall(server, dur)
	case "pause":
		d.farm.PauseDispatch()
	case "resume":
		d.farm.ResumeDispatch()
	default:
		http.Error(w, fmt.Sprintf("unknown action %q (crash | leave | join | slow | stall | pause | resume)", action), http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	d.chaosStatus(w)
}

// chaosStatus renders the membership view a chaos script polls between
// injections.
func (d *daemon) chaosStatus(w http.ResponseWriter) {
	shedding := false
	if d.shed != nil {
		shedding = d.shed.Active()
	}
	o := d.farm.Recorder().Outcomes()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"n":         d.farm.N(),
		"alive":     d.farm.Alive(),
		"shedding":  shedding,
		"completed": o.Completed,
		"requeued":  o.Requeued,
		"retried":   o.Retried,
		"shed":      o.Shed,
		"dropped":   o.Dropped,
	})
}
