package main

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"strconv"

	"finitelb/internal/trace"
)

// jobSpan is the wire form of one flight-recorder span: raw timestamps in
// nanoseconds since the farm's epoch, plus the derived stage durations the
// reconciliation check (smoke script, tests) sums against the sojourn.
// Wait is start − enqueued on the server's ideal work clock and may be
// slightly negative when the work clock runs ahead of the dispatcher's
// enqueue observation; the recorder's stage sketches clamp it, the raw
// dump does not.
type jobSpan struct {
	Seq     uint64  `json:"seq"`
	Server  int32   `json:"server"`
	QLen    int32   `json:"qlen"`
	Ties    int32   `json:"ties"`
	Arrival float64 `json:"arrival_ns"`
	Picked  float64 `json:"picked_ns"`
	Enqueue float64 `json:"enqueued_ns"`
	Start   float64 `json:"start_ns"`
	Done    float64 `json:"done_ns"`
	Wait    float64 `json:"wait_ns"`
	Service float64 `json:"service_ns"`
	Sojourn float64 `json:"sojourn_ns"`
	Retries int32   `json:"retries"`
	Outcome string  `json:"outcome"`
}

// outcomeName renders a span's packed outcome code. New fields append at
// the end of the CSV so column-positional consumers (the smoke scripts
// grep the header prefix) keep working.
func outcomeName(o uint8) string {
	switch o {
	case trace.OutcomeCompleted:
		return "completed"
	case trace.OutcomeDropped:
		return "dropped"
	}
	return "unknown"
}

// debugJobsHandler serves GET /debug/jobs: the most recent traced spans,
// newest first, as JSON (default) or CSV (?format=csv). ?max=K bounds the
// dump (default 256, capped by the ring size). 404 when tracing is off.
func (d *daemon) debugJobsHandler(w http.ResponseWriter, r *http.Request) {
	if d.tr == nil {
		http.Error(w, "tracing disabled; restart with -trace N", http.StatusNotFound)
		return
	}
	maxSpans := 256
	if q := r.URL.Query().Get("max"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "max must be a positive integer", http.StatusBadRequest)
			return
		}
		maxSpans = v
	}
	spans := d.tr.Spans(maxSpans)
	out := make([]jobSpan, len(spans))
	for i, sp := range spans {
		out[i] = jobSpan{
			Seq: sp.Seq, Server: sp.Server, QLen: sp.QLen, Ties: sp.Ties,
			Arrival: sp.Arrival, Picked: sp.Picked, Enqueue: sp.Enqueued,
			Start: sp.Start, Done: sp.Done,
			Wait:    sp.Start - sp.Enqueued,
			Service: sp.Done - sp.Start,
			Sojourn: sp.Done - sp.Arrival,
			Retries: sp.Retries,
			Outcome: outcomeName(sp.Outcome),
		}
	}

	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		cw := csv.NewWriter(w)
		_ = cw.Write([]string{"seq", "server", "qlen", "ties",
			"arrival_ns", "picked_ns", "enqueued_ns", "start_ns", "done_ns",
			"wait_ns", "service_ns", "sojourn_ns", "retries", "outcome"})
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		for _, sp := range out {
			_ = cw.Write([]string{
				strconv.FormatUint(sp.Seq, 10),
				strconv.FormatInt(int64(sp.Server), 10),
				strconv.FormatInt(int64(sp.QLen), 10),
				strconv.FormatInt(int64(sp.Ties), 10),
				f(sp.Arrival), f(sp.Picked), f(sp.Enqueue), f(sp.Start), f(sp.Done),
				f(sp.Wait), f(sp.Service), f(sp.Sojourn),
				strconv.FormatInt(int64(sp.Retries), 10), sp.Outcome,
			})
		}
		cw.Flush()
		return
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"sample_every": d.tr.SampleEvery(),
		"ring_cap":     d.tr.Cap(),
		"seen":         d.tr.Seen(),
		"sampled":      d.tr.Sampled(),
		"published":    d.tr.Published(),
		"dropped":      d.tr.Dropped(),
		"aborted":      d.tr.Aborted(),
		"spans":        out,
	})
}
