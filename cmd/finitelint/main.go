// Command finitelint runs the finitelb analyzer suite (internal/lint)
// over Go packages. It speaks the go vet -vettool protocol, so the two
// supported invocations are:
//
//	finitelint ./...                                 # standalone: drives go vet itself
//	go vet -vettool=$(which finitelint) ./...        # as a vet tool
//
// Standalone mode simply re-execs `go vet -vettool=<self> <args>`: the
// go command does package loading, export data, and caching; this binary
// is then called back once per package with a .cfg file (the unitchecker
// protocol) and analyzes that single unit.
//
// The protocol, as implemented by cmd/go:
//
//   - `finitelint -V=full` prints a version fingerprint used as a cache
//     key;
//   - `finitelint -flags` prints a JSON description of tool flags ([]);
//   - `finitelint <file>.cfg` analyzes one package: the cfg names the
//     source files, the import map, and the export-data files of every
//     dependency, and the tool must write the (empty) facts file named
//     by VetxOutput and exit 2 if it reported diagnostics.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"finitelb/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			return printVersion()
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return analyzeUnit(args[0])
		}
	}
	if len(args) > 0 && args[0] == "help" {
		usage()
		return 0
	}
	return standalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: finitelint [packages]

Runs the finitelb invariant analyzers (%s) over the
named packages (default ./...) by driving go vet. Also usable directly:

    go vet -vettool=$(which finitelint) ./...
`, analyzerNames())
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// printVersion emits the fingerprint go vet uses to key its analysis
// cache: the content hash of this executable, so rebuilding finitelint
// invalidates cached results. The line format is fixed by cmd/go.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
	return 0
}

// standalone re-execs go vet with this binary as the vettool.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	return 0
}

// vetConfig is the JSON payload cmd/go writes for each package unit.
// Field set and meaning are fixed by the unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func analyzeUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finitelint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "finitelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The facts file must exist even when empty, or go vet reports the
	// tool as failed. This suite uses no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "finitelint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "finitelint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data the go command
	// already compiled: vet import path -> canonical path -> .a file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "finitelint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := lint.Run(fset, files, cfg.ImportPath, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finitelint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Offset < findings[j].Pos.Offset
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
