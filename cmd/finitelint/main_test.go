package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd is the acceptance check for the whole pipeline:
// build the real binary, point go vet at a scratch module named finitelb
// that seeds one deliberate violation per analyzer family, and assert
// vet fails with the expected findings; then fix the module and assert
// vet passes. This exercises the -V=full/-flags handshake, the .cfg
// unitchecker mode, export-data importing, and the exit-code contract —
// everything the CI lint job depends on.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and drives go vet; skipped under -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go tool on PATH")
	}

	bin := filepath.Join(t.TempDir(), "finitelint")
	out, err := exec.Command(goTool, "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building finitelint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The scratch module takes the real module's name so its packages
	// land in the analyzers' deterministic set.
	write("go.mod", "module finitelb\n\ngo 1.22\n")
	write("internal/sim/sim.go", `package sim

import (
	"math/rand"
	"time"
)

func Step() float64 {
	start := time.Now()
	v := rand.Float64()
	return v + float64(time.Since(start))
}
`)
	write("internal/sim/hot.go", `package sim

import "fmt"

//finitelb:hotpath
func event(i int) string {
	return fmt.Sprintf("ev%d", i)
}
`)

	vet := func() (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out1, err := vet()
	if err == nil {
		t.Fatalf("go vet passed on a module with seeded violations; output:\n%s", out1)
	}
	for _, wantFinding := range []string{
		"time.Now in deterministic package",
		"time.Since in deterministic package",
		"global math/rand.Float64 in deterministic package",
		"call to fmt.Sprintf on hot path",
	} {
		if !strings.Contains(out1, wantFinding) {
			t.Errorf("vet output missing %q; got:\n%s", wantFinding, out1)
		}
	}

	// Fix both files; the tree must come back clean.
	write("internal/sim/sim.go", `package sim

func Step() float64 { return 0.5 }
`)
	write("internal/sim/hot.go", `package sim

//finitelb:hotpath
func event(i int) int { return i + 1 }
`)
	if out2, err := vet(); err != nil {
		t.Fatalf("go vet failed on the fixed module: %v\n%s", err, out2)
	}
}
