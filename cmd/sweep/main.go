// Command sweep explores the trade-offs the paper highlights: the
// accuracy/complexity trade-off of the upper bound in T (Section V's first
// observation), the stability frontier of the upper-bound model, and —
// beyond the paper's means — the finite-N occupancy tails against
// Mitzenmacher's asymptotic fixed point, plus a simulation sweep over the
// pluggable workload/policy grid that the analytic models cannot reach.
//
// Usage:
//
//	sweep -mode accuracy -n 3 -d 2 -rho 0.8 -tmax 6
//	sweep -mode stability -n 3 -d 2 -tmax 5
//	sweep -mode tails -n 3 -d 2 -rho 0.9
//	sweep -mode sim -n 10 -d 2 -rhos 0.7,0.9 -policies sqd,jsq,jiq,rr,random \
//	      -arrival hyperexp:cv2=4 -service pareto:alpha=1.5 -jobs 1e6
//
// The sim mode emits CSV (deterministic for a fixed seed, bit-identical
// for any -workers count thanks to the engine's submission-order merge).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"finitelb"
	"finitelb/internal/engine"
	"finitelb/internal/plot"
	"finitelb/internal/statespace"
	"finitelb/internal/workload"
)

func main() {
	var (
		mode    = flag.String("mode", "accuracy", "accuracy | stability | tails | sim")
		n       = flag.Int("n", 3, "number of servers N")
		d       = flag.Int("d", 2, "choices per arrival d")
		rho     = flag.Float64("rho", 0.8, "utilization (accuracy and tails modes)")
		tmax    = flag.Int("tmax", 5, "largest threshold T to sweep")
		workers = flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS)")

		rhos     = flag.String("rhos", "", "comma list of utilizations (sim mode; default -rho)")
		policies = flag.String("policies", "sqd,jsq,jiq,rr,random", "comma list of dispatch policies (sim mode): sqd[:D] jsq jiq lwl rr random")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson | deterministic | erlang:K | hyperexp:CV2")
		service  = flag.String("service", "exponential", "service law: exponential | deterministic | erlang:K | pareto:ALPHA[,h=H]")
		speeds   = flag.String("speeds", "", "per-server speed factors, e.g. 1x8,4x2 (sim mode; empty = homogeneous)")
		jobs     = flag.Float64("jobs", 200_000, "measured jobs per sim cell")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Usage = usage
	flag.Parse()

	switch *mode {
	case "accuracy":
		if *tmax < 1 {
			fatalUsage(fmt.Errorf("-tmax %d must be ≥ 1", *tmax))
		}
		if _, err := finitelb.NewSystem(*n, *d, *rho); err != nil {
			fatalUsage(err)
		}
		if err := accuracy(*n, *d, *rho, *tmax); err != nil {
			fatal(err)
		}
	case "stability":
		if *tmax < 1 {
			fatalUsage(fmt.Errorf("-tmax %d must be ≥ 1", *tmax))
		}
		if err := stability(*n, *d, *tmax, *workers); err != nil {
			fatal(err)
		}
	case "tails":
		if _, err := finitelb.NewSystem(*n, *d, *rho); err != nil {
			fatalUsage(err)
		}
		if err := tails(*n, *d, *rho); err != nil {
			fatal(err)
		}
	case "sim":
		cfg := simCfg{
			n: *n, d: *d,
			rhos:     *rhos,
			policies: *policies,
			arrival:  *arrival,
			service:  *service,
			speeds:   *speeds,
			jobs:     int64(*jobs),
			seed:     *seed,
			workers:  *workers,
		}
		if cfg.rhos == "" {
			cfg.rhos = strconv.FormatFloat(*rho, 'g', -1, 64)
		}
		// simSweep front-loads all spec validation, so an error here is
		// overwhelmingly a malformed flag — show the grammar with it.
		if err := simSweep(os.Stdout, cfg); err != nil {
			fatalUsage(err)
		}
	default:
		fatalUsage(fmt.Errorf("unknown mode %q", *mode))
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: sweep -mode <accuracy|stability|tails|sim> [flags]

Explores the paper's trade-offs and, in sim mode, the pluggable
workload/policy grid beyond the analytic models' reach.

  sweep -mode accuracy -n 3 -d 2 -rho 0.8 -tmax 6
  sweep -mode stability -n 3 -d 2 -tmax 5
  sweep -mode tails -n 3 -d 2 -rho 0.9
  sweep -mode sim -n 10 -d 2 -rhos 0.7,0.9 -policies sqd,jsq,jiq,rr,random \
        -arrival hyperexp:cv2=4 -service pareto:alpha=1.5 -jobs 1e6

Spec grammar (sim mode):
  -policies   comma list of: sqd[:D] | jsq | jiq | lwl | rr | random
  -arrival    poisson | deterministic | erlang:K | hyperexp:CV2
  -service    exponential | deterministic | erlang:K | pareto:ALPHA[,h=H]
  -speeds     COUNTxFACTOR[,COUNTxFACTOR...], e.g. 1x8,4x2 (empty = homogeneous)
  -rhos       comma list of utilizations in (0,1)

Flags:
`)
	flag.PrintDefaults()
}

// simCfg is the sim-mode grid: every policy at every utilization, one
// workload, fixed seed.
type simCfg struct {
	n, d             int
	rhos             string // comma list
	policies         string // comma list
	arrival, service string
	speeds           string
	jobs             int64
	seed             uint64
	workers          int
}

// simSweep runs the policy × utilization grid through the engine pool and
// writes one CSV row per cell. Rows come out in submission order and every
// cell is seeded from the fixed -seed, so output is bit-identical for any
// worker count — the guarantee the golden-file test pins.
func simSweep(out io.Writer, cfg simCfg) error {
	// Validate the whole configuration before submitting anything: the
	// engine pool does not cancel jobs already started, so a bad spec
	// discovered per-cell would burn the full grid's simulation budget
	// first. After this block the only per-cell failures left are
	// impossible-by-construction.
	if cfg.jobs < 1 || cfg.jobs > 1e15 {
		return fmt.Errorf("-jobs %d outside [1, 1e15]", cfg.jobs)
	}
	pols := strings.Split(cfg.policies, ",")
	for i, p := range pols {
		pols[i] = strings.TrimSpace(p)
		if pols[i] == "" {
			return fmt.Errorf("empty entry in -policies %q", cfg.policies)
		}
		pol, err := workload.ParsePolicy(pols[i])
		if err != nil {
			return err
		}
		if sq, ok := pol.(workload.SQD); ok && sq.D == 0 {
			pol = workload.SQD{D: cfg.d} // "sqd" inherits -d, as Simulate will resolve it
		}
		if pol != nil {
			if _, err := pol.NewPicker(cfg.n); err != nil {
				return err
			}
		}
	}
	if _, err := workload.ParseArrival(cfg.arrival); err != nil {
		return err
	}
	if _, err := workload.ParseService(cfg.service); err != nil {
		return err
	}
	if _, err := workload.ParseSpeeds(cfg.speeds, cfg.n); err != nil {
		return err
	}
	var rhoVals []float64
	for _, s := range strings.Split(cfg.rhos, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad -rhos entry %q", s)
		}
		if _, err := finitelb.NewSystem(cfg.n, cfg.d, v); err != nil {
			return err
		}
		rhoVals = append(rhoVals, v)
	}
	type cell struct {
		policy string
		rho    float64
		res    finitelb.SimResult
	}
	cells, err := engine.Collect(engine.New(cfg.workers), len(pols)*len(rhoVals), func(i int) (cell, error) {
		c := cell{policy: pols[i/len(rhoVals)], rho: rhoVals[i%len(rhoVals)]}
		sys, err := finitelb.NewSystem(cfg.n, cfg.d, c.rho)
		if err != nil {
			return c, err
		}
		c.res, err = sys.Simulate(finitelb.SimOptions{
			Jobs: cfg.jobs, Seed: cfg.seed,
			Arrival: cfg.arrival, Service: cfg.service, Policy: c.policy, Speeds: cfg.speeds,
		})
		return c, err
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "policy,arrival,service,n,d,rho,jobs,seed,mean_delay,half_width,p50,p95,p99,max_queue"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(out, "%s,%s,%s,%d,%d,%g,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
			csvField(c.policy), csvField(cfg.arrival), csvField(cfg.service), cfg.n, cfg.d, c.rho, cfg.jobs, cfg.seed,
			c.res.MeanDelay, c.res.HalfWidth, c.res.P50, c.res.P95, c.res.P99, c.res.MaxQueue); err != nil {
			return err
		}
	}
	return nil
}

// csvField quotes a spec string per RFC 4180 when it contains CSV
// metacharacters — "pareto:alpha=1.5,h=100" must stay one column.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// tails compares the finite-N server-occupancy tail (exact solve) with
// Mitzenmacher's asymptotic fixed point and with the bound models' tails —
// the distributional extension of the paper's mean-delay comparison.
func tails(n, d int, rho float64) error {
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		return err
	}
	_, dist, err := sys.ExactDistribution(0)
	if err != nil {
		return err
	}
	fmt.Printf("P(server holds ≥ k jobs): finite N=%d vs asymptotic, SQ(%d), ρ=%g\n\n", n, d, rho)
	var rows [][]string
	for k := 0; k <= 8; k++ {
		asy := finitelb.AsymptoticQueueTail(d, rho, k)
		fin := dist.ServerTail(k)
		if fin == 0 && asy < 1e-12 {
			break
		}
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.6f", fin),
			fmt.Sprintf("%.6f", asy),
			fmt.Sprintf("%+.1f%%", (asy-fin)/math.Max(fin, 1e-300)*100),
		})
	}
	if err := plot.Table(os.Stdout, []string{"k", "finite-N", "asymptotic", "asym error"}, rows); err != nil {
		return err
	}
	fmt.Printf("\nsojourn quantiles (exact): p50=%.3f p95=%.3f p99=%.3f\n",
		dist.Quantile(0.50), dist.Quantile(0.95), dist.Quantile(0.99))
	return nil
}

// accuracy sweeps T and reports both bounds, their gap, the block size
// C(N+T−1, T) (the paper's "exponential cost"), and wall time.
func accuracy(n, d int, rho float64, tmax int) error {
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		return err
	}
	fmt.Printf("upper/lower bound accuracy vs T for SQ(%d), N=%d, ρ=%g\n\n", d, n, rho)
	var rows [][]string
	for t := 1; t <= tmax; t++ {
		start := time.Now()
		lo, err := sys.LowerBound(t)
		if err != nil {
			return err
		}
		row := []string{
			fmt.Sprint(t),
			fmt.Sprint(statespace.BinomialInt(n+t-1, t)),
			fmt.Sprintf("%.4f", lo.MeanDelay),
		}
		hi, err := sys.UpperBound(t)
		switch {
		case errors.Is(err, finitelb.ErrUnstable):
			row = append(row, "unstable", "-")
		case err != nil:
			return err
		default:
			row = append(row,
				fmt.Sprintf("%.4f", hi.MeanDelay),
				fmt.Sprintf("%.4f", hi.MeanDelay-lo.MeanDelay))
		}
		row = append(row, time.Since(start).Round(time.Microsecond).String())
		rows = append(rows, row)
	}
	return plot.Table(os.Stdout,
		[]string{"T", "block", "lower", "upper", "gap", "time"}, rows)
}

// stability locates, for each T, the largest utilization (on a 0.01 grid)
// at which the upper-bound model is still stable. Every (T, ρ) cell is an
// independent solve, so the whole grid goes through the engine pool and
// the per-T frontiers are reduced from the deterministically ordered
// results.
func stability(n, d, tmax, workers int) error {
	fmt.Printf("upper-bound stability frontier for SQ(%d), N=%d\n\n", d, n)
	const steps = 99 // ρ ∈ {0.01, …, 0.99}
	type cell struct {
		t      int
		rho    float64
		stable bool
	}
	cells, err := engine.Collect(engine.New(workers), tmax*steps, func(i int) (cell, error) {
		c := cell{t: 1 + i/steps, rho: float64(1+i%steps) / 100}
		sys, err := finitelb.NewSystem(n, d, c.rho)
		if err != nil {
			return c, err
		}
		_, err = sys.UpperBound(c.t)
		switch {
		case err == nil:
			c.stable = true
			return c, nil
		case errors.Is(err, finitelb.ErrUnstable):
			return c, nil // the frontier is the last stable ρ
		default:
			return c, err
		}
	})
	if err != nil {
		return err
	}
	frontier := make([]float64, tmax+1)
	for _, c := range cells {
		if c.stable && c.rho > frontier[c.t] {
			frontier[c.t] = c.rho
		}
	}
	var rows [][]string
	for t := 1; t <= tmax; t++ {
		rows = append(rows, []string{fmt.Sprint(t), fmt.Sprintf("%.2f", frontier[t])})
	}
	if err := plot.Table(os.Stdout, []string{"T", "max stable ρ"}, rows); err != nil {
		return err
	}
	fmt.Println("\n(the real system is stable for every ρ < 1; the shrinkage is the price of the bound)")
	return nil
}

// fatal reports a runtime failure (a solver or engine breakdown) without
// usage noise.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag or spec with the grammar and exits 2,
// matching the flag package's own exit code for undefined flags.
func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n\n", err)
	usage()
	os.Exit(2)
}
