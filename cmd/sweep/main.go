// Command sweep explores the trade-offs the paper highlights: the
// accuracy/complexity trade-off of the upper bound in T (Section V's first
// observation), the stability frontier of the upper-bound model, and —
// beyond the paper's means — the finite-N occupancy tails against
// Mitzenmacher's asymptotic fixed point.
//
// Usage:
//
//	sweep -mode accuracy -n 3 -d 2 -rho 0.8 -tmax 6
//	sweep -mode stability -n 3 -d 2 -tmax 5
//	sweep -mode tails -n 3 -d 2 -rho 0.9
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"finitelb"
	"finitelb/internal/engine"
	"finitelb/internal/plot"
	"finitelb/internal/statespace"
)

func main() {
	var (
		mode    = flag.String("mode", "accuracy", "accuracy | stability | tails")
		n       = flag.Int("n", 3, "number of servers N")
		d       = flag.Int("d", 2, "choices per arrival d")
		rho     = flag.Float64("rho", 0.8, "utilization (accuracy and tails modes)")
		tmax    = flag.Int("tmax", 5, "largest threshold T to sweep")
		workers = flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS)")
	)
	flag.Parse()

	switch *mode {
	case "accuracy":
		if err := accuracy(*n, *d, *rho, *tmax); err != nil {
			fatal(err)
		}
	case "stability":
		if err := stability(*n, *d, *tmax, *workers); err != nil {
			fatal(err)
		}
	case "tails":
		if err := tails(*n, *d, *rho); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// tails compares the finite-N server-occupancy tail (exact solve) with
// Mitzenmacher's asymptotic fixed point and with the bound models' tails —
// the distributional extension of the paper's mean-delay comparison.
func tails(n, d int, rho float64) error {
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		return err
	}
	_, dist, err := sys.ExactDistribution(0)
	if err != nil {
		return err
	}
	fmt.Printf("P(server holds ≥ k jobs): finite N=%d vs asymptotic, SQ(%d), ρ=%g\n\n", n, d, rho)
	var rows [][]string
	for k := 0; k <= 8; k++ {
		asy := finitelb.AsymptoticQueueTail(d, rho, k)
		fin := dist.ServerTail(k)
		if fin == 0 && asy < 1e-12 {
			break
		}
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.6f", fin),
			fmt.Sprintf("%.6f", asy),
			fmt.Sprintf("%+.1f%%", (asy-fin)/math.Max(fin, 1e-300)*100),
		})
	}
	if err := plot.Table(os.Stdout, []string{"k", "finite-N", "asymptotic", "asym error"}, rows); err != nil {
		return err
	}
	fmt.Printf("\nsojourn quantiles (exact): p50=%.3f p95=%.3f p99=%.3f\n",
		dist.Quantile(0.50), dist.Quantile(0.95), dist.Quantile(0.99))
	return nil
}

// accuracy sweeps T and reports both bounds, their gap, the block size
// C(N+T−1, T) (the paper's "exponential cost"), and wall time.
func accuracy(n, d int, rho float64, tmax int) error {
	sys, err := finitelb.NewSystem(n, d, rho)
	if err != nil {
		return err
	}
	fmt.Printf("upper/lower bound accuracy vs T for SQ(%d), N=%d, ρ=%g\n\n", d, n, rho)
	var rows [][]string
	for t := 1; t <= tmax; t++ {
		start := time.Now()
		lo, err := sys.LowerBound(t)
		if err != nil {
			return err
		}
		row := []string{
			fmt.Sprint(t),
			fmt.Sprint(statespace.BinomialInt(n+t-1, t)),
			fmt.Sprintf("%.4f", lo.MeanDelay),
		}
		hi, err := sys.UpperBound(t)
		switch {
		case errors.Is(err, finitelb.ErrUnstable):
			row = append(row, "unstable", "-")
		case err != nil:
			return err
		default:
			row = append(row,
				fmt.Sprintf("%.4f", hi.MeanDelay),
				fmt.Sprintf("%.4f", hi.MeanDelay-lo.MeanDelay))
		}
		row = append(row, time.Since(start).Round(time.Microsecond).String())
		rows = append(rows, row)
	}
	return plot.Table(os.Stdout,
		[]string{"T", "block", "lower", "upper", "gap", "time"}, rows)
}

// stability locates, for each T, the largest utilization (on a 0.01 grid)
// at which the upper-bound model is still stable. Every (T, ρ) cell is an
// independent solve, so the whole grid goes through the engine pool and
// the per-T frontiers are reduced from the deterministically ordered
// results.
func stability(n, d, tmax, workers int) error {
	fmt.Printf("upper-bound stability frontier for SQ(%d), N=%d\n\n", d, n)
	const steps = 99 // ρ ∈ {0.01, …, 0.99}
	type cell struct {
		t      int
		rho    float64
		stable bool
	}
	cells, err := engine.Collect(engine.New(workers), tmax*steps, func(i int) (cell, error) {
		c := cell{t: 1 + i/steps, rho: float64(1+i%steps) / 100}
		sys, err := finitelb.NewSystem(n, d, c.rho)
		if err != nil {
			return c, err
		}
		_, err = sys.UpperBound(c.t)
		switch {
		case err == nil:
			c.stable = true
			return c, nil
		case errors.Is(err, finitelb.ErrUnstable):
			return c, nil // the frontier is the last stable ρ
		default:
			return c, err
		}
	})
	if err != nil {
		return err
	}
	frontier := make([]float64, tmax+1)
	for _, c := range cells {
		if c.stable && c.rho > frontier[c.t] {
			frontier[c.t] = c.rho
		}
	}
	var rows [][]string
	for t := 1; t <= tmax; t++ {
		rows = append(rows, []string{fmt.Sprint(t), fmt.Sprintf("%.2f", frontier[t])})
	}
	if err := plot.Table(os.Stdout, []string{"T", "max stable ρ"}, rows); err != nil {
		return err
	}
	fmt.Println("\n(the real system is stable for every ρ < 1; the shrinkage is the price of the bound)")
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
