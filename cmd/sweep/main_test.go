package main

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func goldenCfg() simCfg {
	return simCfg{
		n: 3, d: 2,
		rhos:     "0.6,0.8",
		policies: "sqd,jsq,jiq,rr,random",
		arrival:  "poisson",
		service:  "exponential",
		jobs:     5_000,
		seed:     7,
		workers:  2,
	}
}

// TestSimSweepGolden pins the sim-mode CSV byte for byte: the fixed-seed
// simulation, the submission-order merge of the engine pool (PR 1's
// deterministic-merge guarantee), and the CSV formatting itself. Refresh
// with: go test ./cmd/sweep -run TestSimSweepGolden -update
func TestSimSweepGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := simSweep(&buf, goldenCfg()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sim_sweep.golden.csv")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sim-mode CSV drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSimSweepWorkerInvariance re-runs the same grid at several worker
// counts; the CSV must be bit-identical regardless of scheduling.
func TestSimSweepWorkerInvariance(t *testing.T) {
	var base bytes.Buffer
	cfg := goldenCfg()
	cfg.workers = 1
	if err := simSweep(&base, cfg); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 0} {
		var buf bytes.Buffer
		cfg.workers = w
		if err := simSweep(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Bytes(), buf.Bytes()) {
			t.Errorf("workers=%d: CSV differs from serial run", w)
		}
	}
}

// TestSimSweepNondefaultWorkload smoke-tests a bursty heterogeneous grid
// end to end through the flag-level spec strings.
func TestSimSweepNondefaultWorkload(t *testing.T) {
	var buf bytes.Buffer
	cfg := goldenCfg()
	cfg.n, cfg.d = 4, 2
	cfg.arrival, cfg.service, cfg.speeds = "hyperexp:cv2=4", "erlang:2", "1x2,2x2"
	if err := simSweep(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 11 {
		t.Errorf("expected header + 10 rows, got %d lines:\n%s", lines, buf.Bytes())
	}
}

// TestSimSweepCommaSpecsStayCSV: specs containing commas (the documented
// "pareto:ALPHA,h=H" form) must be quoted so every row still parses to the
// header's column count.
func TestSimSweepCommaSpecsStayCSV(t *testing.T) {
	var buf bytes.Buffer
	cfg := goldenCfg()
	cfg.policies = "sqd,jsq"
	cfg.arrival = "hyperexp:cv2=4"
	cfg.service = "pareto:2.5,h=100"
	cfg.jobs = 1_000
	if err := simSweep(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("sim-mode output is not valid CSV: %v\n%s", err, buf.Bytes())
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d:\n%s", i, len(row), len(rows[0]), buf.Bytes())
		}
	}
	if rows[1][2] != "pareto:2.5,h=100" {
		t.Errorf("service column round-tripped as %q", rows[1][2])
	}
}

func TestSimSweepBadSpecs(t *testing.T) {
	for _, mutate := range []func(*simCfg){
		func(c *simCfg) { c.rhos = "0.6,x" },
		func(c *simCfg) { c.policies = "sqd,warp" },
		func(c *simCfg) { c.policies = "sqd,jsq,sqd:9" }, // d > N must fail before any cell runs
		func(c *simCfg) { c.policies = "sqd," },
		func(c *simCfg) { c.policies = "sqd, ,jsq" },
		func(c *simCfg) { c.arrival = "erlang" },
		func(c *simCfg) { c.service = "pareto:alpha=-2" },
		func(c *simCfg) { c.speeds = "1,1" },
		func(c *simCfg) { c.jobs = 0 },
		func(c *simCfg) { c.jobs = -5 },
		func(c *simCfg) { c.rhos = "0.6,1.5" },
	} {
		cfg := goldenCfg()
		cfg.jobs = 10
		mutate(&cfg)
		var buf bytes.Buffer
		if err := simSweep(&buf, cfg); err == nil {
			t.Errorf("simSweep accepted bad config %+v", cfg)
		}
	}
}
