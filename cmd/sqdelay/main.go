// Command sqdelay answers point queries about an SQ(d) system: the
// finite-regime delay bounds of the paper, the asymptotic approximation,
// an exact numerical solve (small N), and a simulation estimate.
//
// Usage:
//
//	sqdelay -n 6 -d 2 -rho 0.9 -t 3
//	sqdelay -n 3 -d 2 -rho 0.8 -t 2 -exact -sim -jobs 5000000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"finitelb"
)

func main() {
	var (
		n     = flag.Int("n", 6, "number of servers N")
		d     = flag.Int("d", 2, "choices per arrival d")
		rho   = flag.Float64("rho", 0.9, "per-server utilization ρ ∈ (0,1)")
		t     = flag.Int("t", 3, "truncation threshold T ≥ 1")
		exact = flag.Bool("exact", false, "also solve the exact chain (small N only)")
		simF  = flag.Bool("sim", false, "also run the discrete-event simulator")
		jobs  = flag.Int64("jobs", 2_000_000, "simulated jobs when -sim is set")
		seed  = flag.Uint64("seed", 1, "simulation RNG seed")
	)
	flag.Usage = usage
	flag.Parse()

	if *t < 1 {
		fatalUsage(fmt.Errorf("-t %d: truncation threshold must be ≥ 1", *t))
	}
	sys, err := finitelb.NewSystem(*n, *d, *rho)
	if err != nil {
		fatalUsage(err)
	}
	fmt.Printf("SQ(%d) with N=%d servers at ρ=%g (T=%d)\n\n", *d, *n, *rho, *t)

	lower, err := sys.LowerBound(*t)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lower bound   %8.4f   (Theorem 3, block size %d)\n", lower.MeanDelay, lower.BlockSize)

	upper, err := sys.UpperBound(*t)
	switch {
	case errors.Is(err, finitelb.ErrUnstable):
		fmt.Printf("upper bound     unstable at this (ρ, T) — raise -t\n")
	case err != nil:
		fatal(err)
	default:
		fmt.Printf("upper bound   %8.4f   (matrix-geometric, %d log-reduction iterations)\n",
			upper.MeanDelay, upper.LRIterations)
	}

	fmt.Printf("asymptotic    %8.4f   (Eq. 16, N → ∞)\n", sys.AsymptoticDelay())

	if *exact {
		res, err := sys.ExactDelay(0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact         %8.4f   (truncation mass %.2g)\n", res.MeanDelay, res.TruncationMass)
	}
	if *simF {
		res, err := sys.Simulate(finitelb.SimOptions{Jobs: *jobs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulation    %8.4f ± %.4f   (%d jobs)\n", res.MeanDelay, res.HalfWidth, res.Jobs)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: sqdelay [flags]

Point queries about an SQ(d) system: the paper's finite-regime delay
bounds, the asymptotic approximation, and optionally the exact solve
and a simulation estimate.

  sqdelay -n 6 -d 2 -rho 0.9 -t 3
  sqdelay -n 3 -d 2 -rho 0.8 -t 2 -exact -sim -jobs 5000000

Parameter grammar: 1 ≤ d ≤ n, ρ ∈ (0,1), T ≥ 1.

Flags:
`)
	flag.PrintDefaults()
}

// fatal reports a runtime failure (solver breakdown, unstable regime
// already explained inline) without usage noise.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sqdelay: %v\n", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag combination with the grammar and exits 2,
// matching the flag package's own exit code for undefined flags.
func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "sqdelay: %v\n\n", err)
	usage()
	os.Exit(2)
}
