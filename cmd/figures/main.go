// Command figures regenerates the data figures of the paper's evaluation
// (Section V) as ASCII charts on stdout and CSV files on disk.
//
// Usage:
//
//	figures -fig 10a                    # one panel, default budget
//	figures -fig all -jobs 100000000    # full paper fidelity (slow)
//	figures -fig 9b -out results/       # CSV destination
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"finitelb/internal/figures"
	"finitelb/internal/plot"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 9a, 9b, 10a, 10b, 10c, 10d, or all")
		jobs    = flag.Int64("jobs", 2_000_000, "simulated jobs per data point (paper uses 1e8)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		out     = flag.String("out", ".", "directory for CSV output")
		workers = flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Usage = usage
	flag.Parse()

	validFigs := map[string]bool{"9a": true, "9b": true, "10a": true, "10b": true, "10c": true, "10d": true, "all": true}
	if !validFigs[*fig] {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n\n", *fig)
		usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "figures: -jobs %d must be ≥ 1\n\n", *jobs)
		usage()
		os.Exit(2)
	}

	budget := figures.SimBudget{Jobs: *jobs, Seed: *seed, Workers: *workers}
	run := func(name string) error {
		switch name {
		case "9a", "9b":
			rho := 0.75
			if name == "9b" {
				rho = 0.95
			}
			chart, err := figures.Fig9(figures.DefaultFig9(rho), budget)
			if err != nil {
				return err
			}
			return emit(chart, filepath.Join(*out, "fig"+name+".csv"))
		case "10a", "10b", "10c", "10d":
			cfg := map[string]figures.Fig10Config{
				"10a": figures.DefaultFig10(3, 2),
				"10b": figures.DefaultFig10(3, 3),
				"10c": figures.DefaultFig10(6, 3),
				"10d": figures.DefaultFig10(12, 3),
			}[name]
			points, chart, err := figures.Fig10(cfg, budget)
			if err != nil {
				return err
			}
			if bad := figures.CheckFig10Invariants(points); len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "WARNING: %s invariant violations:\n", name)
				for _, b := range bad {
					fmt.Fprintf(os.Stderr, "  %s\n", b)
				}
			}
			return emit(chart, filepath.Join(*out, "fig"+name+".csv"))
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
	}

	names := []string{*fig}
	if *fig == "all" {
		names = []string{"9a", "9b", "10a", "10b", "10c", "10d"}
	}
	for _, name := range names {
		fmt.Printf("=== Figure %s ===\n", name)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: figures [flags]

Regenerates the data figures of the paper's evaluation (Section V) as
ASCII charts on stdout and CSV files on disk.

  figures -fig 10a                    # one panel, default budget
  figures -fig all -jobs 100000000    # full paper fidelity (slow)
  figures -fig 9b -out results/       # CSV destination

Figures: 9a, 9b, 10a, 10b, 10c, 10d, all.

Flags:
`)
	flag.PrintDefaults()
}

// emit renders the chart to stdout and writes its CSV beside it.
func emit(chart *plot.Chart, csvPath string) error {
	if err := chart.Render(os.Stdout); err != nil {
		return err
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := chart.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("(data written to %s)\n", csvPath)
	return nil
}
