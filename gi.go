package finitelb

import (
	"fmt"

	"finitelb/internal/embedded"
	"finitelb/internal/sqd"
	"finitelb/internal/statespace"
)

// ArrivalShape describes the *shape* of a renewal interarrival law
// (mixture of Erlang branches); LowerBoundGI rescales it so its mean
// matches the system's arrival rate ρN. Shapes are built with
// PoissonArrivals, ErlangArrivals and HyperExpArrivals.
type ArrivalShape struct {
	law embedded.Law
}

// PoissonArrivals is the exponential shape (SCV 1): LowerBoundGI with it
// reproduces LowerBound exactly.
func PoissonArrivals() ArrivalShape {
	return ArrivalShape{law: embedded.Exponential(1)}
}

// ErlangArrivals is the Erlang-r shape (SCV 1/r): smoother than Poisson.
func ErlangArrivals(r int) ArrivalShape {
	if r < 1 {
		panic(fmt.Sprintf("finitelb: Erlang stages %d", r))
	}
	return ArrivalShape{law: embedded.Erlang(r, float64(r))}
}

// HyperExpArrivals is the two-phase hyperexponential shape: relative rate
// r1 with probability w, relative rate r2 otherwise (SCV > 1 when the
// rates differ) — burstier than Poisson.
func HyperExpArrivals(w, r1, r2 float64) ArrivalShape {
	if w <= 0 || w >= 1 || r1 <= 0 || r2 <= 0 {
		panic(fmt.Sprintf("finitelb: invalid hyperexponential shape (%v, %v, %v)", w, r1, r2))
	}
	return ArrivalShape{law: embedded.HyperExp(w, r1, r2)}
}

// scaledTo returns the shape's law rescaled to the given mean.
func (a ArrivalShape) scaledTo(mean float64) embedded.Law {
	factor := a.law.Mean() / mean
	out := embedded.Law{Branches: make([]embedded.Branch, len(a.law.Branches))}
	for i, b := range a.law.Branches {
		b.Rate *= factor
		out.Branches[i] = b
	}
	return out
}

// GIBoundResult extends BoundResult with the embedded-chain diagnostics of
// the general-arrivals construction.
type GIBoundResult struct {
	BoundResult
	// FrontierMass is the stationary mass near the numerical truncation;
	// it must be ≈ 0 for the digits to be trustworthy.
	FrontierMass float64
}

// LowerBoundGI computes the finite-regime lower bound for *renewal*
// (non-Poisson) arrivals with the given interarrival shape, realizing
// Theorem 2's embedded-chain setting: the jockeying model observed just
// before arrivals, whose stationary tail decays by σᴺ per block with σ
// the root of x = Σ xᵏβ_k (use SigmaRoot to obtain σ itself).
//
// maxTotal truncates the state space; pass 0 for an automatic depth. For
// Poisson shapes this agrees with LowerBound to solver precision.
func (s *System) LowerBoundGI(t int, shape ArrivalShape, maxTotal int) (GIBoundResult, error) {
	p := sqd.BoundParams{Params: s.p, T: t}
	if maxTotal <= 0 {
		// Depth: boundary + as many repeating blocks as the dense-solver
		// budget affords (the tail decays by σᴺ per block, so 40 blocks is
		// ample; fewer only when the per-block state count is large —
		// FrontierMass reports whether the depth sufficed).
		blocks := int(3200 / statespace.BinomialInt(s.p.N+t-1, t))
		if blocks > 40 {
			blocks = 40
		}
		if blocks < 6 {
			blocks = 6
		}
		maxTotal = (s.p.N-1)*t + blocks*s.p.N
	}
	law := shape.scaledTo(1 / s.p.TotalArrivalRate())
	ch, err := embedded.New(p, law, maxTotal)
	if err != nil {
		return GIBoundResult{}, fmt.Errorf("finitelb: GI lower bound: %w", err)
	}
	res, err := ch.Solve()
	if err != nil {
		return GIBoundResult{}, fmt.Errorf("finitelb: GI lower bound: %w", err)
	}
	return GIBoundResult{
		BoundResult: BoundResult{
			MeanDelay:   res.MeanDelay,
			MeanWait:    res.MeanWait,
			MeanWaiting: res.MeanWaiting,
			T:           t,
		},
		FrontierMass: ch.FrontierMass(res.Pi),
	}, nil
}
