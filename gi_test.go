package finitelb

import (
	"math"
	"testing"
)

func TestLowerBoundGIPoissonMatchesLowerBound(t *testing.T) {
	s, err := NewSystem(3, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ctmc, err := s.LowerBound(2)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := s.LowerBoundGI(2, PoissonArrivals(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if gi.FrontierMass > 1e-8 {
		t.Fatalf("frontier mass %v", gi.FrontierMass)
	}
	if rel := math.Abs(gi.MeanDelay-ctmc.MeanDelay) / ctmc.MeanDelay; rel > 1e-6 {
		t.Errorf("GI-Poisson %v vs CTMC %v", gi.MeanDelay, ctmc.MeanDelay)
	}
}

func TestLowerBoundGIVariabilityOrdering(t *testing.T) {
	s, err := NewSystem(3, 2, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	delay := func(shape ArrivalShape) float64 {
		r, err := s.LowerBoundGI(2, shape, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanDelay
	}
	smooth := delay(ErlangArrivals(4))
	poisson := delay(PoissonArrivals())
	bursty := delay(HyperExpArrivals(0.2, 0.5, 4.0/3.0))
	if !(smooth < poisson && poisson < bursty) {
		t.Errorf("ordering violated: E4 %v, M %v, H2 %v", smooth, poisson, bursty)
	}
}

func TestArrivalShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ErlangArrivals(0) },
		func() { HyperExpArrivals(0, 1, 2) },
		func() { HyperExpArrivals(1.5, 1, 2) },
		func() { HyperExpArrivals(0.5, -1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
