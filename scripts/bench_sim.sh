#!/usr/bin/env bash
# bench_sim.sh — run the simulator event-core benchmarks and emit
# BENCH_sim.json at the repository root: one record per benchmark with
# ns/job, derived events/sec (one measured job = one arrival event + one
# departure event, so events/sec = 2e9 / ns_per_op), and allocation
# counts. The sim counterpart of bench_lb.sh/BENCH_lb.json — rerun after
# touching the event core and diff.
#
# Axes: BenchmarkSimJobs covers {fast, pluggable-default, jsq-indexed,
# lwl-work-aware} × N ∈ {10, 250, 1000, 10000} at ρ = 0.9, d = 2. The
# pre-overhaul baseline (scripts/bench_sim_baseline.json, captured at the
# PR-4 head) is embedded verbatim under "baseline" so the before/after
# trajectory travels with the file.
#
# Usage:  scripts/bench_sim.sh            # default 0.5s per benchmark
#         BENCHTIME=2s scripts/bench_sim.sh
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'BenchmarkSimJobs' -benchmem \
    -benchtime "${BENCHTIME:-0.5s}" ./internal/sim | tee "$raw"

awk '
/^goos|^goarch|^cpu/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    printf("%s    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"events_per_sec\":%.0f,\"bytes_per_op\":%s,\"allocs_per_op\":%s}",
           sep, name, $2, $3, 2e9 / $3, $5, $7)
    sep = ",\n"
}
END {
    printf("\n  ],\n")
    printf("  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"])
    printf("  \"unit\": \"ns per job (2 events)\",\n")
    printf("  \"baseline\":\n")
}
BEGIN { printf("{\n  \"benchmarks\": [\n") }
' "$raw" > BENCH_sim.json
sed 's/^/  /' scripts/bench_sim_baseline.json >> BENCH_sim.json
echo "}" >> BENCH_sim.json

echo "wrote BENCH_sim.json ($(grep -c '"name"' BENCH_sim.json) records incl. baseline)"