#!/usr/bin/env bash
# bench_sim.sh — run the simulator event-core benchmarks and emit
# BENCH_sim.json at the repository root: one record per benchmark with
# ns/job, derived events/sec (one measured job = one arrival event + one
# departure event, so events/sec = 2e9 / ns_per_op), and allocation
# counts. The sim counterpart of bench_lb.sh/BENCH_lb.json — rerun after
# touching the event core and diff.
#
# Axes: BenchmarkSimJobs covers {fast, fast-hist, pluggable-default,
# jsq-indexed, lwl-work-aware} × N ∈ {10, 250, 1000, 10000} at ρ = 0.9,
# d = 2 — fast vs fast-hist is the sketch-vs-histogram tail-estimator
# axis, and the state_bytes memory column records each configuration's
# measurement-stream footprint. The pre-overhaul baseline
# (scripts/bench_sim_baseline.json, captured at the PR-4 head) is
# embedded verbatim under "baseline" so the before/after trajectory
# travels with the file.
#
# Each record set is machine-tagged (goos/goarch, CPU model, core count,
# go version) so trajectories from different hosts are never diffed as if
# they were one series.
#
# Usage:  scripts/bench_sim.sh            # default 0.5s per benchmark
#         BENCHTIME=2s scripts/bench_sim.sh
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'BenchmarkSimJobs' -benchmem \
    -benchtime "${BENCHTIME:-0.5s}" ./internal/sim | tee "$raw"

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
gover=$(go env GOVERSION)

awk -v cores="$cores" -v gover="$gover" '
/^goos|^goarch|^cpu/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
    # Scan (value, unit) pairs rather than fixed positions: custom
    # metrics (state_bytes) land between ns/op and the -benchmem columns.
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = "0"; allocs = "0"; state = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "state_bytes") state = v
    }
    extra = (state == "") ? "" : sprintf(",\"state_bytes\":%s", state)
    printf("%s    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"events_per_sec\":%.0f,\"bytes_per_op\":%s,\"allocs_per_op\":%s%s}",
           sep, name, $2, ns, 2e9 / ns, bytes, allocs, extra)
    sep = ",\n"
}
END {
    printf("\n  ],\n")
    printf("  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"])
    printf("  \"cores\": %d,\n  \"go_version\": \"%s\",\n", cores, gover)
    printf("  \"unit\": \"ns per job (2 events)\",\n")
    printf("  \"baseline\":\n")
}
BEGIN { printf("{\n  \"benchmarks\": [\n") }
' "$raw" > BENCH_sim.json
sed 's/^/  /' scripts/bench_sim_baseline.json >> BENCH_sim.json
echo "}" >> BENCH_sim.json

echo "wrote BENCH_sim.json ($(grep -c '"name"' BENCH_sim.json) records incl. baseline)"