#!/usr/bin/env bash
# smoke_chaos.sh — build-and-smoke the failure domain of cmd/lbd,
# exercised by CI: a self-loaded farm (-bgload) with the chaos endpoint
# armed, a crash/restore cycle injected over HTTP, the outcome ledger
# and membership gauges scraped through the fault, and a clean SIGTERM
# drain with the background generator still attached (the drain-ordering
# regression).
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/lbd
go build -o "$bin" ./cmd/lbd

echo "== loadgen mode with a churn schedule =="
# Two of four servers crash mid-run and rejoin; redelivery keeps the run
# conserving (completions + drops account for every accepted job).
out=$("$bin" -loadgen 4000 -n 4 -d 2 -rho 0.5 -mean-service 500us \
       -churn 'crash@200,crash@400,restore@700,restore@900' -chaos-seed 3 \
       -retry-budget 5 -retry-backoff 1ms)
grep -q 'mean delay' <<<"$out"

echo "== serve mode: bgload + chaos endpoint + shed guard =="
addr=127.0.0.1:8099
"$bin" -addr "$addr" -n 4 -d 2 -rho 0.6 -mean-service 1ms \
       -bgload 0.6 -chaos -shed -shed-p99 1e9 -shed-window 250ms \
       -retry-budget 5 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" | grep -q ok

echo "== membership round trip =="
st=$(curl -fsS "http://$addr/debug/chaos")
grep -q '"alive":4' <<<"$st"

# Stall server 1 so work piles up behind it, then crash it: the stalled
# in-service job and its queue are orphaned and must be redelivered —
# a deterministic way to exercise the requeue machinery (a crash on an
# idle server orphans nothing).
curl -fsS -X POST "http://$addr/debug/chaos?action=stall&server=1&dur=400ms" >/dev/null
sleep 0.2
curl -fsS -X POST "http://$addr/debug/chaos?action=crash&server=1" | grep -q '"alive":3'
# Crashing a down server is refused, not repeated.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/debug/chaos?action=crash&server=1")
test "$code" = 409

# The farm keeps serving the background load three-wide; give the
# redelivery machinery a moment, then check the ledger moved.
sleep 0.6
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^lbd_alive_servers 3$'
echo "$metrics" | grep -q '^lbd_jobs_total{outcome="completed"} '
echo "$metrics" | grep -q '^lbd_jobs_total{outcome="requeued"} '
echo "$metrics" | grep -q '^lbd_shedding 0$'
echo "$metrics" | grep -q '^lbd_slo_p99_ceiling_service_times 1e+09$'
# The crash orphaned in-flight jobs; redelivery must have booked them.
requeued=$(sed -n 's/^lbd_jobs_total{outcome="requeued"} //p' <<<"$metrics")
test "$requeued" -gt 0

echo "== recovery =="
curl -fsS -X POST "http://$addr/debug/chaos?action=restore&server=1" | grep -q '"alive":4'
sleep 0.3
curl -fsS "http://$addr/metrics" | grep -q '^lbd_alive_servers 4$'

echo "== ordered drain under background load =="
kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "chaos smoke OK"
