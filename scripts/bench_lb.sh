#!/usr/bin/env bash
# bench_lb.sh — run the internal/lb dispatch-hot-path benchmarks and emit
# BENCH_lb.json at the repository root: one record per benchmark with
# ns/dispatch, derived jobs/sec, and allocation counts. This file seeds the
# performance trajectory — rerun after touching the dispatch path and diff.
#
# Axes: BenchmarkPick and BenchmarkDispatch cover every policy at
# N ∈ {10, 100, 1000, 10000} (N ≥ 64 exercises the minindex-backed JSQ/LWL
# path); BenchmarkDispatchContended covers the multi-producer fan-in at
# D ∈ {1, 2, 4, 8} dispatchers on one shared farm.
#
# Usage:  scripts/bench_lb.sh            # default 0.5s per benchmark
#         BENCHTIME=2s scripts/bench_lb.sh
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'BenchmarkDispatch|BenchmarkDispatchContended|BenchmarkPick' -benchmem \
    -benchtime "${BENCHTIME:-0.5s}" ./internal/lb | tee "$raw"

awk '
/^goos|^goarch|^cpu/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    printf("%s    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"jobs_per_sec\":%.0f,\"bytes_per_op\":%s,\"allocs_per_op\":%s}",
           sep, name, $2, $3, 1e9 / $3, $5, $7)
    sep = ",\n"
}
END {
    printf("\n  ],\n")
    printf("  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"])
    printf("  \"unit\": \"ns per dispatch\"\n}\n")
}
BEGIN { printf("{\n  \"benchmarks\": [\n") }
' "$raw" > BENCH_lb.json

echo "wrote BENCH_lb.json ($(grep -c '"name"' BENCH_lb.json) benchmarks)"
