#!/usr/bin/env bash
# bench_lb.sh — run the internal/lb dispatch-hot-path benchmarks and emit
# BENCH_lb.json at the repository root: one record per benchmark with
# ns/dispatch, derived jobs/sec, and allocation counts. This file seeds the
# performance trajectory — rerun after touching the dispatch path and diff.
#
# Axes: BenchmarkPick and BenchmarkDispatch cover every policy at
# N ∈ {10, 100, 1000, 10000} (N ≥ 64 exercises the minindex-backed JSQ/LWL
# path); BenchmarkDispatchContended covers the multi-producer fan-in at
# D ∈ {1, 2, 4, 8} dispatchers on one shared farm. Dispatch records carry
# a state_bytes memory column: the recorder's sketch-shard accumulator
# footprint (per-server up to N = 1024, ~9 KB each).
#
# Each record set is machine-tagged (goos/goarch, CPU model, core count,
# go version) so trajectories from different hosts are never diffed as if
# they were one series.
#
# Usage:  scripts/bench_lb.sh            # default 0.5s per benchmark
#         BENCHTIME=2s scripts/bench_lb.sh
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'BenchmarkDispatch|BenchmarkDispatchContended|BenchmarkPick' -benchmem \
    -benchtime "${BENCHTIME:-0.5s}" ./internal/lb | tee "$raw"

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
gover=$(go env GOVERSION)

awk -v cores="$cores" -v gover="$gover" '
/^goos|^goarch|^cpu/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
    # Scan (value, unit) pairs rather than fixed positions: custom
    # metrics (state_bytes) land between ns/op and the -benchmem columns.
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = "0"; allocs = "0"; state = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bytes = v
        else if (u == "allocs/op") allocs = v
        else if (u == "state_bytes") state = v
    }
    extra = (state == "") ? "" : sprintf(",\"state_bytes\":%s", state)
    printf("%s    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"jobs_per_sec\":%.0f,\"bytes_per_op\":%s,\"allocs_per_op\":%s%s}",
           sep, name, $2, ns, 1e9 / ns, bytes, allocs, extra)
    sep = ",\n"
}
END {
    printf("\n  ],\n")
    printf("  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"])
    printf("  \"cores\": %d,\n  \"go_version\": \"%s\",\n", cores, gover)
    printf("  \"unit\": \"ns per dispatch\"\n}\n")
}
BEGIN { printf("{\n  \"benchmarks\": [\n") }
' "$raw" > BENCH_lb.json

echo "wrote BENCH_lb.json ($(grep -c '"name"' BENCH_lb.json) benchmarks)"
