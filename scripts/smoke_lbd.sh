#!/usr/bin/env bash
# smoke_lbd.sh — build-and-smoke cmd/lbd, exercised by CI: the load
# generator end to end, then the HTTP surface (healthz, 100 dispatches,
# metrics scrape) and a clean SIGTERM drain.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/lbd
go build -o "$bin" ./cmd/lbd

echo "== loadgen mode =="
"$bin" -loadgen 200 -n 4 -d 2 -rho 0.6 -mean-service 1ms -warmup 20

echo "== loadgen mode: indexed JSQ, multi-dispatcher fan-in =="
out=$("$bin" -loadgen 2000 -n 64 -policy jsq -rho 0.5 -mean-service 1ms \
       -dispatchers 4 -batch 32)
grep -q '4 dispatcher(s)' <<<"$out"

echo "== serve mode =="
addr=127.0.0.1:8097
pprof=127.0.0.1:8098
"$bin" -addr "$addr" -n 4 -mean-service 1ms -pprof "$pprof" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" | grep -q ok
curl -fsS "http://$pprof/debug/pprof/goroutine?debug=1" | head -1 | grep -q 'goroutine profile'

for _ in $(seq 1 100); do
    curl -fsS -X POST "http://$addr/work?work=0.5" >/dev/null
done

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^lbd_jobs_completed_total 100$'
echo "$metrics" | grep -q '^lbd_jobs_rejected_total 0$'
echo "$metrics" | grep -q '^lbd_delay_mean_service_times '
echo "$metrics" | grep -q 'lbd_queue_length{server="3"}'

kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "lbd smoke OK"
