#!/usr/bin/env bash
# smoke_lbd.sh — build-and-smoke cmd/lbd, exercised by CI: the load
# generator end to end, then the HTTP surface (healthz, 100 dispatches,
# metrics scrape, flight-recorder /debug/jobs, predicted-delay gauges)
# and a clean SIGTERM drain.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/lbd
go build -o "$bin" ./cmd/lbd

echo "== loadgen mode =="
"$bin" -loadgen 200 -n 4 -d 2 -rho 0.6 -mean-service 1ms -warmup 20

echo "== loadgen mode: indexed JSQ, multi-dispatcher fan-in =="
out=$("$bin" -loadgen 2000 -n 64 -policy jsq -rho 0.5 -mean-service 1ms \
       -dispatchers 4 -batch 32)
grep -q '4 dispatcher(s)' <<<"$out"

echo "== serve mode =="
addr=127.0.0.1:8097
pprof=127.0.0.1:8098
"$bin" -addr "$addr" -n 4 -d 2 -rho 0.6 -mean-service 1ms -pprof "$pprof" -trace 1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" | grep -q ok
curl -fsS "http://$pprof/debug/pprof/goroutine?debug=1" | head -1 | grep -q 'goroutine profile'

for _ in $(seq 1 100); do
    curl -fsS -X POST "http://$addr/work?work=0.5" >/dev/null
done

# The predicted-delay gauges are solved in a background goroutine at
# startup; poll the readiness gauge before asserting on the bracket.
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/metrics" | grep -q '^lbd_delay_predicted_ready 1$' && break
    sleep 0.1
done

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^lbd_jobs_completed_total 100$'
echo "$metrics" | grep -q '^lbd_jobs_rejected_total 0$'
echo "$metrics" | grep -q '^lbd_delay_mean_service_times '
echo "$metrics" | grep -q 'lbd_queue_length{server="3"}'

echo "== flight-recorder metrics =="
echo "$metrics" | grep -q '^lbd_trace_jobs_total{outcome="sampled"} '
echo "$metrics" | grep -q '^lbd_trace_sample_every 1$'
echo "$metrics" | grep -q '^lbd_trace_stage_service_times_bucket{stage="wait",le="+Inf"} '

echo "== predicted-vs-measured gauges =="
echo "$metrics" | grep -q '^lbd_delay_predicted_ready 1$'
echo "$metrics" | grep -q '^lbd_delay_predicted_mean_lower '
echo "$metrics" | grep -q '^lbd_delay_predicted_mean_upper '
echo "$metrics" | grep -q '^lbd_delay_predicted_p99_lower '

echo "== /debug/jobs =="
jobs=$(curl -fsS "http://$addr/debug/jobs?max=16")
grep -q '"sample_every": *1' <<<"$jobs" || grep -q '"sample_every":1' <<<"$jobs"
grep -q '"spans"' <<<"$jobs"
grep -q '"server"' <<<"$jobs"
csv=$(curl -fsS "http://$addr/debug/jobs?format=csv&max=16")
head -1 <<<"$csv" | grep -q '^seq,server,qlen,ties,'
test "$(wc -l <<<"$csv")" -gt 1

kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "lbd smoke OK"
