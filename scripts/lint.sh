#!/usr/bin/env bash
# Lint gate: the repo's own invariant analyzers, then the external
# tools when present. finitelint is always built from source — the
# analyzers live in this tree, so the gate and the code move together.
#
# External tools (staticcheck, govulncheck) run only if installed: local
# sandboxes without network skip them, CI installs the pinned versions
# below so upstream changes cannot break the gate silently.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="${STATICCHECK_VERSION:-2023.1.7}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

echo "==> finitelint (internal/lint analyzers)"
go build -o "$BIN/finitelint" ./cmd/finitelint
go vet -vettool="$BIN/finitelint" ./...

echo "==> go vet (standard analyzers)"
go vet ./...

if [ "${LINT_INSTALL_TOOLS:-0}" = "1" ]; then
  echo "==> installing pinned external tools"
  GOBIN="$BIN" go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
  GOBIN="$BIN" go install "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"
  export PATH="$BIN:$PATH"
fi

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck"
  staticcheck ./...
else
  echo "==> staticcheck not installed; skipping (set LINT_INSTALL_TOOLS=1 to fetch @$STATICCHECK_VERSION)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck"
  govulncheck ./...
else
  echo "==> govulncheck not installed; skipping (set LINT_INSTALL_TOOLS=1 to fetch @$GOVULNCHECK_VERSION)"
fi

echo "lint: OK"
